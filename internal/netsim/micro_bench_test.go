package netsim

import (
	"runtime"
	"testing"
)

// BenchmarkNetsimSend measures the sender-side cost of scheduling one
// message on the delay-queue fabric: tier classification, delay
// computation, enqueue into the destination's lane. The payload is
// pre-boxed so the benchmark isolates the fabric's own overhead. The
// dispatcher drains concurrently (zero modeled latency keeps queue depth,
// and therefore heap capacity, in steady state).
//
// Two measures pin B/op, which used to be nondeterministic (55 vs 32
// across runs of different lengths) because one-time and unbounded
// transients were amortized over a run-dependent b.N:
//
//   - A warm-up pass touches every lane before ResetTimer: lanes allocate
//     their per-pair FIFO-clamp table (pairAt, numPEs int64s) lazily on
//     the first Send they see.
//   - The timed loop paces itself against the dispatcher: an unpaced
//     sender outruns the single dispatcher goroutine on a zero-latency
//     model, so the delivery heaps grow with b.N and the growth bytes
//     land in B/op. Capping queue depth measures sustainable send cost
//     and keeps heap capacity in steady state, which is zero-alloc (see
//     TestNetsimSendSteadyStateZeroAlloc).
func BenchmarkNetsimSend(b *testing.B) {
	n, err := NewNetwork(PaperNode(2), ZeroLatency(), func(int, any) {})
	if err != nil {
		b.Fatal(err)
	}
	numPEs := PaperNode(2).TotalPEs()
	var payload any = 42
	for i := 0; i < numPEs*64; i++ {
		n.Send(0, i%numPEs, payload, 8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(0, i%numPEs, payload, 8)
		if i&1023 == 0 {
			for n.QueueLen() > 4096 {
				runtime.Gosched()
			}
		}
	}
	b.StopTimer()
	n.Close()
}

// TestNetsimSendSteadyStateZeroAlloc is the regression assertion behind
// the warm-up above: once every lane has its pairAt table and its heap is
// at high water, Send allocates nothing. If this fails, a new per-send
// allocation crept into the fabric's hot path (and BenchmarkNetsimSend's
// B/op just became meaningful again).
func TestNetsimSendSteadyStateZeroAlloc(t *testing.T) {
	n, err := NewNetwork(PaperNode(2), ZeroLatency(), func(int, any) {})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	numPEs := PaperNode(2).TotalPEs()
	var payload any = 42
	// Warm: touch every lane and let the delivery heaps reach their
	// high-water capacity. The dispatcher drains concurrently.
	for i := 0; i < numPEs*256; i++ {
		n.Send(0, i%numPEs, payload, 8)
	}
	dst := 0
	avg := testing.AllocsPerRun(2000, func() {
		n.Send(0, dst, payload, 8)
		dst++
		if dst == numPEs {
			dst = 0
		}
	})
	// Tolerate a stray background allocation (AllocsPerRun runs with
	// GOMAXPROCS=1, so the dispatcher can briefly fall behind and a heap
	// may grow once); a real per-send allocation shows up as avg >= 1.
	if avg > 0.1 {
		t.Errorf("steady-state Send allocates %.2f objects/op, want 0", avg)
	}
}
