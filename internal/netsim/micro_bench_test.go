package netsim

import "testing"

// BenchmarkNetsimSend measures the sender-side cost of scheduling one
// message on the delay-queue fabric: tier classification, delay
// computation, enqueue into the destination's lane. The payload is
// pre-boxed so the benchmark isolates the fabric's own overhead. The
// dispatcher drains concurrently (zero modeled latency keeps queue depth,
// and therefore heap capacity, in steady state).
func BenchmarkNetsimSend(b *testing.B) {
	n, err := NewNetwork(PaperNode(2), ZeroLatency(), func(int, any) {})
	if err != nil {
		b.Fatal(err)
	}
	numPEs := PaperNode(2).TotalPEs()
	var payload any = 42
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(0, i%numPEs, payload, 8)
	}
	b.StopTimer()
	n.Close()
}
