package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestTopologyMapping(t *testing.T) {
	// Paper shape: 2 nodes, 8 procs/node, 6 PEs/proc.
	topo := PaperNode(2)
	if topo.TotalPEs() != 96 || topo.TotalProcs() != 16 {
		t.Fatalf("totals = (%d,%d)", topo.TotalPEs(), topo.TotalProcs())
	}
	if topo.ProcessOf(0) != 0 || topo.ProcessOf(5) != 0 || topo.ProcessOf(6) != 1 {
		t.Error("ProcessOf wrong at process boundary")
	}
	if topo.NodeOf(47) != 0 || topo.NodeOf(48) != 1 {
		t.Error("NodeOf wrong at node boundary")
	}
	lo, hi := topo.PEsOfProcess(3)
	if lo != 18 || hi != 24 {
		t.Errorf("PEsOfProcess(3) = [%d,%d)", lo, hi)
	}
}

func TestTopologyTiers(t *testing.T) {
	topo := PaperNode(2)
	cases := []struct {
		src, dst int
		want     Tier
	}{
		{0, 0, TierSelf},
		{0, 5, TierProcess},  // same process
		{0, 6, TierNode},     // same node, different process
		{0, 48, TierMachine}, // different node
		{95, 0, TierMachine},
	}
	for _, c := range cases {
		if got := topo.TierOf(c.src, c.dst); got != c.want {
			t.Errorf("TierOf(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{Nodes: 0, ProcsPerNode: 1, PEsPerProc: 1}).Validate(); err == nil {
		t.Error("zero nodes validated")
	}
	if err := SingleNode(4).Validate(); err != nil {
		t.Errorf("SingleNode invalid: %v", err)
	}
}

func TestLatencyModelDelay(t *testing.T) {
	m := LatencyModel{
		IntraProcess: 1 * time.Microsecond,
		IntraNode:    5 * time.Microsecond,
		InterNode:    20 * time.Microsecond,
		PerItem:      100 * time.Nanosecond,
	}
	if d := m.Delay(TierSelf, 0); d != 0 {
		t.Errorf("self delay = %v", d)
	}
	if d := m.Delay(TierProcess, 10); d != 2*time.Microsecond {
		t.Errorf("process delay = %v, want 2µs", d)
	}
	if d := m.Delay(TierMachine, 0); d != 20*time.Microsecond {
		t.Errorf("machine delay = %v", d)
	}
}

func TestNetworkDeliversAll(t *testing.T) {
	var mu sync.Mutex
	got := map[int][]int{}
	n, err := NewNetwork(SingleNode(4), ZeroLatency(), func(dst int, payload any) {
		mu.Lock()
		got[dst] = append(got[dst], payload.(int))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	const per = 100
	for i := 0; i < per; i++ {
		for dst := 0; dst < 4; dst++ {
			n.Send(0, dst, i, 1)
		}
	}
	n.Close()
	mu.Lock()
	defer mu.Unlock()
	for dst := 0; dst < 4; dst++ {
		if len(got[dst]) != per {
			t.Errorf("dst %d received %d messages, want %d", dst, len(got[dst]), per)
		}
	}
}

func TestNetworkFIFOPerPair(t *testing.T) {
	// With a fixed latency, messages between one (src,dst) pair must arrive
	// in send order — the in-order guarantee ACIC's pq logic relies on for
	// monotonicity of tram batches.
	var mu sync.Mutex
	var got []int
	n, err := NewNetwork(SingleNode(2), LatencyModel{IntraProcess: 100 * time.Microsecond}, func(dst int, payload any) {
		mu.Lock()
		got = append(got, payload.(int))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 200
	for i := 0; i < k; i++ {
		n.Send(0, 1, i, 0)
	}
	n.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != k {
		t.Fatalf("received %d, want %d", len(got), k)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: got %d", i, v)
		}
	}
}

func TestNetworkLatencyOrdering(t *testing.T) {
	// A later-sent intra-process message (2µs) should overtake an
	// earlier-sent inter-node one (20ms) — asynchrony in action.
	topo := PaperNode(2)
	m := LatencyModel{IntraProcess: time.Microsecond, IntraNode: time.Millisecond, InterNode: 20 * time.Millisecond}
	var mu sync.Mutex
	var got []string
	n, err := NewNetwork(topo, m, func(dst int, payload any) {
		mu.Lock()
		got = append(got, payload.(string))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Send(0, 48, "far", 0) // inter-node
	n.Send(0, 1, "near", 0) // intra-process
	n.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != "near" || got[1] != "far" {
		t.Errorf("delivery order = %v, want [near far]", got)
	}
}

func TestNetworkApproximateDelay(t *testing.T) {
	const lat = 5 * time.Millisecond
	done := make(chan time.Time, 1)
	n, err := NewNetwork(SingleNode(2), LatencyModel{IntraProcess: lat}, func(dst int, payload any) {
		done <- time.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	n.Send(0, 1, nil, 0)
	at := <-done
	n.Close()
	if el := at.Sub(start); el < lat {
		t.Errorf("delivered after %v, want >= %v", el, lat)
	}
}

func TestNetworkCloseIdempotentAndRejectsSends(t *testing.T) {
	var count int64
	n, err := NewNetwork(SingleNode(2), ZeroLatency(), func(int, any) { atomic.AddInt64(&count, 1) })
	if err != nil {
		t.Fatal(err)
	}
	n.Send(0, 1, nil, 0)
	n.Close()
	n.Close() // must not hang or panic
	before := atomic.LoadInt64(&count)
	n.Send(0, 1, nil, 0) // dropped
	time.Sleep(5 * time.Millisecond)
	if atomic.LoadInt64(&count) != before {
		t.Error("send after Close was delivered")
	}
}

func TestNetworkStats(t *testing.T) {
	topo := PaperNode(2)
	n, err := NewNetwork(topo, ZeroLatency(), func(int, any) {})
	if err != nil {
		t.Fatal(err)
	}
	n.Send(0, 1, nil, 10)  // intra-process
	n.Send(0, 6, nil, 20)  // intra-node
	n.Send(0, 48, nil, 30) // inter-node
	n.Close()
	s := n.Stats()
	if s.MessagesSent != 3 || s.ItemsSent != 60 {
		t.Errorf("stats = %+v", s)
	}
	if s.BytesByTier[TierProcess] != 10 || s.BytesByTier[TierNode] != 20 || s.BytesByTier[TierMachine] != 30 {
		t.Errorf("tier bytes = %v", s.BytesByTier)
	}
}

func TestNewNetworkRejectsBadInput(t *testing.T) {
	if _, err := NewNetwork(Topology{}, ZeroLatency(), func(int, any) {}); err == nil {
		t.Error("invalid topology accepted")
	}
	if _, err := NewNetwork(SingleNode(1), ZeroLatency(), nil); err == nil {
		t.Error("nil deliver accepted")
	}
}

func TestNetworkConcurrentSenders(t *testing.T) {
	var count int64
	n, err := NewNetwork(SingleNode(8), LatencyModel{IntraProcess: time.Microsecond}, func(int, any) {
		atomic.AddInt64(&count, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const senders, per = 8, 500
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n.Send(src, (src+i)%8, i, 1)
			}
		}(s)
	}
	wg.Wait()
	n.Close()
	if got := atomic.LoadInt64(&count); got != senders*per {
		t.Errorf("delivered %d, want %d", got, senders*per)
	}
}

func TestDropFilter(t *testing.T) {
	var delivered int64
	n, err := NewNetwork(SingleNode(2), LatencyModel{IntraProcess: time.Microsecond}, func(int, any) {
		atomic.AddInt64(&delivered, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drop every message to PE 1.
	n.SetDropFilter(func(src, dst, size int) bool { return dst == 1 })
	for i := 0; i < 10; i++ {
		n.Send(0, 1, i, 1) // dropped
		n.Send(1, 0, i, 1) // delivered
	}
	n.Close()
	if got := atomic.LoadInt64(&delivered); got != 10 {
		t.Errorf("delivered %d, want 10", got)
	}
	s := n.Stats()
	if s.Dropped != 10 {
		t.Errorf("Dropped = %d, want 10", s.Dropped)
	}
	if s.MessagesSent != 10 {
		t.Errorf("MessagesSent = %d, want 10 (dropped messages are not traffic)", s.MessagesSent)
	}
}

// Regression: a message counts toward MessagesSent/ItemsSent/BytesByTier
// only when it is actually enqueued. Dropped sends count only as Dropped,
// and sends on a closed network count as nothing.
func TestStatsCountOnlyEnqueuedMessages(t *testing.T) {
	topo := PaperNode(2)
	n, err := NewNetwork(topo, ZeroLatency(), func(int, any) {})
	if err != nil {
		t.Fatal(err)
	}
	n.SetDropFilter(func(src, dst, size int) bool { return dst == 1 })
	n.Send(0, 1, nil, 7)   // dropped
	n.Send(0, 6, nil, 20)  // delivered, intra-node
	n.Send(0, 48, nil, 30) // delivered, inter-node
	n.Close()
	n.Send(0, 6, nil, 100) // post-close: no-op, no stats
	s := n.Stats()
	if s.MessagesSent != 2 || s.ItemsSent != 50 {
		t.Errorf("MessagesSent=%d ItemsSent=%d, want 2 and 50", s.MessagesSent, s.ItemsSent)
	}
	if s.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", s.Dropped)
	}
	var total int64
	for _, b := range s.BytesByTier {
		total += b
	}
	if total != 50 {
		t.Errorf("sum(BytesByTier) = %d, want 50 (dropped/post-close sizes leaked in)", total)
	}
	if s.BytesByTier[TierNode] != 20 || s.BytesByTier[TierMachine] != 30 {
		t.Errorf("tier bytes = %v", s.BytesByTier)
	}
}

// TestNetworkFIFOPerPairSharded drives many concurrent sources into many
// destinations and asserts that per-(src,dst) send order survives the
// sharded lanes: each pair's payload sequence must arrive strictly
// ascending even though lanes are independent and deadline ties are only
// ordered within a lane.
func TestNetworkFIFOPerPairSharded(t *testing.T) {
	const (
		numPEs = 8
		per    = 300
	)
	type tagged struct{ src, seq int }
	var mu sync.Mutex
	lastSeen := map[[2]int]int{} // (src,dst) -> last seq delivered
	violations := 0
	n, err := NewNetwork(SingleNode(numPEs), LatencyModel{IntraProcess: 20 * time.Microsecond}, func(dst int, payload any) {
		m := payload.(tagged)
		mu.Lock()
		key := [2]int{m.src, dst}
		if prev, ok := lastSeen[key]; ok && m.seq <= prev {
			violations++
		}
		lastSeen[key] = m.seq
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for src := 0; src < numPEs; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n.Send(src, (src+i)%numPEs, tagged{src: src, seq: i}, 0)
			}
		}(src)
	}
	wg.Wait()
	n.Close()
	mu.Lock()
	defer mu.Unlock()
	if violations != 0 {
		t.Errorf("%d per-(src,dst) FIFO violations under the sharded queue", violations)
	}
	var delivered int
	for _, last := range lastSeen {
		_ = last
		delivered++
	}
	if delivered != numPEs*numPEs {
		t.Errorf("saw %d (src,dst) pairs, want %d", delivered, numPEs*numPEs)
	}
}

// Property: every PE belongs to exactly one process and one node, and tiers
// are symmetric.
func TestQuickTopologyConsistency(t *testing.T) {
	f := func(nodesRaw, procsRaw, pesRaw uint8) bool {
		topo := Topology{
			Nodes:        int(nodesRaw%4) + 1,
			ProcsPerNode: int(procsRaw%4) + 1,
			PEsPerProc:   int(pesRaw%4) + 1,
		}
		for pe := 0; pe < topo.TotalPEs(); pe++ {
			p := topo.ProcessOf(pe)
			lo, hi := topo.PEsOfProcess(p)
			if pe < lo || pe >= hi {
				return false
			}
			if topo.NodeOf(pe) != p/topo.ProcsPerNode {
				return false
			}
		}
		// Tier symmetry on a sample.
		for a := 0; a < topo.TotalPEs(); a += 3 {
			for b := 0; b < topo.TotalPEs(); b += 5 {
				if topo.TierOf(a, b) != topo.TierOf(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNetworkSendZeroLatency(b *testing.B) {
	n, err := NewNetwork(SingleNode(4), ZeroLatency(), func(int, any) {})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(0, i%4, nil, 1)
	}
}
