package netsim

// Regression tests for the queued-counter ordering in Send and the per-pair
// deadline clamp: the two fabric-level guarantees the false-quiescence
// analysis rests on. QueueLen must never transiently undercount in-flight
// traffic (a quiescence detector that trusts it would terminate with
// messages outstanding), and FIFO per (src, dst) pair must survive delay
// functions that are not monotone in send order.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueueLenConsistentUnderFire is the regression test for the Send
// ordering fix: the queued counter must rise before a message becomes
// visible to the dispatcher. It pings with exactly one message in flight
// per worker, so inside the deliver callback QueueLen() >= 1 is an
// invariant (the delivered message is counted until after the callback
// returns); the pre-fix ordering — increment after the lane unlock — lets
// an OS preemption of the sender thread strand the counter at 0 or below
// for a whole scheduling quantum, which this test observes both at deliver
// time and from spinning monitors. Against the pre-fix code this fails with
// thousands of violations; the fixed ordering admits none.
func TestQueueLenConsistentUnderFire(t *testing.T) {
	// The race needs a sender OS thread suspended mid-Send while the
	// dispatcher keeps running; with GOMAXPROCS=1 a preemption pauses the
	// whole world and the inconsistent window is never concurrently
	// observable.
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}

	topo := SingleNode(16)
	numPEs := topo.TotalPEs()
	const workers = 8
	rounds := 60000
	if testing.Short() {
		rounds = 10000
	}

	acks := make([]chan struct{}, workers)
	for i := range acks {
		acks[i] = make(chan struct{}, 1)
	}
	var underflow, delivered atomic.Int64
	var n *Network
	n, err := NewNetwork(topo, ZeroLatency(), func(dst int, payload any) {
		if n.QueueLen() < 1 {
			underflow.Add(1)
		}
		delivered.Add(1)
		acks[payload.(int)] <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}

	var negative atomic.Int64
	monStop := make(chan struct{})
	var monWG sync.WaitGroup
	for m := 0; m < 2; m++ {
		monWG.Add(1)
		go func() {
			defer monWG.Done()
			for {
				select {
				case <-monStop:
					return
				default:
				}
				if n.QueueLen() < 0 {
					negative.Add(1)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	var sent atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src, dst := w, numPEs-1-w
			for i := 0; i < rounds; i++ {
				sent.Add(1)
				n.Send(src, dst, w, 1)
				<-acks[w]
			}
		}(w)
	}
	wg.Wait()
	n.Close()
	close(monStop)
	monWG.Wait()

	if u := underflow.Load(); u > 0 {
		t.Errorf("QueueLen() < 1 inside deliver %d times: a delivery outran its send's queued increment", u)
	}
	if neg := negative.Load(); neg > 0 {
		t.Errorf("QueueLen() observed negative %d times", neg)
	}
	if s, d := sent.Load(), delivered.Load(); s != d {
		t.Errorf("sent %d != delivered %d after Close", s, d)
	}
	if q := n.QueueLen(); q != 0 {
		t.Errorf("QueueLen() = %d after Close, want 0", q)
	}
}

// TestNetworkFIFOPerPairPerItemSizes pins the per-pair deadline clamp with
// a deterministic schedule: under a PerItem-dominated model, a large batch
// followed by a small one would get a later send with an earlier deadline.
// Without the clamp the small message overtakes the large one and per-pair
// FIFO — which the protocol layers above rely on — silently breaks.
func TestNetworkFIFOPerPairPerItemSizes(t *testing.T) {
	var mu sync.Mutex
	var got []int
	n, err := NewNetwork(SingleNode(2), LatencyModel{PerItem: 50 * time.Microsecond},
		func(dst int, payload any) {
			mu.Lock()
			got = append(got, payload.(int))
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	const k = 50
	for i := 0; i < k; i++ {
		size := 1
		if i%2 == 0 {
			size = 40 // even sends are 40x the serialization cost of odd ones
		}
		n.Send(0, 1, i, size)
	}
	n.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != k {
		t.Fatalf("received %d, want %d", len(got), k)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at position %d: got message %d (small message overtook a large one)", i, v)
		}
	}
}

// TestNetworkFIFOPerPairUnderJitter is the property test for FIFO under
// jittered delay models: an adversarial jitter that assigns strictly
// decreasing delays — every message "should" overtake all of its
// predecessors — must still come out in send order for each (src, dst)
// pair. Concurrent senders own disjoint pairs so per-pair send order is
// well defined.
func TestNetworkFIFOPerPairUnderJitter(t *testing.T) {
	topo := SingleNode(8)
	numPEs := topo.TotalPEs()
	const senders = 4
	const perPair = 300

	lastSeen := make([]int64, numPEs*numPEs)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	type msg struct {
		src int
		n   int64
	}
	var violations atomic.Int64
	n, err := NewNetwork(topo, DefaultLatency(), func(dst int, payload any) {
		m := payload.(msg)
		pair := m.src*numPEs + dst
		if m.n != lastSeen[pair]+1 { // single dispatcher goroutine: no lock needed
			violations.Add(1)
		}
		lastSeen[pair] = m.n
	})
	if err != nil {
		t.Fatal(err)
	}

	// Strictly decreasing delay per call: the worst non-monotone schedule.
	var calls atomic.Int64
	n.SetJitter(func(src, dst, size int, base time.Duration) time.Duration {
		c := calls.Add(1)
		d := time.Duration(senders*numPEs*perPair+1)*time.Microsecond - time.Duration(c)*time.Microsecond
		if d < 0 {
			d = 0
		}
		return d
	})

	var wg sync.WaitGroup
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Disjoint ownership: sources ≡ w (mod senders).
			for i := 0; i < perPair; i++ {
				for src := w; src < numPEs; src += senders {
					dst := (src + 1 + w) % numPEs
					n.Send(src, dst, msg{src: src, n: int64(i)}, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	n.Close()

	if v := violations.Load(); v > 0 {
		t.Errorf("%d per-pair FIFO violations under adversarial decreasing jitter", v)
	}
}
