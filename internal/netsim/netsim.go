// Package netsim simulates the communication fabric of the clusters the
// paper evaluates on (Delta at NCSA and Frontier at ORNL, §IV-C).
//
// The paper's experiments need a machine with distinguishable communication
// tiers: PEs within a process share memory, processes within a node talk
// over shared memory or loopback, and nodes talk over the interconnect.
// ACIC's advantage over bulk-synchronous Δ-stepping comes precisely from
// hiding the latency of the slowest tier, so the simulation reproduces the
// tiers as injected delivery delays rather than pretending every goroutine
// is adjacent.
//
// A Topology describes nodes × processes-per-node × PEs-per-process exactly
// as the paper configures its runs (8 processes/node, 6 PEs/process). A
// Network owns a time-ordered delay queue: senders enqueue a message with
// the latency implied by the (src, dst) tier plus a per-item serialization
// cost, and a dispatcher goroutine delivers each message to the
// caller-provided delivery function when its deadline arrives. Messages
// between two PEs are delivered in send order (FIFO per source-destination
// pair), matching the in-order delivery Charm++ guarantees between a pair
// of PEs on one channel.
package netsim

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Topology is the machine shape: Nodes × ProcsPerNode × PEsPerProc.
// PE ids are dense in [0, TotalPEs()) with PEs of one process contiguous
// and processes of one node contiguous, matching +ppn-style launches.
type Topology struct {
	Nodes        int
	ProcsPerNode int
	PEsPerProc   int
}

// SingleNode returns a one-node topology with one process of numPEs PEs —
// the pure shared-memory configuration used for the §IV-E parameter sweeps.
func SingleNode(numPEs int) Topology {
	return Topology{Nodes: 1, ProcsPerNode: 1, PEsPerProc: numPEs}
}

// PaperNode returns the per-node shape used in §IV-C: 8 processes per node,
// 6 worker PEs per process (the 48 cores minus communication/OS cores are
// the workers).
func PaperNode(nodes int) Topology {
	return Topology{Nodes: nodes, ProcsPerNode: 8, PEsPerProc: 6}
}

// Validate returns an error if any dimension is non-positive.
func (t Topology) Validate() error {
	if t.Nodes <= 0 || t.ProcsPerNode <= 0 || t.PEsPerProc <= 0 {
		return fmt.Errorf("netsim: invalid topology %+v", t)
	}
	return nil
}

// TotalPEs returns the number of PEs in the machine.
func (t Topology) TotalPEs() int { return t.Nodes * t.ProcsPerNode * t.PEsPerProc }

// TotalProcs returns the number of processes in the machine.
func (t Topology) TotalProcs() int { return t.Nodes * t.ProcsPerNode }

// ProcessOf returns the process id of a PE.
func (t Topology) ProcessOf(pe int) int { return pe / t.PEsPerProc }

// NodeOf returns the node id of a PE.
func (t Topology) NodeOf(pe int) int { return pe / (t.PEsPerProc * t.ProcsPerNode) }

// PEsOfProcess returns the half-open PE range [lo, hi) of process p.
func (t Topology) PEsOfProcess(p int) (lo, hi int) {
	return p * t.PEsPerProc, (p + 1) * t.PEsPerProc
}

// Tier classifies the communication distance between two PEs.
type Tier uint8

// Communication tiers, nearest first.
const (
	TierSelf Tier = iota // same PE
	TierProcess
	TierNode
	TierMachine
)

// TierOf returns the tier between two PEs.
func (t Topology) TierOf(src, dst int) Tier {
	switch {
	case src == dst:
		return TierSelf
	case t.ProcessOf(src) == t.ProcessOf(dst):
		return TierProcess
	case t.NodeOf(src) == t.NodeOf(dst):
		return TierNode
	default:
		return TierMachine
	}
}

// LatencyModel maps a tier and message size to a delivery delay.
type LatencyModel struct {
	// Base one-way latencies per tier.
	Self, IntraProcess, IntraNode, InterNode time.Duration
	// PerItem adds serialization cost proportional to message size (in
	// items, e.g. updates in a tram batch). Aggregation amortizes the base
	// latency but not this term — which is why Fig. 6's optimal buffer size
	// shrinks as parallelism grows.
	PerItem time.Duration
}

// DefaultLatency returns a model with tier ratios resembling a real
// cluster (inter-node ≈ 25× intra-process) scaled down so full experiment
// suites finish in seconds.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		Self:         0,
		IntraProcess: 2 * time.Microsecond,
		IntraNode:    10 * time.Microsecond,
		InterNode:    50 * time.Microsecond,
		PerItem:      20 * time.Nanosecond,
	}
}

// ZeroLatency returns a model with no injected delay, for unit tests that
// exercise only logical behaviour.
func ZeroLatency() LatencyModel { return LatencyModel{} }

// Delay returns the delivery delay for a message of size items over tier.
func (m LatencyModel) Delay(tier Tier, size int) time.Duration {
	var base time.Duration
	switch tier {
	case TierSelf:
		base = m.Self
	case TierProcess:
		base = m.IntraProcess
	case TierNode:
		base = m.IntraNode
	default:
		base = m.InterNode
	}
	return base + time.Duration(size)*m.PerItem
}

// Stats aggregates network-level counters. Read with Network.Stats after
// the run; fields are updated atomically.
type Stats struct {
	MessagesSent  int64 // individual Send calls
	ItemsSent     int64 // sum of message sizes
	BytesByTier   [4]int64
	MaxQueueDepth int64
	Dropped       int64 // messages discarded by an injected fault filter
}

// DropFilter decides whether to discard a message, for fault-injection
// tests. It is consulted on every Send with the message's endpoints and
// size; returning true drops the message silently — the failure mode of a
// lossy fabric. Charm++ (and therefore ACIC) assumes reliable delivery;
// the injection tests document what that assumption buys: a lost update
// leaves the quiescence counters permanently unequal, so the algorithm
// visibly hangs rather than silently producing wrong distances.
type DropFilter func(src, dst, size int) bool

// Network is the delay-queue message fabric.
type Network struct {
	topo    Topology
	model   LatencyModel
	deliver func(dst int, payload any)
	drop    DropFilter

	mu      sync.Mutex
	cond    *sync.Cond
	queue   deliveryHeap
	seq     uint64 // tiebreak: preserves FIFO among equal deadlines
	closed  bool
	stats   Stats
	started bool
	done    chan struct{}
}

type delivery struct {
	at      time.Time
	seq     uint64
	dst     int
	payload any
}

type deliveryHeap []delivery

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h deliveryHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)    { *h = append(*h, x.(delivery)) }
func (h *deliveryHeap) Pop() any      { old := *h; n := len(old); d := old[n-1]; *h = old[:n-1]; return d }
func (h deliveryHeap) peek() delivery { return h[0] }

// NewNetwork creates a network over topo with the given latency model.
// deliver is invoked from the dispatcher goroutine for every message at its
// delivery time; it must be safe for concurrent use with senders and must
// not block for long (it typically appends to an unbounded mailbox).
// The returned Network is running; call Close when done.
func NewNetwork(topo Topology, model LatencyModel, deliver func(dst int, payload any)) (*Network, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if deliver == nil {
		return nil, fmt.Errorf("netsim: nil deliver function")
	}
	n := &Network{
		topo:    topo,
		model:   model,
		deliver: deliver,
		done:    make(chan struct{}),
	}
	n.cond = sync.NewCond(&n.mu)
	n.started = true
	go n.dispatch()
	return n, nil
}

// Topology returns the network's topology.
func (n *Network) Topology() Topology { return n.topo }

// SetDropFilter installs a fault-injection filter. Call before any Send;
// the filter runs on sender goroutines and must be safe for concurrent
// use. A nil filter (the default) delivers everything.
func (n *Network) SetDropFilter(f DropFilter) {
	n.mu.Lock()
	n.drop = f
	n.mu.Unlock()
}

// Model returns the latency model.
func (n *Network) Model() LatencyModel { return n.model }

// Send schedules payload for delivery to dst's mailbox after the delay
// implied by the (src, dst) tier and size (in items). It is safe for
// concurrent use. Sending on a closed network is a no-op.
func (n *Network) Send(src, dst int, payload any, size int) {
	tier := n.topo.TierOf(src, dst)
	delay := n.model.Delay(tier, size)
	atomic.AddInt64(&n.stats.MessagesSent, 1)
	atomic.AddInt64(&n.stats.ItemsSent, int64(size))
	atomic.AddInt64(&n.stats.BytesByTier[tier], int64(size))

	n.mu.Lock()
	if n.drop != nil && n.drop(src, dst, size) {
		atomic.AddInt64(&n.stats.Dropped, 1)
		n.mu.Unlock()
		return
	}
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.seq++
	heap.Push(&n.queue, delivery{at: time.Now().Add(delay), seq: n.seq, dst: dst, payload: payload})
	if d := int64(len(n.queue)); d > n.stats.MaxQueueDepth {
		n.stats.MaxQueueDepth = d
	}
	n.cond.Signal()
	n.mu.Unlock()
}

// dispatch delivers queued messages at their deadlines.
func (n *Network) dispatch() {
	defer close(n.done)
	n.mu.Lock()
	for {
		for len(n.queue) == 0 && !n.closed {
			n.cond.Wait()
		}
		if n.closed && len(n.queue) == 0 {
			n.mu.Unlock()
			return
		}
		next := n.queue.peek()
		now := time.Now()
		if next.at.After(now) {
			// Sleep outside the lock so senders can enqueue; re-check the
			// head afterwards because an earlier message may have arrived.
			wait := next.at.Sub(now)
			n.mu.Unlock()
			if wait > time.Millisecond {
				// Bounded nap: wake early if an earlier deadline arrives.
				time.Sleep(time.Millisecond)
			} else {
				time.Sleep(wait)
			}
			n.mu.Lock()
			continue
		}
		d := heap.Pop(&n.queue).(delivery)
		n.mu.Unlock()
		n.deliver(d.dst, d.payload)
		n.mu.Lock()
	}
}

// Close stops accepting new messages, delivers everything still queued, and
// waits for the dispatcher to exit.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		<-n.done
		return
	}
	n.closed = true
	n.cond.Signal()
	n.mu.Unlock()
	<-n.done
}

// QueueLen reports how many messages are scheduled but not yet delivered.
// The runtime's quiescence detector uses it to rule out in-flight messages.
func (n *Network) QueueLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// Stats returns a copy of the network counters. Call after Close, or accept
// slightly stale values mid-run.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	depth := n.stats.MaxQueueDepth
	n.mu.Unlock()
	return Stats{
		MessagesSent: atomic.LoadInt64(&n.stats.MessagesSent),
		ItemsSent:    atomic.LoadInt64(&n.stats.ItemsSent),
		BytesByTier: [4]int64{
			atomic.LoadInt64(&n.stats.BytesByTier[0]),
			atomic.LoadInt64(&n.stats.BytesByTier[1]),
			atomic.LoadInt64(&n.stats.BytesByTier[2]),
			atomic.LoadInt64(&n.stats.BytesByTier[3]),
		},
		MaxQueueDepth: depth,
		Dropped:       atomic.LoadInt64(&n.stats.Dropped),
	}
}
