// Package netsim simulates the communication fabric of the clusters the
// paper evaluates on (Delta at NCSA and Frontier at ORNL, §IV-C).
//
// The paper's experiments need a machine with distinguishable communication
// tiers: PEs within a process share memory, processes within a node talk
// over shared memory or loopback, and nodes talk over the interconnect.
// ACIC's advantage over bulk-synchronous Δ-stepping comes precisely from
// hiding the latency of the slowest tier, so the simulation reproduces the
// tiers as injected delivery delays rather than pretending every goroutine
// is adjacent.
//
// A Topology describes nodes × processes-per-node × PEs-per-process exactly
// as the paper configures its runs (8 processes/node, 6 PEs/process). A
// Network owns a sharded, time-ordered delay-queue fabric: one lane (a
// typed min-heap under its own mutex) per destination PE. Senders enqueue
// a message into the destination's lane with the latency implied by the
// (src, dst) tier plus a per-item serialization cost, and a single
// dispatcher goroutine delivers each message to the caller-provided
// delivery function when its deadline arrives, waking exactly at the
// earliest pending deadline (timer + wake channel, no polling). Messages
// between two PEs are delivered in send order (FIFO per source-destination
// pair), matching the in-order delivery Charm++ guarantees between a pair
// of PEs on one channel: both endpoints of a pair map to the same lane,
// where per-pair deadlines are clamped to be monotone in send order and a
// per-lane sequence number breaks the remaining deadline ties in enqueue
// order — so the guarantee holds even under jittered delay models
// (SetJitter) whose delays are not monotone in send order.
package netsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"acic/internal/fabric"
	"acic/internal/metrics"
)

// Topology is the machine shape: Nodes × ProcsPerNode × PEsPerProc.
// PE ids are dense in [0, TotalPEs()) with PEs of one process contiguous
// and processes of one node contiguous, matching +ppn-style launches.
type Topology struct {
	Nodes        int
	ProcsPerNode int
	PEsPerProc   int
}

// SingleNode returns a one-node topology with one process of numPEs PEs —
// the pure shared-memory configuration used for the §IV-E parameter sweeps.
func SingleNode(numPEs int) Topology {
	return Topology{Nodes: 1, ProcsPerNode: 1, PEsPerProc: numPEs}
}

// PaperNode returns the per-node shape used in §IV-C: 8 processes per node,
// 6 worker PEs per process (the 48 cores minus communication/OS cores are
// the workers).
func PaperNode(nodes int) Topology {
	return Topology{Nodes: nodes, ProcsPerNode: 8, PEsPerProc: 6}
}

// Validate returns an error if any dimension is non-positive.
func (t Topology) Validate() error {
	if t.Nodes <= 0 || t.ProcsPerNode <= 0 || t.PEsPerProc <= 0 {
		return fmt.Errorf("netsim: invalid topology %+v", t)
	}
	return nil
}

// TotalPEs returns the number of PEs in the machine.
func (t Topology) TotalPEs() int { return t.Nodes * t.ProcsPerNode * t.PEsPerProc }

// TotalProcs returns the number of processes in the machine.
func (t Topology) TotalProcs() int { return t.Nodes * t.ProcsPerNode }

// ProcessOf returns the process id of a PE.
func (t Topology) ProcessOf(pe int) int { return pe / t.PEsPerProc }

// NodeOf returns the node id of a PE.
func (t Topology) NodeOf(pe int) int { return pe / (t.PEsPerProc * t.ProcsPerNode) }

// PEsOfProcess returns the half-open PE range [lo, hi) of process p.
func (t Topology) PEsOfProcess(p int) (lo, hi int) {
	return p * t.PEsPerProc, (p + 1) * t.PEsPerProc
}

// Tier classifies the communication distance between two PEs.
type Tier uint8

// Communication tiers, nearest first.
const (
	TierSelf Tier = iota // same PE
	TierProcess
	TierNode
	TierMachine
)

// TierOf returns the tier between two PEs.
func (t Topology) TierOf(src, dst int) Tier {
	switch {
	case src == dst:
		return TierSelf
	case t.ProcessOf(src) == t.ProcessOf(dst):
		return TierProcess
	case t.NodeOf(src) == t.NodeOf(dst):
		return TierNode
	default:
		return TierMachine
	}
}

// LatencyModel maps a tier and message size to a delivery delay.
type LatencyModel struct {
	// Base one-way latencies per tier.
	Self, IntraProcess, IntraNode, InterNode time.Duration
	// PerItem adds serialization cost proportional to message size (in
	// items, e.g. updates in a tram batch). Aggregation amortizes the base
	// latency but not this term — which is why Fig. 6's optimal buffer size
	// shrinks as parallelism grows.
	PerItem time.Duration
}

// DefaultLatency returns a model with tier ratios resembling a real
// cluster (inter-node ≈ 25× intra-process) scaled down so full experiment
// suites finish in seconds.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		Self:         0,
		IntraProcess: 2 * time.Microsecond,
		IntraNode:    10 * time.Microsecond,
		InterNode:    50 * time.Microsecond,
		PerItem:      20 * time.Nanosecond,
	}
}

// ZeroLatency returns a model with no injected delay, for unit tests that
// exercise only logical behaviour.
func ZeroLatency() LatencyModel { return LatencyModel{} }

// Delay returns the delivery delay for a message of size items over tier.
func (m LatencyModel) Delay(tier Tier, size int) time.Duration {
	var base time.Duration
	switch tier {
	case TierSelf:
		base = m.Self
	case TierProcess:
		base = m.IntraProcess
	case TierNode:
		base = m.IntraNode
	default:
		base = m.InterNode
	}
	return base + time.Duration(size)*m.PerItem
}

// Stats aggregates network-level counters. Read with Network.Stats after
// the run; fields are updated atomically.
type Stats struct {
	MessagesSent  int64 // individual Send calls
	ItemsSent     int64 // sum of message sizes
	BytesByTier   [4]int64
	MaxQueueDepth int64
	Dropped       int64 // messages discarded by an injected fault filter
	Duplicated    int64 // extra copies injected by a duplication filter
	Reordered     int64 // messages released from the per-pair FIFO clamp
}

// SendResult reports what happened to one Send (or SendAfter) call. Callers
// that assume a reliable fabric may ignore it; the reliable-delivery layer
// (internal/relnet) uses it to keep its retransmit and ack ledgers exact.
// It is an alias of fabric.SendResult so netsim's constants and those of
// any other fabric.Fabric implementation are interchangeable.
type SendResult = fabric.SendResult

// Send outcomes.
const (
	// SendEnqueued: the message entered a lane and will be delivered.
	SendEnqueued = fabric.SendEnqueued
	// SendDropped: an injected DropFilter discarded the message.
	SendDropped = fabric.SendDropped
	// SendClosed: the network was already closed; the message vanished.
	SendClosed = fabric.SendClosed
)

// The simulated network is the reference implementation of the fabric
// surface the runtime programs against.
var _ fabric.Fabric = (*Network)(nil)

// DropFilter decides whether to discard a message, for fault-injection
// tests. It is consulted on every Send with the message's endpoints and
// size; returning true drops the message silently — the failure mode of a
// lossy fabric. Charm++ (and therefore ACIC's core counters) assume
// reliable delivery; without the relnet layer a lost update leaves the
// quiescence counters permanently unequal, so the algorithm visibly hangs
// rather than silently producing wrong distances. With relnet installed the
// dropped message is retransmitted until a copy gets through.
type DropFilter func(src, dst, size int) bool

// DupFilter injects duplicate deliveries, the second failure mode of a
// lossy fabric (a retransmitting transport that loses the ack, a flaky NIC
// ring). It is consulted on every enqueued Send; returning dup=true makes
// the fabric enqueue a second copy of the message scheduled extra after the
// original's deadline (negative extra is clamped to zero). The copy is a
// ghost: it bypasses the per-pair FIFO clamp and does not advance the
// pair's deadline floor, so it can land arbitrarily between — or long
// after — legitimate traffic. Receivers without a dedup layer will process
// it twice; Stats.Duplicated counts the injected copies.
type DupFilter func(src, dst, size int) (extra time.Duration, dup bool)

// ReorderFilter breaks the fabric's per-pair FIFO guarantee for selected
// messages, modeling adversarial reordering (multipath routing, retried
// RPCs). A message selected with reorder=true is scheduled extra after its
// modeled delay, bypasses the per-pair FIFO clamp, and does not advance the
// pair's deadline floor — so messages sent after it can overtake it.
// Stats.Reordered counts the released messages. Only order-insensitive
// receivers (label-correcting relaxation, the relnet dedup window) should
// run under a ReorderFilter.
type ReorderFilter func(src, dst, size int) (extra time.Duration, reorder bool)

// FaultPlan bundles the fault filters a run installs on its fabric — the
// shape run drivers and the stress harness pass around instead of three
// separate setters. Nil members install nothing.
type FaultPlan struct {
	Drop    DropFilter
	Dup     DupFilter
	Reorder ReorderFilter
}

// Empty reports whether the plan installs no filter at all.
func (p FaultPlan) Empty() bool {
	return p.Drop == nil && p.Dup == nil && p.Reorder == nil
}

// ApplyFaults installs the plan's non-nil filters. Like the individual
// setters it is safe mid-run, but runs normally call it before any Send.
func (n *Network) ApplyFaults(p FaultPlan) {
	if p.Drop != nil {
		n.SetDropFilter(p.Drop)
	}
	if p.Dup != nil {
		n.SetDupFilter(p.Dup)
	}
	if p.Reorder != nil {
		n.SetReorderFilter(p.Reorder)
	}
}

// JitterFunc perturbs the modeled delay of one message. It receives the
// endpoints, the size in items, and the delay the LatencyModel assigned,
// and returns the delay to use instead. The schedule-stress harness
// (internal/stress) installs deterministic seeded jitter through this hook
// to shake out timing-dependent bugs; negative results are clamped to zero.
// The function runs on sender goroutines and must be safe for concurrent
// use. Per-pair FIFO order is preserved regardless of what the jitter
// returns: the fabric never delivers a later send of a (src, dst) pair
// before an earlier one (see Send).
type JitterFunc func(src, dst, size int, base time.Duration) time.Duration

// Network is the sharded delay-queue message fabric.
type Network struct {
	topo    Topology
	model   LatencyModel
	deliver func(dst int, payload any)
	drop    atomic.Pointer[DropFilter]
	dup     atomic.Pointer[DupFilter]
	reorder atomic.Pointer[ReorderFilter]
	jitter  atomic.Pointer[JitterFunc]

	// epoch anchors all deadlines: deliveries are scheduled in nanoseconds
	// since epoch, measured with the monotonic clock, so deadline math is
	// plain int64 comparison and immune to wall-clock steps.
	epoch time.Time

	lanes []lane // one per destination PE

	// queued is correctness-critical (QueueLen feeds quiescence detection)
	// and stays a single atomic; the traffic counters below are telemetry
	// and live in a metrics.Registry, sharded by source PE.
	queued atomic.Int64 // scheduled but not yet delivered, all lanes

	closed    atomic.Bool
	closeOnce sync.Once
	wake      chan struct{} // buffered(1): senders nudge the dispatcher
	done      chan struct{}

	messagesSent *metrics.Counter
	itemsSent    *metrics.Counter
	bytesByTier  [4]*metrics.Counter
	dropped      *metrics.Counter
	duplicated   *metrics.Counter
	reordered    *metrics.Counter
	maxDepth     *metrics.Gauge
}

// laneEmpty is the nextAt sentinel for a lane with nothing queued.
const laneEmpty = math.MaxInt64

// lane is one destination PE's delay queue. Both directions of a (src,dst)
// pair hit a single lane (the dst's), so per-pair FIFO needs only the
// per-lane seq tiebreak. The padding keeps neighboring lanes off one cache
// line; lanes are the contended structures of the fabric.
type lane struct {
	mu     sync.Mutex
	q      deliveryQueue
	seq    uint64 // tiebreak: preserves FIFO among equal deadlines
	closed bool

	// pairAt[src] is the deadline of the latest message enqueued from src
	// into this lane, allocated on the lane's first Send. Deadlines of a
	// (src, dst) pair are clamped to be monotone non-decreasing, so FIFO
	// per pair survives delays that are not monotone in send order —
	// jittered models, or a large per-item batch followed by a small one.
	pairAt []int64

	// nextAt mirrors the head deadline (laneEmpty when empty) so the
	// dispatcher can scan lanes without taking their locks.
	nextAt atomic.Int64

	_ [64]byte
}

type delivery struct {
	at      int64 // nanoseconds since Network.epoch
	seq     uint64
	payload any
}

// deliveryQueue is a hand-rolled binary min-heap over delivery values.
// Unlike container/heap it never boxes elements into interfaces, so a
// steady-state push/pop cycle allocates nothing once the backing array has
// grown to the high-water depth.
type deliveryQueue []delivery

func (q deliveryQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *deliveryQueue) push(d delivery) {
	*q = append(*q, d)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *deliveryQueue) pop() delivery {
	h := *q
	d := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n].payload = nil // release for GC
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return d
}

// NewNetwork creates a network over topo with the given latency model.
// deliver is invoked from the dispatcher goroutine for every message at its
// delivery time; it must be safe for concurrent use with senders and must
// not block for long (it typically appends to an unbounded mailbox).
// The returned Network is running; call Close when done. Counters land in
// a private registry; use NewNetworkWithRegistry to aggregate them into a
// run-wide one.
func NewNetwork(topo Topology, model LatencyModel, deliver func(dst int, payload any)) (*Network, error) {
	return NewNetworkWithRegistry(topo, model, deliver, nil)
}

// NewNetworkWithRegistry is NewNetwork with the fabric's traffic counters
// registered in reg under the "netsim." prefix, sharded by source PE. reg
// must have been created for at least topo.TotalPEs() shards; a nil reg
// selects a private registry so the counters (and therefore Stats) always
// exist.
func NewNetworkWithRegistry(topo Topology, model LatencyModel, deliver func(dst int, payload any), reg *metrics.Registry) (*Network, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if deliver == nil {
		return nil, fmt.Errorf("netsim: nil deliver function")
	}
	if reg == nil {
		reg = metrics.New(topo.TotalPEs())
	}
	n := &Network{
		topo:    topo,
		model:   model,
		deliver: deliver,
		//acic:allow-wallclock the epoch anchors the delay fabric's monotonic timeline; taken once per Network
		epoch: time.Now(),
		lanes: make([]lane, topo.TotalPEs()),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),

		messagesSent: reg.Counter("netsim.messages_sent"),
		itemsSent:    reg.Counter("netsim.items_sent"),
		bytesByTier: [4]*metrics.Counter{
			reg.Counter("netsim.items_tier_self"),
			reg.Counter("netsim.items_tier_process"),
			reg.Counter("netsim.items_tier_node"),
			reg.Counter("netsim.items_tier_machine"),
		},
		dropped:    reg.Counter("netsim.dropped"),
		duplicated: reg.Counter("netsim.duplicated"),
		reordered:  reg.Counter("netsim.reordered"),
		maxDepth:   reg.Gauge("netsim.max_queue_depth"),
	}
	for i := range n.lanes {
		n.lanes[i].nextAt.Store(laneEmpty)
	}
	//acic:allow-goroutine the dispatcher is the fabric's own delivery thread, joined by Close
	go n.dispatch()
	return n, nil
}

// Topology returns the network's topology.
func (n *Network) Topology() Topology { return n.topo }

// SetDropFilter installs a fault-injection filter. A nil filter (the
// default) delivers everything.
//
// Mid-run swaps are race-free and permitted: the filter lives behind an
// atomic pointer, every Send consults exactly one filter (loaded once,
// before any fabric lock), and a swap never tears — a concurrent Send sees
// either the old filter or the new one, never a mix, and the Dropped
// counter advances only for messages the consulted filter rejected. What a
// swap does NOT give is a delivery barrier: messages already enqueued by
// the old filter's verdict are still in flight and will be delivered. The
// filter runs on sender goroutines — outside every fabric lock, so a slow
// filter can never stall the dispatcher — and must itself be safe for
// concurrent use (TestDropFilterMidRunSwap pins these semantics).
func (n *Network) SetDropFilter(f DropFilter) {
	if f == nil {
		n.drop.Store(nil)
		return
	}
	n.drop.Store(&f)
}

// SetDupFilter installs a duplication fault filter (see DupFilter). The
// same mid-run swap semantics as SetDropFilter apply. A nil filter (the
// default) duplicates nothing.
func (n *Network) SetDupFilter(f DupFilter) {
	if f == nil {
		n.dup.Store(nil)
		return
	}
	n.dup.Store(&f)
}

// SetReorderFilter installs an adversarial-reordering filter (see
// ReorderFilter). The same mid-run swap semantics as SetDropFilter apply.
// A nil filter (the default) preserves per-pair FIFO for every message.
func (n *Network) SetReorderFilter(f ReorderFilter) {
	if f == nil {
		n.reorder.Store(nil)
		return
	}
	n.reorder.Store(&f)
}

// Model returns the latency model.
func (n *Network) Model() LatencyModel { return n.model }

// SetJitter installs a per-message delay perturbation. Call before any
// Send; a nil func (the default) leaves the model's delays untouched.
func (n *Network) SetJitter(j JitterFunc) {
	if j == nil {
		n.jitter.Store(nil)
		return
	}
	n.jitter.Store(&j)
}

// Send schedules payload for delivery to dst's mailbox after the delay
// implied by the (src, dst) tier and size (in items). It is safe for
// concurrent use. Sending on a closed network is a no-op (SendClosed). A
// message counts toward MessagesSent/ItemsSent/BytesByTier only when it is
// actually enqueued: dropped and post-close sends are not traffic.
func (n *Network) Send(src, dst int, payload any, size int) SendResult {
	// The fault filters are user code: evaluate them before touching any
	// fabric lock so a slow filter cannot stall the dispatcher.
	if f := n.drop.Load(); f != nil && (*f)(src, dst, size) {
		n.dropped.Add(src, 1)
		return SendDropped
	}
	tier := n.topo.TierOf(src, dst)
	delay := n.model.Delay(tier, size)
	if j := n.jitter.Load(); j != nil {
		if delay = (*j)(src, dst, size, delay); delay < 0 {
			delay = 0
		}
	}
	var reorderExtra time.Duration
	reordered := false
	if f := n.reorder.Load(); f != nil {
		if extra, ok := (*f)(src, dst, size); ok {
			if extra < 0 {
				extra = 0
			}
			reorderExtra, reordered = extra, true
		}
	}
	var dupExtra time.Duration
	duplicated := false
	if f := n.dup.Load(); f != nil {
		if extra, ok := (*f)(src, dst, size); ok {
			if extra < 0 {
				extra = 0
			}
			dupExtra, duplicated = extra, true
		}
	}
	//acic:allow-wallclock latency injection maps simulated delay onto the real timeline by design
	at := int64(time.Since(n.epoch) + delay)

	la := &n.lanes[dst]
	la.mu.Lock()
	if la.closed {
		la.mu.Unlock()
		return SendClosed
	}
	if reordered {
		// Released from the FIFO clamp: the message is scheduled past its
		// modeled delay and does not raise the pair's deadline floor, so
		// later sends of the pair may overtake it.
		at += int64(reorderExtra)
	} else {
		// Clamp the deadline so it never precedes an earlier send of the
		// same (src, dst) pair: per-pair FIFO must hold for any delay
		// function, not only monotone ones (the seq tiebreak alone covers
		// only exact ties).
		if la.pairAt == nil {
			la.pairAt = make([]int64, len(n.lanes))
		}
		if at < la.pairAt[src] {
			at = la.pairAt[src]
		}
		la.pairAt[src] = at
	}
	newHead := la.pushLocked(n, at, payload)
	if duplicated {
		// The copy is a ghost: no clamp, no pairAt update, so it lands
		// wherever its deadline falls relative to legitimate traffic.
		if la.pushLocked(n, at+int64(dupExtra), payload) {
			newHead = true
		}
	}
	depth := n.queued.Load()
	if newHead {
		la.nextAt.Store(la.q[0].at)
	}
	la.mu.Unlock()

	n.messagesSent.Add(src, 1)
	n.itemsSent.Add(src, int64(size))
	n.bytesByTier[tier].Add(src, int64(size))
	if reordered {
		n.reordered.Add(src, 1)
	}
	if duplicated {
		n.duplicated.Add(src, 1)
	}
	// Per-src high-water mark of the global depth: the gauge's Max over
	// shards recovers the machine-wide maximum the old CAS loop tracked.
	n.maxDepth.SetMax(src, depth)
	if newHead {
		// A pushed message is now its lane's earliest; the dispatcher may
		// be sleeping toward a later deadline. Non-blocking nudge: a full
		// buffer means a wake is already pending.
		select {
		case n.wake <- struct{}{}:
		default:
		}
	}
	return SendEnqueued
}

// pushLocked enqueues one delivery while the lane lock is held and reports
// whether it became the lane's new head. queued must rise before the
// message becomes visible to the dispatcher (it cannot pop until the lane
// lock is released): incrementing after the unlock opens a window where a
// message is delivered and decremented first, letting QueueLen() read 0 —
// or negative — while traffic is outstanding, a false-quiescence hazard for
// any detector that trusts QueueLen.
func (la *lane) pushLocked(n *Network, at int64, payload any) bool {
	la.seq++
	n.queued.Add(1)
	la.q.push(delivery{at: at, seq: la.seq, payload: payload})
	return la.q[0].at == at && la.q[0].seq == la.seq
}

// SendAfter schedules payload for delivery to dst exactly delay from now,
// bypassing the latency model, every fault filter, the per-pair FIFO clamp
// and the traffic counters. It is the fabric's timer facility: the
// reliable-delivery layer schedules its retransmit and delayed-ack checks
// through it, so timeouts ride the same simulated timeline as the traffic
// they guard — no second clock, no polling. Timer deliveries still count
// toward QueueLen (a pending timer is a reason not to declare the fabric
// quiet) and are delivered in deadline order like any message.
func (n *Network) SendAfter(dst int, payload any, delay time.Duration) SendResult {
	if delay < 0 {
		delay = 0
	}
	//acic:allow-wallclock timer deadlines live on the same real timeline the fabric schedules on
	at := int64(time.Since(n.epoch) + delay)
	la := &n.lanes[dst]
	la.mu.Lock()
	if la.closed {
		la.mu.Unlock()
		return SendClosed
	}
	newHead := la.pushLocked(n, at, payload)
	if newHead {
		la.nextAt.Store(at)
	}
	la.mu.Unlock()
	if newHead {
		select {
		case n.wake <- struct{}{}:
		default:
		}
	}
	return SendEnqueued
}

// dispatch delivers queued messages at their deadlines. It scans the
// lanes' lock-free nextAt mirrors for the earliest pending deadline, then
// waits exactly until that deadline (or an earlier-deadline send arrives)
// on a timer + wake channel — no polling naps, so sub-millisecond
// latencies are honored without spinning.
func (n *Network) dispatch() {
	defer close(n.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		best := -1
		bestAt := int64(laneEmpty)
		for i := range n.lanes {
			if at := n.lanes[i].nextAt.Load(); at < bestAt {
				bestAt, best = at, i
			}
		}
		if best < 0 {
			// Nothing queued anywhere. Every lane is marked closed before
			// n.closed is set, so observing closed here means no further
			// enqueue can happen: drained, done.
			if n.closed.Load() {
				return
			}
			<-n.wake
			continue
		}
		//acic:allow-wallclock the dispatcher compares due times against the real timeline it schedules on
		now := int64(time.Since(n.epoch))
		if bestAt > now {
			timer.Reset(time.Duration(bestAt - now))
			select {
			case <-n.wake:
				// An earlier deadline may have arrived; rescan.
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
			}
			continue
		}
		la := &n.lanes[best]
		la.mu.Lock()
		var payload any
		delivered := false
		if len(la.q) > 0 && la.q[0].at <= now {
			payload = la.q.pop().payload
			delivered = true
			if len(la.q) > 0 {
				la.nextAt.Store(la.q[0].at)
			} else {
				la.nextAt.Store(laneEmpty)
			}
		}
		la.mu.Unlock()
		if delivered {
			n.deliver(best, payload)
			n.queued.Add(-1)
		}
	}
}

// Close stops accepting new messages, delivers everything still queued at
// its scheduled deadline, and waits for the dispatcher to exit.
func (n *Network) Close() {
	n.closeOnce.Do(func() {
		// Mark every lane closed first: once the loop finishes no sender
		// can enqueue, and only then may the dispatcher's "closed and all
		// lanes empty" exit check become true.
		for i := range n.lanes {
			la := &n.lanes[i]
			la.mu.Lock()
			la.closed = true
			la.mu.Unlock()
		}
		n.closed.Store(true)
		select {
		case n.wake <- struct{}{}:
		default:
		}
	})
	<-n.done
}

// QueueLen reports how many messages are scheduled but not yet delivered.
// The runtime's quiescence detector uses it to rule out in-flight messages.
func (n *Network) QueueLen() int {
	return int(n.queued.Load())
}

// Stats returns a copy of the network counters. Call after Close, or accept
// slightly stale values mid-run. It is a thin view over the registry
// instruments; callers wanting per-source-PE resolution read the "netsim."
// counters from the registry directly.
func (n *Network) Stats() Stats {
	return Stats{
		MessagesSent: n.messagesSent.Value(),
		ItemsSent:    n.itemsSent.Value(),
		BytesByTier: [4]int64{
			n.bytesByTier[0].Value(),
			n.bytesByTier[1].Value(),
			n.bytesByTier[2].Value(),
			n.bytesByTier[3].Value(),
		},
		MaxQueueDepth: n.maxDepth.Max(),
		Dropped:       n.dropped.Value(),
		Duplicated:    n.duplicated.Value(),
		Reordered:     n.reordered.Value(),
	}
}
