package netsim

// Tests for the fault-injection surface beyond DropFilter — duplication and
// adversarial reordering — plus the SendAfter timer facility and the pinned
// mid-run DropFilter swap semantics.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDupFilterDeliversTwice: a duplicated message is delivered twice, the
// copy is counted in Stats.Duplicated, and the queued counter drains to
// zero — the ledger sees the ghost.
func TestDupFilterDeliversTwice(t *testing.T) {
	var got atomic.Int64
	n, err := NewNetwork(SingleNode(2), ZeroLatency(), func(dst int, payload any) {
		got.Add(int64(payload.(int)))
	})
	if err != nil {
		t.Fatal(err)
	}
	n.SetDupFilter(func(src, dst, size int) (time.Duration, bool) {
		return 100 * time.Microsecond, true
	})
	if res := n.Send(0, 1, 7, 1); res != SendEnqueued {
		t.Fatalf("Send = %v, want SendEnqueued", res)
	}
	n.Close()
	if got.Load() != 14 {
		t.Errorf("payload sum = %d, want 14 (original + duplicate)", got.Load())
	}
	st := n.Stats()
	if st.MessagesSent != 1 {
		t.Errorf("MessagesSent = %d, want 1 (the copy is not traffic)", st.MessagesSent)
	}
	if st.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", st.Duplicated)
	}
	if n.QueueLen() != 0 {
		t.Errorf("QueueLen = %d after Close, want 0", n.QueueLen())
	}
}

// TestReorderFilterBreaksFIFO: a reorder-released message scheduled with a
// large extra delay is overtaken by a later send of the same pair — exactly
// the violation the clamp otherwise forbids.
func TestReorderFilterBreaksFIFO(t *testing.T) {
	var mu sync.Mutex
	var order []int
	n, err := NewNetwork(SingleNode(2), ZeroLatency(), func(dst int, payload any) {
		mu.Lock()
		order = append(order, payload.(int))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	first := true
	n.SetReorderFilter(func(src, dst, size int) (time.Duration, bool) {
		if first {
			first = false
			return 5 * time.Millisecond, true
		}
		return 0, false
	})
	n.Send(0, 1, 1, 1) // released: held back 5ms
	n.Send(0, 1, 2, 1) // normal: delivered immediately
	n.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("delivery order = %v, want [2 1] (later send overtakes released one)", order)
	}
	if st := n.Stats(); st.Reordered != 1 {
		t.Errorf("Reordered = %d, want 1", st.Reordered)
	}
}

// TestSendAfterFiresAtDelay: SendAfter delivers its payload after the given
// delay, bypasses the drop filter, is not traffic, but does count toward
// QueueLen while pending.
func TestSendAfterFiresAtDelay(t *testing.T) {
	fired := make(chan struct{})
	n, err := NewNetwork(SingleNode(2), ZeroLatency(), func(dst int, payload any) {
		close(fired)
	})
	if err != nil {
		t.Fatal(err)
	}
	// A drop-everything filter must not touch timers.
	n.SetDropFilter(func(src, dst, size int) bool { return true })
	if res := n.SendAfter(1, "timer", 2*time.Millisecond); res != SendEnqueued {
		t.Fatalf("SendAfter = %v, want SendEnqueued", res)
	}
	if q := n.QueueLen(); q != 1 {
		t.Errorf("QueueLen = %d with a pending timer, want 1", q)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
	n.Close()
	st := n.Stats()
	if st.MessagesSent != 0 {
		t.Errorf("MessagesSent = %d, want 0 (timers are not traffic)", st.MessagesSent)
	}
	if st.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 (timers bypass the drop filter)", st.Dropped)
	}
}

// TestSendAfterOnClosedNetwork: scheduling a timer on a closed network
// reports SendClosed and delivers nothing.
func TestSendAfterOnClosedNetwork(t *testing.T) {
	var delivered atomic.Int64
	n, err := NewNetwork(SingleNode(2), ZeroLatency(), func(dst int, payload any) {
		delivered.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	if res := n.SendAfter(0, "late", 0); res != SendClosed {
		t.Fatalf("SendAfter after Close = %v, want SendClosed", res)
	}
	if res := n.Send(0, 1, "late", 1); res != SendClosed {
		t.Fatalf("Send after Close = %v, want SendClosed", res)
	}
	if delivered.Load() != 0 {
		t.Errorf("delivered = %d, want 0", delivered.Load())
	}
}

// TestDropFilterMidRunSwap pins the mid-run swap semantics SetDropFilter
// documents: filters may be installed, replaced and removed while senders
// are firing, every Send consults exactly one filter, and the ledger stays
// exact — enqueued (delivered after Close) plus Dropped equals the number
// of Send calls that did not observe a closed lane. Run under -race this
// also proves the swap itself is data-race-free.
func TestDropFilterMidRunSwap(t *testing.T) {
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	topo := SingleNode(8)
	var delivered atomic.Int64
	n, err := NewNetwork(topo, ZeroLatency(), func(dst int, payload any) {
		delivered.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}

	const senders = 4
	const perSender = 20000
	var enqueued atomic.Int64
	var wg sync.WaitGroup
	stopSwapping := make(chan struct{})
	var swapperDone sync.WaitGroup

	// The swapper flips between nil, drop-odd-destinations and drop-all as
	// fast as it can while traffic is in flight.
	swapperDone.Add(1)
	go func() {
		defer swapperDone.Done()
		dropOdd := DropFilter(func(src, dst, size int) bool { return dst%2 == 1 })
		dropAll := DropFilter(func(src, dst, size int) bool { return true })
		for i := 0; ; i++ {
			select {
			case <-stopSwapping:
				return
			default:
			}
			switch i % 3 {
			case 0:
				n.SetDropFilter(nil)
			case 1:
				n.SetDropFilter(dropOdd)
			case 2:
				n.SetDropFilter(dropAll)
			}
			runtime.Gosched()
		}
	}()

	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if n.Send(w, (w+i)%topo.TotalPEs(), i, 1) == SendEnqueued {
					enqueued.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopSwapping)
	swapperDone.Wait()
	n.Close()

	st := n.Stats()
	total := int64(senders * perSender)
	if st.MessagesSent != enqueued.Load() {
		t.Errorf("MessagesSent = %d, want %d (one count per enqueued Send)", st.MessagesSent, enqueued.Load())
	}
	if got := enqueued.Load() + st.Dropped; got != total {
		t.Errorf("enqueued(%d) + dropped(%d) = %d, want %d: a Send consulted zero or two filters",
			enqueued.Load(), st.Dropped, got, total)
	}
	if delivered.Load() != enqueued.Load() {
		t.Errorf("delivered = %d, want %d (every enqueued message delivered after Close)",
			delivered.Load(), enqueued.Load())
	}
	if n.QueueLen() != 0 {
		t.Errorf("QueueLen = %d after Close, want 0", n.QueueLen())
	}
}
