// Package atomiccheck enforces atomic access discipline: a struct field
// accessed through sync/atomic functions anywhere must never be read or
// written plainly anywhere else.
//
// Mixing atomic.LoadUint64(&s.n) with a plain s.n read is a data race the
// compiler accepts and the race detector only catches when the schedule
// cooperates — the exact shape of both false-quiescence races fixed in the
// conservation-counter work: a plain read of a counter that other PEs
// advance atomically can observe a stale value and declare quiescence
// early. (Fields of the typed atomic.Uint64 family are immune by
// construction — their value is only reachable through methods — which is
// why the runtime uses them; this analyzer closes the door on the
// function-style mix creeping back in.)
//
// Every field that appears as &x.f in a sync/atomic call is recorded and
// exported as a fact ("atomicfield:pkgpath.Type.field"), so a dependent
// package touching the field plainly through the import graph is flagged
// too (facts flow dependency -> dependent, so an atomic access in a
// dependency guards plain accesses in dependents, not the reverse).
// Composite-literal initialization is exempt: construction happens before
// the value is shared. //acic:allow-plain-atomic suppresses a finding
// (e.g. a read under the lock that orders all writers), with a
// justification comment.
package atomiccheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"acic/internal/analysis"
)

// Directive is the escape hatch recognized by this analyzer.
const Directive = "allow-plain-atomic"

// factPrefix keys the exported atomic-field facts; the value is the
// position of one atomic access, for the diagnostic.
const factPrefix = "atomicfield:"

// Analyzer is the atomiccheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccheck",
	Doc: "forbid plain access to fields that are accessed atomically elsewhere\n\n" +
		"a field passed as &x.f to sync/atomic must only ever be touched\n" +
		"through sync/atomic; a plain read/write races with the atomic\n" +
		"side. fields are tracked across packages via exported facts.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	dirs := analysis.FileDirectives(pass)

	// Pass 1: record every &x.f argument of a sync/atomic call — both as a
	// fact for dependents and as a local skip-set so the very same
	// expressions are not flagged in pass 2.
	atomicUses := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				key, ok := fieldKeyOf(pass, sel)
				if !ok {
					continue
				}
				atomicUses[sel] = true
				if !pass.HasFact(factPrefix + key) {
					pass.ExportFact(factPrefix+key, pass.Fset.Position(sel.Pos()).String())
				}
			}
			return true
		})
	}

	// Pass 2: flag plain selector accesses to any atomically-accessed field
	// (local or imported fact).
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				// Construction precedes sharing; skip the literal's keys but
				// still descend into its element values.
				for _, elt := range lit.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					ast.Inspect(v, func(m ast.Node) bool {
						if sel, ok := m.(*ast.SelectorExpr); ok {
							checkSel(pass, dirs, atomicUses, sel)
						}
						return true
					})
				}
				return false
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				checkSel(pass, dirs, atomicUses, sel)
			}
			return true
		})
	}
	return nil
}

func checkSel(pass *analysis.Pass, dirs *analysis.PkgDirectives, atomicUses map[*ast.SelectorExpr]bool, sel *ast.SelectorExpr) {
	if atomicUses[sel] || pass.InTestFile(sel.Pos()) {
		return
	}
	key, ok := fieldKeyOf(pass, sel)
	if !ok {
		return
	}
	at, ok := pass.ImportFact(factPrefix + key)
	if !ok {
		return
	}
	if dirs.Allowed(Directive, sel.Pos()) {
		return
	}
	pass.Reportf(sel.Pos(),
		"plain access to %s, which is accessed atomically (e.g. at %s): use sync/atomic for every access, or annotate //acic:allow-plain-atomic",
		key, at)
}

// isAtomicCall reports whether call invokes a sync/atomic package function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	// Accept a fixture package standing in for sync/atomic too.
	return path == "sync/atomic" || strings.HasSuffix(path, "/syncatomic")
}

// fieldKeyOf resolves sel to "pkgpath.Type.field" when it selects a named
// struct's field.
func fieldKeyOf(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !f.IsField() {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	named := analysis.NamedOf(tv.Type)
	if named == nil {
		return "", false
	}
	return analysis.FieldKey(named, f.Name()), true
}
