// Package atomiccheck_dep is the dependency half of the cross-package
// atomiccheck fixture: its atomic accesses export the field facts the
// dependent package is checked against.
package atomiccheck_dep

import "sync/atomic"

// Shared mimics a conservation counter pair shared across PEs.
type Shared struct {
	Sent uint64
}

// Bump advances the counter atomically, marking Shared.Sent as an
// atomic-only field for every dependent.
func Bump(s *Shared) {
	atomic.AddUint64(&s.Sent, 1)
}
