// Package atomiccheck_a is an atomiccheck fixture: fields touched through
// sync/atomic anywhere must never be read or written plainly; untouched
// fields, construction, and blessed sites are clean.
package atomiccheck_a

import "sync/atomic"

type counters struct {
	sent      uint64
	delivered uint64
	name      string
}

func (c *counters) inc() {
	atomic.AddUint64(&c.sent, 1)
}

func (c *counters) read() uint64 {
	return atomic.LoadUint64(&c.sent)
}

// plainRead races with inc: the exact false-quiescence shape.
func (c *counters) plainRead() uint64 {
	return c.sent // want "plain access to atomiccheck_a.counters.sent"
}

// plainWrite races the other way.
func (c *counters) plainWrite() {
	c.sent = 0 // want "plain access to atomiccheck_a.counters.sent"
}

// delivered is only ever accessed atomically: clean.
func (c *counters) incDelivered() { atomic.AddUint64(&c.delivered, 1) }

// name is never atomic: plain access is free.
func (c *counters) nameRead() string { return c.name }

// Construction precedes sharing: composite-literal init is exempt.
func newCounters() *counters { return &counters{sent: 0, name: "pe"} }

// blessedRead is ordered externally, exempted by directive.
func (c *counters) blessedRead() uint64 {
	return c.sent //acic:allow-plain-atomic fixture: read under the writers' lock
}
