// Package atomiccheck_x is the dependent half of the cross-package
// atomiccheck fixture: the field is only known to be atomic through the
// fact imported from atomiccheck_dep.
package atomiccheck_x

import (
	"sync/atomic"

	"atomiccheck_dep"
)

// quiescent reads the counter plainly — the race the imported fact exists
// to catch.
func quiescent(s *atomiccheck_dep.Shared) bool {
	return s.Sent == 0 // want "plain access to atomiccheck_dep.Shared.Sent"
}

// quiescentAtomic reads it atomically: clean.
func quiescentAtomic(s *atomiccheck_dep.Shared) bool {
	return atomic.LoadUint64(&s.Sent) == 0
}
