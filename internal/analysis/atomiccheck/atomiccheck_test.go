package atomiccheck_test

import (
	"testing"

	"acic/internal/analysis/analysistest"
	"acic/internal/analysis/atomiccheck"
)

func TestAtomicCheck(t *testing.T) {
	analysistest.Run(t, "testdata", atomiccheck.Analyzer, "atomiccheck_a")
}

// TestAtomicCheckCrossPackage exercises the fact flow: the atomic access
// lives in atomiccheck_dep, the plain access in atomiccheck_x.
func TestAtomicCheckCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", atomiccheck.Analyzer, "atomiccheck_dep", "atomiccheck_x")
}
