// Package lockorder builds the mutex-acquisition-order graph across the
// analyzed packages and fails on cycles, and on the one pairing that is
// forbidden outright: acquiring a netsim lane lock while holding a runtime
// mailbox lock.
//
// Locks are tracked as classes, not instances: every sync.Mutex/RWMutex
// reached through a field of a named type is the class
// "pkgpath.Type.field" (package-level mutex vars are "pkgpath.var";
// function-local mutexes are ignored — they cannot participate in a
// cross-goroutine cycle). Within each function a source-order,
// branch-insensitive walk (the locksend convention) tracks the held set;
// acquiring class B while holding class A records the edge A -> B.
//
// The analysis is interprocedural through facts: every function exports
// the set of lock classes it may acquire, directly or transitively
// ("locks:pkgpath.Func", fixpointed within the package and seeded from
// dependency facts), and a call made while holding A adds edges from A to
// everything the callee may acquire. Edges accumulate across packages as
// "edge:A|B" facts, so a cycle whose halves live in different packages is
// caught when the second half is analyzed. A self-edge (two instances of
// one class acquired together) is reported as a cycle too: without a
// proven index order, opposite interleavings deadlock.
//
// //acic:allow-lock-order suppresses a finding (e.g. an acquisition
// ordered by a global index discipline), with a justification comment.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"acic/internal/analysis"
)

// Directive is the escape hatch recognized by this analyzer.
const Directive = "allow-lock-order"

const (
	locksPrefix = "locks:"
	edgePrefix  = "edge:"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "forbid mutex-acquisition cycles and lane-lock-under-mailbox-lock\n\n" +
		"builds the cross-package lock-order graph (via exported facts) and\n" +
		"reports any edge that closes a cycle, and any netsim lane lock\n" +
		"taken while a runtime mailbox lock is held.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	dirs := analysis.FileDirectives(pass)

	// Collect per-function acquisition and call events.
	infos := collect(pass)

	// Fixpoint the may-acquire sets over this package's call graph, seeded
	// with imported facts for external callees.
	locks := make(map[*types.Func]map[string]bool)
	for fn, info := range infos {
		s := make(map[string]bool)
		for c := range info.direct {
			s[c] = true
		}
		locks[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, info := range infos {
			for _, ev := range info.calls {
				for _, c := range calleeLocks(pass, infos, locks, ev.callee) {
					if !locks[fn][c] {
						locks[fn][c] = true
						changed = true
					}
				}
			}
		}
	}
	for fn, s := range locks {
		if len(s) == 0 {
			continue
		}
		pass.ExportFact(locksPrefix+analysis.ObjKey(fn), joinSorted(s))
	}

	// Materialize this package's edges.
	type edge struct {
		from, to string
		pos      token.Pos
	}
	var edges []edge
	seen := make(map[string]bool)
	add := func(from, to string, pos token.Pos) {
		k := from + "|" + to
		if seen[k] {
			return
		}
		seen[k] = true
		edges = append(edges, edge{from, to, pos})
	}
	for _, info := range infos {
		for _, ev := range info.acqs {
			for _, h := range ev.held {
				add(h, ev.class, ev.pos)
			}
		}
		for _, ev := range info.calls {
			if len(ev.held) == 0 {
				continue
			}
			for _, c := range calleeLocks(pass, infos, locks, ev.callee) {
				for _, h := range ev.held {
					add(h, c, ev.pos)
				}
			}
		}
	}

	// Combined adjacency: previously exported edges plus this package's.
	adj := make(map[string]map[string]bool)
	for k := range pass.Facts.WithPrefix(pass.Analyzer.Name, edgePrefix) {
		if from, to, ok := strings.Cut(k, "|"); ok {
			addAdj(adj, from, to)
		}
	}
	for _, e := range edges {
		addAdj(adj, e.from, e.to)
	}

	for _, e := range edges {
		pass.ExportFact(edgePrefix+e.from+"|"+e.to, pass.Fset.Position(e.pos).String())
		if dirs.Allowed(Directive, e.pos) {
			continue
		}
		if classMatches(e.from, "runtime", "mailbox") && classMatches(e.to, "netsim", "lane") {
			pass.Reportf(e.pos,
				"netsim lane lock %s acquired while holding runtime mailbox lock %s: the fabric may re-enter the mailbox on delivery, deadlocking the PE",
				e.to, e.from)
			continue
		}
		if path := findPath(adj, e.to, e.from); path != nil {
			pass.Reportf(e.pos,
				"lock-order cycle: acquiring %s while holding %s, but %s is already acquired while holding %s (%s)",
				e.to, e.from, e.from, e.to, strings.Join(append(path, e.to), " -> "))
		}
	}
	return nil
}

func addAdj(adj map[string]map[string]bool, from, to string) {
	if adj[from] == nil {
		adj[from] = make(map[string]bool)
	}
	adj[from][to] = true
}

// findPath returns a node path from -> ... -> to in adj, or nil. A
// zero-length search (from == to) returns the one-node path, which is how
// self-edges close cycles.
func findPath(adj map[string]map[string]bool, from, to string) []string {
	parent := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == to {
			var path []string
			for ; n != ""; n = parent[n] {
				path = append([]string{n}, path...)
			}
			return path
		}
		next := make([]string, 0, len(adj[n]))
		for m := range adj[n] {
			next = append(next, m)
		}
		sort.Strings(next)
		for _, m := range next {
			if _, ok := parent[m]; !ok {
				parent[m] = n
				queue = append(queue, m)
			}
		}
	}
	return nil
}

// classMatches reports whether class is "…pkgSuffix.typeName.<field>" — the
// package path's last element ends in pkgSuffix (so fixture packages like
// lockorder_runtime match) and the named type matches.
func classMatches(class, pkgSuffix, typeName string) bool {
	i := strings.LastIndexByte(class, '.') // strip field
	if i < 0 {
		return false
	}
	rest := class[:i]
	j := strings.LastIndexByte(rest, '.')
	if j < 0 {
		return false
	}
	if !strings.EqualFold(rest[j+1:], typeName) {
		return false
	}
	pkg := rest[:j]
	if k := strings.LastIndexByte(pkg, '/'); k >= 0 {
		pkg = pkg[k+1:]
	}
	return strings.HasSuffix(pkg, pkgSuffix)
}

func joinSorted(s map[string]bool) string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// calleeLocks returns the lock classes callee may acquire: the local
// fixpoint state for same-package functions, the imported fact otherwise.
func calleeLocks(pass *analysis.Pass, infos map[*types.Func]*fnInfo, locks map[*types.Func]map[string]bool, callee *types.Func) []string {
	if callee == nil {
		return nil
	}
	if _, ok := infos[callee]; ok {
		return keys(locks[callee])
	}
	v, ok := pass.Facts.Import(pass.Analyzer.Name, locksPrefix+analysis.ObjKey(callee))
	if !ok || v == "" {
		return nil
	}
	return strings.Split(v, ",")
}

func keys(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	return out
}

// --- event collection ---

type acqEvent struct {
	class string
	held  []string
	pos   token.Pos
}

type callEvent struct {
	callee *types.Func
	held   []string
	pos    token.Pos
}

type fnInfo struct {
	direct map[string]bool
	acqs   []acqEvent
	calls  []callEvent
}

// collect walks every function (and every function literal, in its own
// empty lock context) recording acquisitions and calls with the held set
// at that point.
func collect(pass *analysis.Pass) map[*types.Func]*fnInfo {
	infos := make(map[*types.Func]*fnInfo)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &fnInfo{direct: make(map[string]bool)}
			infos[fn] = info
			w := &walker{pass: pass, info: info}
			w.stmts(fd.Body.List)
			// Function literals run at an unknown time: separate held
			// context, but their acquisitions still belong to the enclosing
			// function's may-acquire set (calling the function may run the
			// closure).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					inner := &walker{pass: pass, info: info}
					inner.stmts(lit.Body.List)
					return false
				}
				return true
			})
		}
	}
	return infos
}

type walker struct {
	pass *analysis.Pass
	info *fnInfo
	held []string
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end; not a
		// release point for the source-order walk.
		if op, _ := w.classifyLock(st.Call); op == opNone {
			w.exprCalls(st.Call)
		}
		return
	case *ast.BlockStmt:
		w.stmts(st.List)
		return
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.exprCalls(st.Cond)
		w.stmts(st.Body.List)
		if st.Else != nil {
			w.stmt(st.Else)
		}
		return
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.exprCalls(st.Cond)
		}
		w.stmts(st.Body.List)
		if st.Post != nil {
			w.stmt(st.Post)
		}
		return
	case *ast.RangeStmt:
		w.exprCalls(st.X)
		w.stmts(st.Body.List)
		return
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Tag != nil {
			w.exprCalls(st.Tag)
		}
		w.stmts(st.Body.List)
		return
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.stmts(st.Body.List)
		return
	case *ast.CaseClause:
		w.stmts(st.Body)
		return
	case *ast.SelectStmt:
		w.stmts(st.Body.List)
		return
	case *ast.CommClause:
		if st.Comm != nil {
			w.stmt(st.Comm)
		}
		w.stmts(st.Body)
		return
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
		return
	case *ast.GoStmt:
		// The spawned goroutine does not inherit this goroutine's held
		// locks; its own acquisitions are collected when its function (or
		// literal, above) is walked.
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate lock context, walked by collect
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.call(call)
		}
		return true
	})
}

func (w *walker) exprCalls(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.call(call)
		}
		return true
	})
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

func (w *walker) call(call *ast.CallExpr) {
	op, class := w.classifyLock(call)
	switch op {
	case opLock:
		if class != "" {
			w.info.direct[class] = true
			w.info.acqs = append(w.info.acqs, acqEvent{class: class, held: snapshot(w.held), pos: call.Pos()})
		}
		w.held = append(w.held, class)
		return
	case opUnlock:
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i] == class {
				w.held = append(w.held[:i], w.held[i+1:]...)
				break
			}
		}
		return
	}
	fn := calleeOf(w.pass, call)
	if fn == nil {
		return
	}
	w.info.calls = append(w.info.calls, callEvent{callee: fn, held: snapshot(w.held), pos: call.Pos()})
}

func snapshot(held []string) []string {
	var out []string
	for _, h := range held {
		if h != "" { // unclassified (local) locks carry no ordering class
			out = append(out, h)
		}
	}
	return out
}

// classifyLock recognizes mu.Lock/RLock/Unlock/RUnlock on sync mutexes and
// resolves the mutex expression to its lock class.
func (w *walker) classifyLock(call *ast.CallExpr) (lockOp, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, ""
	}
	recv := analysis.NamedRecvName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return opNone, ""
	}
	var op lockOp
	switch fn.Name() {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return opNone, ""
	}
	return op, lockClass(w.pass, sel.X)
}

// lockClass resolves the expression denoting a mutex to its class:
// "pkgpath.Type.field" for struct-field mutexes (however deep the access
// path), "pkgpath.var" for package-level mutex vars, "" (untracked) for
// locals.
func lockClass(pass *analysis.Pass, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		f, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var)
		if !ok || !f.IsField() {
			return ""
		}
		tv, ok := pass.TypesInfo.Types[x.X]
		if !ok {
			return ""
		}
		named := analysis.NamedOf(tv.Type)
		if named == nil {
			return ""
		}
		return analysis.FieldKey(named, f.Name())
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[x].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "" // function-local mutex: no cross-goroutine class
		}
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

func calleeOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
