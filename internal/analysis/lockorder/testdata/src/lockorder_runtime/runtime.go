// Package lockorder_runtime is a fixture standing in for the runtime
// mailbox: entering the fabric (which takes lane locks) while holding a
// mailbox lock is the forbidden pairing, caught through the imported locks
// fact of the fabric call.
package lockorder_runtime

import (
	"sync"

	"lockorder_netsim"
)

type Mailbox struct {
	Mu sync.Mutex
}

// drainUnderLock enters the fabric while holding the mailbox lock.
func drainUnderLock(mb *Mailbox, ln *lockorder_netsim.Lane) {
	mb.Mu.Lock()
	lockorder_netsim.Push(ln, 1) // want "lane lock .* acquired while holding runtime mailbox lock"
	mb.Mu.Unlock()
}

// drainAfterUnlock releases the mailbox lock first: clean.
func drainAfterUnlock(mb *Mailbox, ln *lockorder_netsim.Lane) {
	mb.Mu.Lock()
	mb.Mu.Unlock()
	lockorder_netsim.Push(ln, 1)
}
