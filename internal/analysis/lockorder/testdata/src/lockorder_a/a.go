// Package lockorder_a is a lockorder fixture: consistent nesting is clean,
// opposite nesting closes a cycle, self-nesting of one class is a cycle,
// and a blessed site is exempt.
package lockorder_a

import "sync"

type state struct {
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
}

// lockAB establishes the order muA -> muB — reported too once lockBA
// closes the cycle, at the acquisition completing it from this side.
func (s *state) lockAB() {
	s.muA.Lock()
	s.muB.Lock() // want "lock-order cycle"
	s.muB.Unlock()
	s.muA.Unlock()
}

// lockBA closes the cycle against lockAB; both halves are reported, each
// at the acquisition that completes the cycle from its side.
func (s *state) lockBA() {
	s.muB.Lock()
	s.muA.Lock() // want "lock-order cycle"
	s.muA.Unlock()
	s.muB.Unlock()
}

// pairwise locks two instances of one class with no proven index order.
func pairwise(a, b *state) {
	a.muC.Lock()
	b.muC.Lock() // want "lock-order cycle"
	b.muC.Unlock()
	a.muC.Unlock()
}

// sequential re-acquisition after release is not nesting: clean.
func (s *state) sequential() {
	s.muA.Lock()
	s.muA.Unlock()
	s.muB.Lock()
	s.muB.Unlock()
}

// localOnly locks a function-local mutex under muA: locals have no class,
// no edge, clean.
func (s *state) localOnly() {
	var mu sync.Mutex
	s.muA.Lock()
	mu.Lock()
	mu.Unlock()
	s.muA.Unlock()
}

// blessed is an index-ordered double acquisition, exempted by directive.
func blessed(a, b *state) {
	a.muB.Lock()
	b.muB.Lock() //acic:allow-lock-order fixture: callers pass a, b in address order
	b.muB.Unlock()
	a.muB.Unlock()
}
