// Package lockorder_netsim is a fixture standing in for the netsim fabric:
// the package-path suffix and the lane type name are what the forbidden
// mailbox->lane pairing matches on.
package lockorder_netsim

import "sync"

type Lane struct {
	Mu sync.Mutex
	q  []int
}

// Push acquires the lane lock, exporting it in Push's locks fact.
func Push(l *Lane, v int) {
	l.Mu.Lock()
	l.q = append(l.q, v)
	l.Mu.Unlock()
}
