// Package lockorder_dep is the dependency half of the cross-package
// lockorder fixture: Bump's acquisition is exported in its locks fact.
package lockorder_dep

import "sync"

type Shard struct {
	Mu sync.Mutex
	n  int
}

// Bump acquires Shard.Mu.
func Bump(s *Shard) {
	s.Mu.Lock()
	s.n++
	s.Mu.Unlock()
}
