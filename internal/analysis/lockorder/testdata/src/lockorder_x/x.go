// Package lockorder_x is the dependent half of the cross-package lockorder
// fixture: one half of the cycle goes through an imported function's locks
// fact, the other is a direct acquisition.
package lockorder_x

import (
	"sync"

	"lockorder_dep"
)

type table struct {
	mu sync.Mutex
	sh *lockorder_dep.Shard
}

// bumpUnderLock calls into the dependency while holding mu: the edge
// table.mu -> Shard.Mu comes from Bump's imported locks fact, and is
// reported here once reverse closes the cycle.
func (t *table) bumpUnderLock() {
	t.mu.Lock()
	lockorder_dep.Bump(t.sh) // want "lock-order cycle"
	t.mu.Unlock()
}

// reverse nests the other way, closing the cycle across the package
// boundary.
func (t *table) reverse() {
	t.sh.Mu.Lock()
	t.mu.Lock() // want "lock-order cycle"
	t.mu.Unlock()
	t.sh.Mu.Unlock()
}

// bumpAfterUnlock releases before calling into the dependency: clean.
func (t *table) bumpAfterUnlock() {
	t.mu.Lock()
	t.mu.Unlock()
	lockorder_dep.Bump(t.sh)
}
