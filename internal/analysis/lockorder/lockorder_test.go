package lockorder_test

import (
	"testing"

	"acic/internal/analysis/analysistest"
	"acic/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockorder_a")
}

// TestLockOrderCrossPackage exercises the fact flow: one half of the cycle
// is an imported function's locks summary.
func TestLockOrderCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockorder_dep", "lockorder_x")
}

// TestLockOrderMailboxLane exercises the forbidden pairing: a netsim lane
// lock taken (via the fabric call's locks fact) under a runtime mailbox
// lock.
func TestLockOrderMailboxLane(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockorder_netsim", "lockorder_runtime")
}
