// Package analysis is a self-contained reimplementation of the
// golang.org/x/tools/go/analysis core: just enough of the Analyzer / Pass /
// Diagnostic contract for ACIC's project-specific linters, built only on the
// standard library so the module stays dependency-free.
//
// The analyzers under this directory enforce invariants the Go compiler
// cannot see but the runtime's correctness depends on — pool discipline for
// tram batches, wall-clock and rand hygiene in the deterministic-simulation
// packages, no sends under locks, no raw goroutines outside the scheduler.
// They are wired into CI through cmd/acic-lint (see scripts/ci.sh) and the
// "Codebase invariants" section of DESIGN.md documents each rule.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one independent analysis pass, mirroring the x/tools
// type of the same name so the analyzers read as standard go/analysis code.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is the help text; the first line is the one-sentence summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the cross-package fact store shared by every pass of one
	// driver invocation. Packages are analyzed in dependency order, so a
	// fact exported while analyzing a dependency is visible when its
	// dependents are analyzed — the mechanism behind the interprocedural
	// analyzers (arenacheck sink summaries, atomiccheck field sets,
	// lockorder acquisition graphs, releasecheck carrier fields). May be
	// nil when a driver has no use for facts; the helpers below are
	// nil-safe.
	Facts *Facts

	// Report publishes one diagnostic.
	Report func(Diagnostic)
}

// ExportFact records a fact under this pass's analyzer namespace.
func (p *Pass) ExportFact(key, value string) { p.Facts.Export(p.Analyzer.Name, key, value) }

// ImportFact looks a fact up in this pass's analyzer namespace.
func (p *Pass) ImportFact(key string) (string, bool) { return p.Facts.Import(p.Analyzer.Name, key) }

// HasFact reports whether a fact exists in this pass's analyzer namespace.
func (p *Pass) HasFact(key string) bool { _, ok := p.ImportFact(key); return ok }

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, bound to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Facts is a string-keyed, string-valued fact store scoped per analyzer.
// Keys follow the ObjKey/FieldKey conventions ("pkgpath.Recv.Name"), with an
// analyzer-chosen prefix when one analyzer exports facts of several kinds
// ("sink:", "carrier:", "locks:", ...). Values carry small summaries in an
// analyzer-private encoding (comma-joined lists, positions, or empty when
// the key's existence is the fact).
//
// The zero value and the nil pointer are both usable empty stores that
// silently drop exports, so analyzers need no nil checks on drivers that do
// not thread facts through.
type Facts struct {
	m map[factKey]string
}

type factKey struct{ analyzer, key string }

// NewFacts returns an empty fact store.
func NewFacts() *Facts { return &Facts{m: make(map[factKey]string)} }

// Export records value under (analyzer, key), overwriting any previous
// value. No-op on a nil store.
func (f *Facts) Export(analyzer, key, value string) {
	if f == nil || f.m == nil {
		return
	}
	f.m[factKey{analyzer, key}] = value
}

// Import returns the value recorded under (analyzer, key).
func (f *Facts) Import(analyzer, key string) (string, bool) {
	if f == nil || f.m == nil {
		return "", false
	}
	v, ok := f.m[factKey{analyzer, key}]
	return v, ok
}

// WithPrefix returns every key (with prefix trimmed) -> value recorded in
// analyzer's namespace whose key starts with prefix.
func (f *Facts) WithPrefix(analyzer, prefix string) map[string]string {
	out := make(map[string]string)
	if f == nil || f.m == nil {
		return out
	}
	for k, v := range f.m {
		if k.analyzer == analyzer && len(k.key) >= len(prefix) && k.key[:len(prefix)] == prefix {
			out[k.key[len(prefix):]] = v
		}
	}
	return out
}

// ObjKey returns a position-independent identifier for a function or
// package-level object: "pkgpath.Recv.Name" for methods, "pkgpath.Name"
// otherwise. Pointer receivers and generic instances unwrap to the named
// receiver type.
func ObjKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if name := NamedRecvName(fn); name != "" {
				return pkg + "." + name + "." + fn.Name()
			}
		}
	}
	return pkg + "." + obj.Name()
}

// FieldKey returns the identifier of field name on named type t:
// "pkgpath.Type.field".
func FieldKey(t *types.Named, name string) string {
	pkg := ""
	if t.Obj().Pkg() != nil {
		pkg = t.Obj().Pkg().Path()
	}
	return pkg + "." + t.Obj().Name() + "." + name
}

// NamedRecvName returns the name of fn's receiver's named type ("" for
// plain functions), unwrapping pointers and generic instances.
func NamedRecvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// NamedOf unwraps pointers and aliases to the named type of t, or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// File returns the *ast.File of the pass that contains pos, or nil.
func (p *Pass) File(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// InTestFile reports whether pos lies in a _test.go file. The repo driver
// only loads non-test files, but analysistest fixtures may include them and
// several analyzers exempt test code explicitly.
func (p *Pass) InTestFile(pos token.Pos) bool {
	name := p.Fset.Position(pos).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
