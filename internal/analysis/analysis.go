// Package analysis is a self-contained reimplementation of the
// golang.org/x/tools/go/analysis core: just enough of the Analyzer / Pass /
// Diagnostic contract for ACIC's project-specific linters, built only on the
// standard library so the module stays dependency-free.
//
// The analyzers under this directory enforce invariants the Go compiler
// cannot see but the runtime's correctness depends on — pool discipline for
// tram batches, wall-clock and rand hygiene in the deterministic-simulation
// packages, no sends under locks, no raw goroutines outside the scheduler.
// They are wired into CI through cmd/acic-lint (see scripts/ci.sh) and the
// "Codebase invariants" section of DESIGN.md documents each rule.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one independent analysis pass, mirroring the x/tools
// type of the same name so the analyzers read as standard go/analysis code.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is the help text; the first line is the one-sentence summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report publishes one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, bound to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// File returns the *ast.File of the pass that contains pos, or nil.
func (p *Pass) File(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// InTestFile reports whether pos lies in a _test.go file. The repo driver
// only loads non-test files, but analysistest fixtures may include them and
// several analyzers exempt test code explicitly.
func (p *Pass) InTestFile(pos token.Pos) bool {
	name := p.Fset.Position(pos).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
