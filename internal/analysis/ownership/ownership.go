// Package ownership is the shared obligation-tracking engine behind the
// pool-discipline analyzers (releasecheck, arenacheck): a path-sensitive
// walker that verifies a tracked value — a tram batch slice, an arena
// chunk — is discharged on every control-flow path through a function, plus
// the cross-package "sink" summaries that make the discipline
// interprocedural.
//
// A value is discharged when ownership demonstrably moves on: it is passed
// wholesale to a releasing or transferring call, stored into a composite or
// a field, sent on a channel, re-bound, or returned. Per-element reads
// (ranging, indexing, len/cap) do not discharge — they are precisely the
// "unpack" whose completion must be followed by a release.
//
// Sink summaries close the function-boundary hole: for every function
// declaration, every slice-typed parameter is classified as a sink
// (discharged on all paths inside the callee) or a non-sink (some path
// drops it), and the verdict is exported as a fact. Because the driver
// analyzes packages in dependency order, a caller in a dependent package
// sees its callee's summary: handing a tracked value to a known non-sink no
// longer counts as a discharge, which is what lets releasecheck and
// arenacheck follow batches across package boundaries instead of trusting
// every call blindly.
package ownership

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"acic/internal/analysis"
)

// FactNamespace is the analysis.Facts namespace the sink summaries live
// under. It is shared by every analyzer built on this package, so the
// summaries are computed identically no matter which analyzer runs first.
const FactNamespace = "ownership"

// Checker verifies one obligation: the tracked value must be discharged on
// every path through the statement list it is checked against.
type Checker struct {
	Pass *analysis.Pass
	// Matches reports whether e denotes the tracked value.
	Matches func(e ast.Expr) bool
	// TransferDischarges, when non-nil, decides whether passing the tracked
	// value as argument argIndex of call discharges the obligation. When
	// nil, any non-builtin call taking the value wholesale discharges —
	// the optimistic pre-facts behavior.
	TransferDischarges func(call *ast.CallExpr, argIndex int) bool
	// OnLeak is invoked at each position where a path ends with the
	// obligation undischarged.
	OnLeak func(pos token.Pos)
}

// Check walks list (ending at end, the position reported when control falls
// off the end undischarged).
func (c *Checker) Check(list []ast.Stmt, end token.Pos) {
	done, terminated := c.walk(list, false)
	if !done && !terminated {
		c.OnLeak(end)
	}
}

// Walk exposes the raw walker for drivers that stitch several statement
// lists together (arenacheck's outward propagation): it returns the
// discharge state at the end of the list and whether every path through it
// terminates, reporting leaks only at return statements.
func (c *Checker) Walk(list []ast.Stmt, done bool) (bool, bool) {
	return c.walk(list, done)
}

// dischargesExpr reports whether expression e contains a discharge of the
// obligation: a discharging call, a store into a composite literal, or a
// send.
func (c *Checker) dischargesExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.FuncLit:
			return false // closures run later; not a discharge here
		case *ast.CallExpr:
			if c.callDischarges(node) {
				found = true
				return false
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if c.Matches(v) {
					found = true // stored: ownership moved into the literal
					return false
				}
			}
		}
		return true
	})
	return found
}

// callDischarges reports whether one call discharges the obligation.
func (c *Checker) callDischarges(call *ast.CallExpr) bool {
	// Builtins (len, cap, append, ...) only observe the value or copy its
	// elements; they do not take ownership.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := c.Pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return false
		}
	}
	for i, arg := range call.Args {
		if !c.Matches(arg) {
			continue
		}
		if c.TransferDischarges == nil || c.TransferDischarges(call, i) {
			return true
		}
	}
	return false
}

// walk processes a statement list. done is whether the obligation is
// already discharged on entry. It returns the discharge state at the end of
// the list and whether every path through the list terminates (returns).
func (c *Checker) walk(list []ast.Stmt, done bool) (bool, bool) {
	for _, s := range list {
		var term bool
		done, term = c.stmt(s, done)
		if term {
			return done, true
		}
	}
	return done, false
}

func (c *Checker) stmt(s ast.Stmt, done bool) (bool, bool) {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			if c.Matches(r) || c.dischargesExpr(r) {
				done = true
			}
		}
		if !done {
			c.OnLeak(st.Pos())
		}
		return true, true
	case *ast.DeferStmt:
		// defer tm.Release(v) (or a closure doing so) covers every return
		// after this point.
		if c.callDischarges(st.Call) {
			return true, false
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			litDone, _ := c.walk(lit.Body.List, false)
			if litDone {
				return true, false
			}
		}
		return done, false
	case *ast.BlockStmt:
		return c.walk(st.List, done)
	case *ast.IfStmt:
		if st.Init != nil {
			done, _ = c.stmt(st.Init, done)
		}
		if c.dischargesExpr(st.Cond) {
			done = true
		}
		tDone, tTerm := c.walk(st.Body.List, done)
		eDone, eTerm := done, false
		if st.Else != nil {
			eDone, eTerm = c.stmt(st.Else, done)
		}
		switch {
		case tTerm && eTerm:
			return done, true
		case tTerm:
			return eDone, false
		case eTerm:
			return tDone, false
		default:
			return tDone && eDone, false
		}
	case *ast.ForStmt, *ast.RangeStmt:
		var body *ast.BlockStmt
		if f, ok := st.(*ast.ForStmt); ok {
			body = f.Body
		} else {
			body = st.(*ast.RangeStmt).Body
		}
		// The body may execute zero times: discharges inside do not
		// propagate past the loop, but missing discharges at returns inside
		// are still checked.
		c.walk(body.List, done)
		return done, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := st.(*ast.SwitchStmt); ok {
			body = sw.Body
		} else {
			body = st.(*ast.TypeSwitchStmt).Body
		}
		allDone, allTerm, hasDefault := true, true, false
		for _, cl := range body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			d, t := c.walk(cc.Body, done)
			if !t {
				allTerm = false
				allDone = allDone && d
			}
		}
		if !hasDefault {
			allTerm = false
			allDone = allDone && done
		}
		if allTerm && hasDefault {
			return done, true
		}
		return allDone, false
	case *ast.SelectStmt:
		allDone, allTerm := true, true
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			d, t := c.walk(cc.Body, done)
			if !t {
				allTerm = false
				allDone = allDone && d
			}
		}
		if allTerm {
			return done, true
		}
		return allDone, false
	case *ast.LabeledStmt:
		return c.stmt(st.Stmt, done)
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; treat the path as
		// ended here (any later return is checked at its own level).
		return done, true
	case *ast.ExprStmt:
		if c.dischargesExpr(st.X) {
			return true, false
		}
		return done, false
	case *ast.AssignStmt:
		for i, r := range st.Rhs {
			if c.dischargesExpr(r) {
				return true, false
			}
			if c.Matches(r) && !(i < len(st.Lhs) && isBlank(st.Lhs[i])) {
				return true, false // stored or re-bound: ownership moved
			}
		}
		return done, false
	case *ast.SendStmt:
		if c.Matches(st.Value) || c.dischargesExpr(st.Value) {
			return true, false
		}
		return done, false
	case *ast.GoStmt:
		if c.callDischarges(st.Call) {
			return true, false
		}
		return done, false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && c.dischargesExpr(e) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true, false
		}
		return done, false
	}
	return done, false
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// --- sink summaries ---

// sinkKey / nonSinkKey name the per-parameter summary facts. Absence of
// both means "unknown" (a function outside the analyzed universe), which
// callers treat optimistically.
func sinkKey(fnKey string, i int) string    { return fmt.Sprintf("sink:%s:%d", fnKey, i) }
func nonSinkKey(fnKey string, i int) string { return fmt.Sprintf("nonsink:%s:%d", fnKey, i) }

// ExportSinkFacts classifies every slice-typed parameter of every function
// declaration in the pass as sink or non-sink and exports the verdicts.
// Idempotent: both pool-discipline analyzers call it, whichever runs first
// wins and the second recomputes the same answers.
func ExportSinkFacts(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			key := analysis.ObjKey(fn)
			known := KnownSink(fn)
			i := -1
			for _, field := range decl.Type.Params.List {
				for _, name := range field.Names {
					i++
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok || v.Name() == "_" {
						continue
					}
					if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
						continue
					}
					if known || paramIsSink(pass, decl, v) {
						pass.Facts.Export(FactNamespace, sinkKey(key, i), "")
					} else {
						pass.Facts.Export(FactNamespace, nonSinkKey(key, i), "")
					}
				}
				if len(field.Names) == 0 {
					i++ // unnamed parameter occupies a slot
				}
			}
		}
	}
}

// KnownSink reports whether fn is one of the repo's terminal release
// primitives — axiomatically a sink for its slice parameters regardless of
// body shape. The real implementations recycle backing arrays through
// sync.Pool internals the path checker cannot see (and the test fixtures
// stub them with empty bodies), so classifying them from their bodies would
// wrongly bounce the obligation back to every correct caller.
func KnownSink(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	recv := analysis.NamedRecvName(fn)
	switch {
	case lastElem(path) == "tram" && recv == "Manager":
		return fn.Name() == "Release" || fn.Name() == "ReleaseTo"
	case lastElem(path) == "arena" && recv == "Arena":
		return fn.Name() == "Put" || fn.Name() == "PutShared"
	}
	return false
}

func lastElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// paramIsSink reports whether v is discharged on every path through decl.
func paramIsSink(pass *analysis.Pass, decl *ast.FuncDecl, v *types.Var) bool {
	leaked := false
	c := &Checker{
		Pass: pass,
		Matches: func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && pass.TypesInfo.Uses[id] == v
		},
		// Consult callee summaries so a chain f -> g -> Release classifies
		// f's param correctly once g's package (or g itself, in file
		// order) has been summarized; unknowns stay optimistic.
		TransferDischarges: func(call *ast.CallExpr, argIndex int) bool {
			return TransferDischarges(pass, call, argIndex)
		},
		OnLeak: func(token.Pos) { leaked = true },
	}
	c.Check(decl.Body.List, decl.Body.Rbrace)
	return !leaked
}

// TransferDischarges is the facts-aware transfer rule shared by the
// pool-discipline analyzers: handing the tracked value to a callee known to
// be a non-sink for that parameter does NOT discharge the obligation;
// known sinks and unknown callees do.
func TransferDischarges(pass *analysis.Pass, call *ast.CallExpr, argIndex int) bool {
	fn := CalleeFunc(pass, call)
	if fn == nil || KnownSink(fn) {
		return true // dynamic call or terminal release primitive
	}
	if _, nonsink := pass.Facts.Import(FactNamespace, nonSinkKey(analysis.ObjKey(fn), argIndex)); nonsink {
		return false
	}
	return true
}

// IsSinkParam reports whether parameter i of fn was summarized as a sink.
func IsSinkParam(facts *analysis.Facts, fn *types.Func, i int) bool {
	_, ok := facts.Import(FactNamespace, sinkKey(analysis.ObjKey(fn), i))
	return ok
}

// CalleeFunc resolves a call's static callee, or nil for dynamic calls.
func CalleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// ParamObj resolves parameter index i of decl to its variable, skipping
// variadic and out-of-range indices.
func ParamObj(pass *analysis.Pass, decl *ast.FuncDecl, i int) *types.Var {
	n := 0
	for _, field := range decl.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			n++ // unnamed parameter occupies a slot
			continue
		}
		for _, name := range names {
			if n == i {
				v, _ := pass.TypesInfo.Defs[name].(*types.Var)
				return v
			}
			n++
		}
	}
	return nil
}
