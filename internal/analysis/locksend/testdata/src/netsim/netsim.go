// Package netsim is a locksend fixture standing in for the real fabric: the
// analyzer matches send APIs by (package last element, receiver, method).
package netsim

// Network mimics the fabric entry point.
type Network struct{}

// Send mimics the fabric send API.
func (n *Network) Send(src, dst int, payload any, size int) {}
