// Package tram is a locksend fixture standing in for the real aggregation
// manager.
package tram

// Batch mimics a flushed buffer.
type Batch[T any] struct {
	DestPE int
	Items  []T
}

// Manager mimics the buffering policy.
type Manager[T any] struct{}

// Insert mimics the buffering insert (a send-path API).
func (m *Manager[T]) Insert(src, dst int, item T) *Batch[T] { return nil }

// FlushSet mimics the explicit flush (a send-path API).
func (m *Manager[T]) FlushSet(src int) []Batch[T] { return nil }
