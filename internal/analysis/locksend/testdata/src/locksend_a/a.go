// Package locksend_a is a locksend fixture: sends under held locks must be
// flagged; sends after release, under a directive, or lock-free are clean.
package locksend_a

import (
	"sync"

	"netsim"
	"tram"
)

type state struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	net *netsim.Network
	tm  *tram.Manager[int]
	n   int
}

func (s *state) badExplicit() {
	s.mu.Lock()
	s.net.Send(0, 1, nil, 0) // want "call to Send while holding s.mu"
	s.mu.Unlock()
}

func (s *state) badDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.tm.Insert(0, 1, s.n) // want "call to Insert while holding s.mu"
}

func (s *state) badReadLock() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.tm.FlushSet(0) // want "call to FlushSet while holding s.rw"
}

func (s *state) goodAfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.net.Send(0, 1, nil, 0)
}

func (s *state) goodNoLock() {
	s.net.Send(0, 1, nil, 0)
}

func (s *state) goodClosureOwnContext() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The closure runs at an unknown time; the enclosing lock is not
	// assumed held inside it.
	_ = func() {
		s.net.Send(0, 1, nil, 0)
	}
}

func (s *state) blessed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.net.Send(0, 1, nil, 0) //acic:allow-locked-send fixture: provably deadlock-free
}
