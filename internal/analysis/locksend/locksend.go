// Package locksend flags calls into the netsim/tram send path made while a
// sync.Mutex or sync.RWMutex acquired in the same function is still held.
//
// Sending routes through user-extensible code (DropFilter) and through the
// fabric's own lane locks; doing that while holding an application lock is
// the deadlock class PR 1 eliminated by moving DropFilter evaluation outside
// every fabric lock. The invariant since then: acquire, mutate, release —
// then send. This analyzer enforces it intraprocedurally: within one
// function, any call to a send/flush API between a Lock/RLock and its
// Unlock (including locks held to function end via defer) is reported.
//
// The send path is identified by (package, receiver, method):
//
//	netsim.Network:  Send
//	runtime.PE:      Send, Broadcast, Contribute
//	runtime.Runtime: Inject, send, sendFrom
//	tram.Manager:    Insert, FlushSet
//
// The walk is source-order and branch-insensitive: a lock released on only
// one branch is treated as held afterwards, which over-approximates but
// keeps findings predictable. //acic:allow-locked-send suppresses a finding
// that is provably safe.
package locksend

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"acic/internal/analysis"
)

// Directive is the escape hatch recognized by this analyzer.
const Directive = "allow-locked-send"

// Analyzer is the locksend pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksend",
	Doc: "flag netsim/tram send-path calls made while holding a mutex\n\n" +
		"sends traverse fabric locks and user code (DropFilter); holding an\n" +
		"application lock across them risks the PR 1 deadlock class.",
	Run: run,
}

// sendMethods maps package-path last element -> receiver type name ->
// forbidden-under-lock method names.
var sendMethods = map[string]map[string]map[string]bool{
	"netsim": {
		"Network": {"Send": true},
	},
	"runtime": {
		"PE":      {"Send": true, "Broadcast": true, "Contribute": true},
		"Runtime": {"Inject": true, "send": true, "sendFrom": true},
	},
	"tram": {
		"Manager": {"Insert": true, "FlushSet": true},
	},
}

func run(pass *analysis.Pass) error {
	dirs := analysis.FileDirectives(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &walker{pass: pass, dirs: dirs, held: map[string]token.Pos{}}
			w.stmts(fn.Body.List)
			// Function literals get their own empty lock context: a closure
			// runs at an unknown time, so locks of the enclosing function
			// are not assumed held inside it (nor its locks outside).
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					inner := &walker{pass: pass, dirs: dirs, held: map[string]token.Pos{}}
					inner.stmts(lit.Body.List)
				}
				return true
			})
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
	dirs *analysis.PkgDirectives
	// held maps the canonical receiver expression of an acquired mutex to
	// its acquisition position.
	held map[string]token.Pos
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end; it is not
		// a release point for the source-order walk. Still scan the call's
		// arguments for send calls evaluated now.
		if op, _ := w.classifyLock(st.Call); op == opNone {
			w.exprCalls(st.Call)
		}
		return
	case *ast.BlockStmt:
		w.stmts(st.List)
		return
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.exprCalls(st.Cond)
		w.stmts(st.Body.List)
		if st.Else != nil {
			w.stmt(st.Else)
		}
		return
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.exprCalls(st.Cond)
		}
		w.stmts(st.Body.List)
		if st.Post != nil {
			w.stmt(st.Post)
		}
		return
	case *ast.RangeStmt:
		w.exprCalls(st.X)
		w.stmts(st.Body.List)
		return
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Tag != nil {
			w.exprCalls(st.Tag)
		}
		w.stmts(st.Body.List)
		return
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.stmts(st.Body.List)
		return
	case *ast.CaseClause:
		w.stmts(st.Body)
		return
	case *ast.SelectStmt:
		w.stmts(st.Body.List)
		return
	case *ast.CommClause:
		if st.Comm != nil {
			w.stmt(st.Comm)
		}
		w.stmts(st.Body)
		return
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
		return
	}
	// Leaf statements (expressions, assignments, returns, sends, go):
	// process their embedded calls in source order.
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate lock context, walked by run
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.call(call)
		return true
	})
}

// exprCalls processes the calls inside a bare expression.
func (w *walker) exprCalls(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.call(call)
		}
		return true
	})
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

func (w *walker) call(call *ast.CallExpr) {
	switch w.lockOp(call) {
	case opLock, opUnlock:
		return // handled in lockOp
	}
	fn := calleeFunc(w.pass, call)
	if fn == nil || !isSendAPI(fn) {
		return
	}
	if len(w.held) == 0 || w.dirs.Allowed(Directive, call.Pos()) {
		return
	}
	for expr, at := range w.held {
		w.pass.Reportf(call.Pos(),
			"call to %s while holding %s (acquired at %s): release the lock before entering the send path",
			fn.Name(), expr, w.pass.Fset.Position(at))
	}
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock on sync mutexes, updating
// the held set, and reports which kind of operation the call was.
func (w *walker) lockOp(call *ast.CallExpr) lockOp {
	op, key := w.classifyLock(call)
	switch op {
	case opLock:
		w.held[key] = call.Pos()
	case opUnlock:
		delete(w.held, key)
	}
	return op
}

// classifyLock identifies a mutex operation without changing the held set.
func (w *walker) classifyLock(call *ast.CallExpr) (lockOp, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, ""
	}
	recv := receiverName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return opNone, ""
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return opLock, key
	case "Unlock", "RUnlock":
		return opUnlock, key
	}
	return opNone, ""
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func isSendAPI(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	last := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		last = path[i+1:]
	}
	byRecv, ok := sendMethods[last]
	if !ok {
		return false
	}
	methods, ok := byRecv[receiverName(fn)]
	return ok && methods[fn.Name()]
}

// receiverName returns the named-type name of fn's receiver ("" for plain
// functions), unwrapping pointers and generic instances.
func receiverName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
