package locksend_test

import (
	"testing"

	"acic/internal/analysis/analysistest"
	"acic/internal/analysis/locksend"
)

func TestLockSend(t *testing.T) {
	analysistest.Run(t, "testdata", locksend.Analyzer, "netsim", "tram", "locksend_a")
}
