// Package load type-checks the module's packages for analysis, standing in
// for golang.org/x/tools/go/packages without the dependency.
//
// Strategy: one `go list -export -deps -json` invocation enumerates the
// pattern-matched packages plus their full dependency closure in dependency
// order. Module packages are parsed and type-checked from source (the
// analyzers need syntax); everything else — the standard library — is
// imported from the compiler export data `go list -export` guarantees to
// exist in the build cache, so loading needs no network and no GOPATH.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package with syntax.
type Package struct {
	Path      string
	Dir       string
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Root is true when the package matched the load patterns itself (as
	// opposed to being pulled in as a dependency of a match).
	Root bool
}

// Result is the outcome of a Load: the shared fileset plus the module
// packages in dependency order.
type Result struct {
	Fset     *token.FileSet
	Packages []*Package
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists patterns from dir and type-checks every module package in the
// result. Dependencies resolve through build-cache export data.
func Load(dir string, patterns []string) (*Result, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	byPath := make(map[string]*listPkg)
	var order []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		lp := p
		byPath[lp.ImportPath] = &lp
		order = append(order, &lp)
	}

	fset := token.NewFileSet()
	checked := make(map[string]*types.Package)
	exportImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p := byPath[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if tp, ok := checked[path]; ok {
			return tp, nil
		}
		return exportImp.Import(path)
	})

	res := &Result{Fset: fset}
	for _, p := range order { // -deps emits dependencies before dependents
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Standard || p.Module == nil {
			continue // imported from export data on demand
		}
		pkg, err := checkPackage(fset, p, imp)
		if err != nil {
			return nil, err
		}
		checked[p.ImportPath] = pkg.Types
		res.Packages = append(res.Packages, pkg)
	}
	return res, nil
}

func checkPackage(fset *token.FileSet, p *listPkg, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		Path:      p.ImportPath,
		Dir:       p.Dir,
		Files:     files,
		Types:     tp,
		TypesInfo: info,
		Root:      !p.DepOnly,
	}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
