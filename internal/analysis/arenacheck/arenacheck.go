// Package arenacheck enforces arena chunk and tram buffer ownership: every
// local bound from arena.Arena.Get or tram.Manager.Borrow must be released
// (Put/PutShared/Release/ReleaseTo) or ownership-transferred on all paths,
// and must not be used again after the release.
//
// The arena hands out fixed-capacity chunks from per-owner freelists; a
// borrowed chunk that is dropped on some path drains the freelist exactly
// like a leaked tram batch (see releasecheck) — the steady state silently
// stops being allocation-free. Worse, a chunk that is *used after* being
// put back aliases whatever the freelist hands out next: the DESIGN.md
// "Arena ownership" rule that no arena-backed slice is retained across a
// Scratch reset or reduction boundary is exactly a use-after-release of
// this shape, so the analyzer flags any read of a chunk variable after the
// statement that released it (until the variable is re-bound).
//
// Obligations are created where a Get/Borrow result is bound to a local and
// checked with the shared ownership engine, starting at the statement after
// the binding and propagating outward through enclosing statement lists: a
// chunk borrowed inside an if-arm may legally be discharged later in the
// enclosing block. An obligation created inside a loop body must be
// discharged by the end of that iteration (stores — including storing
// append(chunk, ...) — count, which is how the demux pattern
// fwdBufs[owner] = append(buf, u) transfers ownership into the held-buffer
// table). Hand-offs to other functions consult the ownership sink
// summaries, so passing a chunk to a function known to drop it does not
// discharge the obligation.
//
// //acic:allow-retain suppresses a finding (a deliberate long-lived hold),
// with a justification comment.
package arenacheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"acic/internal/analysis"
	"acic/internal/analysis/ownership"
)

// Directive is the escape hatch recognized by this analyzer.
const Directive = "allow-retain"

// Analyzer is the arenacheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "arenacheck",
	Doc: "require arena chunks and borrowed tram buffers to be released on every path\n\n" +
		"locals bound from Arena.Get / Manager.Borrow must be Put/Released or\n" +
		"handed on before every return, and never touched after the release;\n" +
		"cross-function hand-offs are judged by exported sink summaries.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Publish this package's slice-parameter summaries for dependents even
	// when it borrows nothing itself.
	ownership.ExportSinkFacts(pass)
	dirs := analysis.FileDirectives(pass)

	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || pass.InTestFile(decl.Pos()) {
				continue
			}
			for _, b := range findBindings(pass, decl) {
				c := &checker{pass: pass, dirs: dirs, fn: decl, bind: b}
				c.checkLeak()
				c.checkUseAfterRelease()
			}
		}
	}
	return nil
}

// binding is one obligation-creating statement: a local assigned from
// Arena.Get or Manager.Borrow.
type binding struct {
	stmt ast.Stmt   // the assignment statement
	v    *types.Var // the local holding the chunk
	what string     // "arena chunk" or "tram buffer"
}

// findBindings collects the chunk/buffer bindings in decl.
func findBindings(pass *analysis.Pass, decl *ast.FuncDecl) []binding {
	var out []binding
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			what, ok := borrowKind(pass, call)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := objOf(pass, id)
			if v == nil {
				continue
			}
			out = append(out, binding{stmt: as, v: v, what: what})
		}
		return true
	})
	return out
}

func objOf(pass *analysis.Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// borrowKind classifies a call as an obligation source.
func borrowKind(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := ownership.CalleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg := lastElem(fn.Pkg().Path())
	recv := analysis.NamedRecvName(fn)
	switch {
	case pkg == "arena" && recv == "Arena" && fn.Name() == "Get":
		return "arena chunk", true
	case pkg == "tram" && recv == "Manager" && fn.Name() == "Borrow":
		return "tram buffer", true
	}
	return "", false
}

func lastElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// checker verifies one binding's obligations.
type checker struct {
	pass *analysis.Pass
	dirs *analysis.PkgDirectives
	fn   *ast.FuncDecl
	bind binding
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.dirs.Allowed(Directive, pos) || c.dirs.Allowed(Directive, c.fn.Pos()) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// matches reports whether e denotes the tracked chunk — the variable
// itself, or an append(chunk, ...) expression (storing or returning the
// grown slice moves ownership with it).
func (c *checker) matches(e ast.Expr) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		return c.pass.TypesInfo.Uses[id] == c.bind.v
	}
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
				return c.matches(call.Args[0])
			}
		}
	}
	return false
}

// checkLeak runs the all-paths discharge check: from the statement after
// the binding, through enclosing statement lists, stopping at a loop body
// or function-literal boundary (an obligation created inside an iteration
// must be discharged within it).
func (c *checker) checkLeak() {
	lists := enclosingLists(c.fn.Body, c.bind.stmt)
	if lists == nil {
		return
	}
	oc := &ownership.Checker{
		Pass:    c.pass,
		Matches: c.matches,
		TransferDischarges: func(call *ast.CallExpr, i int) bool {
			return ownership.TransferDischarges(c.pass, call, i)
		},
		OnLeak: func(pos token.Pos) {
			c.report(pos,
				"%s %q may not be released on this path: Put/Release it or hand it on, or annotate //acic:allow-retain",
				c.bind.what, c.bind.v.Name())
		},
	}
	// Walk each level's continuation; a level that discharges or returns on
	// all paths resolves the obligation, otherwise it falls through to the
	// enclosing level's continuation.
	for i, lv := range lists {
		rest := lv.stmts[lv.after:]
		done, terminated := walkList(oc, rest)
		if done || terminated {
			return
		}
		if i == len(lists)-1 {
			oc.OnLeak(lv.end)
		}
	}
}

// walkList runs the ownership checker over a statement list, returning the
// final discharge state and whether every path terminates.
func walkList(oc *ownership.Checker, list []ast.Stmt) (bool, bool) {
	return oc.Walk(list, false)
}

// level is one enclosing statement list: the statements, the index after
// the statement containing the binding, and the position reported when the
// obligation falls off this list's end.
type level struct {
	stmts []ast.Stmt
	after int
	end   token.Pos
}

// enclosingLists returns the chain of statement lists from the one directly
// containing bind outward, stopping after a loop body or at the function
// body. Returns nil when bind sits inside a function literal (the closure
// runs later; its obligation is checked against the literal's own body,
// which path the inspection below also reaches).
func enclosingLists(body *ast.BlockStmt, bind ast.Stmt) []level {
	type frame struct {
		stmts []ast.Stmt
		end   token.Pos
		loop  bool // this list is a loop body: do not propagate past it
	}
	var chain []frame
	var out []level
	found := false

	var visitList func(stmts []ast.Stmt, end token.Pos, loop bool) bool
	var visitStmt func(s ast.Stmt) bool

	visitList = func(stmts []ast.Stmt, end token.Pos, loop bool) bool {
		chain = append(chain, frame{stmts, end, loop})
		defer func() { chain = chain[:len(chain)-1] }()
		for i, s := range stmts {
			if s == bind {
				// Materialize the chain innermost-first with continuation
				// indices.
				idx := i
				for j := len(chain) - 1; j >= 0; j-- {
					f := chain[j]
					after := idx + 1
					out = append(out, level{stmts: f.stmts, after: after, end: f.end})
					if f.loop || j == 0 {
						break
					}
					// Find the enclosing statement's index in the parent.
					parent := chain[j-1]
					idx = indexSpanning(parent.stmts, f.stmts)
					if idx < 0 {
						break
					}
				}
				found = true
				return true
			}
			if visitStmt(s) {
				return true
			}
		}
		return false
	}
	visitStmt = func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.BlockStmt:
			return visitList(st.List, st.Rbrace, false)
		case *ast.IfStmt:
			if visitList(st.Body.List, st.Body.Rbrace, false) {
				return true
			}
			if st.Else != nil {
				return visitStmt(st.Else)
			}
		case *ast.ForStmt:
			return visitList(st.Body.List, st.Body.Rbrace, true)
		case *ast.RangeStmt:
			return visitList(st.Body.List, st.Body.Rbrace, true)
		case *ast.SwitchStmt:
			for _, cl := range st.Body.List {
				cc := cl.(*ast.CaseClause)
				if visitList(cc.Body, cc.End(), false) {
					return true
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range st.Body.List {
				cc := cl.(*ast.CaseClause)
				if visitList(cc.Body, cc.End(), false) {
					return true
				}
			}
		case *ast.SelectStmt:
			for _, cl := range st.Body.List {
				cc := cl.(*ast.CommClause)
				if visitList(cc.Body, cc.End(), false) {
					return true
				}
			}
		case *ast.LabeledStmt:
			return visitStmt(st.Stmt)
		}
		return false
	}
	visitList(body.List, body.Rbrace, false)
	if !found {
		return nil
	}
	return out
}

// indexSpanning returns the index of the statement in stmts whose span
// contains inner, or -1.
func indexSpanning(stmts []ast.Stmt, inner []ast.Stmt) int {
	if len(inner) == 0 {
		return -1
	}
	for i, s := range stmts {
		if s.Pos() <= inner[0].Pos() && inner[len(inner)-1].End() <= s.End() {
			return i
		}
	}
	return -1
}

// checkUseAfterRelease flags reads of the chunk variable after the
// statement that released it, scanning each statement list linearly until
// the variable is re-bound.
func (c *checker) checkUseAfterRelease() {
	var scan func(list []ast.Stmt)
	scan = func(list []ast.Stmt) {
		released := false
		for _, s := range list {
			if released {
				if rebindsVar(c.pass, s, c.bind.v) {
					released = false
				} else if pos, ok := c.firstUse(s); ok {
					c.report(pos,
						"%s %q used after it was released: the freelist may already have handed it out again",
						c.bind.what, c.bind.v.Name())
					released = false // one report per release point
				}
			}
			if !released && c.releasesStmt(s) {
				released = true
			}
			// Descend into nested lists independently.
			switch st := s.(type) {
			case *ast.BlockStmt:
				scan(st.List)
			case *ast.IfStmt:
				scan(st.Body.List)
				if st.Else != nil {
					scan([]ast.Stmt{st.Else})
				}
			case *ast.ForStmt:
				scan(st.Body.List)
			case *ast.RangeStmt:
				scan(st.Body.List)
			case *ast.SwitchStmt:
				for _, cl := range st.Body.List {
					scan(cl.(*ast.CaseClause).Body)
				}
			case *ast.TypeSwitchStmt:
				for _, cl := range st.Body.List {
					scan(cl.(*ast.CaseClause).Body)
				}
			case *ast.SelectStmt:
				for _, cl := range st.Body.List {
					scan(cl.(*ast.CommClause).Body)
				}
			case *ast.LabeledStmt:
				scan([]ast.Stmt{st.Stmt})
			}
		}
	}
	scan(c.fn.Body.List)
}

// releasesStmt reports whether s (without descending into nested blocks)
// contains a terminal release call taking the chunk.
func (c *checker) releasesStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := ownership.CalleeFunc(c.pass, call)
	if fn == nil || !ownership.KnownSink(fn) {
		return false
	}
	for _, arg := range call.Args {
		if c.matches(arg) {
			return true
		}
	}
	return false
}

// firstUse returns the position of the first read of the chunk variable in
// s, not descending into nested statement bodies (those are scanned in
// their own right).
func (c *checker) firstUse(s ast.Stmt) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		}
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.bind.v {
			pos, found = id.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}

// rebindsVar reports whether s assigns a fresh value to v.
func rebindsVar(pass *analysis.Pass, s ast.Stmt, v *types.Var) bool {
	as, ok := s.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if pass.TypesInfo.Defs[id] == v || pass.TypesInfo.Uses[id] == v {
				return true
			}
		}
	}
	return false
}
