package arenacheck_test

import (
	"testing"

	"acic/internal/analysis/analysistest"
	"acic/internal/analysis/arenacheck"
)

func TestArenaCheck(t *testing.T) {
	analysistest.Run(t, "testdata", arenacheck.Analyzer, "arena", "tram", "arenacheck_a")
}

// TestArenaCheckCrossPackage exercises the interprocedural half: the sink
// summaries exported while analyzing arenacheck_dep decide whether the
// hand-offs in arenacheck_x discharge their obligations.
func TestArenaCheckCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", arenacheck.Analyzer, "arena", "arenacheck_dep", "arenacheck_x")
}
