// Package arena is an arenacheck fixture standing in for the real chunk
// arena: the analyzer matches Arena.Get/Put/PutShared by (package last
// element, receiver type, method name).
package arena

// Arena mimics the per-owner chunk freelists.
type Arena[T any] struct{}

// Get mimics borrowing one empty chunk from owner's freelist.
func (a *Arena[T]) Get(owner int) []T { return nil }

// Put mimics returning a chunk to owner's freelist.
func (a *Arena[T]) Put(owner int, c []T) {}

// PutShared mimics returning a chunk to the shared spill freelist.
func (a *Arena[T]) PutShared(c []T) {}
