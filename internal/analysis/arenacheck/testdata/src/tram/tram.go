// Package tram is an arenacheck fixture standing in for the real
// aggregation manager: the analyzer matches Manager.Borrow by (package last
// element, receiver type, method name).
package tram

// Manager mimics the buffering policy with its pool.
type Manager[T any] struct{}

// Borrow mimics handing out one empty full-capacity buffer.
func (m *Manager[T]) Borrow(srcPE int) []T { return nil }

// Release mimics returning a batch's backing array to the pool.
func (m *Manager[T]) Release(items []T) {}

// ReleaseTo mimics returning a backing array to pe's freelist.
func (m *Manager[T]) ReleaseTo(pe int, items []T) {}
