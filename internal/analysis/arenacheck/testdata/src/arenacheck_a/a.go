// Package arenacheck_a is an arenacheck fixture: chunk/buffer borrowers
// that leak on some path or touch a chunk after releasing it are flagged;
// borrowers that release, transfer, defer, or store are clean.
package arenacheck_a

import (
	"arena"
	"tram"
)

type update struct{ v int }

type state struct {
	ar      *arena.Arena[update]
	tm      *tram.Manager[update]
	fwdBufs [][]update
}

// getGood borrows and returns the chunk: clean.
func (st *state) getGood() {
	chunk := st.ar.Get(0)
	chunk = append(chunk, update{1})
	st.ar.Put(0, chunk)
}

// getLeak borrows and drops the chunk.
func (st *state) getLeak() {
	chunk := st.ar.Get(0)
	_ = len(chunk)
} // want "arena chunk \"chunk\" may not be released on this path"

// getEarlyReturn leaks only on the early-return path.
func (st *state) getEarlyReturn(n int) {
	chunk := st.ar.Get(0)
	if n == 0 {
		return // want "arena chunk \"chunk\" may not be released on this path"
	}
	st.ar.Put(0, chunk)
}

// getDefer releases through a defer: clean.
func (st *state) getDefer() {
	chunk := st.ar.Get(0)
	defer st.ar.PutShared(chunk)
	chunk = append(chunk, update{2})
}

// borrowDemux mirrors the runtime demux pattern: the buffer borrowed
// inside the if-arm is discharged later in the loop body by storing the
// appended slice into the held-buffer table. Clean.
func (st *state) borrowDemux(items []update, owners []int) {
	for i, u := range items {
		owner := owners[i]
		buf := st.fwdBufs[owner]
		if buf == nil {
			buf = st.tm.Borrow(0)
		}
		st.fwdBufs[owner] = append(buf, u)
	}
}

// borrowLoopLeak borrows inside the loop and drops the buffer before the
// iteration ends.
func (st *state) borrowLoopLeak(n int) {
	for i := 0; i < n; i++ {
		buf := st.tm.Borrow(0)
		_ = cap(buf)
	} // want "tram buffer \"buf\" may not be released on this path"
}

// useAfterPut touches the chunk after it went back to the freelist.
func (st *state) useAfterPut() int {
	chunk := st.ar.Get(0)
	chunk = append(chunk, update{3})
	st.ar.Put(0, chunk)
	return chunk[0].v // want "arena chunk \"chunk\" used after it was released"
}

// rebindAfterPut re-borrows into the same variable after the release:
// clean.
func (st *state) rebindAfterPut() {
	chunk := st.ar.Get(0)
	st.ar.Put(0, chunk)
	chunk = st.ar.Get(1)
	st.ar.Put(1, chunk)
}

// retainBlessed is a deliberate long-lived hold, exempted by directive.
//
//acic:allow-retain fixture: chunk is parked in package state for replay
func (st *state) retainBlessed() {
	chunk := st.ar.Get(0)
	_ = len(chunk)
}
