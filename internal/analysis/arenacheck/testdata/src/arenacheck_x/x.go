// Package arenacheck_x is the dependent half of the cross-package
// arenacheck fixture: whether handing a chunk to an imported helper
// discharges the obligation is decided by the helper's exported sink
// summary, not assumed.
package arenacheck_x

import (
	"arena"
	"arenacheck_dep"
)

type state struct {
	ar *arena.Arena[arenacheck_dep.Update]
}

// viaInspect hands the chunk to a known non-sink: the obligation bounces
// back and this function leaks it.
func (st *state) viaInspect() {
	chunk := st.ar.Get(0)
	arenacheck_dep.Inspect(chunk)
} // want "arena chunk \"chunk\" may not be released on this path"

// viaRecycle hands the chunk to a known sink: ownership transfers, clean.
func (st *state) viaRecycle() {
	chunk := st.ar.Get(0)
	arenacheck_dep.Recycle(st.ar, chunk)
}
