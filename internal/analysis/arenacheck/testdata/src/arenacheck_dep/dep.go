// Package arenacheck_dep is the dependency half of the cross-package
// arenacheck fixture: its slice-parameter sink summaries are exported as
// ownership facts for the dependent package.
package arenacheck_dep

import "arena"

type Update struct{ V int }

// Inspect iterates without releasing: a non-sink, so callers handing it a
// chunk keep the obligation.
func Inspect(chunk []Update) {
	for range chunk {
	}
}

// Recycle releases the chunk it is given: a sink.
func Recycle(ar *arena.Arena[Update], chunk []Update) {
	ar.PutShared(chunk)
}
