// Package multichecker drives a set of analyzers over package patterns,
// playing the role of golang.org/x/tools/go/analysis/multichecker for the
// cmd/acic-lint binary.
package multichecker

import (
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"

	"acic/internal/analysis"
	"acic/internal/analysis/load"
)

// Finding is one diagnostic with its analyzer and resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run loads patterns from dir and applies every analyzer to each root
// package (dependencies are type-checked but not analyzed). Findings come
// back sorted by file position.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	res, err := load.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range res.Packages {
		if !pkg.Root {
			continue
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      res.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: name,
					Pos:      res.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// Main is the CLI entry point: analyze the patterns given as arguments
// (default ./...) in the current directory, print findings, and exit 0 when
// clean, 1 on findings, 2 on load or internal errors.
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr, analyzers))
}

func cliMain(args []string, stdout, stderr io.Writer, analyzers []*analysis.Analyzer) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if len(patterns) == 1 && (patterns[0] == "-h" || patterns[0] == "-help" || patterns[0] == "--help") {
		fmt.Fprintln(stdout, "usage: acic-lint [package patterns]")
		fmt.Fprintln(stdout, "\nanalyzers:")
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	findings, err := Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "acic-lint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "acic-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
