// Package multichecker drives a set of analyzers over package patterns,
// playing the role of golang.org/x/tools/go/analysis/multichecker for the
// cmd/acic-lint binary.
package multichecker

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"

	"acic/internal/analysis"
	"acic/internal/analysis/load"
)

// Finding is one diagnostic with its analyzer and resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// jsonFinding is the -json wire form of one Finding, flat so the CI
// artifact is greppable/jq-able without knowing token.Position's shape.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// Run loads patterns from dir and applies every analyzer to each module
// package in dependency order — dependencies are analyzed too, so facts
// exported while analyzing them (see analysis.Facts) are visible to their
// dependents, which is what makes the suite interprocedural across package
// boundaries. Findings are only reported for root packages (the ones the
// patterns matched); they come back sorted by file position.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	res, err := load.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	facts := analysis.NewFacts()
	var findings []Finding
	for _, pkg := range res.Packages {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      res.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
			}
			name := a.Name
			root := pkg.Root
			pass.Report = func(d analysis.Diagnostic) {
				if !root {
					return // dependency pass: facts only, findings belong to its own lint run
				}
				findings = append(findings, Finding{
					Analyzer: name,
					Pos:      res.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// Options configures Main beyond the analyzer list.
type Options struct {
	// Analyzers is the suite run in the default (and -json) mode.
	Analyzers []*analysis.Analyzer
	// Noalloc implements the -noalloc mode: the static zero-allocation
	// gate, which is not a per-package AST pass (it shells out to the
	// compiler's escape analysis) and therefore plugs in as a whole-tree
	// check here. Nil disables the flag.
	Noalloc func(dir string, patterns []string) ([]Finding, error)
}

// Main is the CLI entry point: analyze the patterns given as arguments
// (default ./...) in the current directory, print findings, and exit 0 when
// clean, 1 on findings, 2 on load or internal errors.
func Main(opts Options) {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr, opts))
}

func cliMain(args []string, stdout, stderr io.Writer, opts Options) int {
	fs := flag.NewFlagSet("acic-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout (machine-readable CI artifact)")
	noalloc := fs.Bool("noalloc", false, "run the static zero-allocation gate over //acic:noalloc functions instead of the analyzer suite")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: acic-lint [-json] [-noalloc] [package patterns]")
		fmt.Fprintln(stderr, "\nflags:")
		fs.PrintDefaults()
		fmt.Fprintln(stderr, "\nanalyzers:")
		for _, a := range opts.Analyzers {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		if opts.Noalloc != nil {
			fmt.Fprintf(stderr, "  %-14s %s\n", "noalloc (-noalloc)", "gate //acic:noalloc functions on the compiler's escape analysis")
		}
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var findings []Finding
	var err error
	if *noalloc {
		if opts.Noalloc == nil {
			fmt.Fprintln(stderr, "acic-lint: -noalloc is not wired in this build")
			return 2
		}
		findings, err = opts.Noalloc(".", patterns)
	} else {
		findings, err = Run(".", patterns, opts.Analyzers)
	}
	if err != nil {
		fmt.Fprintln(stderr, "acic-lint:", err)
		return 2
	}
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "acic-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "acic-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
