package sharedpad_test

import (
	"testing"

	"acic/internal/analysis/analysistest"
	"acic/internal/analysis/sharedpad"
)

func TestSharedPad(t *testing.T) {
	analysistest.Run(t, "testdata", sharedpad.Analyzer, "sharedpad_a")
}

// TestSharedPadCrossPackage shards a type defined in a dependency; the
// finding lands at the sharding site.
func TestSharedPadCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", sharedpad.Analyzer, "sharedpad_dep", "sharedpad_x")
}
