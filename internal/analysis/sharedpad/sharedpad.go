// Package sharedpad flags per-PE sharded state that is vulnerable to false
// sharing: a named struct containing mutex or atomic fields, used as the
// element type of a slice or array, must carry a cache-line pad.
//
// The runtime's sharded structures (arena freelists, metric cells, netsim
// lanes) are laid out as one element per PE precisely so that each PE
// touches only its own element; without padding, neighboring elements
// share 64-byte cache lines and every counter bump invalidates the
// neighbor's line — a silent multi-x slowdown the benchmarks only surface
// as noise (ROADMAP item 4 kept this open for exactly that reason). The
// rule: if the element struct has a sync.Mutex/RWMutex (by value or
// pointer) or a sync/atomic-typed field, it must also have a trailing
// blank pad field (an `_ [N]byte`-style array of at least 48 bytes, the
// convention used by arena.shard and metrics.cell).
//
// Elements whose type is defined in sync/atomic itself (e.g. a slice of
// atomic.Pointer) are exempt — std types cannot be padded, and slices of
// separately-allocated pointees put the contended word elsewhere. The
// check is purely type-driven, so sharded types defined in a dependency
// are checked at the use site without needing facts.
//
// //acic:allow-unpadded suppresses a finding (e.g. a cold, rarely-written
// shard), with a justification comment.
package sharedpad

import (
	"go/ast"
	"go/types"

	"acic/internal/analysis"
)

// Directive is the escape hatch recognized by this analyzer.
const Directive = "allow-unpadded"

// minPad is the smallest blank-array pad accepted as cache-line padding;
// 48 admits the `_ [7]uint64` (56-byte) convention alongside `_ [64]byte`.
const minPad = 48

// Analyzer is the sharedpad pass.
var Analyzer = &analysis.Analyzer{
	Name: "sharedpad",
	Doc: "require cache-line padding on sharded mutex/atomic-bearing structs\n\n" +
		"a named struct with mutex or atomic fields used as a slice/array\n" +
		"element is per-PE sharded state; without a trailing blank pad\n" +
		"field neighboring shards false-share cache lines.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	dirs := analysis.FileDirectives(pass)
	sizes := types.SizesFor("gc", "amd64")
	if sizes == nil {
		sizes = &types.StdSizes{WordSize: 8, MaxAlign: 8}
	}
	reported := make(map[*types.TypeName]bool)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			at, ok := n.(*ast.ArrayType)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[at.Elt]
			if !ok {
				return true
			}
			named := analysis.NamedOf(tv.Type)
			if named == nil || reported[named.Obj()] {
				return true
			}
			if pass.InTestFile(at.Pos()) {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			if fromSyncAtomic(named) || !hasContendedField(st) || hasPad(st, sizes) {
				return true
			}
			if dirs.Allowed(Directive, at.Pos()) {
				return true
			}
			reported[named.Obj()] = true
			pass.Reportf(at.Pos(),
				"sharded element type %s has mutex/atomic fields but no cache-line pad: add a trailing `_ [64]byte` (or annotate //acic:allow-unpadded)",
				named.Obj().Name())
			return true
		})
	}
	return nil
}

// fromSyncAtomic reports whether the named type is defined in sync/atomic.
func fromSyncAtomic(n *types.Named) bool {
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// hasContendedField reports whether st has a field whose writes contend
// under concurrency: a sync.Mutex/RWMutex (by value or pointer) or any
// sync/atomic-typed field.
func hasContendedField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		t := st.Field(i).Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok || n.Obj().Pkg() == nil {
			continue
		}
		switch n.Obj().Pkg().Path() {
		case "sync":
			if name := n.Obj().Name(); name == "Mutex" || name == "RWMutex" {
				return true
			}
		case "sync/atomic":
			return true
		}
	}
	return false
}

// hasPad reports whether st carries a blank array field of at least minPad
// bytes.
func hasPad(st *types.Struct, sizes types.Sizes) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "_" {
			continue
		}
		if arr, ok := f.Type().Underlying().(*types.Array); ok {
			if sizes.Sizeof(arr) >= minPad {
				return true
			}
		}
	}
	return false
}
