// Package sharedpad_x shards types imported from sharedpad_dep: the check
// is type-driven, so the defect is reported at the use site even though
// the type lives in another package.
package sharedpad_x

import "sharedpad_dep"

type perPE struct {
	shards []sharedpad_dep.Shard // want "sharded element type Shard has mutex/atomic fields but no cache-line pad"
	padded []sharedpad_dep.Padded
}
