// Package sharedpad_a is a sharedpad fixture: mutex/atomic-bearing structs
// used as slice or array elements need a blank cache-line pad; padded
// shards, non-sharded uses, and plain-data elements are clean.
package sharedpad_a

import (
	"sync"
	"sync/atomic"
)

// lane is a contended shard with no pad.
type lane struct {
	mu sync.Mutex
	q  []int
}

type fabric struct {
	lanes []lane // want "sharded element type lane has mutex/atomic fields but no cache-line pad"
}

// cell is a contended shard with the conventional 56-byte pad: clean.
type cell struct {
	n atomic.Int64
	_ [7]uint64
}

type counters struct {
	cells []cell
}

// row uses a byte pad and a fixed-size array: clean.
type row struct {
	mu sync.Mutex
	v  int64
	_  [64]byte
}

var rows [16]row

// pairMu holds its mutex by pointer: the shard's own words still contend.
type pairMu struct {
	mu *sync.Mutex
	rr int
}

func makePairs(n int) []pairMu { // want "sharded element type pairMu has mutex/atomic fields but no cache-line pad"
	return make([]pairMu, n)
}

// plain has no contended fields: element use is free.
type plain struct {
	a, b int
}

var table []plain

// single is contended but never sharded (no slice/array use): clean.
type single struct {
	mu sync.Mutex
	n  int
}

var one single

// underPad has a blank pad that is too small to cover a cache line.
type underPad struct {
	n atomic.Uint64
	_ [8]byte
}

var shards []underPad // want "sharded element type underPad has mutex/atomic fields but no cache-line pad"

// cold is an exempted cold shard.
type cold struct {
	mu sync.Mutex
	n  int
}

//acic:allow-unpadded fixture: written once at startup, never contended
var coldShards []cold
