// Package sharedpad_dep defines contended shard types for the cross-package
// sharedpad fixture; defining them (without sharding them) is clean.
package sharedpad_dep

import "sync"

// Shard is contended and unpadded — legal until someone shards it.
type Shard struct {
	Mu sync.Mutex
	N  int
}

// Padded is the fixed variant.
type Padded struct {
	Mu sync.Mutex
	N  int
	_  [64]byte
}
