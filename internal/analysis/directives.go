package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives indexes //acic:<name> escape-hatch comments of one file.
//
// A directive suppresses an analyzer's diagnostic when it appears
//
//   - on the offending line itself (trailing comment),
//   - on its own line directly above the offending one, or
//   - in the doc comment of the function declaration enclosing the offense,
//     which blesses the whole function body.
//
// The text after the directive name is a free-form justification; the
// convention (enforced by review, not machine) is that every use says why
// the exemption is sound.
type Directives struct {
	fset *token.FileSet
	// lines maps directive name -> set of line numbers it covers.
	lines map[string]map[int]bool
	// spans are function bodies blessed by a doc-comment directive.
	spans []dirSpan
}

type dirSpan struct {
	name     string
	from, to token.Pos
}

// DirectivePrefix introduces every ACIC lint directive.
const DirectivePrefix = "//acic:"

// KnownDirectives is the complete directive vocabulary. dircheck rejects
// anything outside it, so a typo cannot silently fail to suppress (or,
// worse, silently suppress nothing while reading as if it did).
var KnownDirectives = map[string]bool{
	"allow-unreleased":   true, // releasecheck: tram batch deliberately kept
	"allow-retain":       true, // arenacheck: arena chunk deliberately held
	"allow-plain-atomic": true, // atomiccheck: plain access ordered externally
	"allow-lock-order":   true, // lockorder: acquisition ordered by other means
	"allow-locked-send":  true, // locksend: send under lock proven safe
	"allow-goroutine":    true, // nogoroutine: runtime-owned thread
	"allow-wallclock":    true, // detrand: sanctioned wall-clock boundary
	"allow-unpadded":     true, // sharedpad: shard provably uncontended
	"allow-alloc":        true, // noalloc: intentional allocation on one line
	"noalloc":            true, // noalloc: function must not heap-allocate
}

// NewDirectives scans file for //acic: directives. Bare allow-* directives
// (no justification text) are ignored — they do not suppress anything;
// dircheck reports them so they cannot linger.
func NewDirectives(fset *token.FileSet, file *ast.File) *Directives {
	d := &Directives{fset: fset, lines: make(map[string]map[int]bool)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			name, just, ok := ParseDirective(c.Text)
			if !ok || (strings.HasPrefix(name, "allow-") && just == "") {
				continue
			}
			if d.lines[name] == nil {
				d.lines[name] = make(map[int]bool)
			}
			line := fset.Position(c.Pos()).Line
			// The directive covers its own line (trailing-comment form) and
			// the next line (standalone comment-above form).
			d.lines[name][line] = true
			d.lines[name][line+1] = true
		}
	}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil || fn.Body == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			if name, just, ok := ParseDirective(c.Text); ok && !(strings.HasPrefix(name, "allow-") && just == "") {
				d.spans = append(d.spans, dirSpan{name: name, from: fn.Pos(), to: fn.Body.End()})
			}
		}
	}
	return d
}

// ParseDirective splits an //acic:<name> comment into the directive name
// and its free-form justification text (trimmed; empty when absent). ok is
// false for comments that are not acic directives at all.
func ParseDirective(text string) (name, justification string, ok bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return "", "", false
	}
	rest := text[len(DirectivePrefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, justification = rest[:i], strings.TrimSpace(rest[i+1:])
	} else {
		name = rest
	}
	if name == "" {
		return "", "", false
	}
	return name, justification, true
}

// Allowed reports whether directive name covers pos.
func (d *Directives) Allowed(name string, pos token.Pos) bool {
	if d.lines[name][d.fset.Position(pos).Line] {
		return true
	}
	for _, s := range d.spans {
		if s.name == name && s.from <= pos && pos < s.to {
			return true
		}
	}
	return false
}

// FileDirectives builds the directive index for every file of the pass,
// returning a lookup over the whole package.
func FileDirectives(pass *Pass) *PkgDirectives {
	pd := &PkgDirectives{fset: pass.Fset}
	for _, f := range pass.Files {
		pd.perFile = append(pd.perFile, fileDir{file: f, dirs: NewDirectives(pass.Fset, f)})
	}
	return pd
}

// PkgDirectives is the package-wide directive lookup.
type PkgDirectives struct {
	fset    *token.FileSet
	perFile []fileDir
}

type fileDir struct {
	file *ast.File
	dirs *Directives
}

// Allowed reports whether directive name covers pos in its file.
func (pd *PkgDirectives) Allowed(name string, pos token.Pos) bool {
	for _, fd := range pd.perFile {
		if fd.file.FileStart <= pos && pos < fd.file.FileEnd {
			return fd.dirs.Allowed(name, pos)
		}
	}
	return false
}
