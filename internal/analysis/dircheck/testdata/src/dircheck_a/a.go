// Package dircheck_a is a dircheck fixture: unknown directive names are
// flagged; justified known directives and ordinary comments are clean.
// (The bare-allow case cannot carry a same-line want marker — any trailing
// text would become its justification — so it is covered by the
// programmatic test in dircheck_test.go.)
package dircheck_a

// justified allow: clean.
//
//acic:allow-goroutine fixture: this worker is joined by the harness
func spawn() {}

// noalloc needs no justification (it adds an obligation, not an excuse).
//
//acic:noalloc
func hot() {}

//acic:allow-unrelased fixture: typo in the name // want "unknown acic directive \"allow-unrelased\""
func typo() {}

//acic:frobnicate fixture: not a directive at all // want "unknown acic directive \"frobnicate\""
func unknown() {}

// A plain comment mentioning acic is not a directive: clean.
func plain() {}
