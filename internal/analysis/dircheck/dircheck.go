// Package dircheck polices the //acic: directive vocabulary itself: every
// directive must use a known name, and every allow-* escape hatch must
// carry a justification string.
//
// The directive parser already ignores bare allows (they suppress
// nothing), but ignoring silently is its own hazard: a bare
// //acic:allow-unreleased reads as if the site were blessed while the
// analyzer still fires — or worse, lingers after the finding it once
// excused is gone. And a typo like //acic:allow-unrelased would neither
// suppress nor be reported anywhere. This analyzer closes both holes at
// the source: unknown directive names and justification-free allows are
// findings in their own right. There is deliberately no escape hatch for
// this analyzer.
package dircheck

import (
	"strings"

	"acic/internal/analysis"
)

// Analyzer is the dircheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "dircheck",
	Doc: "require known //acic: directive names and justified allow-* uses\n\n" +
		"unknown directives are typos that silently suppress nothing; bare\n" +
		"allow-* directives are ignored by the parser and must either gain\n" +
		"a justification or be deleted.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				name, just, ok := analysis.ParseDirective(c.Text)
				if !ok {
					continue
				}
				if !analysis.KnownDirectives[name] {
					pass.Reportf(c.Pos(),
						"unknown acic directive %q: not in the lint vocabulary, so it suppresses nothing (see internal/analysis KnownDirectives)",
						name)
					continue
				}
				if strings.HasPrefix(name, "allow-") && just == "" {
					pass.Reportf(c.Pos(),
						"bare //acic:%s: allow directives are ignored without a justification string — say why the exemption is sound, or delete it",
						name)
				}
			}
		}
	}
	return nil
}
