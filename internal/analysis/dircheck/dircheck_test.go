package dircheck_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"acic/internal/analysis"
	"acic/internal/analysis/analysistest"
	"acic/internal/analysis/dircheck"
)

func TestDirCheck(t *testing.T) {
	analysistest.Run(t, "testdata", dircheck.Analyzer, "dircheck_a")
}

// TestDirCheckBareAllow covers the case a // want fixture cannot express: a
// bare allow directive occupies its whole line, so any same-line want
// marker would read as its justification and un-bare it.
func TestDirCheckBareAllow(t *testing.T) {
	const src = `package p

//acic:allow-goroutine
func spawn() {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: make(map[*ast.Ident]types.Object), Uses: make(map[*ast.Ident]types.Object)}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  dircheck.Analyzer,
		Fset:      fset,
		Files:     []*ast.File{file},
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := dircheck.Analyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.Contains(got[0].Message, "bare //acic:allow-goroutine") {
		t.Fatalf("want one bare-allow diagnostic, got %v", got)
	}
	// And the parser must not honor the bare allow as a suppression.
	d := analysis.NewDirectives(fset, file)
	if d.Allowed("allow-goroutine", file.Decls[0].Pos()) {
		t.Fatal("bare allow-goroutine should not suppress anything")
	}
}
