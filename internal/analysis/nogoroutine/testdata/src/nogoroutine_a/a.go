// Package nogoroutine_a is a nogoroutine fixture.
package nogoroutine_a

func spawn(f func()) {
	go f() // want "raw go statement in runtime-managed package"
}

func spawnLit() {
	go func() {}() // want "raw go statement in runtime-managed package"
}

// blessed is a sanctioned scheduler-internal spawn site.
//
//acic:allow-goroutine fixture: stands in for the PE scheduler loop
func blessed(f func()) {
	go f()
}

func blessedLine(f func()) {
	go f() //acic:allow-goroutine fixture: sanctioned spawn
}

func fine(f func()) {
	f()
}
