// Package nogoroutine forbids raw go statements in runtime-managed
// packages.
//
// All concurrency in the simulated system must flow through the runtime
// scheduler: quiescence detection counts sends, deliveries and idle PEs,
// and a goroutine the runtime does not know about can hold work invisible
// to those counters, making "quiescent" an unsound conclusion. Handler and
// algorithm packages therefore never spawn goroutines; they inject work via
// runtime.Inject or PE.Send. The scheduler's own spawn sites (PE loops, the
// netsim dispatcher, the quiescence monitor) are the sanctioned exceptions,
// each annotated //acic:allow-goroutine.
package nogoroutine

import (
	"go/ast"

	"acic/internal/analysis"
)

// Directive is the escape hatch recognized by this analyzer.
const Directive = "allow-goroutine"

// Packages are the runtime-managed packages under enforcement. The runtime
// and netsim are included: their sanctioned spawn sites carry the allow
// directive, so any new one must be justified explicitly.
var Packages = map[string]bool{
	"acic/internal/runtime":   true,
	"acic/internal/netsim":    true,
	"acic/internal/tram":      true,
	"acic/internal/core":      true,
	"acic/internal/deltastep": true,
	"acic/internal/delta2d":   true,
	"acic/internal/distctrl":  true,
	"acic/internal/kla":       true,
	"acic/internal/cc":        true,
	"acic/internal/pq":        true,
	"acic/internal/histogram": true,
	"acic/internal/collect":   true,
}

// Analyzer is the nogoroutine pass.
var Analyzer = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc: "forbid raw go statements in runtime-managed packages\n\n" +
		"concurrency must flow through the runtime scheduler so quiescence\n" +
		"detection stays sound; annotate //acic:allow-goroutine for scheduler\n" +
		"internals.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Packages[pass.Pkg.Path()] {
		return nil
	}
	dirs := analysis.FileDirectives(pass)
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !dirs.Allowed(Directive, g.Pos()) {
				pass.Reportf(g.Pos(), "raw go statement in runtime-managed package %s: route concurrency through the runtime scheduler (or annotate //acic:allow-goroutine with a justification)", pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
