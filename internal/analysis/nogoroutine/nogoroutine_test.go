package nogoroutine_test

import (
	"testing"

	"acic/internal/analysis/analysistest"
	"acic/internal/analysis/nogoroutine"
)

func TestNoGoroutine(t *testing.T) {
	nogoroutine.Packages["nogoroutine_a"] = true
	defer delete(nogoroutine.Packages, "nogoroutine_a")
	analysistest.Run(t, "testdata", nogoroutine.Analyzer, "nogoroutine_a")
}
