// Package noalloc implements the static zero-allocation gate behind
// `acic-lint -noalloc`.
//
// A function whose doc comment carries //acic:noalloc promises not to
// heap-allocate. Rather than measuring (testing.AllocsPerRun only sees the
// inputs the benchmark happens to feed, and only on the machine running
// it), the gate asks the compiler: it rebuilds the tree with
// -gcflags=-m and fails on any "escapes to heap" / "moved to heap"
// diagnostic inside an annotated function's body. That is a static
// overapproximation — the compiler flags conditional escapes too — which
// is exactly the right polarity for a gate: a hot-path function stays
// clean under every input or says why not.
//
// Individual lines opt out with //acic:allow-alloc <justification>
// (trailing or directly above), for allocations that are intentional and
// amortized — a pool-miss make, a once-per-connection lazy init. Bare
// allow-alloc directives are ignored, same as every other allow (see
// dircheck).
//
// Generic functions compile (and get escape-analyzed) at instantiation,
// so their diagnostics surface while compiling the instantiating package
// but point into the generic source file; the gate therefore matches by
// file position and dedups across compile units.
package noalloc

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"acic/internal/analysis"
	"acic/internal/analysis/load"
	"acic/internal/analysis/multichecker"
)

// span is one //acic:noalloc function body, keyed by absolute file path.
type span struct {
	fn         string
	start, end int
}

// Check loads patterns from dir, collects //acic:noalloc function spans
// and //acic:allow-alloc line exemptions, replays the compiler's escape
// analysis, and reports every escape that lands inside a gated span.
func Check(dir string, patterns []string) ([]multichecker.Finding, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	res, err := load.Load(dir, patterns)
	if err != nil {
		return nil, err
	}

	spans := make(map[string][]span)   // abs file -> gated bodies
	allowed := make(map[string]bool)   // "absfile:line" -> exempt
	gated := 0
	for _, pkg := range res.Packages {
		for _, file := range pkg.Files {
			fname := res.Fset.Position(file.Pos()).Filename
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					name, just, ok := analysis.ParseDirective(c.Text)
					if !ok || name != "allow-alloc" || just == "" {
						continue
					}
					// Same coverage convention as analysis.Directives: the
					// directive excuses its own line (trailing form) and the
					// next (comment-above form).
					line := res.Fset.Position(c.Pos()).Line
					allowed[lineKey(fname, line)] = true
					allowed[lineKey(fname, line+1)] = true
				}
			}
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Doc == nil || fn.Body == nil {
					continue
				}
				for _, c := range fn.Doc.List {
					if name, _, ok := analysis.ParseDirective(c.Text); ok && name == "noalloc" {
						spans[fname] = append(spans[fname], span{
							fn:    funcName(fn),
							start: res.Fset.Position(fn.Pos()).Line,
							end:   res.Fset.Position(fn.Body.End()).Line,
						})
						gated++
						break
					}
				}
			}
		}
	}
	if gated == 0 {
		return nil, nil // nothing promised, nothing to gate
	}

	escapes, err := escapeDiagnostics(absDir, patterns)
	if err != nil {
		return nil, err
	}

	var findings []multichecker.Finding
	seen := make(map[string]bool)
	for _, e := range escapes {
		s, ok := enclosing(spans[e.pos.Filename], e.pos.Line)
		if !ok || allowed[lineKey(e.pos.Filename, e.pos.Line)] {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s", e.pos.Filename, e.pos.Line, e.pos.Column, e.msg)
		if seen[key] {
			continue // same generic body escape-analyzed in several compile units
		}
		seen[key] = true
		findings = append(findings, multichecker.Finding{
			Analyzer: "noalloc",
			Pos:      e.pos,
			Message: fmt.Sprintf("%s in //acic:noalloc function %s — hoist the allocation or bless the line with //acic:allow-alloc <why>",
				e.msg, s.fn),
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

type escape struct {
	pos token.Position
	msg string
}

// escapeDiagnostics rebuilds patterns with -gcflags=-m and keeps the heap
// diagnostics. The go tool caches compiler output, so warm runs replay
// from the build cache instead of recompiling.
func escapeDiagnostics(absDir string, patterns []string) ([]escape, error) {
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = absDir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out // -m diagnostics arrive on stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}
	var escapes []escape
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		pos, msg, ok := splitDiagnostic(line)
		if !ok {
			continue // explanation sub-line from -m=2, or a "# pkg" header
		}
		if !filepath.IsAbs(pos.Filename) {
			pos.Filename = filepath.Join(absDir, pos.Filename)
		}
		pos.Filename = filepath.Clean(pos.Filename)
		escapes = append(escapes, escape{pos: pos, msg: msg})
	}
	return escapes, nil
}

// splitDiagnostic parses "file.go:line:col: message".
func splitDiagnostic(line string) (token.Position, string, bool) {
	line = strings.TrimSpace(line)
	// Find ".go:" to survive both relative and absolute (even windowsy)
	// filename prefixes.
	i := strings.Index(line, ".go:")
	if i < 0 {
		return token.Position{}, "", false
	}
	file := line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return token.Position{}, "", false
	}
	ln, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return token.Position{}, "", false
	}
	return token.Position{Filename: file, Line: ln, Column: col},
		strings.TrimSpace(parts[2]), true
}

func enclosing(spans []span, line int) (span, bool) {
	for _, s := range spans {
		if s.start <= line && line <= s.end {
			return s, true
		}
	}
	return span{}, false
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

func funcName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if n := recvTypeName(fn.Recv.List[0].Type); n != "" {
			return n + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

// recvTypeName extracts the bare type name from a receiver expression:
// *T, T[P], *T[P] all yield "T".
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	}
	return ""
}
