// Package analysistest runs an analyzer against fixture packages under a
// testdata directory and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Layout is the x/tools GOPATH convention: testdata/src/<importpath>/*.go.
// Fixture packages may import each other (list dependencies first) and the
// standard library, which is type-checked from GOROOT source — no build
// cache or network involvement, so fixtures never need to compile as part
// of the module.
//
// Expectations are trailing comments of the form
//
//	code() // want "regexp" "another regexp"
//
// Every diagnostic must match a want on its line, and every want must be
// matched by a diagnostic; mismatches fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"acic/internal/analysis"
)

// Run loads each fixture package in order and applies the analyzer to every
// one of them, checking // want expectations across all fixture files.
//
// Fixture packages share one analysis.Facts store, in listing order: a fact
// exported while analyzing pkgPaths[0] is visible to the pass over
// pkgPaths[1], mirroring the dependency-ordered fact flow of the real
// multichecker driver. Interprocedural analyzers are therefore tested with
// two fixture packages — the dependency exporting facts first, the
// dependent consuming them second.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	checked := make(map[string]*types.Package)
	facts := analysis.NewFacts()
	srcImp := importer.ForCompiler(fset, "source", nil)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return srcImp.Import(path)
	})

	for _, path := range pkgPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		files, err := parseDir(fset, dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", path, err)
		}
		checked[path] = tpkg

		var got []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Facts:     facts,
			Report:    func(d analysis.Diagnostic) { got = append(got, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: running analyzer on %s: %v", a.Name, path, err)
		}
		checkExpectations(t, fset, files, got)
	}
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return files, nil
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, got []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, raw, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted extracts the double-quoted segments of a want comment tail.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start+1:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return out
		}
		out = append(out, s[start:start+1+end+1])
		s = rest[end+1:]
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
