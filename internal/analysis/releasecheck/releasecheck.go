// Package releasecheck enforces tram pool discipline: every function that
// receives an unpacked tram batch slice must release it back to the manager
// on every path before returning.
//
// The tram manager recycles the backing arrays of flushed batches through a
// sync.Pool (tram.Manager.Release). A receiver that unpacks a batch and
// forgets the Release leaks that capacity: the pool drains, every new
// buffer allocates from scratch, and the steady-state zero-allocation
// property of the messaging hot path silently disappears. The leak is
// invisible to tests (nothing breaks — it is only slower), which is exactly
// what a static check is for.
//
// Detection is type-driven, in three steps per package:
//
//  1. Carrier fields. A struct field assigned from a tram Batch's Items
//     (e.g. batchMsg{items: batch.Items}) marks that field as carrying a
//     pooled array across the runtime. Carrier fields are exported as facts
//     ("carrier:pkgpath.Type.field"), so a dependent package reading the
//     field through the import graph inherits the obligation.
//  2. Batch values. Reading a carrier field produces a batch value; passing
//     one to a same-package function marks the receiving parameter as a
//     batch value too (iterated to a fixed point), which is how the
//     conventional Deliver -> receiveBatch(pe, m.items) hand-off is
//     followed.
//  3. Obligation check. For each function holding a batch value, every
//     control-flow path to a return must discharge the obligation (the
//     shared ownership.Checker): call Manager.Release with the value, hand
//     the value wholesale to another function (ownership transfer — e.g.
//     re-sending it), store it, or return it. A path that can fall off the
//     end or return without any of those is reported.
//
// Cross-package hand-offs consult the ownership sink summaries: passing a
// batch to an imported function whose parameter is known (from its own
// package's pass) to be dropped on some path does NOT discharge the
// obligation, so the leak is reported at the caller — the interprocedural
// upgrade over the original transfer-always-discharges rule.
//
// Per-element reads (ranging, indexing, len/cap) do not discharge: they are
// precisely the "unpack" whose completion must be followed by Release.
// //acic:allow-unreleased suppresses a finding (e.g. a deliberate
// keep-alive), with a justification comment.
package releasecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"acic/internal/analysis"
	"acic/internal/analysis/ownership"
)

// Directive is the escape hatch recognized by this analyzer.
const Directive = "allow-unreleased"

// carrierPrefix keys the exported carrier-field facts.
const carrierPrefix = "carrier:"

// Analyzer is the releasecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "releasecheck",
	Doc: "require tram batches to be released on every path\n\n" +
		"a receiver that unpacks a tram batch must return its backing array\n" +
		"to the pool (Manager.Release) or hand it on; leaks silently disable\n" +
		"buffer recycling. follows batches across package boundaries via\n" +
		"carrier-field and sink-parameter facts.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Summarize this package's slice parameters for dependents (and for our
	// own cross-package transfer rule) regardless of whether any batches
	// are handled locally.
	ownership.ExportSinkFacts(pass)

	carriers := findCarrierFields(pass)
	exportCarrierFacts(pass, carriers)
	imported := pass.Facts.WithPrefix(pass.Analyzer.Name, carrierPrefix)
	if len(carriers) == 0 && len(imported) == 0 {
		return nil
	}
	decls := funcDecls(pass)
	params := markBatchParams(pass, carriers, decls)
	dirs := analysis.FileDirectives(pass)

	for fn, idxs := range params {
		decl := decls[fn]
		for _, idx := range idxs {
			obj := ownership.ParamObj(pass, decl, idx)
			if obj == nil {
				continue
			}
			c := &checker{pass: pass, dirs: dirs, decls: decls, fn: decl, v: obj}
			c.check()
		}
	}
	// Functions that consume a carrier-field read in place (range/index on
	// m.items directly) rather than passing it on.
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			for _, sel := range inPlaceConsumed(pass, decl, carriers) {
				c := &checker{pass: pass, dirs: dirs, decls: decls, fn: decl, sel: sel}
				c.check()
			}
		}
	}
	return nil
}

// tramPackage reports whether path is the tram package (or a fixture
// standing in for it).
func tramPackage(path string) bool {
	return path == "tram" || strings.HasSuffix(path, "/tram")
}

// isBatchItems reports whether sel reads the Items field of a tram Batch.
func isBatchItems(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Items" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Batch" || n.Obj().Pkg() == nil {
		return false
	}
	return tramPackage(n.Obj().Pkg().Path())
}

// findCarrierFields returns the struct fields assigned from a Batch.Items
// expression anywhere in the package, mapped to the named type carrying
// them (nil when the literal's type is anonymous).
func findCarrierFields(pass *analysis.Pass) map[*types.Var]*types.Named {
	carriers := make(map[*types.Var]*types.Named)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CompositeLit:
				tv, ok := pass.TypesInfo.Types[node]
				if !ok {
					return true
				}
				st, ok := tv.Type.Underlying().(*types.Struct)
				if !ok {
					return true
				}
				named := analysis.NamedOf(tv.Type)
				for i, elt := range node.Elts {
					var value ast.Expr
					var field *types.Var
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						value = kv.Value
						if id, ok := kv.Key.(*ast.Ident); ok {
							field, _ = pass.TypesInfo.Uses[id].(*types.Var)
						}
					} else {
						value = elt
						if i < st.NumFields() {
							field = st.Field(i)
						}
					}
					if field == nil {
						continue
					}
					if sel, ok := ast.Unparen(value).(*ast.SelectorExpr); ok && isBatchItems(pass, sel) {
						carriers[field] = named
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range node.Lhs {
					if i >= len(node.Rhs) {
						break
					}
					rhs, ok := ast.Unparen(node.Rhs[i]).(*ast.SelectorExpr)
					if !ok || !isBatchItems(pass, rhs) {
						continue
					}
					lsel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if f, ok := pass.TypesInfo.Uses[lsel.Sel].(*types.Var); ok && f.IsField() {
						var named *types.Named
						if tv, ok := pass.TypesInfo.Types[lsel.X]; ok {
							named = analysis.NamedOf(tv.Type)
						}
						carriers[f] = named
					}
				}
			}
			return true
		})
	}
	return carriers
}

// exportCarrierFacts publishes this package's carrier fields so dependent
// packages reading them through the import graph inherit the obligation.
func exportCarrierFacts(pass *analysis.Pass, carriers map[*types.Var]*types.Named) {
	for f, named := range carriers {
		if named == nil {
			continue
		}
		pass.ExportFact(carrierPrefix+analysis.FieldKey(named, f.Name()), "")
	}
}

// funcDecls indexes this package's function declarations by their object.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	return decls
}

// isCarrierRead reports whether e reads a carrier field — one found in this
// package or one imported as a fact from a dependency.
func isCarrierRead(pass *analysis.Pass, carriers map[*types.Var]*types.Named, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !f.IsField() {
		return false
	}
	if _, local := carriers[f]; local {
		return true
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	named := analysis.NamedOf(tv.Type)
	if named == nil {
		return false
	}
	return pass.HasFact(carrierPrefix + analysis.FieldKey(named, f.Name()))
}

// markBatchParams finds, to a fixed point, parameters of same-package
// functions that receive a batch value: either a carrier-field read or an
// already-marked parameter passed wholesale.
func markBatchParams(pass *analysis.Pass, carriers map[*types.Var]*types.Named, decls map[*types.Func]*ast.FuncDecl) map[*types.Func][]int {
	marked := make(map[*types.Func]map[int]bool)
	markedVars := make(map[*types.Var]bool)
	for {
		changed := false
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := ownership.CalleeFunc(pass, call)
				if fn == nil {
					return true
				}
				decl, ok := decls[fn]
				if !ok || decl.Body == nil {
					return true
				}
				for i, arg := range call.Args {
					isBatch := isCarrierRead(pass, carriers, arg)
					if !isBatch {
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
							if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && markedVars[v] {
								isBatch = true
							}
						}
					}
					if !isBatch {
						continue
					}
					if marked[fn] == nil {
						marked[fn] = make(map[int]bool)
					}
					if !marked[fn][i] {
						marked[fn][i] = true
						changed = true
						if obj := ownership.ParamObj(pass, decl, i); obj != nil {
							markedVars[obj] = true
						}
					}
				}
				return true
			})
		}
		if !changed {
			break
		}
	}
	out := make(map[*types.Func][]int)
	for fn, idxs := range marked {
		for i := range idxs {
			out[fn] = append(out[fn], i)
		}
	}
	return out
}

// inPlaceConsumed returns the carrier-field reads that decl unpacks
// directly (range or index base) without going through a parameter.
func inPlaceConsumed(pass *analysis.Pass, decl *ast.FuncDecl, carriers map[*types.Var]*types.Named) []*ast.SelectorExpr {
	seen := make(map[string]bool)
	var out []*ast.SelectorExpr
	add := func(e ast.Expr) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || !isCarrierRead(pass, carriers, sel) {
			return
		}
		key := types.ExprString(sel)
		if !seen[key] {
			seen[key] = true
			out = append(out, sel)
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.RangeStmt:
			add(node.X)
		case *ast.IndexExpr:
			add(node.X)
		}
		return true
	})
	return out
}

// checker verifies one obligation: batch value v (a parameter) or sel (a
// carrier-field selector) must be discharged on every path through fn. The
// path walking itself is the shared ownership.Checker; this wrapper owns
// the batch-specific match rule, scope narrowing, and reporting.
type checker struct {
	pass  *analysis.Pass
	dirs  *analysis.PkgDirectives
	decls map[*types.Func]*ast.FuncDecl
	fn    *ast.FuncDecl
	v     *types.Var        // parameter form, or
	sel   *ast.SelectorExpr // selector form (canonical spelling)
	root  *types.Var        // selector form: the base variable of sel
}

func (c *checker) name() string {
	if c.v != nil {
		return c.v.Name()
	}
	return types.ExprString(c.sel)
}

func (c *checker) check() {
	list := c.fn.Body.List
	end := c.fn.Body.Rbrace
	if c.sel != nil {
		c.root = rootVar(c.pass, c.sel)
		// A batch read through a function-local variable (e.g. the implicit
		// var of a type-switch case) only exists within that variable's
		// scope: check the obligation there, not across paths that never
		// saw a batch.
		if c.root != nil && c.root.Parent() != nil && c.fn.Body.Pos() <= c.root.Pos() && c.root.Pos() < c.fn.Body.End() {
			if l, e := scopeStmts(c.fn.Body, c.root.Parent()); l != nil {
				list, end = l, e
			}
		}
	}
	oc := &ownership.Checker{
		Pass:               c.pass,
		Matches:            c.matches,
		TransferDischarges: c.transferDischarges,
		OnLeak:             c.report,
	}
	oc.Check(list, end)
}

// transferDischarges decides whether handing the batch to a call moves the
// obligation on. Same-package callees always accept it — their parameter is
// marked by markBatchParams and checked in its own right, so the leak (if
// any) is reported at the precise spot inside the callee. Cross-package
// callees are judged by their exported sink summaries: a known non-sink
// parameter bounces the obligation back to this caller.
func (c *checker) transferDischarges(call *ast.CallExpr, i int) bool {
	if fn := ownership.CalleeFunc(c.pass, call); fn != nil {
		if decl, ok := c.decls[fn]; ok && decl.Body != nil {
			return true
		}
	}
	return ownership.TransferDischarges(c.pass, call, i)
}

// rootVar unwraps a selector chain to its base identifier's variable.
func rootVar(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	e := ast.Unparen(sel.X)
	for {
		if s, ok := e.(*ast.SelectorExpr); ok {
			e = ast.Unparen(s.X)
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// scopeStmts finds the smallest statement list in body that spans scope,
// returning it and the position of its end.
func scopeStmts(body *ast.BlockStmt, scope *types.Scope) ([]ast.Stmt, token.Pos) {
	var list []ast.Stmt
	var end token.Pos
	bestSpan := token.Pos(-1)
	consider := func(n ast.Node, stmts []ast.Stmt, e token.Pos) {
		if n.Pos() <= scope.Pos() && scope.End() <= n.End() {
			span := n.End() - n.Pos()
			if bestSpan < 0 || span < bestSpan {
				bestSpan, list, end = span, stmts, e
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BlockStmt:
			consider(node, node.List, node.Rbrace)
		case *ast.CaseClause:
			consider(node, node.Body, node.End())
		case *ast.CommClause:
			consider(node, node.Body, node.End())
		}
		return true
	})
	return list, end
}

func (c *checker) report(pos token.Pos) {
	if c.dirs.Allowed(Directive, pos) || c.dirs.Allowed(Directive, c.fn.Pos()) {
		return
	}
	c.pass.Reportf(pos,
		"tram batch %q may not be released on this path: call Manager.Release after unpacking (or hand the batch on), or annotate //acic:allow-unreleased",
		c.name())
}

// matches reports whether e denotes the tracked batch value.
func (c *checker) matches(e ast.Expr) bool {
	e = ast.Unparen(e)
	if c.v != nil {
		id, ok := e.(*ast.Ident)
		return ok && c.pass.TypesInfo.Uses[id] == c.v
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if types.ExprString(sel) != types.ExprString(c.sel) ||
		c.pass.TypesInfo.Uses[sel.Sel] != c.pass.TypesInfo.Uses[c.sel.Sel] {
		return false
	}
	// Same spelling in a different scope (e.g. the case var of another
	// type-switch clause) is a different value.
	if c.root != nil {
		return rootVar(c.pass, sel) == c.root
	}
	return true
}
