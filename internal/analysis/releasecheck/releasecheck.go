// Package releasecheck enforces tram pool discipline: every function that
// receives an unpacked tram batch slice must release it back to the manager
// on every path before returning.
//
// The tram manager recycles the backing arrays of flushed batches through a
// sync.Pool (tram.Manager.Release). A receiver that unpacks a batch and
// forgets the Release leaks that capacity: the pool drains, every new
// buffer allocates from scratch, and the steady-state zero-allocation
// property of the messaging hot path silently disappears. The leak is
// invisible to tests (nothing breaks — it is only slower), which is exactly
// what a static check is for.
//
// Detection is type-driven, in three steps per package:
//
//  1. Carrier fields. A struct field assigned from a tram Batch's Items
//     (e.g. batchMsg{items: batch.Items}) marks that field as carrying a
//     pooled array across the runtime.
//  2. Batch values. Reading a carrier field produces a batch value; passing
//     one to a same-package function marks the receiving parameter as a
//     batch value too (iterated to a fixed point), which is how the
//     conventional Deliver -> receiveBatch(pe, m.items) hand-off is
//     followed.
//  3. Obligation check. For each function holding a batch value, every
//     control-flow path to a return must discharge the obligation: call
//     Manager.Release with the value, hand the value wholesale to another
//     function (ownership transfer — e.g. re-sending it), store it, or
//     return it. A path that can fall off the end or return without any of
//     those is reported.
//
// Per-element reads (ranging, indexing, len/cap) do not discharge: they are
// precisely the "unpack" whose completion must be followed by Release.
// //acic:allow-unreleased suppresses a finding (e.g. a deliberate
// keep-alive), with a justification comment.
package releasecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"acic/internal/analysis"
)

// Directive is the escape hatch recognized by this analyzer.
const Directive = "allow-unreleased"

// Analyzer is the releasecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "releasecheck",
	Doc: "require tram batches to be released on every path\n\n" +
		"a receiver that unpacks a tram batch must return its backing array\n" +
		"to the pool (Manager.Release) or hand it on; leaks silently disable\n" +
		"buffer recycling.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	carriers := findCarrierFields(pass)
	if len(carriers) == 0 {
		return nil
	}
	decls := funcDecls(pass)
	params := markBatchParams(pass, carriers, decls)
	dirs := analysis.FileDirectives(pass)

	for fn, idxs := range params {
		decl := decls[fn]
		for _, idx := range idxs {
			obj := paramObj(pass, decl, idx)
			if obj == nil {
				continue
			}
			c := &checker{pass: pass, dirs: dirs, fn: decl, v: obj}
			c.check()
		}
	}
	// Functions that consume a carrier-field read in place (range/index on
	// m.items directly) rather than passing it on.
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			for _, sel := range inPlaceConsumed(pass, decl, carriers) {
				c := &checker{pass: pass, dirs: dirs, fn: decl, sel: sel}
				c.check()
			}
		}
	}
	return nil
}

// tramPackage reports whether path is the tram package (or a fixture
// standing in for it).
func tramPackage(path string) bool {
	return path == "tram" || strings.HasSuffix(path, "/tram")
}

// isBatchItems reports whether sel reads the Items field of a tram Batch.
func isBatchItems(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Items" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Batch" || n.Obj().Pkg() == nil {
		return false
	}
	return tramPackage(n.Obj().Pkg().Path())
}

// findCarrierFields returns the struct fields assigned from a Batch.Items
// expression anywhere in the package.
func findCarrierFields(pass *analysis.Pass) map[*types.Var]bool {
	carriers := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CompositeLit:
				st, ok := structOf(pass, node)
				if !ok {
					return true
				}
				for i, elt := range node.Elts {
					var value ast.Expr
					var field *types.Var
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						value = kv.Value
						if id, ok := kv.Key.(*ast.Ident); ok {
							field, _ = pass.TypesInfo.Uses[id].(*types.Var)
						}
					} else {
						value = elt
						if i < st.NumFields() {
							field = st.Field(i)
						}
					}
					if field == nil {
						continue
					}
					if sel, ok := ast.Unparen(value).(*ast.SelectorExpr); ok && isBatchItems(pass, sel) {
						carriers[field] = true
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range node.Lhs {
					if i >= len(node.Rhs) {
						break
					}
					rhs, ok := ast.Unparen(node.Rhs[i]).(*ast.SelectorExpr)
					if !ok || !isBatchItems(pass, rhs) {
						continue
					}
					lsel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if f, ok := pass.TypesInfo.Uses[lsel.Sel].(*types.Var); ok && f.IsField() {
						carriers[f] = true
					}
				}
			}
			return true
		})
	}
	return carriers
}

func structOf(pass *analysis.Pass, lit *ast.CompositeLit) (*types.Struct, bool) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return nil, false
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	return st, ok
}

// funcDecls indexes this package's function declarations by their object.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	return decls
}

// isCarrierRead reports whether e reads a carrier field.
func isCarrierRead(pass *analysis.Pass, carriers map[*types.Var]bool, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	return ok && carriers[f]
}

// markBatchParams finds, to a fixed point, parameters of same-package
// functions that receive a batch value: either a carrier-field read or an
// already-marked parameter passed wholesale.
func markBatchParams(pass *analysis.Pass, carriers map[*types.Var]bool, decls map[*types.Func]*ast.FuncDecl) map[*types.Func][]int {
	marked := make(map[*types.Func]map[int]bool)
	markedVars := make(map[*types.Var]bool)
	for {
		changed := false
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass, call)
				if fn == nil {
					return true
				}
				decl, ok := decls[fn]
				if !ok || decl.Body == nil {
					return true
				}
				for i, arg := range call.Args {
					isBatch := isCarrierRead(pass, carriers, arg)
					if !isBatch {
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
							if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && markedVars[v] {
								isBatch = true
							}
						}
					}
					if !isBatch {
						continue
					}
					if marked[fn] == nil {
						marked[fn] = make(map[int]bool)
					}
					if !marked[fn][i] {
						marked[fn][i] = true
						changed = true
						if obj := paramObj(pass, decl, i); obj != nil {
							markedVars[obj] = true
						}
					}
				}
				return true
			})
		}
		if !changed {
			break
		}
	}
	out := make(map[*types.Func][]int)
	for fn, idxs := range marked {
		for i := range idxs {
			out[fn] = append(out[fn], i)
		}
	}
	return out
}

// paramObj resolves parameter index i of decl to its variable, skipping
// variadic and out-of-range indices.
func paramObj(pass *analysis.Pass, decl *ast.FuncDecl, i int) *types.Var {
	n := 0
	for _, field := range decl.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			n++ // unnamed parameter occupies a slot
			continue
		}
		for _, name := range names {
			if n == i {
				v, _ := pass.TypesInfo.Defs[name].(*types.Var)
				return v
			}
			n++
		}
	}
	return nil
}

// inPlaceConsumed returns the carrier-field reads that decl unpacks
// directly (range or index base) without going through a parameter.
func inPlaceConsumed(pass *analysis.Pass, decl *ast.FuncDecl, carriers map[*types.Var]bool) []*ast.SelectorExpr {
	seen := make(map[string]bool)
	var out []*ast.SelectorExpr
	add := func(e ast.Expr) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || !isCarrierRead(pass, carriers, sel) {
			return
		}
		key := types.ExprString(sel)
		if !seen[key] {
			seen[key] = true
			out = append(out, sel)
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.RangeStmt:
			add(node.X)
		case *ast.IndexExpr:
			add(node.X)
		}
		return true
	})
	return out
}

// checker verifies one obligation: batch value v (a parameter) or sel (a
// carrier-field selector) must be discharged on every path through fn.
type checker struct {
	pass *analysis.Pass
	dirs *analysis.PkgDirectives
	fn   *ast.FuncDecl
	v    *types.Var        // parameter form, or
	sel  *ast.SelectorExpr // selector form (canonical spelling)
	root *types.Var        // selector form: the base variable of sel
}

func (c *checker) name() string {
	if c.v != nil {
		return c.v.Name()
	}
	return types.ExprString(c.sel)
}

func (c *checker) check() {
	list := c.fn.Body.List
	end := c.fn.Body.Rbrace
	if c.sel != nil {
		c.root = rootVar(c.pass, c.sel)
		// A batch read through a function-local variable (e.g. the implicit
		// var of a type-switch case) only exists within that variable's
		// scope: check the obligation there, not across paths that never
		// saw a batch.
		if c.root != nil && c.root.Parent() != nil && c.fn.Body.Pos() <= c.root.Pos() && c.root.Pos() < c.fn.Body.End() {
			if l, e := scopeStmts(c.fn.Body, c.root.Parent()); l != nil {
				list, end = l, e
			}
		}
	}
	done, terminated := c.walk(list, false)
	if !done && !terminated {
		c.report(end)
	}
}

// rootVar unwraps a selector chain to its base identifier's variable.
func rootVar(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	e := ast.Unparen(sel.X)
	for {
		if s, ok := e.(*ast.SelectorExpr); ok {
			e = ast.Unparen(s.X)
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// scopeStmts finds the smallest statement list in body that spans scope,
// returning it and the position of its end.
func scopeStmts(body *ast.BlockStmt, scope *types.Scope) ([]ast.Stmt, token.Pos) {
	var list []ast.Stmt
	var end token.Pos
	bestSpan := token.Pos(-1)
	consider := func(n ast.Node, stmts []ast.Stmt, e token.Pos) {
		if n.Pos() <= scope.Pos() && scope.End() <= n.End() {
			span := n.End() - n.Pos()
			if bestSpan < 0 || span < bestSpan {
				bestSpan, list, end = span, stmts, e
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BlockStmt:
			consider(node, node.List, node.Rbrace)
		case *ast.CaseClause:
			consider(node, node.Body, node.End())
		case *ast.CommClause:
			consider(node, node.Body, node.End())
		}
		return true
	})
	return list, end
}

func (c *checker) report(pos token.Pos) {
	if c.dirs.Allowed(Directive, pos) || c.dirs.Allowed(Directive, c.fn.Pos()) {
		return
	}
	c.pass.Reportf(pos,
		"tram batch %q may not be released on this path: call Manager.Release after unpacking (or hand the batch on), or annotate //acic:allow-unreleased",
		c.name())
}

// matches reports whether e denotes the tracked batch value.
func (c *checker) matches(e ast.Expr) bool {
	e = ast.Unparen(e)
	if c.v != nil {
		id, ok := e.(*ast.Ident)
		return ok && c.pass.TypesInfo.Uses[id] == c.v
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if types.ExprString(sel) != types.ExprString(c.sel) ||
		c.pass.TypesInfo.Uses[sel.Sel] != c.pass.TypesInfo.Uses[c.sel.Sel] {
		return false
	}
	// Same spelling in a different scope (e.g. the case var of another
	// type-switch clause) is a different value.
	if c.root != nil {
		return rootVar(c.pass, sel) == c.root
	}
	return true
}

// dischargesExpr reports whether expression e contains a discharge of the
// obligation: a Release call, an ownership-transferring call argument, a
// store into a composite literal, or a send.
func (c *checker) dischargesExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.FuncLit:
			return false // closures run later; not a discharge here
		case *ast.CallExpr:
			if c.callDischarges(node) {
				found = true
				return false
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if c.matches(v) {
					found = true // stored: ownership moved into the literal
					return false
				}
			}
		}
		return true
	})
	return found
}

// callDischarges reports whether one call discharges the obligation.
func (c *checker) callDischarges(call *ast.CallExpr) bool {
	// Builtins (len, cap, append, ...) only observe the value or copy its
	// elements; they do not take ownership.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return false
		}
	}
	for _, arg := range call.Args {
		if c.matches(arg) {
			return true // Release, forwarding, or any wholesale hand-off
		}
	}
	return false
}

// walk processes a statement list. done is whether the obligation is
// already discharged on entry. It returns the discharge state at the end of
// the list and whether every path through the list terminates (returns).
func (c *checker) walk(list []ast.Stmt, done bool) (bool, bool) {
	for _, s := range list {
		var term bool
		done, term = c.stmt(s, done)
		if term {
			return done, true
		}
	}
	return done, false
}

func (c *checker) stmt(s ast.Stmt, done bool) (bool, bool) {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			if c.matches(r) || c.dischargesExpr(r) {
				done = true
			}
		}
		if !done {
			c.report(st.Pos())
		}
		return true, true
	case *ast.DeferStmt:
		// defer tm.Release(v) (or a closure doing so) covers every return
		// after this point.
		if c.callDischarges(st.Call) {
			return true, false
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			litDone, _ := c.walk(lit.Body.List, false)
			if litDone {
				return true, false
			}
		}
		return done, false
	case *ast.BlockStmt:
		return c.walk(st.List, done)
	case *ast.IfStmt:
		if st.Init != nil {
			done, _ = c.stmt(st.Init, done)
		}
		if c.dischargesExpr(st.Cond) {
			done = true
		}
		tDone, tTerm := c.walk(st.Body.List, done)
		eDone, eTerm := done, false
		if st.Else != nil {
			eDone, eTerm = c.stmt(st.Else, done)
		}
		switch {
		case tTerm && eTerm:
			return done, true
		case tTerm:
			return eDone, false
		case eTerm:
			return tDone, false
		default:
			return tDone && eDone, false
		}
	case *ast.ForStmt, *ast.RangeStmt:
		var body *ast.BlockStmt
		if f, ok := st.(*ast.ForStmt); ok {
			body = f.Body
		} else {
			body = st.(*ast.RangeStmt).Body
		}
		// The body may execute zero times: discharges inside do not
		// propagate past the loop, but missing discharges at returns inside
		// are still checked.
		c.walk(body.List, done)
		return done, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := st.(*ast.SwitchStmt); ok {
			body = sw.Body
		} else {
			body = st.(*ast.TypeSwitchStmt).Body
		}
		allDone, allTerm, hasDefault := true, true, false
		for _, cl := range body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			d, t := c.walk(cc.Body, done)
			if !t {
				allTerm = false
				allDone = allDone && d
			}
		}
		if !hasDefault {
			allTerm = false
			allDone = allDone && done
		}
		if allTerm && hasDefault {
			return done, true
		}
		return allDone, false
	case *ast.SelectStmt:
		allDone, allTerm := true, true
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			d, t := c.walk(cc.Body, done)
			if !t {
				allTerm = false
				allDone = allDone && d
			}
		}
		if allTerm {
			return done, true
		}
		return allDone, false
	case *ast.LabeledStmt:
		return c.stmt(st.Stmt, done)
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; treat the path as
		// ended here (any later return is checked at its own level).
		return done, true
	case *ast.ExprStmt:
		if c.dischargesExpr(st.X) {
			return true, false
		}
		return done, false
	case *ast.AssignStmt:
		for i, r := range st.Rhs {
			if c.dischargesExpr(r) {
				return true, false
			}
			if c.matches(r) && !(i < len(st.Lhs) && isBlank(st.Lhs[i])) {
				return true, false // stored or re-bound: ownership moved
			}
		}
		return done, false
	case *ast.SendStmt:
		if c.matches(st.Value) || c.dischargesExpr(st.Value) {
			return true, false
		}
		return done, false
	case *ast.GoStmt:
		if c.callDischarges(st.Call) {
			return true, false
		}
		return done, false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && c.dischargesExpr(e) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true, false
		}
		return done, false
	}
	return done, false
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
