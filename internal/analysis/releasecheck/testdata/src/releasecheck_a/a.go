// Package releasecheck_a is a releasecheck fixture: batch receivers that
// leak on some path are flagged; receivers that release, forward, or defer
// the release are clean.
package releasecheck_a

import "tram"

type update struct{ v int }

// batchMsg is the conventional carrier: its items field is assigned from
// Batch.Items at the send sites below, which is what marks it.
type batchMsg struct{ items []update }

type sender interface {
	Send(dst int, msg any, size int)
}

type state struct {
	tm *tram.Manager[update]
	pe sender
}

// produce marks batchMsg.items as a carrier field.
func (st *state) produce(b *tram.Batch[update]) {
	st.pe.Send(b.DestPE, batchMsg{items: b.Items}, len(b.Items))
}

func (st *state) deliverGood(msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveGood(m.items)
	}
}

func (st *state) receiveGood(items []update) {
	for range items {
	}
	st.tm.Release(items)
}

func (st *state) deliverBad(msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveBad(m.items)
	}
}

// receiveBad unpacks the batch but never releases it.
func (st *state) receiveBad(items []update) {
	total := 0
	for _, u := range items {
		total += u.v
	}
	_ = total
} // want "tram batch \"items\" may not be released on this path"

func (st *state) deliverEarly(msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveEarlyReturn(m.items)
	}
}

// receiveEarlyReturn leaks only on the early-return path.
func (st *state) receiveEarlyReturn(items []update) {
	if len(items) == 0 {
		return // want "tram batch \"items\" may not be released on this path"
	}
	st.tm.Release(items)
}

func (st *state) deliverDefer(msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveDefer(m.items)
	}
}

func (st *state) receiveDefer(items []update) {
	defer st.tm.Release(items)
	for range items {
	}
}

func (st *state) deliverForward(msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveForward(m.items)
	}
}

// receiveForward hands the whole batch on: ownership transfers with it.
func (st *state) receiveForward(items []update) {
	st.pe.Send(1, batchMsg{items: items}, len(items))
}

// deliverInline unpacks the carrier field in place without releasing; the
// leak is reported at the end of the case var's scope.
func (st *state) deliverInline(msg any) {
	switch m := msg.(type) {
	case batchMsg:
		for range m.items {
		} // want "tram batch \"m.items\" may not be released on this path"
	}
}

// deliverInlineGood unpacks in place and releases.
func (st *state) deliverInlineGood(msg any) {
	switch m := msg.(type) {
	case batchMsg:
		for range m.items {
		}
		st.tm.Release(m.items)
	}
}

// receiveBlessed is a deliberate keep-alive, exempted by directive.
//
//acic:allow-unreleased fixture: batch is retained for replay
func (st *state) receiveBlessed(items []update) {
	for range items {
	}
}

func (st *state) deliverBlessed(msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveBlessed(m.items)
	}
}
