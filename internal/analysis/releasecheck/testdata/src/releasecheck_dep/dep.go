// Package releasecheck_dep is the dependency half of the cross-package
// releasecheck fixture: it defines an exported carrier struct (exported as
// a "carrier:" fact) plus one sink and one non-sink helper whose ownership
// summaries the dependent package consumes.
package releasecheck_dep

import "tram"

type Update struct{ V int }

// Msg is the exported carrier: Items is assigned from Batch.Items in Pack,
// which marks it and exports the fact for dependents.
type Msg struct{ Items []Update }

type sender interface {
	Send(dst int, msg any)
}

// Pack marks Msg.Items as a carrier field.
func Pack(pe sender, b *tram.Batch[Update]) {
	pe.Send(b.DestPE, Msg{Items: b.Items})
}

// Discard iterates without releasing: summarized as a non-sink, so callers
// handing it a batch keep the release obligation.
func Discard(items []Update) {
	for range items {
	}
}

var stash []Update

// Stash retains the slice in package state: ownership moves, a sink.
func Stash(items []Update) {
	stash = items
}
