// Package releasecheck_x is the dependent half of the cross-package
// releasecheck fixture: it never touches tram.Batch directly, yet inherits
// obligations through releasecheck_dep's exported carrier fact, and the
// sink summaries decide whether handing a batch to an imported helper
// discharges them.
package releasecheck_x

import (
	"releasecheck_dep"
	"tram"
)

type state struct {
	tm *tram.Manager[releasecheck_dep.Update]
}

func (st *state) deliverDiscard(msg any) {
	switch m := msg.(type) {
	case releasecheck_dep.Msg:
		st.viaDiscard(m.Items)
	}
}

// viaDiscard hands the batch to a known non-sink: the obligation bounces
// back to this caller, which then leaks it.
func (st *state) viaDiscard(items []releasecheck_dep.Update) {
	releasecheck_dep.Discard(items)
} // want "tram batch \"items\" may not be released on this path"

func (st *state) deliverStash(msg any) {
	switch m := msg.(type) {
	case releasecheck_dep.Msg:
		st.viaStash(m.Items)
	}
}

// viaStash hands the batch to a known sink: ownership transfers, clean.
func (st *state) viaStash(items []releasecheck_dep.Update) {
	releasecheck_dep.Stash(items)
}

// deliverInline unpacks the imported carrier field in place and leaks it;
// the carrier is only known here through the imported fact.
func (st *state) deliverInline(msg any) {
	switch m := msg.(type) {
	case releasecheck_dep.Msg:
		for range m.Items {
		} // want "tram batch \"m.Items\" may not be released on this path"
	}
}

// deliverRelease unpacks in place and releases: clean.
func (st *state) deliverRelease(msg any) {
	switch m := msg.(type) {
	case releasecheck_dep.Msg:
		for range m.Items {
		}
		st.tm.Release(m.Items)
	}
}
