// Package tram is a releasecheck fixture standing in for the real
// aggregation manager: the analyzer matches Batch/Manager by (package last
// element, type name).
package tram

// Batch mimics a flushed buffer.
type Batch[T any] struct {
	SrcPE  int
	DestPE int
	Items  []T
}

// Manager mimics the buffering policy with its pool.
type Manager[T any] struct{}

// Release mimics returning a batch's backing array to the pool.
func (m *Manager[T]) Release(items []T) {}
