package releasecheck_test

import (
	"testing"

	"acic/internal/analysis/analysistest"
	"acic/internal/analysis/releasecheck"
)

func TestReleaseCheck(t *testing.T) {
	analysistest.Run(t, "testdata", releasecheck.Analyzer, "tram", "releasecheck_a")
}

// TestReleaseCheckCrossPackage exercises the interprocedural half: carrier
// facts exported by releasecheck_dep and sink summaries consumed by
// releasecheck_x.
func TestReleaseCheckCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", releasecheck.Analyzer, "tram", "releasecheck_dep", "releasecheck_x")
}
