package releasecheck_test

import (
	"testing"

	"acic/internal/analysis/analysistest"
	"acic/internal/analysis/releasecheck"
)

func TestReleaseCheck(t *testing.T) {
	analysistest.Run(t, "testdata", releasecheck.Analyzer, "tram", "releasecheck_a")
}
