// Package detrand forbids wall-clock and global-rand nondeterminism inside
// the deterministic-simulation packages.
//
// The paper's quiescence detection — and every EXPERIMENTS.md reproduction —
// assumes a run can be replayed: the same graph, parameters and seed must
// produce the same message interleavings up to scheduler freedom, the
// property Blanco et al. rely on to reason about delay models. Randomness
// must therefore flow through internal/xrand (seeded, splittable) and time
// must come from an injected clock (internal/simclock), never from the
// process environment. This analyzer reports
//
//   - calls to time.Now, time.Since and time.Sleep, and
//   - imports of math/rand and math/rand/v2
//
// in the listed packages. Test files are exempt. Code that genuinely needs
// the wall clock — the real-time fabric boundary in netsim, measurement
// loops in bench — carries an //acic:allow-wallclock directive with a
// justification (see DESIGN.md "Codebase invariants").
package detrand

import (
	"go/ast"
	"go/types"
	"strconv"

	"acic/internal/analysis"
)

// Directive is the escape hatch recognized by this analyzer.
const Directive = "allow-wallclock"

// Packages are the deterministic-simulation packages under enforcement.
// Tests may add fixture paths.
var Packages = map[string]bool{
	"acic/internal/arena":     true,
	"acic/internal/runtime":   true,
	"acic/internal/netsim":    true,
	"acic/internal/relnet":    true,
	"acic/internal/tram":      true,
	"acic/internal/core":      true,
	"acic/internal/deltastep": true,
	"acic/internal/delta2d":   true,
	"acic/internal/distctrl":  true,
	"acic/internal/kla":       true,
	"acic/internal/cc":        true,
	"acic/internal/pq":        true,
	"acic/internal/histogram": true,
	"acic/internal/collect":   true,
	"acic/internal/bench":     true,
	"acic/internal/stress":    true,
	"acic/internal/metrics":   true,
	"acic/internal/trace":     true,
}

// forbidden lists the time functions whose results depend on the wall clock
// (or, for Sleep, stall the caller on it).
var forbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Sleep": true,
}

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock time and global rand in deterministic-simulation packages\n\n" +
		"time.Now/Since/Sleep and math/rand undermine deterministic replay; use\n" +
		"internal/simclock and internal/xrand, or annotate //acic:allow-wallclock.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Packages[pass.Pkg.Path()] {
		return nil
	}
	dirs := analysis.FileDirectives(pass)
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				if !dirs.Allowed(Directive, imp.Pos()) {
					pass.Reportf(imp.Pos(), "import of %s in deterministic package %s: use internal/xrand for replayable randomness", path, pass.Pkg.Path())
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !forbidden[fn.Name()] {
				return true
			}
			if !dirs.Allowed(Directive, sel.Pos()) {
				pass.Reportf(sel.Pos(), "call to time.%s in deterministic package %s: inject a simclock.Clock instead (or annotate //acic:allow-wallclock with a justification)", fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
