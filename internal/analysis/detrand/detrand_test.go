package detrand_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"acic/internal/analysis"
	"acic/internal/analysis/analysistest"
	"acic/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	detrand.Packages["detrand_a"] = true
	defer delete(detrand.Packages, "detrand_a")
	analysistest.Run(t, "testdata", detrand.Analyzer, "detrand_a")
}

// TestSkipsUnlistedPackages runs the analyzer on a package full of
// violations whose import path is not under enforcement: silence expected.
func TestSkipsUnlistedPackages(t *testing.T) {
	const src = `package x

import "time"

func f() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("acic/internal/unlisted", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{
		Analyzer:  detrand.Analyzer,
		Fset:      fset,
		Files:     []*ast.File{file},
		Pkg:       pkg,
		TypesInfo: info,
		Report: func(d analysis.Diagnostic) {
			t.Errorf("unexpected diagnostic in unlisted package: %s", d.Message)
		},
	}
	if err := detrand.Analyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
}
