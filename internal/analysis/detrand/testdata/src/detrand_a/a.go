// Package detrand_a is a detrand fixture: wall-clock and rand offenses
// alongside blessed and clean code.
package detrand_a

import (
	"math/rand" // want "import of math/rand in deterministic package"
	"time"
)

func bad() time.Duration {
	start := time.Now()          // want "call to time.Now in deterministic package"
	time.Sleep(time.Millisecond) // want "call to time.Sleep in deterministic package"
	_ = rand.Int()
	return time.Since(start) // want "call to time.Since in deterministic package"
}

// blessedFunc is reporting code whose whole body is exempted by a
// doc-comment directive.
//
//acic:allow-wallclock fixture: wall time is the measurement itself
func blessedFunc() time.Time {
	return time.Now()
}

func blessedLine() time.Time {
	return time.Now() //acic:allow-wallclock fixture: measurement boundary
}

func blessedAbove() time.Time {
	//acic:allow-wallclock fixture: directive on the line above
	return time.Now()
}

func fine(d time.Duration) time.Duration {
	return d * 2
}
