package relnet

import (
	"acic/internal/wire"
)

// RegisterWire installs codecs for the layer's two frame types. Timers
// are deliberately unregistered: they are local fabric callbacks and a
// timer crossing a process boundary would be a routing bug worth a loud
// encode failure.
//
// Note the layer itself is not wired into the TCP transport today: its
// retransmission buffer retains frame payloads past the send call, which
// conflicts with encode-consumes-payload recycling (a retransmit would
// re-encode a payload whose buffers were already recycled). TCP provides
// the reliable-delivery guarantees the layer simulates, so the transport
// runs without it. The codecs exist so the frame format is pinned and
// tested against skew before any future transport relaxes that rule.
func RegisterWire(c *wire.Codec) {
	c.Register(wire.TagData, dataFrame{},
		func(c *wire.Codec, buf []byte, v any) ([]byte, error) {
			f := v.(dataFrame)
			buf = wire.AppendU32(buf, uint32(f.Src))
			buf = wire.AppendU32(buf, uint32(f.Dst))
			buf = wire.AppendU64(buf, f.Seq)
			buf = wire.AppendU64(buf, f.Ack)
			buf = wire.AppendU32(buf, uint32(f.Size))
			return c.AppendValue(buf, f.Payload)
		},
		func(c *wire.Codec, r *wire.Reader) (any, error) {
			var f dataFrame
			f.Src = int(r.U32())
			f.Dst = int(r.U32())
			f.Seq = r.U64()
			f.Ack = r.U64()
			f.Size = int(r.U32())
			if err := r.Err(); err != nil {
				return nil, err
			}
			payload, err := c.ReadValue(r)
			if err != nil {
				return nil, err
			}
			f.Payload = payload
			return f, nil
		},
		nil)
	c.Register(wire.TagAck, ackFrame{},
		func(c *wire.Codec, buf []byte, v any) ([]byte, error) {
			f := v.(ackFrame)
			buf = wire.AppendU32(buf, uint32(f.Src))
			buf = wire.AppendU32(buf, uint32(f.Dst))
			return wire.AppendU64(buf, f.Ack), nil
		},
		func(c *wire.Codec, r *wire.Reader) (any, error) {
			f := ackFrame{Src: int(r.U32()), Dst: int(r.U32()), Ack: r.U64()}
			if err := r.Err(); err != nil {
				return nil, err
			}
			return f, nil
		},
		nil)
}
