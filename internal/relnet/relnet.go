// Package relnet is the reliable-delivery layer between the runtime and the
// message fabric (any fabric.Fabric — the simulated internal/netsim
// network or the TCP transport in internal/sockfab).
//
// The paper's quiescence rule — created == processed, stable across two
// consecutive reductions (§II-D) — silently assumes the fabric neither loses
// nor duplicates an update. PR 3 made violations loud: a single dropped
// message leaves the counters permanently unequal and the run hangs. This
// layer moves the reproduction from "detects loss" to "survives loss", the
// property real transports give Charm++ underneath the paper's runs:
//
//   - Every application frame on a (src, dst) stream is stamped with a
//     sequence number (starting at 1) and retained by the sender until
//     acknowledged.
//   - Receivers deduplicate with a cumulative-ack counter plus an
//     out-of-order window, so at-least-once transmission becomes
//     exactly-once delivery to the mailboxes above — the quiescence
//     counters never see a loss or a duplicate.
//   - Acks are cumulative and piggybacked on reverse-direction data frames
//     (a tram batch flowing dst→src carries the ack for free); quiet links
//     fall back to a standalone delayed ack.
//   - Unacked frames are retransmitted on a timeout with exponential
//     backoff. Timeouts ride the fabric's own SendAfter timer facility, so
//     retransmission is event-driven on the same timeline as the traffic
//     it guards — no second clock, no polling, no wall-time reads (the
//     package is under detrand enforcement). The injected simclock.Clock
//     is used only to observe ack latency.
//   - A frame left unacked when the fabric's timer facility closes loses
//     its retransmit protection. The layer makes that loud instead of
//     silent: the send reports SendClosed and the frame is counted in the
//     "relnet.stranded" diagnostic (Stats.Stranded).
//
// Retransmitted frames re-enter the fabric's Send and are therefore subject
// to the same fault filters as first transmissions: under a probabilistic drop
// filter a frame is retried until a copy survives. Every layer action is
// counted (Stats, and the "relnet." metrics instruments) so the runtime's
// conservation ledger (runtime.Audit) stays exact in the presence of
// retransmits, fabric duplicates and discarded duplicates.
package relnet

import (
	"sync"
	"sync/atomic"
	"time"

	"acic/internal/fabric"
	"acic/internal/metrics"
	"acic/internal/simclock"
	"acic/internal/trace"
)

// Config parameterizes a Layer. The zero value selects workable defaults
// for the latency scales DefaultLatency simulates.
type Config struct {
	// RTO is the initial retransmit timeout. It should comfortably exceed
	// one round trip on the slowest tier plus the ack delay; too small and
	// the layer wastes fabric bandwidth on spurious retransmits (they are
	// harmless — the dedup window discards them — but they are counted).
	// The fabric timeline is anchored to wall time, so the margin must
	// absorb host scheduling noise too, not just simulated latency.
	// Defaults to 5ms.
	RTO time.Duration
	// MaxRTO caps the exponential backoff. It also bounds how long a
	// pending retransmit timer can stall Network.Close, which drains every
	// queued delivery at its scheduled deadline. Defaults to 8×RTO.
	MaxRTO time.Duration
	// AckDelay is the standalone-ack fallback delay: a receiver that owes
	// an ack and sees no reverse traffic to piggyback on sends a dedicated
	// ack frame this long after the data arrived. Defaults to RTO/4.
	AckDelay time.Duration
	// Clock observes ack latency (the "relnet.ack_latency_ns" histogram).
	// Retransmit scheduling does NOT use it — timeouts ride the fabric's
	// timeline via its SendAfter facility. Defaults to simclock.Default().
	Clock simclock.Clock
	// Metrics, when non-nil, receives the layer's instruments under the
	// "relnet." prefix, sharded by the stream's source PE. A nil registry
	// selects a private one so Stats always works.
	Metrics *metrics.Registry
	// Trace, when non-nil, records one KindRetransmit event per
	// retransmitted frame (Arg: the frame's sequence number) on the
	// stream's source PE.
	Trace *trace.Recorder
}

func (c Config) withDefaults() Config {
	if c.RTO <= 0 {
		c.RTO = 5 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 8 * c.RTO
	}
	if c.AckDelay <= 0 {
		c.AckDelay = c.RTO / 4
	}
	c.Clock = simclock.Default(c.Clock)
	return c
}

// Stats aggregates the layer's counters — the ledger columns runtime.Audit
// folds into its conservation identity.
type Stats struct {
	// Retransmits counts data frames re-sent by the timeout machinery
	// (attempts that reached the fabric or its drop filter; post-close
	// attempts are not counted because the frame did not go anywhere).
	Retransmits int64
	// DupDiscarded counts data frames the dedup window swallowed — fabric
	// duplicates and retransmits whose original made it through.
	DupDiscarded int64
	// AcksSent counts standalone ack frames handed to the fabric
	// (piggybacked acks travel inside data frames and are not counted).
	AcksSent int64
	// AcksConsumed counts standalone ack frames delivered to and consumed
	// by the layer.
	AcksConsumed int64
	// Stranded counts data frames left unacked after the fabric's timer
	// facility closed under them: no retransmit timer will ever retry
	// them, so the at-least-once guarantee has lapsed. Each frame is
	// counted at most once. A diagnostic, not a conservation column — a
	// stranded frame's first transmission may still be delivered by the
	// fabric's close-time drain, in which case the counter overstates the
	// actual loss.
	Stranded int64
}

// --- wire frames ---
//
// In every frame, Src and Dst name the STREAM (Src sent data to Dst), not
// necessarily the transport direction: an ackFrame for stream (Src, Dst)
// travels Dst→Src.

// dataFrame carries one application payload plus a piggybacked cumulative
// ack for the reverse stream.
type dataFrame struct {
	Src, Dst int
	Seq      uint64 // position in the (Src, Dst) stream, starting at 1
	Ack      uint64 // cumulative ack of the reverse (Dst, Src) stream
	Payload  any
	Size     int
}

// ackFrame is the standalone cumulative ack for quiet links.
type ackFrame struct {
	Src, Dst int    // the acknowledged stream
	Ack      uint64 // every Seq <= Ack was received by Dst
}

// retransTimer is a fabric timer: when it fires, the sender side of the
// stream retransmits everything still unacked. Delivered to Src's lane.
type retransTimer struct {
	Src, Dst int
}

// ackTimer is a fabric timer: when it fires, the receiver side of the
// stream sends a standalone ack if one is still owed. Delivered to Dst's
// lane.
type ackTimer struct {
	Src, Dst int
}

// pending is one unacked frame retained for retransmission.
type pending struct {
	seq     uint64
	payload any
	size    int
	sentAt  time.Time // Clock stamp of the first transmission
}

// pair holds the full state of one unidirectional stream src→dst.
type pair struct {
	// Sender side, guarded by mu. Touched by the source PE's goroutine
	// (Send) and the fabric dispatcher (acks, retransmit timers).
	mu         sync.Mutex
	nextSeq    uint64
	unacked    []pending
	rto        time.Duration // current backoff value; 0 means "use Config.RTO"
	timerArmed bool
	// strandedUpTo is the highest seq already counted in the stranded
	// diagnostic, so repeated arm failures count each frame at most once.
	strandedUpTo uint64

	// Receiver side. cumAck is atomic because reverse-direction senders
	// read it to piggyback; everything else is touched only on the fabric
	// dispatcher goroutine, which delivers serially.
	cumAck     atomic.Uint64
	ooo        map[uint64]struct{} // received seqs beyond cumAck+1
	ackOwed    bool
	ackPending bool // an ackTimer is in flight

	// Layer stores pairs contiguously ([]pair, index s*n+d), so without
	// padding the sender mutex of stream (s,d) and the receiver atomics of
	// stream (s,d+1) share a cache line across goroutines.
	_ [64]byte
}

// Layer is the reliable-delivery endpoint set for one simulated machine.
// Create it with New, hand OnFabric to the Network as its deliver function
// (directly or via a closure), then Bind the network before the first Send.
type Layer struct {
	cfg     Config
	n       int
	net     fabric.Fabric
	deliver func(dst int, payload any)
	pairs   []pair // stream (s, d) at index s*n+d

	retransmits  *metrics.Counter
	dupDiscarded *metrics.Counter
	acksSent     *metrics.Counter
	acksConsumed *metrics.Counter
	stranded     *metrics.Counter
	ackLatency   *metrics.Histogram
}

// New creates a Layer for numPEs endpoints. deliver receives exactly-once,
// deduplicated application payloads on the fabric dispatcher goroutine —
// the same contract netsim's deliver function has without the layer.
func New(cfg Config, numPEs int, deliver func(dst int, payload any)) *Layer {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New(numPEs)
	}
	return &Layer{
		cfg:     cfg,
		n:       numPEs,
		deliver: deliver,
		pairs:   make([]pair, numPEs*numPEs),

		retransmits:  reg.Counter("relnet.retransmits"),
		dupDiscarded: reg.Counter("relnet.dup_discarded"),
		acksSent:     reg.Counter("relnet.acks_sent"),
		acksConsumed: reg.Counter("relnet.acks_consumed"),
		stranded:     reg.Counter("relnet.stranded"),
		ackLatency:   reg.Histogram("relnet.ack_latency_ns"),
	}
}

// Bind attaches the fabric the layer sends through — any fabric.Fabric
// (the simulated netsim network, a sockfab TCP node, or a test stub). The
// fabric's deliver function must route every payload to OnFabric; Bind
// must be called before the first Send.
func (l *Layer) Bind(net fabric.Fabric) { l.net = net }

// pair returns the state of stream src→dst.
func (l *Layer) pair(src, dst int) *pair { return &l.pairs[src*l.n+dst] }

// Send transmits payload on stream src→dst with at-least-once semantics:
// the frame is stamped with the stream's next sequence number, retained
// until acknowledged, and retransmitted with exponential backoff until an
// ack arrives or the fabric closes. Safe for concurrent use.
//
// SendClosed means the at-least-once guarantee could not be provided for
// this frame: either the data send itself hit a closed fabric, or the
// fabric closed before the retransmit timer could arm (a close racing the
// send), leaving the frame unacked with nothing to retry it. Both cases
// count the stream's newly unprotected frames in Stats.Stranded.
func (l *Layer) Send(src, dst int, payload any, size int) fabric.SendResult {
	p := l.pair(src, dst)
	p.mu.Lock()
	p.nextSeq++
	seq := p.nextSeq
	p.unacked = append(p.unacked, pending{seq: seq, payload: payload, size: size, sentAt: l.cfg.Clock.Now()})
	arm := !p.timerArmed
	if arm {
		p.timerArmed = true
	}
	p.mu.Unlock()

	// Piggyback the cumulative ack of the reverse stream: a tram batch
	// flowing src→dst acknowledges everything received dst→src for free.
	res := l.net.Send(src, dst, dataFrame{
		Src: src, Dst: dst, Seq: seq,
		Ack:     l.pair(dst, src).cumAck.Load(),
		Payload: payload, Size: size,
	}, size)
	if arm {
		if l.net.SendAfter(src, retransTimer{Src: src, Dst: dst}, l.cfg.RTO) == fabric.SendClosed {
			// The fabric closed between the data send and the timer arm.
			// The frame sits in unacked with no timer to retry it; report
			// the lapse instead of pretending the frame is protected.
			p.mu.Lock()
			p.timerArmed = false
			l.strandLocked(p, src)
			p.mu.Unlock()
			res = fabric.SendClosed
		}
	}
	// A SendDropped result is still at-least-once progress: the frame sits
	// in the unacked queue and the armed timer will retry it.
	return res
}

// strandLocked counts every unacked frame of p not already counted into
// the stranded diagnostic. Caller holds p.mu; src shards the counter.
func (l *Layer) strandLocked(p *pair, src int) {
	for _, pd := range p.unacked {
		if pd.seq > p.strandedUpTo {
			p.strandedUpTo = pd.seq
			l.stranded.Inc(src)
		}
	}
}

// OnFabric is the layer's fabric-side entry point: the Network's deliver
// function must forward every (dst, payload) here. It runs on the fabric
// dispatcher goroutine.
func (l *Layer) OnFabric(dst int, payload any) {
	switch f := payload.(type) {
	case dataFrame:
		l.onData(f)
	case ackFrame:
		l.acksConsumed.Inc(f.Src)
		l.processAck(f.Src, f.Dst, f.Ack)
	case retransTimer:
		l.onRetransTimer(f)
	case ackTimer:
		l.onAckTimer(f)
	default:
		// Not a layer frame — a payload injected around the layer (e.g. a
		// test poking the raw network). Pass it through untouched.
		l.deliver(dst, payload)
	}
}

// onData deduplicates one arriving data frame, delivers fresh payloads to
// the application, and schedules the ack that every arrival earns.
func (l *Layer) onData(f dataFrame) {
	// The piggybacked ack acknowledges the reverse stream.
	l.processAck(f.Dst, f.Src, f.Ack)

	p := l.pair(f.Src, f.Dst)
	cum := p.cumAck.Load()
	_, inWindow := p.ooo[f.Seq]
	if f.Seq <= cum || inWindow {
		// Seen before: a fabric duplicate, or a retransmit whose original
		// made it through. Discard, but still owe an ack — a retransmit
		// means the sender has not seen ours.
		l.dupDiscarded.Inc(f.Dst)
	} else {
		if f.Seq == cum+1 {
			cum++
			for {
				if _, ok := p.ooo[cum+1]; !ok {
					break
				}
				delete(p.ooo, cum+1)
				cum++
			}
			p.cumAck.Store(cum)
		} else {
			// A gap below f.Seq is outstanding (dropped or reordered):
			// deliver immediately — relaxation is order-insensitive — but
			// remember the seq so a late copy is recognized as a dup.
			if p.ooo == nil {
				p.ooo = make(map[uint64]struct{})
			}
			p.ooo[f.Seq] = struct{}{}
		}
		l.deliver(f.Dst, f.Payload)
	}

	p.ackOwed = true
	if !p.ackPending {
		p.ackPending = true
		if l.net.SendAfter(f.Dst, ackTimer{Src: f.Src, Dst: f.Dst}, l.cfg.AckDelay) == fabric.SendClosed {
			// The timer facility is closed but data is still arriving — a
			// half-closed fabric. Resetting ackPending alone would leave
			// ackOwed latched with no timer ever coming, permanently muting
			// standalone acks for the stream while the sender retransmits
			// forever. Fire the fallback inline instead: onData runs on the
			// dispatcher goroutine, exactly where the timer would have run.
			p.ackPending = false
			l.onAckTimer(ackTimer{Src: f.Src, Dst: f.Dst})
		}
	}
}

// onAckTimer fires the standalone-ack fallback for a quiet link: if an ack
// is still owed (no reverse-direction data frame has carried it meanwhile,
// and cumulative acks make any overlap harmless), send it now.
func (l *Layer) onAckTimer(t ackTimer) {
	p := l.pair(t.Src, t.Dst)
	p.ackPending = false
	if !p.ackOwed {
		return
	}
	p.ackOwed = false
	ack := ackFrame{Src: t.Src, Dst: t.Dst, Ack: p.cumAck.Load()}
	if l.net.Send(t.Dst, t.Src, ack, 1) != fabric.SendClosed {
		l.acksSent.Inc(t.Src)
	}
}

// processAck retires every unacked frame of stream (src, dst) with
// seq <= ack. Cumulative acks are idempotent, so stale or reordered acks
// are harmless no-ops.
func (l *Layer) processAck(src, dst int, ack uint64) {
	if ack == 0 {
		return
	}
	p := l.pair(src, dst)
	var retired []time.Duration
	p.mu.Lock()
	keep := p.unacked[:0]
	for _, pd := range p.unacked {
		if pd.seq > ack {
			keep = append(keep, pd)
		} else {
			retired = append(retired, l.cfg.Clock.Since(pd.sentAt))
		}
	}
	for i := len(keep); i < len(p.unacked); i++ {
		p.unacked[i] = pending{} // release payloads for GC
	}
	p.unacked = keep
	if len(p.unacked) == 0 {
		p.rto = 0 // reset backoff; the armed timer will observe and disarm
	}
	p.mu.Unlock()
	for _, d := range retired {
		l.ackLatency.Observe(src, int64(d))
	}
}

// onRetransTimer retransmits everything still unacked on the stream and
// re-arms itself with doubled (capped) backoff; with nothing left unacked
// it disarms and resets the backoff.
func (l *Layer) onRetransTimer(t retransTimer) {
	p := l.pair(t.Src, t.Dst)
	p.mu.Lock()
	if len(p.unacked) == 0 {
		p.timerArmed = false
		p.rto = 0
		p.mu.Unlock()
		return
	}
	if p.rto == 0 {
		p.rto = l.cfg.RTO
	}
	p.rto *= 2
	if p.rto > l.cfg.MaxRTO {
		p.rto = l.cfg.MaxRTO
	}
	next := p.rto
	resend := make([]pending, len(p.unacked))
	copy(resend, p.unacked)
	p.mu.Unlock()

	// Sends happen outside the lock (locksend). An ack racing in between
	// snapshot and send only makes a resend a dup the receiver discards.
	ack := l.pair(t.Dst, t.Src).cumAck.Load()
	for _, pd := range resend {
		res := l.net.Send(t.Src, t.Dst, dataFrame{
			Src: t.Src, Dst: t.Dst, Seq: pd.seq, Ack: ack,
			Payload: pd.payload, Size: pd.size,
		}, pd.size)
		if res == fabric.SendClosed {
			// Fabric closed mid-resend: nothing further will be delivered
			// and no timer can re-arm. Disarm (a latched timerArmed with no
			// timer in flight would also block every future Send from
			// arming one) and record the lapse.
			p.mu.Lock()
			p.timerArmed = false
			l.strandLocked(p, t.Src)
			p.mu.Unlock()
			return
		}
		l.retransmits.Inc(t.Src)
		if l.cfg.Trace != nil {
			l.cfg.Trace.Record(t.Src, trace.KindRetransmit, int64(pd.seq))
		}
	}
	if l.net.SendAfter(t.Src, t, next) == fabric.SendClosed {
		p.mu.Lock()
		p.timerArmed = false
		l.strandLocked(p, t.Src)
		p.mu.Unlock()
	}
}

// Stats returns the layer's ledger counters. Exact after the fabric has
// closed; mid-run snapshots are approximate.
func (l *Layer) Stats() Stats {
	return Stats{
		Retransmits:  l.retransmits.Value(),
		DupDiscarded: l.dupDiscarded.Value(),
		AcksSent:     l.acksSent.Value(),
		AcksConsumed: l.acksConsumed.Value(),
		Stranded:     l.stranded.Value(),
	}
}
