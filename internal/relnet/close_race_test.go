package relnet

// Close-race regressions. Both bugs are races between a Send/deliver and
// the fabric closing, so they are pinned against scriptable fabric.Fabric
// stubs rather than a live netsim network: the stub freezes the exact
// interleaving (data path open, timer path closed) that a real close only
// hits in a narrow window.

import (
	"testing"
	"time"

	"acic/internal/fabric"
)

// stubMsg is one payload a stubFabric accepted.
type stubMsg struct {
	src, dst int
	payload  any
}

// stubFabric scripts its two paths independently: a fabric whose Send
// works while SendAfter reports closed is exactly the half-closed state a
// real close passes through (netsim marks lanes closed one by one; a TCP
// node can have live conns after its local timer queue shut down).
type stubFabric struct {
	sendClosed  bool
	afterClosed bool
	sent        []stubMsg
	timers      []stubMsg
}

func (s *stubFabric) Send(src, dst int, payload any, size int) fabric.SendResult {
	if s.sendClosed {
		return fabric.SendClosed
	}
	s.sent = append(s.sent, stubMsg{src, dst, payload})
	return fabric.SendEnqueued
}

func (s *stubFabric) SendAfter(dst int, payload any, delay time.Duration) fabric.SendResult {
	if s.afterClosed {
		return fabric.SendClosed
	}
	s.timers = append(s.timers, stubMsg{dst, dst, payload})
	return fabric.SendEnqueued
}

func (s *stubFabric) QueueLen() int { return len(s.sent) + len(s.timers) }
func (s *stubFabric) Close()       { s.sendClosed, s.afterClosed = true, true }

// TestSendStrandedOnCloseMidSend pins the close-mid-send race: the data
// frame reaches the fabric, but the fabric closes before the retransmit
// timer arms. The frame sits in unacked with nothing to retry it — Send
// must say so (SendClosed) and count the frame as stranded, not return
// success and quietly clear timerArmed.
func TestSendStrandedOnCloseMidSend(t *testing.T) {
	fab := &stubFabric{afterClosed: true} // close lands between Send and SendAfter
	l := New(Config{}, 2, func(dst int, payload any) {})
	l.Bind(fab)

	if res := l.Send(0, 1, "first", 1); res != fabric.SendClosed {
		t.Errorf("Send with no timer protection returned %v, want SendClosed", res)
	}
	if got := l.Stats().Stranded; got != 1 {
		t.Errorf("Stranded = %d after one unprotected frame, want 1", got)
	}
	if len(fab.sent) != 1 {
		t.Fatalf("fabric saw %d data frames, want 1", len(fab.sent))
	}

	// A second send on the same stream tries to arm again (the first
	// failure reset timerArmed), fails again, and strands only the new
	// frame — the first is already counted.
	if res := l.Send(0, 1, "second", 1); res != fabric.SendClosed {
		t.Errorf("second Send returned %v, want SendClosed", res)
	}
	if got := l.Stats().Stranded; got != 2 {
		t.Errorf("Stranded = %d after two unprotected frames, want 2", got)
	}

	// An ack retiring the frames must not resurrect the counter.
	l.OnFabric(0, ackFrame{Src: 0, Dst: 1, Ack: 2})
	if got := l.Stats().Stranded; got != 2 {
		t.Errorf("Stranded = %d after ack, want 2 (count is monotone)", got)
	}
}

// TestRetransTimerStrandsOnClosedFabric pins the same race inside the
// retransmit path: a timer firing after the fabric closed must disarm and
// strand, not leave timerArmed latched true with no timer in flight
// (which would also block every future Send from arming one).
func TestRetransTimerStrandsOnClosedFabric(t *testing.T) {
	fab := &stubFabric{}
	l := New(Config{}, 2, func(dst int, payload any) {})
	l.Bind(fab)

	if res := l.Send(0, 1, "payload", 1); res != fabric.SendEnqueued {
		t.Fatalf("Send = %v, want SendEnqueued", res)
	}
	if len(fab.timers) != 1 {
		t.Fatalf("no retransmit timer armed")
	}

	// Fabric closes, then the armed timer fires (netsim's close drain
	// delivers pending timers at their deadlines).
	fab.Close()
	l.OnFabric(0, fab.timers[0].payload)

	if got := l.Stats().Stranded; got != 1 {
		t.Errorf("Stranded = %d after timer hit closed fabric, want 1", got)
	}
	if p := l.pair(0, 1); p.timerArmed {
		t.Error("timerArmed still latched true with no timer in flight")
	}
}

// TestStandaloneAckSurvivesHalfClosedFabric pins the onData leak: with the
// timer path closed but the data path open, an owed ack must go out
// inline instead of waiting forever for an ack timer that can never arm —
// otherwise the stream's standalone acks are permanently muted and the
// peer retransmits until it dies.
func TestStandaloneAckSurvivesHalfClosedFabric(t *testing.T) {
	fab := &stubFabric{afterClosed: true}
	var delivered []any
	l := New(Config{}, 2, func(dst int, payload any) { delivered = append(delivered, payload) })
	l.Bind(fab)

	l.OnFabric(1, dataFrame{Src: 0, Dst: 1, Seq: 1, Payload: "data", Size: 1})

	if len(delivered) != 1 || delivered[0] != "data" {
		t.Fatalf("delivered = %v, want [data]", delivered)
	}
	var acks []ackFrame
	for _, m := range fab.sent {
		if a, ok := m.payload.(ackFrame); ok {
			acks = append(acks, a)
		}
	}
	if len(acks) != 1 || acks[0] != (ackFrame{Src: 0, Dst: 1, Ack: 1}) {
		t.Fatalf("standalone acks sent = %v, want one cumulative ack of seq 1", acks)
	}
	if got := l.Stats().AcksSent; got != 1 {
		t.Errorf("AcksSent = %d, want 1", got)
	}
	if p := l.pair(0, 1); p.ackOwed || p.ackPending {
		t.Errorf("receiver state leaked: ackOwed=%v ackPending=%v, want false/false", p.ackOwed, p.ackPending)
	}

	// A retransmitted duplicate still earns its (inline) ack: the sender
	// only retransmits because it has not seen ours.
	l.OnFabric(1, dataFrame{Src: 0, Dst: 1, Seq: 1, Payload: "data", Size: 1})
	if got := l.Stats().AcksSent; got != 2 {
		t.Errorf("AcksSent = %d after duplicate, want 2", got)
	}
	if got := l.Stats().DupDiscarded; got != 1 {
		t.Errorf("DupDiscarded = %d, want 1", got)
	}
	if len(delivered) != 1 {
		t.Errorf("duplicate reached the application: delivered = %v", delivered)
	}
}
