package relnet

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"acic/internal/netsim"
)

// harness wires a Layer over a raw netsim.Network and collects deliveries.
type harness struct {
	l   *Layer
	net *netsim.Network

	mu       sync.Mutex
	received map[int][]any // dst -> payloads in delivery order
	total    int
	gotAll   chan struct{}
	want     int
}

func newHarness(t *testing.T, numPEs int, cfg Config, model netsim.LatencyModel, want int) *harness {
	t.Helper()
	h := &harness{received: make(map[int][]any), gotAll: make(chan struct{}), want: want}
	h.l = New(cfg, numPEs, func(dst int, payload any) {
		h.mu.Lock()
		h.received[dst] = append(h.received[dst], payload)
		h.total++
		if h.total == h.want {
			close(h.gotAll)
		}
		h.mu.Unlock()
	})
	net, err := netsim.NewNetwork(netsim.SingleNode(numPEs), model, h.l.OnFabric)
	if err != nil {
		t.Fatal(err)
	}
	h.net = net
	h.l.Bind(net)
	return h
}

func (h *harness) waitAll(t *testing.T, timeout time.Duration) {
	t.Helper()
	select {
	case <-h.gotAll:
	case <-time.After(timeout):
		h.mu.Lock()
		got := h.total
		h.mu.Unlock()
		t.Fatalf("delivered %d/%d payloads before timeout", got, h.want)
	}
}

// fastCfg keeps retransmission quick enough for prompt tests while leaving
// ample headroom over the ack round trip, so "no spurious retransmits"
// assertions hold even under the race detector's slowdown.
func fastCfg() Config {
	return Config{RTO: 25 * time.Millisecond, MaxRTO: 100 * time.Millisecond, AckDelay: 2 * time.Millisecond}
}

// TestExactlyOnceNoFaults: on a clean fabric the layer is transparent —
// every payload delivered exactly once, in stream order, no retransmits.
func TestExactlyOnceNoFaults(t *testing.T) {
	const msgs = 200
	h := newHarness(t, 2, fastCfg(), netsim.ZeroLatency(), msgs)
	for i := 0; i < msgs; i++ {
		h.l.Send(0, 1, i, 1)
	}
	h.waitAll(t, 10*time.Second)
	h.net.Close()
	for i, v := range h.received[1] {
		if v.(int) != i {
			t.Fatalf("received[1][%d] = %v, want %d (stream order)", i, v, i)
		}
	}
	st := h.l.Stats()
	if st.Retransmits != 0 || st.DupDiscarded != 0 {
		t.Errorf("clean fabric: Retransmits=%d DupDiscarded=%d, want 0/0", st.Retransmits, st.DupDiscarded)
	}
}

// TestRetransmitRecoversDrop: a filter that drops the first transmission of
// every data frame forces the timeout path; every payload still arrives
// exactly once and the retransmits are counted.
func TestRetransmitRecoversDrop(t *testing.T) {
	const msgs = 20
	h := newHarness(t, 2, fastCfg(), netsim.ZeroLatency(), msgs)
	var mu sync.Mutex
	attempts := 0
	h.net.SetDropFilter(func(src, dst, size int) bool {
		mu.Lock()
		defer mu.Unlock()
		if src == 0 { // data direction only; acks flow 1 -> 0
			attempts++
			return attempts <= msgs // every original dropped, retries pass
		}
		return false
	})
	for i := 0; i < msgs; i++ {
		h.l.Send(0, 1, i, 1)
	}
	h.waitAll(t, 15*time.Second)
	h.net.Close()
	if got := len(h.received[1]); got != msgs {
		t.Fatalf("delivered %d payloads, want %d", got, msgs)
	}
	st := h.l.Stats()
	if st.Retransmits == 0 {
		t.Error("Retransmits = 0, want > 0: the drop filter forced the timeout path")
	}
	if fst := h.net.Stats(); fst.Dropped == 0 {
		t.Error("fabric Dropped = 0, want > 0")
	}
}

// TestStandaloneAckOnQuietLink: a one-way stream with no reverse traffic
// must be acknowledged by the standalone fallback, draining the sender's
// unacked queue so the retransmit timer disarms without ever firing a
// resend.
func TestStandaloneAckOnQuietLink(t *testing.T) {
	h := newHarness(t, 2, fastCfg(), netsim.ZeroLatency(), 1)
	h.l.Send(0, 1, "only", 1)
	h.waitAll(t, 5*time.Second)
	// Wait for the ack round trip, then for the timer to observe it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p := h.l.pair(0, 1)
		p.mu.Lock()
		drained := len(p.unacked) == 0
		p.mu.Unlock()
		if drained {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sender unacked queue never drained on a quiet link")
		}
		time.Sleep(time.Millisecond)
	}
	h.net.Close()
	st := h.l.Stats()
	if st.AcksSent == 0 || st.AcksConsumed == 0 {
		t.Errorf("AcksSent=%d AcksConsumed=%d, want both > 0 (standalone fallback)", st.AcksSent, st.AcksConsumed)
	}
	if st.Retransmits != 0 {
		t.Errorf("Retransmits = %d, want 0 (ack arrived well inside RTO)", st.Retransmits)
	}
}

// TestDedupSwallowsFabricDuplicates: fabric-level duplication must never
// reach the application twice.
func TestDedupSwallowsFabricDuplicates(t *testing.T) {
	const msgs = 50
	h := newHarness(t, 2, fastCfg(), netsim.ZeroLatency(), msgs)
	h.net.SetDupFilter(func(src, dst, size int) (time.Duration, bool) {
		return 100 * time.Microsecond, true // duplicate everything
	})
	for i := 0; i < msgs; i++ {
		h.l.Send(0, 1, i, 1)
	}
	h.waitAll(t, 10*time.Second)
	// Give the ghosts time to land, then close (Close drains the rest).
	h.net.Close()
	if got := len(h.received[1]); got != msgs {
		t.Fatalf("delivered %d payloads, want exactly %d (dups swallowed)", got, msgs)
	}
	if st := h.l.Stats(); st.DupDiscarded == 0 {
		t.Error("DupDiscarded = 0, want > 0 under a duplicate-everything filter")
	}
}

// TestReorderedStreamStillExactlyOnce: adversarial reordering may deliver
// out of stream order; the window must still deliver each payload exactly
// once and recognize late duplicates.
func TestReorderedStreamStillExactlyOnce(t *testing.T) {
	const msgs = 100
	h := newHarness(t, 2, fastCfg(), netsim.ZeroLatency(), msgs)
	rng := rand.New(rand.NewSource(7))
	var mu sync.Mutex
	h.net.SetReorderFilter(func(src, dst, size int) (time.Duration, bool) {
		mu.Lock()
		defer mu.Unlock()
		if rng.Intn(4) == 0 {
			return time.Duration(rng.Intn(2000)) * time.Microsecond, true
		}
		return 0, false
	})
	for i := 0; i < msgs; i++ {
		h.l.Send(0, 1, i, 1)
	}
	h.waitAll(t, 10*time.Second)
	h.net.Close()
	seen := make(map[int]int)
	for _, v := range h.received[1] {
		seen[v.(int)]++
	}
	for i := 0; i < msgs; i++ {
		if seen[i] != 1 {
			t.Fatalf("payload %d delivered %d times, want exactly once", i, seen[i])
		}
	}
}

// TestLossyFabricHammer is the exactly-once stress: several PEs exchanging
// traffic in both directions over a fabric that drops, duplicates AND
// reorders probabilistically (seeded). Every payload must arrive exactly
// once, and after the dust settles the layer's ledger must be consistent
// with the fabric's.
func TestLossyFabricHammer(t *testing.T) {
	const (
		numPEs    = 4
		perStream = 80
	)
	streams := [][2]int{{0, 1}, {1, 0}, {0, 2}, {2, 3}, {3, 0}, {1, 2}}
	want := len(streams) * perStream
	h := newHarness(t, numPEs, fastCfg(), netsim.ZeroLatency(), want)

	var mu sync.Mutex
	rng := rand.New(rand.NewSource(42))
	h.net.SetDropFilter(func(src, dst, size int) bool {
		mu.Lock()
		defer mu.Unlock()
		return rng.Intn(100) < 10
	})
	h.net.SetDupFilter(func(src, dst, size int) (time.Duration, bool) {
		mu.Lock()
		defer mu.Unlock()
		if rng.Intn(100) < 10 {
			return time.Duration(rng.Intn(1000)) * time.Microsecond, true
		}
		return 0, false
	})
	h.net.SetReorderFilter(func(src, dst, size int) (time.Duration, bool) {
		mu.Lock()
		defer mu.Unlock()
		if rng.Intn(100) < 10 {
			return time.Duration(rng.Intn(1000)) * time.Microsecond, true
		}
		return 0, false
	})

	var wg sync.WaitGroup
	for si, s := range streams {
		wg.Add(1)
		go func(si int, src, dst int) {
			defer wg.Done()
			for i := 0; i < perStream; i++ {
				h.l.Send(src, dst, [2]int{si, i}, 1)
			}
		}(si, s[0], s[1])
	}
	wg.Wait()
	h.waitAll(t, 30*time.Second)
	h.net.Close()

	// Exactly once, per stream.
	seen := make(map[[2]int]int)
	for _, payloads := range h.received {
		for _, v := range payloads {
			seen[v.([2]int)]++
		}
	}
	if len(seen) != want {
		t.Fatalf("distinct payloads = %d, want %d", len(seen), want)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("payload %v delivered %d times, want exactly once", k, c)
		}
	}
	st := h.l.Stats()
	fst := h.net.Stats()
	if st.Retransmits == 0 {
		t.Error("Retransmits = 0, want > 0 under 10% drop")
	}
	if st.DupDiscarded == 0 {
		t.Error("DupDiscarded = 0, want > 0 under 10% dup plus retransmits")
	}
	t.Logf("fabric: sent=%d dropped=%d duplicated=%d reordered=%d | layer: retrans=%d dup_discarded=%d acks=%d/%d",
		fst.MessagesSent, fst.Dropped, fst.Duplicated, fst.Reordered,
		st.Retransmits, st.DupDiscarded, st.AcksSent, st.AcksConsumed)
}

// TestPiggybackAck: with bidirectional traffic the reverse stream's data
// frames carry the ack, so the sender's queue drains without many (or any)
// standalone acks for the busy direction.
func TestPiggybackAck(t *testing.T) {
	const msgs = 50
	h := newHarness(t, 2, fastCfg(), netsim.ZeroLatency(), 2*msgs)
	for i := 0; i < msgs; i++ {
		h.l.Send(0, 1, i, 1)
		h.l.Send(1, 0, i, 1)
	}
	h.waitAll(t, 10*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		p01, p10 := h.l.pair(0, 1), h.l.pair(1, 0)
		p01.mu.Lock()
		d1 := len(p01.unacked) == 0
		p01.mu.Unlock()
		p10.mu.Lock()
		d2 := len(p10.unacked) == 0
		p10.mu.Unlock()
		if d1 && d2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("unacked queues never drained with bidirectional traffic")
		}
		time.Sleep(time.Millisecond)
	}
	h.net.Close()
	if st := h.l.Stats(); st.Retransmits != 0 {
		t.Errorf("Retransmits = %d, want 0 (piggybacked acks are prompt)", st.Retransmits)
	}
}

// TestSendAfterCloseIsClosed: the layer reports the fabric's refusal and
// does not retain state that would retransmit into the void.
func TestSendAfterCloseIsClosed(t *testing.T) {
	h := newHarness(t, 2, fastCfg(), netsim.ZeroLatency(), 1)
	h.l.Send(0, 1, "x", 1)
	h.waitAll(t, 5*time.Second)
	h.net.Close()
	if res := h.l.Send(0, 1, "late", 1); res != netsim.SendClosed {
		t.Fatalf("Send after Close = %v, want SendClosed", res)
	}
}
