package relnet

import (
	"testing"

	"acic/internal/wire"
)

type wireStub struct{ n int64 }

func frameCodec() *wire.Codec {
	c := wire.NewCodec()
	RegisterWire(c)
	c.Register(0x80, wireStub{},
		func(c *wire.Codec, buf []byte, v any) ([]byte, error) {
			return wire.AppendI64(buf, v.(wireStub).n), nil
		},
		func(c *wire.Codec, r *wire.Reader) (any, error) {
			return wireStub{n: r.I64()}, nil
		},
		nil)
	return c
}

func TestDataFrameWireRoundTrip(t *testing.T) {
	c := frameCodec()
	want := dataFrame{Src: 3, Dst: 1, Seq: 99, Ack: 42, Size: 7, Payload: wireStub{n: -5}}
	frame, err := c.EncodeFrame(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	f := got.(dataFrame)
	if f.Src != 3 || f.Dst != 1 || f.Seq != 99 || f.Ack != 42 || f.Size != 7 || f.Payload.(wireStub).n != -5 {
		t.Fatalf("round trip: %+v", f)
	}
}

func TestAckFrameWireRoundTrip(t *testing.T) {
	c := frameCodec()
	frame, err := c.EncodeFrame(nil, ackFrame{Src: 2, Dst: 0, Ack: 17})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f := got.(ackFrame); f.Src != 2 || f.Dst != 0 || f.Ack != 17 {
		t.Fatalf("round trip: %+v", f)
	}
}

func TestTimersAreNotWireEncodable(t *testing.T) {
	c := frameCodec()
	for _, v := range []any{retransTimer{Src: 1}, ackTimer{Dst: 1}} {
		if _, err := c.EncodeFrame(nil, v); err == nil {
			t.Errorf("%T encoded; timers must stay process-local", v)
		}
	}
}
