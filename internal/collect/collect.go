// Package collect computes and formats the measurements the paper reports:
// wall-clock execution time, traversed edges per second (TEPS, Figs. 7-8),
// update counts (Fig. 9), and multi-trial aggregates (each data point in
// the paper averages ten trials, §IV-C). It also renders aligned text
// tables and CSV for the benchmark harness.
package collect

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// TEPS returns traversed edges per second under the Graph500 definition:
// the number of edges in the component reachable from the source divided by
// the SSSP execution time. Returns 0 for a non-positive duration.
func TEPS(reachableEdges int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(reachableEdges) / elapsed.Seconds()
}

// Sample aggregates repeated measurements of one scalar.
type Sample struct {
	values []float64
}

// Add appends one observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Stddev returns the sample standard deviation (n-1), or 0 for fewer than
// two observations.
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation, or +Inf with none.
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.values {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation, or -Inf with none.
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.values {
		if v > max {
			max = v
		}
	}
	return max
}

// Median returns the middle observation (mean of middle two for even n),
// or 0 with none.
func (s *Sample) Median() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Table is a simple column-aligned results table with CSV export, used by
// cmd/sssp-bench to print each figure's data.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table via Fprint.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Fprint(&sb)
	return sb.String()
}

// WriteCSV emits the table in CSV form (headers first, no title).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	line := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Speedup formats a/b as "<x>.xx×" with guards for zero denominators —
// the comparison statistic quoted throughout §IV-F.
func Speedup(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
