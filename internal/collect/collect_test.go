package collect

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTEPS(t *testing.T) {
	if got := TEPS(1000, time.Second); got != 1000 {
		t.Errorf("TEPS = %v, want 1000", got)
	}
	if got := TEPS(500, 250*time.Millisecond); got != 2000 {
		t.Errorf("TEPS = %v, want 2000", got)
	}
	if got := TEPS(100, 0); got != 0 {
		t.Errorf("TEPS with zero duration = %v, want 0", got)
	}
	if got := TEPS(100, -time.Second); got != 0 {
		t.Errorf("TEPS with negative duration = %v, want 0", got)
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.Median() != 0 {
		t.Error("empty sample stats should be zero")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty min/max should be infinities")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample stddev of this classic dataset is ~2.138.
	if math.Abs(s.Stddev()-2.1381) > 0.001 {
		t.Errorf("Stddev = %v, want ~2.138", s.Stddev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 4.5 {
		t.Errorf("Median = %v, want 4.5", s.Median())
	}
}

func TestSampleMedianOdd(t *testing.T) {
	var s Sample
	for _, v := range []float64{9, 1, 5} {
		s.Add(v)
	}
	if s.Median() != 5 {
		t.Errorf("Median = %v, want 5", s.Median())
	}
}

func TestSampleSingleValue(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.Stddev() != 0 {
		t.Error("single-value stddev should be 0")
	}
	if s.Mean() != 3 || s.Median() != 3 {
		t.Error("single-value mean/median wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig 7", "nodes", "time", "speedup")
	tb.AddRow(1, 120*time.Millisecond, 1.36)
	tb.AddRow(16, 30*time.Millisecond, 1.9)
	out := tb.String()
	if !strings.Contains(out, "Fig 7") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "nodes") || !strings.Contains(out, "speedup") {
		t.Error("headers missing")
	}
	if !strings.Contains(out, "120ms") || !strings.Contains(out, "1.36") {
		t.Errorf("rows missing:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.0)
	tb.AddRow(1234567.0)
	tb.AddRow(0.000123)
	tb.AddRow(3.14159)
	out := tb.String()
	if !strings.Contains(out, "0\n") {
		t.Errorf("zero not rendered plainly:\n%s", out)
	}
	if !strings.Contains(out, "e+06") {
		t.Errorf("large value not scientific:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("medium value not compact:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored title", "a", "b")
	tb.AddRow("x,y", `say "hi"`)
	tb.AddRow(1, 2)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `"x,y","say ""hi"""` {
		t.Errorf("escaped row = %q", lines[1])
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(3, 2); got != "1.50x" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(1, 0); got != "n/a" {
		t.Errorf("Speedup by zero = %q", got)
	}
}

// Property: Min <= Median <= Max and Mean within [Min, Max].
func TestQuickSampleInvariants(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue // avoid float overflow in the summation itself
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Min() <= s.Median() && s.Median() <= s.Max() &&
			s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
