package gctune

import (
	"runtime/debug"
	"testing"
)

func TestZeroConfigIsNoOp(t *testing.T) {
	before := debug.SetGCPercent(100)
	debug.SetGCPercent(before)
	s := Apply(Config{})
	if s.Active() {
		t.Error("zero config reports Active")
	}
	if got := s.String(); got != "gc: default" {
		t.Errorf("String() = %q", got)
	}
	after := debug.SetGCPercent(before)
	if after != before {
		t.Errorf("zero config changed GC percent: %d -> %d", before, after)
	}
}

func TestApplySetsAndDescribes(t *testing.T) {
	orig := debug.SetGCPercent(100)
	defer debug.SetGCPercent(orig)
	s := Apply(Config{GCPercent: 400, BallastMiB: 1})
	if !s.Active() {
		t.Fatal("config not Active")
	}
	if got := debug.SetGCPercent(400); got != 400 {
		t.Errorf("GC percent = %d, want 400", got)
	}
	if len(s.ballast) != 1<<20 {
		t.Errorf("ballast = %d bytes, want %d", len(s.ballast), 1<<20)
	}
	want := "gc: percent=400 ballast=1MiB"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	s.Release()
	if s.ballast != nil {
		t.Error("Release kept the ballast")
	}
}

func TestGCPercentOff(t *testing.T) {
	orig := debug.SetGCPercent(100)
	defer debug.SetGCPercent(orig)
	s := Apply(Config{GCPercent: -1})
	if got := debug.SetGCPercent(orig); got != -1 {
		t.Errorf("GC percent = %d, want -1 (off)", got)
	}
	if got := s.String(); got != "gc: percent=off" {
		t.Errorf("String() = %q", got)
	}
}
