// Package gctune applies opt-in garbage-collector shaping for the
// long-running drivers (acic-run, sssp-bench). All three knobs are
// standard Go runtime levers exposed as flags so a perf investigation can
// A/B them without rebuilding or touching the environment:
//
//   - GC percent (GOGC): raising it trades heap footprint for fewer GC
//     cycles — the arena/pool work makes the steady-state allocation rate
//     low, so cycles are mostly triggered by per-run transients and a
//     higher GOGC spaces them out.
//   - Soft memory limit (GOMEMLIMIT): a ceiling that keeps a raised GC
//     percent from growing the heap without bound.
//   - Ballast: a large dead allocation that inflates the live heap, so
//     the proportional GOGC trigger fires at a higher absolute threshold.
//     The classic pre-GOMEMLIMIT idiom, kept because it composes with
//     unmodified GOGC and is trivially observable in heap profiles.
//
// The zero Config applies nothing; Apply is a no-op the drivers can call
// unconditionally.
package gctune

import (
	"fmt"
	"runtime/debug"
)

// Config selects the shaping to apply. Zero values leave the runtime's
// defaults (or environment-provided GOGC/GOMEMLIMIT) untouched.
type Config struct {
	// GCPercent sets the GC target percentage (like GOGC); 0 means leave
	// unchanged. Negative disables the pacer entirely (GOGC=off) — only
	// sensible together with MemLimitMiB.
	GCPercent int
	// MemLimitMiB sets the soft memory limit in MiB (like GOMEMLIMIT);
	// 0 means leave unchanged.
	MemLimitMiB int64
	// BallastMiB allocates this many MiB of dead heap, retained until
	// Release is called on the returned Shaping; 0 allocates nothing.
	BallastMiB int64
}

// Shaping records what Apply changed, for printing and for releasing the
// ballast.
type Shaping struct {
	cfg     Config
	ballast []byte
}

// Apply installs the configuration and returns a handle that keeps the
// ballast (if any) alive. Call from main before the workload starts.
func Apply(cfg Config) *Shaping {
	s := &Shaping{cfg: cfg}
	if cfg.GCPercent > 0 {
		debug.SetGCPercent(cfg.GCPercent)
	} else if cfg.GCPercent < 0 {
		debug.SetGCPercent(-1)
	}
	if cfg.MemLimitMiB > 0 {
		debug.SetMemoryLimit(cfg.MemLimitMiB << 20)
	}
	if cfg.BallastMiB > 0 {
		s.ballast = make([]byte, cfg.BallastMiB<<20)
	}
	return s
}

// Active reports whether any knob was applied.
func (s *Shaping) Active() bool {
	return s.cfg.GCPercent != 0 || s.cfg.MemLimitMiB > 0 || s.cfg.BallastMiB > 0
}

// String describes the applied shaping, for run banners.
func (s *Shaping) String() string {
	if !s.Active() {
		return "gc: default"
	}
	out := "gc:"
	if s.cfg.GCPercent > 0 {
		out += fmt.Sprintf(" percent=%d", s.cfg.GCPercent)
	} else if s.cfg.GCPercent < 0 {
		out += " percent=off"
	}
	if s.cfg.MemLimitMiB > 0 {
		out += fmt.Sprintf(" memlimit=%dMiB", s.cfg.MemLimitMiB)
	}
	if s.cfg.BallastMiB > 0 {
		out += fmt.Sprintf(" ballast=%dMiB", s.cfg.BallastMiB)
	}
	return out
}

// Release drops the ballast reference. The next GC reclaims it; shaping
// percentages and limits stay as applied.
func (s *Shaping) Release() { s.ballast = nil }
