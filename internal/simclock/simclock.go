// Package simclock abstracts the wall-clock reads that the run drivers use
// to time a full execution. Every algorithm driver (core, deltastep,
// delta2d, distctrl, kla, cc) measures Elapsed the same way: stamp a start
// time before injecting the seed messages, subtract after Wait returns.
// Routing those reads through a Clock keeps the simulation packages free of
// direct time.Now/time.Since calls — the detrand analyzer forbids them — and
// lets tests substitute a Fake clock for deterministic Elapsed values.
package simclock

import (
	"sync"
	"time"
)

// Clock supplies the two wall-clock operations the drivers need.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
}

// Wall reads the real wall clock. It is the default used when an Options
// struct leaves Clock nil, and the single sanctioned boundary through which
// simulation code may observe real time.
type Wall struct{}

// Now returns the current wall-clock time. (simclock is deliberately
// outside detrand's enforced set: Wall is the one sanctioned boundary.)
func (Wall) Now() time.Time { return time.Now() }

// Since returns the wall-clock duration since t.
func (Wall) Since(t time.Time) time.Duration { return time.Since(t) }

// Default returns clk, or Wall if clk is nil. Run drivers call this on
// Options.Clock so that zero-value Options keep their wall-clock behaviour.
func Default(clk Clock) Clock {
	if clk == nil {
		return Wall{}
	}
	return clk
}

// Fake is a manually advanced clock for tests. The zero value is ready to
// use and starts at the zero time.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a Fake clock positioned at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake clock's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since returns the difference between the fake clock's current time and t.
func (f *Fake) Since(t time.Time) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now.Sub(t)
}

// Advance moves the fake clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}
