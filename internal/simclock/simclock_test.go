package simclock

import (
	"testing"
	"time"
)

func TestDefaultNilIsWall(t *testing.T) {
	if _, ok := Default(nil).(Wall); !ok {
		t.Fatalf("Default(nil) = %T, want Wall", Default(nil))
	}
	f := NewFake(time.Unix(100, 0))
	if Default(f) != f {
		t.Fatalf("Default(fake) did not return the fake clock")
	}
}

func TestWallAdvances(t *testing.T) {
	var w Wall
	start := w.Now()
	if d := w.Since(start); d < 0 {
		t.Fatalf("Wall.Since went backwards: %v", d)
	}
}

func TestFakeIsManual(t *testing.T) {
	f := NewFake(time.Unix(1000, 0))
	start := f.Now()
	if d := f.Since(start); d != 0 {
		t.Fatalf("fresh Fake.Since = %v, want 0", d)
	}
	f.Advance(250 * time.Millisecond)
	if d := f.Since(start); d != 250*time.Millisecond {
		t.Fatalf("Fake.Since after Advance = %v, want 250ms", d)
	}
	// Time does not move on its own.
	if d := f.Since(start); d != 250*time.Millisecond {
		t.Fatalf("Fake advanced without Advance: %v", d)
	}
}
