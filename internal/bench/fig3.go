package bench

import (
	goruntime "runtime"
	"sync/atomic"
	"time"

	"acic/internal/collect"
	"acic/internal/netsim"
	"acic/internal/runtime"
)

// Fig. 3 reproduces the paper's standalone reduction-overhead study
// (§IV-D): over a fixed window every PE repeatedly executes 10µs work
// methods; the run is repeated with and without a concurrent
// reduction/broadcast cycle, and the loss in executed methods is normalized
// by the number of reductions that occurred. The paper measures a
// 0.0015-0.0035% work loss per reduction per second on Frontier; the
// simulated machine should land in the same "negligible" regime.

// Fig3Point is one parallelism level's measurement.
type Fig3Point struct {
	PEs                 int
	MethodsOff          int64 // work methods executed without reductions
	MethodsOn           int64 // with the concurrent cycle
	Reductions          int64
	ReductionsPerSec    float64
	LossPerReductionPct float64
}

// workHandler busy-spins 10µs per idle invocation, mimicking the paper's
// synthetic work methods, and optionally participates in a continuous
// reduction cycle.
type workHandler struct {
	methodDuration time.Duration
	methods        int64

	withReductions bool
	cycleDelay     time.Duration
	reductions     int64 // root only
	stopped        atomic.Bool

	// Handlers are small heap objects allocated back-to-back at Start, so
	// without padding two PEs' method counters can land on one cache line
	// and skew the very contention this benchmark measures.
	_ [64]byte
}

type fig3Cycle struct{ epoch int64 }

func (h *workHandler) Deliver(pe *runtime.PE, msg any) {
	switch m := msg.(type) {
	case fig3Cycle:
		pe.Broadcast(m.epoch, nil)
	}
}

// Idle busy-spins for one method duration to occupy the PE.
//
//acic:allow-wallclock the benchmark measures real method occupancy, so the spin must read the wall clock
func (h *workHandler) Idle(pe *runtime.PE) bool {
	deadline := time.Now().Add(h.methodDuration)
	for time.Now().Before(deadline) {
		// Busy spin: the method occupies the PE exactly as real update
		// processing would.
	}
	h.methods++
	// The paper's testbed gives every PE its own core; on a host with
	// fewer cores than PEs the Go scheduler must be handed the boundary
	// between methods explicitly, or a runnable spinner monopolizes its
	// core for a full preemption quantum and the reduction messages crawl.
	goruntime.Gosched()
	return true
}

func (h *workHandler) OnBroadcast(pe *runtime.PE, epoch int64, payload any) {
	pe.Contribute(epoch, int64(1))
}

func (h *workHandler) OnReduction(pe *runtime.PE, epoch int64, value any) {
	if h.stopped.Load() {
		return
	}
	h.reductions++
	rt := pe.Runtime()
	next := epoch + 1
	if h.cycleDelay > 0 {
		time.AfterFunc(h.cycleDelay, func() { rt.Inject(0, fig3Cycle{epoch: next}) })
		return
	}
	rt.Inject(0, fig3Cycle{epoch: next})
}

// fig3Run executes one window and returns total methods and reductions.
func (c Config) fig3Run(pes int, window time.Duration, withReductions bool, cycleDelay time.Duration) (methods, reductions int64, err error) {
	rt, err := runtime.New(runtime.Config{
		Topo:    netsim.SingleNode(pes),
		Latency: c.Latency,
		Combine: func(a, b any) any { return a.(int64) + b.(int64) },
	})
	if err != nil {
		return 0, 0, err
	}
	handlers := make([]*workHandler, pes)
	rt.Start(func(pe *runtime.PE) runtime.Handler {
		h := &workHandler{methodDuration: 10 * time.Microsecond, withReductions: withReductions, cycleDelay: cycleDelay}
		handlers[pe.Index()] = h
		return h
	})
	if withReductions {
		rt.Inject(0, fig3Cycle{epoch: 0})
	}
	timer := time.AfterFunc(window, func() {
		handlers[0].stopped.Store(true)
		rt.RequestExit()
	})
	defer timer.Stop()
	rt.Wait()
	for _, h := range handlers {
		methods += h.methods
	}
	return methods, handlers[0].reductions, nil
}

// Fig3ReductionOverhead measures the per-reduction work loss across PE
// counts. window is the measurement duration per configuration (the paper
// uses 5 seconds; tests use much less).
func (c Config) Fig3ReductionOverhead(peCounts []int, window time.Duration) ([]Fig3Point, error) {
	cycleDelay := 500 * time.Microsecond // ~2000 reductions/s target pace
	var points []Fig3Point
	for _, pes := range peCounts {
		off, _, err := c.fig3Run(pes, window, false, cycleDelay)
		if err != nil {
			return nil, err
		}
		on, reds, err := c.fig3Run(pes, window, true, cycleDelay)
		if err != nil {
			return nil, err
		}
		pt := Fig3Point{PEs: pes, MethodsOff: off, MethodsOn: on, Reductions: reds}
		pt.ReductionsPerSec = float64(reds) / window.Seconds()
		if off > 0 && reds > 0 {
			lossPct := 100 * float64(off-on) / float64(off)
			if lossPct < 0 {
				lossPct = 0 // measurement noise can favor the reduction run
			}
			pt.LossPerReductionPct = lossPct / (pt.ReductionsPerSec * window.Seconds())
		}
		points = append(points, pt)
	}
	return points, nil
}

// Fig3Table renders the overhead study.
func Fig3Table(points []Fig3Point) *collect.Table {
	t := collect.NewTable("Fig 3: reduction overhead (work-method loss per reduction)",
		"PEs", "methods(off)", "methods(on)", "reductions/s", "loss%/reduction")
	for _, p := range points {
		t.AddRow(p.PEs, p.MethodsOff, p.MethodsOn, p.ReductionsPerSec, p.LossPerReductionPct)
	}
	return t
}
