// Package bench defines the experiment harness that regenerates every
// table and figure in the paper's evaluation (§IV). Each Fig* function
// runs the corresponding experiment on the simulated machine and returns
// its data both as a typed result for tests and as a formatted table for
// cmd/sssp-bench.
//
// The paper's runs use scale-26 graphs (2^26 vertices, 2^30 edges) on up to
// 16 Delta/Frontier nodes with ten trials per point; the defaults here are
// scaled to a laptop (scale 12, up to 8 simulated nodes, 3 trials) and are
// overridable through Config. What is expected to reproduce is the *shape*
// of each figure — who wins, roughly by how much, and where the trends
// bend — not absolute numbers, since the substrate is a simulator.
package bench

import (
	"fmt"
	"time"

	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
)

// GraphKind selects one of the evaluation's input graph families.
type GraphKind string

// Graph kinds used across the evaluation.
const (
	// Random is the paper's uniform random, low-diameter graph (§IV-B).
	Random GraphKind = "random"
	// RMAT is the scale-free recursive-matrix graph (§IV-B).
	RMAT GraphKind = "rmat"
	// Road is the high-diameter grid standing in for the GAP Road graph
	// (§V future work).
	Road GraphKind = "road"
)

// Config scales the whole experiment suite.
type Config struct {
	// Scale: graphs have 2^Scale vertices (paper: 26; default here: 12).
	Scale int
	// EdgeFactor: edges = EdgeFactor × 2^Scale (paper: 16).
	EdgeFactor int
	// Trials per data point (paper: 10; default here: 3).
	Trials int
	// Seed is the base seed; trial t of experiment e derives its own
	// stream.
	Seed uint64
	// Nodes are the simulated node counts for scaling experiments
	// (paper: 1..16).
	Nodes []int
	// ProcsPerNode and PEsPerProc shape each simulated node (paper: 8×6).
	ProcsPerNode int
	PEsPerProc   int
	// Latency is the simulated fabric.
	Latency netsim.LatencyModel
	// ComputeCost is the simulated per-unit compute charge (per update
	// received / edge relaxed) applied to every algorithm. It makes per-PE
	// load physical even when the host has fewer cores than the simulation
	// has PEs — without it, a hub-overloaded PE costs nothing and the
	// paper's partition-imbalance effects (§IV-F) disappear.
	ComputeCost time.Duration
	// Verify re-checks every distance vector against Dijkstra (slower).
	Verify bool
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		Scale:        12,
		EdgeFactor:   16,
		Trials:       3,
		Seed:         42,
		Nodes:        []int{1, 2, 4, 8},
		ProcsPerNode: 2,
		PEsPerProc:   2,
		Latency:      netsim.DefaultLatency(),
		ComputeCost:  time.Microsecond,
	}
}

// PaperConfig returns the closest feasible approximation of the paper's
// setup: the full node sweep and per-node shape, ten trials. Scale remains
// memory-bound; 2^18 is the practical laptop ceiling.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Scale = 16
	c.Trials = 10
	c.Nodes = []int{1, 2, 4, 8, 16}
	c.ProcsPerNode = 4
	c.PEsPerProc = 3
	return c
}

// Topo builds the simulated topology for a node count.
func (c Config) Topo(nodes int) netsim.Topology {
	return netsim.Topology{Nodes: nodes, ProcsPerNode: c.ProcsPerNode, PEsPerProc: c.PEsPerProc}
}

// NumVertices returns 2^Scale.
func (c Config) NumVertices() int { return 1 << c.Scale }

// MakeGraph generates the trial-th instance of the given graph kind.
// Different trials use different seeds for both structure and weights,
// matching §IV-C ("different random seeds are used to generate graph
// structures and edge weights for each trial").
func (c Config) MakeGraph(kind GraphKind, trial int) (*graph.Graph, error) {
	seed := c.Seed + uint64(trial)*0x9e3779b9
	cfg := gen.Config{Seed: seed}
	switch kind {
	case Random:
		return gen.Uniform(c.NumVertices(), c.EdgeFactor*c.NumVertices(), cfg), nil
	case RMAT:
		return gen.RMAT(c.Scale, c.EdgeFactor, gen.DefaultRMAT(), cfg), nil
	case Road:
		side := 1 << (c.Scale / 2)
		return gen.Grid(side, side, cfg), nil
	default:
		return nil, fmt.Errorf("bench: unknown graph kind %q", kind)
	}
}
