package bench

import (
	"acic/internal/collect"
	"acic/internal/delta2d"
	"acic/internal/deltastep"
)

// PartitionPoint measures one Δ-stepping partitioning strategy.
type PartitionPoint struct {
	Layout  string
	Kind    GraphKind
	Runtime collect.Sample
	Updates collect.Sample
}

// PartitionLayouts contrasts the three Δ-stepping partitionings on both
// graph families: the naive vertex-balanced 1-D blocks, the edge-balanced
// 1-D blocks this repository uses as the default baseline, and the true
// 2-D adjacency-matrix grid of the RIKEN code (§IV-A, §V). On RMAT the
// vertex-balanced layout concentrates hub edges on one PE and should lose.
func (c Config) PartitionLayouts(nodes int) ([]PartitionPoint, error) {
	var points []PartitionPoint
	for _, kind := range []GraphKind{Random, RMAT} {
		vertexBal := PartitionPoint{Layout: "1D-vertex", Kind: kind}
		edgeBal := PartitionPoint{Layout: "1D-edge", Kind: kind}
		twoD := PartitionPoint{Layout: "2D-grid", Kind: kind}
		for trial := 0; trial < c.Trials; trial++ {
			g, err := c.MakeGraph(kind, trial)
			if err != nil {
				return nil, err
			}

			pv := c.deltaParams()
			pv.EdgeBalanced = false
			rv, err := deltastep.Run(g, 0, deltastep.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: pv})
			if err != nil {
				return nil, err
			}
			if err := c.verifyDist(g, 0, rv.Dist, "deltastep-1dv"); err != nil {
				return nil, err
			}
			vertexBal.Runtime.Add(rv.Stats.Elapsed.Seconds())
			vertexBal.Updates.Add(float64(rv.Stats.Relaxations))

			pe := c.deltaParams()
			re, err := deltastep.Run(g, 0, deltastep.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: pe})
			if err != nil {
				return nil, err
			}
			if err := c.verifyDist(g, 0, re.Dist, "deltastep-1de"); err != nil {
				return nil, err
			}
			edgeBal.Runtime.Add(re.Stats.Elapsed.Seconds())
			edgeBal.Updates.Add(float64(re.Stats.Relaxations))

			p2 := delta2d.DefaultParams()
			p2.ComputeCost = c.ComputeCost
			r2, err := delta2d.Run(g, 0, delta2d.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: p2})
			if err != nil {
				return nil, err
			}
			if err := c.verifyDist(g, 0, r2.Dist, "delta2d"); err != nil {
				return nil, err
			}
			twoD.Runtime.Add(r2.Stats.Elapsed.Seconds())
			twoD.Updates.Add(float64(r2.Stats.Relaxations))
		}
		points = append(points, vertexBal, edgeBal, twoD)
	}
	return points, nil
}

// PartitionTable renders the partitioning ablation.
func PartitionTable(points []PartitionPoint) *collect.Table {
	t := collect.NewTable("Δ-stepping partitioning: 1-D vertex vs 1-D edge vs 2-D grid (§IV-A/§V)",
		"graph", "layout", "runtime_s(mean)", "relaxations(mean)")
	for _, p := range points {
		t.AddRow(string(p.Kind), p.Layout, p.Runtime.Mean(), p.Updates.Mean())
	}
	return t
}
