package bench

import (
	"fmt"

	"acic/internal/collect"
	"acic/internal/core"
	"acic/internal/deltastep"
	"acic/internal/distctrl"
	"acic/internal/graph"
	"acic/internal/kla"
	"acic/internal/seq"
	"acic/internal/tram"
)

// verifyDist cross-checks a distance vector against Dijkstra when
// Config.Verify is set.
func (c Config) verifyDist(g *graph.Graph, source int, dist []float64, algo string) error {
	if !c.Verify {
		return nil
	}
	want := seq.Dijkstra(g, source)
	if !seq.Equal(dist, want.Dist) {
		i := seq.FirstMismatch(dist, want.Dist)
		return fmt.Errorf("bench: %s produced wrong distance at vertex %d", algo, i)
	}
	return nil
}

// acicParams returns ACIC's tuned defaults with the suite's compute model.
func (c Config) acicParams() core.Params {
	p := core.DefaultParams()
	p.ComputeCost = c.ComputeCost
	return p
}

// deltaParams returns the hybrid Δ-stepping defaults with the suite's
// compute model.
func (c Config) deltaParams() deltastep.Params {
	p := deltastep.DefaultParams()
	p.ComputeCost = c.ComputeCost
	return p
}

// runACIC executes one ACIC trial and returns its runtime in seconds.
func (c Config) runACIC(g *graph.Graph, nodes int, p core.Params) (float64, error) {
	sec, _, err := c.runACICWithUpdates(g, nodes, p)
	return sec, err
}

// runACICWithUpdates executes one ACIC trial and returns runtime plus the
// created-update count.
func (c Config) runACICWithUpdates(g *graph.Graph, nodes int, p core.Params) (float64, int64, error) {
	res, err := core.Run(g, 0, core.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: p})
	if err != nil {
		return 0, 0, err
	}
	if err := c.verifyDist(g, 0, res.Dist, "acic"); err != nil {
		return 0, 0, err
	}
	return res.Stats.Elapsed.Seconds(), res.Stats.UpdatesCreated, nil
}

// --- Fig. 1: aggregated histogram snapshot ---

// Fig1Result carries the histogram snapshot reproducing Fig. 1: the merged
// global histogram mid-run on a one-node RMAT graph with p_tram = 0.1.
type Fig1Result struct {
	Snapshot core.HistSnapshot
	// PeakActive is the maximum active-update count over the run; the
	// returned snapshot is the one recorded at that moment.
	PeakActive int64
	// LowestNonEmpty is the lowest bucket still holding updates in the
	// snapshot (72 in the paper's example).
	LowestNonEmpty int
}

// Fig1Histogram reproduces Fig. 1.
func (c Config) Fig1Histogram() (*Fig1Result, error) {
	g, err := c.MakeGraph(RMAT, 0)
	if err != nil {
		return nil, err
	}
	p := c.acicParams()
	p.PTram = 0.1 // the figure's caption: p_tram = 0.1
	p.HistogramTrace = true
	res, err := core.Run(g, 0, core.Options{Topo: c.Topo(1), Latency: c.Latency, Params: p})
	if err != nil {
		return nil, err
	}
	if err := c.verifyDist(g, 0, res.Dist, "acic"); err != nil {
		return nil, err
	}
	if len(res.Stats.HistTrace) == 0 {
		return nil, fmt.Errorf("bench: no histogram snapshots recorded")
	}
	out := &Fig1Result{}
	for _, snap := range res.Stats.HistTrace {
		if snap.Active > out.PeakActive {
			out.PeakActive = snap.Active
			out.Snapshot = snap
		}
	}
	out.LowestNonEmpty = -1
	for i, b := range out.Snapshot.Buckets {
		if b > 0 {
			out.LowestNonEmpty = i
			break
		}
	}
	return out, nil
}

// Table renders the snapshot's non-empty bucket range.
func (r *Fig1Result) Table() *collect.Table {
	t := collect.NewTable(
		fmt.Sprintf("Fig 1: global update histogram at peak (epoch %d, %d active, t_tram=%d, t_pq=%d, lowest=%d)",
			r.Snapshot.Epoch, r.Snapshot.Active, r.Snapshot.TTram, r.Snapshot.TPQ, r.LowestNonEmpty),
		"bucket", "updates")
	lo, hi := -1, -1
	for i, b := range r.Snapshot.Buckets {
		if b > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	for i := lo; i >= 0 && i <= hi; i++ {
		t.AddRow(i, r.Snapshot.Buckets[i])
	}
	return t
}

// --- Fig. 4 / Fig. 5: percentile sweeps ---

// SweepPoint is one (parameter value, mean runtime) pair.
type SweepPoint struct {
	Value   float64
	Runtime collect.Sample
	Updates collect.Sample
}

// PaperPercentiles returns the sweep values of §IV-E: 0.05 steps from 0.05
// to 0.95, plus the endpoint 0.999.
func PaperPercentiles() []float64 {
	var vals []float64
	for v := 0.05; v < 0.96; v += 0.05 {
		vals = append(vals, float64(int(v*100+0.5))/100)
	}
	return append(vals, 0.999)
}

// QuickPercentiles is the abbreviated sweep for fast runs.
func QuickPercentiles() []float64 { return []float64{0.05, 0.25, 0.5, 0.75, 0.999} }

// Fig4TramPercentile sweeps p_tram on the one-node random graph (Fig. 4);
// the paper finds the optimum at 0.999.
func (c Config) Fig4TramPercentile(values []float64) ([]SweepPoint, error) {
	return c.sweepPercentile(values, func(p *core.Params, v float64) { p.PTram = v })
}

// Fig5PQPercentile sweeps p_pq (Fig. 5); the paper finds the optimum at
// 0.05.
func (c Config) Fig5PQPercentile(values []float64) ([]SweepPoint, error) {
	return c.sweepPercentile(values, func(p *core.Params, v float64) { p.PPQ = v })
}

func (c Config) sweepPercentile(values []float64, set func(*core.Params, float64)) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(values))
	sc := &core.Scratch{} // same shape every trial: recycle run state
	for _, v := range values {
		pt := SweepPoint{Value: v}
		for trial := 0; trial < c.Trials; trial++ {
			g, err := c.MakeGraph(Random, trial)
			if err != nil {
				return nil, err
			}
			p := c.acicParams()
			set(&p, v)
			res, err := core.Run(g, 0, core.Options{Topo: c.Topo(1), Latency: c.Latency, Params: p, Scratch: sc})
			if err != nil {
				return nil, err
			}
			if err := c.verifyDist(g, 0, res.Dist, "acic"); err != nil {
				return nil, err
			}
			pt.Runtime.Add(res.Stats.Elapsed.Seconds())
			pt.Updates.Add(float64(res.Stats.UpdatesCreated))
		}
		points = append(points, pt)
	}
	return points, nil
}

// SweepTable renders a percentile sweep.
func SweepTable(title, param string, points []SweepPoint) *collect.Table {
	t := collect.NewTable(title, param, "runtime_s(mean)", "runtime_s(min)", "updates(mean)")
	for _, p := range points {
		t.AddRow(p.Value, p.Runtime.Mean(), p.Runtime.Min(), p.Updates.Mean())
	}
	return t
}

// --- Fig. 6: tramlib buffer size ---

// BufferPoint is one (buffer size, node count) measurement.
type BufferPoint struct {
	Capacity int
	Nodes    int
	Runtime  collect.Sample
}

// Fig6BufferSize sweeps the tramlib buffer capacity {512, 1024, 2048}
// across node counts on the random graph (Fig. 6): larger buffers win at
// low parallelism, smaller at high.
func (c Config) Fig6BufferSize() ([]BufferPoint, error) {
	var points []BufferPoint
	sc := &core.Scratch{} // reused within each (nodes, capacity) cell
	for _, nodes := range c.Nodes {
		for _, capacity := range tram.SupportedCapacities {
			pt := BufferPoint{Capacity: capacity, Nodes: nodes}
			for trial := 0; trial < c.Trials; trial++ {
				g, err := c.MakeGraph(Random, trial)
				if err != nil {
					return nil, err
				}
				p := c.acicParams()
				p.TramCapacity = capacity
				res, err := core.Run(g, 0, core.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: p, Scratch: sc})
				if err != nil {
					return nil, err
				}
				if err := c.verifyDist(g, 0, res.Dist, "acic"); err != nil {
					return nil, err
				}
				pt.Runtime.Add(res.Stats.Elapsed.Seconds())
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// Fig6Table renders the buffer-size sweep.
func Fig6Table(points []BufferPoint) *collect.Table {
	t := collect.NewTable("Fig 6: tramlib buffer size vs runtime", "nodes", "capacity", "runtime_s(mean)")
	for _, p := range points {
		t.AddRow(p.Nodes, p.Capacity, p.Runtime.Mean())
	}
	return t
}

// --- Figs. 7-9: ACIC vs Δ-stepping ---

// ComparePoint is one (graph kind, node count) comparison between ACIC and
// the hybrid Δ-stepping baseline; Figs. 7, 8 and 9 are three views of the
// same runs.
type ComparePoint struct {
	Kind  GraphKind
	Nodes int
	// Reachable edge count (the TEPS numerator), averaged over trials.
	ReachableEdges collect.Sample
	ACICTime       collect.Sample
	DeltaTime      collect.Sample
	ACICTEPS       collect.Sample
	DeltaTEPS      collect.Sample
	ACICUpdates    collect.Sample
	DeltaUpdates   collect.Sample
}

// CompareACICDelta runs both algorithms over both graph families and the
// configured node counts, producing the raw data behind Figs. 7-9.
func (c Config) CompareACICDelta() ([]ComparePoint, error) {
	var points []ComparePoint
	sc := &core.Scratch{}
	for _, kind := range []GraphKind{Random, RMAT} {
		for _, nodes := range c.Nodes {
			pt := ComparePoint{Kind: kind, Nodes: nodes}
			for trial := 0; trial < c.Trials; trial++ {
				g, err := c.MakeGraph(kind, trial)
				if err != nil {
					return nil, err
				}
				_, reach := g.ReachableFrom(0)
				pt.ReachableEdges.Add(float64(reach))

				ar, err := core.Run(g, 0, core.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: c.acicParams(), Scratch: sc})
				if err != nil {
					return nil, err
				}
				if err := c.verifyDist(g, 0, ar.Dist, "acic"); err != nil {
					return nil, err
				}
				pt.ACICTime.Add(ar.Stats.Elapsed.Seconds())
				pt.ACICTEPS.Add(collect.TEPS(reach, ar.Stats.Elapsed))
				pt.ACICUpdates.Add(float64(ar.Stats.UpdatesCreated))

				dr, err := deltastep.Run(g, 0, deltastep.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: c.deltaParams()})
				if err != nil {
					return nil, err
				}
				if err := c.verifyDist(g, 0, dr.Dist, "deltastep"); err != nil {
					return nil, err
				}
				pt.DeltaTime.Add(dr.Stats.Elapsed.Seconds())
				pt.DeltaTEPS.Add(collect.TEPS(reach, dr.Stats.Elapsed))
				pt.DeltaUpdates.Add(float64(dr.Stats.Relaxations))
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// Fig7Table renders execution times (Fig. 7).
func Fig7Table(points []ComparePoint) *collect.Table {
	t := collect.NewTable("Fig 7: execution time, ACIC vs hybrid Δ-stepping",
		"graph", "nodes", "acic_s", "delta_s", "acic/delta speedup")
	for _, p := range points {
		t.AddRow(string(p.Kind), p.Nodes, p.ACICTime.Mean(), p.DeltaTime.Mean(),
			collect.Speedup(p.DeltaTime.Mean(), p.ACICTime.Mean()))
	}
	return t
}

// Fig8Table renders TEPS (Fig. 8).
func Fig8Table(points []ComparePoint) *collect.Table {
	t := collect.NewTable("Fig 8: traversed edges per second",
		"graph", "nodes", "acic_teps", "delta_teps")
	for _, p := range points {
		t.AddRow(string(p.Kind), p.Nodes, p.ACICTEPS.Mean(), p.DeltaTEPS.Mean())
	}
	return t
}

// Fig9Table renders update counts (Fig. 9).
func Fig9Table(points []ComparePoint) *collect.Table {
	t := collect.NewTable("Fig 9: updates (edge relaxations) created",
		"graph", "nodes", "acic_updates", "delta_updates", "acic fewer by")
	for _, p := range points {
		a, d := p.ACICUpdates.Mean(), p.DeltaUpdates.Mean()
		pct := "n/a"
		if d > 0 {
			pct = fmt.Sprintf("%.1f%%", 100*(d-a)/d)
		}
		t.AddRow(string(p.Kind), p.Nodes, a, d, pct)
	}
	return t
}

// --- §IV-E prose: aggregation mode comparison ---

// ModePoint measures one tramlib aggregation mode.
type ModePoint struct {
	Mode    tram.Mode
	Runtime collect.Sample
}

// AggregationModes compares PP/WP/WW/PW on the random graph; the paper
// reports WP as the best choice for SSSP.
func (c Config) AggregationModes(nodes int) ([]ModePoint, error) {
	var points []ModePoint
	sc := &core.Scratch{}
	for _, mode := range []tram.Mode{tram.PP, tram.WP, tram.WW, tram.PW} {
		pt := ModePoint{Mode: mode}
		for trial := 0; trial < c.Trials; trial++ {
			g, err := c.MakeGraph(Random, trial)
			if err != nil {
				return nil, err
			}
			p := c.acicParams()
			p.TramMode = mode
			res, err := core.Run(g, 0, core.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: p, Scratch: sc})
			if err != nil {
				return nil, err
			}
			if err := c.verifyDist(g, 0, res.Dist, "acic"); err != nil {
				return nil, err
			}
			pt.Runtime.Add(res.Stats.Elapsed.Seconds())
		}
		points = append(points, pt)
	}
	return points, nil
}

// ModesTable renders the aggregation-mode comparison.
func ModesTable(points []ModePoint) *collect.Table {
	t := collect.NewTable("Aggregation modes (paper: WP best for SSSP)", "mode", "runtime_s(mean)")
	for _, p := range points {
		t.AddRow(p.Mode.String(), p.Runtime.Mean())
	}
	return t
}

// --- Ablations: distributed control and KLA ---

// AblationPoint compares ACIC with one alternative on one graph kind.
type AblationPoint struct {
	Kind    GraphKind
	Algo    string
	Runtime collect.Sample
	Updates collect.Sample
}

// Ablations runs ACIC, distributed control (ACIC minus introspection) and
// KLA on both graph families at the given node count.
func (c Config) Ablations(nodes int) ([]AblationPoint, error) {
	var points []AblationPoint
	for _, kind := range []GraphKind{Random, RMAT} {
		acic := AblationPoint{Kind: kind, Algo: "acic"}
		dc := AblationPoint{Kind: kind, Algo: "distctrl"}
		kl := AblationPoint{Kind: kind, Algo: "kla"}
		for trial := 0; trial < c.Trials; trial++ {
			g, err := c.MakeGraph(kind, trial)
			if err != nil {
				return nil, err
			}
			ar, err := core.Run(g, 0, core.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: c.acicParams()})
			if err != nil {
				return nil, err
			}
			acic.Runtime.Add(ar.Stats.Elapsed.Seconds())
			acic.Updates.Add(float64(ar.Stats.UpdatesCreated))

			dp := distctrl.DefaultParams()
			dp.ComputeCost = c.ComputeCost
			dr, err := distctrl.Run(g, 0, distctrl.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: dp})
			if err != nil {
				return nil, err
			}
			if err := c.verifyDist(g, 0, dr.Dist, "distctrl"); err != nil {
				return nil, err
			}
			dc.Runtime.Add(dr.Stats.Elapsed.Seconds())
			dc.Updates.Add(float64(dr.Stats.UpdatesCreated))

			kp := kla.DefaultParams()
			kp.ComputeCost = c.ComputeCost
			kr, err := kla.Run(g, 0, kla.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: kp})
			if err != nil {
				return nil, err
			}
			if err := c.verifyDist(g, 0, kr.Dist, "kla"); err != nil {
				return nil, err
			}
			kl.Runtime.Add(kr.Stats.Elapsed.Seconds())
			kl.Updates.Add(float64(kr.Stats.Relaxations))
		}
		points = append(points, acic, dc, kl)
	}
	return points, nil
}

// AblationsTable renders the ablation comparison.
func AblationsTable(points []AblationPoint) *collect.Table {
	t := collect.NewTable("Ablations: ACIC vs distributed control vs KLA",
		"graph", "algorithm", "runtime_s(mean)", "updates(mean)")
	for _, p := range points {
		t.AddRow(string(p.Kind), p.Algo, p.Runtime.Mean(), p.Updates.Mean())
	}
	return t
}

// --- §V: high-diameter road graph ---

// RoadPoint compares asynchronous ACIC with Δ-stepping variants on the
// road-style grid.
type RoadPoint struct {
	Algo    string
	Runtime collect.Sample
	Syncs   collect.Sample // supersteps for the synchronous algorithms
}

// RoadGraph runs the §V experiment: on a high-diameter graph the
// synchronous algorithm needs one barrier per bucket, so the asynchronous
// approach should close or invert the RMAT gap.
func (c Config) RoadGraph(nodes int) ([]RoadPoint, error) {
	acic := RoadPoint{Algo: "acic"}
	hybrid := RoadPoint{Algo: "delta-hybrid"}
	pure := RoadPoint{Algo: "delta-pure"}
	for trial := 0; trial < c.Trials; trial++ {
		g, err := c.MakeGraph(Road, trial)
		if err != nil {
			return nil, err
		}
		ar, err := core.Run(g, 0, core.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: c.acicParams()})
		if err != nil {
			return nil, err
		}
		if err := c.verifyDist(g, 0, ar.Dist, "acic"); err != nil {
			return nil, err
		}
		acic.Runtime.Add(ar.Stats.Elapsed.Seconds())
		acic.Syncs.Add(0)

		hp := c.deltaParams()
		hr, err := deltastep.Run(g, 0, deltastep.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: hp})
		if err != nil {
			return nil, err
		}
		hybrid.Runtime.Add(hr.Stats.Elapsed.Seconds())
		hybrid.Syncs.Add(float64(hr.Stats.Supersteps))

		pp := c.deltaParams()
		pp.Hybrid = false
		pr, err := deltastep.Run(g, 0, deltastep.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: pp})
		if err != nil {
			return nil, err
		}
		pure.Runtime.Add(pr.Stats.Elapsed.Seconds())
		pure.Syncs.Add(float64(pr.Stats.Supersteps))
	}
	return []RoadPoint{acic, hybrid, pure}, nil
}

// RoadTable renders the road-graph experiment.
func RoadTable(points []RoadPoint) *collect.Table {
	t := collect.NewTable("§V: high-diameter road grid", "algorithm", "runtime_s(mean)", "global syncs(mean)")
	for _, p := range points {
		t.AddRow(p.Algo, p.Runtime.Mean(), p.Syncs.Mean())
	}
	return t
}
