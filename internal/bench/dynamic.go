package bench

// The dynamic-graph experiment: when does incremental repair beat full
// recompute? One evolving Random graph absorbs seeded mutation batches of
// increasing size; after each batch the maintained distance vector is
// repaired in place (dynamic.Repair) and, separately, recomputed from
// scratch over the same adjacency (dynamic.SSSP) — same data structure,
// same heap, so the comparison isolates the algorithmic difference. The
// expected shape: repair wins by orders of magnitude on small batches and
// the gap narrows as batches grow, since a large enough batch invalidates
// most of the tree and repair degenerates into recompute plus bookkeeping.

import (
	"fmt"
	"time"

	"acic/internal/collect"
	"acic/internal/dynamic"
	"acic/internal/seq"
	"acic/internal/xrand"
)

// DynPoint is one batch size's aggregate over several mutation batches.
type DynPoint struct {
	// Batch is the mutations per batch.
	Batch int
	// RepairMS and RecomputeMS are mean wall milliseconds per batch for
	// incremental repair vs full Dijkstra recompute.
	RepairMS    float64
	RecomputeMS float64
	// Speedup is RecomputeMS / RepairMS.
	Speedup float64
	// Invalidated is the mean number of labels discarded per repair.
	Invalidated float64
}

// DynamicRepair sweeps mutation batch sizes on the Random graph at
// c.Scale, measuring incremental repair against full recompute. With
// c.Verify every repaired vector is also oracle-checked against a
// sequential Dijkstra of the post-batch snapshot.
//
//acic:allow-wallclock the figure reports real repair vs recompute latency, so both passes are timed on the wall clock
func (c Config) DynamicRepair() ([]DynPoint, error) {
	g, err := c.MakeGraph(Random, 0)
	if err != nil {
		return nil, err
	}
	dg := dynamic.FromCSR(g)
	const source = 0
	dist, parent := dg.SSSP(source)
	r := xrand.New(c.Seed)
	bg := dynamic.NewBatchGen(dg, r, 100)

	batchesPerPoint := c.Trials
	if batchesPerPoint < 3 {
		batchesPerPoint = 3
	}
	sizes := []int{1, 4, 16, 64, 256}
	out := make([]DynPoint, 0, len(sizes))
	for _, size := range sizes {
		pt := DynPoint{Batch: size}
		for b := 0; b < batchesPerPoint; b++ {
			batch := bg.Next(size)
			d, err := dg.Apply(batch)
			if err != nil {
				return nil, fmt.Errorf("bench: dynamic: %w", err)
			}

			start := time.Now()
			st := dg.Repair(source, dist, parent, d)
			pt.RepairMS += float64(time.Since(start).Nanoseconds()) / 1e6
			pt.Invalidated += float64(st.Invalidated)

			start = time.Now()
			fullDist, _ := dg.SSSP(source)
			pt.RecomputeMS += float64(time.Since(start).Nanoseconds()) / 1e6

			if i := seq.FirstMismatch(fullDist, dist); i >= 0 {
				return nil, fmt.Errorf("bench: dynamic: batch %d repair diverged from recompute at dist[%d]: %g vs %g",
					size, i, dist[i], fullDist[i])
			}
			if c.Verify {
				want := seq.Dijkstra(dg.Snapshot(), source)
				if i := seq.FirstMismatch(want.Dist, dist); i >= 0 {
					return nil, fmt.Errorf("bench: dynamic: batch %d oracle mismatch at dist[%d]: %g want %g",
						size, i, dist[i], want.Dist[i])
				}
			}
		}
		n := float64(batchesPerPoint)
		pt.RepairMS /= n
		pt.RecomputeMS /= n
		pt.Invalidated /= n
		if pt.RepairMS > 0 {
			pt.Speedup = pt.RecomputeMS / pt.RepairMS
		}
		out = append(out, pt)
	}
	return out, nil
}

// DynTable renders the dynamic-repair sweep.
func DynTable(points []DynPoint) *collect.Table {
	t := collect.NewTable(
		"Dynamic graphs: incremental repair vs full recompute per mutation batch",
		"batch", "repair", "recompute", "speedup", "invalidated")
	for _, p := range points {
		t.AddRow(p.Batch,
			time.Duration(p.RepairMS*float64(time.Millisecond)).Round(time.Microsecond),
			time.Duration(p.RecomputeMS*float64(time.Millisecond)).Round(time.Microsecond),
			fmt.Sprintf("%.1fx", p.Speedup),
			fmt.Sprintf("%.1f", p.Invalidated))
	}
	return t
}
