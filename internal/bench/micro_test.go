// Micro and end-to-end benchmarks for the messaging hot path. The three
// component microbenchmarks (BenchmarkMailbox, BenchmarkNetsimSend,
// BenchmarkTramInsertFlush) live next to the unexported types they
// exercise in internal/runtime, internal/netsim and internal/tram; this
// file holds the end-to-end composition. scripts/bench.sh runs all four
// with run-to-run variance validation and writes a JSON record.
package bench

import (
	"testing"

	"acic/internal/core"
	"acic/internal/netsim"
)

// BenchmarkHotPathSSSP runs one complete ACIC SSSP execution per iteration
// on a small random graph with realistic tiered latency and no simulated
// compute cost, so wall time and allocations are dominated by the
// messaging plumbing (mailboxes, netsim, tram) rather than by Work sleeps.
func BenchmarkHotPathSSSP(b *testing.B) {
	c := DefaultConfig()
	c.Scale = 10
	c.EdgeFactor = 8
	c.ComputeCost = 0
	c.Latency = netsim.DefaultLatency()
	g, err := c.MakeGraph(Random, 0)
	if err != nil {
		b.Fatal(err)
	}
	p := c.acicParams()
	p.ComputeCost = 0
	topo := c.Topo(1)
	// One Scratch for all iterations: steady-state runs recycle the chunk
	// arena, contribution pool and per-PE state instead of reallocating.
	sc := &core.Scratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(g, 0, core.Options{Topo: topo, Latency: c.Latency, Params: p, Scratch: sc}); err != nil {
			b.Fatal(err)
		}
	}
}
