package bench

import (
	"acic/internal/core"
	"acic/internal/metrics"
	"acic/internal/trace"
)

// Artifacts is one instrumented ACIC run's full observability capture: the
// scheduling timeline (exportable as a Chrome/Perfetto trace), the metrics
// registry snapshot, and the per-reduction threshold audit. sssp-bench
// writes these next to the figure tables so a sweep's headline numbers can
// be cross-examined against what the machine actually did.
type Artifacts struct {
	Trace   *trace.Recorder
	Metrics metrics.Snapshot
	Audit   []core.ThresholdAudit
}

// CaptureArtifacts runs one fully instrumented ACIC trial on the suite's
// RMAT graph at the given node count with the tuned parameters, and
// returns the three artifacts. The run is additional to (and independent
// of) any figure experiment.
func (c Config) CaptureArtifacts(nodes int) (*Artifacts, error) {
	g, err := c.MakeGraph(RMAT, 0)
	if err != nil {
		return nil, err
	}
	topo := c.Topo(nodes)
	p := c.acicParams()
	p.AuditTrace = true
	reg := metrics.New(topo.TotalPEs())
	rec := trace.New(topo.TotalPEs(), 1<<16)
	res, err := core.Run(g, 0, core.Options{
		Topo:    topo,
		Latency: c.Latency,
		Params:  p,
		Trace:   rec,
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	if err := c.verifyDist(g, 0, res.Dist, "acic"); err != nil {
		return nil, err
	}
	return &Artifacts{
		Trace:   rec,
		Metrics: reg.Snapshot(),
		Audit:   res.Stats.AuditTrace,
	}, nil
}
