package bench

import (
	"strings"
	"testing"
	"time"

	"acic/internal/netsim"
)

// tinyConfig keeps unit-test experiment runs fast while still exercising
// every code path; nightly/benchmark runs use DefaultConfig or PaperConfig.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Scale = 9
	c.EdgeFactor = 8
	c.Trials = 1
	c.Nodes = []int{1, 2}
	c.Verify = true
	c.Latency = netsim.LatencyModel{
		IntraProcess: 500 * time.Nanosecond,
		IntraNode:    2 * time.Microsecond,
		InterNode:    8 * time.Microsecond,
		PerItem:      5 * time.Nanosecond,
	}
	return c
}

func TestConfigDefaults(t *testing.T) {
	c := DefaultConfig()
	if c.NumVertices() != 1<<12 {
		t.Errorf("NumVertices = %d", c.NumVertices())
	}
	topo := c.Topo(4)
	if topo.Nodes != 4 || topo.TotalPEs() != 16 {
		t.Errorf("Topo(4) = %+v", topo)
	}
	p := PaperConfig()
	if p.Trials != 10 || len(p.Nodes) != 5 {
		t.Errorf("PaperConfig = %+v", p)
	}
}

func TestMakeGraphKinds(t *testing.T) {
	c := tinyConfig()
	for _, kind := range []GraphKind{Random, RMAT, Road} {
		g, err := c.MakeGraph(kind, 0)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", kind)
		}
	}
	if _, err := c.MakeGraph("nope", 0); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMakeGraphTrialsDiffer(t *testing.T) {
	c := tinyConfig()
	a, _ := c.MakeGraph(Random, 0)
	b, _ := c.MakeGraph(Random, 1)
	ae, be := a.Edges(), b.Edges()
	same := true
	for i := range ae {
		if ae[i] != be[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("trials 0 and 1 produced identical graphs")
	}
}

func TestFig1Histogram(t *testing.T) {
	c := tinyConfig()
	r, err := c.Fig1Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakActive <= 0 {
		t.Error("no active updates observed")
	}
	if r.LowestNonEmpty < 0 {
		t.Error("peak snapshot has no occupied buckets")
	}
	tb := r.Table()
	if tb.NumRows() == 0 {
		t.Error("Fig 1 table empty")
	}
	if !strings.Contains(tb.String(), "t_tram") {
		t.Error("table title missing thresholds")
	}
}

func TestFig3ReductionOverhead(t *testing.T) {
	c := tinyConfig()
	points, err := c.Fig3ReductionOverhead([]int{2, 4}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.MethodsOff == 0 || p.MethodsOn == 0 {
			t.Errorf("PEs=%d: no methods executed: %+v", p.PEs, p)
		}
		if p.Reductions == 0 {
			t.Errorf("PEs=%d: no reductions completed", p.PEs)
		}
		// The paper's point: overhead per reduction is tiny (< 1%).
		if p.LossPerReductionPct > 1.0 {
			t.Errorf("PEs=%d: loss per reduction %.3f%% implausibly high", p.PEs, p.LossPerReductionPct)
		}
	}
	if Fig3Table(points).NumRows() != 2 {
		t.Error("Fig 3 table wrong size")
	}
}

func TestFig4And5Sweeps(t *testing.T) {
	c := tinyConfig()
	vals := []float64{0.05, 0.999}
	p4, err := c.Fig4TramPercentile(vals)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := c.Fig5PQPercentile(vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(p4) != 2 || len(p5) != 2 {
		t.Fatal("wrong sweep sizes")
	}
	for _, p := range append(p4, p5...) {
		if p.Runtime.N() != c.Trials || p.Runtime.Mean() <= 0 {
			t.Errorf("bad sweep point %+v", p)
		}
	}
	if SweepTable("t", "p", p4).NumRows() != 2 {
		t.Error("sweep table wrong size")
	}
}

func TestPercentileLists(t *testing.T) {
	paper := PaperPercentiles()
	if len(paper) != 20 {
		t.Errorf("PaperPercentiles has %d values, want 20", len(paper))
	}
	if paper[0] != 0.05 || paper[len(paper)-1] != 0.999 {
		t.Errorf("endpoints = %v, %v", paper[0], paper[len(paper)-1])
	}
	if len(QuickPercentiles()) == 0 {
		t.Error("QuickPercentiles empty")
	}
}

func TestFig6BufferSize(t *testing.T) {
	c := tinyConfig()
	points, err := c.Fig6BufferSize()
	if err != nil {
		t.Fatal(err)
	}
	// 2 node counts × 3 capacities.
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	if Fig6Table(points).NumRows() != 6 {
		t.Error("Fig 6 table wrong size")
	}
}

func TestCompareACICDelta(t *testing.T) {
	c := tinyConfig()
	points, err := c.CompareACICDelta()
	if err != nil {
		t.Fatal(err)
	}
	// 2 kinds × 2 node counts.
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	for _, p := range points {
		if p.ACICTime.Mean() <= 0 || p.DeltaTime.Mean() <= 0 {
			t.Errorf("%s/%d: non-positive runtimes", p.Kind, p.Nodes)
		}
		if p.ACICUpdates.Mean() <= 0 || p.DeltaUpdates.Mean() <= 0 {
			t.Errorf("%s/%d: missing update counts", p.Kind, p.Nodes)
		}
		if p.ACICTEPS.Mean() <= 0 || p.DeltaTEPS.Mean() <= 0 {
			t.Errorf("%s/%d: missing TEPS", p.Kind, p.Nodes)
		}
	}
	for _, tb := range []*struct {
		name string
		rows int
	}{} {
		_ = tb
	}
	if Fig7Table(points).NumRows() != 4 || Fig8Table(points).NumRows() != 4 || Fig9Table(points).NumRows() != 4 {
		t.Error("figure tables wrong size")
	}
}

func TestAggregationModes(t *testing.T) {
	c := tinyConfig()
	points, err := c.AggregationModes(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	if ModesTable(points).NumRows() != 4 {
		t.Error("modes table wrong size")
	}
}

func TestAblations(t *testing.T) {
	c := tinyConfig()
	points, err := c.Ablations(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 { // 2 kinds × 3 algorithms
		t.Fatalf("points = %d, want 6", len(points))
	}
	if AblationsTable(points).NumRows() != 6 {
		t.Error("ablations table wrong size")
	}
}

func TestOverDecompositionAblation(t *testing.T) {
	c := tinyConfig()
	points, err := c.OverDecomposition(1, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // 2 kinds × 2 factors
		t.Fatalf("points = %d, want 4", len(points))
	}
	if ODTable(points).NumRows() != 4 {
		t.Error("OD table wrong size")
	}
}

func TestThresholdPoliciesAblation(t *testing.T) {
	c := tinyConfig()
	points, err := c.ThresholdPolicies(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // 2 kinds × 2 policies
		t.Fatalf("points = %d, want 4", len(points))
	}
	if PolicyTable(points).NumRows() != 4 {
		t.Error("policy table wrong size")
	}
}

func TestPartitionLayoutsAblation(t *testing.T) {
	c := tinyConfig()
	points, err := c.PartitionLayouts(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 { // 2 kinds × 3 layouts
		t.Fatalf("points = %d, want 6", len(points))
	}
	if PartitionTable(points).NumRows() != 6 {
		t.Error("partition table wrong size")
	}
}

func TestDeltaPoliciesAblation(t *testing.T) {
	c := tinyConfig()
	points, err := c.DeltaPolicies(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	if points[0].Delta <= points[1].Delta {
		t.Errorf("coarse Δ %.1f not above work-optimal %.1f", points[0].Delta, points[1].Delta)
	}
	// The dial the paper describes: the coarse policy must do at least as
	// many relaxations (more speculation).
	if points[0].Updates.Mean() < points[1].Updates.Mean() {
		t.Errorf("coarse Δ did fewer relaxations (%.0f) than work-optimal (%.0f)",
			points[0].Updates.Mean(), points[1].Updates.Mean())
	}
	if DeltaTable(points).NumRows() != 2 {
		t.Error("delta table wrong size")
	}
}

func TestRoadGraph(t *testing.T) {
	c := tinyConfig()
	points, err := c.RoadGraph(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	// The synchronous algorithms must report synchronizations; ACIC none.
	for _, p := range points {
		switch p.Algo {
		case "acic":
			if p.Syncs.Mean() != 0 {
				t.Error("ACIC reported synchronizations")
			}
		default:
			if p.Syncs.Mean() <= 0 {
				t.Errorf("%s reported no synchronizations", p.Algo)
			}
		}
	}
	if RoadTable(points).NumRows() != 3 {
		t.Error("road table wrong size")
	}
}
