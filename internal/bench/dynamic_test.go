package bench

import (
	"strings"
	"testing"
)

func TestDynamicRepair(t *testing.T) {
	c := tinyConfig()
	points, err := c.DynamicRepair()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.RepairMS < 0 || p.RecomputeMS <= 0 {
			t.Errorf("batch %d: nonpositive timings %+v", p.Batch, p)
		}
		if p.Speedup <= 0 {
			t.Errorf("batch %d: speedup %g", p.Batch, p.Speedup)
		}
	}
	if points[0].Batch != 1 || points[len(points)-1].Batch != 256 {
		t.Errorf("batch sweep wrong: %+v", points)
	}
	table := DynTable(points).String()
	if !strings.Contains(table, "repair") || !strings.Contains(table, "speedup") {
		t.Errorf("table missing columns:\n%s", table)
	}
}
