package bench

import (
	"fmt"

	"acic/internal/collect"
	"acic/internal/deltastep"
)

// The ablations in this file measure the future-work ideas of §V and the
// design decisions DESIGN.md calls out, beyond the paper's own figures.

// ODPoint measures one over-decomposition factor.
type ODPoint struct {
	Factor  int
	Kind    GraphKind
	Runtime collect.Sample
}

// OverDecomposition measures ACIC with chunked round-robin partitioning
// (§V) at several chunks-per-PE factors, on both graph families. Factor 1
// is the paper's plain 1-D blocks; RMAT should gain most, since the chunks
// spread hub neighborhoods.
func (c Config) OverDecomposition(nodes int, factors []int) ([]ODPoint, error) {
	var points []ODPoint
	for _, kind := range []GraphKind{Random, RMAT} {
		for _, f := range factors {
			pt := ODPoint{Factor: f, Kind: kind}
			for trial := 0; trial < c.Trials; trial++ {
				g, err := c.MakeGraph(kind, trial)
				if err != nil {
					return nil, err
				}
				p := c.acicParams()
				p.OverDecomposition = f
				res, err := c.runACIC(g, nodes, p)
				if err != nil {
					return nil, err
				}
				pt.Runtime.Add(res)
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// ODTable renders the over-decomposition ablation.
func ODTable(points []ODPoint) *collect.Table {
	t := collect.NewTable("§V over-decomposition: chunks/PE vs runtime",
		"graph", "chunks/PE", "runtime_s(mean)")
	for _, p := range points {
		t.AddRow(string(p.Kind), p.Factor, p.Runtime.Mean())
	}
	return t
}

// PolicyPoint measures one threshold policy.
type PolicyPoint struct {
	Policy  string
	Kind    GraphKind
	Runtime collect.Sample
	Updates collect.Sample
}

// ThresholdPolicies contrasts the paper's two-tier threshold rule
// (Algorithm 1) with the §V smooth histogram-function refinement.
func (c Config) ThresholdPolicies(nodes int) ([]PolicyPoint, error) {
	var points []PolicyPoint
	for _, kind := range []GraphKind{Random, RMAT} {
		for _, smooth := range []bool{false, true} {
			name := "two-tier"
			if smooth {
				name = "smooth"
			}
			pt := PolicyPoint{Policy: name, Kind: kind}
			for trial := 0; trial < c.Trials; trial++ {
				g, err := c.MakeGraph(kind, trial)
				if err != nil {
					return nil, err
				}
				p := c.acicParams()
				p.SmoothThresholds = smooth
				res, upd, err := c.runACICWithUpdates(g, nodes, p)
				if err != nil {
					return nil, err
				}
				pt.Runtime.Add(res)
				pt.Updates.Add(float64(upd))
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// PolicyTable renders the threshold-policy ablation.
func PolicyTable(points []PolicyPoint) *collect.Table {
	t := collect.NewTable("§V threshold policy: two-tier (Alg. 1) vs smooth",
		"graph", "policy", "runtime_s(mean)", "updates(mean)")
	for _, p := range points {
		t.AddRow(string(p.Kind), p.Policy, p.Runtime.Mean(), p.Updates.Mean())
	}
	return t
}

// DeltaPoint measures one Δ choice of the Δ-stepping baseline.
type DeltaPoint struct {
	Label   string
	Delta   float64
	Runtime collect.Sample
	Updates collect.Sample
}

// DeltaPolicies contrasts the coarse runtime-optimal Δ = max-weight the
// baseline defaults to with the Meyer-Sanders work-optimal Δ — the
// parallelism-versus-wasted-work dial the paper describes in §I.
func (c Config) DeltaPolicies(nodes int) ([]DeltaPoint, error) {
	g0, err := c.MakeGraph(Random, 0)
	if err != nil {
		return nil, err
	}
	choices := []DeltaPoint{
		{Label: "coarse (maxW)", Delta: deltastep.HeuristicDelta(g0)},
		{Label: "work-optimal", Delta: deltastep.WorkOptimalDelta(g0)},
	}
	for i := range choices {
		for trial := 0; trial < c.Trials; trial++ {
			g, err := c.MakeGraph(Random, trial)
			if err != nil {
				return nil, err
			}
			p := c.deltaParams()
			p.Delta = choices[i].Delta
			res, err := deltastep.Run(g, 0, deltastep.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: p})
			if err != nil {
				return nil, err
			}
			if err := c.verifyDist(g, 0, res.Dist, "deltastep"); err != nil {
				return nil, err
			}
			choices[i].Runtime.Add(res.Stats.Elapsed.Seconds())
			choices[i].Updates.Add(float64(res.Stats.Relaxations))
		}
	}
	return choices, nil
}

// DeltaTable renders the Δ ablation.
func DeltaTable(points []DeltaPoint) *collect.Table {
	t := collect.NewTable("Δ ablation: parallelism vs wasted work (§I)",
		"Δ policy", "Δ", "runtime_s(mean)", "relaxations(mean)")
	for _, p := range points {
		t.AddRow(p.Label, fmt.Sprintf("%.1f", p.Delta), p.Runtime.Mean(), p.Updates.Mean())
	}
	return t
}
