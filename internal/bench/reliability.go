package bench

// The reliability experiment: what does surviving a lossy fabric cost?
// ACIC runs on the same graph under a sweep of fabric fault profiles with
// the relnet ack/retransmit layer healing them, plus two baselines — the
// bare fabric and the reliability layer idling over a faultless fabric
// (its pure ack/bookkeeping overhead). Every run is oracle-checked, and
// every ledger must balance to zero unaccounted messages.

import (
	"fmt"
	"time"

	"acic/internal/collect"
	"acic/internal/core"
	"acic/internal/relnet"
	"acic/internal/stress"
)

// RelPoint is one fault profile's aggregate over Config.Trials runs.
type RelPoint struct {
	// Label names the row: "baseline" (no relnet), "rel-only" (relnet over
	// a faultless fabric), or a stress fault profile name.
	Label string
	// Seconds is the mean simulated elapsed time.
	Seconds float64
	// Fault-injection and recovery counters, summed over trials.
	Dropped      int64
	Duplicated   int64
	Reordered    int64
	Retransmits  int64
	DupDiscarded int64
	AcksSent     int64
}

// ReliabilityOverhead measures the relnet layer's cost and its recovery
// work across the fault profiles on the Random graph at the given node
// count.
func (c Config) ReliabilityOverhead(nodes int) ([]RelPoint, error) {
	type rowCfg struct {
		label string
		fault stress.Fault
		rel   bool
	}
	rows := []rowCfg{
		{"baseline", stress.FaultNone, false},
		{"rel-only", stress.FaultNone, true},
	}
	for _, f := range stress.Faults() {
		rows = append(rows, rowCfg{string(f), f, true})
	}
	out := make([]RelPoint, 0, len(rows))
	for _, rc := range rows {
		pt := RelPoint{Label: rc.label}
		for trial := 0; trial < c.Trials; trial++ {
			g, err := c.MakeGraph(Random, trial)
			if err != nil {
				return nil, err
			}
			opts := core.Options{Topo: c.Topo(nodes), Latency: c.Latency, Params: c.acicParams()}
			if rc.fault != stress.FaultNone {
				opts.Fault = stress.NewFaultPlan(rc.fault, c.Seed+uint64(trial), opts.Topo)
			}
			if rc.rel {
				opts.Reliability = &relnet.Config{}
			}
			res, err := core.Run(g, 0, opts)
			if err != nil {
				return nil, err
			}
			if err := c.verifyDist(g, 0, res.Dist, "acic/"+rc.label); err != nil {
				return nil, err
			}
			a := res.Stats.Audit
			if u := a.Unaccounted(); u != 0 {
				return nil, fmt.Errorf("bench: %s trial %d: %d messages unaccounted", rc.label, trial, u)
			}
			pt.Seconds += res.Stats.Elapsed.Seconds()
			pt.Dropped += res.Stats.Network.Dropped
			pt.Duplicated += res.Stats.Network.Duplicated
			pt.Reordered += res.Stats.Network.Reordered
			pt.Retransmits += a.Retransmits
			pt.DupDiscarded += a.DupDiscarded
			pt.AcksSent += a.AcksSent
		}
		pt.Seconds /= float64(c.Trials)
		out = append(out, pt)
	}
	return out, nil
}

// RelTable renders the reliability sweep.
func RelTable(points []RelPoint) *collect.Table {
	t := collect.NewTable(
		"Reliability: ACIC over lossy fabrics (relnet ack/retransmit layer)",
		"profile", "time", "dropped", "dup'd", "reordered", "retransmits", "dedup", "acks")
	for _, p := range points {
		t.AddRow(p.Label, time.Duration(p.Seconds*float64(time.Second)).Round(time.Microsecond),
			p.Dropped, p.Duplicated, p.Reordered, p.Retransmits, p.DupDiscarded, p.AcksSent)
	}
	return t
}
