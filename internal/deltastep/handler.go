package deltastep

import (
	"math"

	"acic/internal/graph"
	"acic/internal/partition"
	"acic/internal/runtime"
	"acic/internal/tram"
)

// request is one relaxation request: "consider distance Dist for vertex
// Vertex". The Δ-stepping analogue of ACIC's Update.
type request struct {
	Vertex int32
	Dist   float64
}

// Commands broadcast by the root to drive the bulk-synchronous phases.
type command uint8

const (
	// cmdDrainLight: drain the current bucket, relax light edges.
	cmdDrainLight command = iota
	// cmdWait: a barrier retry — requests are still in flight; process
	// arrivals and report again.
	cmdWait
	// cmdHeavy: relax heavy edges of the vertices settled from the
	// current bucket.
	cmdHeavy
	// cmdAdvance: move to the given bucket (payload carries it).
	cmdAdvance
	// cmdBellmanFord: one Bellman-Ford round over the active frontier.
	cmdBellmanFord
	// cmdTerminate: stop.
	cmdTerminate
)

// ctrlMsg is the broadcast payload.
type ctrlMsg struct {
	cmd    command
	bucket int32
}

// status is the per-PE contribution reduced after every command.
type status struct {
	sent, received int64 // cumulative request counters
	minBucket      int32 // lowest non-empty local bucket, or -1
	settled        int64 // vertices first removed from the current bucket since its light phase began
	active         int64 // BF-mode frontier size
	changed        bool  // any distance improved since last contribution
}

func combineStatus(a, b any) any {
	av, bv := a.(*status), b.(*status)
	av.sent += bv.sent
	av.received += bv.received
	if bv.minBucket >= 0 && (av.minBucket < 0 || bv.minBucket < av.minBucket) {
		av.minBucket = bv.minBucket
	}
	av.settled += bv.settled
	av.active += bv.active
	av.changed = av.changed || bv.changed
	return av
}

type (
	startMsg struct{ source int32 }
	// batchMsg carries aggregated relaxation requests.
	batchMsg struct{ items []request }
)

// peState is the Δ-stepping handler on one PE.
type peState struct {
	shared *sharedState
	params Params
	delta  float64

	base int32
	dist []float64

	// buckets[b] holds local vertex ids whose tentative distance maps to
	// bucket b; entries are lazily invalidated when the distance moved.
	buckets   [][]int32
	minBucket int32 // lowest possibly-non-empty bucket, -1 when unknown/empty

	// inBucket[i] is the bucket the local vertex currently sits in, or -1.
	inBucket []int32

	current int32   // bucket being processed
	settled []int32 // vertices removed from `current` awaiting heavy relaxation
	wasInR  []bool  // local membership in settled set for this epoch

	// BF-mode frontier: local vertices improved since the last round.
	frontier []int32
	inFront  []bool
	bfMode   bool

	sent, received int64
	changed        bool
	epochSettled   int64 // vertices newly settled since last contribution

	relaxations int64
	rejected    int64

	// Root-only.
	root rootState
}

type rootState struct {
	supersteps        int64
	bucketsProcessed  int64
	bfRounds          int64
	switched          bool
	phase             phase
	settledPerEpoch   []int64
	epochSettledAccum int64
	prevSettled       int64
	rose              bool
	terminated        bool
}

type phase uint8

const (
	phaseLight phase = iota
	phaseLightDrain
	phaseHeavy
	phaseHeavyDrain
	phaseBF
)

type sharedState struct {
	g    *graph.Graph
	part *partition.OneD
	tm   *tram.Manager[request]
}

var _ runtime.Handler = (*peState)(nil)

func newPEState(sh *sharedState, pe *runtime.PE, p Params, delta float64) *peState {
	lo, hi := sh.part.Range(pe.Index())
	n := int(hi - lo)
	st := &peState{
		shared:    sh,
		params:    p,
		delta:     delta,
		base:      lo,
		dist:      make([]float64, n),
		buckets:   make([][]int32, 1),
		minBucket: -1,
		inBucket:  make([]int32, n),
		wasInR:    make([]bool, n),
		inFront:   make([]bool, n),
	}
	for i := range st.dist {
		st.dist[i] = math.Inf(1)
		st.inBucket[i] = -1
	}
	return st
}

func (st *peState) maxBuckets() int {
	if st.params.MaxBuckets > 0 {
		return st.params.MaxBuckets
	}
	return 1 << 16
}

func (st *peState) bucketOf(d float64) int32 {
	b := int32(d / st.delta)
	if int(b) >= st.maxBuckets() {
		b = int32(st.maxBuckets() - 1)
	}
	if b < 0 {
		b = 0
	}
	return b
}

// place puts local vertex v (global id) into the bucket for distance d.
func (st *peState) place(v int32, d float64) {
	li := v - st.base
	b := st.bucketOf(d)
	for int(b) >= len(st.buckets) {
		st.buckets = append(st.buckets, nil)
	}
	// Lazy deletion: stale entries in the old bucket are skipped on drain.
	st.buckets[b] = append(st.buckets[b], v)
	st.inBucket[li] = b
	if st.minBucket < 0 || b < st.minBucket {
		st.minBucket = b
	}
}

// localMinBucket recomputes the lowest non-empty bucket, skipping stale
// (lazily deleted) entries.
func (st *peState) localMinBucket() int32 {
	for b := int32(0); int(b) < len(st.buckets); b++ {
		for _, v := range st.buckets[b] {
			li := v - st.base
			if st.inBucket[li] == b && st.bucketOf(st.dist[li]) == b {
				return b
			}
		}
	}
	return -1
}

// Deliver implements runtime.Handler.
func (st *peState) Deliver(pe *runtime.PE, msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveBatch(pe, m.items)
	case startMsg:
		if st.shared.part.Owner(m.source) == pe.Index() {
			st.dist[m.source-st.base] = 0
			st.place(m.source, 0)
		}
		st.contribute(pe, 0)
	}
}

// Idle implements runtime.Handler. Δ-stepping has no asynchronous
// background work: between barriers an early-finishing PE simply waits,
// which is precisely the synchronization cost the paper attributes to
// bulk-synchronous algorithms.
func (st *peState) Idle(pe *runtime.PE) bool { return false }

func (st *peState) receiveBatch(pe *runtime.PE, items []request) {
	me := pe.Index()
	var forwards map[int][]request
	for _, r := range items {
		owner := st.shared.part.Owner(r.Vertex)
		if owner != me {
			if forwards == nil {
				forwards = make(map[int][]request)
			}
			forwards[owner] = append(forwards[owner], r)
			continue
		}
		st.received++
		if st.params.ComputeCost > 0 {
			pe.Work(st.params.ComputeCost)
		}
		li := r.Vertex - st.base
		if r.Dist < st.dist[li] {
			st.dist[li] = r.Dist
			st.changed = true
			if st.bfMode {
				if !st.inFront[li] {
					st.inFront[li] = true
					st.frontier = append(st.frontier, r.Vertex)
				}
			} else {
				st.place(r.Vertex, r.Dist)
			}
		} else {
			st.rejected++
		}
	}
	for owner, group := range forwards {
		pe.Send(owner, batchMsg{items: group}, len(group))
	}
	st.shared.tm.Release(items) // batch unpacked: recycle its capacity
}

// relax creates a relaxation request for edge (v -> w, weight c) given v's
// distance d, routing it through tramlib.
func (st *peState) relax(pe *runtime.PE, w int32, nd float64) {
	st.sent++
	st.relaxations++
	if st.params.ComputeCost > 0 {
		pe.Work(st.params.ComputeCost)
	}
	dst := st.shared.part.Owner(w)
	if batch := st.shared.tm.Insert(pe.Index(), dst, request{Vertex: w, Dist: nd}); batch != nil {
		pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items))
	}
}

// drainLight removes current-bucket vertices, relaxes their light edges and
// remembers them for the heavy phase.
func (st *peState) drainLight(pe *runtime.PE) int64 {
	b := st.current
	var settledNow int64
	if int(b) < len(st.buckets) {
		entries := st.buckets[b]
		st.buckets[b] = nil
		for _, v := range entries {
			li := v - st.base
			if st.inBucket[li] != b || st.bucketOf(st.dist[li]) != b {
				continue // stale entry
			}
			st.inBucket[li] = -1
			if !st.wasInR[li] {
				st.wasInR[li] = true
				st.settled = append(st.settled, v)
				settledNow++
			}
			d := st.dist[li]
			ts, ws := st.shared.g.Neighbors(int(v))
			for i, w := range ts {
				if ws[i] <= st.delta {
					st.relax(pe, w, d+ws[i])
				}
			}
		}
	}
	return settledNow
}

// relaxHeavy relaxes the heavy edges of every vertex settled from the
// current bucket and resets the epoch state.
func (st *peState) relaxHeavy(pe *runtime.PE) {
	for _, v := range st.settled {
		li := v - st.base
		st.wasInR[li] = false
		d := st.dist[li]
		ts, ws := st.shared.g.Neighbors(int(v))
		for i, w := range ts {
			if ws[i] > st.delta {
				st.relax(pe, w, d+ws[i])
			}
		}
	}
	st.settled = st.settled[:0]
}

// enterBF moves every still-bucketed vertex into the Bellman-Ford frontier.
func (st *peState) enterBF() {
	st.bfMode = true
	for b := range st.buckets {
		for _, v := range st.buckets[b] {
			li := v - st.base
			if st.inBucket[li] == int32(b) && !st.inFront[li] {
				st.inFront[li] = true
				st.frontier = append(st.frontier, v)
				st.inBucket[li] = -1
			}
		}
		st.buckets[b] = nil
	}
	st.minBucket = -1
}

// bfRound relaxes all out-edges of the current frontier.
func (st *peState) bfRound(pe *runtime.PE) {
	front := st.frontier
	st.frontier = nil
	for _, v := range front {
		li := v - st.base
		st.inFront[li] = false
		d := st.dist[li]
		ts, ws := st.shared.g.Neighbors(int(v))
		for i, w := range ts {
			st.relax(pe, w, d+ws[i])
		}
	}
}

// contribute flushes tram (every barrier is also a flush point) and reports
// status for the next root decision.
func (st *peState) contribute(pe *runtime.PE, epoch int64) {
	for _, batch := range st.shared.tm.FlushSet(pe.Index()) {
		pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items))
	}
	s := &status{
		sent:      st.sent,
		received:  st.received,
		minBucket: -1,
		active:    int64(len(st.frontier)),
		changed:   st.changed,
	}
	st.changed = false
	if !st.bfMode {
		s.minBucket = st.localMinBucket()
	}
	s.settled = st.epochSettled
	st.epochSettled = 0
	pe.Contribute(epoch, s)
}

// OnBroadcast executes the root's command, then reports back.
func (st *peState) OnBroadcast(pe *runtime.PE, epoch int64, payload any) {
	ctrl := payload.(ctrlMsg)
	switch ctrl.cmd {
	case cmdTerminate:
		pe.Exit()
		return
	case cmdWait:
		// Barrier retry: arrivals were processed by Deliver already.
	case cmdAdvance:
		st.current = ctrl.bucket
		st.epochSettled += st.drainLight(pe)
	case cmdDrainLight:
		st.current = ctrl.bucket
		st.epochSettled += st.drainLight(pe)
	case cmdHeavy:
		st.relaxHeavy(pe)
	case cmdBellmanFord:
		if !st.bfMode {
			st.enterBF()
		}
		st.bfRound(pe)
	}
	st.contribute(pe, epoch+1)
}

// OnReduction is the root's phase state machine.
func (st *peState) OnReduction(pe *runtime.PE, epoch int64, value any) {
	if st.root.terminated {
		return
	}
	s := value.(*status)
	st.root.supersteps++
	r := &st.root

	// A barrier is only complete when every sent request was received.
	inFlight := s.sent != s.received

	var ctrl ctrlMsg
	switch r.phase {
	case phaseLight, phaseLightDrain:
		r.epochSettledAccum += s.settled
		if inFlight {
			ctrl = ctrlMsg{cmd: cmdWait}
			r.phase = phaseLightDrain
			break
		}
		if s.minBucket >= 0 && s.minBucket <= st.current {
			// Current bucket refilled (or not yet empty): another light
			// iteration.
			ctrl = ctrlMsg{cmd: cmdDrainLight, bucket: st.current}
			r.phase = phaseLight
			break
		}
		// Bucket empty everywhere: heavy phase.
		ctrl = ctrlMsg{cmd: cmdHeavy}
		r.phase = phaseHeavy
	case phaseHeavy, phaseHeavyDrain:
		if inFlight {
			ctrl = ctrlMsg{cmd: cmdWait}
			r.phase = phaseHeavyDrain
			break
		}
		// Epoch (bucket) complete.
		r.bucketsProcessed++
		r.settledPerEpoch = append(r.settledPerEpoch, r.epochSettledAccum)
		settledNow := r.epochSettledAccum
		r.epochSettledAccum = 0
		if settledNow > r.prevSettled {
			r.rose = true
		}
		useBF := st.params.Hybrid && r.rose && settledNow < r.prevSettled
		r.prevSettled = settledNow
		if s.minBucket < 0 {
			ctrl = ctrlMsg{cmd: cmdTerminate}
			r.terminated = true
			break
		}
		if useBF {
			r.switched = true
			r.bfRounds++
			ctrl = ctrlMsg{cmd: cmdBellmanFord}
			r.phase = phaseBF
			break
		}
		st.current = s.minBucket
		ctrl = ctrlMsg{cmd: cmdAdvance, bucket: s.minBucket}
		r.phase = phaseLight
	case phaseBF:
		if inFlight || s.changed || s.active > 0 {
			r.bfRounds++
			ctrl = ctrlMsg{cmd: cmdBellmanFord}
			break
		}
		ctrl = ctrlMsg{cmd: cmdTerminate}
		r.terminated = true
	}
	pe.Broadcast(epoch, ctrl)
}
