// Package deltastep implements the bulk-synchronous Δ-stepping SSSP
// algorithm of Meyer and Sanders, extended with the two defining
// optimizations of the RIKEN Graph500-SSSP code the paper compares against
// (§IV-A): a hybrid switch to Bellman-Ford once the per-epoch count of
// newly settled vertices passes its local maximum, and message aggregation
// for relaxation requests.
//
// The implementation deliberately runs on the same substrate as ACIC — the
// message-driven runtime, the simulated cluster network and tramlib — so
// that measured differences between the two algorithms come from their
// synchronization structure, not from infrastructure differences. Where
// ACIC overlaps its reductions with application work, Δ-stepping uses the
// same reduction/broadcast tree as a *barrier*: every phase of every bucket
// ends with a machine-wide synchronization, and a PE that finishes its
// share early idles until the slowest PE arrives (§I's load-imbalance
// argument, visible directly in the measurements).
//
// Algorithm sketch (Meyer & Sanders): vertices with tentative distances are
// kept in buckets of width Δ. The lowest non-empty bucket k is drained
// repeatedly: light edges (weight ≤ Δ) of its vertices are relaxed, which
// may re-insert vertices into bucket k, until it stays empty; then the
// heavy edges (weight > Δ) of every vertex removed from bucket k are
// relaxed once. The RIKEN hybrid switches to plain Bellman-Ford rounds over
// the active frontier once the settle-rate peaks, which processes the
// high-diameter tail without one barrier per bucket.
package deltastep

import (
	"time"

	"acic/internal/netsim"
	"acic/internal/runtime"
	"acic/internal/simclock"
	"acic/internal/tram"
)

// Params are the Δ-stepping tunables.
type Params struct {
	// Delta is the bucket width. Zero derives the Meyer-Sanders heuristic
	// Δ = max-weight / mean-out-degree from the input graph.
	Delta float64
	// Hybrid enables the RIKEN switch to Bellman-Ford after the newly-
	// settled-per-epoch count passes a local maximum (§IV-A).
	Hybrid bool
	// TramMode and TramCapacity configure relaxation-request aggregation,
	// matching the ACIC run being compared against.
	TramMode     tram.Mode
	TramCapacity int
	// MaxBuckets bounds the bucket array; distances beyond
	// MaxBuckets×Delta clamp into the last bucket (processed together).
	// Zero means 1 << 16.
	MaxBuckets int
	// EdgeBalanced partitions vertices so each PE owns roughly equal edge
	// counts — the repository's stand-in for the RIKEN code's 2-D
	// partitioning, which spreads hub edges instead of concentrating them
	// (§IV-A; substitution documented in DESIGN.md). ACIC keeps the
	// paper's vertex-balanced 1-D layout.
	EdgeBalanced bool
	// ComputeCost is the simulated per-unit compute time charged for each
	// request received and each edge relaxed; see core.Params.ComputeCost.
	ComputeCost time.Duration
}

// DefaultParams returns the configuration used by the figure harness:
// hybrid enabled, WP aggregation, 1024-item buffers, heuristic Δ.
func DefaultParams() Params {
	return Params{
		Hybrid:       true,
		EdgeBalanced: true,
		TramMode:     tram.WP,
		TramCapacity: tram.DefaultCapacity,
	}
}

// Options configure one run.
type Options struct {
	Topo    netsim.Topology
	Latency netsim.LatencyModel
	Params  Params
	// Clock times the run for Stats.Elapsed; nil means the wall clock.
	Clock simclock.Clock
	// Jitter, when non-nil, perturbs every message's delivery delay (see
	// netsim.JitterFunc) — the schedule-stress harness's hook.
	Jitter netsim.JitterFunc
}

// Stats mirrors core.Stats where meaningful so the harness can tabulate
// both algorithms uniformly.
type Stats struct {
	Elapsed time.Duration
	// Relaxations counts relaxation requests created (edge traversals) —
	// Fig. 9's "updates" series for the Δ-stepping bars.
	Relaxations int64
	// Rejected counts requests that failed to improve a distance.
	Rejected int64
	// Supersteps counts global synchronizations (every reduction+broadcast
	// round: light-phase iterations, drain rounds, heavy phases, BF
	// rounds). The synchronization bill ACIC avoids.
	Supersteps int64
	// BucketsProcessed counts Δ-buckets fully drained.
	BucketsProcessed int64
	// SwitchedToBF records whether and when the hybrid heuristic fired.
	SwitchedToBF    bool
	BFRounds        int64
	TramStats       tram.Stats
	Network         netsim.Stats
	// Audit is the runtime's post-run conservation ledger; the stress
	// harness requires Audit.Unaccounted() == 0 and Audit.NetQueue == 0.
	Audit runtime.Audit
	SettledPerEpoch []int64 // newly settled vertices per bucket epoch
}

// Result is the output of a Δ-stepping run.
type Result struct {
	Dist  []float64
	Stats Stats
}
