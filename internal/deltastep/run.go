package deltastep

import (
	"fmt"
	"math"

	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/partition"
	"acic/internal/runtime"
	"acic/internal/simclock"
	"acic/internal/tram"
)

// HeuristicDelta returns the default bucket width: Δ = max edge weight,
// clamped below at 1.
//
// Meyer and Sanders' work-optimal prescription is Δ = Θ(max-weight /
// mean-degree), but that regime assumes cheap synchronization. On a
// distributed machine every bucket phase costs a global barrier, so
// production codes — including the Graph500 Δ-stepping lineage the paper
// compares against — run far coarser buckets, accepting extra speculative
// relaxations to buy fewer phases. Δ = max-weight makes every edge "light"
// and collapses the phase count to the distance diameter in Δ units, which
// is the runtime-optimal end of the trade-off in the barrier-dominated
// regime this simulator (and the paper's clusters) operate in. Callers can
// always set Params.Delta explicitly; the WorkOptimalDelta helper exposes
// the fine-bucket alternative used by the ablation benchmarks.
func HeuristicDelta(g *graph.Graph) float64 {
	d := g.MaxWeight()
	if d < 1 {
		d = 1
	}
	return d
}

// WorkOptimalDelta returns the Meyer-Sanders work-optimal bucket width
// Δ = max-weight / mean-out-degree, clamped below at 1. It minimizes
// wasted relaxations at the price of many more phases; the Δ ablation
// benchmark contrasts it with HeuristicDelta.
func WorkOptimalDelta(g *graph.Graph) float64 {
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return 1
	}
	meanDeg := float64(g.NumEdges()) / float64(n)
	if meanDeg < 1 {
		meanDeg = 1
	}
	d := g.MaxWeight() / meanDeg
	if d < 1 {
		d = 1
	}
	return d
}

// Run executes Δ-stepping on g from source over the simulated machine and
// returns distances and statistics.
func Run(g *graph.Graph, source int, opts Options) (*Result, error) {
	topo := opts.Topo
	if topo == (netsim.Topology{}) {
		topo = netsim.SingleNode(4)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if source < 0 || source >= g.NumVertices() {
		return nil, fmt.Errorf("deltastep: source %d out of range [0,%d)", source, g.NumVertices())
	}
	params := opts.Params
	if params.Delta == 0 {
		params.Delta = HeuristicDelta(g)
	}
	if params.Delta <= 0 || math.IsNaN(params.Delta) {
		return nil, fmt.Errorf("deltastep: invalid delta %v", params.Delta)
	}
	if params.TramCapacity <= 0 {
		params.TramCapacity = tram.DefaultCapacity
	}

	tm, err := tram.New[request](topo, params.TramMode, params.TramCapacity)
	if err != nil {
		return nil, err
	}
	part := partition.NewOneD(g.NumVertices(), topo.TotalPEs())
	if params.EdgeBalanced {
		part = partition.NewEdgeBalancedOneD(g, topo.TotalPEs())
	}
	sh := &sharedState{
		g:    g,
		part: part,
		tm:   tm,
	}

	rt, err := runtime.New(runtime.Config{
		Topo:    topo,
		Latency: opts.Latency,
		Combine: combineStatus,
		Jitter:  opts.Jitter,
	})
	if err != nil {
		return nil, err
	}

	states := make([]*peState, topo.TotalPEs())
	rt.Start(func(pe *runtime.PE) runtime.Handler {
		st := newPEState(sh, pe, params, params.Delta)
		states[pe.Index()] = st
		return st
	})

	clk := simclock.Default(opts.Clock)
	start := clk.Now()
	for i := 0; i < topo.TotalPEs(); i++ {
		rt.Inject(i, startMsg{source: int32(source)})
	}
	rt.Wait()
	elapsed := clk.Since(start)

	res := &Result{
		Dist:  make([]float64, g.NumVertices()),
		Stats: Stats{Elapsed: elapsed},
	}
	root := states[0]
	res.Stats.Supersteps = root.root.supersteps
	res.Stats.BucketsProcessed = root.root.bucketsProcessed
	res.Stats.SwitchedToBF = root.root.switched
	res.Stats.BFRounds = root.root.bfRounds
	res.Stats.SettledPerEpoch = root.root.settledPerEpoch
	for peIdx, st := range states {
		lo, hi := sh.part.Range(peIdx)
		copy(res.Dist[lo:hi], st.dist)
		res.Stats.Relaxations += st.relaxations
		res.Stats.Rejected += st.rejected
	}
	res.Stats.TramStats = tm.Stats()
	res.Stats.Network = rt.NetworkStats()
	res.Stats.Audit = rt.Audit()
	return res, nil
}
