package deltastep

import (
	"testing"
	"testing/quick"
	"time"

	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/seq"
	"acic/internal/tram"
)

func mustRun(t *testing.T, g *graph.Graph, source int, opts Options) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(g, source, opts)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("Run failed: %v", o.err)
		}
		return o.res
	case <-time.After(60 * time.Second):
		t.Fatal("Δ-stepping run did not terminate")
		return nil
	}
}

func runAndVerify(t *testing.T, g *graph.Graph, source int, opts Options) *Result {
	t.Helper()
	res := mustRun(t, g, source, opts)
	want := seq.Dijkstra(g, source)
	if !seq.Equal(res.Dist, want.Dist) {
		i := seq.FirstMismatch(res.Dist, want.Dist)
		t.Fatalf("distance mismatch at vertex %d: deltastep=%v dijkstra=%v", i, res.Dist[i], want.Dist[i])
	}
	return res
}

func TestDiamond(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 0, To: 2, Weight: 4},
		{From: 1, To: 2, Weight: 2}, {From: 1, To: 3, Weight: 6},
		{From: 2, To: 3, Weight: 3},
	})
	res := runAndVerify(t, g, 0, Options{})
	if res.Stats.Supersteps == 0 {
		t.Error("no supersteps counted")
	}
	if res.Stats.Relaxations == 0 {
		t.Error("no relaxations counted")
	}
}

func TestFixtures(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":      gen.Path(150),
		"star":      gen.Star(150),
		"cycle":     gen.Cycle(80),
		"grid":      gen.Grid(10, 10, gen.Config{Seed: 1}),
		"complete":  gen.Complete(25, gen.Config{Seed: 2}),
		"singleton": graph.MustBuild(1, nil),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			runAndVerify(t, g, 0, Options{Params: DefaultParams()})
		})
	}
}

func TestUnreachable(t *testing.T) {
	g := graph.MustBuild(5, []graph.Edge{{From: 0, To: 1, Weight: 2}})
	res := runAndVerify(t, g, 0, Options{})
	for v := 2; v < 5; v++ {
		if res.Dist[v] != seq.Inf {
			t.Errorf("vertex %d should be unreachable", v)
		}
	}
}

func TestRandomGraphMatchesOracle(t *testing.T) {
	g := gen.Uniform(2000, 16000, gen.Config{Seed: 3})
	runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(8), Params: DefaultParams()})
}

func TestRMATMatchesOracle(t *testing.T) {
	g := gen.RMAT(11, 8, gen.DefaultRMAT(), gen.Config{Seed: 4})
	runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(8), Params: DefaultParams()})
}

func TestWithLatency(t *testing.T) {
	g := gen.Uniform(1200, 9600, gen.Config{Seed: 5})
	opts := Options{
		Topo:    netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 3},
		Latency: netsim.LatencyModel{IntraProcess: time.Microsecond, IntraNode: 3 * time.Microsecond, InterNode: 10 * time.Microsecond},
		Params:  DefaultParams(),
	}
	runAndVerify(t, g, 0, opts)
}

func TestExplicitDeltaValues(t *testing.T) {
	g := gen.Uniform(800, 6400, gen.Config{Seed: 6, MaxWeight: 100})
	for _, delta := range []float64{1, 5, 25, 100, 1000} {
		p := DefaultParams()
		p.Delta = delta
		runAndVerify(t, g, 0, Options{Params: p})
	}
}

func TestHybridSwitchFiresOnGrid(t *testing.T) {
	// A long-tailed graph: settled-per-epoch rises then falls, so the
	// RIKEN heuristic must fire and BF rounds must finish the tail.
	g := gen.Grid(40, 40, gen.Config{Seed: 7})
	p := DefaultParams()
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
	if !res.Stats.SwitchedToBF {
		t.Error("hybrid switch never fired on a high-diameter grid")
	}
	if res.Stats.BFRounds == 0 {
		t.Error("no BF rounds despite switch")
	}
}

func TestHybridDisabled(t *testing.T) {
	g := gen.Grid(20, 20, gen.Config{Seed: 8})
	p := DefaultParams()
	p.Hybrid = false
	res := runAndVerify(t, g, 0, Options{Params: p})
	if res.Stats.SwitchedToBF || res.Stats.BFRounds != 0 {
		t.Error("BF used despite Hybrid=false")
	}
}

func TestHybridReducesSupersteps(t *testing.T) {
	g := gen.Grid(30, 30, gen.Config{Seed: 9})
	pOn := DefaultParams()
	pOff := DefaultParams()
	pOff.Hybrid = false
	on := runAndVerify(t, g, 0, Options{Params: pOn})
	off := runAndVerify(t, g, 0, Options{Params: pOff})
	if on.Stats.SwitchedToBF && on.Stats.Supersteps >= off.Stats.Supersteps {
		t.Errorf("hybrid supersteps %d not below pure Δ-stepping %d",
			on.Stats.Supersteps, off.Stats.Supersteps)
	}
}

func TestSettledPerEpochSumsToReachable(t *testing.T) {
	g := gen.Uniform(1000, 8000, gen.Config{Seed: 10})
	p := DefaultParams()
	p.Hybrid = false // BF mode stops attributing settles to epochs
	res := runAndVerify(t, g, 0, Options{Params: p})
	var settled int64
	for _, s := range res.Stats.SettledPerEpoch {
		settled += s
	}
	reach, _ := g.ReachableFrom(0)
	if settled != int64(reach) {
		t.Errorf("settled sum %d != reachable %d", settled, reach)
	}
}

func TestAllTramModes(t *testing.T) {
	g := gen.Uniform(600, 4800, gen.Config{Seed: 11})
	for _, mode := range []tram.Mode{tram.WW, tram.WP, tram.PW, tram.PP} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			p := DefaultParams()
			p.TramMode = mode
			runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(6), Params: p})
		})
	}
}

func TestNonZeroSource(t *testing.T) {
	g := gen.Grid(12, 12, gen.Config{Seed: 12})
	runAndVerify(t, g, 77, Options{})
}

func TestSinglePE(t *testing.T) {
	g := gen.Uniform(400, 3200, gen.Config{Seed: 13})
	runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(1)})
}

func TestHeuristicDelta(t *testing.T) {
	g := gen.Uniform(100, 800, gen.Config{Seed: 14, MaxWeight: 64})
	d := HeuristicDelta(g)
	if d <= 0 {
		t.Errorf("HeuristicDelta = %v", d)
	}
	empty := graph.MustBuild(5, nil)
	if HeuristicDelta(empty) != 1 {
		t.Error("edgeless graph delta should clamp to 1")
	}
}

func TestRunValidation(t *testing.T) {
	g := gen.Path(5)
	if _, err := Run(g, -1, Options{}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := Run(g, 9, Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := Run(g, 0, Options{Topo: netsim.Topology{Nodes: 0, ProcsPerNode: 1, PEsPerProc: 1}}); err == nil {
		t.Error("bad topology accepted")
	}
}

// Property: Δ-stepping matches Dijkstra over random graphs, deltas and PE
// counts.
func TestQuickMatchesDijkstra(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint64, nRaw, srcRaw, pesRaw, deltaRaw uint8) bool {
		n := int(nRaw%150) + 2
		m := n * 5
		src := int(srcRaw) % n
		pes := int(pesRaw%5) + 1
		g := gen.Uniform(n, m, gen.Config{Seed: seed, MaxWeight: 80})
		p := DefaultParams()
		p.Delta = float64(deltaRaw%50) + 1
		res, err := Run(g, src, Options{Topo: netsim.SingleNode(pes), Params: p})
		if err != nil {
			return false
		}
		return seq.Equal(res.Dist, seq.Dijkstra(g, src).Dist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDeltaSteppingUniform(b *testing.B) {
	g := gen.Uniform(1<<12, 16<<12, gen.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, 0, Options{Topo: netsim.SingleNode(8), Params: DefaultParams()}); err != nil {
			b.Fatal(err)
		}
	}
}
