package benchdiff

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mk(entries ...Entry) *File {
	return &File{Go: "go1.x", Commit: "abc", RunsPerBench: 3, VarianceThresholdPct: 10, Benchmarks: entries}
}

func e(name string, ns float64, allocs int64, flagged bool) Entry {
	return Entry{Name: name, MeanNsPerOp: ns, RunsNsPerOp: []float64{ns}, AllocsPerOp: allocs, Flagged: flagged}
}

func TestDiffPairsAndOrders(t *testing.T) {
	old := mk(e("A", 100, 0, false), e("Gone", 50, 1, false))
	cur := mk(e("B", 10, 2, false), e("A", 120, 0, false))
	ds := Diff(old, cur)
	if len(ds) != 3 {
		t.Fatalf("got %d deltas, want 3", len(ds))
	}
	if ds[0].Name != "B" || ds[0].Old != nil {
		t.Errorf("delta 0 = %+v, want new-only B", ds[0])
	}
	if ds[1].Name != "A" || ds[1].NsPct != 20 {
		t.Errorf("delta 1 = %+v, want A at +20%%", ds[1])
	}
	if ds[2].Name != "Gone" || ds[2].New != nil {
		t.Errorf("delta 2 = %+v, want removed Gone", ds[2])
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	old := mk(e("Hot", 100, 5, false), e("Zero", 40, 0, false))
	cur := mk(e("Hot", 109, 4, false), e("Zero", 43, 0, false))
	if v := Gate(old, cur, 10); len(v) != 0 {
		t.Errorf("gate flagged a healthy record: %v", v)
	}
}

func TestGateFailsOnSlowdown(t *testing.T) {
	old := mk(e("Hot", 100, 5, false))
	cur := mk(e("Hot", 115, 5, false))
	v := Gate(old, cur, 10)
	if len(v) != 1 || !strings.Contains(v[0], "ns/op regressed") {
		t.Errorf("gate = %v, want one ns/op violation", v)
	}
}

func TestGateSkipsFlaggedNsButNotAllocs(t *testing.T) {
	old := mk(e("Noisy", 100, 0, true))
	cur := mk(e("Noisy", 200, 3, false))
	v := Gate(old, cur, 10)
	if len(v) != 1 || !strings.Contains(v[0], "allocs/op regressed 0 -> 3") {
		t.Errorf("gate = %v, want only the allocs violation (ns skipped: baseline flagged)", v)
	}
}

func TestGateFailsOnZeroAllocRegression(t *testing.T) {
	old := mk(e("Zero", 40, 0, false))
	cur := mk(e("Zero", 40, 1, false))
	v := Gate(old, cur, 10)
	if len(v) != 1 || !strings.Contains(v[0], "zero-alloc") {
		t.Errorf("gate = %v, want zero-alloc violation", v)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	old := mk(e("Kept", 10, 0, false), e("Dropped", 10, 0, false))
	cur := mk(e("Kept", 10, 0, false))
	v := Gate(old, cur, 10)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Errorf("gate = %v, want missing-benchmark violation", v)
	}
}

func TestGateIgnoresNewBenchmarks(t *testing.T) {
	old := mk(e("A", 10, 0, false))
	cur := mk(e("A", 10, 0, false), e("Fresh", 999, 42, false))
	if v := Gate(old, cur, 10); len(v) != 0 {
		t.Errorf("gate = %v, want pass (new benchmark has no baseline)", v)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	f := mk(e("A", 12345, 7, false))
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks[0].Name != "A" || got.Benchmarks[0].AllocsPerOp != 7 {
		t.Errorf("round trip lost data: %+v", got.Benchmarks[0])
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("Load of missing file did not error")
	}
}

func TestLoadRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load of empty record did not error")
	}
}

func TestDiffTableRendersAllCases(t *testing.T) {
	old := mk(e("Same", 100, 1, false), e("Gone", 5e6, 0, false))
	cur := mk(e("Same", 90, 1, true), e("New", 2e3, 0, false))
	out := DiffTable(old, cur)
	for _, want := range []string{"Same", "Gone", "New", "removed", "noisy", "5.00ms", "2.00µs", "-10.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("DiffTable missing %q in:\n%s", want, out)
		}
	}
}

func TestMarkdownTrajectory(t *testing.T) {
	seed := mk(e("Hot", 1e8, 9000, false))
	pr1 := mk(e("Hot", 8e7, 7000, true))
	now := mk(e("Hot", 5e7, 1800, false), e("Fresh", 50, 0, false))
	out := MarkdownTrajectory([]string{"seed", "PR 1", "PR 6"}, []*File{seed, pr1, now})
	for _, want := range []string{
		"| benchmark |", "seed ns/op", "PR 6 ns/op",
		"| Hot | 100.00ms | 9000 | 80.00ms† | 7000 | 50.00ms | 1800 |",
		"| Fresh | - | - | - | - | 50.00ns | 0 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory missing %q in:\n%s", want, out)
		}
	}
}
