// Package benchdiff loads the BENCH_N.json records written by
// scripts/bench.sh, diffs two of them, and applies the CI regression gate.
// cmd/benchdiff is the thin CLI over this package; keeping the logic here
// makes the gate rules unit-testable.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// File is one bench.sh output (see scripts/bench.sh for the writer).
type File struct {
	Go                   string  `json:"go"`
	Commit               string  `json:"commit"`
	RunsPerBench         int     `json:"runs_per_bench"`
	VarianceThresholdPct float64 `json:"variance_threshold_pct"`
	Benchmarks           []Entry `json:"benchmarks"`
}

// Entry is one benchmark's aggregated result.
type Entry struct {
	Name        string    `json:"name"`
	RunsNsPerOp []float64 `json:"runs_ns_per_op"`
	MeanNsPerOp float64   `json:"mean_ns_per_op"`
	SpreadPct   float64   `json:"spread_pct"`
	BytesPerOp  int64     `json:"bytes_per_op"`
	AllocsPerOp int64     `json:"allocs_per_op"`
	Flagged     bool      `json:"flagged"`
}

// Load reads and validates one record.
func Load(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &f, nil
}

func (f *File) entry(name string) *Entry {
	for i := range f.Benchmarks {
		if f.Benchmarks[i].Name == name {
			return &f.Benchmarks[i]
		}
	}
	return nil
}

// Delta is one benchmark's old-vs-new comparison. Old is nil for a
// benchmark that only exists in the new record.
type Delta struct {
	Name     string
	Old, New *Entry
	// NsPct is the relative ns/op change in percent (+ is slower);
	// meaningless when Old is nil.
	NsPct float64
}

// Diff pairs up the two records' benchmarks in the new record's order.
// Benchmarks that disappeared from the new record are appended with
// New == nil so the caller can surface them.
func Diff(old, cur *File) []Delta {
	var out []Delta
	for i := range cur.Benchmarks {
		n := &cur.Benchmarks[i]
		d := Delta{Name: n.Name, New: n, Old: old.entry(n.Name)}
		if d.Old != nil && d.Old.MeanNsPerOp > 0 {
			d.NsPct = 100 * (n.MeanNsPerOp - d.Old.MeanNsPerOp) / d.Old.MeanNsPerOp
		}
		out = append(out, d)
	}
	for i := range old.Benchmarks {
		o := &old.Benchmarks[i]
		if cur.entry(o.Name) == nil {
			out = append(out, Delta{Name: o.Name, Old: o})
		}
	}
	return out
}

// Gate applies the CI regression rules and returns one message per
// violation (empty means the gate passes):
//
//   - ns/op: a benchmark more than thresholdPct slower than the baseline
//     fails — unless either side is variance-flagged, in which case the
//     number is untrustworthy and only reported, never gated.
//   - allocs/op: a benchmark whose baseline is allocation-free must stay
//     allocation-free. Allocation counts are deterministic, so this rule
//     ignores the variance flag.
//   - A benchmark present in the baseline but missing from the new record
//     fails (a silently dropped benchmark is how coverage rots).
func Gate(old, cur *File, thresholdPct float64) []string {
	var v []string
	for _, d := range Diff(old, cur) {
		switch {
		case d.New == nil:
			v = append(v, fmt.Sprintf("%s: present in baseline but missing from new record", d.Name))
		case d.Old == nil:
			// New benchmark: nothing to compare against.
		default:
			if d.Old.AllocsPerOp == 0 && d.New.AllocsPerOp > 0 {
				v = append(v, fmt.Sprintf("%s: allocs/op regressed 0 -> %d (zero-alloc benchmarks must stay zero-alloc)",
					d.Name, d.New.AllocsPerOp))
			}
			if d.NsPct > thresholdPct && !d.Old.Flagged && !d.New.Flagged {
				v = append(v, fmt.Sprintf("%s: ns/op regressed %.2f -> %.2f (+%.1f%%, threshold %.0f%%)",
					d.Name, d.Old.MeanNsPerOp, d.New.MeanNsPerOp, d.NsPct, thresholdPct))
			}
		}
	}
	return v
}

// DiffTable renders an aligned old-vs-new comparison.
func DiffTable(old, cur *File) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %14s %14s %8s %10s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ%", "allocs", "flags")
	for _, d := range Diff(old, cur) {
		switch {
		case d.New == nil:
			fmt.Fprintf(&b, "%-34s %14s %14s %8s %10s %10s\n",
				d.Name, fmtNs(d.Old.MeanNsPerOp), "-", "-", "-", "removed")
		case d.Old == nil:
			fmt.Fprintf(&b, "%-34s %14s %14s %8s %10s %10s\n",
				d.Name, "-", fmtNs(d.New.MeanNsPerOp), "-",
				fmt.Sprintf("%d", d.New.AllocsPerOp), flags("", d.New))
		default:
			fmt.Fprintf(&b, "%-34s %14s %14s %7.1f%% %10s %10s\n",
				d.Name, fmtNs(d.Old.MeanNsPerOp), fmtNs(d.New.MeanNsPerOp), d.NsPct,
				fmt.Sprintf("%d->%d", d.Old.AllocsPerOp, d.New.AllocsPerOp),
				flags(flags("", d.Old)+"/", d.New))
		}
	}
	return b.String()
}

func flags(prefix string, e *Entry) string {
	if e.Flagged {
		return prefix + "noisy"
	}
	if prefix == "" {
		return "ok"
	}
	return prefix + "ok"
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.2fns", ns)
	}
}

// MarkdownTrajectory renders the perf history across an ordered series of
// records (e.g. seed -> PR 1 -> PR 6) as a Markdown table, one row per
// benchmark, one ns/op + allocs/op column pair per record. Benchmarks are
// ordered as in the newest record; a benchmark absent from an older
// record shows "-". Noisy (variance-flagged) numbers are marked with †.
func MarkdownTrajectory(labels []string, files []*File) string {
	if len(labels) != len(files) {
		panic("benchdiff: labels/files length mismatch")
	}
	var b strings.Builder
	b.WriteString("| benchmark |")
	for _, l := range labels {
		fmt.Fprintf(&b, " %s ns/op | allocs/op |", l)
	}
	b.WriteString("\n|---|")
	for range labels {
		b.WriteString("---|---|")
	}
	b.WriteString("\n")
	newest := files[len(files)-1]
	for _, e := range newest.Benchmarks {
		fmt.Fprintf(&b, "| %s |", e.Name)
		for _, f := range files {
			if fe := f.entry(e.Name); fe != nil {
				mark := ""
				if fe.Flagged {
					mark = "†"
				}
				fmt.Fprintf(&b, " %s%s | %d |", fmtNs(fe.MeanNsPerOp), mark, fe.AllocsPerOp)
			} else {
				b.WriteString(" - | - |")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
