package core

// Regression tests for the input/ownership contracts hardened for the
// resident query engine: PathTo's unreachability test and the Scratch
// exclusivity latch.

import (
	"errors"
	"math"
	"reflect"
	stdruntime "runtime"
	"testing"
	"time"

	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
)

// TestPathToNearMaxWeight pins the math.IsInf unreachability test: PathTo
// used to treat any distance above 1e308 as unreachable, misreporting
// huge-but-finite distances (legal with near-MaxFloat64 edge weights).
func TestPathToNearMaxWeight(t *testing.T) {
	r := &Result{
		Dist:   []float64{0, 1.5e308, math.Inf(1), math.NaN()},
		Parent: []int32{-1, 0, -1, -1},
	}
	if got := r.PathTo(1); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Errorf("PathTo(1) = %v, want [0 1] (dist 1.5e308 is finite, hence reachable)", got)
	}
	if got := r.PathTo(2); got != nil {
		t.Errorf("PathTo(2) = %v, want nil for +Inf", got)
	}
	if got := r.PathTo(3); got != nil {
		t.Errorf("PathTo(3) = %v, want nil for NaN", got)
	}
}

// TestPathToNearMaxWeightEndToEnd runs the full machine over a chain whose
// accumulated distance exceeds 1e308 while staying finite.
func TestPathToNearMaxWeightEndToEnd(t *testing.T) {
	g := mustChain(t, 3, 8e307) // dist[2] = 1.6e308 < MaxFloat64
	res, err := Run(g, 0, Options{Topo: netsim.SingleNode(2)})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.6e308; math.Abs(res.Dist[2]-want)/want > 1e-12 {
		t.Fatalf("Dist[2] = %g, want ~%g", res.Dist[2], want)
	}
	if got := res.PathTo(2); !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Errorf("PathTo(2) = %v, want [0 1 2]", got)
	}
}

func mustChain(t *testing.T, n int, w float64) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32(i + 1), Weight: w})
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestScratchLatchRejectsLatchedScratch is the deterministic half of the
// exclusivity contract: a Scratch already claimed by a Run (here, claimed
// directly) makes Run fail loudly with ErrScratchInUse, and a released
// Scratch is usable again.
func TestScratchLatchRejectsLatchedScratch(t *testing.T) {
	g := gen.Uniform(200, 800, gen.Config{Seed: 5})
	sc := &Scratch{}
	if err := sc.acquire(); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, 0, Options{Scratch: sc}); !errors.Is(err, ErrScratchInUse) {
		t.Fatalf("Run on latched Scratch: err = %v, want ErrScratchInUse", err)
	}
	sc.release()
	if _, err := Run(g, 0, Options{Scratch: sc}); err != nil {
		t.Fatalf("Run on released Scratch: %v", err)
	}
}

// TestScratchLatchRejectsConcurrentRun drives the real collision: two
// concurrent Runs handed one Scratch, the second arriving while the first
// is mid-flight, must yield exactly one success and one ErrScratchInUse.
func TestScratchLatchRejectsConcurrentRun(t *testing.T) {
	g := gen.Uniform(1<<11, 16<<11, gen.Config{Seed: 3})
	for attempt := 0; attempt < 10; attempt++ {
		sc := &Scratch{}
		firstErr := make(chan error, 1)
		go func() {
			_, err := Run(g, 0, Options{Scratch: sc, Latency: netsim.DefaultLatency()})
			firstErr <- err
		}()
		// Wait for the first Run to claim the scratch, then collide.
		deadline := time.Now().Add(5 * time.Second)
		for !sc.inUse.Load() && time.Now().Before(deadline) {
			stdruntime.Gosched()
		}
		_, err := Run(g, 1, Options{Scratch: sc})
		if e := <-firstErr; e != nil {
			t.Fatalf("first Run: %v", e)
		}
		if err == nil {
			continue // first Run finished before we collided; try again
		}
		if !errors.Is(err, ErrScratchInUse) {
			t.Fatalf("second Run: err = %v, want ErrScratchInUse", err)
		}
		return
	}
	t.Fatal("never observed two overlapping Runs in 10 attempts")
}
