package core

import (
	"math"
	"sync"
	"testing"

	"acic/internal/gen"
	"acic/internal/netsim"
	"acic/internal/seq"
)

// TestWorkersMatchDijkstra runs the multi-process worker path with every
// worker in this test process: four Workers, four sockfab nodes, real
// loopback TCP between them. The merged partial results must reproduce
// Dijkstra exactly, cover every vertex exactly once, and balance both the
// per-process conservation ledgers and the cross-process boundary flow.
func TestWorkersMatchDijkstra(t *testing.T) {
	topo := netsim.Topology{Nodes: 1, ProcsPerNode: 4, PEsPerProc: 2}
	g := gen.RMAT(10, 8, gen.DefaultRMAT(), gen.Config{Seed: 11})
	const source = 0

	procs := topo.TotalProcs()
	workers := make([]*Worker, procs)
	addrs := make([]string, procs)
	for p := 0; p < procs; p++ {
		w, err := NewWorker(g, source, Options{Topo: topo}, p)
		if err != nil {
			t.Fatalf("worker %d: %v", p, err)
		}
		workers[p] = w
		addrs[p] = w.Addr()
	}

	results := make([]*WorkerResult, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for p, w := range workers {
		wg.Add(1)
		go func(p int, w *Worker) {
			defer wg.Done()
			results[p], errs[p] = w.Run(addrs)
		}(p, w)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("worker %d run: %v", p, err)
		}
	}

	dist := make([]float64, g.NumVertices())
	parent := make([]int32, g.NumVertices())
	seen := make([]bool, g.NumVertices())
	for i := range dist {
		dist[i] = math.NaN()
	}
	var boundaryOut, boundaryIn int64
	for p, res := range results {
		for i, v := range res.Vertices {
			if seen[v] {
				t.Fatalf("vertex %d reported by two workers", v)
			}
			seen[v] = true
			dist[v] = res.Dist[i]
			parent[v] = res.Parent[i]
		}
		if un := res.Audit.Unaccounted(); un != 0 {
			t.Errorf("worker %d ledger unbalanced: %d unaccounted\n%+v", p, un, res.Audit)
		}
		if res.Audit.NetQueue != 0 {
			t.Errorf("worker %d fabric not drained: %d queued", p, res.Audit.NetQueue)
		}
		boundaryOut += res.Audit.BoundaryOut
		boundaryIn += res.Audit.BoundaryIn
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d reported by no worker", v)
		}
	}
	if boundaryOut != boundaryIn {
		t.Errorf("launch-wide boundary flow: %d out != %d in", boundaryOut, boundaryIn)
	}
	if boundaryOut == 0 {
		t.Error("no frame crossed a process boundary")
	}
	if results[0].Reductions == 0 {
		t.Error("root worker reported no reductions")
	}

	want := seq.Dijkstra(g, source)
	if !seq.Equal(dist, want.Dist) {
		i := seq.FirstMismatch(dist, want.Dist)
		t.Fatalf("distance mismatch at vertex %d: workers=%v dijkstra=%v", i, dist[i], want.Dist[i])
	}
	// Parents must form a valid shortest-path tree: each reachable
	// non-source vertex improves through an edge from its parent.
	for v := range parent {
		if v == source || math.IsInf(dist[v], 1) {
			continue
		}
		if parent[v] < 0 {
			t.Fatalf("reachable vertex %d has no parent", v)
		}
	}
}

// TestWorkerRejectsBadConfig pins the constructor's validation.
func TestWorkerRejectsBadConfig(t *testing.T) {
	g := gen.Path(8)
	if _, err := NewWorker(g, 0, Options{}, 99); err == nil {
		t.Error("out-of-range proc accepted")
	}
	if _, err := NewWorker(g, -1, Options{}, 0); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := NewWorker(g, 0, Options{Latency: netsim.DefaultLatency()}, 0); err == nil {
		t.Error("latency model accepted on a TCP worker")
	}
}
