package core

import (
	"math"
	"time"

	"acic/internal/arena"
	"acic/internal/graph"
	"acic/internal/histogram"
	"acic/internal/metrics"
	"acic/internal/partition"
	"acic/internal/pq"
	"acic/internal/runtime"
	"acic/internal/trace"
	"acic/internal/tram"
)

// Message types exchanged between PEs. Update batches are the only
// high-volume traffic; everything else is control.
type (
	// seedMsg starts the algorithm on the source vertex's owner.
	seedMsg struct{ source int32 }
	// startMsg makes a PE join the continuous reduction cycle.
	startMsg struct{}
	// batchMsg carries aggregated updates (a tram flush or an
	// intra-process demux forward).
	batchMsg struct{ items []Update }
	// delayedCtrl re-enters the root PE after a ReductionDelay timer.
	delayedCtrl struct{ ctrl ctrlMsg }
)

// ctrlMsg is the broadcast payload closing every reduction cycle.
type ctrlMsg struct {
	thresholds histogram.Thresholds
	// lowestActive is a lower bound on the smallest distance of any active
	// update, used by the optional vertex-finalization condition.
	lowestActive float64
	terminate    bool
	finalizedAll bool
}

// reduceVal is the per-PE contribution combined up the reduction tree.
// holds carries each PE's hold accounting from the previous broadcast's
// drain, so the root's audit record sees machine-wide hold populations.
// Values (with their histograms) recycle through runPools: combineReduce
// frees the absorbed side, OnReduction frees the merged result.
type reduceVal struct {
	hist      *histogram.Histogram
	finalized int64
	holds     holdStats
}

// combineReduce merges b into a and recycles b. It may run concurrently on
// different PE goroutines; the pool is mutex-guarded.
func (sh *sharedState) combineReduce(a, b any) any {
	av, bv := a.(*reduceVal), b.(*reduceVal)
	av.hist.Merge(bv.hist)
	av.finalized += bv.finalized
	av.holds.add(bv.holds)
	sh.pools.putReduceVal(bv)
	return av
}

// peState is the ACIC handler living on one PE. All fields are owned by the
// PE goroutine; the tram manager handles its own cross-PE sharing.
type peState struct {
	shared *sharedState
	params Params

	me     int       // this PE's index
	dist   []float64 // tentative distances for the local vertices
	parent []int32   // predecessor on the best known path, -1 if none

	hist     *histogram.Histogram
	queue    *pq.BinaryHeap       // accepted updates, min-distance first
	pqHold   []arena.List[Update] // per-bucket holds above t_pq
	tramHold []arena.List[Update] // per-bucket holds above t_tram

	// tramDrainFn / pqDrainFn are the hold-drain callbacks, built once at
	// construction so OnBroadcast's drain loop allocates no closures.
	tramDrainFn func(Update)
	pqDrainFn   func(Update)

	// fwdBufs / fwdTouched are receiveBatch's demux scratch: one slot per
	// PE, buffers borrowed from the tram pool only for owners that appear
	// in the batch. fwdTouched lists the borrowed slots so teardown is
	// O(owners present), not O(numPEs).
	fwdBufs    [][]Update
	fwdTouched []int32

	tTram, tPQ   int
	lowestActive float64

	// Local measurement counters, summed by the driver after the run.
	rejected    int64
	relaxations int64

	// pendingHolds is this PE's hold accounting from the most recent
	// broadcast's drain; it rides the next contribution so the root's
	// audit record aggregates machine-wide hold movement.
	pendingHolds holdStats

	// Root-only state (PE 0).
	reductions     int64
	prevEqualSum   int64
	terminated     bool
	finalizedEarly bool
	histTrace      []HistSnapshot
	auditTrace     []ThresholdAudit
}

// Partition abstracts vertex-to-PE placement so ACIC can run on the
// paper's vertex-balanced 1-D blocks (partition.OneD) or the future-work
// over-decomposed chunked layout (partition.Chunked, §V).
type Partition interface {
	NumPEs() int
	Owner(v int32) int
	Size(pe int) int
	LocalIndex(v int32) int
	GlobalOf(pe, local int) int32
}

var (
	_ Partition = (*partition.OneD)(nil)
	_ Partition = (*partition.Chunked)(nil)
)

// sharedState is read-mostly state shared by all PEs of one run. ar is the
// update-chunk arena shared with tramlib (see DESIGN.md, "Arena
// ownership"): hold chunks and demux buffers recycle through the same
// per-PE freelists as tram batches. pools additionally recycles reduction
// contributions.
type sharedState struct {
	g     *graph.Graph
	part  Partition
	tm    *tram.Manager[Update]
	rt    *runtime.Runtime
	tr    *trace.Recorder
	met   coreMetrics
	ar    *arena.Arena[Update]
	pools *runPools

	// Histogram shape, for allocating pooled contributions.
	bucketCount int
	bucketWidth float64
}

// coreMetrics are the algorithm's own instruments, nil (free no-ops) when
// the run has no metrics registry. They mirror the per-PE fields the
// driver sums after the run, but are observable mid-run and per PE — the
// histogram additionally records the size distribution of received update
// batches, the quantity tram's aggregation trades latency for.
type coreMetrics struct {
	created     *metrics.Counter
	processed   *metrics.Counter
	rejected    *metrics.Counter
	relaxations *metrics.Counter
	tramParked  *metrics.Counter
	pqParked    *metrics.Counter
	holdDrained *metrics.Counter
	reductions  *metrics.Counter
	batchItems  *metrics.Histogram
}

func newCoreMetrics(reg *metrics.Registry) coreMetrics {
	return coreMetrics{
		created:     reg.Counter("core.updates_created"),
		processed:   reg.Counter("core.updates_processed"),
		rejected:    reg.Counter("core.updates_rejected"),
		relaxations: reg.Counter("core.relaxations"),
		tramParked:  reg.Counter("core.tram_hold_parked"),
		pqParked:    reg.Counter("core.pq_hold_parked"),
		holdDrained: reg.Counter("core.hold_drained"),
		reductions:  reg.Counter("core.reductions"),
		batchItems:  reg.Histogram("core.batch_items"),
	}
}

var _ runtime.Handler = (*peState)(nil)

// newPEState builds one PE's handler, drawing its large allocations from
// slot so repeated runs through a Scratch reuse them.
func newPEState(sh *sharedState, pe *runtime.PE, p Params, slot *peSlot) *peState {
	me := pe.Index()
	n := sh.part.Size(me)
	if cap(slot.dist) >= n {
		slot.dist = slot.dist[:n]
		slot.parent = slot.parent[:n]
	} else {
		slot.dist = make([]float64, n)
		slot.parent = make([]int32, n)
	}
	if slot.hist == nil {
		slot.hist = histogram.New(p.BucketCount, p.BucketWidth)
	} else {
		slot.hist.Reset()
	}
	if slot.queue == nil {
		slot.queue = pq.NewBinaryHeap(64)
	} else {
		slot.queue.Reset()
	}
	if slot.pqHold == nil {
		slot.pqHold = make([]arena.List[Update], p.BucketCount)
		slot.tramHold = make([]arena.List[Update], p.BucketCount)
	} else {
		// An early-terminated previous run (TerminateOnAllFinal) can leave
		// parked updates behind; hand their chunks back to the arena.
		for b := range slot.pqHold {
			if slot.pqHold[b].Len() > 0 {
				slot.pqHold[b].Drain(sh.ar, me, func(Update) {})
			}
			if slot.tramHold[b].Len() > 0 {
				slot.tramHold[b].Drain(sh.ar, me, func(Update) {})
			}
		}
	}
	if slot.fwdBufs == nil {
		slot.fwdBufs = make([][]Update, sh.part.NumPEs())
		// Each distinct owner appears at most once per batch, so the
		// touched list can never outgrow this.
		slot.fwdTouched = make([]int32, 0, sh.part.NumPEs())
	}
	st := &peState{
		shared:       sh,
		params:       p,
		me:           me,
		dist:         slot.dist,
		parent:       slot.parent,
		hist:         slot.hist,
		queue:        slot.queue,
		pqHold:       slot.pqHold,
		tramHold:     slot.tramHold,
		fwdBufs:      slot.fwdBufs,
		fwdTouched:   slot.fwdTouched[:0],
		tTram:        p.BucketCount - 1, // everything flows until told otherwise
		tPQ:          p.BucketCount - 1,
		lowestActive: 0,
		prevEqualSum: -1,
	}
	for i := range st.dist {
		st.dist[i] = math.Inf(1)
		st.parent[i] = -1
	}
	st.tramDrainFn = func(u Update) { st.tramInsert(pe, u) }
	st.pqDrainFn = func(u Update) {
		// A held update whose vertex has since improved past it is dead:
		// complete it here rather than pay a heap push/pop.
		if st.localDist(u.Vertex) < u.Dist {
			st.hist.AddProcessed(u.Dist)
			st.shared.met.processed.Inc(st.me)
			return
		}
		st.queue.Push(pq.Item{Key: u.Dist, Value: int64(u.Vertex)})
	}
	return st
}

func (st *peState) localDist(v int32) float64 { return st.dist[st.shared.part.LocalIndex(v)] }
func (st *peState) setDist(v int32, d float64) {
	st.dist[st.shared.part.LocalIndex(v)] = d
}

// Deliver implements runtime.Handler.
func (st *peState) Deliver(pe *runtime.PE, msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveBatch(pe, m.items)
	case seedMsg:
		st.seed(pe, m.source)
	case startMsg:
		st.contribute(pe, 0)
	case delayedCtrl:
		pe.Broadcast(st.reductions, m.ctrl)
	case runtime.Quiescence:
		// ACIC detects quiescence itself; the runtime-level detector is
		// not enabled for ACIC runs. Ignore defensively.
	}
}

// seed performs the virtual relaxation of the source vertex: distance 0,
// one onward update per out-edge (§II-A). The virtual update is counted
// created and processed so the quiescence counters can never both be zero
// after seeding, closing the empty-start termination race.
func (st *peState) seed(pe *runtime.PE, source int32) {
	st.hist.AddCreated(0)
	st.shared.met.created.Inc(st.me)
	st.setDist(source, 0)
	st.relaxOutEdges(pe, source, 0)
	st.hist.AddProcessed(0)
	st.shared.met.processed.Inc(st.me)
}

// receiveBatch demultiplexes an arriving tram batch. Under process-
// granularity aggregation the batch may hold updates for sibling PEs; those
// are re-bundled per owner and forwarded intra-process, the role of the SMP
// communication thread in the paper's configuration.
func (st *peState) receiveBatch(pe *runtime.PE, items []Update) {
	me := pe.Index()
	st.shared.met.batchItems.Observe(me, int64(len(items)))
	for _, u := range items {
		owner := st.shared.part.Owner(u.Vertex)
		if owner == me {
			st.receiveUpdate(pe, u)
			continue
		}
		// Per-owner groups go into buffers borrowed from the tram pool.
		// A batch never exceeds the tram capacity, so a group always fits
		// one full-capacity buffer.
		buf := st.fwdBufs[owner]
		if buf == nil {
			buf = st.shared.tm.Borrow(me)
			st.fwdTouched = append(st.fwdTouched, int32(owner))
		}
		st.fwdBufs[owner] = append(buf, u)
	}
	for _, owner := range st.fwdTouched {
		group := st.fwdBufs[owner]
		st.fwdBufs[owner] = nil
		// Ownership of the buffer travels with the message; the receiving
		// PE's receiveBatch returns it to the pool.
		pe.Send(int(owner), batchMsg{items: group}, len(group))
	}
	st.fwdTouched = st.fwdTouched[:0]
	// The batch is fully unpacked (items copied or applied): recycle its
	// backing array into this PE's freelist, lock-free.
	st.shared.tm.ReleaseTo(me, items)
}

// receiveUpdate applies the arrival rules of §II-C: an update that improves
// the vertex distance is applied immediately and parked in pq or pq_hold by
// the pq threshold; anything else is rejected and counted processed.
//
//acic:noalloc
func (st *peState) receiveUpdate(pe *runtime.PE, u Update) {
	if st.params.ComputeCost > 0 {
		pe.Work(st.params.ComputeCost)
	}
	if u.Dist < st.localDist(u.Vertex) {
		li := st.shared.part.LocalIndex(u.Vertex)
		st.dist[li] = u.Dist
		st.parent[li] = u.Pred
		if b := st.hist.BucketOf(u.Dist); b <= st.tPQ {
			st.queue.Push(pq.Item{Key: u.Dist, Value: int64(u.Vertex)})
		} else {
			st.pqHold[b].Append(st.shared.ar, st.me, u)
			st.shared.met.pqParked.Inc(st.me)
		}
		return
	}
	st.rejected++
	st.hist.AddProcessed(u.Dist)
	st.shared.met.rejected.Inc(st.me)
	st.shared.met.processed.Inc(st.me)
}

// Idle implements the paper's idle trigger: pop the lowest-distance update
// and, only if it still carries the vertex's best known distance, relax the
// out-edges (§II-C). One pop per invocation keeps the PE responsive to
// arriving messages.
//
//acic:noalloc
func (st *peState) Idle(pe *runtime.PE) bool {
	if st.queue.Len() == 0 {
		return false
	}
	it := st.queue.Pop()
	v := int32(it.Value)
	d := it.Key
	if st.localDist(v) == d {
		st.relaxOutEdges(pe, v, d)
	}
	// Either way the update's processing is now complete: superseded
	// entries produce no onward updates.
	st.hist.AddProcessed(d)
	st.shared.met.processed.Inc(st.me)
	return true
}

// relaxOutEdges creates one onward update per out-edge of v (§II-A) and
// routes each through the tram threshold.
//
//acic:noalloc
func (st *peState) relaxOutEdges(pe *runtime.PE, v int32, d float64) {
	ts, ws := st.shared.g.Neighbors(int(v))
	for i, w := range ts {
		st.createUpdate(pe, Update{Vertex: w, Pred: v, Dist: d + ws[i]})
	}
	st.relaxations += int64(len(ts))
	st.shared.met.relaxations.Add(st.me, int64(len(ts)))
	if st.params.ComputeCost > 0 {
		pe.Work(time.Duration(len(ts)) * st.params.ComputeCost)
	}
}

// createUpdate registers a new update in the histogram and either hands it
// to tramlib (bucket within t_tram) or parks it in tram_hold.
//
//acic:noalloc
func (st *peState) createUpdate(pe *runtime.PE, u Update) {
	st.hist.AddCreated(u.Dist)
	st.shared.met.created.Inc(st.me)
	if b := st.hist.BucketOf(u.Dist); b <= st.tTram {
		st.tramInsert(pe, u)
	} else {
		st.tramHold[b].Append(st.shared.ar, st.me, u)
		st.shared.met.tramParked.Inc(st.me)
	}
}

// tramInsert feeds tramlib and ships the flushed batch when one comes
// back.
//
//acic:noalloc
func (st *peState) tramInsert(pe *runtime.PE, u Update) {
	dst := st.shared.part.Owner(u.Vertex)
	if batch := st.shared.tm.Insert(pe.Index(), dst, u); batch != nil {
		pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items)) //acic:allow-alloc one batchMsg boxing per flushed batch, amortized over its items
	}
}

// contribute snapshots the local histogram (and, optionally, the count of
// locally finalized vertices) into reduction epoch.
func (st *peState) contribute(pe *runtime.PE, epoch int64) {
	sh := st.shared
	rv := sh.pools.getReduceVal(sh.bucketCount, sh.bucketWidth)
	st.hist.SnapshotInto(rv.hist)
	rv.finalized = 0
	rv.holds = st.pendingHolds
	st.pendingHolds = holdStats{}
	if st.params.TerminateOnAllFinal {
		rv.finalized = st.countFinalized()
	}
	pe.Contribute(epoch, rv)
}

// countHeld sums a hold's population across all buckets.
func countHeld(hold []arena.List[Update]) int64 {
	var n int64
	for i := range hold {
		n += int64(hold[i].Len())
	}
	return n
}

// countFinalized counts local vertices whose distance is already below
// every active update's distance — they can never improve (non-negative
// weights). Unreachable vertices (Inf) never qualify, the flaw that made
// the paper abandon this as the sole termination condition.
func (st *peState) countFinalized() int64 {
	var n int64
	for _, d := range st.dist {
		if d < st.lowestActive {
			n++
		}
	}
	return n
}

// OnReduction runs at the root: Algorithm 1 plus the quiescence check.
func (st *peState) OnReduction(pe *runtime.PE, epoch int64, value any) {
	rv := value.(*reduceVal)
	// Everything below copies what it keeps (audit, trace snapshots), so
	// the merged contribution goes back to the pool on every exit path.
	defer st.shared.pools.putReduceVal(rv)
	if st.terminated {
		return
	}
	global := rv.hist
	st.reductions++
	st.shared.met.reductions.Inc(st.me)

	ctrl := ctrlMsg{}

	// Quiescence: equal created/processed sums in two consecutive
	// reductions (§II-D). The paper requires two to close the race where
	// counters match while messages are still unprocessed.
	c, p := global.Created, global.Processed
	if c == p && c > 0 {
		if st.prevEqualSum == c {
			ctrl.terminate = true
		}
		st.prevEqualSum = c
	} else {
		st.prevEqualSum = -1
	}

	// Experimental early termination: all vertices finalized (§II-D).
	if st.params.TerminateOnAllFinal && rv.finalized == int64(st.shared.g.NumVertices()) {
		ctrl.terminate = true
		ctrl.finalizedAll = true
		st.finalizedEarly = true
	}

	numPEs := pe.NumPEs()
	hp := histogram.Params{PTram: st.params.PTram, PPQ: st.params.PPQ, LowWatermarkPerPE: st.params.LowWatermarkPerPE}
	if st.params.SmoothThresholds {
		ctrl.thresholds = histogram.ComputeSmoothThresholds(global, numPEs, hp)
	} else {
		ctrl.thresholds = histogram.ComputeThresholds(global, numPEs, hp)
	}
	if lb := global.LowestNonEmpty(); lb >= 0 {
		ctrl.lowestActive = float64(lb) * global.Width()
	} else {
		ctrl.lowestActive = math.Inf(1)
	}

	if st.params.AuditTrace {
		st.auditTrace = append(st.auditTrace,
			newThresholdAudit(epoch, global, rv.holds, ctrl.thresholds))
	}

	if st.params.HistogramTrace {
		snap := HistSnapshot{
			Epoch:  epoch,
			Active: global.Active(),
			TTram:  ctrl.thresholds.Tram,
			TPQ:    ctrl.thresholds.PQ,
		}
		snap.Buckets = make([]int64, global.NumBuckets())
		for i := range snap.Buckets {
			snap.Buckets[i] = global.Bucket(i)
		}
		st.histTrace = append(st.histTrace, snap)
	}

	if st.params.ReductionDelay > 0 && !ctrl.terminate {
		rt := st.shared.rt
		time.AfterFunc(st.params.ReductionDelay, func() {
			rt.Inject(0, delayedCtrl{ctrl: ctrl})
		})
		return
	}
	pe.Broadcast(epoch, ctrl)
}

// OnBroadcast applies a control broadcast on every PE: adopt the new
// thresholds, drain the holds they release (lowest buckets first, §II-C),
// explicitly flush tramlib (tail progress, §II-D), and join the next
// reduction cycle.
func (st *peState) OnBroadcast(pe *runtime.PE, epoch int64, payload any) {
	ctrl := payload.(ctrlMsg)
	if ctrl.terminate {
		st.terminated = true
		pe.Exit()
		return
	}
	st.tTram = ctrl.thresholds.Tram
	st.tPQ = ctrl.thresholds.PQ
	st.lowestActive = ctrl.lowestActive

	holds := holdStats{
		tramHeldBefore: countHeld(st.tramHold),
		pqHeldBefore:   countHeld(st.pqHold),
	}

	// Release tram holds within the new threshold, ascending buckets.
	// Drain hands each emptied chunk straight back to this PE's freelist.
	ar := st.shared.ar
	for b := 0; b <= st.tTram; b++ {
		if n := st.tramHold[b].Len(); n > 0 {
			holds.tramDrained += int64(n)
			st.tramHold[b].Drain(ar, st.me, st.tramDrainFn)
		}
	}
	// Release pq holds within the new threshold (dead-update elision lives
	// in pqDrainFn).
	for b := 0; b <= st.tPQ; b++ {
		if n := st.pqHold[b].Len(); n > 0 {
			holds.pqDrained += int64(n)
			st.pqHold[b].Drain(ar, st.me, st.pqDrainFn)
		}
	}
	holds.tramHeldAfter = holds.tramHeldBefore - holds.tramDrained
	holds.pqHeldAfter = holds.pqHeldBefore - holds.pqDrained
	st.pendingHolds = holds
	if drained := holds.tramDrained + holds.pqDrained; drained > 0 {
		st.shared.met.holdDrained.Add(st.me, drained)
		if st.shared.tr != nil {
			st.shared.tr.Record(st.me, trace.KindHoldDrain, drained)
		}
	}
	// Explicit tram flush: guarantees buffered updates move even when the
	// tail of the graph cannot fill a buffer.
	for _, batch := range st.shared.tm.FlushSet(pe.Index()) {
		pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items))
	}
	st.contribute(pe, epoch+1)
}
