package core

import (
	"testing"
	"testing/quick"
	"time"

	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/seq"
	"acic/internal/tram"
)

// runAndVerify executes ACIC and checks the distance vector against
// Dijkstra, returning the result for further assertions.
func runAndVerify(t *testing.T, g *graph.Graph, source int, opts Options) *Result {
	t.Helper()
	res := mustRun(t, g, source, opts)
	want := seq.Dijkstra(g, source)
	if !seq.Equal(res.Dist, want.Dist) {
		i := seq.FirstMismatch(res.Dist, want.Dist)
		t.Fatalf("distance mismatch at vertex %d: acic=%v dijkstra=%v", i, res.Dist[i], want.Dist[i])
	}
	return res
}

func mustRun(t *testing.T, g *graph.Graph, source int, opts Options) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(g, source, opts)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("Run failed: %v", o.err)
		}
		return o.res
	case <-time.After(60 * time.Second):
		t.Fatal("ACIC run did not terminate")
		return nil
	}
}

func TestDiamondGraph(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 0, To: 2, Weight: 4},
		{From: 1, To: 2, Weight: 2}, {From: 1, To: 3, Weight: 6},
		{From: 2, To: 3, Weight: 3},
	})
	res := runAndVerify(t, g, 0, Options{})
	if res.Stats.UpdatesCreated != res.Stats.UpdatesProcessed {
		t.Errorf("not quiescent: created %d != processed %d",
			res.Stats.UpdatesCreated, res.Stats.UpdatesProcessed)
	}
	if res.Stats.UpdatesCreated == 0 {
		t.Error("no updates counted")
	}
}

func TestFixtures(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":      gen.Path(200),
		"star":      gen.Star(200),
		"cycle":     gen.Cycle(100),
		"grid":      gen.Grid(12, 12, gen.Config{Seed: 1}),
		"complete":  gen.Complete(30, gen.Config{Seed: 2}),
		"singleton": graph.MustBuild(1, nil),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			runAndVerify(t, g, 0, Options{})
		})
	}
}

func TestUnreachableVertices(t *testing.T) {
	// Two components; quiescence must terminate despite vertices that never
	// receive an update (the situation that sank the finalization-only
	// termination condition, §II-D).
	g := graph.MustBuild(6, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1},
		{From: 3, To: 4, Weight: 1}, {From: 4, To: 5, Weight: 1},
	})
	res := runAndVerify(t, g, 0, Options{})
	for v := 3; v < 6; v++ {
		if res.Dist[v] != seq.Inf {
			t.Errorf("unreachable vertex %d got distance %v", v, res.Dist[v])
		}
	}
}

func TestSourceWithNoOutEdges(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{{From: 1, To: 2, Weight: 1}})
	res := runAndVerify(t, g, 0, Options{})
	if res.Dist[0] != 0 {
		t.Errorf("source distance = %v", res.Dist[0])
	}
}

func TestNonZeroSource(t *testing.T) {
	g := gen.Grid(10, 10, gen.Config{Seed: 3})
	runAndVerify(t, g, 57, Options{})
}

func TestRandomGraphSingleNode(t *testing.T) {
	g := gen.Uniform(2000, 16000, gen.Config{Seed: 4})
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(8)})
	if res.Stats.Reductions == 0 {
		t.Error("no reductions completed — introspection loop never ran")
	}
}

func TestRMATGraphSingleNode(t *testing.T) {
	g := gen.RMAT(11, 8, gen.DefaultRMAT(), gen.Config{Seed: 5})
	runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(8)})
}

func TestMultiNodeWithLatency(t *testing.T) {
	g := gen.Uniform(1500, 12000, gen.Config{Seed: 6})
	opts := Options{
		Topo:    netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 3},
		Latency: netsim.LatencyModel{IntraProcess: time.Microsecond, IntraNode: 3 * time.Microsecond, InterNode: 10 * time.Microsecond, PerItem: 5 * time.Nanosecond},
	}
	runAndVerify(t, g, 0, opts)
}

func TestAllTramModes(t *testing.T) {
	g := gen.Uniform(1000, 8000, gen.Config{Seed: 7})
	for _, mode := range []tram.Mode{tram.WW, tram.WP, tram.PW, tram.PP} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			p := DefaultParams()
			p.TramMode = mode
			runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(6), Params: p})
		})
	}
}

func TestTramCapacities(t *testing.T) {
	g := gen.Uniform(1000, 8000, gen.Config{Seed: 8})
	for _, capacity := range tram.SupportedCapacities {
		p := DefaultParams()
		p.TramCapacity = capacity
		runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
	}
}

func TestPercentileExtremes(t *testing.T) {
	g := gen.Uniform(800, 6400, gen.Config{Seed: 9})
	for _, c := range []struct{ ptram, ppq float64 }{
		{0.05, 0.05}, {0.999, 0.999}, {0.05, 0.999}, {0.999, 0.05}, {0.5, 0.5},
	} {
		p := DefaultParams()
		p.PTram, p.PPQ = c.ptram, c.ppq
		runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
	}
}

func TestSmallBucketCountAndWidth(t *testing.T) {
	g := gen.Grid(8, 8, gen.Config{Seed: 10})
	p := DefaultParams()
	p.BucketCount = 16
	p.BucketWidth = 50
	runAndVerify(t, g, 0, Options{Params: p})
}

func TestReductionDelayThrottling(t *testing.T) {
	g := gen.Uniform(500, 4000, gen.Config{Seed: 11})
	p := DefaultParams()
	p.ReductionDelay = 200 * time.Microsecond
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
	if res.Stats.Reductions == 0 {
		t.Error("no reductions with delay")
	}
}

func TestSinglePE(t *testing.T) {
	g := gen.Uniform(300, 2400, gen.Config{Seed: 12})
	runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(1)})
}

func TestMorePEsThanVertices(t *testing.T) {
	g := gen.Complete(6, gen.Config{Seed: 13})
	runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(8)})
}

func TestVertexFinalizationTermination(t *testing.T) {
	// On a strongly connected graph every vertex is reachable, so the
	// experimental condition can fire and must still yield correct results.
	g := gen.Grid(8, 8, gen.Config{Seed: 14})
	p := DefaultParams()
	p.TerminateOnAllFinal = true
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
	_ = res // FinalizedEarly may or may not fire depending on timing; both are valid.
}

func TestVertexFinalizationNeverFiresWithUnreachable(t *testing.T) {
	// The paper's abandonment rationale: with unreachable vertices the
	// finalization count cannot reach |V|, so quiescence must do the job.
	g := graph.MustBuild(10, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1},
	})
	p := DefaultParams()
	p.TerminateOnAllFinal = true
	res := runAndVerify(t, g, 0, Options{Params: p})
	if res.Stats.FinalizedEarly {
		t.Error("finalization condition fired despite unreachable vertices")
	}
}

func TestHistogramTrace(t *testing.T) {
	g := gen.Uniform(1000, 8000, gen.Config{Seed: 15})
	p := DefaultParams()
	p.HistogramTrace = true
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
	if len(res.Stats.HistTrace) == 0 {
		t.Fatal("no histogram snapshots recorded")
	}
	if int64(len(res.Stats.HistTrace)) != res.Stats.Reductions {
		t.Errorf("trace length %d != reductions %d", len(res.Stats.HistTrace), res.Stats.Reductions)
	}
	last := res.Stats.HistTrace[len(res.Stats.HistTrace)-1]
	if last.Active != 0 {
		t.Errorf("final snapshot has %d active updates, want 0", last.Active)
	}
}

func TestStatsConsistency(t *testing.T) {
	g := gen.Uniform(1200, 9600, gen.Config{Seed: 16})
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4)})
	s := res.Stats
	if s.UpdatesCreated != s.UpdatesProcessed {
		t.Errorf("created %d != processed %d at termination", s.UpdatesCreated, s.UpdatesProcessed)
	}
	// Every created update is either rejected or relaxed or superseded;
	// rejected must not exceed processed.
	if s.UpdatesRejected > s.UpdatesProcessed {
		t.Errorf("rejected %d > processed %d", s.UpdatesRejected, s.UpdatesProcessed)
	}
	// Relaxations + 1 seed == created (each onward update comes from a
	// relaxation; the virtual seed adds one created).
	if s.Relaxations+1 != s.UpdatesCreated {
		t.Errorf("relaxations %d + 1 != created %d", s.Relaxations, s.UpdatesCreated)
	}
	if s.TramStats.Items == 0 {
		t.Error("tram carried no items")
	}
	if s.Elapsed <= 0 {
		t.Error("elapsed time not measured")
	}
}

func TestFewerUpdatesThanBellmanFordStyleFlooding(t *testing.T) {
	// ACIC's pq discipline should keep relaxations well below a full
	// label-correcting flood (Bellman-Ford edge scans) on a low-diameter
	// random graph — the mechanism behind Fig. 9.
	g := gen.Uniform(2000, 16000, gen.Config{Seed: 17})
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4)})
	bf := seq.BellmanFord(g, 0)
	if res.Stats.Relaxations >= bf.Relaxations {
		t.Errorf("ACIC relaxations %d not below Bellman-Ford %d",
			res.Stats.Relaxations, bf.Relaxations)
	}
}

func TestRunValidation(t *testing.T) {
	g := gen.Path(10)
	if _, err := Run(g, -1, Options{}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := Run(g, 10, Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	bad := Options{Params: Params{PTram: 2}}
	if _, err := Run(g, 0, bad); err == nil {
		t.Error("p_tram > 1 accepted")
	}
	badTopo := Options{Topo: netsim.Topology{Nodes: -1, ProcsPerNode: 1, PEsPerProc: 1}}
	if _, err := Run(g, 0, badTopo); err == nil {
		t.Error("invalid topology accepted")
	}
}

func TestDeterministicDistances(t *testing.T) {
	// Distances must be identical across runs (message timing varies but
	// the fixed point does not).
	g := gen.RMAT(9, 8, gen.DefaultRMAT(), gen.Config{Seed: 18})
	a := mustRun(t, g, 0, Options{Topo: netsim.SingleNode(4)})
	b := mustRun(t, g, 0, Options{Topo: netsim.SingleNode(4)})
	if !seq.Equal(a.Dist, b.Dist) {
		t.Error("two runs disagree on distances")
	}
}

// Property: ACIC matches Dijkstra on arbitrary random graphs, sources, PE
// counts and percentile parameters.
func TestQuickMatchesDijkstra(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint64, nRaw uint8, srcRaw uint8, pesRaw uint8, ptRaw, pqRaw uint8) bool {
		n := int(nRaw%200) + 2
		m := n * 6
		src := int(srcRaw) % n
		pes := int(pesRaw%6) + 1
		g := gen.Uniform(n, m, gen.Config{Seed: seed, MaxWeight: 100})
		p := DefaultParams()
		p.PTram = 0.05 + float64(ptRaw%10)*0.09
		p.PPQ = 0.05 + float64(pqRaw%10)*0.09
		res, err := Run(g, src, Options{Topo: netsim.SingleNode(pes), Params: p})
		if err != nil {
			return false
		}
		return seq.Equal(res.Dist, seq.Dijkstra(g, src).Dist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkACICUniform(b *testing.B) {
	g := gen.Uniform(1<<12, 16<<12, gen.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, 0, Options{Topo: netsim.SingleNode(8)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkACICRMAT(b *testing.B) {
	g := gen.RMAT(12, 16, gen.DefaultRMAT(), gen.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, 0, Options{Topo: netsim.SingleNode(8)}); err != nil {
			b.Fatal(err)
		}
	}
}
