package core

// Delivery-semantics tests for the full algorithm over a hostile fabric.
// They pin three facts about ACIC's messaging assumptions:
//
//   - Reordering alone is harmless even without the reliability layer: edge
//     relaxations are order-insensitive (the dist(v) <= d dead-update guard
//     rejects stale arrivals) and the control plane is causally serialized —
//     a PE contributes to epoch e+1 only after receiving broadcast e, so at
//     most one control message is ever in flight per tree edge.
//   - Message loss without the reliability layer hangs loudly — the
//     quiescence counters stay unequal forever — never silently corrupts
//     distances (the PR 3 drop-hangs contract, now at the algorithm level).
//   - With Options.Reliability set, the same drop/dup faults are healed by
//     retransmission and dedup: distances match Dijkstra exactly and the
//     extended conservation ledger balances to zero.

import (
	"sync/atomic"
	"testing"
	"time"

	"acic/internal/gen"
	"acic/internal/netsim"
	"acic/internal/relnet"
)

func TestReorderFaultAloneOracleCorrect(t *testing.T) {
	g := gen.Uniform(400, 1600, gen.Config{Seed: 11, MaxWeight: 100})
	var n atomic.Int64
	opts := Options{
		Topo: netsim.SingleNode(4),
		Fault: netsim.FaultPlan{
			Reorder: func(src, dst, size int) (time.Duration, bool) {
				return 300 * time.Microsecond, n.Add(1)%9 == 0
			},
		},
	}
	res := runAndVerify(t, g, 0, opts)
	if res.Stats.Network.Reordered == 0 {
		t.Error("Reordered = 0: the filter never fired, nothing was stressed")
	}
	if u := res.Stats.Audit.Unaccounted(); u != 0 {
		t.Errorf("Unaccounted = %d, want 0; ledger: %+v", u, res.Stats.Audit)
	}
}

func TestDropFaultHangsLoudlyWithoutReliability(t *testing.T) {
	g := gen.Uniform(200, 800, gen.Config{Seed: 12, MaxWeight: 100})
	var n atomic.Int64
	opts := Options{
		Topo: netsim.SingleNode(4),
		Fault: netsim.FaultPlan{
			Drop: func(src, dst, size int) bool { return n.Add(1)%6 == 0 },
		},
	}
	done := make(chan struct{})
	go func() {
		Run(g, 0, opts) // abandoned on hang; the goroutine leak is the point
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("run terminated despite dropped messages — quiescence fired on unequal counters")
	case <-time.After(1500 * time.Millisecond):
		// Hung, as the bare runtime's at-most-once contract demands.
	}
}

func TestDropFaultRecoversWithReliability(t *testing.T) {
	g := gen.Uniform(400, 1600, gen.Config{Seed: 12, MaxWeight: 100})
	var n atomic.Int64
	opts := Options{
		Topo: netsim.SingleNode(4),
		Fault: netsim.FaultPlan{
			Drop: func(src, dst, size int) bool { return n.Add(1)%6 == 0 },
		},
		Reliability: &relnet.Config{},
	}
	res := runAndVerify(t, g, 0, opts)
	a := res.Stats.Audit
	if a.NetDropped == 0 {
		t.Error("NetDropped = 0: the filter never fired")
	}
	if a.Retransmits == 0 {
		t.Error("Retransmits = 0, want > 0: recovery must go through the timeout path")
	}
	if u := a.Unaccounted(); u != 0 {
		t.Errorf("Unaccounted = %d, want 0; ledger: %+v", u, a)
	}
	if ts := res.Stats.TramStats; ts.PoolGets != ts.PoolPuts {
		t.Errorf("tram pool leak under retransmission: PoolGets=%d PoolPuts=%d", ts.PoolGets, ts.PoolPuts)
	}
}

func TestDupFaultSwallowedWithReliability(t *testing.T) {
	g := gen.Uniform(400, 1600, gen.Config{Seed: 13, MaxWeight: 100})
	var n atomic.Int64
	opts := Options{
		Topo: netsim.SingleNode(4),
		Fault: netsim.FaultPlan{
			Dup: func(src, dst, size int) (time.Duration, bool) {
				return 150 * time.Microsecond, n.Add(1)%5 == 0
			},
		},
		Reliability: &relnet.Config{},
	}
	res := runAndVerify(t, g, 0, opts)
	a := res.Stats.Audit
	if a.NetDuplicated == 0 {
		t.Error("NetDuplicated = 0: the filter never fired")
	}
	if a.DupDiscarded == 0 {
		t.Error("DupDiscarded = 0, want > 0: ghost copies must hit the dedup window")
	}
	if u := a.Unaccounted(); u != 0 {
		t.Errorf("Unaccounted = %d, want 0; ledger: %+v", u, a)
	}
	// The double-delivery hazard for pooled tram batches: a ghost copy that
	// reached a handler would Release the same batch twice.
	if ts := res.Stats.TramStats; ts.PoolGets != ts.PoolPuts {
		t.Errorf("tram pool imbalance under duplication: PoolGets=%d PoolPuts=%d", ts.PoolGets, ts.PoolPuts)
	}
}

func TestLossyGauntletWithReliability(t *testing.T) {
	g := gen.Uniform(500, 2000, gen.Config{Seed: 14, MaxWeight: 100})
	var n atomic.Int64
	opts := Options{
		Topo:    netsim.SingleNode(4),
		Latency: netsim.LatencyModel{IntraProcess: 2 * time.Microsecond},
		Fault: netsim.FaultPlan{
			Drop: func(src, dst, size int) bool { return n.Add(1)%17 == 3 },
			Dup: func(src, dst, size int) (time.Duration, bool) {
				return 100 * time.Microsecond, n.Add(1)%13 == 5
			},
			Reorder: func(src, dst, size int) (time.Duration, bool) {
				return 250 * time.Microsecond, n.Add(1)%11 == 7
			},
		},
		Reliability: &relnet.Config{},
	}
	res := runAndVerify(t, g, 0, opts)
	a := res.Stats.Audit
	ns := res.Stats.Network
	if ns.Dropped == 0 || ns.Duplicated == 0 || ns.Reordered == 0 {
		t.Errorf("gauntlet under-stressed: dropped=%d duplicated=%d reordered=%d", ns.Dropped, ns.Duplicated, ns.Reordered)
	}
	if u := a.Unaccounted(); u != 0 {
		t.Errorf("Unaccounted = %d, want 0; ledger: %+v", u, a)
	}
	if ts := res.Stats.TramStats; ts.PoolGets != ts.PoolPuts {
		t.Errorf("tram pool leak: PoolGets=%d PoolPuts=%d", ts.PoolGets, ts.PoolPuts)
	}
}
