package core

// Fig. 2 of the paper is the update lifecycle diagram: an update is created
// (relax), flows through tram_hold and/or tramlib to its destination, and
// ends as either rejected or processed after onward creation; reductions
// and broadcasts modulate the flow. These tests check the global invariants
// that lifecycle implies, observed through the per-reduction histogram
// trace.

import (
	"testing"

	"acic/internal/gen"
	"acic/internal/netsim"
)

func traceRun(t *testing.T, seed uint64) *Result {
	t.Helper()
	g := gen.Uniform(1200, 9600, gen.Config{Seed: seed})
	p := DefaultParams()
	p.HistogramTrace = true
	return runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
}

func TestLifecycleActiveCountNeverNegative(t *testing.T) {
	// At any reduction, the global active count (created - processed) must
	// be non-negative: an update cannot complete processing before it was
	// created, in any interleaving.
	res := traceRun(t, 101)
	for i, snap := range res.Stats.HistTrace {
		if snap.Active < 0 {
			t.Fatalf("snapshot %d: negative active count %d", i, snap.Active)
		}
	}
}

func TestLifecycleBucketsSumToActive(t *testing.T) {
	// Each merged snapshot's bucket sum must equal its created-processed
	// difference: increments and decrements balance globally even though
	// individual PE histograms go negative (§II-B).
	res := traceRun(t, 102)
	for i, snap := range res.Stats.HistTrace {
		var sum int64
		for _, b := range snap.Buckets {
			sum += b
		}
		if sum != snap.Active {
			t.Fatalf("snapshot %d: bucket sum %d != active %d", i, sum, snap.Active)
		}
	}
}

func TestLifecycleDrainsToZero(t *testing.T) {
	// The run ends quiescent: the final snapshots show zero active updates
	// and an empty histogram.
	res := traceRun(t, 103)
	last := res.Stats.HistTrace[len(res.Stats.HistTrace)-1]
	if last.Active != 0 {
		t.Fatalf("final snapshot active = %d", last.Active)
	}
	for b, v := range last.Buckets {
		if v != 0 {
			t.Fatalf("final snapshot bucket %d = %d", b, v)
		}
	}
}

func TestLifecycleLowestBucketAdvances(t *testing.T) {
	// Fig. 1/Fig. 2 consequence: as the run progresses, low-distance
	// updates complete first, so the lowest occupied bucket of the global
	// histogram is (weakly) higher late in the run than at its start.
	res := traceRun(t, 104)
	lowest := func(s HistSnapshot) int {
		for i, b := range s.Buckets {
			if b > 0 {
				return i
			}
		}
		return len(s.Buckets)
	}
	trace := res.Stats.HistTrace
	if len(trace) < 4 {
		t.Skip("run too short for trend analysis")
	}
	early := lowest(trace[len(trace)/4])
	// Use the last non-empty snapshot: the final ones are fully drained.
	late := early
	for i := len(trace) - 1; i >= 0; i-- {
		if trace[i].Active > 0 {
			late = lowest(trace[i])
			break
		}
	}
	if late < early {
		t.Errorf("lowest occupied bucket regressed: early %d, late %d", early, late)
	}
}

func TestLifecycleEveryUpdateAccountedFor(t *testing.T) {
	// created == processed == rejected + relaxation-producing + superseded.
	// We cannot observe the last two separately from outside, but their sum
	// is processed - rejected, which must be non-negative and at least the
	// number of accepted updates that performed relaxations (one per
	// relaxed vertex occurrence). Sanity: rejected <= processed and
	// relaxations <= created.
	res := traceRun(t, 105)
	s := res.Stats
	if s.UpdatesRejected > s.UpdatesProcessed {
		t.Errorf("rejected %d > processed %d", s.UpdatesRejected, s.UpdatesProcessed)
	}
	if s.Relaxations >= s.UpdatesCreated {
		t.Errorf("relaxations %d >= created %d (virtual seed must add one)", s.Relaxations, s.UpdatesCreated)
	}
}
