package core

// Tests for shortest-path-tree (parent) tracking: the Parent array must
// form a valid tree whose path costs equal the computed distances.

import (
	"math"
	"testing"

	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
)

// validateTree checks that every reachable vertex's parent chain walks back
// to the source along existing edges whose weights sum to Dist[v].
func validateTree(t *testing.T, g *graph.Graph, source int, res *Result) {
	t.Helper()
	// Index edges for weight lookup: minimum parallel-edge weight wins.
	type key struct{ from, to int32 }
	w := make(map[key]float64)
	g.EachEdge(func(from, to int32, wt float64) {
		k := key{from, to}
		if old, ok := w[k]; !ok || wt < old {
			w[k] = wt
		}
	})
	if res.Parent[source] != -1 {
		t.Errorf("source parent = %d, want -1", res.Parent[source])
	}
	for v := 0; v < g.NumVertices(); v++ {
		if math.IsInf(res.Dist[v], 1) {
			if res.Parent[v] != -1 {
				t.Errorf("unreachable vertex %d has parent %d", v, res.Parent[v])
			}
			continue
		}
		if v == source {
			continue
		}
		p := res.Parent[v]
		if p < 0 {
			t.Errorf("reachable vertex %d has no parent", v)
			continue
		}
		ew, ok := w[key{p, int32(v)}]
		if !ok {
			t.Errorf("parent edge %d->%d does not exist", p, v)
			continue
		}
		// The tree edge must be tight: dist[v] == dist[p] + weight for
		// SOME parallel edge; with the min-weight index, allow >=.
		if diff := res.Dist[v] - (res.Dist[p] + ew); diff > 1e-9 || diff < -1e-9 {
			// A heavier parallel edge may have been the accepted one only
			// if it still matches the distance; with min-weight lookup a
			// negative diff is impossible and positive means non-tight.
			if diff < 0 {
				t.Errorf("vertex %d: dist %v below parent %d path %v", v, res.Dist[v], p, res.Dist[p]+ew)
			}
		}
	}
	// Every reachable vertex's PathTo must start at source and end at v.
	for _, v := range []int{0, g.NumVertices() / 2, g.NumVertices() - 1} {
		path := res.PathTo(v)
		if math.IsInf(res.Dist[v], 1) {
			if path != nil {
				t.Errorf("PathTo(%d) non-nil for unreachable vertex", v)
			}
			continue
		}
		if len(path) == 0 || path[0] != int32(source) || path[len(path)-1] != int32(v) {
			t.Errorf("PathTo(%d) = %v, want source-to-v sequence", v, path)
		}
	}
}

func TestParentTreeOnFixtures(t *testing.T) {
	cases := map[string]*graph.Graph{
		"grid":    gen.Grid(10, 10, gen.Config{Seed: 30}),
		"uniform": gen.Uniform(800, 6400, gen.Config{Seed: 31}),
		"rmat":    gen.RMAT(10, 8, gen.DefaultRMAT(), gen.Config{Seed: 32}),
		"path":    gen.Path(60),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4)})
			validateTree(t, g, 0, res)
		})
	}
}

func TestParentTreeWithUnreachable(t *testing.T) {
	g := graph.MustBuild(5, []graph.Edge{{From: 0, To: 1, Weight: 3}})
	res := runAndVerify(t, g, 0, Options{})
	validateTree(t, g, 0, res)
	if res.PathTo(4) != nil {
		t.Error("PathTo for unreachable vertex should be nil")
	}
	if p := res.PathTo(1); len(p) != 2 || p[0] != 0 || p[1] != 1 {
		t.Errorf("PathTo(1) = %v", p)
	}
}

func TestPathToBounds(t *testing.T) {
	g := gen.Path(5)
	res := mustRun(t, g, 0, Options{})
	if res.PathTo(-1) != nil || res.PathTo(99) != nil {
		t.Error("out-of-range PathTo should be nil")
	}
}

func TestDijkstraParentsMatchDistances(t *testing.T) {
	g := gen.Uniform(500, 4000, gen.Config{Seed: 33})
	res := mustRun(t, g, 0, Options{})
	// The ACIC tree and the Dijkstra tree may differ (ties), but both must
	// produce identical distances — checked by runAndVerify elsewhere —
	// and ACIC's tree must be internally consistent, checked here.
	validateTree(t, g, 0, res)
}
