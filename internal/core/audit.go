package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"acic/internal/histogram"
)

// ThresholdAudit is the introspection cycle's flight recorder: one record
// per completed reduction when Params.AuditTrace is set. It captures what
// the root saw (the merged histogram and quiescence counters), what it
// decided (t_tram/t_pq), and what that decision did to the holds — the
// before/after populations and drained counts of tram_hold and pq_hold.
//
// Hold fields lag the thresholds by one cycle: the drain they describe was
// triggered by the broadcast of epoch-1, because each PE measures its
// holds inside OnBroadcast and the measurement rides the contribution to
// the next reduction. Epoch 0's record therefore always reports zero hold
// activity.
type ThresholdAudit struct {
	Epoch     int64 `json:"epoch"`
	Active    int64 `json:"active"`
	Created   int64 `json:"created"`
	Processed int64 `json:"processed"`
	TTram     int   `json:"t_tram"`
	TPQ       int   `json:"t_pq"`

	TramHeldBefore int64 `json:"tram_held_before"`
	TramDrained    int64 `json:"tram_drained"`
	TramHeldAfter  int64 `json:"tram_held_after"`
	PQHeldBefore   int64 `json:"pq_held_before"`
	PQDrained      int64 `json:"pq_drained"`
	PQHeldAfter    int64 `json:"pq_held_after"`

	// BucketIdx/BucketCount are the merged histogram in sparse parallel-
	// array form: BucketCount[i] active updates in bucket BucketIdx[i].
	// Empty buckets are omitted; RMAT histograms are overwhelmingly sparse.
	BucketIdx   []int   `json:"bucket_idx"`
	BucketCount []int64 `json:"bucket_count"`
}

// holdStats is the per-PE hold accounting that rides each reduction
// contribution; combineReduce sums it across the machine.
type holdStats struct {
	tramHeldBefore, tramDrained, tramHeldAfter int64
	pqHeldBefore, pqDrained, pqHeldAfter       int64
}

func (h *holdStats) add(o holdStats) {
	h.tramHeldBefore += o.tramHeldBefore
	h.tramDrained += o.tramDrained
	h.tramHeldAfter += o.tramHeldAfter
	h.pqHeldBefore += o.pqHeldBefore
	h.pqDrained += o.pqDrained
	h.pqHeldAfter += o.pqHeldAfter
}

// newThresholdAudit assembles the root's record for one reduction.
func newThresholdAudit(epoch int64, global *histogram.Histogram, holds holdStats, th histogram.Thresholds) ThresholdAudit {
	a := ThresholdAudit{
		Epoch:     epoch,
		Active:    global.Active(),
		Created:   global.Created,
		Processed: global.Processed,
		TTram:     th.Tram,
		TPQ:       th.PQ,

		TramHeldBefore: holds.tramHeldBefore,
		TramDrained:    holds.tramDrained,
		TramHeldAfter:  holds.tramHeldAfter,
		PQHeldBefore:   holds.pqHeldBefore,
		PQDrained:      holds.pqDrained,
		PQHeldAfter:    holds.pqHeldAfter,
	}
	for i := 0; i < global.NumBuckets(); i++ {
		if c := global.Bucket(i); c != 0 {
			a.BucketIdx = append(a.BucketIdx, i)
			a.BucketCount = append(a.BucketCount, c)
		}
	}
	return a
}

// WriteAuditJSONL writes one JSON object per line — the format Perfetto
// post-processing scripts and jq pipelines consume directly.
func WriteAuditJSONL(w io.Writer, records []ThresholdAudit) error {
	enc := json.NewEncoder(w)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("core: audit record %d: %w", i, err)
		}
	}
	return nil
}

// auditCSVHeader is the column order of WriteAuditCSV.
var auditCSVHeader = []string{
	"epoch", "active", "created", "processed", "t_tram", "t_pq",
	"tram_held_before", "tram_drained", "tram_held_after",
	"pq_held_before", "pq_drained", "pq_held_after", "buckets",
}

// WriteAuditCSV writes the audit as CSV for spreadsheet analysis. The
// sparse histogram packs into the final column as ";"-joined "idx:count"
// pairs so the file stays one row per reduction.
func WriteAuditCSV(w io.Writer, records []ThresholdAudit) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(auditCSVHeader); err != nil {
		return err
	}
	for i := range records {
		a := &records[i]
		var sb strings.Builder
		for j, idx := range a.BucketIdx {
			if j > 0 {
				sb.WriteByte(';')
			}
			sb.WriteString(strconv.Itoa(idx))
			sb.WriteByte(':')
			sb.WriteString(strconv.FormatInt(a.BucketCount[j], 10))
		}
		row := []string{
			strconv.FormatInt(a.Epoch, 10),
			strconv.FormatInt(a.Active, 10),
			strconv.FormatInt(a.Created, 10),
			strconv.FormatInt(a.Processed, 10),
			strconv.Itoa(a.TTram),
			strconv.Itoa(a.TPQ),
			strconv.FormatInt(a.TramHeldBefore, 10),
			strconv.FormatInt(a.TramDrained, 10),
			strconv.FormatInt(a.TramHeldAfter, 10),
			strconv.FormatInt(a.PQHeldBefore, 10),
			strconv.FormatInt(a.PQDrained, 10),
			strconv.FormatInt(a.PQHeldAfter, 10),
			sb.String(),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
