package core

import (
	"fmt"
	"math"

	"acic/internal/fabric"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/partition"
	"acic/internal/runtime"
	"acic/internal/simclock"
	"acic/internal/sockfab"
	"acic/internal/tram"
	"acic/internal/wire"
)

// Run executes ACIC on g from source and returns the distance vector and
// run statistics. It builds the whole simulated machine — network, runtime,
// tramlib — runs to termination, and tears it down.
func Run(g *graph.Graph, source int, opts Options) (*Result, error) {
	topo := opts.Topo
	if topo == (netsim.Topology{}) {
		topo = netsim.SingleNode(4)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if source < 0 || source >= g.NumVertices() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", source, g.NumVertices())
	}
	params, err := opts.Params.withDefaults(g.NumVertices())
	if err != nil {
		return nil, err
	}

	// Per-run pools come from the caller's Scratch when provided (repeated
	// runs then recycle the arena, contribution and per-PE state), or a
	// fresh throwaway one otherwise.
	sc := opts.Scratch
	if sc == nil {
		sc = &Scratch{}
	}
	if err := sc.acquire(); err != nil {
		return nil, err
	}
	defer sc.release()
	sc.prepare(scratchKey{
		pes:         topo.TotalPEs(),
		bucketCount: params.BucketCount,
		tramCap:     params.TramCapacity,
		width:       params.BucketWidth,
	})

	tm, err := tram.NewWithArena[Update](topo, params.TramMode, params.TramCapacity, opts.Metrics, sc.pools.ar)
	if err != nil {
		return nil, err
	}
	var part Partition = partition.NewOneD(g.NumVertices(), topo.TotalPEs())
	if params.OverDecomposition > 1 {
		part = partition.NewChunked(g.NumVertices(), topo.TotalPEs(), params.OverDecomposition)
	}
	sh := &sharedState{
		g:           g,
		part:        part,
		tm:          tm,
		tr:          opts.Trace,
		met:         newCoreMetrics(opts.Metrics),
		ar:          sc.pools.ar,
		pools:       sc.pools,
		bucketCount: params.BucketCount,
		bucketWidth: params.BucketWidth,
	}

	var newFab func(deliver func(dst int, payload any)) (fabric.Fabric, error)
	if opts.Transport == TransportTCP {
		// Real sockets impose their own timing and already deliver
		// in order exactly once, so the simulation-only knobs have no
		// meaning here; rejecting them beats silently ignoring them.
		switch {
		case opts.Latency != (netsim.LatencyModel{}):
			return nil, fmt.Errorf("core: TransportTCP models no latency; Options.Latency must be zero")
		case opts.Jitter != nil:
			return nil, fmt.Errorf("core: TransportTCP cannot inject jitter; Options.Jitter must be nil")
		case !opts.Fault.Empty():
			return nil, fmt.Errorf("core: TransportTCP cannot inject faults; Options.Fault must be empty")
		case opts.Reliability != nil:
			return nil, fmt.Errorf("core: TransportTCP is already reliable; Options.Reliability must be nil")
		}
		codec := wire.NewCodec()
		runtime.RegisterWire(codec)
		registerCoreWire(codec, sh)
		newFab = func(deliver func(dst int, payload any)) (fabric.Fabric, error) {
			return sockfab.NewMesh(sockfab.MeshConfig{
				NumProcs: topo.TotalProcs(),
				NumPEs:   topo.TotalPEs(),
				Owner:    topo.ProcessOf,
				Codec:    codec,
			}, deliver)
		}
	}

	rt, err := runtime.New(runtime.Config{
		Topo:        topo,
		Latency:     opts.Latency,
		NewFabric:   newFab,
		Combine:     sh.combineReduce,
		Trace:       opts.Trace,
		Jitter:      opts.Jitter,
		Fault:       opts.Fault,
		Reliability: opts.Reliability,
		Metrics:     opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	sh.rt = rt

	states := make([]*peState, topo.TotalPEs())
	rt.Start(func(pe *runtime.PE) runtime.Handler {
		st := newPEState(sh, pe, params, sc.slot(pe.Index()))
		states[pe.Index()] = st
		return st
	})

	clk := simclock.Default(opts.Clock)
	start := clk.Now()
	// Seed the source relaxation, then pull every PE into the continuous
	// reduction cycle.
	rt.Inject(sh.part.Owner(int32(source)), seedMsg{source: int32(source)})
	for i := 0; i < topo.TotalPEs(); i++ {
		rt.Inject(i, startMsg{})
	}
	rt.Wait()
	elapsed := clk.Since(start)

	res := &Result{
		Dist:   make([]float64, g.NumVertices()),
		Parent: make([]int32, g.NumVertices()),
		Stats:  Stats{Elapsed: elapsed},
	}
	for i := range res.Dist {
		res.Dist[i] = math.Inf(1)
		res.Parent[i] = -1
	}
	root := states[0]
	res.Stats.Reductions = root.reductions
	res.Stats.HistTrace = root.histTrace
	res.Stats.AuditTrace = root.auditTrace
	for peIdx, st := range states {
		for local, d := range st.dist {
			gv := sh.part.GlobalOf(peIdx, local)
			res.Dist[gv] = d
			res.Parent[gv] = st.parent[local]
		}
		res.Stats.UpdatesCreated += st.hist.Created
		res.Stats.UpdatesProcessed += st.hist.Processed
		res.Stats.UpdatesRejected += st.rejected
		res.Stats.Relaxations += st.relaxations
	}
	res.Stats.FinalizedEarly = root.finalizedEarly
	res.Stats.TramStats = tm.Stats()
	res.Stats.Network = rt.NetworkStats()
	res.Stats.Audit = rt.Audit()
	return res, nil
}
