package core

import (
	"fmt"

	"acic/internal/fabric"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/partition"
	"acic/internal/runtime"
	"acic/internal/sockfab"
	"acic/internal/tram"
	"acic/internal/wire"
)

// Worker hosts one OS process's share of a multi-process ACIC run. Where
// Run (TransportTCP) keeps every process's node in one address space, a
// Worker owns exactly one sockfab node and the PEs of one topology
// process; cmd/acic-launch spawns one Worker per process and stitches the
// partial results back together.
//
// Every process must build its Worker from the same graph, source and
// options — the launcher guarantees that by regenerating the graph from
// the same seed in each worker. Lifecycle: NewWorker (binds a loopback
// listener), exchange Addr with the peers out of band, then Run with the
// full address list.
type Worker struct {
	g      *graph.Graph
	source int
	topo   netsim.Topology
	params Params
	opts   Options
	proc   int
	lo, hi int

	sc   *Scratch
	sh   *sharedState
	node *sockfab.Node
}

// WorkerResult is one process's slice of the run: the distances and
// parents of the vertices its PEs own, plus the process-local conservation
// ledger. Reductions is nonzero only on the process hosting the root PE.
type WorkerResult struct {
	Lo, Hi     int
	Vertices   []int32
	Dist       []float64
	Parent     []int32
	Reductions int64
	Audit      runtime.Audit
}

// NewWorker validates the configuration, builds the process's share of the
// machine and binds the transport listener on 127.0.0.1. The returned
// worker is listening but not yet connected; its Addr must reach every
// peer before Run.
func NewWorker(g *graph.Graph, source int, opts Options, proc int) (*Worker, error) {
	topo := opts.Topo
	if topo == (netsim.Topology{}) {
		topo = netsim.SingleNode(4)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if proc < 0 || proc >= topo.TotalProcs() {
		return nil, fmt.Errorf("core: worker proc %d out of range [0,%d)", proc, topo.TotalProcs())
	}
	if source < 0 || source >= g.NumVertices() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", source, g.NumVertices())
	}
	params, err := opts.Params.withDefaults(g.NumVertices())
	if err != nil {
		return nil, err
	}
	// A worker is always a real transport; the simulation knobs are as
	// meaningless here as under Run's TransportTCP.
	switch {
	case opts.Latency != (netsim.LatencyModel{}):
		return nil, fmt.Errorf("core: workers run over TCP and model no latency; Options.Latency must be zero")
	case opts.Jitter != nil:
		return nil, fmt.Errorf("core: workers run over TCP and cannot inject jitter; Options.Jitter must be nil")
	case !opts.Fault.Empty():
		return nil, fmt.Errorf("core: workers run over TCP and cannot inject faults; Options.Fault must be empty")
	case opts.Reliability != nil:
		return nil, fmt.Errorf("core: TCP is already reliable; Options.Reliability must be nil")
	}

	sc := opts.Scratch
	if sc == nil {
		sc = &Scratch{}
	}
	if err := sc.acquire(); err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			sc.release()
		}
	}()
	sc.prepare(scratchKey{
		pes:         topo.TotalPEs(),
		bucketCount: params.BucketCount,
		tramCap:     params.TramCapacity,
		width:       params.BucketWidth,
	})

	tm, err := tram.NewWithArena[Update](topo, params.TramMode, params.TramCapacity, opts.Metrics, sc.pools.ar)
	if err != nil {
		return nil, err
	}
	var part Partition = partition.NewOneD(g.NumVertices(), topo.TotalPEs())
	if params.OverDecomposition > 1 {
		part = partition.NewChunked(g.NumVertices(), topo.TotalPEs(), params.OverDecomposition)
	}
	sh := &sharedState{
		g:           g,
		part:        part,
		tm:          tm,
		tr:          opts.Trace,
		met:         newCoreMetrics(opts.Metrics),
		ar:          sc.pools.ar,
		pools:       sc.pools,
		bucketCount: params.BucketCount,
		bucketWidth: params.BucketWidth,
	}
	codec := wire.NewCodec()
	runtime.RegisterWire(codec)
	registerCoreWire(codec, sh)

	node, err := sockfab.NewNode(sockfab.NodeConfig{
		Proc:     proc,
		NumProcs: topo.TotalProcs(),
		NumPEs:   topo.TotalPEs(),
		Owner:    topo.ProcessOf,
		Codec:    codec,
	})
	if err != nil {
		return nil, err
	}
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}

	lo, hi := topo.PEsOfProcess(proc)
	ok = true
	return &Worker{
		g: g, source: source, topo: topo, params: params, opts: opts,
		proc: proc, lo: lo, hi: hi,
		sc: sc, sh: sh, node: node,
	}, nil
}

// Addr returns the worker's transport listen address.
func (w *Worker) Addr() string { return w.node.Addr() }

// Run connects to the peers (addrs is the full per-process address list,
// indexed by proc), executes the run to termination, and returns this
// process's slice of the result. It releases the worker's Scratch; a
// Worker runs once.
func (w *Worker) Run(addrs []string) (*WorkerResult, error) {
	defer w.sc.release()
	if len(addrs) != w.topo.TotalProcs() {
		return nil, fmt.Errorf("core: got %d peer addresses for %d processes", len(addrs), w.topo.TotalProcs())
	}
	if err := w.node.Connect(addrs); err != nil {
		return nil, err
	}

	rt, err := runtime.New(runtime.Config{
		Topo: w.topo,
		Span: runtime.Span{Lo: w.lo, Hi: w.hi},
		NewFabric: func(deliver func(dst int, payload any)) (fabric.Fabric, error) {
			w.node.Start(deliver)
			return w.node, nil
		},
		Combine: w.sh.combineReduce,
		Trace:   w.opts.Trace,
		Metrics: w.opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	w.sh.rt = rt

	states := make([]*peState, w.topo.TotalPEs())
	rt.Start(func(pe *runtime.PE) runtime.Handler {
		st := newPEState(w.sh, pe, w.params, w.sc.slot(pe.Index()))
		states[pe.Index()] = st
		return st
	})

	// Each process seeds only what it hosts: the source relaxation if the
	// source vertex's owner lives here, and the reduction-cycle start for
	// every hosted PE. The cycle's reductions and broadcasts then flow
	// across the fabric like any other message.
	if owner := w.sh.part.Owner(int32(w.source)); owner >= w.lo && owner < w.hi {
		rt.Inject(owner, seedMsg{source: int32(w.source)})
	}
	for i := w.lo; i < w.hi; i++ {
		rt.Inject(i, startMsg{})
	}
	rt.Wait()

	res := &WorkerResult{Lo: w.lo, Hi: w.hi, Audit: rt.Audit()}
	for pe := w.lo; pe < w.hi; pe++ {
		st := states[pe]
		for local, d := range st.dist {
			res.Vertices = append(res.Vertices, w.sh.part.GlobalOf(pe, local))
			res.Dist = append(res.Dist, d)
			res.Parent = append(res.Parent, st.parent[local])
		}
	}
	if w.lo == 0 {
		res.Reductions = states[0].reductions
	}
	return res, nil
}
