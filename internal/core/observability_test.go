package core

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"acic/internal/gen"
	"acic/internal/metrics"
	"acic/internal/netsim"
	"acic/internal/trace"
)

// TestAuditTrace checks the reduction flight recorder: one record per
// completed reduction, ascending epochs, hold conservation, and the final
// record agreeing with the terminating quiescence state.
func TestAuditTrace(t *testing.T) {
	g := gen.Uniform(1500, 12000, gen.Config{Seed: 41})
	p := DefaultParams()
	p.AuditTrace = true
	// Aggressive pq gating so holds actually see traffic.
	p.PPQ = 0.05
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
	audit := res.Stats.AuditTrace
	if len(audit) == 0 {
		t.Fatal("no audit records")
	}
	if int64(len(audit)) != res.Stats.Reductions {
		t.Errorf("audit length %d != reductions %d", len(audit), res.Stats.Reductions)
	}
	for i, a := range audit {
		// Epochs are strictly increasing but not dense: the delayed-
		// broadcast path numbers broadcasts by the reduction count, so the
		// epoch after 0 is 2.
		if i > 0 && a.Epoch <= audit[i-1].Epoch {
			t.Errorf("record %d epoch %d not after %d", i, a.Epoch, audit[i-1].Epoch)
		}
		if a.TramHeldAfter != a.TramHeldBefore-a.TramDrained {
			t.Errorf("epoch %d: tram holds not conserved: before %d drained %d after %d",
				a.Epoch, a.TramHeldBefore, a.TramDrained, a.TramHeldAfter)
		}
		if a.PQHeldAfter != a.PQHeldBefore-a.PQDrained {
			t.Errorf("epoch %d: pq holds not conserved: before %d drained %d after %d",
				a.Epoch, a.PQHeldBefore, a.PQDrained, a.PQHeldAfter)
		}
		if a.TramDrained < 0 || a.PQDrained < 0 || a.TramHeldAfter < 0 || a.PQHeldAfter < 0 {
			t.Errorf("epoch %d: negative hold field: %+v", a.Epoch, a)
		}
		if len(a.BucketIdx) != len(a.BucketCount) {
			t.Errorf("epoch %d: parallel bucket arrays disagree: %d vs %d",
				a.Epoch, len(a.BucketIdx), len(a.BucketCount))
		}
		var bsum int64
		for _, c := range a.BucketCount {
			bsum += c
		}
		if bsum != a.Active {
			t.Errorf("epoch %d: bucket sum %d != active %d", a.Epoch, bsum, a.Active)
		}
	}
	last := audit[len(audit)-1]
	if last.Created != last.Processed {
		t.Errorf("terminating record not quiescent: created %d processed %d",
			last.Created, last.Processed)
	}
	if last.Created != res.Stats.UpdatesCreated {
		t.Errorf("terminating record created %d != stats %d", last.Created, res.Stats.UpdatesCreated)
	}
}

// TestMetricsRegistryCoherence runs ACIC with a shared registry and checks
// the "core."/"tram."/"netsim."/"runtime." instruments against the legacy
// Stats views they back (or mirror) — the accessors-stay-thin-views
// contract of the observability layer.
func TestMetricsRegistryCoherence(t *testing.T) {
	g := gen.Uniform(1500, 12000, gen.Config{Seed: 42})
	topo := netsim.SingleNode(4)
	reg := metrics.New(topo.TotalPEs())
	res := runAndVerify(t, g, 0, Options{Topo: topo, Metrics: reg})
	s := res.Stats

	for _, c := range []struct {
		name string
		want int64
	}{
		{"core.updates_created", s.UpdatesCreated},
		{"core.updates_processed", s.UpdatesProcessed},
		{"core.updates_rejected", s.UpdatesRejected},
		{"core.relaxations", s.Relaxations},
		{"core.reductions", s.Reductions},
		{"tram.inserts", s.TramStats.Inserts},
		{"tram.batches", s.TramStats.Batches},
		{"tram.items", s.TramStats.Items},
		{"tram.pool_gets", s.TramStats.PoolGets},
		{"tram.pool_puts", s.TramStats.PoolPuts},
		{"netsim.messages_sent", s.Network.MessagesSent},
		{"netsim.items_sent", s.Network.ItemsSent},
		{"netsim.dropped", s.Network.Dropped},
	} {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d (stats view)", c.name, got, c.want)
		}
	}
	if got := reg.Gauge("netsim.max_queue_depth").Max(); got != s.Network.MaxQueueDepth {
		t.Errorf("netsim.max_queue_depth = %d, want %d", got, s.Network.MaxQueueDepth)
	}
	// Scheduler telemetry exists and is plausible: every PE dispatched at
	// least the startMsg, and the batch-size histogram saw every batch the
	// fabric carried plus intra-process demux forwards.
	if got := reg.Counter("runtime.app_delivered").Value(); got == 0 {
		t.Error("runtime.app_delivered is zero")
	}
	if got := reg.Counter("runtime.reductions").Value(); got == 0 {
		t.Error("runtime.reductions is zero")
	}
	if got := reg.Histogram("core.batch_items").Count(); got < s.TramStats.Batches {
		t.Errorf("core.batch_items count %d < tram batches %d", got, s.TramStats.Batches)
	}

	// The snapshot walks everything; spot-check it round-trips one value.
	snap := reg.Snapshot()
	if got := snap.Counter("core.updates_created"); got != s.UpdatesCreated {
		t.Errorf("snapshot core.updates_created = %d, want %d", got, s.UpdatesCreated)
	}
}

// TestHoldDrainAccounting cross-checks three independent observers of hold
// drains: the audit records, the "core.hold_drained" counter, and the
// trace recorder's KindHoldDrain instants. All three must agree on the
// total number of updates released from holds.
func TestHoldDrainAccounting(t *testing.T) {
	g := gen.Uniform(2000, 16000, gen.Config{Seed: 43})
	topo := netsim.SingleNode(4)
	reg := metrics.New(topo.TotalPEs())
	rec := trace.New(topo.TotalPEs(), 1<<20) // ample: no drops may corrupt the tally
	p := DefaultParams()
	p.AuditTrace = true
	p.PTram = 0.5 // gate the send side hard enough that tram_hold sees traffic
	p.PPQ = 0.05
	res := runAndVerify(t, g, 0, Options{Topo: topo, Params: p, Metrics: reg, Trace: rec})

	var auditDrained int64
	for _, a := range res.Stats.AuditTrace {
		auditDrained += a.TramDrained + a.PQDrained
	}
	counterDrained := reg.Counter("core.hold_drained").Value()
	var traceDrained int64
	for pe := 0; pe < topo.TotalPEs(); pe++ {
		if reg.Counter("core.hold_drained") == nil {
			t.Fatal("counter missing")
		}
		if rec.Dropped(pe) != 0 {
			t.Fatalf("trace dropped events on PE %d; raise the test's capPerPE", pe)
		}
		for _, e := range rec.Timeline(pe) {
			if e.Kind == trace.KindHoldDrain {
				traceDrained += e.Arg
			}
		}
	}
	if counterDrained != traceDrained {
		t.Errorf("core.hold_drained %d != trace hold-drain sum %d", counterDrained, traceDrained)
	}
	// The audit misses at most the final broadcast's drain (terminate=true
	// broadcasts never contribute again), and the terminating cycle drains
	// nothing because thresholds only rise; in practice all three agree.
	if auditDrained != counterDrained {
		t.Errorf("audit drained %d != counter %d", auditDrained, counterDrained)
	}
}

// TestAuditExportFormats checks both writers: JSONL round-trips record by
// record, CSV has the documented header and one row per reduction.
func TestAuditExportFormats(t *testing.T) {
	g := gen.Uniform(800, 6400, gen.Config{Seed: 44})
	p := DefaultParams()
	p.AuditTrace = true
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
	records := res.Stats.AuditTrace

	var jbuf bytes.Buffer
	if err := WriteAuditJSONL(&jbuf, records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jbuf.String()), "\n")
	if len(lines) != len(records) {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), len(records))
	}
	for i, line := range lines {
		var back ThresholdAudit
		if err := json.Unmarshal([]byte(line), &back); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if back.Epoch != records[i].Epoch || back.Created != records[i].Created {
			t.Fatalf("line %d did not round-trip: %+v vs %+v", i, back, records[i])
		}
	}

	var cbuf bytes.Buffer
	if err := WriteAuditCSV(&cbuf, records); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&cbuf).ReadAll()
	if err != nil {
		t.Fatalf("CSV unreadable: %v", err)
	}
	if len(rows) != len(records)+1 {
		t.Fatalf("CSV has %d rows, want header + %d", len(rows), len(records))
	}
	for i, col := range auditCSVHeader {
		if rows[0][i] != col {
			t.Errorf("CSV header[%d] = %q, want %q", i, rows[0][i], col)
		}
	}
}
