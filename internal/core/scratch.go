package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"acic/internal/arena"
	"acic/internal/histogram"
	"acic/internal/pq"
)

// ErrScratchInUse is returned by Run when the Options.Scratch it was handed
// is already owned by another in-flight Run. The exclusivity contract used
// to live only in Scratch's doc comment; concurrent reuse silently corrupts
// the arena and per-PE state, so Run now fails loudly instead.
var ErrScratchInUse = errors.New("core: Scratch is already in use by a concurrent Run")

// Scratch recycles the per-run allocations of repeated Runs on the same
// machine shape: the update-chunk arena shared by tramlib and the hold
// buffers, the pooled reduction contributions, and every PE's distance /
// parent / histogram / queue / hold state. Benchmark and stress drivers
// that execute many runs back to back pass one Scratch through
// Options.Scratch so the steady-state run performs no large allocations.
//
// A Scratch is keyed by the run shape (PE count, bucket count and width,
// tram capacity). Passing it to a run with a different shape silently
// discards the cached state and rebuilds it. A Scratch must not be shared
// by concurrent Runs — it hands out exclusive state. Run enforces that
// contract with an atomic in-use latch: the second of two overlapping Runs
// on one Scratch returns ErrScratchInUse instead of corrupting state.
type Scratch struct {
	inUse atomic.Bool
	key   scratchKey
	pools *runPools
	slots []*peSlot
}

// acquire claims exclusive ownership of the scratch for one Run, failing if
// another Run holds it.
func (sc *Scratch) acquire() error {
	if !sc.inUse.CompareAndSwap(false, true) {
		return ErrScratchInUse
	}
	return nil
}

// release returns the scratch after a Run, successful or not.
func (sc *Scratch) release() { sc.inUse.Store(false) }

type scratchKey struct {
	pes         int
	bucketCount int
	tramCap     int
	width       float64
}

// runPools holds the cross-PE pools of one run: the chunk arena (shared
// with tramlib so demux buffers, hold chunks and tram batches recycle
// through one freelist) and the reduction-contribution pool.
type runPools struct {
	ar *arena.Arena[Update]

	mu     sync.Mutex
	rvFree []*reduceVal
}

// getReduceVal returns a pooled contribution value, allocating (with its
// histogram) only when the pool is empty. The caller overwrites every
// field, so no reset is needed here.
func (p *runPools) getReduceVal(bucketCount int, width float64) *reduceVal {
	p.mu.Lock()
	if n := len(p.rvFree); n > 0 {
		rv := p.rvFree[n-1]
		p.rvFree[n-1] = nil
		p.rvFree = p.rvFree[:n-1]
		p.mu.Unlock()
		return rv
	}
	p.mu.Unlock()
	return &reduceVal{hist: histogram.New(bucketCount, width)}
}

func (p *runPools) putReduceVal(rv *reduceVal) {
	p.mu.Lock()
	p.rvFree = append(p.rvFree, rv)
	p.mu.Unlock()
}

// peSlot is one PE's recycled state. Slices keep their backing arrays
// across runs; newPEState re-lengths and re-initializes them.
type peSlot struct {
	dist       []float64
	parent     []int32
	hist       *histogram.Histogram
	queue      *pq.BinaryHeap
	pqHold     []arena.List[Update]
	tramHold   []arena.List[Update]
	fwdBufs    [][]Update
	fwdTouched []int32
}

// prepare readies the scratch for a run of the given shape, discarding
// cached state on shape mismatch.
func (sc *Scratch) prepare(key scratchKey) {
	if sc.key != key {
		sc.pools = nil
		sc.slots = nil
		sc.key = key
	}
	if sc.pools == nil {
		sc.pools = &runPools{ar: arena.New[Update](key.pes, key.tramCap)}
	}
	if sc.slots == nil {
		sc.slots = make([]*peSlot, key.pes)
	}
}

// slot returns PE pe's recycled state, creating the slot on first use.
func (sc *Scratch) slot(pe int) *peSlot {
	if sc.slots[pe] == nil {
		sc.slots[pe] = &peSlot{}
	}
	return sc.slots[pe]
}
