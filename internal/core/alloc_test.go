package core

import (
	"testing"

	"acic/internal/gen"
	"acic/internal/netsim"
)

// TestWarmRunAllocationCeiling is the allocation-ceiling regression test
// for the reduction/drain hot path: once a Scratch is warm, a complete run
// must stay under a fixed allocation budget. The budget covers what a run
// still legitimately allocates (result vectors, runtime/netsim setup,
// goroutine stacks); the arena-backed holds, pooled contributions and
// recycled per-PE state must not push it back up. Before the arena rework
// a run of this shape allocated ~5000 objects; the ceiling holds the
// improvement.
func TestWarmRunAllocationCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation ceiling is a perf regression gate, not a -short test")
	}
	g := gen.Uniform(1<<9, 1<<12, gen.Config{Seed: 1})
	topo := netsim.SingleNode(4)
	opts := Options{Topo: topo, Latency: netsim.DefaultLatency(), Scratch: &Scratch{}}
	// Warm the scratch: first runs grow freelists and slots to high water.
	for i := 0; i < 3; i++ {
		if _, err := Run(g, 0, opts); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := Run(g, 0, opts); err != nil {
			t.Fatal(err)
		}
	})
	// The ceiling is deliberately loose (runtime setup dominates and varies
	// a little with scheduling); the pre-arena figure for this graph was
	// ~3x higher, so real regressions clear it by a wide margin.
	const ceiling = 2500
	if avg > ceiling {
		t.Errorf("warm run allocates %.0f objects, ceiling %d", avg, ceiling)
	}
}
