package core

import (
	"fmt"

	"acic/internal/wire"

	"acic/internal/histogram"
)

// registerCoreWire binds ACIC's message payloads to their wire tags on c.
// The registrations are tied to one run's sharedState because both bulk
// payloads round-trip through the run's pools rather than the heap:
//
//   - batchMsg items decode into a buffer from the tram pool's shared
//     shard (BorrowShared) and, symmetrically, an encoded batch returns
//     its buffer there (Release) via the afterEncode hook — encoding a
//     batch for the socket consumes it, exactly as local delivery would.
//   - *reduceVal contributions decode into pooled values (getReduceVal)
//     and are recycled on encode (putReduceVal).
//
// Each process therefore keeps its own pool ledger balanced: the sender
// pairs its Borrow with the encode-side Release, the receiver pairs its
// decode-side BorrowShared with receiveBatch's ReleaseTo.
//
// delayedCtrl is deliberately not registered: it re-enters the root PE via
// Inject, which always delivers process-locally, so a delayedCtrl reaching
// the codec is a routing bug and fails loudly as an unknown tag.
func registerCoreWire(c *wire.Codec, sh *sharedState) {
	c.Register(wire.TagSeed, seedMsg{},
		func(c *wire.Codec, buf []byte, v any) ([]byte, error) {
			return wire.AppendI32(buf, v.(seedMsg).source), nil
		},
		func(c *wire.Codec, r *wire.Reader) (any, error) {
			return seedMsg{source: r.I32()}, nil
		},
		nil)

	c.Register(wire.TagStart, startMsg{},
		func(c *wire.Codec, buf []byte, v any) ([]byte, error) {
			return buf, nil
		},
		func(c *wire.Codec, r *wire.Reader) (any, error) {
			return startMsg{}, nil
		},
		nil)

	c.Register(wire.TagBatch, batchMsg{},
		func(c *wire.Codec, buf []byte, v any) ([]byte, error) {
			items := v.(batchMsg).items
			buf = wire.AppendU32(buf, uint32(len(items)))
			for _, u := range items {
				buf = wire.AppendI32(buf, u.Vertex)
				buf = wire.AppendI32(buf, u.Pred)
				buf = wire.AppendF64(buf, u.Dist)
			}
			return buf, nil
		},
		func(c *wire.Codec, r *wire.Reader) (any, error) {
			n := int(r.U32())
			// Each update is 16 bytes on the wire; checking the count
			// against both the tram capacity and the remaining body
			// bounds the allocation before it happens.
			if n > sh.tm.Capacity() || n*16 > r.Remaining() {
				return nil, fmt.Errorf("%w: batch count %d", wire.ErrMalformed, n)
			}
			items := sh.tm.BorrowShared()
			for i := 0; i < n; i++ {
				items = append(items, Update{
					Vertex: r.I32(),
					Pred:   r.I32(),
					Dist:   r.F64(),
				})
			}
			return batchMsg{items: items}, nil
		},
		func(v any) { sh.tm.Release(v.(batchMsg).items) })

	c.Register(wire.TagCtrl, ctrlMsg{},
		func(c *wire.Codec, buf []byte, v any) ([]byte, error) {
			m := v.(ctrlMsg)
			buf = wire.AppendI32(buf, int32(m.thresholds.Tram))
			buf = wire.AppendI32(buf, int32(m.thresholds.PQ))
			buf = wire.AppendF64(buf, m.lowestActive)
			var flags byte
			if m.terminate {
				flags |= 1
			}
			if m.finalizedAll {
				flags |= 2
			}
			return wire.AppendU8(buf, flags), nil
		},
		func(c *wire.Codec, r *wire.Reader) (any, error) {
			m := ctrlMsg{
				thresholds: histogram.Thresholds{
					Tram: int(r.I32()),
					PQ:   int(r.I32()),
				},
				lowestActive: r.F64(),
			}
			flags := r.U8()
			if flags&^byte(3) != 0 {
				return nil, fmt.Errorf("%w: ctrl flags 0x%02x", wire.ErrMalformed, flags)
			}
			m.terminate = flags&1 != 0
			m.finalizedAll = flags&2 != 0
			return m, nil
		},
		nil)

	c.Register(wire.TagReduceVal, (*reduceVal)(nil),
		func(c *wire.Codec, buf []byte, v any) ([]byte, error) {
			rv := v.(*reduceVal)
			h := rv.hist
			buf = wire.AppendU32(buf, uint32(h.NumBuckets()))
			buf = wire.AppendF64(buf, h.Width())
			buf = wire.AppendI64(buf, h.Created)
			buf = wire.AppendI64(buf, h.Processed)
			// Sparse bucket encoding: RMAT histograms are overwhelmingly
			// empty, so (index, count) pairs beat a dense array.
			nnz := 0
			for i := 0; i < h.NumBuckets(); i++ {
				if h.Bucket(i) != 0 {
					nnz++
				}
			}
			buf = wire.AppendU32(buf, uint32(nnz))
			for i := 0; i < h.NumBuckets(); i++ {
				if v := h.Bucket(i); v != 0 {
					buf = wire.AppendU32(buf, uint32(i))
					buf = wire.AppendI64(buf, v)
				}
			}
			buf = wire.AppendI64(buf, rv.finalized)
			buf = wire.AppendI64(buf, rv.holds.tramHeldBefore)
			buf = wire.AppendI64(buf, rv.holds.tramDrained)
			buf = wire.AppendI64(buf, rv.holds.tramHeldAfter)
			buf = wire.AppendI64(buf, rv.holds.pqHeldBefore)
			buf = wire.AppendI64(buf, rv.holds.pqDrained)
			return wire.AppendI64(buf, rv.holds.pqHeldAfter), nil
		},
		func(c *wire.Codec, r *wire.Reader) (any, error) {
			bucketCount := int(r.U32())
			width := r.F64()
			// A contribution of a different histogram shape cannot be
			// merged with local ones: that is a mis-wired mesh, not a
			// recoverable condition.
			if bucketCount != sh.bucketCount || width != sh.bucketWidth {
				return nil, fmt.Errorf("%w: histogram shape %d×%g, want %d×%g",
					wire.ErrMalformed, bucketCount, width, sh.bucketCount, sh.bucketWidth)
			}
			rv := sh.pools.getReduceVal(sh.bucketCount, sh.bucketWidth)
			rv.hist.Reset()
			rv.hist.Created = r.I64()
			rv.hist.Processed = r.I64()
			nnz := int(r.U32())
			if nnz > bucketCount || nnz*12 > r.Remaining() {
				sh.pools.putReduceVal(rv)
				return nil, fmt.Errorf("%w: %d nonzero buckets", wire.ErrMalformed, nnz)
			}
			for i := 0; i < nnz; i++ {
				idx := int(r.U32())
				val := r.I64()
				if idx >= bucketCount {
					sh.pools.putReduceVal(rv)
					return nil, fmt.Errorf("%w: bucket index %d of %d", wire.ErrMalformed, idx, bucketCount)
				}
				rv.hist.SetBucket(idx, val)
			}
			rv.finalized = r.I64()
			rv.holds = holdStats{
				tramHeldBefore: r.I64(),
				tramDrained:    r.I64(),
				tramHeldAfter:  r.I64(),
				pqHeldBefore:   r.I64(),
				pqDrained:      r.I64(),
				pqHeldAfter:    r.I64(),
			}
			if r.Err() != nil {
				sh.pools.putReduceVal(rv)
				return nil, r.Err()
			}
			return rv, nil
		},
		func(v any) { sh.pools.putReduceVal(v.(*reduceVal)) })
}
