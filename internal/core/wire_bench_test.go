package core

import (
	"testing"
)

// BenchmarkWireEncodeBatch measures serializing one full tram batch into a
// reused frame buffer. The message value is boxed once outside the loop and
// every iteration pairs the encode hook's pool put with a BorrowShared, so
// the steady state allocates nothing — the ceiling scripts/bench.sh gates.
func BenchmarkWireEncodeBatch(b *testing.B) {
	c, sh := newWireHarness(b)
	items := sh.tm.Borrow(0)
	for i := 0; cap(items) > len(items); i++ {
		items = append(items, Update{Vertex: int32(i), Pred: int32(i - 1), Dist: float64(i)})
	}
	var v any = batchMsg{items: items}
	buf := make([]byte, 0, 8+16*len(items))
	var err error
	b.SetBytes(int64(16 * len(items)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = c.EncodeFrame(buf[:0], v)
		if err != nil {
			b.Fatal(err)
		}
		// The encode hook released the batch to the pool; take it back so
		// the freelist neither grows nor drains across iterations.
		sh.tm.BorrowShared()
	}
}

// BenchmarkWireDecodeBatch measures materializing a batch from its frame.
// The decoded buffer comes from the tram pool and goes straight back, as
// receiveBatch would after unpacking. The batchMsg return value is boxed
// into the codec's `any`, so this path pays O(1) boxing allocations per
// frame — amortized over the batch's items, and not under the zero-alloc
// gate.
func BenchmarkWireDecodeBatch(b *testing.B) {
	c, sh := newWireHarness(b)
	items := sh.tm.Borrow(0)
	for i := 0; cap(items) > len(items); i++ {
		items = append(items, Update{Vertex: int32(i), Pred: int32(i - 1), Dist: float64(i)})
	}
	n := len(items)
	frame, err := c.EncodeFrame(nil, batchMsg{items: items})
	if err != nil {
		b.Fatal(err)
	}
	sh.tm.BorrowShared() // rebalance the encode hook's put
	b.SetBytes(int64(16 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, err := c.DecodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		sh.tm.Release(v.(batchMsg).items)
	}
}

// BenchmarkWireDecodeReduce measures decoding a reduction contribution.
// The value lands in a pooled *reduceVal (pointer boxing is free) and is
// recycled every iteration, so the steady state allocates nothing — the
// second ceiling scripts/bench.sh gates.
func BenchmarkWireDecodeReduce(b *testing.B) {
	c, sh := newWireHarness(b)
	rv := sh.pools.getReduceVal(sh.bucketCount, sh.bucketWidth)
	rv.hist.Reset()
	for i := 0; i < sh.bucketCount; i += 2 {
		rv.hist.AddCreated(float64(i) * sh.bucketWidth)
	}
	rv.finalized = 99
	frame, err := c.EncodeFrame(nil, rv)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, err := c.DecodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		sh.pools.putReduceVal(v.(*reduceVal))
	}
}
