package core

import (
	"testing"

	"acic/internal/gen"
	"acic/internal/netsim"
	"acic/internal/tram"
)

// TestPoolDiscipline is the dynamic counterpart of the releasecheck
// analyzer: over a full SSSP run, every tram buffer issued must come back
// through Release exactly once. WW mode delivers each batch directly to its
// destination PE (no demux re-bundling into undersized slices), so the
// pool's get and put counters must balance at quiescence; a dropped Release
// anywhere in the receive path shows up as gets > puts.
func TestPoolDiscipline(t *testing.T) {
	g := gen.Uniform(1500, 12000, gen.Config{Seed: 21})
	p := DefaultParams()
	p.TramMode = tram.WW
	p.TramCapacity = 64 // small buffers: many batches cycle through the pool
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(6), Params: p})

	ts := res.Stats.TramStats
	if ts.PoolGets == 0 {
		t.Fatal("no tram buffers were ever issued — test exercises nothing")
	}
	if ts.PoolGets != ts.PoolPuts {
		t.Errorf("pool leak: %d buffers issued, %d released", ts.PoolGets, ts.PoolPuts)
	}
	if ts.PoolPuts < ts.Batches {
		t.Errorf("released %d < batches %d: some batch was never released", ts.PoolPuts, ts.Batches)
	}
}
