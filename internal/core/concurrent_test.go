package core

// TestConcurrentRunsSharedGraph pins the read-only graph concurrency the
// resident query engine depends on: N simultaneous Runs over one shared
// *graph.Graph (each with its own Scratch) must all terminate with
// oracle-correct distances, and the race detector must stay silent.

import (
	"fmt"
	"sync"
	"testing"

	"acic/internal/gen"
	"acic/internal/seq"
)

func TestConcurrentRunsSharedGraph(t *testing.T) {
	g := gen.Uniform(600, 4800, gen.Config{Seed: 11})
	sources := []int{0, 17, 255, 599}
	oracle := make(map[int][]float64, len(sources))
	for _, src := range sources {
		oracle[src] = seq.Dijkstra(g, src).Dist
	}

	const rounds = 2 // round 2 exercises recycled Scratch state
	var wg sync.WaitGroup
	errs := make(chan error, len(sources)*rounds)
	for _, src := range sources {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			sc := &Scratch{}
			for round := 0; round < rounds; round++ {
				res, err := Run(g, src, Options{Scratch: sc})
				if err != nil {
					errs <- fmt.Errorf("source %d round %d: %v", src, round, err)
					return
				}
				if !seq.Equal(res.Dist, oracle[src]) {
					errs <- fmt.Errorf("source %d round %d: mismatch at vertex %d",
						src, round, seq.FirstMismatch(res.Dist, oracle[src]))
					return
				}
			}
		}(src)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
