// Package core implements ACIC — Asynchronous Continuous Introspection and
// Control — the paper's SSSP algorithm (§II, §III).
//
// A weighted directed graph is 1-D partitioned over the PEs of a simulated
// machine (internal/runtime + internal/netsim). Edge relaxations travel as
// updates u = (v, d). Concurrently with that work, an endless cycle of
// asynchronous reductions gathers a histogram of active update distances at
// PE 0, which derives two bucket thresholds and broadcasts them:
//
//   - t_tram gates the *sending* side: an update whose bucket exceeds it
//     waits in tram_hold instead of entering the tramlib send buffers.
//   - t_pq gates the *receiving* side: an accepted update whose bucket
//     exceeds it waits in pq_hold instead of the min-priority queue.
//
// Both holds drain in ascending bucket order when a broadcast raises the
// thresholds, tramlib buffers are explicitly flushed on every broadcast
// (guaranteeing tail progress), and idle PEs pop the priority queue in
// distance order, relaxing out-edges only for updates that still carry the
// vertex's best known distance. Termination is quiescence detected through
// the created/processed counters that ride along with every reduction:
// equal sums in two consecutive reductions end the run (§II-D).
package core

import (
	"fmt"
	"math"
	"time"

	"acic/internal/histogram"
	"acic/internal/metrics"
	"acic/internal/netsim"
	"acic/internal/relnet"
	"acic/internal/runtime"
	"acic/internal/simclock"
	"acic/internal/trace"
	"acic/internal/tram"
)

// Update is one edge relaxation in flight: "set vertex Vertex's distance to
// Dist if that improves it" (§II-A). Pred is the edge's origin, recorded on
// acceptance so the run yields a shortest-path tree as well as distances.
type Update struct {
	Vertex int32
	Pred   int32
	Dist   float64
}

// Params are ACIC's tunable parameters (§III).
type Params struct {
	// PTram is the percentile fraction p_tram used to derive the tram
	// threshold. The paper's optimum is 0.999 (§IV-E).
	PTram float64
	// PPQ is the percentile fraction p_pq for the pq threshold. The
	// paper's optimum is 0.05.
	PPQ float64
	// LowWatermarkPerPE: when active updates <= this × numPEs, both
	// thresholds are raised to the top bucket (the paper uses 100).
	LowWatermarkPerPE int64
	// BucketCount is the histogram size; the paper uses 512.
	BucketCount int
	// BucketWidth is the histogram bucket width; zero means the paper's
	// log(|V|).
	BucketWidth float64
	// TramMode is the aggregation organization; the paper uses WP.
	TramMode tram.Mode
	// TramCapacity is the tramlib buffer size (512, 1024 or 2048 in the
	// paper; any positive value accepted).
	TramCapacity int
	// ReductionDelay throttles the continuous introspection cycle: the
	// root waits this long after completing a reduction before
	// broadcasting. In the paper the cycle is continuous because each
	// round is paced by the physical latency of a machine-wide reduction;
	// in simulation an unpaced cycle on a zero-latency network floods the
	// mailboxes with control traffic and starves the idle trigger, so the
	// zero value selects DefaultReductionDelay. A negative value requests
	// a truly continuous cycle (sensible only with non-zero latency).
	ReductionDelay time.Duration
	// TerminateOnAllFinal additionally enables the experimental
	// vertex-finalization termination condition the paper tried and
	// abandoned (§II-D): if every vertex's distance is below the smallest
	// active update distance, stop immediately. With unreachable vertices
	// this condition never triggers on its own, which is why it is an
	// extra condition layered on quiescence rather than a replacement.
	TerminateOnAllFinal bool
	// HistogramTrace records the merged global histogram at every
	// reduction, for the Fig. 1 reproduction. Costs memory per reduction.
	HistogramTrace bool
	// AuditTrace records one ThresholdAudit per completed reduction — the
	// merged histogram, the derived thresholds, the quiescence counters,
	// and the hold populations before/after the previous broadcast's drain
	// — exportable as JSONL/CSV (WriteAuditJSONL/WriteAuditCSV). Costs
	// memory per reduction, like HistogramTrace.
	AuditTrace bool
	// SmoothThresholds selects the §V threshold-function refinement: the
	// root derives thresholds from the whole histogram population via
	// histogram.ComputeSmoothThresholds instead of the paper's two-tier
	// rule (Algorithm 1).
	SmoothThresholds bool
	// OverDecomposition selects the §V over-decomposition extension: the
	// graph is split into OverDecomposition × numPEs contiguous chunks
	// dealt round-robin, spreading scale-free hubs across PEs. Values <= 1
	// keep the paper's plain 1-D block partition.
	OverDecomposition int
	// ComputeCost is the simulated per-unit compute time charged to a PE
	// for each update received and each edge relaxed. Zero disables the
	// compute model. Non-zero values make per-PE load real even on hosts
	// with fewer cores than PEs: the PE owning a scale-free hub serializes
	// through its backlog, reproducing the 1-D-partition imbalance the
	// paper blames for ACIC's RMAT losses (§IV-F).
	ComputeCost time.Duration
}

// DefaultParams returns the paper's tuned configuration: p_tram = 0.999,
// p_pq = 0.05, 512 buckets of width log|V|, WP aggregation with
// 1024-item buffers.
func DefaultParams() Params {
	return Params{
		PTram:             0.999,
		PPQ:               0.05,
		LowWatermarkPerPE: 100,
		BucketCount:       histogram.DefaultBuckets,
		TramMode:          tram.WP,
		TramCapacity:      tram.DefaultCapacity,
	}
}

// DefaultReductionDelay paces the reduction-broadcast cycle in simulation.
// 50µs approximates a small-scale machine-wide reduction round trip and
// leaves PEs ample idle windows to drain their priority queues.
const DefaultReductionDelay = 50 * time.Microsecond

func (p Params) withDefaults(numVertices int) (Params, error) {
	if p.ReductionDelay == 0 {
		p.ReductionDelay = DefaultReductionDelay
	} else if p.ReductionDelay < 0 {
		p.ReductionDelay = 0 // continuous cycle, paced by network latency only
	}
	if p.PTram == 0 {
		p.PTram = 0.999
	}
	if p.PPQ == 0 {
		p.PPQ = 0.05
	}
	if p.PTram < 0 || p.PTram > 1 || p.PPQ < 0 || p.PPQ > 1 {
		return p, fmt.Errorf("core: percentiles must be in (0,1]: p_tram=%v p_pq=%v", p.PTram, p.PPQ)
	}
	if p.LowWatermarkPerPE <= 0 {
		p.LowWatermarkPerPE = 100
	}
	if p.BucketCount <= 0 {
		p.BucketCount = histogram.DefaultBuckets
	}
	if p.BucketWidth <= 0 {
		p.BucketWidth = histogram.PaperWidth(numVertices)
	}
	if p.TramCapacity <= 0 {
		p.TramCapacity = tram.DefaultCapacity
	}
	return p, nil
}

// Transport selects the fabric carrying inter-PE messages (see
// Options.Transport).
type Transport int

const (
	// TransportSim is the default simulated network (internal/netsim).
	TransportSim Transport = iota
	// TransportTCP carries inter-process traffic over loopback TCP
	// sockets through the wire codec (internal/sockfab).
	TransportTCP
)

// Options configure one ACIC run.
type Options struct {
	// Topo is the simulated machine; zero value means a single node with
	// 4 PEs.
	Topo netsim.Topology
	// Latency is the network model; zero value means no injected latency.
	Latency netsim.LatencyModel
	// Params are the algorithm parameters; zero value means DefaultParams.
	Params Params
	// Trace, when non-nil, records per-PE scheduling events for post-run
	// analysis (see internal/trace). It must cover Topo.TotalPEs() PEs.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives every subsystem's instruments for
	// this run: "core." counters from the algorithm, "runtime." scheduler
	// telemetry, "tram." aggregation counters and "netsim." traffic
	// counters. It must cover Topo.TotalPEs() shards. Nil disables the
	// core/runtime telemetry; tram and netsim then fall back to private
	// registries so their Stats views keep working.
	Metrics *metrics.Registry
	// Clock times the run for Stats.Elapsed; nil means the wall clock.
	Clock simclock.Clock
	// Jitter, when non-nil, perturbs every message's delivery delay (see
	// netsim.JitterFunc) — the schedule-stress harness's hook.
	Jitter netsim.JitterFunc
	// Fault installs drop/duplication/reordering filters on the fabric
	// (see netsim.FaultPlan). A run with a drop filter and no Reliability
	// hangs loudly at the lost update — set Reliability to survive it.
	Fault netsim.FaultPlan
	// Reliability, when non-nil, inserts the relnet ack/retransmit layer
	// under the runtime so injected faults are healed: at-least-once
	// retransmission plus receiver dedup keeps the quiescence counters
	// exact (see internal/relnet). The zero relnet.Config is a usable
	// default.
	Reliability *relnet.Config
	// Transport selects how inter-PE messages travel: TransportSim (the
	// default) routes everything through the simulated network, while
	// TransportTCP builds one sockfab node per topology process,
	// loopback-connected, and serializes every inter-process message
	// through the wire codec over a real TCP socket. TCP runs reject the
	// simulation-only knobs — Latency, Jitter, Fault and Reliability —
	// because real sockets impose their own timing and already provide
	// ordered, reliable delivery.
	Transport Transport
	// Scratch, when non-nil, recycles per-run allocations across repeated
	// Runs of the same shape (see Scratch). Benchmark, stress and query
	// drivers set this; one-shot callers leave it nil. Must not be shared
	// by concurrent Runs — Run enforces this with an atomic latch and
	// returns ErrScratchInUse on overlap.
	Scratch *Scratch
}

// Stats aggregates the measurements the paper reports.
type Stats struct {
	// Elapsed is the wall time from seeding the source to termination.
	Elapsed time.Duration
	// UpdatesCreated / UpdatesProcessed are the global counter sums at the
	// terminating reduction; equality is the quiescence condition.
	UpdatesCreated   int64
	UpdatesProcessed int64
	// UpdatesRejected counts arrivals that did not improve a distance.
	UpdatesRejected int64
	// Relaxations counts onward-update generations (edges traversed by an
	// accepted, still-current update) — the "updates" series of Fig. 9.
	Relaxations int64
	// Reductions is the number of completed reduction-broadcast cycles.
	Reductions int64
	// TramStats are tramlib's counters.
	TramStats tram.Stats
	// Network are the simulated fabric's counters.
	Network netsim.Stats
	// Audit is the runtime's post-run conservation ledger; the stress
	// harness requires Audit.Unaccounted() == 0 and Audit.NetQueue == 0.
	Audit runtime.Audit
	// FinalizedEarly is true if the optional vertex-finalization condition
	// fired before quiescence.
	FinalizedEarly bool
	// HistTrace holds per-reduction merged histograms when
	// Params.HistogramTrace is set.
	HistTrace []HistSnapshot
	// AuditTrace holds one record per completed reduction when
	// Params.AuditTrace is set (see ThresholdAudit).
	AuditTrace []ThresholdAudit
}

// HistSnapshot is one recorded global histogram (Fig. 1 raw material).
type HistSnapshot struct {
	Epoch   int64
	Active  int64
	Buckets []int64
	TTram   int
	TPQ     int
}

// Result is the output of an ACIC run.
type Result struct {
	// Dist[v] is the computed shortest distance from the source, indexed
	// by global vertex id; +Inf marks unreachable vertices.
	Dist []float64
	// Parent[v] is v's predecessor on a shortest path from the source;
	// -1 for the source itself and for unreachable vertices. Together the
	// parents form a shortest-path tree (see PathTo).
	Parent []int32
	Stats  Stats
}

// PathTo reconstructs the shortest path from the run's source to v as a
// vertex sequence ending in v, using the Parent tree. It returns nil if v
// is unreachable. A cycle in the parent array (impossible for a completed
// run, checked defensively) also returns nil.
func (r *Result) PathTo(v int) []int32 {
	if v < 0 || v >= len(r.Parent) {
		return nil
	}
	if math.IsInf(r.Dist[v], 1) || math.IsNaN(r.Dist[v]) { // unreachable
		return nil
	}
	var rev []int32
	cur := int32(v)
	for steps := 0; cur >= 0; steps++ {
		if steps > len(r.Parent) {
			return nil // defensive cycle guard
		}
		rev = append(rev, cur)
		cur = r.Parent[cur]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
