package core

import (
	"errors"
	"math"
	"testing"

	"acic/internal/arena"
	"acic/internal/histogram"
	"acic/internal/netsim"
	"acic/internal/tram"
	"acic/internal/wire"
)

// newWireHarness builds the minimal sharedState the core codecs hang off:
// a tram manager (batch buffers) and a contribution pool.
func newWireHarness(t testing.TB) (*wire.Codec, *sharedState) {
	t.Helper()
	topo := netsim.Topology{Nodes: 1, ProcsPerNode: 2, PEsPerProc: 2}
	ar := arena.New[Update](topo.TotalPEs(), 64)
	tm, err := tram.NewWithArena[Update](topo, tram.WP, 64, nil, ar)
	if err != nil {
		t.Fatal(err)
	}
	sh := &sharedState{
		tm:          tm,
		pools:       &runPools{ar: ar},
		bucketCount: 16,
		bucketWidth: 0.5,
	}
	c := wire.NewCodec()
	registerCoreWire(c, sh)
	return c, sh
}

func roundTrip(t *testing.T, c *wire.Codec, v any) any {
	t.Helper()
	frame, err := c.EncodeFrame(nil, v)
	if err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	got, n, err := c.DecodeFrame(frame)
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	if n != len(frame) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(frame))
	}
	return got
}

func TestSeedAndStartWireRoundTrip(t *testing.T) {
	c, _ := newWireHarness(t)
	if got := roundTrip(t, c, seedMsg{source: 1234}).(seedMsg); got.source != 1234 {
		t.Errorf("seed round trip: %+v", got)
	}
	if _, ok := roundTrip(t, c, startMsg{}).(startMsg); !ok {
		t.Error("start round trip lost its type")
	}
}

func TestCtrlWireRoundTrip(t *testing.T) {
	c, _ := newWireHarness(t)
	want := ctrlMsg{
		thresholds:   histogram.Thresholds{Tram: 7, PQ: 3},
		lowestActive: math.Inf(1),
		terminate:    true,
		finalizedAll: true,
	}
	got := roundTrip(t, c, want).(ctrlMsg)
	if got != want {
		t.Errorf("ctrl round trip: got %+v, want %+v", got, want)
	}
}

func TestCtrlWireRejectsUnknownFlags(t *testing.T) {
	c, _ := newWireHarness(t)
	frame, err := c.EncodeFrame(nil, ctrlMsg{})
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] = 0x80 // flags byte is last on the wire
	if _, _, err := c.DecodeFrame(frame); !errors.Is(err, wire.ErrMalformed) {
		t.Errorf("bad flags decoded: %v", err)
	}
}

func TestBatchWireRoundTripRecyclesBuffers(t *testing.T) {
	c, sh := newWireHarness(t)
	items := sh.tm.Borrow(0)
	for i := 0; i < 5; i++ {
		items = append(items, Update{Vertex: int32(i), Pred: int32(i - 1), Dist: float64(i) * 1.5})
	}
	// Encoding consumes the batch (afterEncode returns the buffer to the
	// pool), exactly as handing it to a local PE would.
	frame, err := c.EncodeFrame(nil, batchMsg{items: items})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	dec := got.(batchMsg)
	if len(dec.items) != 5 {
		t.Fatalf("decoded %d items, want 5", len(dec.items))
	}
	for i, u := range dec.items {
		if u.Vertex != int32(i) || u.Pred != int32(i-1) || u.Dist != float64(i)*1.5 {
			t.Errorf("item %d: %+v", i, u)
		}
	}
	// The receiving PE releases the decoded buffer; after that the pool
	// ledger balances: one Borrow + one BorrowShared (decode) against one
	// Release (encode hook) + one ReleaseTo (here).
	sh.tm.ReleaseTo(1, dec.items)
	ts := sh.tm.Stats()
	if ts.PoolGets != ts.PoolPuts {
		t.Errorf("pool imbalance after round trip: %d gets, %d puts", ts.PoolGets, ts.PoolPuts)
	}
}

func TestBatchWireRejectsOversizedCount(t *testing.T) {
	c, sh := newWireHarness(t)
	// A count above the tram capacity can never be produced by a correct
	// sender; reject before allocating.
	body := wire.AppendU32(nil, uint32(sh.tm.Capacity()+1))
	frame := buildFrame(wire.TagBatch, body)
	if _, _, err := c.DecodeFrame(frame); !errors.Is(err, wire.ErrMalformed) {
		t.Errorf("oversized batch count decoded: %v", err)
	}
	// A plausible count with a body too short to hold it must also fail
	// before the allocation, not during the reads.
	body = wire.AppendU32(nil, 50)
	frame = buildFrame(wire.TagBatch, body)
	if _, _, err := c.DecodeFrame(frame); !errors.Is(err, wire.ErrMalformed) {
		t.Errorf("short batch body decoded: %v", err)
	}
}

func TestReduceValWireRoundTrip(t *testing.T) {
	c, sh := newWireHarness(t)
	rv := sh.pools.getReduceVal(sh.bucketCount, sh.bucketWidth)
	rv.hist.Reset()
	rv.hist.AddCreated(0.6) // bucket 1
	rv.hist.AddCreated(7.9) // bucket 15
	rv.hist.AddProcessed(0.6)
	rv.finalized = 42
	rv.holds = holdStats{tramHeldBefore: 1, tramDrained: 2, tramHeldAfter: 3, pqHeldBefore: 4, pqDrained: 5, pqHeldAfter: 6}

	// The encode hook recycles rv into the pool and the decode draws from
	// it, so got may be the very same object — that round trip through the
	// freelist is the point of the pooling.
	got := roundTrip(t, c, rv).(*reduceVal)
	if got.hist.Created != 2 || got.hist.Processed != 1 {
		t.Errorf("counters: created %d processed %d", got.hist.Created, got.hist.Processed)
	}
	// Bucket 1 netted out (created then processed); bucket 15 is still
	// active and is the only nonzero entry the sparse encoding carries.
	if got.hist.Bucket(1) != 0 || got.hist.Bucket(15) != 1 {
		t.Errorf("buckets did not survive: %d %d", got.hist.Bucket(1), got.hist.Bucket(15))
	}
	if got.finalized != 42 || got.holds != rv.holds {
		// rv was recycled by the encode hook but its fields are still
		// readable here; the pool does not clear them.
		t.Errorf("finalized/holds: %d %+v", got.finalized, got.holds)
	}
	sh.pools.putReduceVal(got)
}

func TestReduceValWireRejectsShapeMismatch(t *testing.T) {
	c, sh := newWireHarness(t)

	// Wrong bucket count.
	body := wire.AppendU32(nil, uint32(sh.bucketCount+1))
	body = wire.AppendF64(body, sh.bucketWidth)
	frame := buildFrame(wire.TagReduceVal, body)
	if _, _, err := c.DecodeFrame(frame); !errors.Is(err, wire.ErrMalformed) {
		t.Errorf("wrong bucket count decoded: %v", err)
	}

	// Right shape, bucket index out of range.
	body = wire.AppendU32(nil, uint32(sh.bucketCount))
	body = wire.AppendF64(body, sh.bucketWidth)
	body = wire.AppendI64(body, 0) // created
	body = wire.AppendI64(body, 0) // processed
	body = wire.AppendU32(body, 1) // nnz
	body = wire.AppendU32(body, uint32(sh.bucketCount))
	body = wire.AppendI64(body, 9)
	frame = buildFrame(wire.TagReduceVal, body)
	if _, _, err := c.DecodeFrame(frame); !errors.Is(err, wire.ErrMalformed) {
		t.Errorf("out-of-range bucket index decoded: %v", err)
	}

	// nnz larger than the remaining body.
	body = wire.AppendU32(nil, uint32(sh.bucketCount))
	body = wire.AppendF64(body, sh.bucketWidth)
	body = wire.AppendI64(body, 0)
	body = wire.AppendI64(body, 0)
	body = wire.AppendU32(body, 16)
	frame = buildFrame(wire.TagReduceVal, body)
	if _, _, err := c.DecodeFrame(frame); !errors.Is(err, wire.ErrMalformed) {
		t.Errorf("overlong nnz decoded: %v", err)
	}
}

func TestDelayedCtrlIsNotWireEncodable(t *testing.T) {
	c, _ := newWireHarness(t)
	// delayedCtrl re-enters the root via Inject, which never crosses a
	// process boundary; reaching the codec is a routing bug.
	if _, err := c.EncodeFrame(nil, delayedCtrl{}); !errors.Is(err, wire.ErrUnknownTag) {
		t.Errorf("delayedCtrl encoded: %v", err)
	}
}

// buildFrame wraps a raw tagged body in the frame preamble, for feeding
// hand-built (malformed) bodies to DecodeFrame.
func buildFrame(tag byte, body []byte) []byte {
	frame := make([]byte, 0, 6+len(body))
	frame = wire.AppendU32(frame, uint32(2+len(body)))
	frame = wire.AppendU8(frame, wire.Version)
	frame = wire.AppendU8(frame, tag)
	return append(frame, body...)
}
