package core

// Tests for the future-work extensions of §V implemented in this package:
// over-decomposition (chunked round-robin partitioning) and the smooth
// threshold function.

import (
	"testing"

	"acic/internal/gen"
	"acic/internal/netsim"
	"acic/internal/seq"
)

func TestOverDecompositionCorrectness(t *testing.T) {
	g := gen.RMAT(10, 8, gen.DefaultRMAT(), gen.Config{Seed: 20})
	for _, od := range []int{2, 4, 16} {
		p := DefaultParams()
		p.OverDecomposition = od
		res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
		if res.Stats.UpdatesCreated != res.Stats.UpdatesProcessed {
			t.Errorf("od=%d: not quiescent", od)
		}
	}
}

func TestOverDecompositionOneIsPlainBlocks(t *testing.T) {
	// od=1 and od=0 must both select the paper's 1-D block layout and
	// produce identical distances to od>1.
	g := gen.Uniform(800, 6400, gen.Config{Seed: 21})
	p0 := DefaultParams()
	p0.OverDecomposition = 0
	a := mustRun(t, g, 0, Options{Params: p0})
	p8 := DefaultParams()
	p8.OverDecomposition = 8
	b := mustRun(t, g, 0, Options{Params: p8})
	if !seq.Equal(a.Dist, b.Dist) {
		t.Error("over-decomposition changed the fixed point")
	}
}

func TestOverDecompositionAcrossTopologies(t *testing.T) {
	g := gen.Grid(10, 10, gen.Config{Seed: 22})
	p := DefaultParams()
	p.OverDecomposition = 4
	runAndVerify(t, g, 0, Options{
		Topo:   netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2},
		Params: p,
	})
}

func TestSmoothThresholdsCorrectness(t *testing.T) {
	for _, kind := range []string{"uniform", "rmat"} {
		var g = gen.Uniform(1500, 12000, gen.Config{Seed: 23})
		if kind == "rmat" {
			g = gen.RMAT(10, 8, gen.DefaultRMAT(), gen.Config{Seed: 23})
		}
		p := DefaultParams()
		p.SmoothThresholds = true
		res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
		if res.Stats.Reductions == 0 {
			t.Errorf("%s: no reductions under smooth policy", kind)
		}
	}
}

func TestSmoothPlusOverDecomposition(t *testing.T) {
	// Both extensions together.
	g := gen.RMAT(10, 8, gen.DefaultRMAT(), gen.Config{Seed: 24})
	p := DefaultParams()
	p.SmoothThresholds = true
	p.OverDecomposition = 8
	runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(6), Params: p})
}
