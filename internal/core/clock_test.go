package core

import (
	"testing"
	"time"

	"acic/internal/graph"
	"acic/internal/simclock"
)

// TestFakeClockElapsed pins the run driver's timing to Options.Clock: with a
// fake clock that never advances, Stats.Elapsed must be exactly zero no
// matter how long the run really took.
func TestFakeClockElapsed(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 0, To: 2, Weight: 4},
		{From: 1, To: 2, Weight: 2}, {From: 1, To: 3, Weight: 6},
		{From: 2, To: 3, Weight: 3},
	})
	res := runAndVerify(t, g, 0, Options{Clock: simclock.NewFake(time.Unix(0, 0))})
	if res.Stats.Elapsed != 0 {
		t.Errorf("Elapsed = %v with a frozen fake clock, want 0", res.Stats.Elapsed)
	}
}
