package core

import (
	"strings"
	"testing"
	"time"

	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/relnet"
)

// tcpTopo is the transport tests' machine: 4 processes of 2 PEs each, so
// most traffic crosses a real loopback TCP connection.
func tcpTopo() netsim.Topology {
	return netsim.Topology{Nodes: 1, ProcsPerNode: 4, PEsPerProc: 2}
}

// TestTransportTCPMatchesDijkstra runs ACIC over real sockets and holds it
// to the same oracle as every simulated run, plus the transport-specific
// ledger: the conservation identity closes with the boundary columns in
// place, and the mesh's out/in boundary counters agree exactly.
func TestTransportTCPMatchesDijkstra(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat": gen.RMAT(10, 8, gen.DefaultRMAT(), gen.Config{Seed: 7}),
		"grid": gen.Grid(24, 24, gen.Config{Seed: 3}),
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			res := runAndVerify(t, g, 0, Options{Topo: tcpTopo(), Transport: TransportTCP})
			a := res.Stats.Audit
			if un := a.Unaccounted(); un != 0 {
				t.Errorf("conservation ledger unbalanced: %d unaccounted\n%+v", un, a)
			}
			if a.NetQueue != 0 {
				t.Errorf("fabric not drained: %d frames queued", a.NetQueue)
			}
			if a.BoundaryOut != a.BoundaryIn {
				t.Errorf("boundary counters: out %d != in %d", a.BoundaryOut, a.BoundaryIn)
			}
			if a.BoundaryOut == 0 {
				t.Error("no frame crossed a process boundary on a 4-process mesh")
			}
			ts := res.Stats.TramStats
			if ts.PoolGets != ts.PoolPuts {
				t.Errorf("tram pool imbalance across the socket: %d gets, %d puts", ts.PoolGets, ts.PoolPuts)
			}
		})
	}
}

// TestTransportTCPSingleProcess keeps everything in one process: the mesh
// exists but no frame should ever hit a socket.
func TestTransportTCPSingleProcess(t *testing.T) {
	g := gen.Grid(12, 12, gen.Config{Seed: 1})
	topo := netsim.Topology{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 4}
	res := runAndVerify(t, g, 0, Options{Topo: topo, Transport: TransportTCP})
	a := res.Stats.Audit
	if a.BoundaryOut != 0 || a.BoundaryIn != 0 {
		t.Errorf("single-process run crossed a boundary: out %d in %d", a.BoundaryOut, a.BoundaryIn)
	}
	if un := a.Unaccounted(); un != 0 {
		t.Errorf("conservation ledger unbalanced: %d unaccounted", un)
	}
}

// TestTransportTCPRepeatedRunsShareScratch reruns over fresh meshes with
// one Scratch, the query-engine usage pattern.
func TestTransportTCPRepeatedRunsShareScratch(t *testing.T) {
	g := gen.Grid(16, 16, gen.Config{Seed: 5})
	sc := &Scratch{}
	for i := 0; i < 3; i++ {
		src := (i * 37) % g.NumVertices()
		runAndVerify(t, g, src, Options{Topo: tcpTopo(), Transport: TransportTCP, Scratch: sc})
	}
}

// TestTransportTCPRejectsSimKnobs pins the contract that the simulation-
// only options fail loudly instead of being silently ignored.
func TestTransportTCPRejectsSimKnobs(t *testing.T) {
	g := gen.Path(8)
	cases := map[string]Options{
		"latency":     {Transport: TransportTCP, Latency: netsim.DefaultLatency()},
		"jitter":      {Transport: TransportTCP, Jitter: func(src, dst, size int, base time.Duration) time.Duration { return base }},
		"fault":       {Transport: TransportTCP, Fault: netsim.FaultPlan{Drop: func(src, dst, size int) bool { return false }}},
		"reliability": {Transport: TransportTCP, Reliability: &relnet.Config{}},
	}
	for name, opts := range cases {
		opts := opts
		t.Run(name, func(t *testing.T) {
			if _, err := Run(g, 0, opts); err == nil || !strings.Contains(err.Error(), "TransportTCP") {
				t.Errorf("want a TransportTCP rejection, got %v", err)
			}
		})
	}
}
