package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Golden values for seed 1234567. These lock the sequence so that saved
	// experiment seeds keep reproducing identical graphs across releases.
	sm := NewSplitMix64(1234567)
	got := []uint64{sm.Next(), sm.Next(), sm.Next()}
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SplitMix64 value %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams 0 and 1 produced %d identical values out of 100", same)
	}
}

func TestNewStreamDeterministic(t *testing.T) {
	a := NewStream(7, 3)
	b := NewStream(7, 3)
	if a.Uint64() != b.Uint64() {
		t.Error("NewStream with identical arguments produced different sequences")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(99)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared test over 8 cells; loose threshold to avoid flakiness.
	r := New(2024)
	const cells = 8
	const samples = 80000
	counts := make([]int, cells)
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(cells)]++
	}
	expected := float64(samples) / cells
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 7 degrees of freedom; p=0.001 critical value is 24.32.
	if chi2 > 24.32 {
		t.Errorf("chi-squared = %.2f, counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRange(t *testing.T) {
	r := New(6)
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Range(3,7) = %v", v)
		}
	}
}

func TestRangePanicsWhenInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Range(7,3) did not panic")
		}
	}()
	New(1).Range(7, 3)
}

func TestExpPositiveAndMean(t *testing.T) {
	r := New(8)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Exp(2.0)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) sample mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(10)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Errorf("Shuffle changed element sum: %d -> %d", sum, got)
	}
}

func TestSplitProducesIndependentStream(t *testing.T) {
	a := New(11)
	b := a.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent and split child matched %d/100 values", same)
	}
}

// Property: Uint64n(n) < n for all n > 0.
func TestQuickUint64nInRange(t *testing.T) {
	r := New(123)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two generators with the same seed agree on arbitrary prefixes.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(n); i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64n(1000003)
	}
	_ = sink
}
