// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the repository.
//
// Every experiment in the paper averages several trials, each with its own
// random seed for both graph structure and edge weights (§IV-C). To make
// those trials reproducible across machines and Go versions, all randomness
// in this module flows through xrand rather than math/rand: the sequences
// below are fully specified by their seed and will never change.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny 64-bit state generator, used for seeding and for
//     cheap per-worker streams.
//   - Xoshiro256: xoshiro256** by Blackman and Vigna, the main generator.
package xrand

import (
	"math"
	"math/bits"
)

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It has a
// single 64-bit word of state and passes BigCrush. Its primary use here is
// expanding one user seed into many independent stream seeds.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not valid; construct
// with New. Rand is not safe for concurrent use; give each goroutine its own
// stream via Split or NewStream.
type Rand struct {
	s [4]uint64
}

// New returns a Rand deterministically seeded from seed. The 256-bit state
// is expanded from the seed with SplitMix64, as recommended by the xoshiro
// authors.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro's state must not be all zero; SplitMix64 cannot produce four
	// consecutive zeros, so no further check is needed.
	return r
}

// NewStream returns the stream-th independent generator derived from seed.
// Streams with distinct indices are statistically independent, which lets
// each PE or each trial own a private generator without coordination.
func NewStream(seed, stream uint64) *Rand {
	sm := NewSplitMix64(seed)
	// Burn stream values so different streams start from decorrelated
	// SplitMix64 positions, then mix the stream index into the state.
	base := sm.Next()
	return New(base ^ (stream+1)*0x9e3779b97f4a7c15)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new Rand whose stream is derived from, and independent of,
// the receiver's. The receiver advances by one value.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Uint64n returns a uniform value in [0, n) using Lemire's nearly-divisionless
// method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n // (2^64 - n) mod n: size of the biased region
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *Rand) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("xrand: Range called with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with rate lambda.
func (r *Rand) Exp(lambda float64) float64 {
	u := r.Float64()
	// Guard against log(0); Float64 can return exactly 0.
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u) / lambda
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
