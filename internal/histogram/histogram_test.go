package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"acic/internal/xrand"
)

func TestBucketOfMapping(t *testing.T) {
	h := New(512, 10)
	cases := []struct {
		d    float64
		want int
	}{
		{-3, 0},
		{0, 0},
		{9.99, 0},
		{10, 1},
		{25, 2},
		{5109.99, 510},
		{5110, 511},
		{1e12, 511},        // clamps to last bucket
		{math.NaN(), 511},  // poisoned value: top bucket, like +Inf
		{math.Inf(1), 511}, // clamps to last bucket
	}
	for _, c := range cases {
		if got := h.BucketOf(c.d); got != c.want {
			t.Errorf("BucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestPaperWidth(t *testing.T) {
	if w := PaperWidth(int(math.Exp(10))); math.Abs(w-10) > 0.01 {
		t.Errorf("PaperWidth(e^10) = %v, want ~10", w)
	}
	if w := PaperWidth(2); w != 1 {
		t.Errorf("PaperWidth(2) = %v, want clamp to 1", w)
	}
}

func TestNewPanics(t *testing.T) {
	for _, c := range []struct {
		n int
		w float64
	}{{0, 1}, {-1, 1}, {10, 0}, {10, -2}, {10, math.NaN()}, {10, math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %v) did not panic", c.n, c.w)
				}
			}()
			New(c.n, c.w)
		}()
	}
}

func TestCreatedProcessedLifecycle(t *testing.T) {
	h := New(8, 1)
	h.AddCreated(3.5)
	h.AddCreated(3.7)
	h.AddCreated(6.0)
	if h.Created != 3 || h.Processed != 0 {
		t.Fatalf("counters = (%d,%d)", h.Created, h.Processed)
	}
	if h.Bucket(3) != 2 || h.Bucket(6) != 1 {
		t.Fatalf("bucket counts wrong: %v %v", h.Bucket(3), h.Bucket(6))
	}
	h.AddProcessed(3.5)
	if h.Bucket(3) != 1 {
		t.Fatalf("bucket 3 after process = %d", h.Bucket(3))
	}
	if h.Active() != 2 {
		t.Fatalf("Active = %d", h.Active())
	}
	if h.Sum() != 2 {
		t.Fatalf("Sum = %d", h.Sum())
	}
}

func TestRemoteDecrementGoesNegativeLocally(t *testing.T) {
	// The PE that processes an update decrements its own local histogram
	// even when a different PE created it (§II-B); locally that can go
	// negative, and only the merged histogram must balance.
	creator := New(8, 1)
	processor := New(8, 1)
	creator.AddCreated(2.0)
	processor.AddProcessed(2.0)
	if processor.Bucket(2) != -1 {
		t.Fatalf("processor bucket = %d, want -1", processor.Bucket(2))
	}
	global := New(8, 1)
	global.Merge(creator)
	global.Merge(processor)
	if global.Bucket(2) != 0 {
		t.Fatalf("merged bucket = %d, want 0", global.Bucket(2))
	}
	if global.Created != 1 || global.Processed != 1 {
		t.Fatalf("merged counters = (%d,%d)", global.Created, global.Processed)
	}
	if global.Active() != 0 {
		t.Fatalf("merged Active = %d", global.Active())
	}
}

func TestMergePanicsOnShapeMismatch(t *testing.T) {
	a := New(8, 1)
	b := New(16, 1)
	defer func() {
		if recover() == nil {
			t.Error("Merge with different bucket counts did not panic")
		}
	}()
	a.Merge(b)
}

func TestMergePanicsOnWidthMismatch(t *testing.T) {
	a := New(8, 1)
	b := New(8, 2)
	defer func() {
		if recover() == nil {
			t.Error("Merge with different widths did not panic")
		}
	}()
	a.Merge(b)
}

func TestSnapshotIsIndependentCopy(t *testing.T) {
	h := New(8, 1)
	h.AddCreated(1)
	s := h.Snapshot()
	h.AddCreated(1)
	if s.Bucket(1) != 1 {
		t.Fatalf("snapshot mutated: bucket = %d", s.Bucket(1))
	}
	if s.Created != 1 {
		t.Fatalf("snapshot Created = %d", s.Created)
	}
}

func TestResetClears(t *testing.T) {
	h := New(8, 1)
	h.AddCreated(3)
	h.AddProcessed(5)
	h.Reset()
	if h.Sum() != 0 || h.Created != 0 || h.Processed != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestLowestHighestNonEmpty(t *testing.T) {
	h := New(16, 1)
	if h.LowestNonEmpty() != -1 || h.HighestNonEmpty() != -1 {
		t.Fatal("empty histogram should report -1")
	}
	h.AddCreated(4.2)
	h.AddCreated(11.9)
	if got := h.LowestNonEmpty(); got != 4 {
		t.Errorf("LowestNonEmpty = %d, want 4", got)
	}
	if got := h.HighestNonEmpty(); got != 11 {
		t.Errorf("HighestNonEmpty = %d, want 11", got)
	}
}

func TestPercentileBucket(t *testing.T) {
	h := New(10, 1)
	// 10 updates in bucket 2, 80 in bucket 5, 10 in bucket 9.
	for i := 0; i < 10; i++ {
		h.AddCreated(2.5)
	}
	for i := 0; i < 80; i++ {
		h.AddCreated(5.5)
	}
	for i := 0; i < 10; i++ {
		h.AddCreated(9.5)
	}
	cases := []struct {
		p    float64
		want int
	}{
		{0.05, 2},  // 5% reached within bucket 2
		{0.10, 2},  // exactly the bucket-2 mass
		{0.11, 5},  // needs bucket 5
		{0.90, 5},  // 90% reached at bucket 5
		{0.91, 9},  // needs the tail
		{1.00, 9},  // everything
		{0.999, 9}, // paper's optimal p_tram
	}
	for _, c := range cases {
		if got := h.PercentileBucket(c.p); got != c.want {
			t.Errorf("PercentileBucket(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPercentileBucketEmptyReturnsLast(t *testing.T) {
	h := New(32, 1)
	if got := h.PercentileBucket(0.5); got != 31 {
		t.Errorf("empty histogram percentile = %d, want 31", got)
	}
}

func TestPercentileBucketIgnoresNegativeCounts(t *testing.T) {
	h := New(10, 1)
	h.AddProcessed(1.5) // bucket 1 goes to -1 (remote decrement)
	for i := 0; i < 10; i++ {
		h.AddCreated(7.5)
	}
	if got := h.PercentileBucket(0.5); got != 7 {
		t.Errorf("PercentileBucket = %d, want 7 (negative bucket skipped)", got)
	}
}

func TestPercentileBucketPanicsOutOfRange(t *testing.T) {
	h := New(4, 1)
	for _, p := range []float64{0, -0.1, 1.01, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PercentileBucket(%v) did not panic", p)
				}
			}()
			h.PercentileBucket(p)
		}()
	}
}

func TestComputeThresholdsLowWatermark(t *testing.T) {
	g := New(64, 1)
	p := DefaultParams()
	// 100 PEs, watermark 100 → limit 10000 active; put 5000 active updates.
	for i := 0; i < 5000; i++ {
		g.AddCreated(float64(i % 60))
	}
	th := ComputeThresholds(g, 100, p)
	if th.Tram != 63 || th.PQ != 63 {
		t.Errorf("low-parallelism thresholds = %+v, want both 63", th)
	}
}

func TestComputeThresholdsPercentiles(t *testing.T) {
	g := New(64, 1)
	p := Params{PTram: 0.999, PPQ: 0.05, LowWatermarkPerPE: 100}
	// 2 PEs → limit 200; add 10000 updates uniformly over buckets 0..49.
	for i := 0; i < 10000; i++ {
		g.AddCreated(float64(i % 50))
	}
	th := ComputeThresholds(g, 2, p)
	if th.PQ >= th.Tram {
		t.Errorf("expected PQ threshold below tram threshold: %+v", th)
	}
	// p_pq = 0.05 of a uniform [0,50) distribution lands in bucket ~2.
	if th.PQ < 1 || th.PQ > 4 {
		t.Errorf("PQ threshold = %d, want ~2", th.PQ)
	}
	// p_tram = 0.999 lands at the top of the occupied range.
	if th.Tram < 48 || th.Tram > 49 {
		t.Errorf("Tram threshold = %d, want ~49", th.Tram)
	}
}

func TestSmoothThresholdsConvergeToPercentilesUnderLoad(t *testing.T) {
	// Heavily loaded: active ≫ watermark·PEs, so boost ≈ 0 and the smooth
	// policy matches the paper's percentile rule.
	g := New(64, 1)
	for i := 0; i < 1000000; i++ {
		g.AddCreated(float64(i % 50))
	}
	p := DefaultParams()
	smooth := ComputeSmoothThresholds(g, 2, p)
	paper := ComputeThresholds(g, 2, p)
	if smooth.Tram != paper.Tram {
		t.Errorf("tram: smooth %d vs paper %d under heavy load", smooth.Tram, paper.Tram)
	}
	if smooth.PQ > paper.PQ+2 {
		t.Errorf("pq: smooth %d far above paper %d under heavy load", smooth.PQ, paper.PQ)
	}
}

func TestSmoothThresholdsOpenWhenDrained(t *testing.T) {
	g := New(64, 1)
	for i := 0; i < 50; i++ {
		g.AddCreated(float64(i))
	}
	// 50 active ≤ 100×4 watermark: both policies release everything.
	p := DefaultParams()
	smooth := ComputeSmoothThresholds(g, 4, p)
	if smooth.Tram != 63 || smooth.PQ != 63 {
		t.Errorf("drained smooth thresholds = %+v, want max", smooth)
	}
	empty := New(64, 1)
	se := ComputeSmoothThresholds(empty, 4, p)
	if se.Tram != 63 || se.PQ != 63 {
		t.Errorf("empty smooth thresholds = %+v", se)
	}
}

func TestSmoothThresholdsMonotoneInActive(t *testing.T) {
	// More active updates → tighter (lower or equal) pq threshold.
	p := DefaultParams()
	prev := 1 << 30
	for _, n := range []int{500, 5000, 50000, 500000} {
		g := New(64, 1)
		for i := 0; i < n; i++ {
			g.AddCreated(float64(i % 60))
		}
		th := ComputeSmoothThresholds(g, 1, p)
		if th.PQ > prev {
			t.Errorf("active=%d: PQ threshold %d rose above %d", n, th.PQ, prev)
		}
		prev = th.PQ
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.PTram != 0.999 || p.PPQ != 0.05 || p.LowWatermarkPerPE != 100 {
		t.Errorf("DefaultParams = %+v, want paper's §IV-E optimum", p)
	}
}

func TestStringSparkline(t *testing.T) {
	h := New(512, 1)
	for i := 0; i < 100; i++ {
		h.AddCreated(float64(i))
	}
	s := h.String()
	if s == "" {
		t.Fatal("String() empty")
	}
	empty := New(4, 1)
	if empty.String() == "" {
		t.Fatal("String() on empty histogram empty")
	}
}

// Property: merging N random local histograms then checking Active equals
// the sum of created minus processed events, and every bucket balances when
// every created event is eventually processed.
func TestQuickMergeBalance(t *testing.T) {
	f := func(seed uint64, nPE uint8) bool {
		pes := int(nPE%7) + 1
		r := xrand.New(seed)
		locals := make([]*Histogram, pes)
		for i := range locals {
			locals[i] = New(32, 2)
		}
		// Generate 200 updates: created on one random PE, processed on
		// another.
		type upd struct{ d float64 }
		var live []upd
		for i := 0; i < 200; i++ {
			d := r.Float64() * 64
			locals[r.Intn(pes)].AddCreated(d)
			live = append(live, upd{d})
			// Randomly process some pending updates.
			if len(live) > 0 && r.Float64() < 0.5 {
				k := r.Intn(len(live))
				locals[r.Intn(pes)].AddProcessed(live[k].d)
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		global := New(32, 2)
		for _, l := range locals {
			global.Merge(l)
		}
		if global.Active() != int64(len(live)) {
			return false
		}
		return global.Sum() == int64(len(live))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: PercentileBucket is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		h := New(64, 1)
		n := 1 + r.Intn(500)
		for i := 0; i < n; i++ {
			h.AddCreated(r.Float64() * 64)
		}
		prev := -1
		for _, p := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0} {
			b := h.PercentileBucket(p)
			if b < prev {
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddCreated(b *testing.B) {
	h := New(512, 10)
	for i := 0; i < b.N; i++ {
		h.AddCreated(float64(i % 5000))
	}
}

func BenchmarkMerge512(b *testing.B) {
	a := New(512, 10)
	c := New(512, 10)
	for i := 0; i < 512; i++ {
		c.AddCreated(float64(i * 10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(c)
	}
}

func BenchmarkComputeThresholds(b *testing.B) {
	g := New(512, 10)
	r := xrand.New(1)
	for i := 0; i < 100000; i++ {
		g.AddCreated(r.Float64() * 5120)
	}
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeThresholds(g, 48, p)
	}
}
