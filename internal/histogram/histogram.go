// Package histogram implements the update histograms at the heart of ACIC
// (§II-B of the paper) and the threshold computation of Algorithm 1.
//
// Each PE keeps a local Histogram counting its *active* updates — updates
// created but not yet processed — bucketed by distance value. The bucket of
// an update with distance d is
//
//	bucket(d) = floor(d / width)
//
// where the paper fixes width = log(|V|) and uses 512 buckets (Fig. 1).
// Increments happen on the creating PE and decrements on the processing PE,
// so an individual local histogram may hold negative bucket counts; only the
// global sum across all PEs is meaningful, which is why the reduction sums
// raw signed counters rather than clamping.
//
// The root PE combines local histograms with Merge and derives the tram and
// pq thresholds with Thresholds (Algorithm 1). A threshold is a bucket
// index: the smallest bucket such that the cumulative count of active
// updates at or below it reaches a caller-provided fraction p of all active
// updates.
package histogram

import (
	"fmt"
	"math"
	"strings"
)

// DefaultBuckets is the bucket count used throughout the paper (Fig. 1).
const DefaultBuckets = 512

// Histogram is a fixed-size array of signed bucket counters plus the
// created/processed counters that ride along with every reduction (§II-D).
// The zero value is not usable; construct with New.
type Histogram struct {
	width   float64
	buckets []int64

	// Created and Processed mirror the per-PE "updates created locally" and
	// "updates processed locally" counters reduced alongside the histogram
	// for quiescence detection.
	Created   int64
	Processed int64
}

// Width returns the bucket width.
func (h *Histogram) Width() float64 { return h.width }

// PaperWidth returns the paper's bucket width log(|V|) (natural log),
// clamped below at 1 so tiny test graphs still bucket sensibly.
func PaperWidth(numVertices int) float64 {
	w := math.Log(float64(numVertices))
	if w < 1 {
		w = 1
	}
	return w
}

// New returns a Histogram with the given number of buckets of the given
// width. It panics on a non-positive bucket count or width.
func New(bucketCount int, width float64) *Histogram {
	if bucketCount <= 0 {
		panic("histogram: non-positive bucket count")
	}
	if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) {
		panic("histogram: invalid bucket width")
	}
	return &Histogram{width: width, buckets: make([]int64, bucketCount)}
}

// NumBuckets returns the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// BucketOf maps a distance to its bucket index, clamping to the valid range.
// Distances beyond the last bucket accumulate in the last bucket, matching
// the fixed 512-bucket layout of the paper. The range check happens in
// float space: converting first would overflow int for +Inf or very large
// d (the conversion result is implementation-defined) and index out of
// bounds.
//
// NaN lands in the LAST bucket, like +Inf. A NaN distance is a poisoned
// value, not near-zero work: counting it in bucket 0 would inflate the low
// end of the cumulative distribution and drag both thresholds down,
// throttling healthy traffic. The top bucket keeps it out of the threshold
// computation's hot range, consistent with every other not-a-finite-small
// distance.
func (h *Histogram) BucketOf(d float64) int {
	if math.IsNaN(d) {
		return len(h.buckets) - 1
	}
	if d <= 0 {
		return 0
	}
	b := d / h.width
	if b >= float64(len(h.buckets)) {
		return len(h.buckets) - 1
	}
	return int(b)
}

// AddCreated records the creation of an update with distance d: the bucket
// is incremented and the created counter advances (§II-B).
func (h *Histogram) AddCreated(d float64) {
	h.buckets[h.BucketOf(d)]++
	h.Created++
}

// AddProcessed records that the processing of an update with distance d
// completed (it was rejected, superseded, or all onward updates were
// created): the bucket is decremented and the processed counter advances.
func (h *Histogram) AddProcessed(d float64) {
	h.buckets[h.BucketOf(d)]--
	h.Processed++
}

// Bucket returns the raw signed count of bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// SetBucket overwrites the raw count of bucket i. It exists for the wire
// codec, which rebuilds a histogram from its serialized sparse buckets;
// algorithm code mutates buckets only through AddCreated/AddProcessed so
// Created/Processed stay consistent with the bucket contents.
func (h *Histogram) SetBucket(i int, v int64) { h.buckets[i] = v }

// Active returns Created - Processed, the number of updates this histogram
// believes are in flight. Only meaningful on a merged global histogram.
func (h *Histogram) Active() int64 { return h.Created - h.Processed }

// Sum returns the sum of all bucket counts. On a merged global histogram
// this equals Active.
func (h *Histogram) Sum() int64 {
	var s int64
	for _, b := range h.buckets {
		s += b
	}
	return s
}

// Snapshot returns a copy of the histogram for contribution to a reduction,
// then clears nothing: contributions are cumulative state, and the merge at
// the root uses the latest snapshot from each PE.
func (h *Histogram) Snapshot() *Histogram {
	c := &Histogram{
		width:     h.width,
		buckets:   append([]int64(nil), h.buckets...),
		Created:   h.Created,
		Processed: h.Processed,
	}
	return c
}

// SnapshotInto copies h into dst — Snapshot without the allocation, for
// callers that recycle contribution histograms through a pool. It panics
// if shapes differ (a pooled histogram always matches its run's shape).
func (h *Histogram) SnapshotInto(dst *Histogram) {
	if len(dst.buckets) != len(h.buckets) {
		panic(fmt.Sprintf("histogram: snapshot of %d buckets into %d", len(h.buckets), len(dst.buckets)))
	}
	dst.width = h.width
	copy(dst.buckets, h.buckets)
	dst.Created = h.Created
	dst.Processed = h.Processed
}

// Merge adds other into h bucket-wise and accumulates the counters. It
// panics if shapes differ.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.buckets) != len(other.buckets) {
		panic(fmt.Sprintf("histogram: merging %d buckets into %d", len(other.buckets), len(h.buckets)))
	}
	if h.width != other.width {
		panic("histogram: merging histograms with different widths")
	}
	for i, b := range other.buckets {
		h.buckets[i] += b
	}
	h.Created += other.Created
	h.Processed += other.Processed
}

// Reset zeroes all buckets and counters.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.Created = 0
	h.Processed = 0
}

// LowestNonEmpty returns the index of the lowest bucket with a positive
// count, or -1 if none. Fig. 1's "lowest bucket number with remaining
// updates" is this value on the merged histogram.
func (h *Histogram) LowestNonEmpty() int {
	for i, b := range h.buckets {
		if b > 0 {
			return i
		}
	}
	return -1
}

// HighestNonEmpty returns the index of the highest bucket with a positive
// count, or -1 if none.
func (h *Histogram) HighestNonEmpty() int {
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i] > 0 {
			return i
		}
	}
	return -1
}

// PercentileBucket implements the bucket(p) routine of Algorithm 1: walk the
// buckets from lowest to highest accumulating counts and return the first
// bucket where the running sum reaches fraction p (in (0,1]) of total.
// Negative bucket counts (possible in merged histograms mid-flight due to
// remote decrements racing local increments) are treated as zero during the
// walk, and total is the sum of those clamped counts.
//
// If the histogram is empty, the last bucket index is returned so that every
// pending update clears the threshold and the algorithm can drain.
func (h *Histogram) PercentileBucket(p float64) int {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("histogram: percentile fraction %v out of (0,1]", p))
	}
	var total int64
	for _, b := range h.buckets {
		if b > 0 {
			total += b
		}
	}
	if total == 0 {
		return len(h.buckets) - 1
	}
	target := p * float64(total)
	var running int64
	for i, b := range h.buckets {
		if b > 0 {
			running += b
		}
		if float64(running) >= target {
			return i
		}
	}
	return len(h.buckets) - 1
}

// Thresholds holds the two bucket thresholds broadcast after a reduction.
type Thresholds struct {
	Tram int // t_tram: updates with bucket > Tram stay in tram_hold
	PQ   int // t_pq: accepted updates with bucket > PQ stay in pq_hold
}

// Params configures the root's threshold policy (§III).
type Params struct {
	// PTram and PPQ are the user-provided percentile fractions p_tram and
	// p_pq in (0,1].
	PTram float64
	PPQ   float64
	// LowWatermarkPerPE is the "low parallelism" limit: when the number of
	// active updates is at most LowWatermarkPerPE × numPEs, both thresholds
	// are raised to the highest bucket so every update flows freely. The
	// paper fixes this at 100 (§III-a).
	LowWatermarkPerPE int64
}

// DefaultParams returns the optimal parameters found in §IV-E:
// p_tram = 0.999 and p_pq = 0.05, with the paper's low watermark of 100
// active updates per PE.
func DefaultParams() Params {
	return Params{PTram: 0.999, PPQ: 0.05, LowWatermarkPerPE: 100}
}

// ComputeThresholds implements the root's side of Algorithm 1 minus the
// termination check (which belongs to the quiescence machinery): given the
// merged global histogram, the PE count and the policy parameters, it
// returns the thresholds to broadcast.
func ComputeThresholds(global *Histogram, numPEs int, p Params) Thresholds {
	var sum int64
	for i := 0; i < global.NumBuckets(); i++ {
		if b := global.Bucket(i); b > 0 {
			sum += b
		}
	}
	if sum <= p.LowWatermarkPerPE*int64(numPEs) {
		// Low parallelism: release everything (§III-a; prose form of
		// Algorithm 1's low-count branch).
		last := global.NumBuckets() - 1
		return Thresholds{Tram: last, PQ: last}
	}
	return Thresholds{
		Tram: global.PercentileBucket(p.PTram),
		PQ:   global.PercentileBucket(p.PPQ),
	}
}

// ComputeSmoothThresholds implements the refinement sketched in the
// paper's future-work section (§V): instead of the two-tier rule — "all
// buckets when active ≤ watermark, fixed percentile otherwise" — the
// threshold percentile becomes a continuous function of the whole
// histogram's population. The effective fraction interpolates between the
// configured percentile (heavily loaded) and 1.0 (drained):
//
//	p_eff = min(1, p + (1-p) · (watermark·numPEs) / active)
//
// so as the machine approaches the low-parallelism tail the thresholds
// open smoothly rather than snapping, and under heavy load they converge
// to the paper's fixed percentiles. The ablation benchmark contrasts this
// policy with the paper's two-tier rule.
func ComputeSmoothThresholds(global *Histogram, numPEs int, p Params) Thresholds {
	var active int64
	for i := 0; i < global.NumBuckets(); i++ {
		if b := global.Bucket(i); b > 0 {
			active += b
		}
	}
	last := global.NumBuckets() - 1
	if active == 0 {
		return Thresholds{Tram: last, PQ: last}
	}
	boost := float64(p.LowWatermarkPerPE*int64(numPEs)) / float64(active)
	bucketFor := func(base float64) int {
		v := base + (1-base)*boost
		if v >= 1 {
			// Fully open: future updates of any distance flow too, exactly
			// like the two-tier rule's low-parallelism branch.
			return last
		}
		return global.PercentileBucket(v)
	}
	return Thresholds{Tram: bucketFor(p.PTram), PQ: bucketFor(p.PPQ)}
}

// String renders a compact sparkline of the histogram for logs and the
// Fig. 1 reproduction.
func (h *Histogram) String() string {
	var max int64
	for _, b := range h.buckets {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "histogram[%d buckets, width %.2f, active %d]", len(h.buckets), h.width, h.Sum())
	if max == 0 {
		return sb.String()
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	sb.WriteString(" ")
	// Downsample to at most 64 columns.
	cols := 64
	if len(h.buckets) < cols {
		cols = len(h.buckets)
	}
	per := (len(h.buckets) + cols - 1) / cols
	for c := 0; c < cols; c++ {
		var colMax int64
		for i := c * per; i < (c+1)*per && i < len(h.buckets); i++ {
			if h.buckets[i] > colMax {
				colMax = h.buckets[i]
			}
		}
		idx := int(colMax * int64(len(levels)-1) / max)
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}
