package histogram

// Property tests of the threshold machinery, seeded through internal/xrand
// so every run is replayable. Two monotonicity laws anchor the paper's
// tuning story (§IV-E): raising a percentile fraction can only raise (never
// lower) the resulting bucket threshold — otherwise the Fig 4/5 sweeps
// would not be monotone in admitted traffic — and BucketOf must be monotone
// in distance, or the holds would release updates out of order.

import (
	"math"
	"testing"

	"acic/internal/xrand"
)

// randomHistogram builds a histogram with a plausible mid-flight shape:
// mostly positive buckets, a few negative ones (remote decrements racing
// local increments), concentrated in the low buckets like real frontiers.
func randomHistogram(r *xrand.Rand) *Histogram {
	buckets := 8 + r.Intn(505)
	width := r.Range(0.5, 20)
	h := New(buckets, width)
	n := r.Intn(2000)
	for i := 0; i < n; i++ {
		d := r.Exp(1.0 / (width * float64(1+r.Intn(buckets)))) // skewed low
		if r.Intn(10) == 0 {
			h.AddProcessed(d)
		} else {
			h.AddCreated(d)
		}
	}
	return h
}

func TestPercentileBucketMonotoneInP(t *testing.T) {
	r := xrand.New(0xACC)
	for trial := 0; trial < 200; trial++ {
		h := randomHistogram(r)
		p1 := r.Range(0.001, 1)
		p2 := r.Range(0.001, 1)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		b1, b2 := h.PercentileBucket(p1), h.PercentileBucket(p2)
		if b1 > b2 {
			t.Fatalf("trial %d: PercentileBucket(%g) = %d > PercentileBucket(%g) = %d",
				trial, p1, b1, p2, b2)
		}
		if last := h.NumBuckets() - 1; b1 < 0 || b2 > last {
			t.Fatalf("trial %d: threshold out of range [0,%d]: %d, %d", trial, last, b1, b2)
		}
	}
}

// TestThresholdsMonotoneInParams checks the user-facing law: raising
// p_tram or p_pq never lowers the corresponding broadcast threshold, for
// both the paper's two-tier policy and the smooth refinement. The low-
// watermark branch is percentile-independent, so it trivially satisfies
// the law; the interesting cases are the loaded histograms.
func TestThresholdsMonotoneInParams(t *testing.T) {
	r := xrand.New(0xACC2)
	numPEs := 16
	for trial := 0; trial < 200; trial++ {
		h := randomHistogram(r)
		lo := Params{PTram: r.Range(0.001, 1), PPQ: r.Range(0.001, 1), LowWatermarkPerPE: int64(r.Intn(20))}
		hi := lo
		hi.PTram = math.Min(1, hi.PTram+r.Range(0, 1-hi.PTram))
		hi.PPQ = math.Min(1, hi.PPQ+r.Range(0, 1-hi.PPQ))
		for _, compute := range []struct {
			name string
			fn   func(*Histogram, int, Params) Thresholds
		}{
			{"two-tier", ComputeThresholds},
			{"smooth", ComputeSmoothThresholds},
		} {
			a := compute.fn(h, numPEs, lo)
			b := compute.fn(h, numPEs, hi)
			if b.Tram < a.Tram {
				t.Fatalf("trial %d %s: raising p_tram %g→%g lowered t_tram %d→%d",
					trial, compute.name, lo.PTram, hi.PTram, a.Tram, b.Tram)
			}
			if b.PQ < a.PQ {
				t.Fatalf("trial %d %s: raising p_pq %g→%g lowered t_pq %d→%d",
					trial, compute.name, lo.PPQ, hi.PPQ, a.PQ, b.PQ)
			}
		}
	}
}

func TestBucketOfMonotoneInDistance(t *testing.T) {
	r := xrand.New(0xACC3)
	for trial := 0; trial < 500; trial++ {
		h := New(1+r.Intn(512), r.Range(0.5, 10))
		d1 := r.Range(0, 1e6)
		d2 := r.Range(0, 1e6)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		if b1, b2 := h.BucketOf(d1), h.BucketOf(d2); b1 > b2 {
			t.Fatalf("trial %d: BucketOf(%g) = %d > BucketOf(%g) = %d (width %g)",
				trial, d1, b1, d2, b2, h.Width())
		}
	}

	// Hostile inputs clamp to the ends of the range instead of panicking:
	// the fuzzer feeds raw float bits, and historically int(d/width)
	// overflowed for +Inf and overflow-scale distances.
	h := New(64, 2)
	for _, tc := range []struct {
		d    float64
		want int
	}{
		{math.NaN(), 63}, // NaN is poisoned, not near-zero: top bucket, like +Inf
		{-1, 0},
		{math.Inf(-1), 0},
		{0, 0},
		{math.Inf(1), 63},
		{math.MaxFloat64, 63},
		{1e300, 63},
	} {
		if got := h.BucketOf(tc.d); got != tc.want {
			t.Errorf("BucketOf(%g) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
