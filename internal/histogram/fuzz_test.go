package histogram

// Fuzzing Merge's algebra: the reduction tree combines per-PE histograms in
// whatever order the spanning tree and message timing dictate, so the
// thresholds are only well-defined if Merge is commutative and associative
// and conserves every counter. The fuzzer builds three histograms from an
// arbitrary operation tape — including hostile distances (NaN, ±Inf,
// overflow-scale values) — and checks the algebra on them.

import (
	"encoding/binary"
	"math"
	"testing"
)

// histEqual compares shape, every bucket, and both ride-along counters.
func histEqual(a, b *Histogram) bool {
	if a.NumBuckets() != b.NumBuckets() || a.Width() != b.Width() ||
		a.Created != b.Created || a.Processed != b.Processed {
		return false
	}
	for i := 0; i < a.NumBuckets(); i++ {
		if a.Bucket(i) != b.Bucket(i) {
			return false
		}
	}
	return true
}

func FuzzHistogramMerge(f *testing.F) {
	tape := []byte{8, 4}
	for i, d := range []float64{0.5, 3.25, 1e300, math.Inf(1), math.NaN(), -2, 0} {
		op := []byte{byte(i), byte(i >> 1)}
		var bits [8]byte
		binary.LittleEndian.PutUint64(bits[:], math.Float64bits(d))
		tape = append(tape, append(op, bits[:]...)...)
	}
	f.Add(tape)
	f.Add([]byte{1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		bucketCount := int(data[0])%128 + 1
		width := 0.25 * float64(int(data[1])%32+1)
		hs := [3]*Histogram{New(bucketCount, width), New(bucketCount, width), New(bucketCount, width)}
		for i := 2; i+10 <= len(data); i += 10 {
			h := hs[int(data[i])%3]
			d := math.Float64frombits(binary.LittleEndian.Uint64(data[i+2 : i+10]))
			if data[i+1]%2 == 0 {
				h.AddCreated(d)
			} else {
				h.AddProcessed(d)
			}
		}
		a, b, c := hs[0], hs[1], hs[2]
		aBefore, bBefore := a.Snapshot(), b.Snapshot()

		// Commutativity: A+B == B+A.
		ab := a.Snapshot()
		ab.Merge(b)
		ba := b.Snapshot()
		ba.Merge(a)
		if !histEqual(ab, ba) {
			t.Fatalf("merge not commutative:\nA+B %v created=%d processed=%d\nB+A %v created=%d processed=%d",
				ab, ab.Created, ab.Processed, ba, ba.Created, ba.Processed)
		}

		// Associativity: (A+B)+C == A+(B+C).
		abc1 := ab.Snapshot()
		abc1.Merge(c)
		bc := b.Snapshot()
		bc.Merge(c)
		abc2 := a.Snapshot()
		abc2.Merge(bc)
		if !histEqual(abc1, abc2) {
			t.Fatal("merge not associative")
		}

		// Conservation: every counter of the merge is the sum of the parts.
		if got, want := abc1.Created, a.Created+b.Created+c.Created; got != want {
			t.Fatalf("created not conserved: %d, want %d", got, want)
		}
		if got, want := abc1.Processed, a.Processed+b.Processed+c.Processed; got != want {
			t.Fatalf("processed not conserved: %d, want %d", got, want)
		}
		if got, want := abc1.Sum(), a.Sum()+b.Sum()+c.Sum(); got != want {
			t.Fatalf("bucket sum not conserved: %d, want %d", got, want)
		}
		for i := 0; i < bucketCount; i++ {
			if got, want := abc1.Bucket(i), a.Bucket(i)+b.Bucket(i)+c.Bucket(i); got != want {
				t.Fatalf("bucket %d not conserved: %d, want %d", i, got, want)
			}
		}
		// Merging never mutates the argument, only the receiver.
		if !histEqual(a, aBefore) || !histEqual(b, bBefore) {
			t.Fatal("merge mutated its argument")
		}
	})
}
