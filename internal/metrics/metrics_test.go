package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterShardingAndSum(t *testing.T) {
	r := New(4)
	c := r.Counter("test.events")
	for pe := 0; pe < 4; pe++ {
		for i := 0; i <= pe; i++ {
			c.Inc(pe)
		}
	}
	if got := c.Value(); got != 1+2+3+4 {
		t.Fatalf("Value = %d, want 10", got)
	}
	want := []int64{1, 2, 3, 4}
	for i, v := range c.PerPE() {
		if v != want[i] {
			t.Fatalf("PerPE[%d] = %d, want %d", i, v, want[i])
		}
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := New(2)
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("same name must return the same counter handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter's name must panic")
		}
	}()
	r.Gauge("x")
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("disabled registry must hand out nil instruments")
	}
	// None of these may panic.
	c.Add(0, 5)
	c.Inc(3)
	g.Set(1, 7)
	g.SetMax(2, 9)
	g.Add(0, -1)
	h.Observe(0, 42)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 {
		t.Fatal("disabled instruments must read zero")
	}
	if c.PerPE() != nil || g.PerPE() != nil {
		t.Fatal("disabled instruments must have nil per-PE views")
	}
	snap := r.Snapshot()
	if snap.NumPEs != 0 || len(snap.Counters) != 0 {
		t.Fatalf("disabled registry snapshot not empty: %+v", snap)
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := New(3)
	g := r.Gauge("depth")
	g.Set(0, 5)
	g.Set(1, 9)
	g.Set(2, 2)
	if g.Value() != 16 {
		t.Fatalf("Value = %d, want 16", g.Value())
	}
	if g.Max() != 9 {
		t.Fatalf("Max = %d, want 9", g.Max())
	}
	g.SetMax(2, 20)
	g.SetMax(2, 4) // lower: must not regress
	if g.Max() != 20 {
		t.Fatalf("Max after SetMax = %d, want 20", g.Max())
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := New(1)
	g := r.Gauge("hwm")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := int64(0); v < 1000; v++ {
				g.SetMax(0, v*int64(w+1))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Max(); got != 999*8 {
		t.Fatalf("Max = %d, want %d", got, 999*8)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New(2)
	h := r.Histogram("sizes")
	cases := map[int64]int{-3: 0, 0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 1023: 10, 1024: 11}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Fatalf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
	h.Observe(0, 0)
	h.Observe(1, 0)
	h.Observe(0, 3)
	b := h.Buckets()
	if b[0] != 2 || b[2] != 1 {
		t.Fatalf("buckets = %v", b[:4])
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := New(2)
	c := r.Counter("flow")
	g := r.Gauge("level")
	h := r.Histogram("obs")

	c.Add(0, 10)
	g.Set(0, 3)
	h.Observe(0, 4)
	before := r.Snapshot()

	c.Add(1, 5)
	g.Set(0, 8)
	h.Observe(1, 4)
	h.Observe(1, 100)
	after := r.Snapshot()

	d := after.Diff(before)
	if got := d.Counter("flow"); got != 5 {
		t.Fatalf("diff counter = %d, want 5", got)
	}
	if got := d.Gauge("level").Total; got != 8 {
		t.Fatalf("diff gauge keeps current value, got %d want 8", got)
	}
	var dh HistSnap
	for _, hs := range d.Histograms {
		if hs.Name == "obs" {
			dh = hs
		}
	}
	if dh.Count != 2 {
		t.Fatalf("diff histogram count = %d, want 2", dh.Count)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := New(2)
		// Register in a fixed order; snapshots must preserve it.
		r.Counter("b.second").Add(1, 2)
		r.Counter("a.first").Add(0, 1)
		r.Gauge("g").Set(0, 7)
		r.Histogram("h").Observe(0, 9)
		return r.Snapshot()
	}
	var buf1, buf2 bytes.Buffer
	if err := build().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("identical registries must serialize byte-identically")
	}
	if buf1.Len() == 0 {
		t.Fatal("empty JSON")
	}
	var round Snapshot
	if err := json.Unmarshal(buf1.Bytes(), &round); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if round.Counters[0].Name != "b.second" {
		t.Fatalf("registration order lost: first counter %q", round.Counters[0].Name)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New(4)
	c := r.Counter("par")
	var wg sync.WaitGroup
	const per = 10000
	for pe := 0; pe < 4; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(pe)
			}
		}(pe)
	}
	wg.Wait()
	if got := c.Value(); got != 4*per {
		t.Fatalf("Value = %d, want %d", got, 4*per)
	}
}
