package metrics

import (
	"encoding/json"
	"io"
)

// CounterSnap is one counter's state at snapshot time.
type CounterSnap struct {
	Name  string  `json:"name"`
	Total int64   `json:"total"`
	PerPE []int64 `json:"per_pe"`
}

// GaugeSnap is one gauge's state at snapshot time.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Total int64   `json:"total"`
	Max   int64   `json:"max"`
	PerPE []int64 `json:"per_pe"`
}

// HistSnap is one histogram's state at snapshot time. Buckets are sparse:
// BucketIdx[i] holds BucketCount[i] observations; all other buckets are
// empty.
type HistSnap struct {
	Name        string  `json:"name"`
	Count       int64   `json:"count"`
	BucketIdx   []int   `json:"bucket_idx"`
	BucketCount []int64 `json:"bucket_count"`
}

// Snapshot is a point-in-time copy of every instrument in a registry, in
// registration order. Taken after a run it is exact; mid-run it is
// consistent only to within in-flight updates (each cell is read
// atomically, but cells are read at different instants).
type Snapshot struct {
	NumPEs     int           `json:"num_pes"`
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
}

// Snapshot captures every registered instrument. The disabled registry
// yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	insts := make([]any, len(names))
	for i, n := range names {
		insts[i] = r.byName[n]
	}
	r.mu.Unlock()

	s := Snapshot{NumPEs: r.numPEs}
	for _, inst := range insts {
		switch v := inst.(type) {
		case *Counter:
			s.Counters = append(s.Counters, CounterSnap{Name: v.name, Total: v.Value(), PerPE: v.PerPE()})
		case *Gauge:
			s.Gauges = append(s.Gauges, GaugeSnap{Name: v.name, Total: v.Value(), Max: v.Max(), PerPE: v.PerPE()})
		case *Histogram:
			hs := HistSnap{Name: v.name}
			for b, c := range v.Buckets() {
				if c != 0 {
					hs.BucketIdx = append(hs.BucketIdx, b)
					hs.BucketCount = append(hs.BucketCount, c)
					hs.Count += c
				}
			}
			s.Histograms = append(s.Histograms, hs)
		}
	}
	return s
}

// Diff returns the change from prev to s: counters and histogram buckets
// subtract; gauges keep s's current values (a gauge reports state, not
// flow). Instruments absent from prev diff against zero; instruments
// absent from s are dropped.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{NumPEs: s.NumPEs}

	prevC := make(map[string]CounterSnap, len(prev.Counters))
	for _, c := range prev.Counters {
		prevC[c.Name] = c
	}
	for _, c := range s.Counters {
		d := CounterSnap{Name: c.Name, Total: c.Total, PerPE: append([]int64(nil), c.PerPE...)}
		if p, ok := prevC[c.Name]; ok {
			d.Total -= p.Total
			for i := range d.PerPE {
				if i < len(p.PerPE) {
					d.PerPE[i] -= p.PerPE[i]
				}
			}
		}
		out.Counters = append(out.Counters, d)
	}

	out.Gauges = append(out.Gauges, s.Gauges...)

	prevH := make(map[string]HistSnap, len(prev.Histograms))
	for _, h := range prev.Histograms {
		prevH[h.Name] = h
	}
	for _, h := range s.Histograms {
		p, ok := prevH[h.Name]
		if !ok {
			out.Histograms = append(out.Histograms, h)
			continue
		}
		// Expand both sparse forms, subtract, re-sparsify.
		var full [HistogramBuckets]int64
		for i, b := range h.BucketIdx {
			full[b] = h.BucketCount[i]
		}
		for i, b := range p.BucketIdx {
			full[b] -= p.BucketCount[i]
		}
		d := HistSnap{Name: h.Name}
		for b, c := range full {
			if c != 0 {
				d.BucketIdx = append(d.BucketIdx, b)
				d.BucketCount = append(d.BucketCount, c)
				d.Count += c
			}
		}
		out.Histograms = append(out.Histograms, d)
	}
	return out
}

// Counter returns the named counter's total, or 0 if absent.
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Total
		}
	}
	return 0
}

// Gauge returns the named gauge's snap, or the zero value if absent.
func (s Snapshot) Gauge(name string) GaugeSnap {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g
		}
	}
	return GaugeSnap{}
}

// WriteJSON renders the snapshot as indented JSON. Instruments appear in
// registration order, so a deterministic run yields byte-identical output.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
