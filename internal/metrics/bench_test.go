package metrics

import (
	"sync/atomic"
	"testing"
)

// BenchmarkMetricsRegistry covers the registry's hot paths. The counter
// increment is on the per-update path of the ACIC core, so enabled mode
// must stay 0 allocs/op and disabled mode must collapse to a nil check.
func BenchmarkMetricsRegistry(b *testing.B) {
	b.Run("counter-add", func(b *testing.B) {
		r := New(8)
		c := r.Counter("bench.counter")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Add(3, 1)
		}
	})
	b.Run("counter-add-disabled", func(b *testing.B) {
		var r *Registry
		c := r.Counter("bench.counter")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Add(3, 1)
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		r := New(8)
		h := r.Histogram("bench.hist")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(3, int64(i))
		}
	})
	b.Run("gauge-setmax", func(b *testing.B) {
		r := New(8)
		g := r.Gauge("bench.gauge")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.SetMax(3, int64(i))
		}
	})
}

// BenchmarkMetricsContention measures sharding: all PEs incrementing the
// same counter concurrently must not serialize on one cache line.
func BenchmarkMetricsContention(b *testing.B) {
	r := New(16)
	c := r.Counter("bench.contended")
	var pe atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		// Each worker claims a distinct shard, like a PE goroutine does.
		mine := int(pe.Add(1)-1) % 16
		for pb.Next() {
			c.Add(mine, 1)
		}
	})
}
