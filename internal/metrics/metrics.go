// Package metrics is the run-wide instrument registry behind the
// observability layer: every subsystem of the simulated machine — the ACIC
// core, the runtime, tramlib, the network fabric — registers named
// counters, gauges and histograms here instead of keeping private stat
// fields. One registry spans one run, so a single Snapshot captures the
// whole machine's state at an instant and Diff exposes what a phase of the
// run did.
//
// The design constraints come from where the instruments sit:
//
//   - The hot path (one counter increment per update created) must not
//     allocate and must not contend. Every instrument is sharded per PE:
//     a PE writes its own cache-line-padded cell with a plain atomic add,
//     so concurrent PEs never touch the same line.
//   - Disabled must be free. A nil *Registry hands out nil instruments,
//     and every instrument method nil-checks its receiver, so an
//     uninstrumented run pays one predictable branch per event.
//   - Reads are rare and may be slow. Value() sums the cells; Snapshot()
//     walks every instrument in registration order, which also makes the
//     JSON export byte-stable for a deterministic run.
//
// Registration is idempotent by name: asking for an existing instrument
// returns the same handle, so independent subsystems can share a registry
// without coordinating construction order.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// cell is one PE's slot of a sharded instrument. The padding keeps
// neighboring PEs' cells on distinct cache lines; false sharing on the
// update-creation path would otherwise serialize exactly the PEs the
// sharding is meant to decouple.
type cell struct {
	v atomic.Int64
	_ [7]uint64
}

// Registry holds the instruments of one run. The zero value is not usable;
// construct with New. A nil *Registry is the disabled registry: its
// instrument constructors return nil handles whose methods do nothing.
type Registry struct {
	numPEs int

	mu     sync.Mutex
	byName map[string]any
	// order preserves registration order so snapshots and exports are
	// deterministic for a deterministic run.
	order []string
}

// New returns a Registry for a machine of numPEs processing elements.
// It panics on a non-positive PE count.
func New(numPEs int) *Registry {
	if numPEs <= 0 {
		panic(fmt.Sprintf("metrics: non-positive PE count %d", numPEs))
	}
	return &Registry{numPEs: numPEs, byName: make(map[string]any)}
}

// NumPEs returns the shard count, or 0 for the disabled (nil) registry.
func (r *Registry) NumPEs() int {
	if r == nil {
		return 0
	}
	return r.numPEs
}

// register returns the existing instrument under name, or stores and
// returns fresh. It panics if name is already bound to a different
// instrument kind — that is always a programming error worth failing loud.
func register[T any](r *Registry, name string, fresh func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.byName[name]; ok {
		t, ok := got.(T)
		if !ok {
			panic(fmt.Sprintf("metrics: %q already registered as %T", name, got))
		}
		return t
	}
	t := fresh()
	r.byName[name] = t
	r.order = append(r.order, name)
	return t
}

// --- Counter ---

// Counter is a monotone (by convention) sharded sum. A nil Counter is the
// disabled instrument: Add and Inc do nothing, Value is 0.
type Counter struct {
	name  string
	cells []cell
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on the disabled registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return register(r, name, func() *Counter {
		return &Counter{name: name, cells: make([]cell, r.numPEs)}
	})
}

// Add adds d to pe's shard. It is the hot-path write: one atomic add on a
// line owned by pe, zero allocations.
//
//acic:noalloc
func (c *Counter) Add(pe int, d int64) {
	if c == nil {
		return
	}
	c.cells[pe].v.Add(d)
}

// Inc adds 1 to pe's shard.
//
//acic:noalloc
func (c *Counter) Inc(pe int) { c.Add(pe, 1) }

// Value returns the sum over all shards. Mid-run the sum is a consistent
// total only to within in-flight increments; after the run it is exact.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var s int64
	for i := range c.cells {
		s += c.cells[i].v.Load()
	}
	return s
}

// PerPE returns the per-shard values. Returns nil for the disabled
// instrument.
func (c *Counter) PerPE() []int64 {
	if c == nil {
		return nil
	}
	out := make([]int64, len(c.cells))
	for i := range c.cells {
		out[i] = c.cells[i].v.Load()
	}
	return out
}

// Name returns the registered name, or "" for the disabled instrument.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// --- Gauge ---

// Gauge is a sharded last-or-extreme value: Set overwrites a shard, SetMax
// ratchets it upward. Value sums the shards (right for "current held
// items" style gauges where each PE owns a disjoint part) and Max takes
// the largest shard (right for high-water marks). A nil Gauge does
// nothing.
type Gauge struct {
	name  string
	cells []cell
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on the disabled registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return register(r, name, func() *Gauge {
		return &Gauge{name: name, cells: make([]cell, r.numPEs)}
	})
}

// Set stores v in pe's shard.
//
//acic:noalloc
func (g *Gauge) Set(pe int, v int64) {
	if g == nil {
		return
	}
	g.cells[pe].v.Store(v)
}

// Add adjusts pe's shard by d (gauges may go down; counters may not).
//
//acic:noalloc
func (g *Gauge) Add(pe int, d int64) {
	if g == nil {
		return
	}
	g.cells[pe].v.Add(d)
}

// SetMax ratchets pe's shard up to at least v.
//
//acic:noalloc
func (g *Gauge) SetMax(pe int, v int64) {
	if g == nil {
		return
	}
	c := &g.cells[pe].v
	for {
		cur := c.Load()
		if v <= cur || c.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the sum over all shards.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	var s int64
	for i := range g.cells {
		s += g.cells[i].v.Load()
	}
	return s
}

// Max returns the largest shard value.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	var m int64
	for i := range g.cells {
		if v := g.cells[i].v.Load(); v > m {
			m = v
		}
	}
	return m
}

// PerPE returns the per-shard values, or nil for the disabled instrument.
func (g *Gauge) PerPE() []int64 {
	if g == nil {
		return nil
	}
	out := make([]int64, len(g.cells))
	for i := range g.cells {
		out[i] = g.cells[i].v.Load()
	}
	return out
}

// Name returns the registered name, or "" for the disabled instrument.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// --- Histogram ---

// HistogramBuckets is the bucket count of a metrics histogram: one bucket
// per power of two, enough for any int64 observation.
const HistogramBuckets = 64

// Histogram counts observations in power-of-two buckets: an observation v
// lands in bucket ⌈log2(v+1)⌉, so bucket 0 holds v==0, bucket 1 holds
// v==1, bucket 2 holds v∈{2,3}, and so on. Each PE owns a private bucket
// row, padded apart from its neighbors. A nil Histogram does nothing.
type Histogram struct {
	name string
	rows []histRow
}

type histRow struct {
	buckets [HistogramBuckets]atomic.Int64
	_       [8]uint64
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil on the disabled registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return register(r, name, func() *Histogram {
		return &Histogram{name: name, rows: make([]histRow, r.numPEs)}
	})
}

// bucketOf maps an observation to its power-of-two bucket. Negative
// observations clamp to bucket 0.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 0
	for u := uint64(v); u > 0; u >>= 1 {
		b++
	}
	return b
}

// Observe records v into pe's row: one atomic add, zero allocations.
//
//acic:noalloc
func (h *Histogram) Observe(pe int, v int64) {
	if h == nil {
		return
	}
	h.rows[pe].buckets[bucketOf(v)].Add(1)
}

// Buckets returns the bucket counts summed over all PEs.
func (h *Histogram) Buckets() [HistogramBuckets]int64 {
	var out [HistogramBuckets]int64
	if h == nil {
		return out
	}
	for i := range h.rows {
		for b := range out {
			out[b] += h.rows[i].buckets[b].Load()
		}
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var s int64
	for _, b := range h.Buckets() {
		s += b
	}
	return s
}

// Name returns the registered name, or "" for the disabled instrument.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}
