package sockfab

import (
	"fmt"
	"sync"
	"time"

	"acic/internal/fabric"
	"acic/internal/wire"
)

// MeshConfig describes an in-process mesh: every proc's Node lives in
// this process, connected to the others over loopback TCP. This is how a
// single Runtime (hosting all PEs) exercises the real serialization and
// socket path — messages between PEs whose procs differ cross a genuine
// TCP connection and come back through the codec.
type MeshConfig struct {
	NumProcs int
	NumPEs   int
	Owner    func(pe int) int
	Codec    *wire.Codec
}

// Mesh is a fabric.Fabric routing through NumProcs loopback-connected
// Nodes. Sends enter at the source PE's node; deliveries happen on the
// destination PE's node dispatcher, so per-destination serial delivery
// holds mesh-wide.
type Mesh struct {
	nodes []*Node //acic:allow-unpadded pointer slice: each Node is its own heap allocation, sharing nothing but the pointer array, which is read-only after NewMesh
	owner func(pe int) int

	closeOnce sync.Once
}

var (
	_ fabric.Fabric   = (*Mesh)(nil)
	_ fabric.Boundary = (*Mesh)(nil)
)

// NewMesh builds, connects, and starts the full mesh. deliver is shared:
// whichever node hosts the destination invokes it.
func NewMesh(cfg MeshConfig, deliver func(dst int, payload any)) (*Mesh, error) {
	if cfg.NumProcs <= 0 {
		return nil, fmt.Errorf("sockfab: mesh needs at least one proc")
	}
	m := &Mesh{nodes: make([]*Node, cfg.NumProcs), owner: cfg.Owner} //acic:allow-unpadded pointer slice, see the field's note
	addrs := make([]string, cfg.NumProcs)
	for p := 0; p < cfg.NumProcs; p++ {
		n, err := NewNode(NodeConfig{
			Proc: p, NumProcs: cfg.NumProcs, NumPEs: cfg.NumPEs,
			Owner: cfg.Owner, Codec: cfg.Codec,
		})
		if err != nil {
			return nil, err
		}
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		m.nodes[p] = n
		addrs[p] = addr
	}
	// Connect blocks until the peer mesh is complete, so all nodes must
	// connect concurrently.
	errs := make([]error, cfg.NumProcs)
	var wg sync.WaitGroup
	for p, n := range m.nodes {
		wg.Add(1)
		go func(p int, n *Node) {
			defer wg.Done()
			errs[p] = n.Connect(addrs)
		}(p, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, n := range m.nodes {
		n.Start(deliver)
	}
	return m, nil
}

// Send enters the mesh at src's node.
func (m *Mesh) Send(src, dst int, payload any, size int) fabric.SendResult {
	return m.nodes[m.owner(src)].Send(src, dst, payload, size)
}

// SendAfter arms the timer on dst's node — timers are always local to
// the proc that will deliver them.
func (m *Mesh) SendAfter(dst int, payload any, delay time.Duration) fabric.SendResult {
	return m.nodes[m.owner(dst)].SendAfter(dst, payload, delay)
}

// QueueLen sums the nodes' in-flight counts.
func (m *Mesh) QueueLen() int {
	total := 0
	for _, n := range m.nodes {
		total += n.QueueLen()
	}
	return total
}

// BoundaryCounts sums the per-node counters. After a drained Close the
// two sums are equal — every frame that left one node arrived at another.
func (m *Mesh) BoundaryCounts() (out, in int64) {
	for _, n := range m.nodes {
		o, i := n.BoundaryCounts()
		out += o
		in += i
	}
	return out, in
}

// Close shuts the whole mesh down: beginClose everywhere first (so every
// node flushes and half-closes while its peers still read), then
// finishClose everywhere. Idempotent.
func (m *Mesh) Close() {
	m.closeOnce.Do(func() {
		for _, n := range m.nodes {
			n.beginClose()
		}
		for _, n := range m.nodes {
			n.finishClose()
		}
	})
}
