package sockfab

import (
	"sync"
	"testing"
	"time"

	"acic/internal/fabric"
	"acic/internal/relnet"
	"acic/internal/wire"
)

// msg is the payload type that crosses the test meshes.
type msg struct {
	n int64
}

func testCodec() *wire.Codec {
	c := wire.NewCodec()
	c.Register(0x80, msg{},
		func(c *wire.Codec, buf []byte, v any) ([]byte, error) {
			return wire.AppendI64(buf, v.(msg).n), nil
		},
		func(c *wire.Codec, r *wire.Reader) (any, error) {
			return msg{n: r.I64()}, nil
		},
		nil)
	return c
}

// sink collects deliveries thread-safely.
type sink struct {
	mu   sync.Mutex
	got  []delivery
	wake chan struct{}
}

func newSink() *sink { return &sink{wake: make(chan struct{}, 1)} }

func (s *sink) deliver(dst int, payload any) {
	s.mu.Lock()
	s.got = append(s.got, delivery{dst: dst, payload: payload})
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *sink) waitLen(t *testing.T, n int) []delivery {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		s.mu.Lock()
		if len(s.got) >= n {
			out := append([]delivery(nil), s.got...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		select {
		case <-s.wake:
		case <-deadline:
			s.mu.Lock()
			got := len(s.got)
			s.mu.Unlock()
			t.Fatalf("timed out with %d of %d deliveries", got, n)
		}
	}
}

// twoProcMesh is a 2-proc, 2-PE mesh: PE i owned by proc i.
func twoProcMesh(t *testing.T, deliver func(dst int, payload any)) *Mesh {
	t.Helper()
	m, err := NewMesh(MeshConfig{
		NumProcs: 2, NumPEs: 2,
		Owner: func(pe int) int { return pe },
		Codec: testCodec(),
	}, deliver)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMeshDeliversLocalAndRemote(t *testing.T) {
	s := newSink()
	m := twoProcMesh(t, s.deliver)
	defer m.Close()

	if res := m.Send(0, 0, msg{n: 10}, 1); res != fabric.SendEnqueued {
		t.Fatalf("local send: %v", res)
	}
	if res := m.Send(0, 1, msg{n: 20}, 1); res != fabric.SendEnqueued {
		t.Fatalf("remote send: %v", res)
	}
	got := s.waitLen(t, 2)
	byDst := map[int]int64{}
	for _, d := range got {
		byDst[d.dst] = d.payload.(msg).n
	}
	if byDst[0] != 10 || byDst[1] != 20 {
		t.Fatalf("deliveries: %+v", got)
	}
}

func TestMeshPreservesPairOrder(t *testing.T) {
	s := newSink()
	m := twoProcMesh(t, s.deliver)
	defer m.Close()

	const N = 500
	for i := 0; i < N; i++ {
		if res := m.Send(0, 1, msg{n: int64(i)}, 1); res != fabric.SendEnqueued {
			t.Fatalf("send %d: %v", i, res)
		}
	}
	got := s.waitLen(t, N)
	for i, d := range got {
		if d.dst != 1 || d.payload.(msg).n != int64(i) {
			t.Fatalf("delivery %d out of order: %+v", i, d)
		}
	}
}

func TestMeshTimerFires(t *testing.T) {
	s := newSink()
	m := twoProcMesh(t, s.deliver)
	defer m.Close()

	if res := m.SendAfter(1, msg{n: 7}, time.Millisecond); res != fabric.SendEnqueued {
		t.Fatalf("SendAfter: %v", res)
	}
	got := s.waitLen(t, 1)
	if got[0].dst != 1 || got[0].payload.(msg).n != 7 {
		t.Fatalf("timer delivery: %+v", got[0])
	}
}

func TestMeshCloseFiresPendingTimersAndRejectsSends(t *testing.T) {
	s := newSink()
	m := twoProcMesh(t, s.deliver)

	// A timer far in the future must not stall Close; it fires immediately
	// during the drain instead.
	if res := m.SendAfter(0, msg{n: 99}, time.Hour); res != fabric.SendEnqueued {
		t.Fatalf("SendAfter: %v", res)
	}
	m.Close()
	got := s.waitLen(t, 1)
	if got[0].payload.(msg).n != 99 {
		t.Fatalf("pending timer not drained: %+v", got)
	}
	if res := m.Send(0, 1, msg{}, 1); res != fabric.SendClosed {
		t.Errorf("Send after close = %v, want SendClosed", res)
	}
	if res := m.SendAfter(0, msg{}, time.Millisecond); res != fabric.SendClosed {
		t.Errorf("SendAfter after close = %v, want SendClosed", res)
	}
	if q := m.QueueLen(); q != 0 {
		t.Errorf("QueueLen after close = %d, want 0", q)
	}
}

func TestMeshBoundaryConservation(t *testing.T) {
	const procs, pesPerProc, msgs = 4, 2, 400
	s := newSink()
	numPEs := procs * pesPerProc
	m, err := NewMesh(MeshConfig{
		NumProcs: procs, NumPEs: numPEs,
		Owner: func(pe int) int { return pe / pesPerProc },
		Codec: testCodec(),
	}, s.deliver)
	if err != nil {
		t.Fatal(err)
	}

	sent := 0
	for i := 0; i < msgs; i++ {
		src := (i * 3) % numPEs
		dst := (i*5 + 1) % numPEs
		if res := m.Send(src, dst, msg{n: int64(i)}, 1); res != fabric.SendEnqueued {
			t.Fatalf("send %d: %v", i, res)
		}
		sent++
	}
	s.waitLen(t, sent)
	m.Close()

	out, in := m.BoundaryCounts()
	if out != in {
		t.Errorf("boundary counts: out %d != in %d", out, in)
	}
	if out == 0 {
		t.Error("no message crossed a process boundary; the spread should hit every pair")
	}
	if q := m.QueueLen(); q != 0 {
		t.Errorf("QueueLen after close = %d, want 0", q)
	}
}

// TestRelnetOverMesh drives the reliability layer over a real TCP mesh:
// its data and ack frames serialize through the wire codec, cross
// loopback, and the layer's bookkeeping still balances.
func TestRelnetOverMesh(t *testing.T) {
	c := testCodec()
	relnet.RegisterWire(c)

	var appMu sync.Mutex
	var appGot []int64
	appWake := make(chan struct{}, 8)
	l := relnet.New(relnet.Config{RTO: 50 * time.Millisecond}, 2, func(dst int, payload any) {
		appMu.Lock()
		appGot = append(appGot, payload.(msg).n)
		appMu.Unlock()
		select {
		case appWake <- struct{}{}:
		default:
		}
	})
	m, err := NewMesh(MeshConfig{
		NumProcs: 2, NumPEs: 2,
		Owner: func(pe int) int { return pe },
		Codec: c,
	}, l.OnFabric)
	if err != nil {
		t.Fatal(err)
	}
	l.Bind(m)

	const N = 50
	for i := 0; i < N; i++ {
		if res := l.Send(0, 1, msg{n: int64(i)}, 1); res != fabric.SendEnqueued {
			t.Fatalf("send %d: %v", i, res)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		appMu.Lock()
		n := len(appGot)
		appMu.Unlock()
		if n >= N {
			break
		}
		select {
		case <-appWake:
		case <-deadline:
			t.Fatalf("timed out with %d of %d app deliveries", n, N)
		}
	}
	appMu.Lock()
	for i, v := range appGot {
		if v != int64(i) {
			t.Fatalf("app delivery %d = %d, want %d", i, v, i)
		}
	}
	appMu.Unlock()

	// Give the standalone ack a chance to flow back before closing, then
	// verify the stream-level ledger: everything sent was delivered once.
	time.Sleep(100 * time.Millisecond)
	m.Close()
	st := l.Stats()
	if st.Stranded != 0 {
		t.Errorf("stranded %d frames; every send was acked before close", st.Stranded)
	}
	if st.DupDiscarded > st.Retransmits {
		t.Errorf("dedup mismatch: %d discarded exceeds %d retransmits", st.DupDiscarded, st.Retransmits)
	}
}
