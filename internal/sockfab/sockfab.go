// Package sockfab is the real transport: a fabric.Fabric that carries
// envelopes between PEs hosted in different OS processes over TCP.
//
// Each process runs one Node. A Node owns a contiguous proc's worth of
// PEs (NodeConfig.Owner maps PE index to proc), a listener, and exactly
// one TCP connection per peer process — the lower-numbered proc dials
// the higher, so an N-proc mesh settles into N*(N-1)/2 connections with
// no glare. On the wire every message is a 4-byte destination-PE prefix
// followed by one wire-codec frame; the codec (and the pool hooks hung
// on it) is supplied by the caller, so sockfab itself knows nothing
// about envelope or batch layouts.
//
// Delivery preserves the contract documented in package fabric: a single
// dispatcher goroutine per Node performs every deliver callback, so
// delivery into a given destination is serial, and each (src, dst) pair's
// messages arrive in send order (writer queues, TCP, and the dispatcher
// FIFO are all order-preserving). Timers (SendAfter) never cross the
// wire: they sit in a local heap and fire on the same dispatcher.
//
// Encode and decode buffers recycle through an arena.Arena[byte]: each
// writer goroutine Gets a chunk per message from its own freelist and
// Puts it back after the socket write; each reader holds one shared-pool
// chunk for its lifetime. Steady-state traffic allocates nothing for
// framing.
//
// Close is two-phase so a full mesh can shut down without deadlock:
// beginClose stops accepting sends, flushes the writer queues, and
// half-closes every connection (CloseWrite); finishClose drains the
// readers to EOF — which arrives once the peer has flushed its side —
// fires any still-pending timers immediately, and joins the dispatcher.
// Node.Close runs both phases; Mesh.Close runs beginClose on every node
// before finishClose on any, which is what breaks the cycle when all
// nodes live in one process.
package sockfab

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"acic/internal/arena"
	"acic/internal/fabric"
	"acic/internal/wire"
)

// helloMagic opens every dialed connection, followed by the dialer's
// proc index — the accepting side cannot otherwise know who connected.
const helloMagic uint32 = 0xAC1CFAB0

// connectTimeout bounds Listen/Connect handshaking so a lost worker
// turns into an error, not a hang.
const connectTimeout = 30 * time.Second

// bufChunk is the arena chunk capacity for frame buffers. Frames larger
// than a chunk grow the slice once and the grown capacity recycles, so
// the figure is a starting point, not a ceiling.
const bufChunk = 4096

// NodeConfig wires a Node into a topology.
type NodeConfig struct {
	Proc     int              // this process's proc index
	NumProcs int              // total processes in the mesh
	NumPEs   int              // total PEs across all processes
	Owner    func(pe int) int // PE index -> owning proc
	Codec    *wire.Codec      // frame codec; must cover every payload that crosses
}

// delivery is one deliverable message waiting on the dispatcher.
type delivery struct {
	dst     int
	payload any
}

// timerEntry is a pending SendAfter, ordered by deadline then by arming
// order so simultaneous deadlines fire FIFO.
type timerEntry struct {
	at      time.Time
	seq     uint64
	dst     int
	payload any
}

type timerHeap []timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// peer is one TCP connection to another proc, with its writer queue.
type peer struct {
	conn net.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	q      []delivery
	closed bool // no new enqueues; writer flushes and half-closes

	writerDone chan struct{}
}

// Node is the per-process endpoint. It satisfies fabric.Fabric and
// fabric.Boundary.
type Node struct {
	cfg   NodeConfig
	ln    net.Listener
	//acic:allow-unpadded pointer slice: each peer is its own heap allocation, sharing nothing but the pointer array, which is read-only after Connect
	peers []*peer // indexed by proc; nil at self and before Connect

	mu       sync.Mutex
	cond     *sync.Cond // signaled when ready grows or dispStop flips
	ready    []delivery
	timers   timerHeap
	tseq     uint64
	closing  bool // Send/SendAfter reject; set by beginClose
	dispStop bool

	timerKick chan struct{}
	timerDone chan struct{}
	dispDone  chan struct{}

	deliver func(dst int, payload any)
	bufs    *arena.Arena[byte]

	queued      atomic.Int64
	boundaryOut atomic.Int64
	boundaryIn  atomic.Int64

	readerWG  sync.WaitGroup
	closeOnce sync.Once
}

var (
	_ fabric.Fabric   = (*Node)(nil)
	_ fabric.Boundary = (*Node)(nil)
)

// NewNode validates cfg and returns an unconnected Node. The sequence is
// Listen, exchange addresses out of band, Connect, Start.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.NumProcs <= 0 || cfg.Proc < 0 || cfg.Proc >= cfg.NumProcs {
		return nil, fmt.Errorf("sockfab: proc %d outside [0, %d)", cfg.Proc, cfg.NumProcs)
	}
	if cfg.NumPEs <= 0 || cfg.Owner == nil || cfg.Codec == nil {
		return nil, fmt.Errorf("sockfab: NumPEs, Owner and Codec are required")
	}
	n := &Node{
		cfg:       cfg,
		peers:     make([]*peer, cfg.NumProcs), //acic:allow-unpadded pointer slice, see the field's note
		timerKick: make(chan struct{}, 1),
		timerDone: make(chan struct{}),
		dispDone:  make(chan struct{}),
		bufs:      arena.New[byte](cfg.NumProcs, bufChunk),
	}
	n.cond = sync.NewCond(&n.mu)
	return n, nil
}

// Listen binds the node's listener and returns the address peers should
// dial. Pass "127.0.0.1:0" for an ephemeral loopback port.
func (n *Node) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("sockfab: listen: %w", err)
	}
	n.ln = ln
	return ln.Addr().String(), nil
}

// Addr returns the bound listener address; empty before Listen.
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Connect establishes the full peer mesh. addrs is indexed by proc; only
// the entries for higher-numbered procs are dialed (this node accepts
// connections from lower-numbered ones), so lower entries may be empty.
// Every listener must be up before any node Connects.
func (n *Node) Connect(addrs []string) error {
	if len(addrs) != n.cfg.NumProcs {
		return fmt.Errorf("sockfab: got %d addrs for %d procs", len(addrs), n.cfg.NumProcs)
	}
	type res struct {
		proc int
		conn net.Conn
		err  error
	}
	want := n.cfg.NumProcs - 1
	ch := make(chan res, want)
	if n.cfg.Proc > 0 {
		if tl, ok := n.ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Now().Add(connectTimeout))
		}
		go func() {
			for i := 0; i < n.cfg.Proc; i++ {
				conn, err := n.ln.Accept()
				if err != nil {
					ch <- res{err: fmt.Errorf("sockfab: accept: %w", err)}
					continue
				}
				proc, err := readHello(conn)
				ch <- res{proc: proc, conn: conn, err: err}
			}
		}()
	}
	for p := n.cfg.Proc + 1; p < n.cfg.NumProcs; p++ {
		go func(p int) {
			conn, err := net.DialTimeout("tcp", addrs[p], connectTimeout)
			if err == nil {
				err = writeHello(conn, n.cfg.Proc)
			}
			ch <- res{proc: p, conn: conn, err: err}
		}(p)
	}
	var firstErr error
	for i := 0; i < want; i++ {
		r := <-ch
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if r.proc < 0 || r.proc >= n.cfg.NumProcs || r.proc == n.cfg.Proc || n.peers[r.proc] != nil {
			r.conn.Close()
			if firstErr == nil {
				firstErr = fmt.Errorf("sockfab: bad or duplicate hello from proc %d", r.proc)
			}
			continue
		}
		p := &peer{conn: r.conn, writerDone: make(chan struct{})}
		p.cond = sync.NewCond(&p.mu)
		n.peers[r.proc] = p
	}
	if tl, ok := n.ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	return firstErr
}

func writeHello(conn net.Conn, proc int) error {
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], helloMagic)
	binary.BigEndian.PutUint32(b[4:], uint32(proc))
	conn.SetWriteDeadline(time.Now().Add(connectTimeout))
	_, err := conn.Write(b[:])
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		return fmt.Errorf("sockfab: hello: %w", err)
	}
	return nil
}

func readHello(conn net.Conn) (int, error) {
	var b [8]byte
	conn.SetReadDeadline(time.Now().Add(connectTimeout))
	_, err := io.ReadFull(conn, b[:])
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		return 0, fmt.Errorf("sockfab: hello: %w", err)
	}
	if binary.BigEndian.Uint32(b[:4]) != helloMagic {
		return 0, fmt.Errorf("sockfab: hello: bad magic %#x", binary.BigEndian.Uint32(b[:4]))
	}
	return int(binary.BigEndian.Uint32(b[4:])), nil
}

// Start installs the delivery callback and launches the node's
// goroutines: one writer and one reader per peer connection, the timer
// mover, and the dispatcher. Call after Connect, before any Send.
func (n *Node) Start(deliver func(dst int, payload any)) {
	n.deliver = deliver
	for proc, p := range n.peers {
		if p == nil {
			continue
		}
		go n.writerLoop(p, proc)
		n.readerWG.Add(1)
		go n.readerLoop(p)
	}
	go n.timerLoop()
	go n.dispatchLoop()
}

// Send routes payload to dst: onto the local dispatcher FIFO when this
// node hosts dst, onto the owning peer's writer queue otherwise. size is
// accepted for fabric.Fabric compatibility; the wire cost is the encoded
// frame, not the simulated size.
func (n *Node) Send(src, dst int, payload any, size int) fabric.SendResult {
	if dst < 0 || dst >= n.cfg.NumPEs {
		panic(fmt.Sprintf("sockfab: send to PE %d outside [0, %d)", dst, n.cfg.NumPEs))
	}
	dproc := n.cfg.Owner(dst)
	if dproc == n.cfg.Proc {
		n.mu.Lock()
		if n.closing {
			n.mu.Unlock()
			return fabric.SendClosed
		}
		n.queued.Add(1)
		n.ready = append(n.ready, delivery{dst: dst, payload: payload})
		n.cond.Signal()
		n.mu.Unlock()
		return fabric.SendEnqueued
	}
	p := n.peers[dproc]
	if p == nil {
		panic(fmt.Sprintf("sockfab: no connection to proc %d (PE %d)", dproc, dst))
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fabric.SendClosed
	}
	n.queued.Add(1)
	p.q = append(p.q, delivery{dst: dst, payload: payload})
	p.cond.Signal()
	p.mu.Unlock()
	return fabric.SendEnqueued
}

// SendAfter arms a local timer delivering payload to dst after delay.
// Timers never cross processes; arming one for a PE this node does not
// host is a routing bug and panics.
func (n *Node) SendAfter(dst int, payload any, delay time.Duration) fabric.SendResult {
	if dst < 0 || dst >= n.cfg.NumPEs || n.cfg.Owner(dst) != n.cfg.Proc {
		panic(fmt.Sprintf("sockfab: timer for PE %d not hosted by proc %d", dst, n.cfg.Proc))
	}
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return fabric.SendClosed
	}
	n.queued.Add(1)
	n.tseq++
	e := timerEntry{at: time.Now().Add(delay), seq: n.tseq, dst: dst, payload: payload}
	heap.Push(&n.timers, e)
	earliest := n.timers[0].seq == e.seq
	n.mu.Unlock()
	if earliest {
		n.kickTimer()
	}
	return fabric.SendEnqueued
}

func (n *Node) kickTimer() {
	select {
	case n.timerKick <- struct{}{}:
	default:
	}
}

// QueueLen counts messages accepted but not yet delivered locally or
// written to a socket: dispatcher FIFO, timer heap, and writer queues.
func (n *Node) QueueLen() int { return int(n.queued.Load()) }

// BoundaryCounts returns how many messages left this process over TCP
// and how many arrived. Exact once the node is closed.
func (n *Node) BoundaryCounts() (out, in int64) {
	return n.boundaryOut.Load(), n.boundaryIn.Load()
}

// Close runs both shutdown phases: stop accepting sends, flush and
// half-close every connection, drain inbound to EOF, fire remaining
// timers, join the dispatcher. Safe to call more than once. In a
// single-process mesh use Mesh.Close instead — closing one node at a
// time would deadlock on the peer drains.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		n.beginClose()
		n.finishClose()
	})
}

// beginClose makes the node quiescent on the send side: new sends get
// SendClosed, writer queues flush, and every connection's write side
// closes so peers' readers see EOF once the last frame lands.
func (n *Node) beginClose() {
	n.mu.Lock()
	n.closing = true
	n.mu.Unlock()
	n.kickTimer() // timerLoop flushes the heap to ready and exits
	for _, p := range n.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		p.closed = true
		p.cond.Signal()
		p.mu.Unlock()
	}
}

// finishClose joins everything beginClose set in motion. Blocks until
// peers half-close their sides too.
func (n *Node) finishClose() {
	for _, p := range n.peers {
		if p != nil {
			<-p.writerDone
		}
	}
	<-n.timerDone
	n.readerWG.Wait()
	n.mu.Lock()
	n.dispStop = true
	n.cond.Signal()
	n.mu.Unlock()
	<-n.dispDone
	if n.ln != nil {
		n.ln.Close()
	}
	for _, p := range n.peers {
		if p != nil {
			p.conn.Close()
		}
	}
}

// writerLoop drains one peer's queue: per message it takes an arena
// chunk, writes the 4-byte destination prefix plus one encoded frame,
// and recycles the chunk. An unencodable payload or a failed write is a
// wiring bug or a dead peer — both panic rather than silently losing a
// message (which would resurface as a quiescence hang).
func (n *Node) writerLoop(p *peer, owner int) {
	defer close(p.writerDone)
	for {
		p.mu.Lock()
		for len(p.q) == 0 && !p.closed {
			p.cond.Wait()
		}
		batch := p.q
		p.q = nil
		done := p.closed && len(batch) == 0
		p.mu.Unlock()
		if done {
			break
		}
		for _, d := range batch {
			buf := n.bufs.Get(owner)
			buf = wire.AppendU32(buf[:0], uint32(d.dst))
			frame, err := n.cfg.Codec.EncodeFrame(buf, d.payload)
			if err != nil {
				panic(fmt.Sprintf("sockfab: payload %T for PE %d cannot cross the process boundary: %v", d.payload, d.dst, err))
			}
			_, werr := p.conn.Write(frame)
			n.bufs.Put(owner, frame[:0])
			n.queued.Add(-1)
			if werr != nil {
				panic(fmt.Sprintf("sockfab: write to peer failed: %v", werr))
			}
			n.boundaryOut.Add(1)
		}
	}
	if tc, ok := p.conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
}

// readerLoop decodes inbound frames from one connection and hands them
// to the dispatcher. It exits on the peer's clean EOF; anything else —
// mid-frame truncation, a frame that fails decode, a destination this
// node does not host — is a protocol violation and panics, because a
// silently dropped message becomes an undebuggable hang downstream.
func (n *Node) readerLoop(p *peer) {
	defer n.readerWG.Done()
	buf := n.bufs.GetShared()
	defer func() { n.bufs.PutShared(buf) }()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(p.conn, hdr[:]); err != nil {
			if err == io.EOF {
				return
			}
			panic(fmt.Sprintf("sockfab: read: %v", err))
		}
		dst := int(binary.BigEndian.Uint32(hdr[:]))
		frame, err := wire.ReadFrame(p.conn, buf)
		buf = frame[:0]
		if err != nil {
			panic(fmt.Sprintf("sockfab: frame for PE %d: %v", dst, err))
		}
		v, _, err := n.cfg.Codec.DecodeFrame(frame)
		if err != nil {
			panic(fmt.Sprintf("sockfab: decode frame for PE %d: %v", dst, err))
		}
		if dst < 0 || dst >= n.cfg.NumPEs || n.cfg.Owner(dst) != n.cfg.Proc {
			panic(fmt.Sprintf("sockfab: misrouted frame for PE %d at proc %d", dst, n.cfg.Proc))
		}
		n.boundaryIn.Add(1)
		n.queued.Add(1)
		n.mu.Lock()
		n.ready = append(n.ready, delivery{dst: dst, payload: v})
		n.cond.Signal()
		n.mu.Unlock()
	}
}

// timerLoop moves due timers from the heap onto the dispatcher FIFO. On
// close it fires everything left immediately — consumers that arm timers
// (relnet) treat an early firing as a no-op or a strand, never as
// corruption — and exits.
func (n *Node) timerLoop() {
	defer close(n.timerDone)
	t := time.NewTimer(time.Hour)
	defer t.Stop()
	for {
		n.mu.Lock()
		if n.closing {
			for len(n.timers) > 0 {
				e := heap.Pop(&n.timers).(timerEntry)
				n.ready = append(n.ready, delivery{dst: e.dst, payload: e.payload})
			}
			n.cond.Signal()
			n.mu.Unlock()
			return
		}
		now := time.Now()
		fired := false
		for len(n.timers) > 0 && !n.timers[0].at.After(now) {
			e := heap.Pop(&n.timers).(timerEntry)
			n.ready = append(n.ready, delivery{dst: e.dst, payload: e.payload})
			fired = true
		}
		if fired {
			n.cond.Signal()
		}
		wait := time.Hour
		if len(n.timers) > 0 {
			wait = time.Until(n.timers[0].at)
			if wait < 0 {
				wait = 0
			}
		}
		n.mu.Unlock()
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		t.Reset(wait)
		select {
		case <-t.C:
		case <-n.timerKick:
		}
	}
}

// dispatchLoop is the node's single delivery thread: it drains the ready
// FIFO through the deliver callback. It exits when finishClose has
// guaranteed no producer remains and the FIFO is empty.
func (n *Node) dispatchLoop() {
	defer close(n.dispDone)
	for {
		n.mu.Lock()
		for len(n.ready) == 0 && !n.dispStop {
			n.cond.Wait()
		}
		batch := n.ready
		n.ready = nil
		stop := n.dispStop && len(batch) == 0
		n.mu.Unlock()
		if stop {
			return
		}
		for _, d := range batch {
			n.deliver(d.dst, d.payload)
			n.queued.Add(-1)
		}
	}
}
