// Package pq provides the priority-queue data structures used by the SSSP
// algorithms in this repository.
//
// ACIC keeps one min-priority queue of accepted updates per PE (§II-C of the
// paper): only updates that improved a vertex distance enter the queue, and
// when the PE goes idle the lowest-distance update is popped and, if still
// current, relaxed. The sequential Dijkstra oracle additionally needs a
// decrease-key operation, provided by IndexedHeap.
//
// All queues order items by a float64 key (the tentative distance) with ties
// broken arbitrarily. None of them is safe for concurrent use; in the
// message-driven runtime each PE owns its queues exclusively.
package pq

// Item is a keyed element stored in the non-indexed queues.
type Item struct {
	Key   float64 // priority; smaller pops first
	Value int64   // caller payload (vertex id, update id, ...)
}

// Queue is the interface shared by the min-queue implementations, allowing
// the ACIC core to swap queue types for the ablation benchmarks.
type Queue interface {
	// Push inserts an item.
	Push(Item)
	// Pop removes and returns the minimum-key item. It panics if empty.
	Pop() Item
	// Peek returns the minimum-key item without removing it. It panics if
	// empty.
	Peek() Item
	// Len reports the number of stored items.
	Len() int
}

// BinaryHeap is a classic array-backed binary min-heap.
type BinaryHeap struct {
	items []Item
}

var _ Queue = (*BinaryHeap)(nil)

// NewBinaryHeap returns an empty heap with the given initial capacity.
func NewBinaryHeap(capacity int) *BinaryHeap {
	return &BinaryHeap{items: make([]Item, 0, capacity)}
}

// Len reports the number of stored items.
func (h *BinaryHeap) Len() int { return len(h.items) }

// Reset empties the heap, keeping its backing array for reuse.
func (h *BinaryHeap) Reset() { h.items = h.items[:0] }

// Push inserts an item.
func (h *BinaryHeap) Push(it Item) {
	h.items = append(h.items, it)
	h.siftUp(len(h.items) - 1)
}

// Peek returns the minimum item without removing it.
func (h *BinaryHeap) Peek() Item {
	if len(h.items) == 0 {
		panic("pq: Peek on empty BinaryHeap")
	}
	return h.items[0]
}

// Pop removes and returns the minimum item.
func (h *BinaryHeap) Pop() Item {
	if len(h.items) == 0 {
		panic("pq: Pop on empty BinaryHeap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *BinaryHeap) siftUp(i int) {
	it := h.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Key <= it.Key {
			break
		}
		h.items[i] = h.items[parent]
		i = parent
	}
	h.items[i] = it
}

func (h *BinaryHeap) siftDown(i int) {
	n := len(h.items)
	it := h.items[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.items[right].Key < h.items[left].Key {
			least = right
		}
		if it.Key <= h.items[least].Key {
			break
		}
		h.items[i] = h.items[least]
		i = least
	}
	h.items[i] = it
}

// QuaternaryHeap is a 4-ary min-heap. Its shallower tree trades more
// comparisons per level for fewer cache misses, which tends to win for the
// large queues the RMAT tail produces.
type QuaternaryHeap struct {
	items []Item
}

var _ Queue = (*QuaternaryHeap)(nil)

// NewQuaternaryHeap returns an empty heap with the given initial capacity.
func NewQuaternaryHeap(capacity int) *QuaternaryHeap {
	return &QuaternaryHeap{items: make([]Item, 0, capacity)}
}

// Len reports the number of stored items.
func (h *QuaternaryHeap) Len() int { return len(h.items) }

// Push inserts an item.
func (h *QuaternaryHeap) Push(it Item) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if h.items[parent].Key <= it.Key {
			break
		}
		h.items[i] = h.items[parent]
		i = parent
	}
	h.items[i] = it
}

// Peek returns the minimum item without removing it.
func (h *QuaternaryHeap) Peek() Item {
	if len(h.items) == 0 {
		panic("pq: Peek on empty QuaternaryHeap")
	}
	return h.items[0]
}

// Pop removes and returns the minimum item.
func (h *QuaternaryHeap) Pop() Item {
	if len(h.items) == 0 {
		panic("pq: Pop on empty QuaternaryHeap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	it := h.items[last]
	h.items = h.items[:last]
	if last == 0 {
		return top
	}
	n := last
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		least := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.items[c].Key < h.items[least].Key {
				least = c
			}
		}
		if it.Key <= h.items[least].Key {
			break
		}
		h.items[i] = h.items[least]
		i = least
	}
	h.items[i] = it
	return top
}
