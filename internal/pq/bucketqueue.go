package pq

// BucketQueue is a monotone bucket priority queue: keys are mapped to
// integer buckets of fixed width and popped in bucket order, FIFO within a
// bucket. It is the data structure underlying Δ-stepping's bucket array
// (bucket width = Δ) and is also offered as an approximate pq for ACIC
// ablations (within a bucket the order is insertion order, not key order).
//
// The queue is "monotone" in the sense that it tracks a cursor at the lowest
// non-empty bucket; pushing below the cursor is permitted (label-correcting
// algorithms re-insert improved vertices) and moves the cursor back.
type BucketQueue struct {
	width   float64
	buckets [][]Item
	cursor  int // index of the lowest possibly-non-empty bucket
	n       int
}

var _ Queue = (*BucketQueue)(nil)

// NewBucketQueue returns a bucket queue with the given bucket width.
// Width must be positive.
func NewBucketQueue(width float64) *BucketQueue {
	if width <= 0 {
		panic("pq: NewBucketQueue with non-positive width")
	}
	return &BucketQueue{width: width}
}

// Len reports the number of stored items.
func (q *BucketQueue) Len() int { return q.n }

// BucketOf returns the bucket index key maps to.
func (q *BucketQueue) BucketOf(key float64) int {
	if key <= 0 {
		return 0
	}
	return int(key / q.width)
}

// Push inserts an item.
func (q *BucketQueue) Push(it Item) {
	b := q.BucketOf(it.Key)
	for b >= len(q.buckets) {
		q.buckets = append(q.buckets, nil)
	}
	q.buckets[b] = append(q.buckets[b], it)
	if q.n == 0 || b < q.cursor {
		q.cursor = b
	}
	q.n++
}

// Peek returns an item from the lowest non-empty bucket without removing it.
func (q *BucketQueue) Peek() Item {
	if q.n == 0 {
		panic("pq: Peek on empty BucketQueue")
	}
	q.advance()
	return q.buckets[q.cursor][0]
}

// Pop removes and returns an item from the lowest non-empty bucket (FIFO
// within the bucket).
func (q *BucketQueue) Pop() Item {
	if q.n == 0 {
		panic("pq: Pop on empty BucketQueue")
	}
	q.advance()
	b := q.buckets[q.cursor]
	it := b[0]
	if len(b) == 1 {
		// Drop the backing array so a long-gone bucket does not pin memory.
		q.buckets[q.cursor] = nil
	} else {
		q.buckets[q.cursor] = b[1:]
	}
	q.n--
	return it
}

// CurrentBucket returns the index of the lowest non-empty bucket, or -1 if
// the queue is empty.
func (q *BucketQueue) CurrentBucket() int {
	if q.n == 0 {
		return -1
	}
	q.advance()
	return q.cursor
}

// DrainBucket removes and returns the full contents of bucket b, which may
// be empty. Δ-stepping uses this to grab a whole bucket per phase.
func (q *BucketQueue) DrainBucket(b int) []Item {
	if b >= len(q.buckets) {
		return nil
	}
	items := q.buckets[b]
	q.buckets[b] = nil
	q.n -= len(items)
	return items
}

func (q *BucketQueue) advance() {
	for q.cursor < len(q.buckets) && len(q.buckets[q.cursor]) == 0 {
		q.cursor++
	}
}
