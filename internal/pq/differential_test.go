package pq

// Differential tests across the four Queue implementations. Keys are drawn
// from a small set of non-negative integers with a width-1 BucketQueue, so
// every distinct key occupies its own bucket and the approximate bucket
// order coincides with exact key order — any divergence is then a real
// ordering bug, not bucketing slack. Integer keys are also maximally
// tie-prone, which is where heap bugs hide (ties may pop in any order, so
// only the key sequence is compared, never the payloads).

import (
	"sort"
	"testing"

	"acic/internal/xrand"
)

func newQueues() map[string]Queue {
	return map[string]Queue{
		"binary":     NewBinaryHeap(16),
		"quaternary": NewQuaternaryHeap(16),
		"pairing":    NewPairingHeap(),
		"bucket":     NewBucketQueue(1),
	}
}

// TestQueuesPopIdenticalKeySequences interleaves random pushes and pops and
// requires all four implementations to emit the same key sequence.
func TestQueuesPopIdenticalKeySequences(t *testing.T) {
	r := xrand.New(0xD1FF)
	for trial := 0; trial < 50; trial++ {
		qs := newQueues()
		maxKey := 1 + r.Intn(16) // small key alphabet: force ties
		var live int
		for op := 0; op < 400; op++ {
			if live > 0 && r.Intn(3) == 0 {
				var wantKey float64
				first := true
				for name, q := range qs {
					if q.Len() != live {
						t.Fatalf("trial %d: %s Len = %d, want %d", trial, name, q.Len(), live)
					}
					if pk := q.Peek().Key; pk != q.Pop().Key {
						t.Fatalf("trial %d: %s Peek disagrees with Pop", trial, name)
					} else if first {
						wantKey, first = pk, false
					} else if pk != wantKey {
						t.Fatalf("trial %d op %d: %s popped key %g, others popped %g",
							trial, op, name, pk, wantKey)
					}
				}
				live--
				continue
			}
			it := Item{Key: float64(r.Intn(maxKey)), Value: int64(op)}
			for _, q := range qs {
				q.Push(it)
			}
			live++
		}
		// Drain: the tail must come out in ascending key order everywhere.
		var prev float64 = -1
		for ; live > 0; live-- {
			var wantKey float64
			first := true
			for name, q := range qs {
				k := q.Pop().Key
				if first {
					wantKey, first = k, false
				} else if k != wantKey {
					t.Fatalf("trial %d drain: %s popped %g, others %g", trial, name, k, wantKey)
				}
			}
			if wantKey < prev {
				t.Fatalf("trial %d drain: keys not ascending: %g after %g", trial, wantKey, prev)
			}
			prev = wantKey
		}
		for name, q := range qs {
			if q.Len() != 0 {
				t.Fatalf("trial %d: %s not empty after drain", trial, name)
			}
		}
	}
}

// TestLazyQueuesMatchIndexedHeapOracle replays a Dijkstra-style
// decrease-key workload. The IndexedHeap (the sequential oracle's queue)
// supports DecreaseKey natively; the lazy queues emulate it the way the
// ACIC core does — push the improved key as a fresh item and skip stale
// entries on pop. Every implementation must settle each id exactly once,
// at its best key, in ascending key order.
func TestLazyQueuesMatchIndexedHeapOracle(t *testing.T) {
	r := xrand.New(0xD1FF2)
	for trial := 0; trial < 30; trial++ {
		n := 20 + r.Intn(100)
		oracle := NewIndexedHeap(n)
		qs := newQueues()
		best := make(map[int64]float64)

		relaxes := 5 * n
		for i := 0; i < relaxes; i++ {
			id := r.Intn(n)
			key := float64(r.Intn(32))
			if oracle.PushOrDecrease(id, key) {
				// Improved (or new): the lazy queues get a duplicate entry.
				best[int64(id)] = key
				for _, q := range qs {
					q.Push(Item{Key: key, Value: int64(id)})
				}
			}
		}

		// The oracle's settle order: ascending keys, each id once.
		type settled struct {
			id  int
			key float64
		}
		var want []settled
		for oracle.Len() > 0 {
			id, key := oracle.PopMin()
			want = append(want, settled{id, key})
			if key != best[int64(id)] {
				t.Fatalf("trial %d: oracle settled id %d at %g, best %g", trial, id, key, best[int64(id)])
			}
		}

		for name, q := range qs {
			done := make(map[int64]bool)
			var got []settled
			for q.Len() > 0 {
				it := q.Pop()
				if done[it.Value] || it.Key != best[it.Value] {
					continue // stale duplicate, superseded by a later improvement
				}
				done[it.Value] = true
				got = append(got, settled{int(it.Value), it.Key})
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: %s settled %d ids, oracle settled %d", trial, name, len(got), len(want))
			}
			for i := range got {
				if got[i].key != want[i].key {
					t.Fatalf("trial %d: %s settle %d popped key %g, oracle %g",
						trial, name, i, got[i].key, want[i].key)
				}
			}
			// Same ids settled, each at its best key (order-free check:
			// ties between distinct ids may settle in any order).
			ids := make([]int, len(got))
			wids := make([]int, len(want))
			for i := range got {
				ids[i], wids[i] = got[i].id, want[i].id
			}
			sort.Ints(ids)
			sort.Ints(wids)
			for i := range ids {
				if ids[i] != wids[i] {
					t.Fatalf("trial %d: %s settled id set differs from oracle", trial, name)
				}
			}
		}
	}
}
