package pq

// IndexedHeap is a binary min-heap over the integer ids [0, n) supporting
// DecreaseKey, as required by the sequential Dijkstra oracle. Each id may be
// present at most once.
type IndexedHeap struct {
	keys []float64 // keys[id] is the current key of id (valid while in heap)
	heap []int32   // heap of ids
	pos  []int32   // pos[id] = index in heap, or -1 if absent
}

// NewIndexedHeap returns an empty heap able to hold ids in [0, n).
func NewIndexedHeap(n int) *IndexedHeap {
	h := &IndexedHeap{
		keys: make([]float64, n),
		heap: make([]int32, 0, n),
		pos:  make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of stored ids.
func (h *IndexedHeap) Len() int { return len(h.heap) }

// Contains reports whether id is currently in the heap.
func (h *IndexedHeap) Contains(id int) bool { return h.pos[id] >= 0 }

// Key returns the current key of id. Only meaningful if Contains(id).
func (h *IndexedHeap) Key(id int) float64 { return h.keys[id] }

// Push inserts id with the given key. It panics if id is already present.
func (h *IndexedHeap) Push(id int, key float64) {
	if h.pos[id] >= 0 {
		panic("pq: Push of id already in IndexedHeap")
	}
	h.keys[id] = key
	h.heap = append(h.heap, int32(id))
	h.pos[id] = int32(len(h.heap) - 1)
	h.siftUp(len(h.heap) - 1)
}

// PushOrDecrease inserts id, or lowers its key if already present with a
// larger key. It returns true if the heap changed.
func (h *IndexedHeap) PushOrDecrease(id int, key float64) bool {
	if h.pos[id] < 0 {
		h.Push(id, key)
		return true
	}
	if key >= h.keys[id] {
		return false
	}
	h.DecreaseKey(id, key)
	return true
}

// DecreaseKey lowers the key of id. It panics if id is absent or the new key
// is larger than the current one.
func (h *IndexedHeap) DecreaseKey(id int, key float64) {
	i := h.pos[id]
	if i < 0 {
		panic("pq: DecreaseKey of id not in IndexedHeap")
	}
	if key > h.keys[id] {
		panic("pq: DecreaseKey increases key")
	}
	h.keys[id] = key
	h.siftUp(int(i))
}

// PopMin removes and returns the id with the smallest key, plus that key.
// It panics if the heap is empty.
func (h *IndexedHeap) PopMin() (id int, key float64) {
	if len(h.heap) == 0 {
		panic("pq: PopMin on empty IndexedHeap")
	}
	top := h.heap[0]
	h.pos[top] = -1
	last := len(h.heap) - 1
	if last > 0 {
		h.heap[0] = h.heap[last]
		h.pos[h.heap[0]] = 0
	}
	h.heap = h.heap[:last]
	if last > 1 {
		h.siftDown(0)
	}
	return int(top), h.keys[top]
}

func (h *IndexedHeap) less(i, j int) bool {
	return h.keys[h.heap[i]] < h.keys[h.heap[j]]
}

func (h *IndexedHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *IndexedHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		h.swap(i, least)
		i = least
	}
}
