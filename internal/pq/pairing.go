package pq

// PairingHeap is a pairing min-heap. Push and meld are O(1); Pop is
// amortized O(log n). It serves as an alternative pq implementation for the
// ACIC ablation benchmarks: pairing heaps favor the heavy-push, light-pop
// pattern that a low p_pq threshold produces.
type PairingHeap struct {
	root *pairNode
	n    int
	free *pairNode // freelist to reduce allocation churn
}

type pairNode struct {
	item    Item
	child   *pairNode
	sibling *pairNode
}

var _ Queue = (*PairingHeap)(nil)

// NewPairingHeap returns an empty pairing heap.
func NewPairingHeap() *PairingHeap { return &PairingHeap{} }

// Len reports the number of stored items.
func (h *PairingHeap) Len() int { return h.n }

func (h *PairingHeap) alloc(it Item) *pairNode {
	if n := h.free; n != nil {
		h.free = n.sibling
		n.item = it
		n.child = nil
		n.sibling = nil
		return n
	}
	return &pairNode{item: it}
}

func (h *PairingHeap) release(n *pairNode) {
	n.child = nil
	n.sibling = h.free
	h.free = n
}

// Push inserts an item.
func (h *PairingHeap) Push(it Item) {
	h.root = meld(h.root, h.alloc(it))
	h.n++
}

// Peek returns the minimum item without removing it.
func (h *PairingHeap) Peek() Item {
	if h.root == nil {
		panic("pq: Peek on empty PairingHeap")
	}
	return h.root.item
}

// Pop removes and returns the minimum item.
func (h *PairingHeap) Pop() Item {
	if h.root == nil {
		panic("pq: Pop on empty PairingHeap")
	}
	top := h.root.item
	old := h.root
	h.root = mergePairs(h.root.child)
	h.release(old)
	h.n--
	return top
}

// meld links two heap roots, returning the smaller as the new root.
func meld(a, b *pairNode) *pairNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.item.Key < a.item.Key {
		a, b = b, a
	}
	// b becomes a's first child.
	b.sibling = a.child
	a.child = b
	return a
}

// mergePairs performs the standard two-pass pairing of a sibling list.
// It is written iteratively so deep sibling chains cannot overflow the stack.
func mergePairs(first *pairNode) *pairNode {
	if first == nil {
		return nil
	}
	// Pass 1: meld siblings pairwise left to right, collecting the results.
	var pairs []*pairNode
	for first != nil {
		a := first
		b := a.sibling
		if b == nil {
			a.sibling = nil
			pairs = append(pairs, a)
			break
		}
		next := b.sibling
		a.sibling = nil
		b.sibling = nil
		pairs = append(pairs, meld(a, b))
		first = next
	}
	// Pass 2: meld right to left.
	root := pairs[len(pairs)-1]
	for i := len(pairs) - 2; i >= 0; i-- {
		root = meld(root, pairs[i])
	}
	return root
}
