package pq

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"acic/internal/xrand"
)

// queueFactories enumerates every Queue implementation so each generic test
// exercises all of them.
var queueFactories = map[string]func() Queue{
	"binary":     func() Queue { return NewBinaryHeap(0) },
	"quaternary": func() Queue { return NewQuaternaryHeap(0) },
	"pairing":    func() Queue { return NewPairingHeap() },
}

func TestQueuesSortedDrain(t *testing.T) {
	for name, mk := range queueFactories {
		t.Run(name, func(t *testing.T) {
			q := mk()
			r := xrand.New(1)
			const n = 2000
			keys := make([]float64, n)
			for i := range keys {
				keys[i] = r.Float64() * 1000
				q.Push(Item{Key: keys[i], Value: int64(i)})
			}
			if q.Len() != n {
				t.Fatalf("Len = %d, want %d", q.Len(), n)
			}
			sort.Float64s(keys)
			for i := 0; i < n; i++ {
				it := q.Pop()
				if it.Key != keys[i] {
					t.Fatalf("pop %d: key %v, want %v", i, it.Key, keys[i])
				}
			}
			if q.Len() != 0 {
				t.Fatalf("Len after drain = %d", q.Len())
			}
		})
	}
}

func TestQueuesPeekMatchesPop(t *testing.T) {
	for name, mk := range queueFactories {
		t.Run(name, func(t *testing.T) {
			q := mk()
			r := xrand.New(2)
			for i := 0; i < 500; i++ {
				q.Push(Item{Key: r.Float64(), Value: int64(i)})
			}
			for q.Len() > 0 {
				p := q.Peek()
				got := q.Pop()
				if p != got {
					t.Fatalf("Peek %v != Pop %v", p, got)
				}
			}
		})
	}
}

func TestQueuesInterleavedOps(t *testing.T) {
	for name, mk := range queueFactories {
		t.Run(name, func(t *testing.T) {
			q := mk()
			ref := NewBinaryHeap(0) // oracle checked against itself elsewhere
			if name == "binary" {
				ref = nil
			}
			r := xrand.New(3)
			lastPopped := math.Inf(-1)
			_ = lastPopped
			var model []float64
			for step := 0; step < 5000; step++ {
				if q.Len() == 0 || r.Float64() < 0.55 {
					k := r.Float64() * 100
					q.Push(Item{Key: k})
					model = append(model, k)
					if ref != nil {
						ref.Push(Item{Key: k})
					}
				} else {
					it := q.Pop()
					// The popped key must be the model minimum.
					minIdx := 0
					for i, k := range model {
						if k < model[minIdx] {
							minIdx = i
						}
					}
					if it.Key != model[minIdx] {
						t.Fatalf("step %d: popped %v, model min %v", step, it.Key, model[minIdx])
					}
					model[minIdx] = model[len(model)-1]
					model = model[:len(model)-1]
				}
			}
		})
	}
}

func TestQueuesPanicOnEmpty(t *testing.T) {
	for name, mk := range queueFactories {
		t.Run(name+"/pop", func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("Pop on empty queue did not panic")
				}
			}()
			mk().Pop()
		})
		t.Run(name+"/peek", func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("Peek on empty queue did not panic")
				}
			}()
			mk().Peek()
		})
	}
}

func TestQueuesDuplicateKeys(t *testing.T) {
	for name, mk := range queueFactories {
		t.Run(name, func(t *testing.T) {
			q := mk()
			for i := 0; i < 100; i++ {
				q.Push(Item{Key: 5, Value: int64(i)})
			}
			q.Push(Item{Key: 1, Value: -1})
			if got := q.Pop(); got.Value != -1 {
				t.Fatalf("minimum not popped first: %+v", got)
			}
			seen := make(map[int64]bool)
			for q.Len() > 0 {
				it := q.Pop()
				if it.Key != 5 {
					t.Fatalf("unexpected key %v", it.Key)
				}
				if seen[it.Value] {
					t.Fatalf("value %d popped twice", it.Value)
				}
				seen[it.Value] = true
			}
			if len(seen) != 100 {
				t.Fatalf("popped %d items, want 100", len(seen))
			}
		})
	}
}

// Property: for any input multiset, draining a queue yields non-decreasing
// keys and exactly the input multiset.
func TestQuickQueueHeapProperty(t *testing.T) {
	for name, mk := range queueFactories {
		t.Run(name, func(t *testing.T) {
			f := func(keys []float64) bool {
				q := mk()
				in := make([]float64, 0, len(keys))
				for _, k := range keys {
					if math.IsNaN(k) {
						continue // NaN keys are unordered; ACIC never produces them
					}
					q.Push(Item{Key: k})
					in = append(in, k)
				}
				out := make([]float64, 0, len(in))
				prev := math.Inf(-1)
				for q.Len() > 0 {
					it := q.Pop()
					if it.Key < prev {
						return false
					}
					prev = it.Key
					out = append(out, it.Key)
				}
				sort.Float64s(in)
				if len(in) != len(out) {
					return false
				}
				for i := range in {
					if in[i] != out[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestIndexedHeapBasic(t *testing.T) {
	h := NewIndexedHeap(10)
	h.Push(3, 30)
	h.Push(1, 10)
	h.Push(7, 70)
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	if !h.Contains(3) || h.Contains(0) {
		t.Fatal("Contains wrong")
	}
	id, key := h.PopMin()
	if id != 1 || key != 10 {
		t.Fatalf("PopMin = (%d,%v)", id, key)
	}
	if h.Contains(1) {
		t.Fatal("popped id still Contains")
	}
}

func TestIndexedHeapDecreaseKey(t *testing.T) {
	h := NewIndexedHeap(5)
	for i := 0; i < 5; i++ {
		h.Push(i, float64(10+i))
	}
	h.DecreaseKey(4, 1)
	id, key := h.PopMin()
	if id != 4 || key != 1 {
		t.Fatalf("after DecreaseKey, PopMin = (%d,%v)", id, key)
	}
}

func TestIndexedHeapPushOrDecrease(t *testing.T) {
	h := NewIndexedHeap(3)
	if !h.PushOrDecrease(0, 5) {
		t.Fatal("first PushOrDecrease returned false")
	}
	if h.PushOrDecrease(0, 9) {
		t.Fatal("PushOrDecrease with larger key returned true")
	}
	if !h.PushOrDecrease(0, 2) {
		t.Fatal("PushOrDecrease with smaller key returned false")
	}
	if _, key := h.PopMin(); key != 2 {
		t.Fatalf("key = %v, want 2", key)
	}
}

func TestIndexedHeapPanics(t *testing.T) {
	t.Run("double push", func(t *testing.T) {
		h := NewIndexedHeap(2)
		h.Push(0, 1)
		defer func() {
			if recover() == nil {
				t.Error("double Push did not panic")
			}
		}()
		h.Push(0, 2)
	})
	t.Run("increase key", func(t *testing.T) {
		h := NewIndexedHeap(2)
		h.Push(0, 1)
		defer func() {
			if recover() == nil {
				t.Error("increasing DecreaseKey did not panic")
			}
		}()
		h.DecreaseKey(0, 5)
	})
	t.Run("pop empty", func(t *testing.T) {
		h := NewIndexedHeap(2)
		defer func() {
			if recover() == nil {
				t.Error("PopMin on empty did not panic")
			}
		}()
		h.PopMin()
	})
}

func TestIndexedHeapRandomizedAgainstSort(t *testing.T) {
	r := xrand.New(4)
	const n = 1000
	h := NewIndexedHeap(n)
	keys := make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = r.Float64() * 100
		h.Push(i, keys[i])
	}
	// Randomly decrease some keys.
	for i := 0; i < 300; i++ {
		id := r.Intn(n)
		if h.Contains(id) {
			nk := h.Key(id) * r.Float64()
			h.DecreaseKey(id, nk)
			keys[id] = nk
		}
	}
	prev := math.Inf(-1)
	popped := 0
	for h.Len() > 0 {
		id, key := h.PopMin()
		if key < prev {
			t.Fatalf("keys not non-decreasing: %v after %v", key, prev)
		}
		if key != keys[id] {
			t.Fatalf("id %d popped with key %v, want %v", id, key, keys[id])
		}
		prev = key
		popped++
	}
	if popped != n {
		t.Fatalf("popped %d, want %d", popped, n)
	}
}

func TestBucketQueueOrder(t *testing.T) {
	q := NewBucketQueue(10)
	q.Push(Item{Key: 35, Value: 1})
	q.Push(Item{Key: 5, Value: 2})
	q.Push(Item{Key: 12, Value: 3})
	q.Push(Item{Key: 7, Value: 4}) // same bucket as 5: FIFO after it
	wantValues := []int64{2, 4, 3, 1}
	for i, w := range wantValues {
		if got := q.Pop(); got.Value != w {
			t.Fatalf("pop %d: value %d, want %d", i, got.Value, w)
		}
	}
}

func TestBucketQueueMonotoneCursorReset(t *testing.T) {
	q := NewBucketQueue(1)
	q.Push(Item{Key: 50})
	if q.CurrentBucket() != 50 {
		t.Fatalf("CurrentBucket = %d", q.CurrentBucket())
	}
	// Label-correcting re-insertion below the cursor must be visible.
	q.Push(Item{Key: 3})
	if q.CurrentBucket() != 3 {
		t.Fatalf("CurrentBucket after low push = %d", q.CurrentBucket())
	}
	if got := q.Pop(); got.Key != 3 {
		t.Fatalf("Pop = %v, want 3", got.Key)
	}
	if got := q.Pop(); got.Key != 50 {
		t.Fatalf("Pop = %v, want 50", got.Key)
	}
}

func TestBucketQueueDrainBucket(t *testing.T) {
	q := NewBucketQueue(10)
	for i := 0; i < 5; i++ {
		q.Push(Item{Key: 15, Value: int64(i)})
	}
	q.Push(Item{Key: 25})
	items := q.DrainBucket(1)
	if len(items) != 5 {
		t.Fatalf("drained %d items, want 5", len(items))
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d after drain, want 1", q.Len())
	}
	if q.DrainBucket(99) != nil {
		t.Fatal("DrainBucket past end should return nil")
	}
}

func TestBucketQueueNegativeAndZeroKeys(t *testing.T) {
	q := NewBucketQueue(10)
	q.Push(Item{Key: 0, Value: 1})
	if q.BucketOf(-5) != 0 {
		t.Error("negative keys should clamp to bucket 0")
	}
	if got := q.Pop(); got.Value != 1 {
		t.Fatalf("Pop = %+v", got)
	}
	if q.CurrentBucket() != -1 {
		t.Fatal("CurrentBucket on empty queue should be -1")
	}
}

func TestBucketQueuePanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBucketQueue(0) did not panic")
		}
	}()
	NewBucketQueue(0)
}

func TestBucketQueueEmptyPanics(t *testing.T) {
	q := NewBucketQueue(1)
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty BucketQueue did not panic")
		}
	}()
	q.Pop()
}

func benchQueue(b *testing.B, mk func() Queue) {
	r := xrand.New(7)
	q := mk()
	// Push/pop in a pattern resembling the ACIC pq: mostly pushes with
	// bursts of pops.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(Item{Key: r.Float64() * 1000, Value: int64(i)})
		if i%4 == 3 {
			q.Pop()
			q.Pop()
		}
	}
}

func BenchmarkBinaryHeap(b *testing.B)     { benchQueue(b, queueFactories["binary"]) }
func BenchmarkQuaternaryHeap(b *testing.B) { benchQueue(b, queueFactories["quaternary"]) }
func BenchmarkPairingHeap(b *testing.B)    { benchQueue(b, queueFactories["pairing"]) }
