// Package graph provides the weighted directed graph representation shared
// by every SSSP algorithm in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form: one offsets array
// of length |V|+1 and parallel targets/weights arrays of length |E|. This
// matches the paper's vertex object layout — each vertex owns a list of
// out-edges, each with a destination and a weight (§II-A) — while keeping
// the memory contiguous enough to hold scale-18+ graphs in a laptop-sized
// address space.
//
// Vertex ids are dense integers in [0, NumVertices). Edge weights are
// positive float64 values; all of the paper's termination reasoning assumes
// non-negative weights (§II-D) and Build rejects negative ones.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Edge is one directed weighted edge in edge-list form, the interchange
// format between generators, CSV files and Build.
type Edge struct {
	From   int32
	To     int32
	Weight float64
}

// Graph is an immutable CSR-encoded directed weighted graph.
type Graph struct {
	offsets []int64   // len NumVertices+1
	targets []int32   // len NumEdges
	weights []float64 // len NumEdges
}

// ErrNegativeWeight is returned by Build when an edge has negative weight.
var ErrNegativeWeight = errors.New("graph: negative edge weight")

// Build constructs a Graph with numVertices vertices from an edge list.
// Edges may arrive in any order; Build counting-sorts them by source. Edges
// referencing vertices outside [0, numVertices) or carrying negative or
// non-finite weights are rejected with an error. Self-loops and duplicate
// edges are preserved (generators decide whether to emit them).
func Build(numVertices int, edges []Edge) (*Graph, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", numVertices)
	}
	g := &Graph{
		offsets: make([]int64, numVertices+1),
		targets: make([]int32, len(edges)),
		weights: make([]float64, len(edges)),
	}
	for _, e := range edges {
		if e.From < 0 || int(e.From) >= numVertices {
			return nil, fmt.Errorf("graph: edge source %d out of range [0,%d)", e.From, numVertices)
		}
		if e.To < 0 || int(e.To) >= numVertices {
			return nil, fmt.Errorf("graph: edge target %d out of range [0,%d)", e.To, numVertices)
		}
		if e.Weight < 0 {
			return nil, fmt.Errorf("%w: %v on edge %d->%d", ErrNegativeWeight, e.Weight, e.From, e.To)
		}
		if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
			return nil, fmt.Errorf("graph: non-finite weight %v on edge %d->%d", e.Weight, e.From, e.To)
		}
		g.offsets[e.From+1]++
	}
	for v := 0; v < numVertices; v++ {
		g.offsets[v+1] += g.offsets[v]
	}
	// Second pass: place edges. cursor tracks the next free slot per source.
	cursor := make([]int64, numVertices)
	for _, e := range edges {
		slot := g.offsets[e.From] + cursor[e.From]
		cursor[e.From]++
		g.targets[slot] = e.To
		g.weights[slot] = e.Weight
	}
	return g, nil
}

// MustBuild is Build but panics on error, for tests and generators whose
// inputs are valid by construction.
func MustBuild(numVertices int, edges []Edge) *Graph {
	g, err := Build(numVertices, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.targets) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the out-edge targets and weights of v as slices aliasing
// the graph's internal storage; callers must not modify them.
func (g *Graph) Neighbors(v int) (targets []int32, weights []float64) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// EachEdge calls fn for every edge (from, to, weight) in source order.
func (g *Graph) EachEdge(fn func(from, to int32, w float64)) {
	for v := 0; v < g.NumVertices(); v++ {
		ts, ws := g.Neighbors(v)
		for i, to := range ts {
			fn(int32(v), to, ws[i])
		}
	}
}

// Edges returns the graph's edge list (a fresh copy).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.EachEdge(func(from, to int32, w float64) {
		out = append(out, Edge{From: from, To: to, Weight: w})
	})
	return out
}

// MaxWeight returns the largest edge weight, or 0 for an edgeless graph.
func (g *Graph) MaxWeight() float64 {
	var max float64
	for _, w := range g.weights {
		if w > max {
			max = w
		}
	}
	return max
}

// Reverse returns a new graph with every edge direction flipped. Useful for
// in-degree analysis and for the 2-D partition's column view.
func (g *Graph) Reverse() *Graph {
	edges := make([]Edge, 0, g.NumEdges())
	g.EachEdge(func(from, to int32, w float64) {
		edges = append(edges, Edge{From: to, To: from, Weight: w})
	})
	return MustBuild(g.NumVertices(), edges)
}

// DegreeStats summarizes the out-degree distribution; the power-law check in
// the RMAT generator tests uses it.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// P50, P90, P99 are out-degree percentiles.
	P50, P90, P99 int
}

// OutDegreeStats computes degree statistics over all vertices.
func (g *Graph) OutDegreeStats() DegreeStats {
	n := g.NumVertices()
	if n == 0 {
		return DegreeStats{}
	}
	degs := make([]int, n)
	sum := 0
	for v := 0; v < n; v++ {
		d := g.OutDegree(v)
		degs[v] = d
		sum += d
	}
	sort.Ints(degs)
	pct := func(p float64) int { return degs[int(p*float64(n-1))] }
	return DegreeStats{
		Min:  degs[0],
		Max:  degs[n-1],
		Mean: float64(sum) / float64(n),
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
	}
}

// ReachableFrom returns the number of vertices reachable from src (including
// src) and the number of edges whose source is reachable. The edge count is
// the Graph500 "traversed edges" denominator used for TEPS (§IV-F). A src
// outside [0, NumVertices) reaches nothing and returns (0, 0) — callers such
// as the query service pass through untrusted sources.
func (g *Graph) ReachableFrom(src int) (vertices int, edges int64) {
	n := g.NumVertices()
	if src < 0 || src >= n {
		return 0, 0
	}
	visited := make([]bool, n)
	stack := []int32{int32(src)}
	visited[src] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		vertices++
		edges += int64(g.OutDegree(int(v)))
		ts, _ := g.Neighbors(int(v))
		for _, to := range ts {
			if !visited[to] {
				visited[to] = true
				stack = append(stack, to)
			}
		}
	}
	return vertices, edges
}
