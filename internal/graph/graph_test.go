package graph

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"acic/internal/xrand"
)

func diamond() *Graph {
	// 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (2), 1 -> 3 (6), 2 -> 3 (3)
	return MustBuild(4, []Edge{
		{0, 1, 1}, {0, 2, 4}, {1, 2, 2}, {1, 3, 6}, {2, 3, 3},
	})
}

func TestBuildBasics(t *testing.T) {
	g := diamond()
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.OutDegree(0), g.OutDegree(3))
	}
	ts, ws := g.Neighbors(1)
	if len(ts) != 2 || len(ws) != 2 {
		t.Fatalf("Neighbors(1) lengths %d %d", len(ts), len(ws))
	}
}

func TestBuildUnsortedInput(t *testing.T) {
	// Same edges in scrambled order must produce the same adjacency.
	a := diamond()
	b := MustBuild(4, []Edge{
		{2, 3, 3}, {1, 3, 6}, {0, 2, 4}, {1, 2, 2}, {0, 1, 1},
	})
	for v := 0; v < 4; v++ {
		at, aw := a.Neighbors(v)
		bt, bw := b.Neighbors(v)
		if len(at) != len(bt) {
			t.Fatalf("vertex %d degree mismatch", v)
		}
		type pair struct {
			to int32
			w  float64
		}
		ap := make([]pair, len(at))
		bp := make([]pair, len(bt))
		for i := range at {
			ap[i] = pair{at[i], aw[i]}
			bp[i] = pair{bt[i], bw[i]}
		}
		less := func(s []pair) func(i, j int) bool {
			return func(i, j int) bool {
				if s[i].to != s[j].to {
					return s[i].to < s[j].to
				}
				return s[i].w < s[j].w
			}
		}
		sort.Slice(ap, less(ap))
		sort.Slice(bp, less(bp))
		for i := range ap {
			if ap[i] != bp[i] {
				t.Fatalf("vertex %d adjacency differs: %v vs %v", v, ap, bp)
			}
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		n    int
		e    []Edge
	}{
		{"negative n", -1, nil},
		{"source out of range", 2, []Edge{{2, 0, 1}}},
		{"negative source", 2, []Edge{{-1, 0, 1}}},
		{"target out of range", 2, []Edge{{0, 5, 1}}},
		{"negative weight", 2, []Edge{{0, 1, -2}}},
		{"nan weight", 2, []Edge{{0, 1, math.NaN()}}},
		{"inf weight", 2, []Edge{{0, 1, math.Inf(1)}}},
	}
	for _, c := range cases {
		if _, err := Build(c.n, c.e); err == nil {
			t.Errorf("%s: Build succeeded, want error", c.name)
		}
	}
}

func TestBuildEmptyGraph(t *testing.T) {
	g, err := Build(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	if g.MaxWeight() != 0 {
		t.Fatal("MaxWeight on empty graph")
	}
}

func TestSelfLoopsAndDuplicatesPreserved(t *testing.T) {
	g := MustBuild(2, []Edge{{0, 0, 1}, {0, 1, 2}, {0, 1, 2}})
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 (loops/dups preserved)", g.NumEdges())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := diamond()
	edges := g.Edges()
	g2 := MustBuild(4, edges)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("Edges() round trip lost edges")
	}
}

func TestMaxWeight(t *testing.T) {
	if w := diamond().MaxWeight(); w != 6 {
		t.Fatalf("MaxWeight = %v, want 6", w)
	}
}

func TestReverse(t *testing.T) {
	g := diamond()
	r := g.Reverse()
	if r.NumEdges() != g.NumEdges() {
		t.Fatal("Reverse changed edge count")
	}
	ts, ws := r.Neighbors(3)
	if len(ts) != 2 {
		t.Fatalf("in-degree of 3 should be 2, got %d", len(ts))
	}
	seen := map[int32]float64{}
	for i, to := range ts {
		seen[to] = ws[i]
	}
	if seen[1] != 6 || seen[2] != 3 {
		t.Fatalf("reversed weights wrong: %v", seen)
	}
}

func TestOutDegreeStats(t *testing.T) {
	g := diamond()
	s := g.OutDegreeStats()
	if s.Min != 0 || s.Max != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Mean-1.25) > 1e-9 {
		t.Fatalf("mean = %v, want 1.25", s.Mean)
	}
	empty, _ := Build(0, nil)
	if s := empty.OutDegreeStats(); s != (DegreeStats{}) {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestReachableFrom(t *testing.T) {
	// Two components: 0->1->2 and isolated 3->4.
	g := MustBuild(5, []Edge{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}})
	v, e := g.ReachableFrom(0)
	if v != 3 || e != 2 {
		t.Fatalf("ReachableFrom(0) = (%d,%d), want (3,2)", v, e)
	}
	v, e = g.ReachableFrom(3)
	if v != 2 || e != 1 {
		t.Fatalf("ReachableFrom(3) = (%d,%d), want (2,1)", v, e)
	}
	v, e = g.ReachableFrom(2)
	if v != 1 || e != 0 {
		t.Fatalf("ReachableFrom(2) = (%d,%d), want (1,0)", v, e)
	}
}

func TestEachEdgeVisitsAll(t *testing.T) {
	g := diamond()
	count := 0
	var wsum float64
	g.EachEdge(func(from, to int32, w float64) {
		count++
		wsum += w
	})
	if count != 5 || wsum != 16 {
		t.Fatalf("EachEdge visited %d edges, weight sum %v", count, wsum)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := diamond()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadCSV(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatal("CSV round trip changed shape")
	}
	want := g.Edges()
	got := g2.Edges()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("edge %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadCSVFormats(t *testing.T) {
	in := strings.Join([]string{
		"# comment line",
		"",
		"0,1,2.5",
		"1 2 3.5",   // whitespace-separated
		"2\t0",      // PaRMAT-style pair, weight defaults to 1
		"  0 , 2  ", // embedded spaces
	}, "\n")
	g, err := ReadCSV(strings.NewReader(in), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	ts, ws := g.Neighbors(2)
	if len(ts) != 1 || ts[0] != 0 || ws[0] != 1 {
		t.Fatalf("default weight not applied: %v %v", ts, ws)
	}
}

// TestReadCSVWindowsArtifacts pins tolerance for the byte-level noise real
// edge-list files carry: a UTF-8 byte-order mark (not unicode whitespace,
// so TrimSpace alone leaves it glued to the first vertex id), CRLF line
// endings, and trailing blank lines.
func TestReadCSVWindowsArtifacts(t *testing.T) {
	in := "\ufeff# header\r\n0,1,2.5\r\n1,2,3\r\n2,0,1\r\n\r\n  \r\n"
	g, err := ReadCSV(strings.NewReader(in), 3)
	if err != nil {
		t.Fatalf("BOM/CRLF input rejected: %v", err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	// The BOM is stripped only on line 1, where editors put it; mid-file
	// U+FEFF is genuine garbage and must still be rejected.
	if _, err := ReadCSV(strings.NewReader("0,1,1\n\ufeff1,2,1\n"), 3); err == nil {
		t.Error("mid-file BOM accepted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"0",        // too few fields
		"x,1,2",    // bad source
		"0,y,2",    // bad target
		"0,1,zz",   // bad weight
		"0,99,1",   // out of range for n=3
		"0,1,-1.5", // negative weight
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), 3); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", in)
		}
	}
}

// Property: for any valid edge list, CSR preserves the edge multiset.
func TestQuickBuildPreservesEdges(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%100) + 1
		m := int(mRaw % 2000)
		r := xrand.New(seed)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{
				From:   int32(r.Intn(n)),
				To:     int32(r.Intn(n)),
				Weight: float64(r.Intn(100)),
			}
		}
		g, err := Build(n, edges)
		if err != nil {
			return false
		}
		got := g.Edges()
		if len(got) != len(edges) {
			return false
		}
		key := func(e Edge) [3]float64 {
			return [3]float64{float64(e.From), float64(e.To), e.Weight}
		}
		a := make([][3]float64, m)
		b := make([][3]float64, m)
		for i := range edges {
			a[i] = key(edges[i])
			b[i] = key(got[i])
		}
		lessFn := func(s [][3]float64) func(i, j int) bool {
			return func(i, j int) bool {
				for k := 0; k < 3; k++ {
					if s[i][k] != s[j][k] {
						return s[i][k] < s[j][k]
					}
				}
				return false
			}
		}
		sort.Slice(a, lessFn(a))
		sort.Slice(b, lessFn(b))
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: sum of out-degrees equals the edge count.
func TestQuickDegreeSum(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%64) + 1
		m := int(mRaw % 1000)
		r := xrand.New(seed)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{From: int32(r.Intn(n)), To: int32(r.Intn(n)), Weight: 1}
		}
		g := MustBuild(n, edges)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.OutDegree(v)
		}
		return sum == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := xrand.New(1)
	const n = 1 << 14
	const m = 1 << 18
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{From: int32(r.Intn(n)), To: int32(r.Intn(n)), Weight: r.Float64()}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(n, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeighborsScan(b *testing.B) {
	r := xrand.New(1)
	const n = 1 << 14
	edges := make([]Edge, 1<<18)
	for i := range edges {
		edges[i] = Edge{From: int32(r.Intn(n)), To: int32(r.Intn(n)), Weight: 1}
	}
	g := MustBuild(n, edges)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for v := 0; v < n; v++ {
			_, ws := g.Neighbors(v)
			for _, w := range ws {
				sink += w
			}
		}
	}
	_ = sink
}
