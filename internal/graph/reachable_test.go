package graph

import "testing"

// TestReachableFromOutOfRange pins the bounds check on ReachableFrom's
// source argument: the query service passes through untrusted sources, and
// an out-of-range src used to panic on visited[src].
func TestReachableFromOutOfRange(t *testing.T) {
	g := diamond()
	for _, src := range []int{-1, -1 << 30, g.NumVertices(), 1 << 30} {
		v, e := g.ReachableFrom(src)
		if v != 0 || e != 0 {
			t.Errorf("ReachableFrom(%d) = (%d,%d), want (0,0)", src, v, e)
		}
	}
	// In-range behaviour is unchanged.
	v, e := g.ReachableFrom(0)
	if v != 4 || e != 5 {
		t.Errorf("ReachableFrom(0) = (%d,%d), want (4,5)", v, e)
	}
	// The empty graph has no valid source at all.
	empty := MustBuild(0, nil)
	if v, e := empty.ReachableFrom(0); v != 0 || e != 0 {
		t.Errorf("empty.ReachableFrom(0) = (%d,%d), want (0,0)", v, e)
	}
}
