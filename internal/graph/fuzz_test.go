package graph

// Fuzzing the edge-list interchange format: ReadCSV faces arbitrary bytes
// (the artifact pipeline feeds it PaRMAT output massaged by shell scripts),
// so it must reject malformed input with an error — never a panic — and any
// graph it does accept must survive a Write→Read round trip unchanged.
// Build's validation (vertex bounds, finite non-negative weights) means an
// accepted graph has only weights that "%g" formatting reproduces exactly.

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzGraphLoadCSV(f *testing.F) {
	f.Add("0,1,2.5\n1,2\n# comment\n\n2,0,0.001\n", 3)
	f.Add("0\t1\t1.5\n1 0 3", 2)
	f.Add("0,0,0\n", 1)
	f.Add("junk\n9,9,9\n-1,0\n0,1,NaN\n0,1,-2\n", 4)
	f.Add("0,1,1e300\n1,0,4.9e-324\n", 2)
	f.Add("0,1,2.5\r\n1,2,3\r\n", 3)            // CRLF line endings
	f.Add("\ufeff0,1,2.5\n1,0,3\n", 2)          // UTF-8 byte-order mark
	f.Add("0,1,2.5\n\n\n  \n\t\n", 2)           // trailing blank lines
	f.Add("\ufeff# header\r\n0,1,1\r\n\r\n", 2) // all three at once
	f.Fuzz(func(t *testing.T, data string, numVertices int) {
		// Bound the vertex count: Build allocates offsets proportional to
		// it, and the parser's behavior does not depend on the magnitude.
		if numVertices < 0 {
			numVertices = -numVertices % (1 << 16)
		}
		numVertices %= 1 << 16

		g, err := ReadCSV(strings.NewReader(data), numVertices)
		if err != nil {
			return // rejected cleanly; the property is "no panic"
		}

		var buf bytes.Buffer
		if err := WriteCSV(&buf, g); err != nil {
			t.Fatalf("WriteCSV failed on an accepted graph: %v", err)
		}
		g2, err := ReadCSV(&buf, g.NumVertices())
		if err != nil {
			t.Fatalf("round-trip rejected WriteCSV output: %v\n%s", err, buf.String())
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip changed shape: %d/%d vertices, %d/%d edges",
				g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
		}
		e1, e2 := g.Edges(), g2.Edges()
		for i := range e1 {
			if e1[i].From != e2[i].From || e1[i].To != e2[i].To || e1[i].Weight != e2[i].Weight {
				t.Fatalf("round-trip changed edge %d: %+v vs %+v", i, e1[i], e2[i])
			}
		}
	})
}
