package gen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformShape(t *testing.T) {
	g := Uniform(1000, 8000, Config{Seed: 1})
	if g.NumVertices() != 1000 || g.NumEdges() != 8000 {
		t.Fatalf("shape = (%d,%d)", g.NumVertices(), g.NumEdges())
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(100, 500, Config{Seed: 7})
	b := Uniform(100, 500, Config{Seed: 7})
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs with same seed", i)
		}
	}
	c := Uniform(100, 500, Config{Seed: 8})
	ce := c.Edges()
	diff := 0
	for i := range ae {
		if ae[i] != ce[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestUniformWeightsInRange(t *testing.T) {
	g := Uniform(100, 2000, Config{Seed: 3, MaxWeight: 10})
	g.EachEdge(func(_, _ int32, w float64) {
		if w < 1 || w >= 10 {
			t.Fatalf("weight %v out of [1,10)", w)
		}
	})
}

func TestUniformDegreeIsBalanced(t *testing.T) {
	// Uniform endpoints: max out-degree should stay near the mean (no
	// power law). With n=2048, m=16*n, mean degree is 16; the max of n
	// binomial(m, 1/n) draws is ~16+6*sqrt(16) with overwhelming
	// probability.
	g := Uniform(2048, 16*2048, Config{Seed: 5})
	s := g.OutDegreeStats()
	if s.Max > 60 {
		t.Errorf("uniform graph max degree %d looks power-law", s.Max)
	}
	if math.Abs(s.Mean-16) > 0.001 {
		t.Errorf("mean degree = %v, want 16", s.Mean)
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(10, 16, DefaultRMAT(), Config{Seed: 1})
	if g.NumVertices() != 1024 || g.NumEdges() != 16*1024 {
		t.Fatalf("shape = (%d,%d)", g.NumVertices(), g.NumEdges())
	}
}

func TestRMATPowerLaw(t *testing.T) {
	// The defining property the paper relies on (§IV-B): "a few vertices
	// have a very high degree and most vertices have a very low degree."
	g := RMAT(12, 16, DefaultRMAT(), Config{Seed: 2})
	s := g.OutDegreeStats()
	if s.Max < 10*int(s.Mean) {
		t.Errorf("RMAT max degree %d not ≫ mean %.1f — no power law", s.Max, s.Mean)
	}
	if s.P50 > int(s.Mean) {
		t.Errorf("RMAT median degree %d above mean %.1f — degree not skewed", s.P50, s.Mean)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 8, DefaultRMAT(), Config{Seed: 9})
	b := RMAT(8, 8, DefaultRMAT(), Config{Seed: 9})
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs with same seed", i)
		}
	}
}

func TestRMATVsUniformSkew(t *testing.T) {
	// Cross-check the paper's central dataset contrast at equal shape.
	rmat := RMAT(12, 16, DefaultRMAT(), Config{Seed: 4})
	unif := Uniform(1<<12, 16<<12, Config{Seed: 4})
	rs, us := rmat.OutDegreeStats(), unif.OutDegreeStats()
	if rs.Max <= 2*us.Max {
		t.Errorf("RMAT max degree %d not clearly above uniform max %d", rs.Max, us.Max)
	}
}

func TestErdosRenyiProperties(t *testing.T) {
	g := ErdosRenyi(500, 3000, Config{Seed: 1})
	if g.NumEdges() != 3000 {
		t.Fatalf("NumEdges = %d, want 3000", g.NumEdges())
	}
	seen := map[[2]int32]bool{}
	g.EachEdge(func(from, to int32, _ float64) {
		if from == to {
			t.Fatalf("self-loop %d", from)
		}
		k := [2]int32{from, to}
		if seen[k] {
			t.Fatalf("duplicate edge %v", k)
		}
		seen[k] = true
	})
}

func TestGridShapeAndDiameter(t *testing.T) {
	g := Grid(10, 20, Config{Seed: 1})
	if g.NumVertices() != 200 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	// Edges: horizontal 10*19, vertical 9*20, both directions.
	want := 2 * (10*19 + 9*20)
	if g.NumEdges() != want {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
	// Corner vertex 0 reaches everything (grid is strongly connected).
	v, _ := g.ReachableFrom(0)
	if v != 200 {
		t.Fatalf("grid not strongly connected: reach %d", v)
	}
}

func TestGridSymmetricWeights(t *testing.T) {
	g := Grid(5, 5, Config{Seed: 2})
	// Every edge must have a reverse edge with the same weight.
	type key struct{ a, b int32 }
	w := map[key]float64{}
	g.EachEdge(func(from, to int32, wt float64) { w[key{from, to}] = wt })
	g.EachEdge(func(from, to int32, wt float64) {
		if w[key{to, from}] != wt {
			t.Fatalf("asymmetric weight on %d<->%d", from, to)
		}
	})
}

func TestFixtures(t *testing.T) {
	p := Path(5)
	if p.NumEdges() != 4 || p.OutDegree(4) != 0 {
		t.Fatal("Path wrong")
	}
	s := Star(5)
	if s.OutDegree(0) != 4 || s.NumEdges() != 4 {
		t.Fatal("Star wrong")
	}
	c := Cycle(5)
	if c.NumEdges() != 5 || c.OutDegree(4) != 1 {
		t.Fatal("Cycle wrong")
	}
	k := Complete(4, Config{Seed: 1})
	if k.NumEdges() != 12 {
		t.Fatal("Complete wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.maxWeight() != 256 {
		t.Errorf("default MaxWeight = %v, want 256", c.maxWeight())
	}
	c.MaxWeight = 0.5 // below lower bound 1 → default
	if c.maxWeight() != 256 {
		t.Errorf("sub-1 MaxWeight not defaulted")
	}
}

// Property: every generator emits edges within vertex bounds and weights
// within [1, MaxWeight).
func TestQuickGeneratorsValid(t *testing.T) {
	f := func(seed uint64, sRaw uint8) bool {
		scale := int(sRaw%5) + 5 // 5..9
		cfg := Config{Seed: seed, MaxWeight: 64}
		graphs := []interface {
			NumVertices() int
			NumEdges() int
			EachEdge(func(int32, int32, float64))
		}{
			RMAT(scale, 4, DefaultRMAT(), cfg),
			Uniform(1<<scale, 4<<scale, cfg),
			Grid(1<<(scale/2), 1<<(scale/2), cfg),
		}
		for _, g := range graphs {
			n := int32(g.NumVertices())
			ok := true
			g.EachEdge(func(from, to int32, w float64) {
				if from < 0 || from >= n || to < 0 || to >= n || w < 1 || w >= 64 {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRMATScale14(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RMAT(14, 16, DefaultRMAT(), Config{Seed: uint64(i)})
	}
}

func BenchmarkUniformScale14(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Uniform(1<<14, 16<<14, Config{Seed: uint64(i)})
	}
}
