// Package gen generates the input graphs used in the paper's evaluation
// (§IV-B) plus the high-diameter road-style graphs its future-work section
// motivates (§V), and small deterministic fixtures for tests.
//
// Two generator families reproduce the paper's datasets:
//
//   - RMAT: the recursive-matrix scale-free generator of Chakrabarti, Zhan
//     and Faloutsos, standing in for the PaRMAT artifact (A3). The paper
//     uses |V| = 2^26, |E| = 2^30, i.e. edge factor 16; scale is a
//     parameter here so laptop-sized reproductions can pick 2^14..2^18.
//   - Uniform: "a random, low diameter graph where for each edge, the
//     distance, origin, and destination of the edge is randomly chosen"
//     — every endpoint uniform over V.
//
// All weights are drawn uniformly from [1, MaxWeight); the paper's weight
// scheme is unspecified beyond "weighted edges", and uniform weights are
// what the Graph500 SSSP comparator uses.
package gen

import (
	"acic/internal/graph"
	"acic/internal/xrand"
)

// Config holds parameters shared by the random generators.
type Config struct {
	// Seed drives both structure and weights; the paper re-seeds every
	// trial (§IV-C).
	Seed uint64
	// MaxWeight is the exclusive upper bound for uniform edge weights; the
	// lower bound is 1. Zero means the default of 256.
	MaxWeight float64
}

func (c Config) maxWeight() float64 {
	if c.MaxWeight <= 1 {
		return 256
	}
	return c.MaxWeight
}

func (c Config) weight(r *xrand.Rand) float64 {
	return r.Range(1, c.maxWeight())
}

// Uniform generates the paper's "random, low diameter" graph: numEdges
// edges whose origins and destinations are independently uniform over
// [0, numVertices). Self-loops and duplicates may occur, as in the paper's
// generator invoked with `1` (generate mode) in the artifact.
func Uniform(numVertices, numEdges int, cfg Config) *graph.Graph {
	r := xrand.New(cfg.Seed)
	edges := make([]graph.Edge, numEdges)
	for i := range edges {
		edges[i] = graph.Edge{
			From:   int32(r.Intn(numVertices)),
			To:     int32(r.Intn(numVertices)),
			Weight: cfg.weight(r),
		}
	}
	return graph.MustBuild(numVertices, edges)
}

// RMATParams are the recursive-matrix quadrant probabilities. They must sum
// to approximately 1.
type RMATParams struct {
	A, B, C, D float64
}

// DefaultRMAT returns the Graph500 parameters (a,b,c,d) = (.57,.19,.19,.05),
// which PaRMAT also defaults to.
func DefaultRMAT() RMATParams { return RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05} }

// RMAT generates a scale-free graph with 2^scale vertices and
// edgeFactor * 2^scale edges using the recursive matrix method: each edge
// picks a quadrant of the adjacency matrix with probabilities (A,B,C,D)
// recursively, scale times, with ±10% noise on the parameters per level to
// smooth the degree staircase (standard PaRMAT behaviour).
func RMAT(scale, edgeFactor int, p RMATParams, cfg Config) *graph.Graph {
	n := 1 << scale
	m := edgeFactor * n
	r := xrand.New(cfg.Seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		from, to := rmatEdge(r, scale, p)
		edges[i] = graph.Edge{From: from, To: to, Weight: cfg.weight(r)}
	}
	return graph.MustBuild(n, edges)
}

func rmatEdge(r *xrand.Rand, scale int, p RMATParams) (from, to int32) {
	var u, v int32
	a, b, c := p.A, p.B, p.C
	for level := 0; level < scale; level++ {
		u <<= 1
		v <<= 1
		x := r.Float64()
		switch {
		case x < a:
			// top-left quadrant: no bits set
		case x < a+b:
			v |= 1
		case x < a+b+c:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
		// Per-level noise keeps the degree distribution smooth; resample
		// the quadrant probabilities within ±10% and renormalize.
		na := a * (0.9 + 0.2*r.Float64())
		nb := b * (0.9 + 0.2*r.Float64())
		nc := c * (0.9 + 0.2*r.Float64())
		nd := (1 - a - b - c) * (0.9 + 0.2*r.Float64())
		s := na + nb + nc + nd
		a, b, c = na/s, nb/s, nc/s
	}
	return u, v
}

// ErdosRenyi generates G(n, m): m distinct edges sampled without
// self-loops, each endpoint pair uniform. Used by the connected-components
// extension (§V cites Erdős–Rényi).
func ErdosRenyi(numVertices, numEdges int, cfg Config) *graph.Graph {
	r := xrand.New(cfg.Seed)
	seen := make(map[int64]struct{}, numEdges)
	edges := make([]graph.Edge, 0, numEdges)
	maxAttempts := numEdges * 20
	for len(edges) < numEdges && maxAttempts > 0 {
		maxAttempts--
		from := int32(r.Intn(numVertices))
		to := int32(r.Intn(numVertices))
		if from == to {
			continue
		}
		key := int64(from)<<32 | int64(uint32(to))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, graph.Edge{From: from, To: to, Weight: cfg.weight(r)})
	}
	return graph.MustBuild(numVertices, edges)
}

// Grid generates a rows×cols 4-neighbor grid with bidirectional edges — the
// road-network stand-in for the GAP Road graph named in §V. Its diameter is
// rows+cols, orders of magnitude higher than RMAT or Uniform graphs of the
// same size, which is exactly the regime where synchronous algorithms pay
// one barrier per hop.
func Grid(rows, cols int, cfg Config) *graph.Graph {
	r := xrand.New(cfg.Seed)
	n := rows * cols
	edges := make([]graph.Edge, 0, 4*n)
	id := func(rr, cc int) int32 { return int32(rr*cols + cc) }
	for rr := 0; rr < rows; rr++ {
		for cc := 0; cc < cols; cc++ {
			if cc+1 < cols {
				w := cfg.weight(r)
				edges = append(edges,
					graph.Edge{From: id(rr, cc), To: id(rr, cc+1), Weight: w},
					graph.Edge{From: id(rr, cc+1), To: id(rr, cc), Weight: w})
			}
			if rr+1 < rows {
				w := cfg.weight(r)
				edges = append(edges,
					graph.Edge{From: id(rr, cc), To: id(rr+1, cc), Weight: w},
					graph.Edge{From: id(rr+1, cc), To: id(rr, cc), Weight: w})
			}
		}
	}
	return graph.MustBuild(n, edges)
}

// Path returns the directed path 0 -> 1 -> ... -> n-1 with unit weights, a
// worst-case-diameter fixture for termination tests.
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32(i + 1), Weight: 1})
	}
	return graph.MustBuild(n, edges)
}

// Star returns a star with center 0 and unit-weight spokes to 1..n-1, the
// maximum-fan-out fixture.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{From: 0, To: int32(i), Weight: 1})
	}
	return graph.MustBuild(n, edges)
}

// Cycle returns the directed cycle over n vertices with unit weights.
func Cycle(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32((i + 1) % n), Weight: 1})
	}
	return graph.MustBuild(n, edges)
}

// Complete returns the complete directed graph on n vertices (no loops)
// with weights drawn from cfg.
func Complete(n int, cfg Config) *graph.Graph {
	r := xrand.New(cfg.Seed)
	edges := make([]graph.Edge, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				edges = append(edges, graph.Edge{From: int32(i), To: int32(j), Weight: cfg.weight(r)})
			}
		}
	}
	return graph.MustBuild(n, edges)
}
