// Package dynamic turns the repository's immutable CSR graphs into living
// networks: a batched mutation API (edge inserts, deletes, weight changes)
// over a mutable adjacency representation, with monotonically increasing
// graph epochs, plus the incremental SSSP repair that makes mutations cheap
// to serve (see repair.go).
//
// The design follows the incremental/decremental split of the dynamic-SSSP
// literature (SSSP-Del, Javanrood & Ripeanu, arXiv:2508.14319; Kyng et al.,
// arXiv:2110.11712): an insert or weight decrease can only create shorter
// paths, so it is repaired by re-seeding relaxations from the affected
// endpoints; a delete or weight increase can only invalidate the
// shortest-path subtree hanging off the mutated edge, so it is repaired by
// discarding that subtree and re-relaxing from its frontier. Both repairs
// ride the same label-correcting machinery (a seeded Dijkstra pass) — the
// dead-update tolerance of the ACIC core is what makes the re-seeded
// updates safe to inject at serving time.
//
// A Graph is NOT safe for concurrent use: callers (internal/engine) must
// serialize Apply/Repair/Snapshot. Readers of CSR snapshots are unaffected
// by later mutations — Snapshot returns a fresh immutable *graph.Graph.
package dynamic

import (
	"errors"
	"fmt"
	"math"

	"acic/internal/graph"
)

// Op is a mutation kind.
type Op uint8

const (
	// Insert adds a directed edge From→To with weight Weight. Parallel
	// edges are allowed, matching graph.Build.
	Insert Op = iota
	// Delete removes one existing edge From→To. With parallel edges the
	// first (lowest-slot) occurrence is removed. Deleting a missing edge
	// fails the batch.
	Delete
	// SetWeight changes the weight of one existing edge From→To (first
	// occurrence) to Weight. Reweighting a missing edge fails the batch.
	SetWeight
)

// String returns the wire name used by the HTTP mutation API.
func (o Op) String() string {
	switch o {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case SetWeight:
		return "set_weight"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp maps a wire name back to an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "insert":
		return Insert, nil
	case "delete":
		return Delete, nil
	case "set_weight", "setweight", "set-weight":
		return SetWeight, nil
	}
	return 0, fmt.Errorf("dynamic: unknown mutation op %q", s)
}

// Mutation is one edge mutation. Weight is ignored by Delete.
type Mutation struct {
	Op     Op
	From   int32
	To     int32
	Weight float64
}

func (m Mutation) String() string {
	if m.Op == Delete {
		return fmt.Sprintf("%s %d->%d", m.Op, m.From, m.To)
	}
	return fmt.Sprintf("%s %d->%d w=%g", m.Op, m.From, m.To, m.Weight)
}

// ErrEdgeNotFound is returned (wrapped) when a Delete or SetWeight names an
// edge the graph does not contain.
var ErrEdgeNotFound = errors.New("dynamic: edge not found")

// half is one directed half-edge as stored in an adjacency list.
type half struct {
	v int32
	w float64
}

// Graph is a mutable directed weighted graph with dense vertex ids and a
// batch epoch counter. Construct with FromCSR (or New for an edgeless
// graph); mutate with Apply. Forward and reverse adjacency are both
// maintained — the delete repair needs in-edges to re-relax an invalidated
// subtree from its frontier.
type Graph struct {
	fwd      [][]half
	rev      [][]half
	numEdges int
	epoch    uint64
}

// New returns an edgeless dynamic graph with n vertices at epoch 0.
func New(n int) *Graph {
	return &Graph{fwd: make([][]half, n), rev: make([][]half, n)}
}

// FromCSR copies a CSR graph into mutable adjacency form at epoch 0. The
// CSR graph is not retained.
func FromCSR(g *graph.Graph) *Graph {
	dg := New(g.NumVertices())
	g.EachEdge(func(from, to int32, w float64) {
		dg.fwd[from] = append(dg.fwd[from], half{v: to, w: w})
		dg.rev[to] = append(dg.rev[to], half{v: from, w: w})
	})
	dg.numEdges = g.NumEdges()
	return dg
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.fwd) }

// NumEdges returns |E| under the current epoch.
func (g *Graph) NumEdges() int { return g.numEdges }

// Epoch returns the number of successfully applied mutation batches.
// Every successful Apply increments it by exactly one; a failed Apply
// leaves it (and the graph) unchanged.
func (g *Graph) Epoch() uint64 { return g.epoch }

// Snapshot builds a fresh immutable CSR graph of the current state. The
// snapshot shares nothing with the dynamic graph, so later mutations never
// touch it — internal/engine hands snapshots to concurrent queries.
func (g *Graph) Snapshot() *graph.Graph {
	edges := make([]graph.Edge, 0, g.numEdges)
	for v, hs := range g.fwd {
		for _, h := range hs {
			edges = append(edges, graph.Edge{From: int32(v), To: h.v, Weight: h.w})
		}
	}
	return graph.MustBuild(len(g.fwd), edges)
}

// Delta is the classified record of one applied batch, consumed by Repair.
// Decreased lists edges that were inserted or whose weight decreased
// (repair re-seeds forward relaxations from them); Increased lists edges
// that were deleted or whose weight increased, carrying the OLD weight
// (repair invalidates the shortest-path subtree hanging off them).
type Delta struct {
	// Epoch is the graph epoch after the batch.
	Epoch     uint64
	Decreased []graph.Edge
	Increased []graph.Edge
	// Inserted/Deleted/Reweighted count the batch by op.
	Inserted, Deleted, Reweighted int
}

// Empty reports whether the delta requires no repair work.
func (d *Delta) Empty() bool { return len(d.Decreased) == 0 && len(d.Increased) == 0 }

// inverse is one rollback record for Apply. Every inverse identifies its
// edge by weight, never by slot: an intervening Delete's swapRemove reorders
// adjacency lists, so "first from→to occurrence" can point at a different
// parallel edge by rollback time. For a SetWeight inverse, matchW is the
// weight the mutation wrote (what the edge holds now) and w is the weight to
// restore; for Insert/Delete inverses, w alone identifies the edge.
type inverse struct {
	op       Op
	from, to int32
	w        float64
	matchW   float64
}

// Apply executes one mutation batch atomically: either every mutation is
// applied, the epoch advances by exactly one, and the classified Delta is
// returned — or the first invalid mutation rolls the already-applied prefix
// back and the graph (and epoch) are unchanged. Mutations within a batch
// apply in order, so a batch may insert an edge and then delete it.
func (g *Graph) Apply(batch []Mutation) (*Delta, error) {
	d := &Delta{}
	applied := make([]inverse, 0, len(batch)) // inverse ops, for rollback
	rollback := func() {
		for i := len(applied) - 1; i >= 0; i-- {
			inv := applied[i]
			switch inv.op {
			case Insert:
				g.insertEdge(inv.from, inv.to, inv.w)
			case Delete:
				if !g.removeEdgeW(inv.from, inv.to, inv.w) {
					panic("dynamic: rollback lost an edge") // unreachable: inverses are weight-exact
				}
			case SetWeight:
				if !g.setWeightW(inv.from, inv.to, inv.matchW, inv.w) {
					panic("dynamic: rollback lost an edge")
				}
			}
		}
	}
	n := len(g.fwd)
	for i, m := range batch {
		if m.From < 0 || int(m.From) >= n || m.To < 0 || int(m.To) >= n {
			rollback()
			return nil, fmt.Errorf("dynamic: batch[%d] %s: vertex out of range [0,%d)", i, m, n)
		}
		switch m.Op {
		case Insert:
			if m.Weight < 0 || math.IsNaN(m.Weight) || math.IsInf(m.Weight, 0) {
				rollback()
				return nil, fmt.Errorf("dynamic: batch[%d] %s: bad weight", i, m)
			}
			g.insertEdge(m.From, m.To, m.Weight)
			applied = append(applied, inverse{op: Delete, from: m.From, to: m.To, w: m.Weight})
			d.Inserted++
			d.Decreased = append(d.Decreased, graph.Edge{From: m.From, To: m.To, Weight: m.Weight})
		case Delete:
			w, ok := g.removeEdge(m.From, m.To)
			if !ok {
				rollback()
				return nil, fmt.Errorf("%w: batch[%d] %s", ErrEdgeNotFound, i, m)
			}
			applied = append(applied, inverse{op: Insert, from: m.From, to: m.To, w: w})
			d.Deleted++
			d.Increased = append(d.Increased, graph.Edge{From: m.From, To: m.To, Weight: w})
		case SetWeight:
			if m.Weight < 0 || math.IsNaN(m.Weight) || math.IsInf(m.Weight, 0) {
				rollback()
				return nil, fmt.Errorf("dynamic: batch[%d] %s: bad weight", i, m)
			}
			old, ok := g.setWeight(m.From, m.To, m.Weight)
			if !ok {
				rollback()
				return nil, fmt.Errorf("%w: batch[%d] %s", ErrEdgeNotFound, i, m)
			}
			applied = append(applied, inverse{op: SetWeight, from: m.From, to: m.To, w: old, matchW: m.Weight})
			d.Reweighted++
			if m.Weight < old {
				d.Decreased = append(d.Decreased, graph.Edge{From: m.From, To: m.To, Weight: m.Weight})
			} else if m.Weight > old {
				d.Increased = append(d.Increased, graph.Edge{From: m.From, To: m.To, Weight: old})
			}
		default:
			rollback()
			return nil, fmt.Errorf("dynamic: batch[%d]: unknown op %d", i, m.Op)
		}
	}
	g.epoch++
	d.Epoch = g.epoch
	return d, nil
}

// insertEdge appends From→To to both adjacency lists.
func (g *Graph) insertEdge(from, to int32, w float64) {
	g.fwd[from] = append(g.fwd[from], half{v: to, w: w})
	g.rev[to] = append(g.rev[to], half{v: from, w: w})
	g.numEdges++
}

// removeEdge removes the first from→to occurrence from the forward list and
// its weight-matched partner from the reverse list (parallel edges may
// differ only by weight, so the reverse removal must match the weight of
// the forward edge actually removed).
func (g *Graph) removeEdge(from, to int32) (w float64, ok bool) {
	for i, h := range g.fwd[from] {
		if h.v == to {
			g.fwd[from] = swapRemove(g.fwd[from], i)
			if !removeHalf(&g.rev[to], from, h.w) {
				panic("dynamic: fwd/rev adjacency out of sync")
			}
			g.numEdges--
			return h.w, true
		}
	}
	return 0, false
}

// removeEdgeW removes one from→to occurrence with exactly weight w (the
// rollback inverse of Insert).
func (g *Graph) removeEdgeW(from, to int32, w float64) bool {
	for i, h := range g.fwd[from] {
		if h.v == to && h.w == w {
			g.fwd[from] = swapRemove(g.fwd[from], i)
			if !removeHalf(&g.rev[to], from, w) {
				panic("dynamic: fwd/rev adjacency out of sync")
			}
			g.numEdges--
			return true
		}
	}
	return false
}

// setWeight rewrites the weight of the first from→to occurrence (and its
// weight-matched reverse partner), returning the old weight.
func (g *Graph) setWeight(from, to int32, w float64) (old float64, ok bool) {
	for i, h := range g.fwd[from] {
		if h.v == to {
			old = h.w
			g.fwd[from][i].w = w
			for j := range g.rev[to] {
				if g.rev[to][j].v == from && g.rev[to][j].w == old {
					g.rev[to][j].w = w
					return old, true
				}
			}
			panic("dynamic: fwd/rev adjacency out of sync")
		}
	}
	return 0, false
}

// setWeightW rewrites the weight of the first from→to occurrence whose
// current weight is exactly matchW (and its weight-matched reverse partner)
// to w. This is the rollback inverse of SetWeight: matching the edge by the
// weight the forward mutation wrote keeps rollback correct for parallel
// edges even after an intervening Delete's swapRemove reordered the list.
func (g *Graph) setWeightW(from, to int32, matchW, w float64) bool {
	for i, h := range g.fwd[from] {
		if h.v == to && h.w == matchW {
			g.fwd[from][i].w = w
			for j := range g.rev[to] {
				if g.rev[to][j].v == from && g.rev[to][j].w == matchW {
					g.rev[to][j].w = w
					return true
				}
			}
			panic("dynamic: fwd/rev adjacency out of sync")
		}
	}
	return false
}

func removeHalf(hs *[]half, v int32, w float64) bool {
	for i, h := range *hs {
		if h.v == v && h.w == w {
			*hs = swapRemove(*hs, i)
			return true
		}
	}
	return false
}

func swapRemove(hs []half, i int) []half {
	hs[i] = hs[len(hs)-1]
	return hs[:len(hs)-1]
}
