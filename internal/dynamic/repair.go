package dynamic

// Incremental SSSP repair. Given a distance vector and shortest-path tree
// that were exact for the graph before a mutation batch, Repair makes them
// exact for the graph after it, touching only the affected region:
//
//   - Increases (deletes, weight increases): a vertex whose tree parent is
//     the mutated edge's source may have lost its path. The whole subtree
//     below each such vertex is invalidated (distances reset to +Inf), then
//     re-labeled by a Dijkstra pass seeded from the frontier — every edge
//     entering the invalidated set from an intact vertex. Intact vertices
//     keep exact distances: a delete cannot shorten any path, and their
//     recorded tree path survives, so their old distance is still both
//     achievable and optimal.
//
//   - Decreases (inserts, weight decreases): the new edge (u,v,w) is exact
//     at v if dist[u]+w improves it; the improvement cascades through v's
//     out-edges. These seeds join the same Dijkstra pass.
//
// The pass is plain label-setting over current labels: pop the minimum,
// skip stale entries, relax out-edges. With non-negative weights every
// vertex it settles is final, and vertices it never touches were already
// final — the classical Ramalingam–Reps argument specialized to batches.

import (
	"fmt"
	"math"

	"acic/internal/pq"
)

// RepairStats describes one Repair call's work, the incremental-vs-full
// bookkeeping the churn bench reports.
type RepairStats struct {
	// Invalidated is the number of subtree vertices whose labels were
	// discarded by the increase phase.
	Invalidated int
	// Seeds is the number of heap seeds planted (frontier edges plus
	// improving decreases).
	Seeds int
	// Settled is the number of vertices finalized by the repair pass.
	Settled int
	// Relaxations counts edges scanned during the pass.
	Relaxations int64
}

// Repair updates dist/parent in place from the pre-batch to the post-batch
// shortest-path solution for source. The vectors must be exact for the
// graph state immediately before the batch described by d was applied, and
// g must already be in the post-batch state (Repair is called with the
// Delta returned by Apply). len(dist) and len(parent) must equal
// NumVertices.
func (g *Graph) Repair(source int, dist []float64, parent []int32, d *Delta) RepairStats {
	var st RepairStats
	n := len(g.fwd)
	if d.Empty() || n == 0 {
		return st
	}

	h := pq.NewIndexedHeap(n)

	// Increase phase: collect the roots that may have lost their path —
	// any v whose tree parent is the source of a deleted or increased
	// edge. (With parallel edges the tree may actually use a surviving
	// parallel edge; invalidating anyway is conservative and re-derives
	// the same label.) Then close over the parent tree and discard.
	var roots []int32
	for _, e := range d.Increased {
		if parent[e.To] == e.From {
			roots = append(roots, e.To)
		}
	}
	if len(roots) > 0 {
		invalid := g.invalidateSubtrees(roots, dist, parent)
		st.Invalidated = len(invalid)
		// Frontier seeding: every in-edge of an invalidated vertex from an
		// intact, reachable vertex proposes a label.
		for _, v := range invalid {
			for _, in := range g.rev[v] {
				u := in.v
				if math.IsInf(dist[u], 1) {
					continue // invalidated or unreachable
				}
				if nd := dist[u] + in.w; nd < dist[v] {
					dist[v] = nd
					parent[v] = u
					h.PushOrDecrease(int(v), nd)
					st.Seeds++
				}
			}
		}
	}

	// Decrease phase: each inserted or lightened edge proposes its head's
	// label directly. The proposal is re-read from the post-batch graph —
	// never from the mutation's recorded weight — because a later mutation
	// in the same batch may have deleted or re-raised the edge; seeding
	// with the current cheapest parallel edge is always sound. A decrease
	// whose tail is itself invalidated needs no seed — the tail's
	// out-edges are relaxed if the pass ever settles it.
	for _, e := range d.Decreased {
		if math.IsInf(dist[e.From], 1) {
			continue
		}
		w, ok := g.minWeight(e.From, e.To)
		if !ok {
			continue // deleted again later in the batch
		}
		if nd := dist[e.From] + w; nd < dist[e.To] {
			dist[e.To] = nd
			parent[e.To] = e.From
			h.PushOrDecrease(int(e.To), nd)
			st.Seeds++
		}
	}

	// The repair pass: Dijkstra restricted to the affected region.
	for h.Len() > 0 {
		v, dv := h.PopMin()
		if dv > dist[v] {
			continue // superseded while queued
		}
		st.Settled++
		for _, out := range g.fwd[v] {
			st.Relaxations++
			if nd := dv + out.w; nd < dist[out.v] {
				dist[out.v] = nd
				parent[out.v] = int32(v)
				h.PushOrDecrease(int(out.v), nd)
			}
		}
	}
	return st
}

// minWeight returns the smallest weight among the current from→to parallel
// edges, and whether any exists.
func (g *Graph) minWeight(from, to int32) (float64, bool) {
	w, ok := math.Inf(1), false
	for _, h := range g.fwd[from] {
		if h.v == to && h.w < w {
			w, ok = h.w, true
		}
	}
	return w, ok
}

// invalidateSubtrees marks every vertex in the parent subtrees rooted at
// roots as unlabeled (dist +Inf, parent -1) and returns the affected
// vertices. The children index is rebuilt per call — O(|V|) — which keeps
// Repair allocation-simple; the subtree walk itself is proportional to the
// damage.
func (g *Graph) invalidateSubtrees(roots []int32, dist []float64, parent []int32) []int32 {
	n := len(g.fwd)
	// Bucketed child index over the parent array: head/next linked lists.
	head := make([]int32, n)
	next := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	for v := 0; v < n; v++ {
		if p := parent[v]; p >= 0 {
			next[v] = head[p]
			head[p] = int32(v)
		}
	}
	var invalid []int32
	stack := make([]int32, 0, len(roots))
	for _, r := range roots {
		if !math.IsInf(dist[r], 1) {
			dist[r] = math.Inf(1)
			parent[r] = -1
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		invalid = append(invalid, v)
		for c := head[v]; c >= 0; c = next[c] {
			if parent[c] == v && !math.IsInf(dist[c], 1) {
				dist[c] = math.Inf(1)
				parent[c] = -1
				stack = append(stack, c)
			}
		}
	}
	return invalid
}

// SSSP computes the full single-source solution over the current adjacency
// by plain Dijkstra — the from-scratch baseline the churn bench compares
// Repair against, and the seed vector for freshly tracked sources. It is
// equivalent to seq.Dijkstra over Snapshot() without building the CSR.
func (g *Graph) SSSP(source int) (dist []float64, parent []int32) {
	n := len(g.fwd)
	dist = make([]float64, n)
	parent = make([]int32, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	if source < 0 || source >= n {
		return dist, parent
	}
	dist[source] = 0
	h := pq.NewIndexedHeap(n)
	h.Push(source, 0)
	for h.Len() > 0 {
		v, dv := h.PopMin()
		if dv > dist[v] {
			continue
		}
		for _, out := range g.fwd[v] {
			if nd := dv + out.w; nd < dist[out.v] {
				dist[out.v] = nd
				parent[out.v] = int32(v)
				h.PushOrDecrease(int(out.v), nd)
			}
		}
	}
	return dist, parent
}

// VerifyTree checks that (dist, parent) is a valid shortest-path certificate
// for source over g's current state, given that dist is already known to
// match the true distances: the source is labeled 0 with parent -1,
// unreachable vertices are unlabeled, and every other reachable vertex's
// parent edge exists in the graph and is tight (dist[parent]+w == dist[v]
// within float tolerance). The churn oracle pairs this with an exact
// distance comparison against a sequential recompute — distances pin the
// values, VerifyTree pins that the repaired tree actually witnesses them
// (parents may legitimately differ from the oracle's on ties).
func VerifyTree(g *Graph, source int, dist []float64, parent []int32) error {
	n := len(g.fwd)
	if len(dist) != n || len(parent) != n {
		return fmt.Errorf("dynamic: verify: vector length %d/%d, want %d", len(dist), len(parent), n)
	}
	if n == 0 {
		return nil
	}
	if dist[source] != 0 || parent[source] != -1 {
		return fmt.Errorf("dynamic: verify: source %d has dist=%g parent=%d", source, dist[source], parent[source])
	}
	for v := 0; v < n; v++ {
		if v == source {
			continue
		}
		if math.IsInf(dist[v], 1) {
			if parent[v] != -1 {
				return fmt.Errorf("dynamic: verify: unreachable vertex %d has parent %d", v, parent[v])
			}
			continue
		}
		p := parent[v]
		if p < 0 || int(p) >= n {
			return fmt.Errorf("dynamic: verify: reachable vertex %d has parent %d", v, p)
		}
		if math.IsInf(dist[p], 1) {
			return fmt.Errorf("dynamic: verify: vertex %d hangs off unreachable parent %d", v, p)
		}
		if !g.hasTightEdge(p, int32(v), dist[p], dist[v]) {
			return fmt.Errorf("dynamic: verify: no tight edge %d->%d (dist %g -> %g)", p, v, dist[p], dist[v])
		}
	}
	return nil
}

// hasTightEdge reports whether some from→to edge satisfies
// dfrom + w == dto within relative float tolerance.
func (g *Graph) hasTightEdge(from, to int32, dfrom, dto float64) bool {
	for _, h := range g.fwd[from] {
		if h.v != to {
			continue
		}
		sum := dfrom + h.w
		diff := math.Abs(sum - dto)
		scale := math.Max(1, math.Max(math.Abs(sum), math.Abs(dto)))
		if diff/scale <= 1e-9 {
			return true
		}
	}
	return false
}
