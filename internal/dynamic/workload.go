package dynamic

// BatchGen draws seeded random mutation batches that are always valid
// against the evolving graph: deletes and reweights target edges that
// exist, inserts draw uniform endpoints and weights. The stress churn
// workload, the dynamic property tests, and the churn bench all share it,
// so a single (seed, batch-size) pair reproduces one mutation stream
// everywhere.

import (
	"acic/internal/xrand"
)

// BatchGen generates one deterministic mutation stream. It tracks the
// (from, to) pairs present in the graph — the bookkeeping that keeps every
// generated Delete/SetWeight resolvable — and must therefore see every
// batch it generates applied, in order.
type BatchGen struct {
	r     *xrand.Rand
	pairs []pair // one entry per live edge (weights may be stale; pairs are exact)
	n     int
	maxW  float64
}

type pair struct{ from, to int32 }

// NewBatchGen builds a generator over g's current edge set, drawing from r.
// maxW bounds inserted/reweighted edge weights; <= 0 selects 100.
func NewBatchGen(g *Graph, r *xrand.Rand, maxW float64) *BatchGen {
	if maxW <= 0 {
		maxW = 100
	}
	b := &BatchGen{r: r, n: g.NumVertices(), maxW: maxW, pairs: make([]pair, 0, g.NumEdges())}
	for v, hs := range g.fwd {
		for _, h := range hs {
			b.pairs = append(b.pairs, pair{from: int32(v), to: h.v})
		}
	}
	return b
}

// Next generates the next batch of size mutations: roughly 40% inserts,
// 30% deletes, 30% weight changes (all inserts when the graph has run out
// of edges). The batch is valid for sequential application to the graph
// state the generator has been tracking.
func (b *BatchGen) Next(size int) []Mutation {
	batch := make([]Mutation, 0, size)
	for i := 0; i < size; i++ {
		roll := b.r.Float64()
		switch {
		case roll < 0.4 || len(b.pairs) == 0:
			m := Mutation{
				Op:     Insert,
				From:   int32(b.r.Intn(b.n)),
				To:     int32(b.r.Intn(b.n)),
				Weight: b.r.Range(1, b.maxW),
			}
			b.pairs = append(b.pairs, pair{from: m.From, to: m.To})
			batch = append(batch, m)
		case roll < 0.7:
			j := b.r.Intn(len(b.pairs))
			p := b.pairs[j]
			b.pairs[j] = b.pairs[len(b.pairs)-1]
			b.pairs = b.pairs[:len(b.pairs)-1]
			batch = append(batch, Mutation{Op: Delete, From: p.from, To: p.to})
		default:
			p := b.pairs[b.r.Intn(len(b.pairs))]
			batch = append(batch, Mutation{
				Op:     SetWeight,
				From:   p.from,
				To:     p.to,
				Weight: b.r.Range(1, b.maxW),
			})
		}
	}
	return batch
}

// Edges returns the number of live edges the generator is tracking.
func (b *BatchGen) Edges() int { return len(b.pairs) }
