package dynamic

import (
	"errors"
	"math"
	"sort"
	"testing"

	"acic/internal/graph"
	"acic/internal/seq"
)

// diamond builds the 6-vertex test graph
//
//	0 →1→ 1 →1→ 2 →1→ 3
//	0 →10→ 4 →1→ 3,  3 →1→ 5
func diamond() *graph.Graph {
	return graph.MustBuild(6, []graph.Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 1},
		{From: 2, To: 3, Weight: 1},
		{From: 0, To: 4, Weight: 10},
		{From: 4, To: 3, Weight: 1},
		{From: 3, To: 5, Weight: 1},
	})
}

// sortedEdges canonicalizes an edge multiset for comparison.
func sortedEdges(g *graph.Graph) []graph.Edge {
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Weight < b.Weight
	})
	return es
}

func edgesEqual(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	ea, eb := sortedEdges(a), sortedEdges(b)
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestFromCSRSnapshotRoundTrip(t *testing.T) {
	g := diamond()
	dg := FromCSR(g)
	if dg.NumVertices() != 6 || dg.NumEdges() != 6 || dg.Epoch() != 0 {
		t.Fatalf("shape: |V|=%d |E|=%d epoch=%d", dg.NumVertices(), dg.NumEdges(), dg.Epoch())
	}
	edgesEqual(t, g, dg.Snapshot())
}

func TestApplyClassifiesAndCounts(t *testing.T) {
	dg := FromCSR(diamond())
	d, err := dg.Apply([]Mutation{
		{Op: Insert, From: 0, To: 3, Weight: 0.5},
		{Op: Delete, From: 1, To: 2},
		{Op: SetWeight, From: 0, To: 4, Weight: 2},  // decrease (10 → 2)
		{Op: SetWeight, From: 3, To: 5, Weight: 7},  // increase (1 → 7)
		{Op: SetWeight, From: 2, To: 3, Weight: 1},  // no-op reweight
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch != 1 || dg.Epoch() != 1 {
		t.Fatalf("epoch: delta=%d graph=%d", d.Epoch, dg.Epoch())
	}
	if d.Inserted != 1 || d.Deleted != 1 || d.Reweighted != 3 {
		t.Fatalf("counts: %+v", d)
	}
	if len(d.Decreased) != 2 || len(d.Increased) != 2 {
		t.Fatalf("classification: %d decreased, %d increased", len(d.Decreased), len(d.Increased))
	}
	// The increase record carries the old weight.
	if d.Increased[1] != (graph.Edge{From: 3, To: 5, Weight: 1}) {
		t.Fatalf("increase record: %+v", d.Increased[1])
	}
	if dg.NumEdges() != 6 { // +1 insert −1 delete
		t.Fatalf("edge count %d", dg.NumEdges())
	}
}

func TestApplyRejectsAndRollsBack(t *testing.T) {
	base := diamond()
	for name, batch := range map[string][]Mutation{
		"vertex-range":    {{Op: Insert, From: 0, To: 99, Weight: 1}},
		"negative-weight": {{Op: Insert, From: 0, To: 1, Weight: -1}},
		"nan-weight":      {{Op: SetWeight, From: 0, To: 1, Weight: math.NaN()}},
		"missing-delete":  {{Op: Delete, From: 5, To: 0}},
		"missing-reweigh": {{Op: SetWeight, From: 5, To: 0, Weight: 2}},
		"unknown-op":      {{Op: Op(99), From: 0, To: 1}},
		// A valid prefix must be rolled back when a later mutation fails.
		"prefix-rollback": {
			{Op: Insert, From: 0, To: 5, Weight: 3},
			{Op: Delete, From: 0, To: 1},
			{Op: SetWeight, From: 1, To: 2, Weight: 9},
			{Op: Delete, From: 4, To: 4}, // missing: fails the batch
		},
	} {
		dg := FromCSR(base)
		if _, err := dg.Apply(batch); err == nil {
			t.Fatalf("%s: batch accepted", name)
		}
		if dg.Epoch() != 0 {
			t.Fatalf("%s: epoch advanced to %d on failed batch", name, dg.Epoch())
		}
		edgesEqual(t, base, dg.Snapshot())
	}
	dg := FromCSR(base)
	if _, err := dg.Apply([]Mutation{{Op: Delete, From: 1, To: 3}}); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("missing delete: err = %v, want ErrEdgeNotFound", err)
	}
}

// TestApplyRollbackParallelEdges is the regression for the slot-exact
// rollback bug: with parallel 0→1 edges, a batch that reweights one edge,
// deletes one, and then fails must restore the original edge multiset. The
// old rollback applied the SetWeight inverse to the FIRST 0→1 occurrence,
// but the Delete's swapRemove had reordered the list, so the inverse hit the
// wrong parallel edge and left {5,9} instead of {5,7}.
func TestApplyRollbackParallelEdges(t *testing.T) {
	base := graph.MustBuild(2, []graph.Edge{
		{From: 0, To: 1, Weight: 5},
		{From: 0, To: 1, Weight: 7},
	})
	dg := FromCSR(base)
	_, err := dg.Apply([]Mutation{
		{Op: SetWeight, From: 0, To: 1, Weight: 9}, // first occurrence: 5 → 9
		{Op: Delete, From: 0, To: 1},               // removes the 9; swapRemove reorders
		{Op: Op(99), From: 0, To: 1},               // fails the batch
	})
	if err == nil {
		t.Fatal("bad batch accepted")
	}
	if dg.Epoch() != 0 {
		t.Fatalf("epoch advanced to %d on failed batch", dg.Epoch())
	}
	edgesEqual(t, base, dg.Snapshot())
	// The reverse adjacency must be restored to the same multiset too.
	revW := []float64{dg.rev[1][0].w, dg.rev[1][1].w}
	sort.Float64s(revW)
	if len(dg.rev[1]) != 2 || revW[0] != 5 || revW[1] != 7 {
		t.Fatalf("reverse list after rollback: %+v", dg.rev[1])
	}
}

func TestApplyInsertThenDeleteWithinBatch(t *testing.T) {
	dg := FromCSR(diamond())
	if _, err := dg.Apply([]Mutation{
		{Op: Insert, From: 5, To: 0, Weight: 2},
		{Op: Delete, From: 5, To: 0},
	}); err != nil {
		t.Fatal(err)
	}
	edgesEqual(t, diamond(), dg.Snapshot())
}

func TestDeleteMatchesParallelEdgeWeights(t *testing.T) {
	g := graph.MustBuild(2, []graph.Edge{
		{From: 0, To: 1, Weight: 5},
		{From: 0, To: 1, Weight: 3},
	})
	dg := FromCSR(g)
	// Delete removes the first forward occurrence (weight 5) and must take
	// the weight-5 reverse half with it, not the weight-3 one.
	if _, err := dg.Apply([]Mutation{{Op: Delete, From: 0, To: 1}}); err != nil {
		t.Fatal(err)
	}
	snap := dg.Snapshot()
	if snap.NumEdges() != 1 {
		t.Fatalf("%d edges left", snap.NumEdges())
	}
	if es := snap.Edges(); es[0].Weight != 3 {
		t.Fatalf("surviving weight %g, want 3", es[0].Weight)
	}
	if len(dg.rev[1]) != 1 || dg.rev[1][0].w != 3 {
		t.Fatalf("reverse list out of sync: %+v", dg.rev[1])
	}
}

// repairAfter applies batch and repairs the (previously exact) vectors,
// then checks both against a fresh Dijkstra recompute.
func repairAfter(t *testing.T, dg *Graph, src int, dist []float64, parent []int32, batch []Mutation) RepairStats {
	t.Helper()
	d, err := dg.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	st := dg.Repair(src, dist, parent, d)
	want := seq.Dijkstra(dg.Snapshot(), src)
	if i := seq.FirstMismatch(want.Dist, dist); i >= 0 {
		t.Fatalf("repair: dist[%d] = %g, want %g (batch %v)", i, dist[i], want.Dist[i], batch)
	}
	if err := VerifyTree(dg, src, dist, parent); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRepairInsertShortcut(t *testing.T) {
	dg := FromCSR(diamond())
	dist, parent := dg.SSSP(0)
	st := repairAfter(t, dg, 0, dist, parent, []Mutation{{Op: Insert, From: 0, To: 3, Weight: 0.5}})
	if dist[3] != 0.5 || dist[5] != 1.5 {
		t.Fatalf("shortcut not propagated: dist[3]=%g dist[5]=%g", dist[3], dist[5])
	}
	if st.Invalidated != 0 {
		t.Fatalf("insert invalidated %d vertices", st.Invalidated)
	}
}

func TestRepairDeleteRerouting(t *testing.T) {
	dg := FromCSR(diamond())
	dist, parent := dg.SSSP(0)
	// Deleting 1→2 severs the short path; 3 must reroute via 4 (0→4→3 = 11).
	st := repairAfter(t, dg, 0, dist, parent, []Mutation{{Op: Delete, From: 1, To: 2}})
	if dist[2] != math.Inf(1) || dist[3] != 11 || dist[5] != 12 {
		t.Fatalf("reroute: dist[2]=%g dist[3]=%g dist[5]=%g", dist[2], dist[3], dist[5])
	}
	if st.Invalidated == 0 {
		t.Fatal("delete of a tree edge invalidated nothing")
	}
}

func TestRepairDeleteDisconnects(t *testing.T) {
	dg := FromCSR(diamond())
	dist, parent := dg.SSSP(0)
	repairAfter(t, dg, 0, dist, parent, []Mutation{
		{Op: Delete, From: 2, To: 3},
		{Op: Delete, From: 4, To: 3},
	})
	if !math.IsInf(dist[3], 1) || !math.IsInf(dist[5], 1) {
		t.Fatalf("3 and 5 should be unreachable: %g %g", dist[3], dist[5])
	}
}

func TestRepairWeightChanges(t *testing.T) {
	dg := FromCSR(diamond())
	dist, parent := dg.SSSP(0)
	// Increase on the tree path reroutes; the later decrease re-activates it.
	repairAfter(t, dg, 0, dist, parent, []Mutation{{Op: SetWeight, From: 1, To: 2, Weight: 50}})
	if dist[3] != 11 {
		t.Fatalf("after increase dist[3]=%g, want 11", dist[3])
	}
	repairAfter(t, dg, 0, dist, parent, []Mutation{{Op: SetWeight, From: 1, To: 2, Weight: 1}})
	if dist[3] != 3 {
		t.Fatalf("after decrease dist[3]=%g, want 3", dist[3])
	}
}

func TestRepairNonTreeMutationsAreCheap(t *testing.T) {
	dg := FromCSR(diamond())
	dist, parent := dg.SSSP(0)
	// 4→3 is not a tree edge (tree uses 2→3); increasing it must not
	// invalidate anything.
	st := repairAfter(t, dg, 0, dist, parent, []Mutation{{Op: SetWeight, From: 4, To: 3, Weight: 2}})
	if st.Invalidated != 0 || st.Seeds != 0 {
		t.Fatalf("non-tree increase did work: %+v", st)
	}
}

func TestRepairDecreaseThenDeleteSameBatch(t *testing.T) {
	// Regression: a batch that decreases an edge and then deletes that same
	// edge leaves a stale record in Delta.Decreased. Repair must re-read the
	// post-batch graph when seeding — trusting the recorded weight would
	// relax through an edge that no longer exists (found by
	// TestPropertyRepairMatchesRecompute, seed 13).
	dg := FromCSR(diamond())
	dist, parent := dg.SSSP(0)
	repairAfter(t, dg, 0, dist, parent, []Mutation{
		{Op: SetWeight, From: 2, To: 3, Weight: 0.1},
		{Op: Delete, From: 2, To: 3},
	})
	if dist[3] != 11 {
		t.Fatalf("dist[3]=%g, want 11 via 0->4->3 (phantom decrease seed?)", dist[3])
	}
}

func TestRepairFromUnreachableSource(t *testing.T) {
	dg := FromCSR(diamond())
	dist, parent := dg.SSSP(5) // vertex 5 has no out-edges
	repairAfter(t, dg, 5, dist, parent, []Mutation{{Op: Insert, From: 5, To: 0, Weight: 1}})
	if dist[0] != 1 || dist[3] != 4 {
		t.Fatalf("newly reachable: dist[0]=%g dist[3]=%g", dist[0], dist[3])
	}
}

func TestSSSPMatchesSeqDijkstra(t *testing.T) {
	g := diamond()
	dg := FromCSR(g)
	for src := 0; src < 6; src++ {
		dist, parent := dg.SSSP(src)
		want := seq.Dijkstra(g, src)
		if i := seq.FirstMismatch(want.Dist, dist); i >= 0 {
			t.Fatalf("src %d: dist[%d] = %g, want %g", src, i, dist[i], want.Dist[i])
		}
		if err := VerifyTree(dg, src, dist, parent); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVerifyTreeCatchesCorruption(t *testing.T) {
	dg := FromCSR(diamond())
	dist, parent := dg.SSSP(0)
	for name, corrupt := range map[string]func(d []float64, p []int32){
		"loose-parent":       func(d []float64, p []int32) { p[3] = 1 }, // no edge 1→3
		"wrong-dist":         func(d []float64, p []int32) { d[2] = 7 },
		"unreachable-parent": func(d []float64, p []int32) { d[2] = math.Inf(1); p[2] = 0 },
		"source-moved":       func(d []float64, p []int32) { d[0] = 1 },
	} {
		d := append([]float64(nil), dist...)
		p := append([]int32(nil), parent...)
		corrupt(d, p)
		if err := VerifyTree(dg, 0, d, p); err == nil {
			t.Errorf("%s: corruption passed verification", name)
		}
	}
	if err := VerifyTree(dg, 0, dist[:3], parent[:3]); err == nil {
		t.Error("short vectors passed verification")
	}
}

func TestOpRoundTrip(t *testing.T) {
	for _, op := range []Op{Insert, Delete, SetWeight} {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Fatalf("round trip %v: got %v, %v", op, got, err)
		}
	}
	if _, err := ParseOp("bogus"); err == nil {
		t.Fatal("ParseOp accepted bogus")
	}
	if s := Op(99).String(); s != "op(99)" {
		t.Fatalf("unknown op string %q", s)
	}
}
