package dynamic

// Seeded property tests for mutation batches (the ISSUE's satellite
// contract): (a) epochs are strictly monotone, (b) delete + re-insert of
// the same edge converges to the same distances as never deleting it,
// (c) repairing epoch N then N+1 equals repairing the combined batch.
// Every failure message leads with the seed, so a counterexample replays
// by pinning it.

import (
	"testing"

	"acic/internal/gen"
	"acic/internal/seq"
	"acic/internal/xrand"
)

// propGraph builds the seed's base graph, source, and exact base vectors.
func propGraph(seed uint64) (*Graph, *xrand.Rand, int) {
	r := xrand.New(seed)
	n := 60 + r.Intn(140)
	g := gen.Uniform(n, 3*n, gen.Config{Seed: r.Uint64(), MaxWeight: 100})
	return FromCSR(g), r, r.Intn(n)
}

func propSeeds(t *testing.T) []uint64 {
	n := 20
	if testing.Short() {
		n = 5
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i) + 1
	}
	return seeds
}

// TestPropertyRepairMatchesRecompute is the core randomized oracle: a
// stream of random batches, each applied and repaired, each checked
// against a sequential Dijkstra recompute of the post-mutation graph.
func TestPropertyRepairMatchesRecompute(t *testing.T) {
	for _, seed := range propSeeds(t) {
		dg, r, src := propGraph(seed)
		bg := NewBatchGen(dg, r, 100)
		dist, parent := dg.SSSP(src)
		for round := 0; round < 8; round++ {
			batch := bg.Next(1 + r.Intn(6))
			d, err := dg.Apply(batch)
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			dg.Repair(src, dist, parent, d)
			want := seq.Dijkstra(dg.Snapshot(), src)
			if i := seq.FirstMismatch(want.Dist, dist); i >= 0 {
				t.Fatalf("seed %d round %d: dist[%d] = %g, want %g (batch %v)",
					seed, round, i, dist[i], want.Dist[i], batch)
			}
			if err := VerifyTree(dg, src, dist, parent); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
		}
	}
}

// TestPropertyEpochsStrictlyMonotone: every successful batch advances the
// epoch by exactly one; failed batches leave it untouched.
func TestPropertyEpochsStrictlyMonotone(t *testing.T) {
	for _, seed := range propSeeds(t) {
		dg, r, _ := propGraph(seed)
		bg := NewBatchGen(dg, r, 100)
		last := dg.Epoch()
		if last != 0 {
			t.Fatalf("seed %d: fresh graph at epoch %d", seed, last)
		}
		for round := 0; round < 10; round++ {
			if _, err := dg.Apply(bg.Next(1 + r.Intn(4))); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			if e := dg.Epoch(); e != last+1 {
				t.Fatalf("seed %d round %d: epoch %d after %d", seed, round, e, last)
			}
			last = dg.Epoch()
			// A rejected batch must not consume an epoch.
			if _, err := dg.Apply([]Mutation{{Op: Delete, From: 0, To: int32(dg.NumVertices() - 1), Weight: 0}}); err == nil {
				// The random graph may genuinely contain this edge; only
				// assert non-advance when the batch failed.
				if dg.Epoch() != last+1 {
					t.Fatalf("seed %d: accepted batch did not advance epoch", seed)
				}
				last = dg.Epoch()
			} else if dg.Epoch() != last {
				t.Fatalf("seed %d: failed batch advanced epoch to %d", seed, dg.Epoch())
			}
		}
	}
}

// TestPropertyDeleteReinsertConverges: delete an edge, repair, re-insert
// the identical edge, repair — distances must equal the never-deleted run.
func TestPropertyDeleteReinsertConverges(t *testing.T) {
	for _, seed := range propSeeds(t) {
		dg, r, src := propGraph(seed)
		base, _ := dg.SSSP(src)
		dist, parent := dg.SSSP(src)
		// Pick a random live edge via the snapshot's edge list.
		edges := dg.Snapshot().Edges()
		e := edges[r.Intn(len(edges))]
		d1, err := dg.Apply([]Mutation{{Op: Delete, From: e.From, To: e.To}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dg.Repair(src, dist, parent, d1)
		// Re-insert exactly the edge Delete removed: Apply deletes the
		// first parallel occurrence, whose weight rides in the Delta.
		removed := d1.Increased[0]
		d2, err := dg.Apply([]Mutation{{Op: Insert, From: removed.From, To: removed.To, Weight: removed.Weight}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dg.Repair(src, dist, parent, d2)
		if dg.Epoch() != 2 {
			t.Fatalf("seed %d: epoch %d after two batches", seed, dg.Epoch())
		}
		if i := seq.FirstMismatch(base, dist); i >= 0 {
			t.Fatalf("seed %d: delete+reinsert of %d->%d w=%g diverged at dist[%d]: %g, want %g",
				seed, removed.From, removed.To, removed.Weight, i, dist[i], base[i])
		}
		if err := VerifyTree(dg, src, dist, parent); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPropertySplitEqualsCombined: applying batch A, repairing, then batch
// B, repairing, must land on the same distances as applying A+B as one
// batch with a single repair.
func TestPropertySplitEqualsCombined(t *testing.T) {
	for _, seed := range propSeeds(t) {
		dgSplit, r, src := propGraph(seed)
		dgComb := FromCSR(dgSplit.Snapshot()) // identical second copy
		bg := NewBatchGen(dgSplit, r, 100)
		a, b := bg.Next(1+r.Intn(5)), bg.Next(1+r.Intn(5))

		distS, parS := dgSplit.SSSP(src)
		for _, batch := range [][]Mutation{a, b} {
			d, err := dgSplit.Apply(batch)
			if err != nil {
				t.Fatalf("seed %d: split: %v", seed, err)
			}
			dgSplit.Repair(src, distS, parS, d)
		}

		distC, parC := dgComb.SSSP(src)
		combined := append(append([]Mutation(nil), a...), b...)
		d, err := dgComb.Apply(combined)
		if err != nil {
			t.Fatalf("seed %d: combined: %v", seed, err)
		}
		dgComb.Repair(src, distC, parC, d)

		if i := seq.FirstMismatch(distS, distC); i >= 0 {
			t.Fatalf("seed %d: split vs combined diverged at dist[%d]: %g vs %g (a=%v b=%v)",
				seed, i, distS[i], distC[i], a, b)
		}
		for _, chk := range []struct {
			name string
			dg   *Graph
			dist []float64
			par  []int32
		}{{"split", dgSplit, distS, parS}, {"combined", dgComb, distC, parC}} {
			if err := VerifyTree(chk.dg, src, chk.dist, chk.par); err != nil {
				t.Fatalf("seed %d: %s: %v", seed, chk.name, err)
			}
		}
		if s, c := dgSplit.Epoch(), dgComb.Epoch(); s != 2 || c != 1 {
			t.Fatalf("seed %d: epochs split=%d combined=%d", seed, s, c)
		}
	}
}

// TestPropertyFailedBatchIsNoop: any valid batch with an invalid tail must
// roll back to exactly the pre-Apply graph — same edge multiset, same epoch.
// Random graphs from gen.Uniform contain parallel edges, so this sweeps the
// reorder-under-rollback space the deterministic regression test pins.
func TestPropertyFailedBatchIsNoop(t *testing.T) {
	for _, seed := range propSeeds(t) {
		dg, r, _ := propGraph(seed)
		bg := NewBatchGen(dg, r, 100)
		before := dg.Snapshot()
		batch := append(bg.Next(1+r.Intn(8)), Mutation{Op: Op(99)})
		if _, err := dg.Apply(batch); err == nil {
			t.Fatalf("seed %d: batch with invalid tail accepted", seed)
		}
		if dg.Epoch() != 0 {
			t.Fatalf("seed %d: failed batch advanced epoch to %d", seed, dg.Epoch())
		}
		ea, eb := sortedEdges(before), sortedEdges(dg.Snapshot())
		if len(ea) != len(eb) {
			t.Fatalf("seed %d: edge count %d after rollback, want %d", seed, len(eb), len(ea))
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("seed %d: rollback corrupted edge %d: %+v, want %+v (batch %v)",
					seed, i, eb[i], ea[i], batch)
			}
		}
	}
}

// TestBatchGenValidStream pins that the generator never emits a mutation
// the graph rejects, across a long stream.
func TestBatchGenValidStream(t *testing.T) {
	for _, seed := range propSeeds(t) {
		dg, r, _ := propGraph(seed)
		bg := NewBatchGen(dg, r, 50)
		for round := 0; round < 30; round++ {
			if _, err := dg.Apply(bg.Next(1 + r.Intn(8))); err != nil {
				t.Fatalf("seed %d round %d: generator emitted invalid batch: %v", seed, round, err)
			}
		}
		if bg.Edges() != dg.NumEdges() {
			t.Fatalf("seed %d: generator tracks %d edges, graph has %d", seed, bg.Edges(), dg.NumEdges())
		}
	}
}
