package kla

import (
	"testing"
	"testing/quick"
	"time"

	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/seq"
)

func runAndVerify(t *testing.T, g *graph.Graph, source int, opts Options) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(g, source, opts)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("Run failed: %v", o.err)
		}
		want := seq.Dijkstra(g, source)
		if !seq.Equal(o.res.Dist, want.Dist) {
			i := seq.FirstMismatch(o.res.Dist, want.Dist)
			t.Fatalf("mismatch at vertex %d: kla=%v dijkstra=%v", i, o.res.Dist[i], want.Dist[i])
		}
		return o.res
	case <-time.After(60 * time.Second):
		t.Fatal("KLA run did not terminate")
		return nil
	}
}

func TestDiamond(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 0, To: 2, Weight: 4},
		{From: 1, To: 2, Weight: 2}, {From: 1, To: 3, Weight: 6},
		{From: 2, To: 3, Weight: 3},
	})
	res := runAndVerify(t, g, 0, Options{})
	if res.Stats.Relaxations == 0 {
		t.Error("no relaxations")
	}
}

func TestFixturesAndGraphTypes(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":        gen.Path(120),
		"star":        gen.Star(120),
		"grid":        gen.Grid(9, 9, gen.Config{Seed: 1}),
		"uniform":     gen.Uniform(1000, 8000, gen.Config{Seed: 2}),
		"rmat":        gen.RMAT(10, 8, gen.DefaultRMAT(), gen.Config{Seed: 3}),
		"unreachable": graph.MustBuild(6, []graph.Edge{{From: 0, To: 1, Weight: 1}}),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: DefaultParams()})
		})
	}
}

func TestDeepPathNeedsManySupersteps(t *testing.T) {
	// A path of length 100 with fixed k=4 needs ≥ 25 supersteps: the
	// depth bound is real.
	g := gen.Path(101)
	p := DefaultParams()
	p.InitialK = 4
	p.Adaptive = false
	res := runAndVerify(t, g, 0, Options{Params: p})
	if res.Stats.SuperSteps < 25 {
		t.Errorf("supersteps = %d, want >= 25 with k=4 on a 100-hop path", res.Stats.SuperSteps)
	}
	if res.Stats.Deferred == 0 {
		t.Error("no deferrals on a deep path")
	}
}

func TestAdaptiveKGrowsOnDeepPath(t *testing.T) {
	g := gen.Path(200)
	p := DefaultParams()
	p.InitialK = 1
	res := runAndVerify(t, g, 0, Options{Params: p})
	grew := false
	for _, k := range res.Stats.KHistory {
		if k > 1 {
			grew = true
			break
		}
	}
	_ = grew // On a path each superstep changes ~k vertices; growth depends
	// on the ratio rule. The strong assertion is correctness plus history
	// being recorded at all:
	if len(res.Stats.KHistory) == 0 {
		t.Error("no k history recorded")
	}
}

func TestAdaptiveVsFixed(t *testing.T) {
	// Adaptive KLA should use no more supersteps than fixed k=1
	// (level-synchronous BF) on a deep graph.
	g := gen.Grid(20, 20, gen.Config{Seed: 4})
	fixed := DefaultParams()
	fixed.InitialK = 1
	fixed.Adaptive = false
	adaptive := DefaultParams()
	adaptive.InitialK = 1
	adaptive.Adaptive = true
	rf := runAndVerify(t, g, 0, Options{Params: fixed})
	ra := runAndVerify(t, g, 0, Options{Params: adaptive})
	if ra.Stats.SuperSteps > rf.Stats.SuperSteps {
		t.Errorf("adaptive supersteps %d exceed fixed-k %d", ra.Stats.SuperSteps, rf.Stats.SuperSteps)
	}
}

func TestHugeKActsAsync(t *testing.T) {
	// k larger than any path: one superstep, no deferrals.
	g := gen.Uniform(500, 4000, gen.Config{Seed: 5})
	p := DefaultParams()
	p.InitialK = 1 << 20
	p.Adaptive = false
	res := runAndVerify(t, g, 0, Options{Params: p})
	if res.Stats.Deferred != 0 {
		t.Errorf("deferred %d with huge k", res.Stats.Deferred)
	}
	if res.Stats.SuperSteps != 0 {
		t.Errorf("supersteps = %d, want 0 (single async phase)", res.Stats.SuperSteps)
	}
}

func TestWithLatency(t *testing.T) {
	g := gen.Uniform(800, 6400, gen.Config{Seed: 6})
	opts := Options{
		Topo:    netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2},
		Latency: netsim.LatencyModel{IntraProcess: time.Microsecond, InterNode: 8 * time.Microsecond},
		Params:  DefaultParams(),
	}
	runAndVerify(t, g, 0, opts)
}

func TestValidation(t *testing.T) {
	g := gen.Path(5)
	if _, err := Run(g, -2, Options{}); err == nil {
		t.Error("bad source accepted")
	}
}

func TestQuickMatchesDijkstra(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint64, nRaw, srcRaw, kRaw uint8) bool {
		n := int(nRaw%120) + 2
		src := int(srcRaw) % n
		g := gen.Uniform(n, n*5, gen.Config{Seed: seed, MaxWeight: 60})
		p := DefaultParams()
		p.InitialK = int32(kRaw%8) + 1
		res, err := Run(g, src, Options{Topo: netsim.SingleNode(3), Params: p})
		if err != nil {
			return false
		}
		return seq.Equal(res.Dist, seq.Dijkstra(g, src).Dist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
