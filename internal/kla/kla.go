// Package kla implements the K-Level Asynchronous (KLA) SSSP baseline of
// Harshvardhan et al. (§I of the paper): a compromise between
// bulk-synchronous Δ-stepping and fully asynchronous distributed control.
//
// Work proceeds in super-steps. Within a super-step, updates propagate
// asynchronously but only to a bounded depth: each update carries the
// number of edges it has traversed since the super-step began, and an
// update that would exceed k is *deferred* — its distance is applied, but
// its onward propagation waits for the next super-step. A global barrier
// ends each super-step, after which k adapts: it is doubled, halved, or
// kept constant based on how the number of distance changes moved relative
// to the previous super-step, the adaptation rule the paper attributes to
// KLA. With k = 1 KLA degenerates to level-synchronous Bellman-Ford; with
// k = ∞ it becomes distributed control.
//
// The implementation shares the substrate of the other algorithms: the
// message-driven runtime, the simulated network, and tramlib aggregation
// with a flush at every barrier round.
package kla

import (
	"fmt"
	"math"
	"time"

	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/partition"
	"acic/internal/runtime"
	"acic/internal/simclock"
	"acic/internal/tram"
)

// update carries a tentative distance plus its depth within the current
// super-step.
type update struct {
	Vertex int32
	Dist   float64
	Level  int32
}

type (
	startMsg struct{ source int32 }
	batchMsg struct{ items []update }
)

// ctrlMsg drives the super-step protocol.
type ctrlMsg struct {
	cmd command
	k   int32
}

type command uint8

const (
	cmdWait command = iota // barrier retry: messages still in flight
	cmdNextStep
	cmdTerminate
)

// status is the per-PE barrier contribution.
type status struct {
	sent, received int64
	deferred       int64
	changed        int64
}

func combineStatus(a, b any) any {
	av, bv := a.(*status), b.(*status)
	av.sent += bv.sent
	av.received += bv.received
	av.deferred += bv.deferred
	av.changed += bv.changed
	return av
}

// Params are the KLA tunables.
type Params struct {
	// InitialK is the starting propagation depth; zero means 2.
	InitialK int32
	// MaxK caps adaptation; zero means 1 << 20.
	MaxK int32
	// Adaptive enables the double/halve/keep rule; when false k stays at
	// InitialK.
	Adaptive bool
	// GrowThreshold and ShrinkThreshold compare the change count of the
	// last super-step against the one before: grow k when the ratio
	// exceeds GrowThreshold, shrink when below ShrinkThreshold. Zeros mean
	// 1.5 and 0.5.
	GrowThreshold, ShrinkThreshold float64
	// TramMode and TramCapacity configure aggregation.
	TramMode     tram.Mode
	TramCapacity int
	// ComputeCost is the simulated per-unit compute time charged for each
	// update received and each edge relaxed; see core.Params.ComputeCost.
	ComputeCost time.Duration
}

// DefaultParams returns an adaptive configuration with k starting at 2.
func DefaultParams() Params {
	return Params{InitialK: 2, Adaptive: true, TramMode: tram.WP, TramCapacity: tram.DefaultCapacity}
}

// Options configure one run.
type Options struct {
	Topo    netsim.Topology
	Latency netsim.LatencyModel
	Params  Params
	// Clock times the run for Stats.Elapsed; nil means the wall clock.
	Clock simclock.Clock
	// Jitter, when non-nil, perturbs every message's delivery delay (see
	// netsim.JitterFunc) — the schedule-stress harness's hook.
	Jitter netsim.JitterFunc
}

// Stats reports the run's counters.
type Stats struct {
	Elapsed     time.Duration
	SuperSteps  int64
	Barriers    int64 // reduction rounds, including drain retries
	Relaxations int64
	Rejected    int64
	Deferred    int64 // updates whose propagation crossed a super-step
	KHistory    []int32
	TramStats   tram.Stats
	Network     netsim.Stats
	// Audit is the runtime's post-run conservation ledger; the stress
	// harness requires Audit.Unaccounted() == 0 and Audit.NetQueue == 0.
	Audit runtime.Audit
}

// Result is the output of a run.
type Result struct {
	Dist  []float64
	Stats Stats
}

type sharedState struct {
	g    *graph.Graph
	part *partition.OneD
	tm   *tram.Manager[update]
}

type peState struct {
	shared *sharedState
	params Params

	base int32
	dist []float64
	k    int32

	// deferred holds vertices whose onward propagation waits for the next
	// super-step, with the depth budget reset.
	deferredV []int32
	inDefer   []bool

	sent, received int64
	changedCount   int64
	deferredCount  int64

	relaxations, rejected, totalDeferred int64

	root rootState
}

type rootState struct {
	superSteps  int64
	barriers    int64
	prevChanged int64
	kHistory    []int32
	terminated  bool
}

var _ runtime.Handler = (*peState)(nil)

func (st *peState) Deliver(pe *runtime.PE, msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveBatch(pe, m.items)
	case startMsg:
		if st.shared.part.Owner(m.source) == pe.Index() {
			st.dist[m.source-st.base] = 0
			st.relaxFrom(pe, m.source, 0, 0)
		}
		st.contribute(pe, 0)
	}
}

// Idle implements runtime.Handler; KLA processes updates eagerly on
// arrival, so there is no background work.
func (st *peState) Idle(pe *runtime.PE) bool { return false }

func (st *peState) receiveBatch(pe *runtime.PE, items []update) {
	me := pe.Index()
	var forwards map[int][]update
	for _, u := range items {
		owner := st.shared.part.Owner(u.Vertex)
		if owner != me {
			if forwards == nil {
				forwards = make(map[int][]update)
			}
			forwards[owner] = append(forwards[owner], u)
			continue
		}
		st.received++
		if st.params.ComputeCost > 0 {
			pe.Work(st.params.ComputeCost)
		}
		li := u.Vertex - st.base
		if u.Dist >= st.dist[li] {
			st.rejected++
			continue
		}
		st.dist[li] = u.Dist
		st.changedCount++
		if u.Level < st.k {
			st.relaxFrom(pe, u.Vertex, u.Dist, u.Level)
		} else {
			// Depth budget exhausted: defer propagation to the next
			// super-step (§I: "vertices that can't be reached within the
			// next k iterations ... are deferred").
			st.deferredCount++
			st.totalDeferred++
			if !st.inDefer[li] {
				st.inDefer[li] = true
				st.deferredV = append(st.deferredV, u.Vertex)
			}
		}
	}
	for owner, group := range forwards {
		pe.Send(owner, batchMsg{items: group}, len(group))
	}
	st.shared.tm.Release(items) // batch unpacked: recycle its capacity
}

// relaxFrom sends one onward update per out-edge of v at depth level+1.
func (st *peState) relaxFrom(pe *runtime.PE, v int32, d float64, level int32) {
	ts, ws := st.shared.g.Neighbors(int(v))
	for i, w := range ts {
		st.sent++
		dst := st.shared.part.Owner(w)
		u := update{Vertex: w, Dist: d + ws[i], Level: level + 1}
		if batch := st.shared.tm.Insert(pe.Index(), dst, u); batch != nil {
			pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items))
		}
	}
	st.relaxations += int64(len(ts))
	if st.params.ComputeCost > 0 {
		pe.Work(time.Duration(len(ts)) * st.params.ComputeCost)
	}
}

func (st *peState) contribute(pe *runtime.PE, epoch int64) {
	for _, batch := range st.shared.tm.FlushSet(pe.Index()) {
		pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items))
	}
	s := &status{
		sent:     st.sent,
		received: st.received,
		deferred: st.deferredCount,
		changed:  st.changedCount,
	}
	pe.Contribute(epoch, s)
}

func (st *peState) OnBroadcast(pe *runtime.PE, epoch int64, payload any) {
	ctrl := payload.(ctrlMsg)
	switch ctrl.cmd {
	case cmdTerminate:
		pe.Exit()
		return
	case cmdWait:
		// Barrier retry; arrivals already handled.
	case cmdNextStep:
		st.k = ctrl.k
		st.changedCount = 0
		st.deferredCount = 0
		// Restart propagation from deferred vertices with a fresh depth
		// budget.
		defd := st.deferredV
		st.deferredV = nil
		for _, v := range defd {
			li := v - st.base
			st.inDefer[li] = false
			st.relaxFrom(pe, v, st.dist[li], 0)
		}
	}
	st.contribute(pe, epoch+1)
}

func (st *peState) OnReduction(pe *runtime.PE, epoch int64, value any) {
	if st.root.terminated {
		return
	}
	s := value.(*status)
	st.root.barriers++
	var ctrl ctrlMsg
	if s.sent != s.received {
		ctrl = ctrlMsg{cmd: cmdWait}
	} else if s.deferred == 0 {
		// Nothing left to propagate anywhere: done.
		ctrl = ctrlMsg{cmd: cmdTerminate}
		st.root.terminated = true
	} else {
		st.root.superSteps++
		ctrl = ctrlMsg{cmd: cmdNextStep, k: st.adaptK(s)}
		st.root.kHistory = append(st.root.kHistory, ctrl.k)
		st.root.prevChanged = s.changed
	}
	pe.Broadcast(epoch, ctrl)
}

// adaptK applies the double/halve/keep rule on the change counts of the
// last two super-steps.
func (st *peState) adaptK(s *status) int32 {
	k := st.k
	if !st.params.Adaptive {
		return k
	}
	grow := st.params.GrowThreshold
	if grow <= 0 {
		grow = 1.5
	}
	shrink := st.params.ShrinkThreshold
	if shrink <= 0 {
		shrink = 0.5
	}
	maxK := st.params.MaxK
	if maxK <= 0 {
		maxK = 1 << 20
	}
	prev := st.root.prevChanged
	switch {
	case prev == 0:
		// First adaptation: nothing to compare against.
	case float64(s.changed) > grow*float64(prev):
		k *= 2
	case float64(s.changed) < shrink*float64(prev):
		k /= 2
	}
	if k < 1 {
		k = 1
	}
	if k > maxK {
		k = maxK
	}
	return k
}

// Run executes KLA on g from source.
func Run(g *graph.Graph, source int, opts Options) (*Result, error) {
	topo := opts.Topo
	if topo == (netsim.Topology{}) {
		topo = netsim.SingleNode(4)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if source < 0 || source >= g.NumVertices() {
		return nil, fmt.Errorf("kla: source %d out of range [0,%d)", source, g.NumVertices())
	}
	params := opts.Params
	if params.InitialK <= 0 {
		params.InitialK = 2
	}
	if params.TramCapacity <= 0 {
		params.TramCapacity = tram.DefaultCapacity
	}

	tm, err := tram.New[update](topo, params.TramMode, params.TramCapacity)
	if err != nil {
		return nil, err
	}
	sh := &sharedState{
		g:    g,
		part: partition.NewOneD(g.NumVertices(), topo.TotalPEs()),
		tm:   tm,
	}
	rt, err := runtime.New(runtime.Config{
		Topo:    topo,
		Latency: opts.Latency,
		Combine: combineStatus,
		Jitter:  opts.Jitter,
	})
	if err != nil {
		return nil, err
	}
	states := make([]*peState, topo.TotalPEs())
	rt.Start(func(pe *runtime.PE) runtime.Handler {
		lo, hi := sh.part.Range(pe.Index())
		st := &peState{
			shared:  sh,
			params:  params,
			base:    lo,
			dist:    make([]float64, hi-lo),
			k:       params.InitialK,
			inDefer: make([]bool, hi-lo),
		}
		for i := range st.dist {
			st.dist[i] = math.Inf(1)
		}
		states[pe.Index()] = st
		return st
	})

	clk := simclock.Default(opts.Clock)
	start := clk.Now()
	for i := 0; i < topo.TotalPEs(); i++ {
		rt.Inject(i, startMsg{source: int32(source)})
	}
	rt.Wait()
	elapsed := clk.Since(start)

	res := &Result{Dist: make([]float64, g.NumVertices()), Stats: Stats{Elapsed: elapsed}}
	root := states[0]
	res.Stats.SuperSteps = root.root.superSteps
	res.Stats.Barriers = root.root.barriers
	res.Stats.KHistory = root.root.kHistory
	for peIdx, st := range states {
		lo, hi := sh.part.Range(peIdx)
		copy(res.Dist[lo:hi], st.dist)
		res.Stats.Relaxations += st.relaxations
		res.Stats.Rejected += st.rejected
		res.Stats.Deferred += st.totalDeferred
	}
	res.Stats.TramStats = tm.Stats()
	res.Stats.Network = rt.NetworkStats()
	res.Stats.Audit = rt.Audit()
	return res, nil
}
