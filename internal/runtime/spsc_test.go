package runtime

import (
	"sync"
	"testing"
)

// TestSPSCRingBasic pushes and pops through the raw ring.
func TestSPSCRingBasic(t *testing.T) {
	r := &spscRing{}
	if _, ok := r.tryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := 0; i < 10; i++ {
		if !r.tryPush(envelope{epoch: int64(i)}) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	for i := 0; i < 10; i++ {
		env, ok := r.tryPop()
		if !ok || env.epoch != int64(i) {
			t.Fatalf("pop %d: ok=%v epoch=%d", i, ok, env.epoch)
		}
	}
}

// TestSPSCRingFullRejects fills the ring to capacity and checks overflow.
func TestSPSCRingFullRejects(t *testing.T) {
	r := &spscRing{}
	for i := 0; i < ringCap; i++ {
		if !r.tryPush(envelope{epoch: int64(i)}) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.tryPush(envelope{}) {
		t.Fatal("push succeeded on full ring")
	}
	if !r.full() {
		t.Fatal("full() false on full ring")
	}
	if _, ok := r.tryPop(); !ok {
		t.Fatal("pop failed on full ring")
	}
	if !r.tryPush(envelope{}) {
		t.Fatal("push failed after one pop")
	}
}

// TestPushFromFIFOAcrossSpill is the ordering contract of the fast path:
// a producer that overflows the ring, spills through the mutex path, and
// resumes the ring must still deliver its envelopes in send order. The
// consumer interleaves pops with the pushes to exercise ring -> spill ->
// ring transitions.
func TestPushFromFIFOAcrossSpill(t *testing.T) {
	m := newMailbox(2)
	const total = 10 * ringCap
	next := int64(0) // next expected epoch on the consumer side
	popSome := func(k int) {
		for j := 0; j < k; j++ {
			env, ok := m.tryPop()
			if !ok {
				t.Fatalf("tryPop ran dry at epoch %d", next)
			}
			if env.epoch != next {
				t.Fatalf("out of order: got epoch %d, want %d", env.epoch, next)
			}
			next++
		}
	}
	sent := int64(0)
	// Phase 1: overflow the ring outright — ringCap go to the ring, the
	// rest spill.
	for i := 0; i < ringCap+50; i++ {
		m.pushFrom(1, envelope{epoch: sent})
		sent++
	}
	// Phase 2: drain half, push more (still spilling: spillPending > 0).
	popSome(ringCap / 2)
	for i := 0; i < 20; i++ {
		m.pushFrom(1, envelope{epoch: sent})
		sent++
	}
	// Phase 3: drain everything queued so far; the producer then resumes
	// the ring.
	popSome(int(sent - next))
	for sent < total {
		m.pushFrom(1, envelope{epoch: sent})
		sent++
		if sent%3 == 0 {
			popSome(1)
		}
	}
	popSome(int(sent - next))
	if got := m.len(); got != 0 {
		t.Fatalf("mailbox len = %d after full drain", got)
	}
}

// TestPushFromConcurrent hammers one mailbox from several producer
// goroutines — each with its own source id, as the runtime guarantees —
// while the consumer drains, checking per-source FIFO and conservation.
// Run under -race this also vets the ring's memory ordering.
func TestPushFromConcurrent(t *testing.T) {
	const producers = 4
	const perProducer = 20000
	m := newMailbox(producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		//nolint — test goroutines
		go func(src int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m.pushFrom(src, envelope{kind: kindApp, epoch: int64(i), payload: src})
			}
		}(p)
	}
	seen := make([]int64, producers)
	got := 0
	for got < producers*perProducer {
		env, ok := m.pop()
		if !ok {
			t.Fatal("pop returned closed before all messages arrived")
		}
		src := env.payload.(int)
		if env.epoch != seen[src] {
			t.Fatalf("source %d out of order: got epoch %d, want %d", src, env.epoch, seen[src])
		}
		seen[src]++
		got++
	}
	wg.Wait()
	if m.len() != 0 {
		t.Fatalf("mailbox len = %d after consuming everything", m.len())
	}
}

// TestPushFromMixedWithPush interleaves fast-path and mutex-path traffic
// and checks nothing is lost or double-counted.
func TestPushFromMixedWithPush(t *testing.T) {
	m := newMailbox(2)
	const n = 3000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // fast path, source 0
		defer wg.Done()
		for i := 0; i < n; i++ {
			m.pushFrom(0, envelope{kind: kindApp, payload: "ring"})
		}
	}()
	go func() { // mutex path (Inject/netsim style)
		defer wg.Done()
		for i := 0; i < n; i++ {
			m.push(envelope{kind: kindApp, payload: "mutex"})
		}
	}()
	ring, mutex := 0, 0
	for ring+mutex < 2*n {
		env, ok := m.pop()
		if !ok {
			t.Fatal("pop returned closed early")
		}
		if env.payload.(string) == "ring" {
			ring++
		} else {
			mutex++
		}
	}
	wg.Wait()
	if ring != n || mutex != n {
		t.Fatalf("got %d ring + %d mutex, want %d each", ring, mutex, n)
	}
	if m.len() != 0 {
		t.Fatalf("len = %d after drain", m.len())
	}
}

// TestPushFromLenCountsRingItems: len() (the audit's MailboxBacklog
// column) must see ring-resident envelopes.
func TestPushFromLenCountsRingItems(t *testing.T) {
	m := newMailbox(2)
	for i := 0; i < 5; i++ {
		m.pushFrom(1, envelope{})
	}
	if got := m.len(); got != 5 {
		t.Fatalf("len = %d with 5 ring items, want 5", got)
	}
	m.push(envelope{})
	if got := m.len(); got != 6 {
		t.Fatalf("len = %d with 5 ring + 1 mutex items, want 6", got)
	}
	for i := 0; i < 6; i++ {
		if _, ok := m.tryPop(); !ok {
			t.Fatalf("tryPop %d ran dry", i)
		}
	}
	if got := m.len(); got != 0 {
		t.Fatalf("len = %d after drain, want 0", got)
	}
}

// TestSPSCSendZeroAlloc is the allocation-ceiling regression test for the
// fast path: once the ring exists, a steady push/pop cycle must not
// allocate (the envelope payload here is a pre-boxed value, as tram
// batches are in the real hot path).
func TestSPSCSendZeroAlloc(t *testing.T) {
	m := newMailbox(2)
	payload := any("batch")
	m.pushFrom(1, envelope{payload: payload}) // create the ring
	if _, ok := m.tryPop(); !ok {
		t.Fatal("warm pop failed")
	}
	avg := testing.AllocsPerRun(1000, func() {
		m.pushFrom(1, envelope{kind: kindApp, payload: payload})
		if _, ok := m.tryPop(); !ok {
			t.Fatal("pop failed")
		}
	})
	if avg > 0 {
		t.Errorf("warm SPSC push/pop allocates %.2f objects, want 0", avg)
	}
}
