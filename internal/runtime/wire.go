package runtime

import (
	"fmt"

	"acic/internal/wire"
)

// RegisterWire installs the envelope codec on c. The envelope is the
// outermost application value a fabric carries between processes: its
// payload is itself a registered wire value, encoded nested. The spill
// field is deliberately not serialized — it is SPSC-ring routing state
// that only means something inside the process that set it, and a
// decoded envelope always enters the destination mailbox through the
// ordinary push path.
func RegisterWire(c *wire.Codec) {
	c.Register(wire.TagEnvelope, envelope{},
		func(c *wire.Codec, buf []byte, v any) ([]byte, error) {
			env := v.(envelope)
			buf = wire.AppendI64(buf, env.epoch)
			buf = wire.AppendU8(buf, uint8(env.kind))
			return c.AppendValue(buf, env.payload)
		},
		func(c *wire.Codec, r *wire.Reader) (any, error) {
			var env envelope
			env.epoch = r.I64()
			k := r.U8()
			if err := r.Err(); err != nil {
				return nil, err
			}
			if k > uint8(kindQuiesce) {
				return nil, fmt.Errorf("%w: envelope kind %d", wire.ErrMalformed, k)
			}
			env.kind = envKind(k)
			payload, err := c.ReadValue(r)
			if err != nil {
				return nil, err
			}
			env.payload = payload
			return env, nil
		},
		nil)
}
