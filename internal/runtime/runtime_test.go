package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"acic/internal/netsim"
	"acic/internal/trace"
)

// testTimeout guards against deadlocked runtimes hanging the suite.
func waitOrFail(t *testing.T, rt *Runtime, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		rt.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		rt.RequestExit()
		t.Fatal("runtime did not terminate in time")
	}
}

func zeroCfg(pes int) Config {
	return Config{Topo: netsim.SingleNode(pes), Latency: netsim.ZeroLatency()}
}

// pingPong sends a token around the ring once and exits at the origin.
type pingPong struct {
	NopControl
	hops  *atomic.Int64
	limit int64
}

func (h *pingPong) Deliver(pe *PE, msg any) {
	n := h.hops.Add(1)
	if n >= h.limit {
		pe.Exit()
		return
	}
	pe.Send((pe.Index()+1)%pe.NumPEs(), msg, 1)
}

func (h *pingPong) Idle(pe *PE) bool { return false }

func TestMessageRing(t *testing.T) {
	var hops atomic.Int64
	rt, err := New(zeroCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &pingPong{hops: &hops, limit: 100} })
	// Kick off from outside: inject into PE 0 via an internal send.
	rt.send(0, 0, envelope{kind: kindApp, payload: "token"}, 1)
	waitOrFail(t, rt, 5*time.Second)
	if got := hops.Load(); got != 100 {
		t.Errorf("hops = %d, want 100", got)
	}
}

func TestMessageRingWithLatency(t *testing.T) {
	var hops atomic.Int64
	cfg := Config{
		Topo:    netsim.PaperNode(2),
		Latency: netsim.LatencyModel{IntraProcess: time.Microsecond, IntraNode: 2 * time.Microsecond, InterNode: 5 * time.Microsecond},
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &pingPong{hops: &hops, limit: 200} })
	rt.send(0, 0, envelope{kind: kindApp, payload: "token"}, 1)
	waitOrFail(t, rt, 10*time.Second)
	if got := hops.Load(); got != 200 {
		t.Errorf("hops = %d, want 200", got)
	}
}

// idleWorker counts Idle invocations and exits after enough of them.
type idleWorker struct {
	NopControl
	idleCalls int
	done      *atomic.Int64
}

func (h *idleWorker) Deliver(pe *PE, msg any) {}

func (h *idleWorker) Idle(pe *PE) bool {
	h.idleCalls++
	if h.idleCalls == 50 {
		if h.done.Add(1) == int64(pe.NumPEs()) {
			pe.Exit()
		}
		return false
	}
	return h.idleCalls < 50
}

func TestIdleTrigger(t *testing.T) {
	var done atomic.Int64
	rt, err := New(zeroCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	handlers := make([]*idleWorker, 0, 4)
	var mu sync.Mutex
	rt.Start(func(pe *PE) Handler {
		h := &idleWorker{done: &done}
		mu.Lock()
		handlers = append(handlers, h)
		mu.Unlock()
		return h
	})
	waitOrFail(t, rt, 5*time.Second)
	for i, h := range handlers {
		if h.idleCalls < 50 {
			t.Errorf("handler %d got %d idle calls, want >= 50", i, h.idleCalls)
		}
	}
}

// reducer contributes its PE index each epoch; the root records totals.
type reducer struct {
	NopControl
	epochs  int64
	results chan int64
}

func (h *reducer) Deliver(pe *PE, msg any) {}
func (h *reducer) Idle(pe *PE) bool        { return false }

func (h *reducer) OnReduction(pe *PE, epoch int64, value any) {
	h.results <- value.(int64)
	if epoch+1 < h.epochs {
		pe.Broadcast(epoch+1, nil)
	} else {
		pe.Exit()
	}
}

func (h *reducer) OnBroadcast(pe *PE, epoch int64, payload any) {
	pe.Contribute(epoch, int64(pe.Index()))
}

func TestReductionTreeSumsAllPEs(t *testing.T) {
	const pes = 11 // odd count exercises incomplete tree levels
	results := make(chan int64, 16)
	cfg := zeroCfg(pes)
	cfg.Combine = func(a, b any) any { return a.(int64) + b.(int64) }
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var root *reducer
	rt.Start(func(pe *PE) Handler {
		h := &reducer{epochs: 5, results: results}
		if pe.Index() == 0 {
			root = h
		}
		return h
	})
	// Start the first cycle: every PE contributes to epoch 0. Trigger via a
	// broadcast from the root so all PEs enter the cycle the same way.
	rt.pes[0].mbox.push(envelope{kind: kindBroadcast, epoch: 0, payload: nil})
	waitOrFail(t, rt, 5*time.Second)
	_ = root
	close(results)
	want := int64(pes * (pes - 1) / 2)
	count := 0
	for v := range results {
		count++
		if v != want {
			t.Errorf("reduction result %d, want %d", v, want)
		}
	}
	if count != 5 {
		t.Errorf("got %d reductions, want 5", count)
	}
}

func TestConcurrentEpochsInFlight(t *testing.T) {
	// Contribute to epochs 0..9 all at once from every PE; each must
	// resolve independently.
	const pes = 7
	const epochs = 10
	results := make(chan int64, epochs)
	cfg := zeroCfg(pes)
	cfg.Combine = func(a, b any) any { return a.(int64) + b.(int64) }
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seen atomic.Int64
	type burst struct{ NopControl }
	rt.Start(func(pe *PE) Handler {
		return &burstHandler{results: results, seen: &seen, epochs: epochs}
	})
	_ = burst{}
	for _, pe := range rt.pes {
		p := pe
		rt.send(0, p.index, envelope{kind: kindApp, payload: "go"}, 1)
	}
	waitOrFail(t, rt, 5*time.Second)
	close(results)
	count := 0
	want := int64(pes * (pes - 1) / 2)
	for v := range results {
		count++
		if v != want {
			t.Errorf("epoch sum = %d, want %d", v, want)
		}
	}
	if count != epochs {
		t.Errorf("resolved %d epochs, want %d", count, epochs)
	}
}

type burstHandler struct {
	NopControl
	results chan int64
	seen    *atomic.Int64
	epochs  int64
}

func (h *burstHandler) Deliver(pe *PE, msg any) {
	for e := int64(0); e < h.epochs; e++ {
		pe.Contribute(e, int64(pe.Index()))
	}
}

func (h *burstHandler) Idle(pe *PE) bool { return false }

func (h *burstHandler) OnReduction(pe *PE, epoch int64, value any) {
	h.results <- value.(int64)
	if h.seen.Add(1) == h.epochs {
		pe.Exit()
	}
}

func TestBroadcastReachesEveryPE(t *testing.T) {
	const pes = 13
	var got atomic.Int64
	cfg := zeroCfg(pes)
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &bcastHandler{got: &got, pes: pes} })
	rt.pes[0].mbox.push(envelope{kind: kindBroadcast, epoch: 7, payload: "hello"})
	waitOrFail(t, rt, 5*time.Second)
	if got.Load() != pes {
		t.Errorf("broadcast reached %d PEs, want %d", got.Load(), pes)
	}
}

type bcastHandler struct {
	NopControl
	got *atomic.Int64
	pes int64
}

func (h *bcastHandler) Deliver(pe *PE, msg any) {}
func (h *bcastHandler) Idle(pe *PE) bool        { return false }
func (h *bcastHandler) OnBroadcast(pe *PE, epoch int64, payload any) {
	if epoch != 7 || payload != "hello" {
		panic("wrong broadcast content")
	}
	if h.got.Add(1) == h.pes {
		pe.Exit()
	}
}

func TestBroadcastPanicsOffRoot(t *testing.T) {
	rt, err := New(zeroCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	pe1 := rt.pes[1]
	defer func() {
		rt.RequestExit()
		if recover() == nil {
			t.Error("Broadcast from PE 1 did not panic")
		}
	}()
	pe1.Broadcast(0, nil)
}

func TestContributeWithoutCombinePanics(t *testing.T) {
	rt, err := New(zeroCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		rt.RequestExit()
		if recover() == nil {
			t.Error("Contribute without Combine did not panic")
		}
	}()
	rt.pes[0].Contribute(0, 1)
}

// quiesceApp floods some messages then goes idle; the runtime detector must
// fire exactly once at PE 0.
type quiesceApp struct {
	NopControl
	fired *atomic.Int64
}

func (h *quiesceApp) Deliver(pe *PE, msg any) {
	if _, ok := msg.(Quiescence); ok {
		h.fired.Add(1)
		pe.Exit()
		return
	}
	// Forward a few times then stop.
	if n := msg.(int); n > 0 {
		pe.Send((pe.Index()+1)%pe.NumPEs(), n-1, 1)
	}
}

func (h *quiesceApp) Idle(pe *PE) bool { return false }

func TestRuntimeQuiescenceDetection(t *testing.T) {
	var fired atomic.Int64
	cfg := zeroCfg(4)
	cfg.QuiescencePoll = 500 * time.Microsecond
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &quiesceApp{fired: &fired} })
	for i := 0; i < 4; i++ {
		rt.send(0, i, envelope{kind: kindApp, payload: 20}, 1)
	}
	waitOrFail(t, rt, 5*time.Second)
	if fired.Load() != 1 {
		t.Errorf("quiescence fired %d times, want 1", fired.Load())
	}
}

func TestQuiescenceNotPremature(t *testing.T) {
	// A long message chain with injected latency: QD must not fire while
	// messages are still bouncing through the delay queue.
	var hops atomic.Int64
	var fired atomic.Int64
	cfg := Config{
		Topo:           netsim.SingleNode(2),
		Latency:        netsim.LatencyModel{IntraProcess: 300 * time.Microsecond},
		QuiescencePoll: 100 * time.Microsecond,
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &chainApp{hops: &hops, fired: &fired, want: 10} })
	rt.send(0, 1, envelope{kind: kindApp, payload: 10}, 1)
	waitOrFail(t, rt, 10*time.Second)
	if hops.Load() != 10 {
		t.Errorf("chain stopped at %d hops, want 10 — QD fired early", hops.Load())
	}
}

type chainApp struct {
	NopControl
	hops  *atomic.Int64
	fired *atomic.Int64
	want  int64
}

func (h *chainApp) Deliver(pe *PE, msg any) {
	if _, ok := msg.(Quiescence); ok {
		if h.hops.Load() != h.want {
			panic("quiescence before chain finished")
		}
		pe.Exit()
		return
	}
	n := msg.(int)
	h.hops.Add(1)
	if n > 1 {
		pe.Send(1-pe.Index(), n-1, 1)
	}
}

func (h *chainApp) Idle(pe *PE) bool { return false }

func TestDeliveredCounter(t *testing.T) {
	var hops atomic.Int64
	rt, err := New(zeroCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &pingPong{hops: &hops, limit: 40} })
	rt.send(0, 0, envelope{kind: kindApp, payload: "t"}, 1)
	waitOrFail(t, rt, 5*time.Second)
	total := rt.pes[0].Delivered() + rt.pes[1].Delivered()
	if total != 40 {
		t.Errorf("total delivered = %d, want 40", total)
	}
}

func TestTreeShape(t *testing.T) {
	// Parent/children must be mutually consistent for every size.
	for n := 1; n <= 40; n++ {
		for i := 1; i < n; i++ {
			p := treeParent(i)
			c1, c2, _ := treeChildren(p, n)
			if i != c1 && i != c2 {
				t.Fatalf("n=%d: %d not a child of its parent %d", n, i, p)
			}
		}
		// Count edges: a tree over n nodes has n-1.
		edges := 0
		for i := 0; i < n; i++ {
			_, _, k := treeChildren(i, n)
			edges += k
		}
		if edges != n-1 {
			t.Fatalf("n=%d: %d tree edges, want %d", n, edges, n-1)
		}
	}
}

func TestRequestExitIdempotent(t *testing.T) {
	rt, err := New(zeroCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &pingPong{hops: new(atomic.Int64), limit: 1} })
	rt.RequestExit()
	rt.RequestExit()
	waitOrFail(t, rt, 2*time.Second)
}

func TestTraceIntegration(t *testing.T) {
	var hops atomic.Int64
	cfg := zeroCfg(2)
	rec := trace.New(2, 1024)
	cfg.Trace = rec
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &pingPong{hops: &hops, limit: 50} })
	rt.send(0, 0, envelope{kind: kindApp, payload: "t"}, 1)
	waitOrFail(t, rt, 5*time.Second)
	total := int64(0)
	for pe := 0; pe < 2; pe++ {
		total += rec.Counts(pe)[trace.KindDeliver]
	}
	if total != 50 {
		t.Errorf("traced %d deliveries, want 50", total)
	}
	// The ring blocks between hops: block/wake events must appear.
	sums := rec.Summarize()
	blocks := sums[0].ByKind[trace.KindBlock] + sums[1].ByKind[trace.KindBlock]
	if blocks == 0 {
		t.Error("no block events traced")
	}
}

func BenchmarkSendDeliverZeroLatency(b *testing.B) {
	var hops atomic.Int64
	rt, err := New(zeroCfg(2))
	if err != nil {
		b.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &pingPong{hops: &hops, limit: int64(b.N)} })
	b.ResetTimer()
	rt.send(0, 0, envelope{kind: kindApp, payload: "t"}, 1)
	rt.Wait()
}
