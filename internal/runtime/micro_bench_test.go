package runtime

import "testing"

// BenchmarkMailbox measures the cost of moving one envelope through the
// MPSC mailbox — the per-message floor every delivered message pays. The
// pingpong case alternates push/pop (consumer keeps up); the burst case
// pushes 64 then drains 64, the arrival pattern a tram flush produces.
func BenchmarkMailbox(b *testing.B) {
	b.Run("pingpong", func(b *testing.B) {
		m := newMailbox(4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.push(envelope{kind: kindApp, epoch: int64(i)})
			if _, ok := m.tryPop(); !ok {
				b.Fatal("mailbox unexpectedly empty")
			}
		}
	})
	b.Run("burst64", func(b *testing.B) {
		m := newMailbox(4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += 64 {
			for j := 0; j < 64; j++ {
				m.push(envelope{kind: kindApp, epoch: int64(j)})
			}
			for j := 0; j < 64; j++ {
				if _, ok := m.tryPop(); !ok {
					b.Fatal("mailbox unexpectedly empty")
				}
			}
		}
	})
	// The SPSC fast-path counterparts of the two cases above: the same
	// traffic through pushFrom's per-source ring instead of the mutex.
	b.Run("spsc-pingpong", func(b *testing.B) {
		m := newMailbox(4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.pushFrom(1, envelope{kind: kindApp, epoch: int64(i)})
			if _, ok := m.tryPop(); !ok {
				b.Fatal("mailbox unexpectedly empty")
			}
		}
	})
	b.Run("spsc-burst64", func(b *testing.B) {
		m := newMailbox(4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += 64 {
			for j := 0; j < 64; j++ {
				m.pushFrom(1, envelope{kind: kindApp, epoch: int64(j)})
			}
			for j := 0; j < 64; j++ {
				if _, ok := m.tryPop(); !ok {
					b.Fatal("mailbox unexpectedly empty")
				}
			}
		}
	})
}
