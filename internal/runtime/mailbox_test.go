package runtime

import (
	"sync"
	"testing"
	"time"
)

func TestMailboxFIFO(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 100; i++ {
		m.push(i)
	}
	if m.len() != 100 {
		t.Fatalf("len = %d", m.len())
	}
	for i := 0; i < 100; i++ {
		v, ok := m.tryPop()
		if !ok || v.(int) != i {
			t.Fatalf("pop %d: got %v ok=%v", i, v, ok)
		}
	}
	if _, ok := m.tryPop(); ok {
		t.Error("tryPop on empty returned ok")
	}
}

func TestMailboxBlockingPop(t *testing.T) {
	m := newMailbox()
	done := make(chan any, 1)
	go func() {
		v, _ := m.pop()
		done <- v
	}()
	select {
	case <-done:
		t.Fatal("pop returned before push")
	case <-time.After(5 * time.Millisecond):
	}
	m.push("hello")
	select {
	case v := <-done:
		if v != "hello" {
			t.Fatalf("got %v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke")
	}
}

func TestMailboxCloseWakesConsumer(t *testing.T) {
	m := newMailbox()
	done := make(chan bool, 1)
	go func() {
		_, ok := m.pop()
		done <- ok
	}()
	time.Sleep(2 * time.Millisecond)
	m.close()
	select {
	case ok := <-done:
		if ok {
			t.Error("pop on closed empty mailbox returned ok")
		}
	case <-time.After(time.Second):
		t.Fatal("close did not wake consumer")
	}
}

func TestMailboxDrainsBeforeCloseReturnsFalse(t *testing.T) {
	m := newMailbox()
	m.push(1)
	m.push(2)
	m.close()
	if v, ok := m.pop(); !ok || v.(int) != 1 {
		t.Fatal("first item lost after close")
	}
	if v, ok := m.pop(); !ok || v.(int) != 2 {
		t.Fatal("second item lost after close")
	}
	if _, ok := m.pop(); ok {
		t.Error("drained closed mailbox still returns items")
	}
}

func TestMailboxPushAfterCloseDropped(t *testing.T) {
	m := newMailbox()
	m.close()
	m.push(1)
	if m.len() != 0 {
		t.Error("push after close was stored")
	}
}

func TestMailboxCompaction(t *testing.T) {
	// Interleaved push/pop far past the compaction threshold must neither
	// lose nor reorder items.
	m := newMailbox()
	next := 0
	for i := 0; i < 10000; i++ {
		m.push(i)
		if i%2 == 1 {
			v, ok := m.tryPop()
			if !ok || v.(int) != next {
				t.Fatalf("at %d: got %v, want %d", i, v, next)
			}
			next++
		}
	}
	for {
		v, ok := m.tryPop()
		if !ok {
			break
		}
		if v.(int) != next {
			t.Fatalf("drain: got %v, want %d", v, next)
		}
		next++
	}
	if next != 10000 {
		t.Fatalf("drained %d items, want 10000", next)
	}
}

func TestMailboxConcurrentProducers(t *testing.T) {
	m := newMailbox()
	const producers, per = 8, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.push(p*per + i)
			}
		}(p)
	}
	got := make(map[int]bool)
	for len(got) < producers*per {
		v, ok := m.pop()
		if !ok {
			t.Fatal("mailbox closed unexpectedly")
		}
		iv := v.(int)
		if got[iv] {
			t.Fatalf("duplicate item %d", iv)
		}
		got[iv] = true
	}
	wg.Wait()
}
