package runtime

import (
	"sync"
	"testing"
	"time"
)

// env wraps a sequence number in an envelope for queue tests.
func env(i int) envelope { return envelope{kind: kindApp, epoch: int64(i)} }

func TestMailboxFIFO(t *testing.T) {
	m := newMailbox(4)
	for i := 0; i < 100; i++ {
		m.push(env(i))
	}
	if m.len() != 100 {
		t.Fatalf("len = %d", m.len())
	}
	for i := 0; i < 100; i++ {
		v, ok := m.tryPop()
		if !ok || v.epoch != int64(i) {
			t.Fatalf("pop %d: got %v ok=%v", i, v, ok)
		}
	}
	if _, ok := m.tryPop(); ok {
		t.Error("tryPop on empty returned ok")
	}
}

func TestMailboxBlockingPop(t *testing.T) {
	m := newMailbox(4)
	done := make(chan envelope, 1)
	go func() {
		v, _ := m.pop()
		done <- v
	}()
	select {
	case <-done:
		t.Fatal("pop returned before push")
	case <-time.After(5 * time.Millisecond):
	}
	m.push(env(42))
	select {
	case v := <-done:
		if v.epoch != 42 {
			t.Fatalf("got %v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke")
	}
}

func TestMailboxCloseWakesConsumer(t *testing.T) {
	m := newMailbox(4)
	done := make(chan bool, 1)
	go func() {
		_, ok := m.pop()
		done <- ok
	}()
	time.Sleep(2 * time.Millisecond)
	m.close()
	select {
	case ok := <-done:
		if ok {
			t.Error("pop on closed empty mailbox returned ok")
		}
	case <-time.After(time.Second):
		t.Fatal("close did not wake consumer")
	}
}

func TestMailboxDrainsBeforeCloseReturnsFalse(t *testing.T) {
	m := newMailbox(4)
	m.push(env(1))
	m.push(env(2))
	m.close()
	if v, ok := m.pop(); !ok || v.epoch != 1 {
		t.Fatal("first item lost after close")
	}
	if v, ok := m.pop(); !ok || v.epoch != 2 {
		t.Fatal("second item lost after close")
	}
	if _, ok := m.pop(); ok {
		t.Error("drained closed mailbox still returns items")
	}
}

func TestMailboxPushAfterCloseDropped(t *testing.T) {
	m := newMailbox(4)
	m.close()
	m.push(env(1))
	if m.len() != 0 {
		t.Error("push after close was stored")
	}
	if _, ok := m.tryPop(); ok {
		t.Error("push after close was observable")
	}
}

// TestMailboxSwapDrainOrder exercises the two-slice swap drain directly:
// bursts of pushes interleaved with partial drains, across many swap
// cycles, must neither lose nor reorder items, and a final drain must
// return the remainder in order.
func TestMailboxSwapDrainOrder(t *testing.T) {
	m := newMailbox(4)
	next := 0
	pushed := 0
	for round := 0; round < 200; round++ {
		// Push a burst, drain roughly half — leaves the consumer slice
		// partially consumed across the next swap.
		for j := 0; j < 37; j++ {
			m.push(env(pushed))
			pushed++
		}
		for j := 0; j < 18; j++ {
			v, ok := m.tryPop()
			if !ok || v.epoch != int64(next) {
				t.Fatalf("round %d: got %v ok=%v, want %d", round, v, ok, next)
			}
			next++
		}
	}
	for {
		v, ok := m.tryPop()
		if !ok {
			break
		}
		if v.epoch != int64(next) {
			t.Fatalf("final drain: got %v, want %d", v, next)
		}
		next++
	}
	if next != pushed {
		t.Fatalf("drained %d items, want %d", next, pushed)
	}
	if m.len() != 0 {
		t.Fatalf("len = %d after full drain", m.len())
	}
}

// TestMailboxConcurrentProducersFIFO checks the MPSC contract under the
// race detector: items from each producer arrive in that producer's send
// order (per-producer FIFO), with nothing lost or duplicated.
func TestMailboxConcurrentProducersFIFO(t *testing.T) {
	m := newMailbox(4)
	const producers, per = 8, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.push(env(p*per + i))
			}
		}(p)
	}
	seen := 0
	lastFrom := make([]int, producers)
	for i := range lastFrom {
		lastFrom[i] = -1
	}
	for seen < producers*per {
		v, ok := m.pop()
		if !ok {
			t.Fatal("mailbox closed unexpectedly")
		}
		p, i := int(v.epoch)/per, int(v.epoch)%per
		if i <= lastFrom[p] {
			t.Fatalf("producer %d: item %d arrived after %d", p, i, lastFrom[p])
		}
		if i != lastFrom[p]+1 {
			t.Fatalf("producer %d: item %d skipped %d", p, i, lastFrom[p]+1)
		}
		lastFrom[p] = i
		seen++
	}
	wg.Wait()
}

// TestMailboxCloseRace closes the mailbox while producers are pushing and
// a consumer is draining; after pop reports closed-and-drained, len must
// be stable at zero and further pushes must be dropped. Run under -race.
func TestMailboxCloseRace(t *testing.T) {
	m := newMailbox(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.push(env(i))
				i++
			}
		}(p)
	}
	consumed := 0
	deadline := time.After(50 * time.Millisecond)
drain:
	for {
		select {
		case <-deadline:
			break drain
		default:
		}
		if _, ok := m.tryPop(); ok {
			consumed++
		}
	}
	m.close()
	close(stop)
	wg.Wait()
	// Drain whatever was accepted before close; pop must terminate.
	for {
		if _, ok := m.pop(); !ok {
			break
		}
		consumed++
	}
	if m.len() != 0 {
		t.Fatalf("len = %d after close and drain", m.len())
	}
	m.push(env(1))
	if m.len() != 0 {
		t.Error("push after close stored an item")
	}
	if consumed == 0 {
		t.Error("consumed nothing; test exercised nothing")
	}
}
