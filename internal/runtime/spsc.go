package runtime

import "sync/atomic"

// ringCap is the SPSC ring capacity (power of two). 256 envelopes per
// (src,dst) pair absorbs the bursts the zero-latency bypass sees between
// scheduler turns; overflow falls back to the mutex mailbox (see
// mailbox.pushFrom), so the value trades memory against fallback rate.
const ringCap = 256

// spscRing is a bounded single-producer single-consumer ring buffer of
// envelopes — the zero-latency bypass fast path between one sending PE
// goroutine (the producer) and one receiving PE's scheduler loop (the
// consumer). head and tail are monotonically increasing positions; the
// slot index is position & (ringCap-1). Cache-line padding keeps the two
// sides from false-sharing each other's index.
//
// Memory model: the producer writes the slot, then publishes it with a
// tail store; the consumer observes tail, reads the slot, then releases
// it with a head store. Go's sync/atomic operations are sequentially
// consistent, which also gives the Dekker-style guarantee the sleeping/
// ringItems wakeup handshake in mailbox.pop relies on.
type spscRing struct {
	_    [64]byte
	head atomic.Uint64 // next position to pop (consumer-owned)
	_    [56]byte
	tail atomic.Uint64 // next position to push (producer-owned)
	_    [56]byte

	// spillPending counts envelopes this pair has diverted to the mutex
	// mailbox after an overflow and that the consumer has not yet popped.
	// The producer re-enters the ring only when it reads zero, preserving
	// per-pair FIFO across the spill (see mailbox.pushFrom).
	spillPending atomic.Int64
	// spilling is the producer's private sticky overflow flag; only the
	// producer goroutine touches it.
	spilling bool

	buf [ringCap]envelope
}

// tryPush publishes env; it reports false when the ring is full.
// Producer goroutine only.
//
//acic:noalloc
func (r *spscRing) tryPush(env envelope) bool {
	t := r.tail.Load()
	if t-r.head.Load() == ringCap {
		return false
	}
	r.buf[t&(ringCap-1)] = env
	r.tail.Store(t + 1)
	return true
}

// tryPop removes the oldest envelope; ok is false when the ring is empty.
// Consumer goroutine only.
//
//acic:noalloc
func (r *spscRing) tryPop() (envelope, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return envelope{}, false
	}
	env := r.buf[h&(ringCap-1)]
	r.buf[h&(ringCap-1)] = envelope{} // release payload for GC
	r.head.Store(h + 1)
	return env, true
}

// full reports whether a push would overflow. Producer goroutine only.
//
//acic:noalloc
func (r *spscRing) full() bool {
	return r.tail.Load()-r.head.Load() == ringCap
}
