package runtime

// Fault-injection tests: the runtime (like Charm++) assumes reliable
// message delivery. These tests document what that assumption buys — a
// lost message leaves the sent/delivered counters permanently unequal, so
// quiescence detection can never fire a false positive: message loss
// manifests as a visible hang, never as silent wrong results.

import (
	"sync/atomic"
	"testing"
	"time"

	"acic/internal/netsim"
)

// relayApp forwards a counter around a two-PE ring n times, then idles.
type relayApp struct {
	NopControl
	hops     *atomic.Int64
	quiesced *atomic.Int64
}

func (h *relayApp) Deliver(pe *PE, msg any) {
	if _, ok := msg.(Quiescence); ok {
		h.quiesced.Add(1)
		pe.Exit()
		return
	}
	n := msg.(int)
	h.hops.Add(1)
	if n > 1 {
		pe.Send(1-pe.Index(), n-1, 1)
	}
}

func (h *relayApp) Idle(pe *PE) bool { return false }

func TestDroppedMessageBlocksQuiescence(t *testing.T) {
	var hops, quiesced atomic.Int64
	cfg := Config{
		Topo:           netsim.SingleNode(2),
		Latency:        netsim.LatencyModel{IntraProcess: 100 * time.Microsecond},
		QuiescencePoll: 200 * time.Microsecond,
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the 5th network message.
	var count atomic.Int64
	rt.Network().SetDropFilter(func(src, dst, size int) bool {
		return count.Add(1) == 5
	})
	rt.Start(func(pe *PE) Handler { return &relayApp{hops: &hops, quiesced: &quiesced} })
	rt.send(0, 0, envelope{kind: kindApp, payload: 20}, 1)

	// The chain must stall at the dropped hop and quiescence must never
	// fire: sent > delivered forever.
	time.Sleep(50 * time.Millisecond)
	if got := quiesced.Load(); got != 0 {
		t.Errorf("quiescence fired %d times despite a lost message", got)
	}
	if got := hops.Load(); got >= 20 {
		t.Errorf("chain completed (%d hops) despite the drop", got)
	}
	if d := rt.NetworkStats().Dropped; d != 1 {
		t.Errorf("Dropped = %d, want 1", d)
	}
	rt.RequestExit()
	rt.Wait()
}

func TestNoDropsQuiescesNormally(t *testing.T) {
	// Control experiment: same setup, no filter → the chain finishes and
	// quiescence fires exactly once.
	var hops, quiesced atomic.Int64
	cfg := Config{
		Topo:           netsim.SingleNode(2),
		Latency:        netsim.LatencyModel{IntraProcess: 50 * time.Microsecond},
		QuiescencePoll: 200 * time.Microsecond,
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &relayApp{hops: &hops, quiesced: &quiesced} })
	rt.send(0, 0, envelope{kind: kindApp, payload: 20}, 1)
	waitOrFail(t, rt, 10*time.Second)
	if hops.Load() != 20 {
		t.Errorf("hops = %d, want 20", hops.Load())
	}
	if quiesced.Load() != 1 {
		t.Errorf("quiescence fired %d times, want 1", quiesced.Load())
	}
}
