package runtime

// Fault-injection tests: the runtime (like Charm++) assumes reliable
// message delivery. These tests document what that assumption buys — a
// lost message leaves the sent/delivered counters permanently unequal, so
// quiescence detection can never fire a false positive: message loss
// manifests as a visible hang, never as silent wrong results.

import (
	"sync/atomic"
	"testing"
	"time"

	"acic/internal/netsim"
	"acic/internal/relnet"
)

// relayApp forwards a counter around a two-PE ring n times, then idles.
type relayApp struct {
	NopControl
	hops     *atomic.Int64
	quiesced *atomic.Int64
}

func (h *relayApp) Deliver(pe *PE, msg any) {
	if _, ok := msg.(Quiescence); ok {
		h.quiesced.Add(1)
		pe.Exit()
		return
	}
	n := msg.(int)
	h.hops.Add(1)
	if n > 1 {
		pe.Send(1-pe.Index(), n-1, 1)
	}
}

func (h *relayApp) Idle(pe *PE) bool { return false }

func TestDroppedMessageBlocksQuiescence(t *testing.T) {
	var hops, quiesced atomic.Int64
	cfg := Config{
		Topo:           netsim.SingleNode(2),
		Latency:        netsim.LatencyModel{IntraProcess: 100 * time.Microsecond},
		QuiescencePoll: 200 * time.Microsecond,
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the 5th network message.
	var count atomic.Int64
	rt.Network().SetDropFilter(func(src, dst, size int) bool {
		return count.Add(1) == 5
	})
	rt.Start(func(pe *PE) Handler { return &relayApp{hops: &hops, quiesced: &quiesced} })
	rt.send(0, 0, envelope{kind: kindApp, payload: 20}, 1)

	// The chain must stall at the dropped hop and quiescence must never
	// fire: sent > delivered forever.
	time.Sleep(50 * time.Millisecond)
	if got := quiesced.Load(); got != 0 {
		t.Errorf("quiescence fired %d times despite a lost message", got)
	}
	if got := hops.Load(); got >= 20 {
		t.Errorf("chain completed (%d hops) despite the drop", got)
	}
	if d := rt.NetworkStats().Dropped; d != 1 {
		t.Errorf("Dropped = %d, want 1", d)
	}
	rt.RequestExit()
	rt.Wait()
}

// TestDroppedMessageRecoversWithReliability is the mirror image of
// TestDroppedMessageBlocksQuiescence: the same drop that hangs a bare
// runtime is retransmitted by the relnet layer, the chain completes, the
// runtime-level detector fires, and the extended ledger balances with the
// retransmit column non-zero.
func TestDroppedMessageRecoversWithReliability(t *testing.T) {
	var hops, quiesced atomic.Int64
	cfg := Config{
		Topo:           netsim.SingleNode(2),
		Latency:        netsim.LatencyModel{IntraProcess: 100 * time.Microsecond},
		QuiescencePoll: 200 * time.Microsecond,
		Reliability:    &relnet.Config{RTO: 2 * time.Millisecond, AckDelay: 500 * time.Microsecond},
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the 5th data-carrying network message (acks excluded so the
	// recovery exercises exactly one retransmission).
	var count atomic.Int64
	rt.Network().SetDropFilter(func(src, dst, size int) bool {
		return size > 0 && count.Add(1) == 5
	})
	rt.Start(func(pe *PE) Handler { return &relayApp{hops: &hops, quiesced: &quiesced} })
	rt.send(0, 0, envelope{kind: kindApp, payload: 20}, 1)
	waitOrFail(t, rt, 10*time.Second)

	if got := hops.Load(); got != 20 {
		t.Errorf("hops = %d, want 20 (retransmit must heal the chain)", got)
	}
	if got := quiesced.Load(); got != 1 {
		t.Errorf("quiescence fired %d times, want 1", got)
	}
	a := rt.Audit()
	if a.Retransmits == 0 {
		t.Error("Audit.Retransmits = 0, want > 0: the drop forced the timeout path")
	}
	if a.NetDropped == 0 {
		t.Error("Audit.NetDropped = 0, want > 0")
	}
	if u := a.Unaccounted(); u != 0 {
		t.Errorf("Unaccounted = %d, want 0; ledger: %+v", u, a)
	}
	if a.NetQueue != 0 {
		t.Errorf("NetQueue = %d after Wait, want 0", a.NetQueue)
	}
}

// TestDuplicateDeliveryLedgerBalancedWithoutReliability documents today's
// at-most-once runtime under fabric duplication: the ghost copy is
// dispatched twice (Delivered = Sent + NetDuplicated) and the extended
// ledger still balances — duplication is visible in its own column, never
// smeared into Unaccounted.
func TestDuplicateDeliveryLedgerBalancedWithoutReliability(t *testing.T) {
	var hops, quiesced atomic.Int64
	cfg := Config{
		Topo:    netsim.SingleNode(2),
		Latency: netsim.LatencyModel{IntraProcess: 50 * time.Microsecond},
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the 3rd network message once.
	var count atomic.Int64
	rt.Network().SetDupFilter(func(src, dst, size int) (time.Duration, bool) {
		return 200 * time.Microsecond, count.Add(1) == 3
	})
	rt.Start(func(pe *PE) Handler { return &relayApp{hops: &hops, quiesced: &quiesced} })
	rt.send(0, 0, envelope{kind: kindApp, payload: 10}, 1)

	// The duplicated hop re-runs the remainder of the countdown, so the
	// ring sees extra hops and sent == delivered never holds again; wait
	// for the fabric to drain and deliveries to stop moving, then stop.
	deadline := time.Now().Add(5 * time.Second)
	for {
		before := rt.MessagesDelivered()
		time.Sleep(2 * time.Millisecond)
		if rt.Network().QueueLen() == 0 && rt.MessagesDelivered() == before {
			break
		}
		if time.Now().After(deadline) {
			break
		}
	}
	rt.RequestExit()
	rt.Wait()

	a := rt.Audit()
	if a.NetDuplicated != 1 {
		t.Errorf("NetDuplicated = %d, want 1", a.NetDuplicated)
	}
	if a.Delivered != a.Sent+a.NetDuplicated-a.MailboxBacklog-a.DroppedAtExit {
		t.Errorf("Delivered = %d, want Sent(%d) + NetDuplicated(%d) - backlog(%d) - atExit(%d)",
			a.Delivered, a.Sent, a.NetDuplicated, a.MailboxBacklog, a.DroppedAtExit)
	}
	if u := a.Unaccounted(); u != 0 {
		t.Errorf("Unaccounted = %d, want 0; ledger: %+v", u, a)
	}
	if hops.Load() <= 10 {
		t.Errorf("hops = %d, want > 10: the duplicate re-runs part of the countdown", hops.Load())
	}
}

// TestDuplicateDeliverySwallowedWithReliability: the same fabric duplicate
// under the relnet layer never reaches a handler twice — it lands in the
// DupDiscarded column and the hop count stays exact.
func TestDuplicateDeliverySwallowedWithReliability(t *testing.T) {
	var hops, quiesced atomic.Int64
	cfg := Config{
		Topo:           netsim.SingleNode(2),
		Latency:        netsim.LatencyModel{IntraProcess: 50 * time.Microsecond},
		QuiescencePoll: 200 * time.Microsecond,
		Reliability:    &relnet.Config{RTO: 5 * time.Millisecond, AckDelay: 500 * time.Microsecond},
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	rt.Network().SetDupFilter(func(src, dst, size int) (time.Duration, bool) {
		return 200 * time.Microsecond, count.Add(1) == 3
	})
	rt.Start(func(pe *PE) Handler { return &relayApp{hops: &hops, quiesced: &quiesced} })
	rt.send(0, 0, envelope{kind: kindApp, payload: 10}, 1)
	waitOrFail(t, rt, 10*time.Second)

	if got := hops.Load(); got != 10 {
		t.Errorf("hops = %d, want exactly 10 (duplicate must be swallowed)", got)
	}
	a := rt.Audit()
	if a.DupDiscarded == 0 {
		t.Error("DupDiscarded = 0, want > 0: the ghost copy must hit the dedup window")
	}
	if u := a.Unaccounted(); u != 0 {
		t.Errorf("Unaccounted = %d, want 0; ledger: %+v", u, a)
	}
}

func TestNoDropsQuiescesNormally(t *testing.T) {
	// Control experiment: same setup, no filter → the chain finishes and
	// quiescence fires exactly once.
	var hops, quiesced atomic.Int64
	cfg := Config{
		Topo:           netsim.SingleNode(2),
		Latency:        netsim.LatencyModel{IntraProcess: 50 * time.Microsecond},
		QuiescencePoll: 200 * time.Microsecond,
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &relayApp{hops: &hops, quiesced: &quiesced} })
	rt.send(0, 0, envelope{kind: kindApp, payload: 20}, 1)
	waitOrFail(t, rt, 10*time.Second)
	if hops.Load() != 20 {
		t.Errorf("hops = %d, want 20", hops.Load())
	}
	if quiesced.Load() != 1 {
		t.Errorf("quiescence fired %d times, want 1", quiesced.Load())
	}
}
