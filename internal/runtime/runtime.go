// Package runtime is a message-driven parallel runtime in the style of
// Charm++, the substrate the paper's implementation runs on (§I, §II).
//
// The runtime provides exactly the services ACIC consumes:
//
//   - An array of processing elements (PEs), each a goroutine with an
//     unbounded mailbox, executing message handlers run-to-completion.
//   - Message sends routed through a simulated cluster network
//     (internal/netsim), so inter-process and inter-node messages cost more
//     than intra-process ones, as on the paper's Delta and Frontier runs.
//   - Idle triggers: when a PE's mailbox is empty the runtime repeatedly
//     invokes the handler's Idle method, which is how ACIC drains its
//     min-priority queue "when a PE becomes idle" (§II-C).
//   - Asynchronous tree reductions and broadcasts that execute concurrently
//     with application work, the paper's continuous introspection loop.
//     Reductions combine per-PE contributions up a binary tree to PE 0;
//     broadcasts flow down the same tree. Both travel as ordinary messages
//     through the simulated network so their overhead is measurable
//     (Fig. 3).
//   - Runtime-level quiescence detection (after Sinha, Kale and Ramkumar)
//     for applications that do not roll their own, such as the
//     distributed-control baseline. ACIC itself detects quiescence through
//     its reduction counters because tram batches are application messages
//     the runtime cannot interpret — mirroring the paper's §II-D argument.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"acic/internal/fabric"
	"acic/internal/metrics"
	"acic/internal/netsim"
	"acic/internal/relnet"
	"acic/internal/trace"
)

// Handler is the application logic hosted on one PE. All methods are called
// from that PE's goroutine only, so handler state needs no locking.
type Handler interface {
	// Deliver processes one application message to completion.
	Deliver(pe *PE, msg any)
	// Idle is invoked when the mailbox is empty. It should perform one unit
	// of background work (e.g. pop one pq entry) and return true, or return
	// false if there is nothing to do, letting the PE block until the next
	// message.
	Idle(pe *PE) bool
	// OnBroadcast delivers a broadcast payload originated at PE 0.
	OnBroadcast(pe *PE, epoch int64, payload any)
	// OnReduction delivers a completed reduction's combined value. It is
	// invoked on PE 0 only.
	OnReduction(pe *PE, epoch int64, value any)
}

// NopControl provides no-op OnBroadcast/OnReduction methods for handlers
// that do not use the introspection machinery.
type NopControl struct{}

// OnBroadcast implements Handler.
func (NopControl) OnBroadcast(*PE, int64, any) {}

// OnReduction implements Handler.
func (NopControl) OnReduction(*PE, int64, any) {}

// Quiescence is delivered to PE 0's Deliver when the runtime-level detector
// (Config.QuiescencePoll > 0) observes a quiescent state.
type Quiescence struct{}

// Span is the half-open PE range [Lo, Hi) a Runtime instance hosts. The
// zero value means "all PEs" — the single-process case. A distributed
// launch gives each worker process the span of its topology process;
// messages to PEs outside the span leave through the custom fabric.
type Span struct{ Lo, Hi int }

// Config parameterizes a Runtime.
type Config struct {
	// Topo is the machine shape. Required.
	Topo netsim.Topology
	// Latency is the network latency model.
	Latency netsim.LatencyModel
	// NewFabric, when non-nil, replaces the built-in simulated network:
	// the runtime calls it once with its deliver callback and sends every
	// non-bypass message through the returned fabric (e.g. a sockfab TCP
	// node or mesh). deliver must be invoked serially per destination, on
	// one dispatcher goroutine per process — the same contract netsim's
	// dispatcher honors. With a custom fabric the Jitter/Fault knobs are
	// rejected (they parameterize the simulation) and the zero-latency
	// mailbox bypass applies only to intra-process pairs inside Span.
	NewFabric func(deliver func(dst int, payload any)) (fabric.Fabric, error)
	// Span restricts which PEs this instance hosts; requires NewFabric
	// (the simulated network delivers every PE in-process). Zero = all.
	Span Span
	// Combine merges two reduction contributions. Required if any handler
	// calls Contribute.
	Combine func(a, b any) any
	// ControlMsgSize is the size, in items, attributed to reduction and
	// broadcast messages for latency purposes. Defaults to 16 (a histogram
	// snapshot is small next to a tram batch but not free).
	ControlMsgSize int
	// QuiescencePoll enables the runtime-level quiescence detector with the
	// given poll interval; zero disables it. On detection a Quiescence
	// message is delivered to PE 0.
	QuiescencePoll time.Duration
	// Reliability, when non-nil, inserts the reliable-delivery layer
	// (internal/relnet) between the runtime's send path and the fabric:
	// every envelope is sequence-stamped, retained until acknowledged, and
	// retransmitted on timeout, while the receive side deduplicates — so
	// the sent/delivered conservation atomics keep their exactly-once
	// meaning even under injected drop, duplication and reordering faults.
	// Installing reliability disables the zero-latency mailbox bypass so
	// that every envelope crosses the fabric and gets a sequence number.
	// The layer's Metrics/Trace default to this Config's when left nil.
	Reliability *relnet.Config
	// Fault installs the plan's filters on the fabric at construction and,
	// like Jitter, disables the zero-latency mailbox bypass so every
	// message is exposed to them. Runs that install filters directly via
	// Network() keep the bypass and only cover non-zero-latency traffic.
	Fault netsim.FaultPlan
	// Jitter, when non-nil, perturbs the modeled delay of every message
	// (see netsim.JitterFunc). Installing jitter disables the zero-latency
	// mailbox bypass so that every send crosses the simulated fabric and
	// is subject to the perturbation — the schedule-stress harness uses
	// this to explore adversarial delivery orders.
	Jitter netsim.JitterFunc
	// Trace, when non-nil, records per-PE scheduling events (deliveries,
	// idle work, blocking, reductions, broadcasts, compute sleeps). It
	// must have been created for at least Topo.TotalPEs() PEs.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives the runtime's scheduler telemetry
	// ("runtime." counters) and the network fabric's traffic counters
	// ("netsim." prefix). It must have been created for at least
	// Topo.TotalPEs() shards. Nil disables both at the cost of one branch
	// per event; the sent/delivered conservation atomics that feed
	// quiescence detection are independent of this registry either way.
	Metrics *metrics.Registry
}

func (c Config) controlMsgSize() int {
	if c.ControlMsgSize <= 0 {
		return 16
	}
	return c.ControlMsgSize
}

// Runtime hosts the PEs and the message fabric.
type Runtime struct {
	cfg Config
	fab fabric.Fabric
	net *netsim.Network // the built-in fabric; nil under Config.NewFabric
	rel *relnet.Layer   // nil unless Config.Reliability is set
	pes []*PE           // indexed by global PE id; nil outside [lo, hi)
	lo  int             // hosted span [lo, hi)
	hi  int

	// zeroBase is a per-(src,dst) bitmap of pairs whose tier has zero base
	// latency (Delay(tier, 0) == 0), precomputed so the fast-path check in
	// send is a single bit load instead of a tier classification plus a
	// latency-model evaluation per message. noPerItem caches whether the
	// model charges per-item serialization; when it does, only size-0
	// messages on a zero-base tier are truly free.
	zeroBase  []uint64
	noPerItem bool

	sent      atomic.Int64 // messages sent (all kinds)
	delivered atomic.Int64 // messages fully processed (all kinds)
	idlePEs   atomic.Int64 // PEs currently blocked on an empty mailbox

	// Scheduler telemetry, nil (free no-ops) without Config.Metrics. These
	// shadow the trace recorder's event kinds as cheap always-on counters;
	// the sent/delivered atomics above are NOT mirrored here because they
	// are correctness-critical inputs to quiescence detection.
	mDelivered  *metrics.Counter // app messages dispatched, per PE
	mReductions *metrics.Counter // reduction partials/completions handled
	mBroadcasts *metrics.Counter // broadcasts handled
	mIdleWork   *metrics.Counter // productive idle-trigger invocations
	mBlocks     *metrics.Counter // times a PE blocked on an empty mailbox
	mSleptNs    *metrics.Counter // simulated compute debt paid, in ns

	stopFlag atomic.Bool
	stopOnce sync.Once
	done     chan struct{} // closed when all PE goroutines have exited
	wg       sync.WaitGroup
	qdStop   chan struct{}
}

// PE is one processing element. Handlers receive their PE and may call its
// methods from the PE goroutine.
type PE struct {
	rt      *Runtime
	index   int
	mbox    *mailbox
	handler Handler

	// Precomputed binary-tree fan-out for reductions and broadcasts:
	// child PE ids (or -1) and how many contributions absorb expects.
	childL, childR int
	numChildren    int

	reductions map[int64]*redState

	deliveredApp int64 // app messages processed; Fig. 3's "work methods"

	// workDebt accumulates simulated compute time charged via Work. The
	// scheduler pays it down with real sleeps, so an overloaded PE's
	// mailbox backs up exactly as it would on a machine with one core per
	// PE — even when the host has fewer cores than the simulation has PEs.
	workDebt time.Duration
}

// workSleepThreshold batches Work debt into sleeps long enough for the OS
// timer to honor; finer-grained debts accumulate until they matter.
const workSleepThreshold = 200 * time.Microsecond

type redState struct {
	got   int
	value any
	has   bool
}

// Message envelope kinds.
type envKind uint8

const (
	kindApp envKind = iota
	kindReducePartial
	kindReduceDone
	kindBroadcast
	kindQuiesce
)

// envelope is the unit every mailbox moves; field order packs spill and
// kind into one word so the struct stays at 32 bytes (copied on every
// push/pop, and 256 of them sit in each spscRing).
type envelope struct {
	epoch   int64
	payload any
	// spill, when non-zero, marks an SPSC-fast-path envelope that
	// overflowed onto the mutex mailbox: the value is source PE + 1, and
	// popping it credits that pair's spillPending (see mailbox.pushFrom).
	spill int32
	kind  envKind
}

// New creates a Runtime and starts its fabric (the simulated network, or
// whatever Config.NewFabric builds). Call Start to launch PEs.
func New(cfg Config) (*Runtime, error) {
	rt := &Runtime{cfg: cfg, done: make(chan struct{}), qdStop: make(chan struct{})}
	numPEs := cfg.Topo.TotalPEs()
	rt.lo, rt.hi = cfg.Span.Lo, cfg.Span.Hi
	if rt.lo == 0 && rt.hi == 0 {
		rt.hi = numPEs
	}
	switch {
	case rt.lo < 0 || rt.hi > numPEs || rt.lo >= rt.hi:
		return nil, fmt.Errorf("runtime: span [%d, %d) outside topology's %d PEs", rt.lo, rt.hi, numPEs)
	case (rt.lo != 0 || rt.hi != numPEs) && cfg.NewFabric == nil:
		return nil, fmt.Errorf("runtime: span [%d, %d) requires a custom fabric; the simulated network hosts every PE in-process", rt.lo, rt.hi)
	}
	if cfg.NewFabric != nil && (cfg.Jitter != nil || !cfg.Fault.Empty()) {
		return nil, fmt.Errorf("runtime: Jitter and Fault parameterize the simulated network and cannot be installed on a custom fabric")
	}
	if cfg.QuiescencePoll > 0 && (rt.lo != 0 || rt.hi != numPEs) {
		// The poll-based detector compares process-local counters; with a
		// partial span those say nothing about remote PEs, so it could
		// declare quiescence while work is in flight elsewhere.
		return nil, fmt.Errorf("runtime: QuiescencePoll requires hosting all PEs; span [%d, %d) of %d is partial", rt.lo, rt.hi, numPEs)
	}
	rt.pes = make([]*PE, numPEs)
	for i := rt.lo; i < rt.hi; i++ {
		pe := &PE{rt: rt, index: i, mbox: newMailbox(numPEs), reductions: make(map[int64]*redState)}
		c1, c2, nc := treeChildren(i, numPEs)
		pe.childL, pe.childR, pe.numChildren = -1, -1, nc
		if c1 < numPEs {
			pe.childL = c1
		}
		if c2 < numPEs {
			pe.childR = c2
		}
		rt.pes[i] = pe
	}
	rt.noPerItem = cfg.Latency.PerItem == 0
	rt.zeroBase = make([]uint64, (numPEs*numPEs+63)/64)
	if cfg.Jitter == nil && cfg.Reliability == nil && cfg.Fault.Empty() {
		// With jitter installed no pair is reliably zero-delay, with
		// reliability installed every envelope needs a sequence number, and
		// with a fault plan every message must face the filters — in each
		// case the bitmap stays empty and every message crosses the fabric.
		// Under a custom fabric only hosted intra-process pairs may bypass:
		// everything else must reach the fabric to be routed (and, across
		// the process boundary, serialized and counted).
		for src := rt.lo; src < rt.hi; src++ {
			for dst := rt.lo; dst < rt.hi; dst++ {
				if cfg.NewFabric != nil && cfg.Topo.ProcessOf(src) != cfg.Topo.ProcessOf(dst) {
					continue
				}
				if cfg.Latency.Delay(cfg.Topo.TierOf(src, dst), 0) == 0 {
					idx := src*numPEs + dst
					rt.zeroBase[idx>>6] |= 1 << (idx & 63)
				}
			}
		}
	}
	rt.mDelivered = cfg.Metrics.Counter("runtime.app_delivered")
	rt.mReductions = cfg.Metrics.Counter("runtime.reductions")
	rt.mBroadcasts = cfg.Metrics.Counter("runtime.broadcasts")
	rt.mIdleWork = cfg.Metrics.Counter("runtime.idle_work")
	rt.mBlocks = cfg.Metrics.Counter("runtime.blocks")
	rt.mSleptNs = cfg.Metrics.Counter("runtime.work_slept_ns")
	if cfg.Reliability != nil {
		relCfg := *cfg.Reliability
		if relCfg.Metrics == nil {
			relCfg.Metrics = cfg.Metrics
		}
		if relCfg.Trace == nil {
			relCfg.Trace = cfg.Trace
		}
		rt.rel = relnet.New(relCfg, numPEs, func(dst int, payload any) {
			rt.deliverLocal(dst, payload)
		})
	}
	deliver := func(dst int, payload any) {
		if rt.rel != nil {
			// The layer deduplicates and strips its framing, then hands
			// application envelopes to deliverLocal.
			rt.rel.OnFabric(dst, payload)
			return
		}
		rt.deliverLocal(dst, payload)
	}
	if cfg.NewFabric != nil {
		fab, err := cfg.NewFabric(deliver)
		if err != nil {
			return nil, err
		}
		rt.fab = fab
	} else {
		net, err := netsim.NewNetworkWithRegistry(cfg.Topo, cfg.Latency, deliver, cfg.Metrics)
		if err != nil {
			return nil, err
		}
		if cfg.Jitter != nil {
			net.SetJitter(cfg.Jitter)
		}
		net.ApplyFaults(cfg.Fault)
		rt.net = net
		rt.fab = net
	}
	if rt.rel != nil {
		rt.rel.Bind(rt.fab)
	}
	return rt, nil
}

// deliverLocal pushes a fabric-delivered envelope into its destination
// mailbox. A delivery outside the hosted span is a routing bug in the
// fabric — made loud rather than dropped, because a silently lost
// envelope shows up much later as a quiescence hang.
func (rt *Runtime) deliverLocal(dst int, payload any) {
	pe := rt.pes[dst]
	if pe == nil {
		panic(fmt.Sprintf("runtime: fabric delivered to PE %d outside hosted span [%d, %d)", dst, rt.lo, rt.hi))
	}
	pe.mbox.push(payload.(envelope))
}

// Start instantiates one handler per hosted PE via factory and launches
// the PE goroutines. It must be called exactly once.
func (rt *Runtime) Start(factory func(pe *PE) Handler) {
	for _, pe := range rt.pes[rt.lo:rt.hi] {
		pe.handler = factory(pe)
	}
	for _, pe := range rt.pes[rt.lo:rt.hi] {
		rt.wg.Add(1)
		//acic:allow-goroutine PE workers are the runtime's own threads of execution
		go pe.run()
	}
	if rt.cfg.QuiescencePoll > 0 {
		//acic:allow-goroutine the quiescence monitor is part of the runtime's lifecycle
		go rt.quiescenceMonitor()
	}
	//acic:allow-goroutine done-channel closer joins the PE workers
	go func() {
		rt.wg.Wait()
		close(rt.done)
	}()
}

// Run is the convenience entry point: create the runtime, start handlers,
// wait for an Exit call, release resources.
func Run(cfg Config, factory func(pe *PE) Handler) error {
	rt, err := New(cfg)
	if err != nil {
		return err
	}
	rt.Start(factory)
	rt.Wait()
	return nil
}

// Wait blocks until every PE goroutine has exited (after RequestExit or a
// PE's Exit call).
func (rt *Runtime) Wait() {
	<-rt.done
	rt.fab.Close()
}

// RequestExit asks all PEs to stop once they finish their current handler.
// Safe to call from any goroutine, multiple times.
func (rt *Runtime) RequestExit() {
	rt.stopOnce.Do(func() {
		rt.stopFlag.Store(true)
		close(rt.qdStop)
		for _, pe := range rt.pes[rt.lo:rt.hi] {
			pe.mbox.close()
		}
	})
}

// NumPEs returns the machine-wide PE count (hosted or not).
func (rt *Runtime) NumPEs() int { return len(rt.pes) }

// HostedSpan returns the PE range this instance hosts, [Lo, Hi).
func (rt *Runtime) HostedSpan() Span { return Span{Lo: rt.lo, Hi: rt.hi} }

// Topology returns the machine shape.
func (rt *Runtime) Topology() netsim.Topology { return rt.cfg.Topo }

// NetworkStats returns the simulated network's counters, or zeros under a
// custom fabric (a real transport has no simulation counters).
func (rt *Runtime) NetworkStats() netsim.Stats {
	if rt.net == nil {
		return netsim.Stats{}
	}
	return rt.net.Stats()
}

// Network exposes the underlying simulated fabric, primarily so
// fault-injection tests can install a netsim.DropFilter. Nil when the
// runtime was built over a custom fabric (Config.NewFabric). Note that
// zero-delay messages bypass the network (they go straight to the
// destination mailbox), so a filter only sees messages with non-zero
// modeled latency.
func (rt *Runtime) Network() *netsim.Network { return rt.net }

// Fabric exposes the fabric the runtime sends through — the simulated
// network or the custom one built by Config.NewFabric.
func (rt *Runtime) Fabric() fabric.Fabric { return rt.fab }

// MessagesSent returns the total number of messages sent so far.
func (rt *Runtime) MessagesSent() int64 { return rt.sent.Load() }

// MessagesDelivered returns the total number of envelopes dispatched so far.
func (rt *Runtime) MessagesDelivered() int64 { return rt.delivered.Load() }

// Audit is a snapshot of the runtime's message-conservation ledger. Every
// frame put onto the fabric — an original envelope send (Sent), a relnet
// retransmission (Retransmits), a fabric-injected duplicate
// (NetDuplicated) or a standalone ack (AcksSent) — is exactly one of:
// dispatched to a handler (Delivered), still inside the simulated fabric
// (NetQueue), discarded by an injected fault filter (NetDropped), parked in
// a PE mailbox (MailboxBacklog), pushed at a mailbox that had already
// closed during shutdown (DroppedAtExit), swallowed by the relnet dedup
// window (DupDiscarded), or consumed as an ack by the layer (AcksConsumed).
// The identity Unaccounted() == 0 is exact once Wait has returned (fabric
// timer frames, which are uncounted, have all fired by then); mid-run
// snapshots are only approximate because the counters are read at
// different instants and pending timers sit in NetQueue.
//
// Without Config.Reliability the relnet columns are zero and the identity
// reduces to the pre-relnet one (with NetDuplicated covering fabric-level
// duplication, which is then delivered twice).
type Audit struct {
	Sent           int64
	Delivered      int64
	NetQueue       int64
	NetDropped     int64
	MailboxBacklog int64
	DroppedAtExit  int64

	// Reliable-delivery columns (zero without Config.Reliability).
	Retransmits  int64 // data frames re-sent by the timeout machinery
	DupDiscarded int64 // frames swallowed by the receiver dedup window
	AcksSent     int64 // standalone ack frames handed to the fabric
	AcksConsumed int64 // standalone ack frames consumed by the layer
	// Stranded is relnet's diagnostic for frames whose retransmit
	// protection lapsed against a closing fabric. It is NOT part of the
	// conservation identity (the frame's first transmission is already
	// accounted there); nonzero after a clean run means the close raced
	// the reliability layer.
	Stranded int64

	// NetDuplicated counts fabric-injected duplicate copies (netsim
	// DupFilter ghosts), with or without the reliability layer.
	NetDuplicated int64

	// Process-boundary columns (zero on a single-process fabric). A frame
	// written to the transport boundary leaves this process's ledger
	// through BoundaryOut; a frame decoded off the boundary enters it
	// through BoundaryIn. Within one process the identity holds with both
	// columns in place; across a whole launch, sum(BoundaryOut) ==
	// sum(BoundaryIn) once every process has drained — the launcher checks
	// exactly that.
	BoundaryOut int64
	BoundaryIn  int64
}

// Unaccounted returns the number of fabric frames the ledger cannot place —
// nonzero means a message was silently lost or double-counted somewhere.
func (a Audit) Unaccounted() int64 {
	return a.Sent + a.Retransmits + a.NetDuplicated + a.AcksSent + a.BoundaryIn -
		a.Delivered - a.NetQueue - a.NetDropped - a.MailboxBacklog - a.DroppedAtExit -
		a.DupDiscarded - a.AcksConsumed - a.BoundaryOut
}

// Audit snapshots the conservation ledger. Call after Wait for an exact
// accounting; the schedule-stress harness checks Unaccounted() == 0 and
// NetQueue == 0 after every run.
func (rt *Runtime) Audit() Audit {
	ns := rt.NetworkStats()
	a := Audit{
		Sent:          rt.sent.Load(),
		Delivered:     rt.delivered.Load(),
		NetQueue:      int64(rt.fab.QueueLen()),
		NetDropped:    ns.Dropped,
		NetDuplicated: ns.Duplicated,
	}
	if rt.rel != nil {
		rs := rt.rel.Stats()
		a.Retransmits = rs.Retransmits
		a.DupDiscarded = rs.DupDiscarded
		a.AcksSent = rs.AcksSent
		a.AcksConsumed = rs.AcksConsumed
		a.Stranded = rs.Stranded
	}
	if b, ok := rt.fab.(fabric.Boundary); ok {
		a.BoundaryOut, a.BoundaryIn = b.BoundaryCounts()
	}
	for _, pe := range rt.pes[rt.lo:rt.hi] {
		a.MailboxBacklog += int64(pe.mbox.len())
		a.DroppedAtExit += pe.mbox.dropped.Load()
	}
	return a
}

// Handler returns the handler instance hosted on PE i, for post-run result
// collection.
func (rt *Runtime) Handler(i int) Handler { return rt.pes[i].handler }

// Inject delivers msg to dst's handler from outside the PE array — the way
// a driver seeds the initial work (e.g. the source vertex's first
// relaxation) or a timer re-enters the message-driven world. Safe from any
// goroutine; delivery is immediate (no simulated latency).
func (rt *Runtime) Inject(dst int, msg any) {
	rt.send(dst, dst, envelope{kind: kindApp, payload: msg}, 0)
}

// send routes an envelope through the simulated network, or directly into
// the destination mailbox when the modeled delay is zero (keeping the
// single dispatcher goroutine off the critical path of shared-memory runs).
// The zero-delay decision is one bitmap load: the bit covers the tier's
// base latency, and noPerItem/size==0 covers the serialization term, so
// the outcome is identical to evaluating Delay(tier, size) == 0.
//
// send is the any-goroutine entry point (Inject, timers); its zero-delay
// bypass takes the mailbox mutex. Sends originating on a PE goroutine go
// through sendFrom, whose bypass uses that pair's SPSC ring instead.
//
//acic:noalloc
func (rt *Runtime) send(src, dst int, env envelope, size int) {
	rt.sent.Add(1)
	idx := src*len(rt.pes) + dst
	if rt.zeroBase[idx>>6]&(1<<(idx&63)) != 0 && (rt.noPerItem || size == 0) {
		rt.pes[dst].mbox.push(env)
		return
	}
	if rt.rel != nil {
		rt.rel.Send(src, dst, env, size) //acic:allow-alloc fabric path queues the envelope; the ring fast path above stays alloc-free
		return
	}
	rt.fab.Send(src, dst, env, size) //acic:allow-alloc fabric path queues the envelope; the ring fast path above stays alloc-free
}

// sendFrom is send for envelopes originating on src's own PE goroutine —
// the single-producer requirement of the destination's per-source ring.
// Every other aspect matches send.
//
//acic:noalloc
func (rt *Runtime) sendFrom(src, dst int, env envelope, size int) {
	rt.sent.Add(1)
	idx := src*len(rt.pes) + dst
	if rt.zeroBase[idx>>6]&(1<<(idx&63)) != 0 && (rt.noPerItem || size == 0) {
		rt.pes[dst].mbox.pushFrom(src, env)
		return
	}
	if rt.rel != nil {
		rt.rel.Send(src, dst, env, size) //acic:allow-alloc fabric path queues the envelope; the ring fast path above stays alloc-free
		return
	}
	rt.fab.Send(src, dst, env, size) //acic:allow-alloc fabric path queues the envelope; the ring fast path above stays alloc-free
}

// selfPush counts a mailbox self-push in sent before enqueueing it. Every
// envelope that reaches dispatch bumps delivered, so any path that feeds a
// mailbox without passing through send — the root's own broadcast copy, the
// root's completed-reduction delivery, the quiescence notification — must
// bump sent symmetrically. Otherwise delivered permanently outruns sent and
// the conservation check sent == delivered can never hold again; worse, a
// stale surplus of delivered can mask exactly that many in-flight messages,
// turning the detector's equality into a false-quiescence window.
func (pe *PE) selfPush(env envelope) {
	pe.rt.sent.Add(1)
	pe.mbox.push(env)
}

// --- PE API (handler-side) ---

// Index returns this PE's id in [0, NumPEs).
func (pe *PE) Index() int { return pe.index }

// NumPEs returns the machine's PE count.
func (pe *PE) NumPEs() int { return len(pe.rt.pes) }

// Runtime returns the hosting runtime.
func (pe *PE) Runtime() *Runtime { return pe.rt }

// Topology returns the simulated machine shape.
func (pe *PE) Topology() netsim.Topology { return pe.rt.cfg.Topo }

// Send delivers msg to dst's handler after the simulated network delay for
// a message of the given size (in items).
func (pe *PE) Send(dst int, msg any, size int) {
	pe.rt.sendFrom(pe.index, dst, envelope{kind: kindApp, payload: msg}, size)
}

// Delivered returns the number of application messages this PE has
// processed — the "work methods executed" metric of Fig. 3.
func (pe *PE) Delivered() int64 { return pe.deliveredApp }

// Work charges d of simulated compute time to this PE. The runtime pays
// accumulated debt down with real sleeps between messages, serializing the
// PE's throughput: a PE owning a scale-free hub really does fall behind,
// reproducing the load-imbalance effects of §IV-F on hosts with fewer
// cores than simulated PEs. Zero-cost configurations never sleep.
func (pe *PE) Work(d time.Duration) { pe.workDebt += d }

// Exit requests a runtime-wide stop. Typically called by PE 0 when the
// algorithm's own termination condition fires.
func (pe *PE) Exit() { pe.rt.RequestExit() }

// Contribute submits this PE's contribution to reduction epoch. Every PE
// must contribute exactly once per epoch; contributions combine up a binary
// tree and the final value arrives at PE 0's OnReduction. Contributions to
// different epochs may be in flight concurrently.
func (pe *PE) Contribute(epoch int64, value any) {
	if pe.rt.cfg.Combine == nil {
		panic("runtime: Contribute requires Config.Combine")
	}
	pe.absorb(epoch, value)
}

// Broadcast sends payload down the tree from PE 0; every PE (including the
// root) receives OnBroadcast. It panics if called on another PE, matching
// the paper's root-driven broadcast cycle. The root's own delivery goes
// through its mailbox rather than recursing, so a broadcast issued from
// OnReduction cannot grow the stack and interleaves fairly with queued
// application messages.
func (pe *PE) Broadcast(epoch int64, payload any) {
	if pe.index != 0 {
		panic(fmt.Sprintf("runtime: Broadcast called on PE %d, only the root may broadcast", pe.index))
	}
	pe.selfPush(envelope{kind: kindBroadcast, epoch: epoch, payload: payload})
}

// --- internal machinery ---

func treeParent(i int) int { return (i - 1) / 2 }

func treeChildren(i, n int) (int, int, int) {
	c1, c2 := 2*i+1, 2*i+2
	count := 0
	if c1 < n {
		count++
	}
	if c2 < n {
		count++
	}
	return c1, c2, count
}

// absorb merges a contribution (local or from a child subtree) into the
// epoch's reduction state, forwarding the partial up the tree when complete.
func (pe *PE) absorb(epoch int64, value any) {
	expected := 1 + pe.numChildren
	st := pe.reductions[epoch]
	if st == nil {
		st = &redState{}
		pe.reductions[epoch] = st
	}
	if st.has {
		st.value = pe.rt.cfg.Combine(st.value, value)
	} else {
		st.value = value
		st.has = true
	}
	st.got++
	if st.got < expected {
		return
	}
	delete(pe.reductions, epoch)
	if pe.index == 0 {
		// Deliver through the mailbox: the final contribution may have been
		// made synchronously from a handler (OnBroadcast of the previous
		// cycle), and a direct call would recurse cycle after cycle.
		pe.selfPush(envelope{kind: kindReduceDone, epoch: epoch, payload: st.value})
		return
	}
	pe.rt.sendFrom(pe.index, treeParent(pe.index),
		envelope{kind: kindReducePartial, epoch: epoch, payload: st.value},
		pe.rt.cfg.controlMsgSize())
}

func (pe *PE) handleBroadcast(env envelope) {
	size := pe.rt.cfg.controlMsgSize()
	if pe.rt.cfg.NewFabric != nil {
		// Over a real transport the relay tree is a shutdown hazard: a
		// terminate broadcast makes the first PE to process it stop every
		// sibling in its process (RequestExit), including siblings that
		// still hold their own copy undispatched — and with it the relay
		// duty to their (possibly remote) subtree, which would then never
		// terminate. The root fans out directly instead: every send is on
		// the fabric before the root's own handler can initiate shutdown,
		// so no delivery depends on an intermediate PE staying alive.
		if pe.index == 0 {
			for i := 1; i < len(pe.rt.pes); i++ {
				pe.rt.sendFrom(pe.index, i, env, size)
			}
		}
	} else {
		if pe.childL >= 0 {
			pe.rt.sendFrom(pe.index, pe.childL, env, size)
		}
		if pe.childR >= 0 {
			pe.rt.sendFrom(pe.index, pe.childR, env, size)
		}
	}
	pe.handler.OnBroadcast(pe, env.epoch, env.payload)
}

func (pe *PE) dispatch(env envelope) {
	tr := pe.rt.cfg.Trace
	switch env.kind {
	case kindApp:
		pe.handler.Deliver(pe, env.payload)
		pe.deliveredApp++
		pe.rt.mDelivered.Inc(pe.index)
		if tr != nil {
			tr.Record(pe.index, trace.KindDeliver, 0)
		}
	case kindReducePartial:
		pe.absorb(env.epoch, env.payload)
		pe.rt.mReductions.Inc(pe.index)
		if tr != nil {
			tr.Record(pe.index, trace.KindReduction, env.epoch)
		}
	case kindReduceDone:
		pe.handler.OnReduction(pe, env.epoch, env.payload)
		pe.rt.mReductions.Inc(pe.index)
		if tr != nil {
			tr.Record(pe.index, trace.KindReduction, env.epoch)
		}
	case kindBroadcast:
		pe.handleBroadcast(env)
		pe.rt.mBroadcasts.Inc(pe.index)
		if tr != nil {
			tr.Record(pe.index, trace.KindBroadcast, env.epoch)
		}
	case kindQuiesce:
		pe.handler.Deliver(pe, Quiescence{})
	}
	pe.rt.delivered.Add(1)
}

func (pe *PE) run() {
	defer pe.rt.wg.Done()
	for {
		if pe.rt.stopFlag.Load() {
			return
		}
		tr := pe.rt.cfg.Trace
		if pe.workDebt >= workSleepThreshold {
			d := pe.workDebt
			pe.workDebt = 0
			//acic:allow-wallclock paying off accumulated work debt is how simulated compute cost occupies real time
			time.Sleep(d)
			pe.rt.mSleptNs.Add(pe.index, int64(d))
			if tr != nil {
				tr.Record(pe.index, trace.KindWorkSleep, int64(d))
			}
			continue
		}
		if msg, ok := pe.mbox.tryPop(); ok {
			pe.dispatch(msg)
			continue
		}
		if pe.handler.Idle(pe) {
			pe.rt.mIdleWork.Inc(pe.index)
			if tr != nil {
				tr.Record(pe.index, trace.KindIdleWork, 0)
			}
			continue
		}
		// Truly idle: block until the next message or shutdown.
		pe.rt.mBlocks.Inc(pe.index)
		if tr != nil {
			tr.Record(pe.index, trace.KindBlock, 0)
		}
		pe.rt.idlePEs.Add(1)
		msg, ok := pe.mbox.pop()
		pe.rt.idlePEs.Add(-1)
		if tr != nil {
			tr.Record(pe.index, trace.KindWake, 0)
		}
		if !ok {
			return
		}
		pe.dispatch(msg)
	}
}

// quiescenceMonitor implements the runtime-level detector: the system is
// quiescent when all PEs are blocked idle, the send and delivery counters
// match, nothing is in flight in the network, and — to close the race the
// paper also closes by requiring two consecutive agreeing reductions
// (§II-D) — the same snapshot is observed twice in a row.
func (rt *Runtime) quiescenceMonitor() {
	type snap struct{ sent, delivered, idle int64 }
	var prev snap
	havePrev := false
	ticker := time.NewTicker(rt.cfg.QuiescencePoll)
	defer ticker.Stop()
	for {
		select {
		case <-rt.qdStop:
			return
		case <-ticker.C:
		}
		cur := snap{rt.sent.Load(), rt.delivered.Load(), rt.idlePEs.Load()}
		quiet := cur.sent == cur.delivered &&
			cur.idle == int64(rt.hi-rt.lo) &&
			rt.fab.QueueLen() == 0
		if quiet && havePrev && cur == prev {
			rt.pes[rt.lo].selfPush(envelope{kind: kindQuiesce})
			return
		}
		prev, havePrev = cur, quiet
	}
}
