package runtime

import (
	"errors"
	"testing"

	"acic/internal/wire"
)

type wirePayload struct{ x int32 }

func envCodec() *wire.Codec {
	c := wire.NewCodec()
	RegisterWire(c)
	c.Register(0x80, wirePayload{},
		func(c *wire.Codec, buf []byte, v any) ([]byte, error) {
			return wire.AppendI32(buf, v.(wirePayload).x), nil
		},
		func(c *wire.Codec, r *wire.Reader) (any, error) {
			return wirePayload{x: r.I32()}, nil
		},
		nil)
	return c
}

func TestEnvelopeWireRoundTrip(t *testing.T) {
	c := envCodec()
	want := envelope{epoch: 12, kind: kindBroadcast, payload: wirePayload{x: -3}, spill: 7}
	frame, err := c.EncodeFrame(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	env := got.(envelope)
	if env.epoch != 12 || env.kind != kindBroadcast || env.payload.(wirePayload).x != -3 {
		t.Fatalf("round trip: %+v", env)
	}
	if env.spill != 0 {
		t.Errorf("spill = %d crossed the wire; it is process-local routing state", env.spill)
	}
}

func TestEnvelopeWireRejectsBadKind(t *testing.T) {
	c := envCodec()
	frame, err := c.EncodeFrame(nil, envelope{kind: kindApp, payload: wirePayload{}})
	if err != nil {
		t.Fatal(err)
	}
	// kind byte sits after [hdr 6][epoch 8].
	frame[14] = uint8(kindQuiesce) + 1
	if _, _, err := c.DecodeFrame(frame); !errors.Is(err, wire.ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}
