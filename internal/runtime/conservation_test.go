package runtime

// Regression tests for self-push accounting: every path that feeds a
// mailbox without crossing rt.send — the root's own broadcast copy, the
// root's completed-reduction delivery, the quiescence notification — must
// bump sent symmetrically with the delivered bump its dispatch performs.
// Before the fix those self-pushes inflated delivered past sent, so the
// runtime-level detector's sent == delivered could never hold again after
// the first broadcast cycle: quiescence silently stopped firing (a
// permanent hang for any caller waiting on it), and the stale surplus of
// delivered could mask exactly that many genuinely in-flight messages.

import (
	"sync/atomic"
	"testing"
	"time"

	"acic/internal/netsim"
)

// introspector drives the paper's continuous broadcast → contribute →
// reduce cycle for a fixed number of epochs, then goes idle and waits for
// the runtime-level quiescence detector.
type introspector struct {
	NopControl
	epochs   int64
	cycles   *atomic.Int64
	quiesced *atomic.Int64
}

func (h *introspector) Deliver(pe *PE, msg any) {
	if _, ok := msg.(Quiescence); ok {
		h.quiesced.Add(1)
		pe.Exit()
		return
	}
	// Kick message: the root opens the first cycle.
	pe.Broadcast(1, nil)
}

func (h *introspector) OnBroadcast(pe *PE, epoch int64, payload any) {
	pe.Contribute(epoch, int64(1))
}

func (h *introspector) OnReduction(pe *PE, epoch int64, value any) {
	h.cycles.Add(1)
	if epoch < h.epochs {
		pe.Broadcast(epoch+1, nil)
	}
}

func (h *introspector) Idle(pe *PE) bool { return false }

// TestQuiescenceAfterBroadcastReduceLoop is the regression test for the
// self-push fix: with the runtime-level detector active alongside an
// introspection loop, quiescence must still fire after the loop stops.
// On pre-fix code each cycle's root self-pushes leave delivered > sent
// forever, the detector never agrees, and this test times out in Wait.
func TestQuiescenceAfterBroadcastReduceLoop(t *testing.T) {
	var cycles, quiesced atomic.Int64
	const epochs = 25
	cfg := Config{
		Topo:           netsim.SingleNode(6),
		Latency:        netsim.LatencyModel{IntraProcess: 20 * time.Microsecond},
		Combine:        func(a, b any) any { return a.(int64) + b.(int64) },
		QuiescencePoll: 200 * time.Microsecond,
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler {
		return &introspector{epochs: epochs, cycles: &cycles, quiesced: &quiesced}
	})
	rt.send(0, 0, envelope{kind: kindApp, payload: "kick"}, 1)
	waitOrFail(t, rt, 10*time.Second)

	if got := cycles.Load(); got != epochs {
		t.Errorf("completed %d reduction cycles, want %d", got, epochs)
	}
	if got := quiesced.Load(); got != 1 {
		t.Errorf("quiescence fired %d times, want 1", got)
	}
	if a := rt.Audit(); a.Unaccounted() != 0 {
		t.Errorf("conservation ledger unbalanced after %d broadcast/reduce cycles: %+v (unaccounted %d)",
			epochs, a, a.Unaccounted())
	}
}

// TestAuditBalancedAfterQuiescence checks the exact post-run ledger on the
// plain quiescence path (no reductions): Sent must equal Delivered plus
// every accounted sink, so a single skewed counter anywhere shows up as a
// nonzero Unaccounted.
func TestAuditBalancedAfterQuiescence(t *testing.T) {
	var hops, quiesced atomic.Int64
	cfg := Config{
		Topo:           netsim.SingleNode(2),
		Latency:        netsim.LatencyModel{IntraProcess: 50 * time.Microsecond},
		QuiescencePoll: 200 * time.Microsecond,
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(func(pe *PE) Handler { return &relayApp{hops: &hops, quiesced: &quiesced} })
	rt.send(0, 0, envelope{kind: kindApp, payload: 30}, 1)
	waitOrFail(t, rt, 10*time.Second)

	a := rt.Audit()
	if a.Unaccounted() != 0 {
		t.Errorf("unaccounted = %d, ledger %+v", a.Unaccounted(), a)
	}
	if a.Sent != rt.MessagesSent() || a.Delivered != rt.MessagesDelivered() {
		t.Errorf("audit counters disagree with accessors: %+v vs sent=%d delivered=%d",
			a, rt.MessagesSent(), rt.MessagesDelivered())
	}
}
