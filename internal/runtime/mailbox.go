package runtime

import (
	"sync"
	"sync/atomic"
)

// mailbox is an unbounded MPSC queue feeding one PE's scheduler loop.
//
// Unboundedness matters: the netsim dispatcher goroutine delivers messages
// for every PE, so a delivery must never block on a full buffer — one slow
// PE would head-of-line-block the whole simulated network. Memory is bounded
// in practice by the quiescence invariant (created == processed drains all
// queues).
//
// Two paths feed the consumer:
//
//   - The general path: producers append envelopes to prod under the mutex;
//     the consumer, when its private cons slice runs dry, swaps the whole
//     prod slice in under a single lock acquisition and then pops lock-free.
//     The two backing arrays ping-pong between the roles so steady-state
//     traffic allocates nothing.
//
//   - The SPSC fast path: sends from a PE goroutine over a zero-latency
//     pair (Runtime.sendFrom) go through a bounded per-source ring buffer
//     (spscRing), created lazily on first use, so the hottest sends touch
//     no mutex at all. On overflow the producer spills to the mutex path
//     and stays there — marking each spilled envelope with its source —
//     until the consumer has drained every spilled envelope of that pair,
//     which preserves per-pair FIFO order across the spill. The consumer
//     drains rings before the swap-drained slices; ring entries of a pair
//     always predate its spilled entries, so the preference is safe.
//
// queued counts items on both paths, so len() (feeding the conservation
// audit's MailboxBacklog column) is exact from any goroutine.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	prod   []envelope // producer side, guarded by mu
	closed bool

	// Consumer-private state: touched only by the single consumer
	// goroutine, never under mu.
	cons       []envelope
	head       int
	ringCursor int // round-robin scan position over rings

	// rings[src] is the SPSC fast path from PE src, nil until that PE
	// first sends here over a zero-latency pair. Only src's goroutine
	// stores the pointer (CAS), so each ring has exactly one producer.
	rings []atomic.Pointer[spscRing]

	// ringItems counts envelopes currently published to rings (ring items
	// are deliberately NOT in queued; len() sums both, keeping the fast
	// path at one counter update per push/pop). The consumer checks it to
	// skip the ring scan, and the sleeping handshake below reads it to
	// close the lost-wakeup race.
	ringItems atomic.Int64

	// sleeping is set by the consumer just before it re-checks for work
	// and blocks in cond.Wait; ring producers only take the mutex to
	// signal when they observe it set. Sequentially consistent atomics
	// make the two sides' store/load pairs a Dekker handshake: at least
	// one side sees the other, so no wakeup is lost.
	sleeping atomic.Bool

	// queued counts mutex-path items: prod plus un-popped items in cons.
	// len() adds ringItems, so it is safe from any goroutine without
	// touching consumer-private state.
	queued atomic.Int64

	// dropped counts pushes that arrived after close — in-flight messages
	// discarded during shutdown. The conservation audit needs them: they
	// were counted in sent but will never be counted in delivered.
	dropped atomic.Int64
}

func newMailbox(numPEs int) *mailbox {
	m := &mailbox{rings: make([]atomic.Pointer[spscRing], numPEs)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push appends an item and wakes the consumer. Push on a closed mailbox is
// dropped (the PE has already exited). Safe from any goroutine.
//
//acic:noalloc
func (m *mailbox) push(env envelope) {
	m.mu.Lock()
	if !m.closed {
		m.prod = append(m.prod, env)
		m.queued.Add(1)
		m.cond.Signal()
	} else {
		m.dropped.Add(1)
	}
	m.mu.Unlock()
}

// pushFrom is the SPSC fast path: src's PE goroutine (and nobody else)
// enqueues env through its dedicated ring, falling back to the mutex path
// on overflow. The fallback is sticky per pair — once spilling, later
// envelopes keep spilling until the consumer has popped every spilled
// envelope — because a ring entry published after a spilled entry would
// otherwise be consumed first (the consumer prefers rings) and break
// per-pair FIFO.
//
//acic:noalloc
func (m *mailbox) pushFrom(src int, env envelope) {
	r := m.rings[src].Load()
	if r == nil {
		r = &spscRing{} //acic:allow-alloc one ring per live (src,dst) pair, first envelope only
		if !m.rings[src].CompareAndSwap(nil, r) {
			// Only src stores this slot, so a lost CAS is impossible in
			// practice; reload defensively anyway.
			r = m.rings[src].Load()
		}
	}
	if r.spilling {
		if r.spillPending.Load() == 0 && !r.full() {
			r.spilling = false
		} else {
			m.pushSpill(src, r, env)
			return
		}
	}
	if !r.tryPush(env) {
		r.spilling = true
		m.pushSpill(src, r, env)
		return
	}
	m.ringItems.Add(1)
	if m.sleeping.Load() {
		m.mu.Lock()
		m.cond.Signal()
		m.mu.Unlock()
	}
}

// pushSpill diverts an overflowing fast-path envelope to the mutex path,
// marked with its source so popCons can credit the pair's spillPending.
func (m *mailbox) pushSpill(src int, r *spscRing, env envelope) {
	env.spill = int32(src) + 1
	r.spillPending.Add(1)
	m.push(env)
}

// popRing scans the rings round-robin and pops the first available
// envelope. Consumer goroutine only; callers gate on ringItems to skip
// the scan when every ring is empty.
func (m *mailbox) popRing() (envelope, bool) {
	n := len(m.rings)
	for i := 0; i < n; i++ {
		idx := m.ringCursor
		m.ringCursor++
		if m.ringCursor == n {
			m.ringCursor = 0
		}
		if r := m.rings[idx].Load(); r != nil {
			if env, ok := r.tryPop(); ok {
				m.ringItems.Add(-1)
				return env, true
			}
		}
	}
	return envelope{}, false
}

// tryPop removes the oldest item without blocking. ok is false if empty.
// Must be called from the consumer goroutine only. Rings drain before the
// swap-drained slices: a pair's ring entries always predate its spilled
// entries, so the preference keeps per-pair FIFO.
func (m *mailbox) tryPop() (envelope, bool) {
	if m.ringItems.Load() > 0 {
		if env, ok := m.popRing(); ok {
			return env, true
		}
	}
	if m.head < len(m.cons) {
		return m.popCons(), true
	}
	m.mu.Lock()
	if len(m.prod) == 0 {
		m.mu.Unlock()
		return envelope{}, false
	}
	m.swapLocked()
	m.mu.Unlock()
	return m.popCons(), true
}

// pop blocks until an item is available or the mailbox is closed.
// ok is false only when closed and drained. Consumer goroutine only.
func (m *mailbox) pop() (envelope, bool) {
	for {
		if env, ok := m.tryPop(); ok {
			return env, true
		}
		m.mu.Lock()
		m.sleeping.Store(true)
		// Re-check after announcing sleep: a ring producer that published
		// before observing sleeping is caught here, one that published
		// after will observe it and signal under the mutex.
		if m.ringItems.Load() > 0 {
			m.sleeping.Store(false)
			m.mu.Unlock()
			continue
		}
		for len(m.prod) == 0 {
			if m.closed {
				m.sleeping.Store(false)
				m.mu.Unlock()
				return envelope{}, false
			}
			m.cond.Wait()
			if m.ringItems.Load() > 0 {
				break
			}
		}
		m.sleeping.Store(false)
		if len(m.prod) > 0 {
			m.swapLocked()
			m.mu.Unlock()
			return m.popCons(), true
		}
		m.mu.Unlock()
	}
}

// swapLocked drains the producer slice into the consumer's private slice —
// the whole batch under one lock acquisition. The consumer's exhausted
// backing array (still at full capacity) becomes the new producer slice,
// so the two arrays alternate roles instead of being reallocated.
func (m *mailbox) swapLocked() {
	m.prod, m.cons = m.cons[:0], m.prod
	m.head = 0
}

// popCons returns the next item from the consumer-private slice, which is
// known to be non-empty. A spill-marked head envelope is the FIFO fence of
// its pair: every envelope still in that pair's ring predates it (spilling
// is sticky until the consumer has popped all spilled envelopes), so the
// ring is served first and the spilled envelope stays at head until the
// ring is empty. This check — not the ringItems gate in tryPop, which is
// only a throughput optimization and is racy against an in-flight
// publish — is what guarantees per-pair FIFO across a spill. Consuming a
// spilled envelope credits its pair's spillPending so the producer can
// eventually resume its ring.
func (m *mailbox) popCons() envelope {
	env := m.cons[m.head]
	if env.spill != 0 {
		r := m.rings[env.spill-1].Load()
		if renv, ok := r.tryPop(); ok {
			m.ringItems.Add(-1)
			return renv
		}
		r.spillPending.Add(-1)
		env.spill = 0
	}
	m.cons[m.head] = envelope{} // release payload for GC
	m.head++
	if m.head == len(m.cons) {
		m.cons = m.cons[:0]
		m.head = 0
	}
	m.queued.Add(-1)
	return env
}

// len reports the number of queued items on both paths. Safe from any
// goroutine.
func (m *mailbox) len() int {
	return int(m.queued.Load() + m.ringItems.Load())
}

// close wakes the consumer and makes subsequent pops return ok=false once
// drained.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
