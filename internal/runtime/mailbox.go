package runtime

import (
	"sync"
	"sync/atomic"
)

// mailbox is an unbounded MPSC queue feeding one PE's scheduler loop.
//
// Unboundedness matters: the netsim dispatcher goroutine delivers messages
// for every PE, so a delivery must never block on a full buffer — one slow
// PE would head-of-line-block the whole simulated network. Memory is bounded
// in practice by the quiescence invariant (created == processed drains all
// queues).
//
// The queue is typed (envelope values, no interface boxing) and uses
// two-slice swap draining: producers append to prod under the mutex; the
// consumer, when its private cons slice runs dry, swaps the whole prod
// slice in under a single lock acquisition and then pops lock-free. Lock
// operations on the consumer side are therefore O(1) per drained batch
// rather than O(1) per message, and the two backing arrays ping-pong
// between the roles so steady-state traffic allocates nothing.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	prod   []envelope // producer side, guarded by mu
	closed bool

	// Consumer-private state: touched only by the single consumer
	// goroutine, never under mu.
	cons []envelope
	head int

	// queued counts items in prod plus un-popped items in cons, so len()
	// is safe from any goroutine without touching consumer-private state.
	queued atomic.Int64

	// dropped counts pushes that arrived after close — in-flight messages
	// discarded during shutdown. The conservation audit needs them: they
	// were counted in sent but will never be counted in delivered.
	dropped atomic.Int64
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push appends an item and wakes the consumer. Push on a closed mailbox is
// dropped (the PE has already exited).
func (m *mailbox) push(env envelope) {
	m.mu.Lock()
	if !m.closed {
		m.prod = append(m.prod, env)
		m.queued.Add(1)
		m.cond.Signal()
	} else {
		m.dropped.Add(1)
	}
	m.mu.Unlock()
}

// tryPop removes the oldest item without blocking. ok is false if empty.
// Must be called from the consumer goroutine only.
func (m *mailbox) tryPop() (envelope, bool) {
	if m.head < len(m.cons) {
		return m.popCons(), true
	}
	m.mu.Lock()
	if len(m.prod) == 0 {
		m.mu.Unlock()
		return envelope{}, false
	}
	m.swapLocked()
	m.mu.Unlock()
	return m.popCons(), true
}

// pop blocks until an item is available or the mailbox is closed.
// ok is false only when closed and drained. Consumer goroutine only.
func (m *mailbox) pop() (envelope, bool) {
	if m.head < len(m.cons) {
		return m.popCons(), true
	}
	m.mu.Lock()
	for len(m.prod) == 0 {
		if m.closed {
			m.mu.Unlock()
			return envelope{}, false
		}
		m.cond.Wait()
	}
	m.swapLocked()
	m.mu.Unlock()
	return m.popCons(), true
}

// swapLocked drains the producer slice into the consumer's private slice —
// the whole batch under one lock acquisition. The consumer's exhausted
// backing array (still at full capacity) becomes the new producer slice,
// so the two arrays alternate roles instead of being reallocated.
func (m *mailbox) swapLocked() {
	m.prod, m.cons = m.cons[:0], m.prod
	m.head = 0
}

// popCons removes the next item from the consumer-private slice, which is
// known to be non-empty.
func (m *mailbox) popCons() envelope {
	env := m.cons[m.head]
	m.cons[m.head] = envelope{} // release payload for GC
	m.head++
	if m.head == len(m.cons) {
		m.cons = m.cons[:0]
		m.head = 0
	}
	m.queued.Add(-1)
	return env
}

// len reports the number of queued items. Safe from any goroutine.
func (m *mailbox) len() int {
	return int(m.queued.Load())
}

// close wakes the consumer and makes subsequent pops return ok=false once
// drained.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
