package runtime

import "sync"

// mailbox is an unbounded MPSC queue feeding one PE's scheduler loop.
//
// Unboundedness matters: the netsim dispatcher goroutine delivers messages
// for every PE, so a delivery must never block on a full buffer — one slow
// PE would head-of-line-block the whole simulated network. Memory is bounded
// in practice by the quiescence invariant (created == processed drains all
// queues).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []any
	head   int
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push appends an item and wakes the consumer. Push on a closed mailbox is
// dropped (the PE has already exited).
func (m *mailbox) push(item any) {
	m.mu.Lock()
	if !m.closed {
		m.items = append(m.items, item)
		m.cond.Signal()
	}
	m.mu.Unlock()
}

// tryPop removes the oldest item without blocking. ok is false if empty.
func (m *mailbox) tryPop() (item any, ok bool) {
	m.mu.Lock()
	item, ok = m.popLocked()
	m.mu.Unlock()
	return item, ok
}

// pop blocks until an item is available or the mailbox is closed.
// ok is false only when closed and drained.
func (m *mailbox) pop() (item any, ok bool) {
	m.mu.Lock()
	for {
		if item, ok = m.popLocked(); ok {
			m.mu.Unlock()
			return item, true
		}
		if m.closed {
			m.mu.Unlock()
			return nil, false
		}
		m.cond.Wait()
	}
}

func (m *mailbox) popLocked() (any, bool) {
	if m.head >= len(m.items) {
		return nil, false
	}
	item := m.items[m.head]
	m.items[m.head] = nil // release for GC
	m.head++
	// Compact once the consumed prefix dominates, amortized O(1).
	if m.head > 64 && m.head*2 >= len(m.items) {
		n := copy(m.items, m.items[m.head:])
		m.items = m.items[:n]
		m.head = 0
	}
	return item, true
}

// len reports the number of queued items.
func (m *mailbox) len() int {
	m.mu.Lock()
	n := len(m.items) - m.head
	m.mu.Unlock()
	return n
}

// close wakes the consumer and makes subsequent pops return ok=false once
// drained.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
