package fabric

import "testing"

func TestSendResultString(t *testing.T) {
	cases := []struct {
		r    SendResult
		want string
	}{
		{SendEnqueued, "enqueued"},
		{SendDropped, "dropped"},
		{SendClosed, "closed"},
		{SendResult(99), "invalid"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("SendResult(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}
