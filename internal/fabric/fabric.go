// Package fabric defines the transport-neutral message fabric the ACIC
// runtime sends through. Two implementations exist: internal/netsim (the
// simulated delay-queue network — latency models, jitter, fault
// injection, virtual time) and internal/sockfab (real OS processes
// exchanging length-prefixed frames over loopback TCP). The runtime,
// the relnet reliability layer, and the algorithm drivers program
// against this interface only, so every algorithm runs unmodified over
// either fabric.
//
// Contract (what netsim already provided, now named):
//
//   - Send(src, dst, payload, size) enqueues payload for PE dst. The
//     fabric delivers it on the destination's dispatcher goroutine via
//     the deliver callback supplied at construction; deliveries to any
//     one destination are serial, and two sends on the same (src, dst)
//     pair arrive in send order (per-pair FIFO).
//   - SendAfter(dst, payload, delay) is the timer facility: payload is
//     delivered to dst after at least delay, on the same serial
//     dispatcher. Timers are fabric-local — they never cross a process
//     boundary.
//   - QueueLen reports how many accepted-but-undelivered payloads the
//     fabric currently holds (the ledger's NetQueue column).
//   - Close is idempotent; it delivers or accounts for everything the
//     fabric accepted, then returns. After Close (or concurrently with
//     it) Send/SendAfter return SendClosed.
package fabric

import "time"

// SendResult reports what the fabric decided to do with a payload.
// netsim aliases its SendResult to this type so the two packages'
// constants are interchangeable.
type SendResult uint8

const (
	// SendEnqueued: accepted; the payload will be delivered (or counted
	// as dropped-at-exit if the destination closes first).
	SendEnqueued SendResult = iota
	// SendDropped: a fault filter discarded the payload. The fabric
	// counted the drop; the caller may rely on a reliability layer to
	// recover it.
	SendDropped
	// SendClosed: the fabric (or that destination) is closed; the
	// payload was not accepted.
	SendClosed
)

// String returns the constant's name for test failures and logs.
func (r SendResult) String() string {
	switch r {
	case SendEnqueued:
		return "enqueued"
	case SendDropped:
		return "dropped"
	case SendClosed:
		return "closed"
	}
	return "invalid"
}

// Fabric is the transport surface. Implementations: *netsim.Network,
// *sockfab.Mesh, *sockfab.Node.
type Fabric interface {
	// Send enqueues payload from PE src to PE dst. size is the payload's
	// item count (batch length), used for accounting tiers; it does not
	// affect delivery.
	Send(src, dst int, payload any, size int) SendResult
	// SendAfter delivers payload to dst after at least delay.
	SendAfter(dst int, payload any, delay time.Duration) SendResult
	// QueueLen reports accepted-but-undelivered payloads.
	QueueLen() int
	// Close delivers or accounts for everything accepted, then returns.
	Close()
}

// Boundary is implemented by fabrics that move frames between OS
// processes. BoundaryCounts returns how many frames this process has
// written to (out) and decoded from (in) its transport boundary; the
// conservation ledger carries both so the per-process identity
//
//	Sent + BoundaryIn == Delivered + BoundaryOut + NetQueue + backlog + drops
//
// stays exact after the process split, and globally
// sum(out) == sum(in) once every process has drained.
type Boundary interface {
	BoundaryCounts() (out, in int64)
}
