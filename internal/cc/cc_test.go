package cc

import (
	"testing"
	"testing/quick"
	"time"

	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
)

func runAndVerify(t *testing.T, g *graph.Graph, opts Options) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(g, opts)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("Run failed: %v", o.err)
		}
		want := SequentialCC(g)
		for v := range want {
			if o.res.Labels[v] != want[v] {
				t.Fatalf("label mismatch at vertex %d: cc=%d oracle=%d", v, o.res.Labels[v], want[v])
			}
		}
		return o.res
	case <-time.After(60 * time.Second):
		t.Fatal("CC run did not terminate")
		return nil
	}
}

func TestTwoComponents(t *testing.T) {
	g := graph.MustBuild(6, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1},
		{From: 4, To: 3, Weight: 1}, {From: 4, To: 5, Weight: 1},
	})
	res := runAndVerify(t, g, Options{})
	if res.Stats.Components != 2 {
		t.Errorf("Components = %d, want 2", res.Stats.Components)
	}
}

func TestDirectionIgnored(t *testing.T) {
	// 0 <- 1 <- 2: directed edges against the propagation direction still
	// form one weak component.
	g := graph.MustBuild(3, []graph.Edge{{From: 2, To: 1, Weight: 1}, {From: 1, To: 0, Weight: 1}})
	res := runAndVerify(t, g, Options{})
	if res.Stats.Components != 1 {
		t.Errorf("Components = %d, want 1", res.Stats.Components)
	}
	for v, l := range res.Labels {
		if l != 0 {
			t.Errorf("vertex %d label %d, want 0", v, l)
		}
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := graph.MustBuild(5, nil)
	res := runAndVerify(t, g, Options{})
	if res.Stats.Components != 5 {
		t.Errorf("Components = %d, want 5", res.Stats.Components)
	}
}

func TestErdosRenyiComponents(t *testing.T) {
	// §V names random (Erdős–Rényi) graphs as the candidate workload.
	g := gen.ErdosRenyi(2000, 2500, gen.Config{Seed: 1})
	res := runAndVerify(t, g, Options{Topo: netsim.SingleNode(6)})
	if res.Stats.Reductions == 0 {
		t.Error("introspection cycle never ran")
	}
	if res.Stats.UpdatesCreated != res.Stats.UpdatesProcessed {
		t.Errorf("not quiescent: %d != %d", res.Stats.UpdatesCreated, res.Stats.UpdatesProcessed)
	}
}

func TestRMATComponents(t *testing.T) {
	g := gen.RMAT(10, 4, gen.DefaultRMAT(), gen.Config{Seed: 2})
	runAndVerify(t, g, Options{Topo: netsim.SingleNode(4)})
}

func TestGridOneComponent(t *testing.T) {
	g := gen.Grid(15, 15, gen.Config{Seed: 3})
	res := runAndVerify(t, g, Options{})
	if res.Stats.Components != 1 {
		t.Errorf("grid components = %d, want 1", res.Stats.Components)
	}
}

func TestWithLatency(t *testing.T) {
	g := gen.ErdosRenyi(800, 1200, gen.Config{Seed: 4})
	opts := Options{
		Topo:    netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2},
		Latency: netsim.LatencyModel{IntraProcess: time.Microsecond, InterNode: 8 * time.Microsecond},
	}
	runAndVerify(t, g, opts)
}

func TestChangeTraceDecays(t *testing.T) {
	// The introspection trace should end at zero changes (converged).
	g := gen.ErdosRenyi(1500, 3000, gen.Config{Seed: 5})
	res := runAndVerify(t, g, Options{})
	if len(res.Stats.ChangeTrace) == 0 {
		t.Fatal("no change trace")
	}
	if last := res.Stats.ChangeTrace[len(res.Stats.ChangeTrace)-1]; last != 0 {
		t.Errorf("final cycle still saw %d changes", last)
	}
}

func TestValidation(t *testing.T) {
	g := gen.Path(4)
	if _, err := Run(g, Options{Topo: netsim.Topology{Nodes: 0, ProcsPerNode: 1, PEsPerProc: 1}}); err == nil {
		t.Error("invalid topology accepted")
	}
}

// Property: labels match union-find on arbitrary random graphs.
func TestQuickMatchesUnionFind(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint64, nRaw uint8, mRaw uint16, pesRaw uint8) bool {
		n := int(nRaw%150) + 1
		m := int(mRaw) % (n * 3)
		pes := int(pesRaw%4) + 1
		g := gen.Uniform(n, m, gen.Config{Seed: seed})
		res, err := Run(g, Options{Topo: netsim.SingleNode(pes)})
		if err != nil {
			return false
		}
		want := SequentialCC(g)
		for v := range want {
			if res.Labels[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSequentialCCOracle(t *testing.T) {
	g := graph.MustBuild(7, []graph.Edge{
		{From: 6, To: 5, Weight: 1}, {From: 5, To: 4, Weight: 1},
		{From: 0, To: 1, Weight: 1}, {From: 2, To: 1, Weight: 1},
	})
	labels := SequentialCC(g)
	want := []int32{0, 0, 0, 3, 4, 4, 4}
	for v := range want {
		if labels[v] != want[v] {
			t.Errorf("oracle label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
}
