// Package cc implements asynchronous connected components, the future-work
// direction the paper names explicitly (§V: "One candidate is the connected
// components problem for random graphs, where asynchronous reductions may
// be used to communicate information about vertices and components
// concurrently with computation").
//
// The algorithm is asynchronous min-label propagation on the same
// message-driven substrate as ACIC: every vertex starts with its own id as
// its component label; label updates (vertex, label) travel through tramlib
// and are accepted when they lower the vertex's label, triggering onward
// propagation to all neighbors (components ignore edge direction, so
// propagation uses an undirected view of the graph). At the fixed point
// every vertex carries the minimum vertex id of its weakly connected
// component.
//
// Exactly as the paper sketches, the machinery transfers from SSSP intact:
// a paced reduction/broadcast cycle runs concurrently with propagation,
// carrying created/processed update counters (ACIC's quiescence condition —
// equal sums in two consecutive reductions terminate the run) together with
// a per-cycle label-change count whose trace Stats exposes.
package cc

import (
	"time"

	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/partition"
	"acic/internal/runtime"
	"acic/internal/simclock"
	"acic/internal/tram"
)

// labelUpdate proposes a (smaller) component label for a vertex.
type labelUpdate struct {
	Vertex int32
	Label  int32
}

type (
	startMsg struct{}
	batchMsg struct{ items []labelUpdate }
	// cycleMsg re-enters the root after the introspection pacing timer.
	cycleMsg struct {
		epoch int64
		ctrl  ctrlMsg
	}
)

type ctrlMsg struct{ terminate bool }

// reduceVal is the per-PE contribution: ACIC-style quiescence counters plus
// the introspection payload (label changes since the last cycle).
type reduceVal struct {
	created, processed int64
	changes            int64
}

func combineReduce(a, b any) any {
	av, bv := a.(*reduceVal), b.(*reduceVal)
	av.created += bv.created
	av.processed += bv.processed
	av.changes += bv.changes
	return av
}

// Params configure a run.
type Params struct {
	TramMode     tram.Mode
	TramCapacity int
	// CycleDelay paces the concurrent reduction cycle; zero or negative
	// selects 100µs.
	CycleDelay time.Duration
}

// DefaultParams mirrors the SSSP aggregation setup.
func DefaultParams() Params {
	return Params{TramMode: tram.WP, TramCapacity: tram.DefaultCapacity}
}

// Options configure one run.
type Options struct {
	Topo    netsim.Topology
	Latency netsim.LatencyModel
	Params  Params
	// Clock times the run for Stats.Elapsed; nil means the wall clock.
	Clock simclock.Clock
	// Jitter, when non-nil, perturbs every message's delivery delay (see
	// netsim.JitterFunc) — the schedule-stress harness's hook.
	Jitter netsim.JitterFunc
}

// Stats reports counters and the introspection trace.
type Stats struct {
	Elapsed          time.Duration
	UpdatesCreated   int64
	UpdatesProcessed int64
	Rejected         int64 // updates that did not lower a label
	Components       int   // distinct labels at the fixed point
	Reductions       int64
	ChangeTrace      []int64 // label changes observed per reduction cycle
	TramStats        tram.Stats
	Network          netsim.Stats
	// Audit is the runtime's post-run conservation ledger; the stress
	// harness requires Audit.Unaccounted() == 0 and Audit.NetQueue == 0.
	Audit runtime.Audit
}

// Result is the output of a run.
type Result struct {
	// Labels[v] is the minimum vertex id in v's weakly connected
	// component.
	Labels []int32
	Stats  Stats
}

type sharedState struct {
	und  *graph.Graph // undirected view: original plus reversed edges
	part *partition.OneD
	tm   *tram.Manager[labelUpdate]
	rt   *runtime.Runtime
}

type peState struct {
	shared *sharedState
	params Params

	base   int32
	labels []int32

	created, processed, rejected int64
	changes                      int64 // since last contribution

	// frontier holds local vertices whose lowered label has not been
	// propagated yet; each entry corresponds to exactly one outstanding
	// (created, unprocessed) unit of work.
	frontier []int32
	inFront  []bool

	// Root-only.
	reductions   int64
	prevEqualSum int64
	changeTrace  []int64
	terminated   bool
}

var _ runtime.Handler = (*peState)(nil)

func (st *peState) Deliver(pe *runtime.PE, msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveBatch(pe, m.items)
	case startMsg:
		// Every vertex starts as its own frontier entry: its label must be
		// offered to its neighbors at least once. Each entry is one
		// created unit of work, processed when popped.
		for v := st.base; int(v-st.base) < len(st.labels); v++ {
			st.created++
			st.pushFrontier(v)
		}
		st.contribute(pe, 0)
	case cycleMsg:
		pe.Broadcast(m.epoch, m.ctrl)
	}
}

func (st *peState) receiveBatch(pe *runtime.PE, items []labelUpdate) {
	me := pe.Index()
	var forwards map[int][]labelUpdate
	for _, u := range items {
		owner := st.shared.part.Owner(u.Vertex)
		if owner != me {
			if forwards == nil {
				forwards = make(map[int][]labelUpdate)
			}
			forwards[owner] = append(forwards[owner], u)
			continue
		}
		li := u.Vertex - st.base
		if u.Label < st.labels[li] {
			st.labels[li] = u.Label
			st.changes++
			if st.inFront[li] {
				// The pending frontier entry will propagate the newer,
				// lower label; this update's own work is subsumed.
				st.processed++
			} else {
				st.pushFrontier(u.Vertex)
			}
		} else {
			st.rejected++
			st.processed++
		}
	}
	for owner, group := range forwards {
		pe.Send(owner, batchMsg{items: group}, len(group))
	}
	st.shared.tm.Release(items) // batch unpacked: recycle its capacity
}

func (st *peState) pushFrontier(v int32) {
	li := v - st.base
	st.inFront[li] = true
	st.frontier = append(st.frontier, v)
}

// Idle propagates one frontier vertex's label to its (undirected)
// neighbors, then blocks. Tram flushing happens on every broadcast, like
// ACIC, so no idle flush is needed here.
func (st *peState) Idle(pe *runtime.PE) bool {
	n := len(st.frontier)
	if n == 0 {
		return false
	}
	v := st.frontier[n-1]
	st.frontier = st.frontier[:n-1]
	li := v - st.base
	st.inFront[li] = false
	label := st.labels[li]
	ts, _ := st.shared.und.Neighbors(int(v))
	for _, w := range ts {
		if label < w { // a label can never lower a vertex below its own id
			st.sendLabel(pe, w, label)
		}
	}
	st.processed++
	return true
}

func (st *peState) sendLabel(pe *runtime.PE, w int32, label int32) {
	st.created++
	dst := st.shared.part.Owner(w)
	if batch := st.shared.tm.Insert(pe.Index(), dst, labelUpdate{Vertex: w, Label: label}); batch != nil {
		pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items))
	}
}

func (st *peState) contribute(pe *runtime.PE, epoch int64) {
	rv := &reduceVal{created: st.created, processed: st.processed, changes: st.changes}
	st.changes = 0
	pe.Contribute(epoch, rv)
}

func (st *peState) OnBroadcast(pe *runtime.PE, epoch int64, payload any) {
	ctrl := payload.(ctrlMsg)
	if ctrl.terminate {
		st.terminated = true
		pe.Exit()
		return
	}
	// Broadcast-time flush, the same tail-progress guarantee ACIC uses.
	for _, batch := range st.shared.tm.FlushSet(pe.Index()) {
		pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items))
	}
	st.contribute(pe, epoch+1)
}

func (st *peState) OnReduction(pe *runtime.PE, epoch int64, value any) {
	if st.terminated {
		return
	}
	rv := value.(*reduceVal)
	st.reductions++
	st.changeTrace = append(st.changeTrace, rv.changes)

	ctrl := ctrlMsg{}
	if rv.created == rv.processed && rv.created > 0 {
		if st.prevEqualSum == rv.created {
			ctrl.terminate = true
		}
		st.prevEqualSum = rv.created
	} else {
		st.prevEqualSum = -1
	}

	delay := st.params.CycleDelay
	if delay <= 0 {
		delay = 100 * time.Microsecond
	}
	if ctrl.terminate {
		pe.Broadcast(epoch, ctrl)
		return
	}
	rt := st.shared.rt
	time.AfterFunc(delay, func() { rt.Inject(0, cycleMsg{epoch: epoch, ctrl: ctrl}) })
}

// Run computes weakly connected components of g.
func Run(g *graph.Graph, opts Options) (*Result, error) {
	topo := opts.Topo
	if topo == (netsim.Topology{}) {
		topo = netsim.SingleNode(4)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	params := opts.Params
	if params.TramCapacity <= 0 {
		params.TramCapacity = tram.DefaultCapacity
	}

	// Build the undirected view once: original edges plus reversed.
	edges := g.Edges()
	for _, e := range g.Edges() {
		edges = append(edges, graph.Edge{From: e.To, To: e.From, Weight: e.Weight})
	}
	und, err := graph.Build(g.NumVertices(), edges)
	if err != nil {
		return nil, err
	}

	tm, err := tram.New[labelUpdate](topo, params.TramMode, params.TramCapacity)
	if err != nil {
		return nil, err
	}
	sh := &sharedState{
		und:  und,
		part: partition.NewOneD(g.NumVertices(), topo.TotalPEs()),
		tm:   tm,
	}
	rt, err := runtime.New(runtime.Config{
		Topo:    topo,
		Latency: opts.Latency,
		Combine: combineReduce,
		Jitter:  opts.Jitter,
	})
	if err != nil {
		return nil, err
	}
	sh.rt = rt
	states := make([]*peState, topo.TotalPEs())
	rt.Start(func(pe *runtime.PE) runtime.Handler {
		lo, hi := sh.part.Range(pe.Index())
		st := &peState{
			shared:       sh,
			params:       params,
			base:         lo,
			labels:       make([]int32, hi-lo),
			inFront:      make([]bool, hi-lo),
			prevEqualSum: -1,
		}
		for i := range st.labels {
			st.labels[i] = lo + int32(i)
		}
		states[pe.Index()] = st
		return st
	})

	clk := simclock.Default(opts.Clock)
	start := clk.Now()
	for i := 0; i < topo.TotalPEs(); i++ {
		rt.Inject(i, startMsg{})
	}
	rt.Wait()
	elapsed := clk.Since(start)

	res := &Result{Labels: make([]int32, g.NumVertices()), Stats: Stats{Elapsed: elapsed}}
	root := states[0]
	res.Stats.Reductions = root.reductions
	res.Stats.ChangeTrace = root.changeTrace
	for peIdx, st := range states {
		lo, hi := sh.part.Range(peIdx)
		copy(res.Labels[lo:hi], st.labels)
		res.Stats.UpdatesCreated += st.created
		res.Stats.UpdatesProcessed += st.processed
		res.Stats.Rejected += st.rejected
	}
	seen := make(map[int32]struct{})
	for _, l := range res.Labels {
		seen[l] = struct{}{}
	}
	res.Stats.Components = len(seen)
	res.Stats.TramStats = tm.Stats()
	res.Stats.Network = rt.NetworkStats()
	res.Stats.Audit = rt.Audit()
	return res, nil
}

// SequentialCC is the union-find oracle: it returns min-id labels for every
// weakly connected component.
func SequentialCC(g *graph.Graph) []int32 {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	g.EachEdge(func(from, to int32, _ float64) {
		rf, rt := find(from), find(to)
		if rf != rt {
			// Union under the smaller root id so final labels are min ids.
			if rf < rt {
				parent[rt] = rf
			} else {
				parent[rf] = rt
			}
		}
	})
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = find(int32(i))
	}
	return labels
}
