package seq

import (
	"math"
	"testing"
	"testing/quick"

	"acic/internal/gen"
	"acic/internal/graph"
)

func TestDijkstraDiamond(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 0, To: 2, Weight: 4},
		{From: 1, To: 2, Weight: 2}, {From: 1, To: 3, Weight: 6},
		{From: 2, To: 3, Weight: 3},
	})
	r := Dijkstra(g, 0)
	want := []float64{0, 1, 3, 6}
	for v, w := range want {
		if r.Dist[v] != w {
			t.Errorf("dist[%d] = %v, want %v", v, r.Dist[v], w)
		}
	}
	if r.Settled != 4 {
		t.Errorf("Settled = %d", r.Settled)
	}
	if r.Relaxations != 5 {
		t.Errorf("Relaxations = %d, want 5 (each reachable edge once)", r.Relaxations)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{{From: 0, To: 1, Weight: 2}, {From: 2, To: 3, Weight: 1}})
	r := Dijkstra(g, 0)
	if !math.IsInf(r.Dist[2], 1) || !math.IsInf(r.Dist[3], 1) {
		t.Error("unreachable vertices should be Inf")
	}
	if r.Settled != 2 {
		t.Errorf("Settled = %d, want 2", r.Settled)
	}
}

func TestDijkstraSingleVertex(t *testing.T) {
	g := graph.MustBuild(1, nil)
	r := Dijkstra(g, 0)
	if r.Dist[0] != 0 || r.Settled != 1 {
		t.Errorf("singleton: %+v", r)
	}
}

func TestDijkstraEmptyGraph(t *testing.T) {
	g := graph.MustBuild(0, nil)
	r := Dijkstra(g, 0)
	if len(r.Dist) != 0 {
		t.Error("empty graph should return empty distances")
	}
}

func TestDijkstraZeroWeightEdges(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{
		{From: 0, To: 1, Weight: 0}, {From: 1, To: 2, Weight: 0},
	})
	r := Dijkstra(g, 0)
	if r.Dist[1] != 0 || r.Dist[2] != 0 {
		t.Errorf("zero-weight chain: %v", r.Dist)
	}
}

func TestDijkstraParallelEdgesAndLoops(t *testing.T) {
	g := graph.MustBuild(2, []graph.Edge{
		{From: 0, To: 0, Weight: 5},
		{From: 0, To: 1, Weight: 9},
		{From: 0, To: 1, Weight: 3},
	})
	r := Dijkstra(g, 0)
	if r.Dist[1] != 3 {
		t.Errorf("dist[1] = %v, want 3 (min parallel edge)", r.Dist[1])
	}
}

func TestBellmanFordMatchesDijkstraOnFixtures(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":  gen.Path(50),
		"star":  gen.Star(50),
		"cycle": gen.Cycle(50),
		"grid":  gen.Grid(8, 8, gen.Config{Seed: 1}),
	}
	for name, g := range graphs {
		d := Dijkstra(g, 0)
		b := BellmanFord(g, 0)
		if !Equal(d.Dist, b.Dist) {
			t.Errorf("%s: mismatch at %d", name, FirstMismatch(d.Dist, b.Dist))
		}
		if d.Settled != b.Settled {
			t.Errorf("%s: settled %d vs %d", name, d.Settled, b.Settled)
		}
	}
}

func TestBellmanFordMoreRelaxationsThanDijkstra(t *testing.T) {
	// Label-correcting does strictly more edge scans on any multi-hop graph
	// (it rescans all edges per pass) — the waste ACIC exists to curb.
	g := gen.Grid(10, 10, gen.Config{Seed: 2})
	d := Dijkstra(g, 0)
	b := BellmanFord(g, 0)
	if b.Relaxations <= d.Relaxations {
		t.Errorf("BF relaxations %d not above Dijkstra %d", b.Relaxations, d.Relaxations)
	}
}

func TestEqualToleratesFloatNoise(t *testing.T) {
	a := []float64{1.0, 2.0, Inf}
	b := []float64{1.0 + 1e-12, 2.0, Inf}
	if !Equal(a, b) {
		t.Error("tiny float noise rejected")
	}
	c := []float64{1.0, 2.1, Inf}
	if Equal(a, c) {
		t.Error("real difference accepted")
	}
	if Equal(a, []float64{1.0, 2.0, 3.0}) {
		t.Error("Inf vs finite accepted")
	}
	if Equal(a, a[:2]) {
		t.Error("length mismatch accepted")
	}
}

func TestFirstMismatch(t *testing.T) {
	a := []float64{1, 2, 3}
	if i := FirstMismatch(a, []float64{1, 2, 3}); i != -1 {
		t.Errorf("identical: %d", i)
	}
	if i := FirstMismatch(a, []float64{1, 9, 3}); i != 1 {
		t.Errorf("mismatch index = %d, want 1", i)
	}
	if i := FirstMismatch(a, []float64{1, 2}); i != 2 {
		t.Errorf("length mismatch index = %d, want 2", i)
	}
}

// Property: Dijkstra and Bellman-Ford agree on arbitrary random graphs and
// sources, and distances satisfy the triangle inequality over every edge:
// dist[to] <= dist[from] + w.
func TestQuickOraclesAgreeAndAreConsistent(t *testing.T) {
	f := func(seed uint64, nRaw, srcRaw uint8, mRaw uint16) bool {
		n := int(nRaw%60) + 2
		m := int(mRaw % 600)
		src := int(srcRaw) % n
		g := gen.Uniform(n, m, gen.Config{Seed: seed, MaxWeight: 50})
		d := Dijkstra(g, src)
		b := BellmanFord(g, src)
		if !Equal(d.Dist, b.Dist) {
			return false
		}
		ok := true
		g.EachEdge(func(from, to int32, w float64) {
			if math.IsInf(d.Dist[from], 1) {
				return
			}
			if d.Dist[to] > d.Dist[from]+w+1e-9 {
				ok = false
			}
		})
		return ok && d.Dist[src] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the settled count equals the BFS-reachable vertex count.
func TestQuickSettledEqualsReachable(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%60) + 2
		m := int(mRaw % 400)
		g := gen.Uniform(n, m, gen.Config{Seed: seed})
		d := Dijkstra(g, 0)
		reach, _ := g.ReachableFrom(0)
		return d.Settled == reach
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDijkstraRMAT14(b *testing.B) {
	g := gen.RMAT(14, 16, gen.DefaultRMAT(), gen.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, 0)
	}
}

func BenchmarkBellmanFordGrid(b *testing.B) {
	g := gen.Grid(64, 64, gen.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BellmanFord(g, 0)
	}
}
