// Package seq provides sequential SSSP algorithms: Dijkstra's label-setting
// algorithm and the label-correcting Bellman-Ford algorithm (§I of the
// paper). They serve two purposes: as correctness oracles for every
// parallel algorithm in this repository, and as the single-threaded
// baseline for relaxation-count comparisons (a work-minimal label-setting
// run gives the lower bound on updates that the paper's "hypothetically
// work-minimal" discussion appeals to in §II-B).
package seq

import (
	"math"

	"acic/internal/graph"
	"acic/internal/pq"
)

// Inf is the distance assigned to unreachable vertices, matching the
// initialization "∞ on all other vertices" of §II-A.
var Inf = math.Inf(1)

// Result carries the output of a sequential SSSP run.
type Result struct {
	// Dist[v] is the shortest distance from the source to v, or Inf.
	Dist []float64
	// Parent[v] is v's predecessor on a shortest path, or -1 for the
	// source and unreachable vertices.
	Parent []int32
	// Relaxations counts edge relaxations performed (both improving and
	// non-improving edge scans are algorithm-specific; see each function).
	Relaxations int64
	// Settled counts vertices whose final distance was determined.
	Settled int
}

// Dijkstra computes single-source shortest paths with an indexed binary
// heap. Each vertex is settled exactly once; each out-edge of a settled
// vertex is relaxed exactly once, so Relaxations equals the number of edges
// reachable from src — the work-minimal relaxation count.
func Dijkstra(g *graph.Graph, src int) Result {
	n := g.NumVertices()
	dist := make([]float64, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	res := Result{Dist: dist, Parent: parent}
	if n == 0 {
		return res
	}
	dist[src] = 0
	h := pq.NewIndexedHeap(n)
	h.Push(src, 0)
	for h.Len() > 0 {
		v, d := h.PopMin()
		if d > dist[v] {
			continue // stale entry (cannot happen with decrease-key, kept defensively)
		}
		res.Settled++
		ts, ws := g.Neighbors(v)
		for i, to := range ts {
			res.Relaxations++
			if nd := d + ws[i]; nd < dist[to] {
				dist[to] = nd
				parent[to] = int32(v)
				h.PushOrDecrease(int(to), nd)
			}
		}
	}
	return res
}

// BellmanFord computes single-source shortest paths by iterative full-edge
// relaxation with an early exit when a pass changes nothing. Relaxations
// counts every edge scan. For graphs with non-negative weights (the only
// kind this repository generates) the result matches Dijkstra.
func BellmanFord(g *graph.Graph, src int) Result {
	n := g.NumVertices()
	dist := make([]float64, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	res := Result{Dist: dist, Parent: parent}
	if n == 0 {
		return res
	}
	dist[src] = 0
	for pass := 0; pass < n; pass++ {
		changed := false
		for v := 0; v < n; v++ {
			if math.IsInf(dist[v], 1) {
				continue
			}
			ts, ws := g.Neighbors(v)
			for i, to := range ts {
				res.Relaxations++
				if nd := dist[v] + ws[i]; nd < dist[to] {
					dist[to] = nd
					parent[to] = int32(v)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			res.Settled++
		}
	}
	return res
}

// Equal reports whether two distance vectors agree within a tolerance that
// absorbs float summation-order differences between algorithms.
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ai, bi := a[i], b[i]
		if math.IsInf(ai, 1) != math.IsInf(bi, 1) {
			return false
		}
		if math.IsInf(ai, 1) {
			continue
		}
		diff := math.Abs(ai - bi)
		scale := math.Max(1, math.Max(math.Abs(ai), math.Abs(bi)))
		if diff/scale > 1e-9 {
			return false
		}
	}
	return true
}

// FirstMismatch returns the index of the first disagreeing entry, or -1.
// Handy in test failure messages.
func FirstMismatch(a, b []float64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if math.IsInf(a[i], 1) && math.IsInf(b[i], 1) {
			continue
		}
		diff := math.Abs(a[i] - b[i])
		scale := math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if diff/scale > 1e-9 {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
