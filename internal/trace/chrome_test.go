package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"acic/internal/simclock"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the Chrome trace golden file")

// goldenRecorder builds a small deterministic two-PE timeline on a fake
// clock: a delivery burst, a blocked interval, a reduction/broadcast
// cycle with a hold drain, and a compute sleep.
func goldenRecorder() *Recorder {
	clk := simclock.NewFake(time.Unix(0, 0))
	r := NewWithClock(2, 64, clk)
	step := func(d time.Duration) { clk.Advance(d) }

	r.Record(0, KindDeliver, 0)
	step(5 * time.Microsecond)
	r.Record(1, KindDeliver, 0)
	step(3 * time.Microsecond)
	r.Record(1, KindBlock, 0)
	step(12 * time.Microsecond)
	r.Record(0, KindReduction, 1)
	step(2 * time.Microsecond)
	r.Record(0, KindBroadcast, 1)
	r.Record(1, KindWake, 0)
	step(1 * time.Microsecond)
	r.Record(1, KindHoldDrain, 7)
	step(4 * time.Microsecond)
	r.Record(0, KindWorkSleep, int64(2*time.Microsecond))
	step(6 * time.Microsecond)
	r.Record(1, KindIdleWork, 0)
	r.Record(1, KindBlock, 0) // blocked at shutdown, never wakes
	return r
}

func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome export diverged from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// Byte stability: a second export of an identical run must be identical.
	var buf2 bytes.Buffer
	if err := goldenRecorder().WriteChrome(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two identical fake-clock runs exported different bytes")
	}
}

// TestChromeSchema checks the structural contract every consumer (Perfetto,
// chrome://tracing) relies on: required fields present, known phase codes,
// non-negative stamps, and per-track time order.
func TestChromeSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	lastTs := map[float64]float64{} // tid -> last ts
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		ph := ev["ph"].(string)
		switch ph {
		case "M":
			continue // metadata carries no ts
		case "X", "i", "B", "E":
		default:
			t.Fatalf("event %d has unknown phase %q", i, ph)
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event %d has bad ts %v", i, ev["ts"])
		}
		tid := ev["tid"].(float64)
		if ts < lastTs[tid] {
			t.Fatalf("event %d out of order on track %v: ts %v after %v", i, tid, ts, lastTs[tid])
		}
		lastTs[tid] = ts
		if ph == "i" && ev["s"] != "t" {
			t.Fatalf("instant event %d missing thread scope: %v", i, ev)
		}
	}
}

// TestChromeBlockedDuration checks that a Block→Wake pair becomes one
// complete event whose duration matches the recorded interval.
func TestChromeBlockedDuration(t *testing.T) {
	clk := simclock.NewFake(time.Unix(0, 0))
	r := NewWithClock(1, 16, clk)
	r.Record(0, KindBlock, 0)
	clk.Advance(30 * time.Microsecond)
	r.Record(0, KindWake, 0)
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "blocked" {
			found = true
			if ev.Ph != "X" || ev.Ts != 0 || ev.Dur != 30 {
				t.Fatalf("blocked event wrong: %+v", ev)
			}
		}
	}
	if !found {
		t.Fatal("no blocked event exported")
	}
}
