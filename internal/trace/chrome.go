package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome Trace Event Format export: the merged Recorder timeline rendered
// as the JSON object format understood by Perfetto (ui.perfetto.dev) and
// chrome://tracing. One track (tid) per PE under a single process (pid 0);
// blocked intervals and compute sleeps become duration events, everything
// else becomes instants, so a run's schedule — the §I idle-time story and
// the hold-drain pulses of the introspection cycle — is scrubbable on a
// timeline instead of summarized in a table.
//
// Timestamps ("ts") are microseconds since the Recorder's start, the
// format's native unit. Events are emitted per PE in ascending ts order
// and the writer itself is deterministic (fixed field order, no map
// iteration), so a fake-clock run exports byte-stable JSON — the property
// the golden-file test pins down.

// chromeEvent is one entry of the traceEvents array. Field order is the
// serialization order; keep "name", "ph", "ts" first for readability of
// the raw file.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usec converts an event offset to the format's microsecond unit.
func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChrome renders the recorder's full timeline in Chrome Trace Event
// Format. Call only after the traced run has stopped.
func (r *Recorder) WriteChrome(w io.Writer) error {
	tr := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for pe := 0; pe < r.NumPEs(); pe++ {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: pe,
			Args: map[string]any{"name": fmt.Sprintf("PE %d", pe)},
		})
		tr.TraceEvents = append(tr.TraceEvents, peChromeEvents(pe, r.pes[pe].events)...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}

// peChromeEvents converts one PE's timeline. Block→Wake pairs and
// work-sleeps become complete ("X") duration events; the rest are thread-
// scoped instants. The result is sorted by ts (stable, preserving record
// order among equal stamps) because duration events are anchored at their
// start, which precedes the record stamp of the matching end event.
func peChromeEvents(pe int, events []Event) []chromeEvent {
	out := make([]chromeEvent, 0, len(events))
	blockAt := time.Duration(-1)
	for _, e := range events {
		switch e.Kind {
		case KindBlock:
			blockAt = e.At
		case KindWake:
			if blockAt >= 0 {
				out = append(out, chromeEvent{
					Name: "blocked", Ph: "X", Ts: usec(blockAt),
					Dur: usec(e.At - blockAt), Pid: 0, Tid: pe,
				})
				blockAt = -1
			}
		case KindWorkSleep:
			d := time.Duration(e.Arg)
			start := e.At - d
			if start < 0 {
				start = 0
			}
			out = append(out, chromeEvent{
				Name: "work-sleep", Ph: "X", Ts: usec(start),
				Dur: usec(e.At - start), Pid: 0, Tid: pe,
			})
		case KindReduction:
			out = append(out, chromeEvent{
				Name: "reduction", Ph: "i", Ts: usec(e.At), Pid: 0, Tid: pe, S: "t",
				Args: map[string]any{"epoch": e.Arg},
			})
		case KindBroadcast:
			out = append(out, chromeEvent{
				Name: "broadcast", Ph: "i", Ts: usec(e.At), Pid: 0, Tid: pe, S: "t",
				Args: map[string]any{"epoch": e.Arg},
			})
		case KindHoldDrain:
			out = append(out, chromeEvent{
				Name: "hold-drain", Ph: "i", Ts: usec(e.At), Pid: 0, Tid: pe, S: "t",
				Args: map[string]any{"drained": e.Arg},
			})
		default:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Ph: "i", Ts: usec(e.At), Pid: 0, Tid: pe, S: "t",
			})
		}
	}
	// A PE that blocked and never woke (shutdown while idle) still shows
	// its final wait: close the interval at the last known stamp.
	if blockAt >= 0 {
		out = append(out, chromeEvent{
			Name: "blocked", Ph: "X", Ts: usec(blockAt), Dur: 0, Pid: 0, Tid: pe,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return out
}
