// Package trace records per-PE event timelines for the message-driven
// runtime. The paper's analysis leans on execution-behaviour claims — PEs
// idling at Δ-stepping barriers, updates waiting in holds for a broadcast,
// reductions overlapping work — and a timeline recorder is how such claims
// are observed rather than assumed. cmd/acic-run exposes it through
// -tracesummary; tests use it to assert scheduling properties (e.g. that
// idle-triggered pq drains really happen between messages).
//
// Each PE owns a private event buffer (no cross-PE synchronization on the
// hot path); buffers are bounded and drop the oldest half when full, so
// tracing a long run keeps the tail. Reading an individual PE's timeline is
// safe only after the run; the aggregate Summary is safe any time the PEs
// are stopped.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"acic/internal/simclock"
)

// Kind labels one traced event.
type Kind uint8

// Event kinds recorded by the runtime.
const (
	// KindDeliver: an application message was processed (Arg: app-defined).
	KindDeliver Kind = iota
	// KindIdleWork: the idle trigger performed background work.
	KindIdleWork
	// KindBlock: the PE blocked on an empty mailbox.
	KindBlock
	// KindWake: the PE resumed after blocking.
	KindWake
	// KindReduction: a reduction partial or completion passed through.
	KindReduction
	// KindBroadcast: a broadcast was handled.
	KindBroadcast
	// KindWorkSleep: the PE paid simulated compute debt (Arg: ns slept).
	KindWorkSleep
	// KindHoldDrain: a threshold broadcast released held updates back into
	// circulation (Arg: number of updates drained from tram_hold + pq_hold).
	KindHoldDrain
	// KindRetransmit: the reliable-delivery layer re-sent an unacked frame
	// (Arg: the frame's stream sequence number).
	KindRetransmit
	numKinds
)

// String returns a short label.
func (k Kind) String() string {
	switch k {
	case KindDeliver:
		return "deliver"
	case KindIdleWork:
		return "idle-work"
	case KindBlock:
		return "block"
	case KindWake:
		return "wake"
	case KindReduction:
		return "reduction"
	case KindBroadcast:
		return "broadcast"
	case KindWorkSleep:
		return "work-sleep"
	case KindHoldDrain:
		return "hold-drain"
	case KindRetransmit:
		return "retransmit"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one timeline entry.
type Event struct {
	At   time.Duration // since Recorder creation
	Kind Kind
	Arg  int64
}

// Recorder collects per-PE timelines.
type Recorder struct {
	clk   simclock.Clock
	start time.Time
	cap   int
	pes   []peBuffer
}

type peBuffer struct {
	events  []Event
	dropped int64
}

// New creates a Recorder for numPEs PEs keeping at most capPerPE events
// each (oldest half dropped on overflow). capPerPE <= 0 selects 4096.
// Timestamps come from the wall clock; tests that need byte-stable
// timelines use NewWithClock with a simclock.Fake.
func New(numPEs, capPerPE int) *Recorder {
	return NewWithClock(numPEs, capPerPE, nil)
}

// NewWithClock is New with an injected clock (nil means the wall clock).
// A fake clock makes event timestamps — and therefore the Chrome trace
// export — fully deterministic, which the golden-file tests rely on.
func NewWithClock(numPEs, capPerPE int, clk simclock.Clock) *Recorder {
	if capPerPE <= 0 {
		capPerPE = 4096
	}
	clk = simclock.Default(clk)
	return &Recorder{
		clk:   clk,
		start: clk.Now(),
		cap:   capPerPE,
		pes:   make([]peBuffer, numPEs),
	}
}

// NumPEs returns the traced PE count.
func (r *Recorder) NumPEs() int { return len(r.pes) }

// Record appends an event to pe's timeline. It must be called only from
// that PE's goroutine.
func (r *Recorder) Record(pe int, kind Kind, arg int64) {
	b := &r.pes[pe]
	if len(b.events) >= r.cap {
		// Keep the newer half: long runs retain their tail, which is where
		// the interesting termination behaviour lives.
		half := len(b.events) / 2
		b.dropped += int64(half)
		copy(b.events, b.events[half:])
		b.events = b.events[:len(b.events)-half]
	}
	b.events = append(b.events, Event{At: r.clk.Since(r.start), Kind: kind, Arg: arg})
}

// Timeline returns pe's retained events in chronological order. Call only
// after the traced run has stopped.
func (r *Recorder) Timeline(pe int) []Event {
	return append([]Event(nil), r.pes[pe].events...)
}

// Dropped returns how many events pe's buffer discarded.
func (r *Recorder) Dropped(pe int) int64 { return r.pes[pe].dropped }

// Counts tallies events by kind for one PE.
func (r *Recorder) Counts(pe int) map[Kind]int64 {
	out := make(map[Kind]int64, int(numKinds))
	for _, e := range r.pes[pe].events {
		out[e.Kind]++
	}
	return out
}

// Summary aggregates per-PE statistics after a run.
type Summary struct {
	PE          int
	Events      int64
	Dropped     int64
	ByKind      [numKinds]int64
	BlockedTime time.Duration // total time between Block and Wake pairs
	SleptNanos  int64         // simulated compute paid (KindWorkSleep args)
}

// Summarize computes one Summary per PE. Call only after the run stopped.
func (r *Recorder) Summarize() []Summary {
	out := make([]Summary, len(r.pes))
	for pe := range r.pes {
		s := &out[pe]
		s.PE = pe
		s.Dropped = r.pes[pe].dropped
		var blockAt time.Duration = -1
		for _, e := range r.pes[pe].events {
			s.Events++
			s.ByKind[e.Kind]++
			switch e.Kind {
			case KindBlock:
				blockAt = e.At
			case KindWake:
				if blockAt >= 0 {
					s.BlockedTime += e.At - blockAt
					blockAt = -1
				}
			case KindWorkSleep:
				s.SleptNanos += e.Arg
			}
		}
	}
	return out
}

// WriteSummary renders the per-PE summaries as an aligned table. The
// blocked-time column is the direct observation of the paper's §I claim
// that bulk-synchronous PEs "sit idle while waiting ... to reach the
// synchronization barrier". The dropped column reports ring-buffer
// overflow; per PE, events-retained + dropped always equals the number of
// Record calls, so a non-zero value flags a truncated timeline rather
// than silently under-counting.
func (r *Recorder) WriteSummary(w io.Writer) error {
	sums := r.Summarize()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-9s %-9s %-9s %-9s %-9s %-11s %-12s\n",
		"PE", "deliver", "idlework", "reduction", "broadcast", "dropped", "blocked", "workslept")
	for _, s := range sums {
		fmt.Fprintf(&sb, "%-4d %-9d %-9d %-9d %-9d %-9d %-11s %-12s\n",
			s.PE, s.ByKind[KindDeliver], s.ByKind[KindIdleWork],
			s.ByKind[KindReduction], s.ByKind[KindBroadcast], s.Dropped,
			s.BlockedTime.Round(time.Microsecond),
			time.Duration(s.SleptNanos).Round(time.Microsecond))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// BusiestPE returns the PE with the most delivered+idle-work events — a
// quick load-imbalance probe.
func (r *Recorder) BusiestPE() int {
	best, bestN := 0, int64(-1)
	for pe := range r.pes {
		var n int64
		for _, e := range r.pes[pe].events {
			if e.Kind == KindDeliver || e.Kind == KindIdleWork {
				n++
			}
		}
		if n > bestN {
			best, bestN = pe, n
		}
	}
	return best
}

// MergedTimeline interleaves all PEs' events chronologically, tagging each
// with its PE, for whole-machine inspection in tests and debugging.
type TaggedEvent struct {
	PE int
	Event
}

// Merged returns the machine-wide chronological event list.
func (r *Recorder) Merged() []TaggedEvent {
	var out []TaggedEvent
	for pe := range r.pes {
		for _, e := range r.pes[pe].events {
			out = append(out, TaggedEvent{PE: pe, Event: e})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
