package trace

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRecordAndTimeline(t *testing.T) {
	r := New(2, 16)
	r.Record(0, KindDeliver, 1)
	r.Record(0, KindIdleWork, 2)
	r.Record(1, KindBlock, 0)
	tl := r.Timeline(0)
	if len(tl) != 2 {
		t.Fatalf("timeline length %d", len(tl))
	}
	if tl[0].Kind != KindDeliver || tl[1].Kind != KindIdleWork {
		t.Error("event kinds wrong")
	}
	if tl[1].At < tl[0].At {
		t.Error("timestamps not monotone")
	}
	if len(r.Timeline(1)) != 1 {
		t.Error("PE 1 timeline wrong")
	}
}

func TestOverflowKeepsTail(t *testing.T) {
	r := New(1, 8)
	for i := 0; i < 20; i++ {
		r.Record(0, KindDeliver, int64(i))
	}
	tl := r.Timeline(0)
	if len(tl) > 8 {
		t.Fatalf("buffer exceeded cap: %d", len(tl))
	}
	if r.Dropped(0) == 0 {
		t.Error("no drops recorded despite overflow")
	}
	// The newest event must be retained.
	if tl[len(tl)-1].Arg != 19 {
		t.Errorf("tail lost: last arg %d", tl[len(tl)-1].Arg)
	}
}

// TestDropAccounting pins the buffer-overflow conservation law: for every
// PE, retained events + Dropped() equals the number of Record calls, and
// Summarize plus the WriteSummary table report the same dropped count.
// Exercised at several caps (odd, even, tiny) so the keep-newer-half
// arithmetic is checked off the happy path too.
func TestDropAccounting(t *testing.T) {
	for _, tc := range []struct {
		cap, records int
	}{
		{cap: 8, records: 100},
		{cap: 7, records: 53},
		{cap: 2, records: 9},
		{cap: 16, records: 16}, // exactly full: no drop yet
		{cap: 16, records: 17}, // first overflow
	} {
		r := New(1, tc.cap)
		for i := 0; i < tc.records; i++ {
			r.Record(0, KindDeliver, int64(i))
		}
		retained := len(r.Timeline(0))
		lost := int64(tc.records) - int64(retained)
		if got := r.Dropped(0); got != lost {
			t.Errorf("cap=%d records=%d: Dropped()=%d, actual lost=%d (retained %d)",
				tc.cap, tc.records, got, lost, retained)
		}
		sum := r.Summarize()[0]
		if sum.Dropped != lost {
			t.Errorf("cap=%d records=%d: Summary.Dropped=%d, actual lost=%d",
				tc.cap, tc.records, sum.Dropped, lost)
		}
		if sum.Events != int64(retained) {
			t.Errorf("cap=%d records=%d: Summary.Events=%d, retained=%d",
				tc.cap, tc.records, sum.Events, retained)
		}
		// The summary table must surface the same number in its dropped column.
		var sb strings.Builder
		if err := r.WriteSummary(&sb); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		if len(lines) != 2 {
			t.Fatalf("summary shape: %q", sb.String())
		}
		header, row := strings.Fields(lines[0]), strings.Fields(lines[1])
		col := -1
		for i, h := range header {
			if h == "dropped" {
				col = i
			}
		}
		if col < 0 {
			t.Fatalf("summary header has no dropped column: %q", lines[0])
		}
		if want := fmt.Sprintf("%d", lost); row[col] != want {
			t.Errorf("cap=%d records=%d: summary line dropped=%s, want %s",
				tc.cap, tc.records, row[col], want)
		}
	}
}

func TestCounts(t *testing.T) {
	r := New(1, 0) // default cap
	for i := 0; i < 5; i++ {
		r.Record(0, KindDeliver, 0)
	}
	r.Record(0, KindBroadcast, 0)
	c := r.Counts(0)
	if c[KindDeliver] != 5 || c[KindBroadcast] != 1 {
		t.Errorf("counts = %v", c)
	}
}

func TestSummarizeBlockedTime(t *testing.T) {
	r := New(1, 64)
	r.Record(0, KindBlock, 0)
	time.Sleep(2 * time.Millisecond)
	r.Record(0, KindWake, 0)
	r.Record(0, KindWorkSleep, int64(5*time.Millisecond))
	s := r.Summarize()
	if len(s) != 1 {
		t.Fatal("summary count")
	}
	if s[0].BlockedTime < 2*time.Millisecond {
		t.Errorf("BlockedTime = %v, want >= 2ms", s[0].BlockedTime)
	}
	if s[0].SleptNanos != int64(5*time.Millisecond) {
		t.Errorf("SleptNanos = %d", s[0].SleptNanos)
	}
}

func TestWriteSummary(t *testing.T) {
	r := New(2, 16)
	r.Record(0, KindDeliver, 0)
	r.Record(1, KindIdleWork, 0)
	var sb strings.Builder
	if err := r.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "deliver") || !strings.Contains(out, "blocked") {
		t.Errorf("summary missing columns:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("summary should have header + 2 rows:\n%s", out)
	}
}

func TestBusiestPE(t *testing.T) {
	r := New(3, 64)
	r.Record(0, KindDeliver, 0)
	for i := 0; i < 5; i++ {
		r.Record(2, KindIdleWork, 0)
	}
	if got := r.BusiestPE(); got != 2 {
		t.Errorf("BusiestPE = %d, want 2", got)
	}
}

func TestMergedChronological(t *testing.T) {
	r := New(2, 16)
	r.Record(0, KindDeliver, 0)
	r.Record(1, KindDeliver, 0)
	r.Record(0, KindBlock, 0)
	m := r.Merged()
	if len(m) != 3 {
		t.Fatalf("merged length %d", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].At < m[i-1].At {
			t.Error("merged timeline not chronological")
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no label", k)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should render")
	}
}
