package engine

import (
	"context"
	"math"
	"testing"

	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/seq"
)

// checkPath validates a path's edges exist in g and its weights sum to the
// reported distance.
func checkPath(t *testing.T, g *graph.Graph, pr *PathResult) {
	t.Helper()
	if len(pr.Path) == 0 || pr.Path[0] != int32(pr.Source) || pr.Path[len(pr.Path)-1] != int32(pr.Target) {
		t.Fatalf("path %v does not run %d..%d", pr.Path, pr.Source, pr.Target)
	}
	var sum float64
	for i := 0; i+1 < len(pr.Path); i++ {
		from, to := pr.Path[i], pr.Path[i+1]
		ts, ws := g.Neighbors(int(from))
		best := math.Inf(1)
		for j, cand := range ts {
			if cand == to && ws[j] < best {
				best = ws[j]
			}
		}
		if math.IsInf(best, 1) {
			t.Fatalf("path step %d->%d is not an edge", from, to)
		}
		sum += best
	}
	if math.Abs(sum-pr.Distance) > 1e-9*math.Max(1, pr.Distance) {
		t.Fatalf("path weights sum to %g, reported distance %g", sum, pr.Distance)
	}
}

// TestGoalDijkstraMatchesOracle checks the goal-pruned search's distance
// against full Dijkstra over a mix of graph shapes and pairs.
func TestGoalDijkstraMatchesOracle(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"uniform": gen.Uniform(300, 2400, gen.Config{Seed: 4}),
		"grid":    gen.Grid(16, 16, gen.Config{Seed: 4}),
		"star":    gen.Star(64),
		"path":    gen.Path(64),
	}
	for name, g := range graphs {
		oracle := seq.Dijkstra(g, 0)
		for _, target := range []int{0, 1, g.NumVertices() / 2, g.NumVertices() - 1} {
			pr := goalDijkstra(g, 0, target)
			want := oracle.Dist[target]
			if math.IsInf(want, 1) {
				if pr.Reachable {
					t.Errorf("%s: target %d reported reachable, oracle says not", name, target)
				}
				continue
			}
			if !pr.Reachable {
				t.Errorf("%s: target %d reported unreachable, oracle distance %g", name, target, want)
				continue
			}
			if math.Abs(pr.Distance-want) > 1e-9*math.Max(1, want) {
				t.Errorf("%s: target %d distance %g, oracle %g", name, target, pr.Distance, want)
			}
			checkPath(t, g, pr)
		}
	}
}

// TestGoalDijkstraPrunes: on a graph where the goal is found early, the
// goal bound must actually discard work.
func TestGoalDijkstraPrunes(t *testing.T) {
	// Star: hub 0 connects to all leaves with weight 1. Searching 0 -> 1
	// finds the goal on the first relaxation round; every later pop of a
	// leaf relaxes nothing, and with the incumbent bound set, relaxations
	// at cost >= 1... use a two-level construction instead: source fans
	// out, goal adjacent at low cost, expensive detours prunable.
	edges := []graph.Edge{
		{From: 0, To: 1, Weight: 1},   // direct cheap edge to goal
		{From: 0, To: 2, Weight: 0.5}, // settled before goal
		{From: 2, To: 3, Weight: 5},   // tentative 5.5 >= 1: pruned
		{From: 2, To: 4, Weight: 9},   // tentative 9.5 >= 1: pruned
	}
	g, err := graph.Build(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	pr := goalDijkstra(g, 0, 1)
	if !pr.Reachable || pr.Distance != 1 {
		t.Fatalf("distance = %v (reachable=%v), want 1", pr.Distance, pr.Reachable)
	}
	if pr.Pruned != 2 {
		t.Errorf("pruned = %d, want 2 (both detours out of vertex 2)", pr.Pruned)
	}
}

// TestPathUnreachable: no path → Reachable false, +Inf distance, nil path.
func TestPathUnreachable(t *testing.T) {
	g, err := graph.Build(3, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, g, Config{})
	pr, err := e.Path(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Reachable || pr.Path != nil || !math.IsInf(pr.Distance, 1) {
		t.Errorf("unreachable pair: %+v", pr)
	}
}

// TestPathSourceEqualsTarget: the trivial path is one vertex at distance 0.
func TestPathSourceEqualsTarget(t *testing.T) {
	g := gen.Path(8)
	e := mustEngine(t, g, Config{})
	pr, err := e.Path(context.Background(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Reachable || pr.Distance != 0 || len(pr.Path) != 1 || pr.Path[0] != 3 {
		t.Errorf("self path: %+v", pr)
	}
}

// TestPathServedFromCachedVector: after a full /sssp query, /path for the
// same source answers from the cached tree without a search.
func TestPathServedFromCachedVector(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{})
	full, err := e.Query(context.Background(), 2, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	target := -1
	for v, d := range full.Dist {
		if v != 2 && !math.IsInf(d, 1) {
			target = v
			break
		}
	}
	if target < 0 {
		t.Skip("no reachable target")
	}
	pr, err := e.Path(context.Background(), 2, target)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.CacheHit {
		t.Error("path after full query did not use the cached vector")
	}
	if pr.Settled != 0 || pr.Pruned != 0 {
		t.Errorf("cached path reports search work: settled=%d pruned=%d", pr.Settled, pr.Pruned)
	}
	if math.Abs(pr.Distance-full.Dist[target]) > 1e-12 {
		t.Errorf("cached path distance %g, vector distance %g", pr.Distance, full.Dist[target])
	}
	checkPath(t, g, pr)
	// And the search answer agrees with the cached one.
	e2 := mustEngine(t, g, Config{})
	pr2, err := e2.Path(context.Background(), 2, target)
	if err != nil {
		t.Fatal(err)
	}
	if pr2.CacheHit {
		t.Error("fresh engine reported a cache hit")
	}
	if math.Abs(pr2.Distance-pr.Distance) > 1e-9 {
		t.Errorf("search distance %g != cached distance %g", pr2.Distance, pr.Distance)
	}
}
