// Package engine is the resident SSSP query engine behind cmd/acic-serve:
// the piece that turns the batch reproduction (build the simulated machine,
// solve one source, tear it down) into a long-lived service answering many
// queries over one shared graph.
//
// One Engine owns one immutable *graph.Graph, loaded once and shared
// read-only by every concurrent query (the CSR arrays are never written
// after Build; internal/core's concurrent-runs test pins that contract).
// Around the graph it maintains:
//
//   - A pool of core.Scratch instances, one per admission slot, checked out
//     for the duration of a query so repeated queries recycle the arena and
//     per-PE state instead of reallocating the machine. The Scratch
//     exclusivity latch (core.ErrScratchInUse) backstops the pool: a
//     bookkeeping bug fails loudly instead of corrupting state.
//
//   - An LRU cache of completed distance vectors keyed by (graph epoch,
//     source), with single-flight deduplication: concurrent identical
//     queries ride one computation, and followers do not consume admission
//     slots while they wait.
//
//   - Admission control: a bounded in-flight-slot semaphore sized to the
//     simulated machine's capacity, plus a bounded wait queue. A query that
//     finds the queue full — or waits longer than the queue timeout — is
//     shed with ErrSaturated, which the HTTP layer maps to 429 +
//     Retry-After. Fan-in beyond PE capacity degrades by rejecting, never
//     by queueing unboundedly.
//
//   - Point-to-point queries with goal-distance pruning (the heuristic-
//     search playbook of Yu et al., arXiv:2506.19349): a label-setting
//     search that stops at the target and prunes every relaxation at or
//     above the incumbent goal distance. A cached full vector for the
//     source answers the query without any search at all.
//
// Draining: Close stops admitting, waits for in-flight queries, and leaves
// cached results readable — the HTTP layer keeps /healthz honest while the
// process shuts down.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"acic/internal/core"
	"acic/internal/dynamic"
	"acic/internal/graph"
	"acic/internal/metrics"
	"acic/internal/netsim"
)

// Sentinel errors; the HTTP layer maps each to a status code.
var (
	// ErrSaturated is returned when admission control sheds a query: every
	// in-flight slot is busy and the wait queue is full (or the queue
	// timeout elapsed). Maps to 429.
	ErrSaturated = errors.New("engine: saturated, query shed")
	// ErrDraining is returned once Close has begun. Maps to 503.
	ErrDraining = errors.New("engine: draining")
	// ErrBadVertex wraps out-of-range source/target parameters. Maps to 400.
	ErrBadVertex = errors.New("engine: vertex out of range")
)

// Config sizes one Engine. The zero value of every field selects a default.
type Config struct {
	// Topo is the simulated machine each query runs on; zero means the
	// core default (a single node with 4 PEs).
	Topo netsim.Topology
	// Latency is the network model for query runs.
	Latency netsim.LatencyModel
	// Params are the ACIC algorithm parameters; zero means DefaultParams.
	Params core.Params
	// MaxInFlight bounds concurrently executing queries (and sizes the
	// Scratch pool and the metrics shards). Default 4.
	MaxInFlight int
	// MaxQueue bounds queries waiting for a slot; a query arriving to a
	// full queue is shed immediately. Default 2 × MaxInFlight.
	MaxQueue int
	// QueueTimeout bounds how long a queued query waits for a slot before
	// being shed. Default 1s.
	QueueTimeout time.Duration
	// CacheEntries bounds the LRU distance-vector cache. Default 64.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 64
	}
	return c
}

// graphVersion is one immutable (epoch, graph) pair. Queries load the
// current version exactly once, so the epoch they admit under and the CSR
// arrays they read always belong together even while a mutation swaps the
// version underneath them.
type graphVersion struct {
	epoch uint64
	g     *graph.Graph
}

// Engine is a resident SSSP query engine over one shared graph version.
// Construct with New (static graph) or NewDynamic (mutable graph, see
// mutate.go); all methods are safe for concurrent use.
type Engine struct {
	version atomic.Pointer[graphVersion]
	cfg     Config

	// dg is the mutable graph behind a dynamic engine; nil for static
	// engines. mutMu serializes Mutate and InvalidateCache — the only
	// operations that swap the version pointer.
	dg    *dynamic.Graph
	mutMu sync.Mutex

	// slots carries the admission-slot ids [0, MaxInFlight); holding an id
	// is holding the right to run one query. scratch[i] is slot i's
	// core.Scratch, so the pool needs no locking of its own.
	slots chan int
	//acic:allow-unpadded each Scratch is its own heap allocation and its latch sees one CAS per query, not a hot shard
	scratch []*core.Scratch
	queued  atomic.Int64

	cache *lruCache

	draining  atomic.Bool
	drainOnce sync.Once
	drained   chan struct{} // closed when draining begins
	inflight  sync.WaitGroup

	// Engine-level telemetry, sharded by admission slot (shard 0 doubles
	// as the slot-less shard for cache hits and sheds).
	met          *metrics.Registry
	mQueries     *metrics.Counter
	mHits        *metrics.Counter
	mMisses      *metrics.Counter
	mFollows     *metrics.Counter
	mShed        *metrics.Counter
	mErrors      *metrics.Counter
	mP2P         *metrics.Counter
	mP2PPruned   *metrics.Counter
	mP2PSettled  *metrics.Counter
	mMutations   *metrics.Counter
	mRepairedVec *metrics.Counter
	gInFlight    *metrics.Gauge
	gQueued      *metrics.Gauge
	gCacheLen    *metrics.Gauge
	hQueryMicros *metrics.Histogram

	// svcNanos is an EWMA of recent query service time in nanoseconds
	// (α = 1/8), fed by every completed computation. The HTTP layer
	// derives the 429 Retry-After hint from it, so the backoff a shed
	// client is told tracks how long queries actually take on this graph
	// instead of a hardcoded guess. Zero until the first query completes.
	svcNanos atomic.Int64
}

// observeService folds one query's service time into the EWMA.
func (e *Engine) observeService(d time.Duration) {
	for {
		old := e.svcNanos.Load()
		next := d.Nanoseconds()
		if old != 0 {
			next = old + (next-old)/8
		}
		if e.svcNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// New builds an Engine serving queries over g. The graph must not be
// mutated afterwards — every query shares it read-only.
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	if g == nil {
		return nil, errors.New("engine: nil graph")
	}
	cfg = cfg.withDefaults()
	if cfg.Topo != (netsim.Topology{}) {
		if err := cfg.Topo.Validate(); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		cfg:   cfg,
		slots: make(chan int, cfg.MaxInFlight),
		//acic:allow-unpadded each Scratch is its own heap allocation and its latch sees one CAS per query, not a hot shard
		scratch: make([]*core.Scratch, cfg.MaxInFlight),
		cache:   newLRUCache(cfg.CacheEntries),
		drained: make(chan struct{}),
		met:     metrics.New(cfg.MaxInFlight),
	}
	e.version.Store(&graphVersion{g: g})
	for i := 0; i < cfg.MaxInFlight; i++ {
		e.scratch[i] = &core.Scratch{}
		e.slots <- i
	}
	e.mQueries = e.met.Counter("engine.queries")
	e.mHits = e.met.Counter("engine.cache_hits")
	e.mMisses = e.met.Counter("engine.cache_misses")
	e.mFollows = e.met.Counter("engine.singleflight_follows")
	e.mShed = e.met.Counter("engine.shed")
	e.mErrors = e.met.Counter("engine.errors")
	e.mP2P = e.met.Counter("engine.p2p_queries")
	e.mP2PPruned = e.met.Counter("engine.p2p_pruned_relaxations")
	e.mP2PSettled = e.met.Counter("engine.p2p_settled")
	e.mMutations = e.met.Counter("engine.mutations")
	e.mRepairedVec = e.met.Counter("engine.repaired_vectors")
	e.gInFlight = e.met.Gauge("engine.inflight")
	e.gQueued = e.met.Gauge("engine.queued")
	e.gCacheLen = e.met.Gauge("engine.cache_entries")
	e.hQueryMicros = e.met.Histogram("engine.query_us")
	return e, nil
}

// Graph returns the engine's current graph snapshot. For a dynamic engine
// this is the CSR of the latest applied epoch; mutations never touch a
// returned snapshot.
func (e *Engine) Graph() *graph.Graph { return e.version.Load().g }

// Epoch returns the current graph epoch. Epochs key the cache; every
// Mutate batch (and every InvalidateCache call) advances it by one, making
// stale vectors unreachable.
func (e *Engine) Epoch() uint64 { return e.version.Load().epoch }

// InvalidateCache advances the graph epoch (same graph, new version) and
// drops every cached vector.
func (e *Engine) InvalidateCache() {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	old := e.version.Load()
	e.version.Store(&graphVersion{epoch: old.epoch + 1, g: old.g})
	e.cache.purge()
	e.gCacheLen.Set(0, int64(e.cache.len()))
}

// MetricsSnapshot captures the engine-level instrument registry.
func (e *Engine) MetricsSnapshot() metrics.Snapshot { return e.met.Snapshot() }

// QueryOptions tune one query.
type QueryOptions struct {
	// CollectMetrics attaches a per-query metrics registry to the
	// underlying core.Run and returns its snapshot. Snapshots come only
	// from queries that actually compute — a cache hit returns nil.
	CollectMetrics bool
}

// QueryResult is one answered single-source query. Dist and Parent alias
// the shared cache entry: callers must treat them as read-only.
type QueryResult struct {
	Source   int
	Epoch    uint64
	CacheHit bool
	Dist     []float64
	Parent   []int32
	Stats    core.Stats
	// Metrics is the per-query registry snapshot when requested and the
	// query computed (nil on cache hits).
	Metrics *metrics.Snapshot
}

// Query answers a single-source query, serving from the cache when the
// (epoch, source) vector is resident and computing (under admission
// control, with single-flight dedup) otherwise.
func (e *Engine) Query(ctx context.Context, source int, opts QueryOptions) (*QueryResult, error) {
	e.mQueries.Inc(0)
	v := e.version.Load() // one load: epoch and graph stay a consistent pair
	if source < 0 || source >= v.g.NumVertices() {
		e.mErrors.Inc(0)
		return nil, fmt.Errorf("%w: source %d not in [0,%d)", ErrBadVertex, source, v.g.NumVertices())
	}
	key := cacheKey{epoch: v.epoch, source: int32(source)}

	// Fast path: a resident or in-flight entry answers without admission.
	if ent, ok := e.cache.get(key); ok {
		res, err := e.await(ctx, ent)
		if err == nil {
			e.mHits.Inc(0)
			return e.result(res, key, true, nil), nil
		}
		if !errors.Is(err, errEntryFailed) {
			return nil, err // context cancelled while waiting
		}
		// The computation this entry tracked failed; fall through and
		// compute it ourselves.
	}

	slot, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}

	ent, leader := e.cache.getOrCreate(key)
	e.gCacheLen.Set(0, int64(e.cache.len()))
	if !leader {
		// Someone beat us to it between the fast path and here; don't sit
		// on a slot while following their computation.
		e.releaseSlot(slot)
		e.mFollows.Inc(0)
		res, err := e.await(ctx, ent)
		if err != nil {
			if errors.Is(err, errEntryFailed) {
				err = ent.err
			}
			return nil, err
		}
		return e.result(res, key, true, nil), nil
	}

	defer e.releaseSlot(slot)
	e.mMisses.Inc(slot)
	start := time.Now()
	res, snap, err := e.compute(v.g, source, slot, opts.CollectMetrics)
	svc := time.Since(start)
	e.hQueryMicros.Observe(slot, svc.Microseconds())
	e.observeService(svc)
	if err != nil {
		e.mErrors.Inc(slot)
		e.cache.fail(ent, err)
		return nil, err
	}
	e.publish(ent, res)
	return e.result(res, key, false, snap), nil
}

// publish completes ent for its waiters, then evicts it if the engine moved
// past the entry's epoch while the computation ran. Without the eviction a
// single-flight leader that loses a race with Mutate parks a stale vector
// under an old epoch key: Mutate's purge ran before the leader completed, so
// nothing would ever remove it, yet the LRU still counts it and a later
// InvalidateCache-then-rollback pattern could resurface it. Waiters are
// unaffected — they hold the entry pointer and their admission epoch equals
// the entry's key epoch, so the result is exact for what they asked.
func (e *Engine) publish(ent *cacheEntry, res *core.Result) {
	e.cache.complete(ent, res)
	if ent.key.epoch != e.version.Load().epoch {
		e.cache.remove(ent)
		e.gCacheLen.Set(0, int64(e.cache.len()))
	}
}

func (e *Engine) result(res *core.Result, key cacheKey, hit bool, snap *metrics.Snapshot) *QueryResult {
	return &QueryResult{
		Source:   int(key.source),
		Epoch:    key.epoch,
		CacheHit: hit,
		Dist:     res.Dist,
		Parent:   res.Parent,
		Stats:    res.Stats,
		Metrics:  snap,
	}
}

// compute runs the full ACIC machine for one source on slot's Scratch,
// against the graph version the caller admitted under.
func (e *Engine) compute(g *graph.Graph, source, slot int, collectMetrics bool) (*core.Result, *metrics.Snapshot, error) {
	var reg *metrics.Registry
	if collectMetrics {
		topo := e.cfg.Topo
		if topo == (netsim.Topology{}) {
			topo = netsim.SingleNode(4)
		}
		reg = metrics.New(topo.TotalPEs())
	}
	res, err := core.Run(g, source, core.Options{
		Topo:    e.cfg.Topo,
		Latency: e.cfg.Latency,
		Params:  e.cfg.Params,
		Metrics: reg,
		Scratch: e.scratch[slot],
	})
	if err != nil {
		return nil, nil, err
	}
	var snap *metrics.Snapshot
	if reg != nil {
		s := reg.Snapshot()
		snap = &s
	}
	return res, snap, nil
}

// admit claims an in-flight slot, waiting in the bounded queue if all are
// busy. It returns ErrSaturated when the queue is full or the wait times
// out, and ErrDraining once Close has begun.
func (e *Engine) admit(ctx context.Context) (int, error) {
	if e.draining.Load() {
		return 0, ErrDraining
	}
	select {
	case slot := <-e.slots:
		e.inflight.Add(1)
		e.gInFlight.Add(0, 1)
		return slot, nil
	default:
	}
	if q := e.queued.Add(1); q > int64(e.cfg.MaxQueue) {
		e.queued.Add(-1)
		e.mShed.Inc(0)
		return 0, ErrSaturated
	}
	e.gQueued.Set(0, e.queued.Load())
	defer func() {
		e.queued.Add(-1)
		e.gQueued.Set(0, e.queued.Load())
	}()
	timer := time.NewTimer(e.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case slot := <-e.slots:
		e.inflight.Add(1)
		e.gInFlight.Add(0, 1)
		return slot, nil
	case <-timer.C:
		e.mShed.Inc(0)
		return 0, ErrSaturated
	case <-e.drained:
		return 0, ErrDraining
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func (e *Engine) releaseSlot(slot int) {
	e.gInFlight.Add(0, -1)
	e.slots <- slot
	e.inflight.Done()
}

// await blocks until ent's computation completes (or ctx is cancelled) and
// returns its result; errEntryFailed signals the leader errored.
func (e *Engine) await(ctx context.Context, ent *cacheEntry) (*core.Result, error) {
	select {
	case <-ent.ready:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if ent.err != nil {
		return nil, errEntryFailed
	}
	return ent.res, nil
}

// Draining reports whether Close has begun.
func (e *Engine) Draining() bool { return e.draining.Load() }

// InFlight returns the number of currently executing queries.
func (e *Engine) InFlight() int64 { return e.gInFlight.Value() }

// Close drains the engine: new queries are rejected with ErrDraining,
// queued waiters are woken and shed, and Close blocks until every in-flight
// query finishes or ctx expires (returning ctx's error; the queries keep
// running to completion either way).
func (e *Engine) Close(ctx context.Context) error {
	e.drainOnce.Do(func() {
		// Flip draining under mutMu so it serializes with Mutate's publish:
		// any batch that passed the drain check finishes publishing before
		// draining begins; after that, Mutate rejects with ErrDraining.
		e.mutMu.Lock()
		e.draining.Store(true)
		e.mutMu.Unlock()
		close(e.drained)
	})
	done := make(chan struct{})
	go func() {
		e.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Health is the /healthz payload.
type Health struct {
	Status       string `json:"status"` // "ok" or "draining"
	Epoch        uint64 `json:"epoch"`
	Vertices     int    `json:"vertices"`
	Edges        int    `json:"edges"`
	PEs          int    `json:"pes"`
	InFlight     int64  `json:"inflight"`
	Queued       int64  `json:"queued"`
	CacheEntries int    `json:"cache_entries"`
	MaxInFlight  int    `json:"max_inflight"`
	MaxQueue     int    `json:"max_queue"`
}

// Health reports the engine's liveness snapshot.
func (e *Engine) Health() Health {
	status := "ok"
	if e.draining.Load() {
		status = "draining"
	}
	v := e.version.Load()
	return Health{
		Status:       status,
		Epoch:        v.epoch,
		Vertices:     v.g.NumVertices(),
		Edges:        v.g.NumEdges(),
		PEs:          e.cfg.Topo.TotalPEs(),
		InFlight:     e.InFlight(),
		Queued:       e.queued.Load(),
		CacheEntries: e.cache.len(),
		MaxInFlight:  e.cfg.MaxInFlight,
		MaxQueue:     e.cfg.MaxQueue,
	}
}
