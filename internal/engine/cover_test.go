package engine

// Branch-level tests for the engine surfaces the end-to-end suites reach
// only racily or not at all: accessors and Health, the cache failure
// protocol (failed entries evicted, stale fails ignored, followers see the
// leader's error), await cancellation, and the HTTP parameter/error edges.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"acic/internal/netsim"
)

func TestAccessorsAndHealth(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{Topo: netsim.Topology{Nodes: 1, ProcsPerNode: 2, PEsPerProc: 2}})
	if e.Graph() != g {
		t.Error("Graph() did not return the shared graph")
	}
	if e.Epoch() != 0 {
		t.Errorf("fresh engine epoch %d, want 0", e.Epoch())
	}
	e.InvalidateCache()
	if e.Epoch() != 1 {
		t.Errorf("epoch %d after InvalidateCache, want 1", e.Epoch())
	}
	if e.Draining() {
		t.Error("Draining() true before Close")
	}
	h := e.Health()
	if h.Status != "ok" || h.Vertices != g.NumVertices() || h.Edges != g.NumEdges() || h.PEs != 4 {
		t.Errorf("health %+v, want ok over |V|=%d |E|=%d on 4 PEs", h, g.NumVertices(), g.NumEdges())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if !e.Draining() {
		t.Error("Draining() false after Close")
	}
	if got := e.Health().Status; got != "draining" {
		t.Errorf("health status %q after Close, want draining", got)
	}
}

func TestCacheFailProtocol(t *testing.T) {
	boom := errors.New("boom")
	c := newLRUCache(2)
	k := cacheKey{epoch: 0, source: 1}
	ent, leader := c.getOrCreate(k)
	if !leader {
		t.Fatal("first getOrCreate was not the leader")
	}
	waited := make(chan error, 1)
	go func() {
		<-ent.ready
		waited <- ent.err
	}()
	c.fail(ent, boom)
	if err := <-waited; !errors.Is(err, boom) {
		t.Errorf("waiter saw %v, want boom", err)
	}
	if _, ok := c.get(k); ok {
		t.Error("failed entry still resident; retries would re-serve the failure")
	}
	ent2, leader2 := c.getOrCreate(k)
	if !leader2 {
		t.Error("key not re-claimable after a failure")
	}
	// A fail of a stale entry (already evicted and re-created under the same
	// key) must not remove the live one.
	stale := &cacheEntry{key: k, ready: make(chan struct{})}
	c.fail(stale, boom)
	if got, ok := c.get(k); !ok || got != ent2 {
		t.Error("stale fail removed the live entry")
	}
}

// TestQueryFailedEntryFallThrough pins the single-flight failure protocol
// end to end: a resident entry whose computation errored sends the fast
// path through errEntryFailed into admission, where the follower branch
// surfaces the leader's recorded error; once the entry is evicted, the same
// source recomputes cleanly.
func TestQueryFailedEntryFallThrough(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{})
	boom := errors.New("boom")
	key := cacheKey{epoch: 0, source: 7}

	// Plant a completed-with-error entry that is still resident, as a
	// waiter would observe mid-race between the leader's close(ready) and
	// its removal of the entry.
	ent, leader := e.cache.getOrCreate(key)
	if !leader {
		t.Fatal("setup entry not leader-created")
	}
	ent.err = boom
	close(ent.ready)

	if _, err := e.Query(context.Background(), 7, QueryOptions{}); !errors.Is(err, boom) {
		t.Fatalf("query over failed entry returned %v, want boom", err)
	}

	// Once the leader's fail() finishes evicting (replicated by hand here —
	// ready is already closed, so calling fail again would double-close),
	// the source recomputes.
	e.cache.mu.Lock()
	e.cache.order.Remove(ent.elem)
	delete(e.cache.items, key)
	e.cache.mu.Unlock()
	res, err := e.Query(context.Background(), 7, QueryOptions{})
	if err != nil || res.CacheHit {
		t.Fatalf("recompute after eviction: res=%+v err=%v, want fresh success", res, err)
	}
}

func TestQueryCancelledWhileAwaiting(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{})
	key := cacheKey{epoch: 0, source: 9}
	if _, leader := e.cache.getOrCreate(key); !leader {
		t.Fatal("setup entry not leader-created")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Query(ctx, 9, QueryOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("query awaiting an in-flight entry under a cancelled context returned %v", err)
	}
}

func TestHTTPParameterAndErrorEdges(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		path string
		code int
	}{
		{"/sssp?source=1&vertices=abc", 400},
		{"/sssp?source=1&vertices=99999", 400},
		{"/sssp?source=1&limit=zap", 400},
		{"/sssp?source=1&limit=999999", 200}, // clamped to |V|
		{"/sssp?source=", 400},
		{"/path?source=1&target=nope", 400},
	} {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("GET %s: status %d, want %d", tc.path, resp.StatusCode, tc.code)
		}
	}

	// Unrecognized errors map to 500.
	rec := httptest.NewRecorder()
	e.writeError(rec, errors.New("wholly unexpected"))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("unknown error mapped to %d, want 500", rec.Code)
	}
}
