package engine

// Point-to-point queries. A /path query needs one distance, not |V| of
// them; running the full ACIC machine would compute (and cache) everything
// reachable. When the source's full vector is already resident the answer
// is a tree walk; otherwise the engine runs a goal-directed label-setting
// search with goal-distance pruning — the admissible-pruning playbook of
// the heuristic-search paper (Yu et al., arXiv:2506.19349, §3): any partial
// path whose cost already reaches the incumbent goal distance can be
// discarded without losing optimality, and the search terminates the moment
// the goal itself is settled.

import (
	"context"
	"fmt"
	"math"
	"time"

	"acic/internal/graph"
	"acic/internal/pq"
)

// PathResult is one answered point-to-point query.
type PathResult struct {
	Source int
	Target int
	Epoch  uint64
	// Reachable is false when no path exists; Distance is then +Inf and
	// Path is nil.
	Reachable bool
	Distance  float64
	// Path is the vertex sequence source..target.
	Path []int32
	// CacheHit is true when a resident full vector for the source answered
	// the query without a search.
	CacheHit bool
	// Settled and Pruned describe the goal-directed search's work: settled
	// vertices, and relaxations discarded by the goal-distance bound.
	// Both are zero on cache hits.
	Settled int64
	Pruned  int64
}

// Path answers a point-to-point query. A resident (epoch, source) vector
// short-circuits it; otherwise the search runs under the same admission
// control as full queries.
func (e *Engine) Path(ctx context.Context, source, target int) (*PathResult, error) {
	e.mQueries.Inc(0)
	e.mP2P.Inc(0)
	ver := e.version.Load() // one load: epoch and graph stay a consistent pair
	n := ver.g.NumVertices()
	if source < 0 || source >= n {
		e.mErrors.Inc(0)
		return nil, fmt.Errorf("%w: source %d not in [0,%d)", ErrBadVertex, source, n)
	}
	if target < 0 || target >= n {
		e.mErrors.Inc(0)
		return nil, fmt.Errorf("%w: target %d not in [0,%d)", ErrBadVertex, target, n)
	}
	epoch := ver.epoch
	key := cacheKey{epoch: epoch, source: int32(source)}

	// A completed cached vector answers without admission or search. An
	// in-flight entry is not awaited: the point of /path is a cheap
	// answer, and the goal-directed search below is exactly that.
	if ent, ok := e.cache.get(key); ok {
		select {
		case <-ent.ready:
			if ent.err == nil {
				e.mHits.Inc(0)
				res := ent.res
				pr := &PathResult{Source: source, Target: target, Epoch: epoch, CacheHit: true}
				pr.Distance = res.Dist[target]
				if path := res.PathTo(target); path != nil {
					pr.Reachable = true
					pr.Path = path
				} else {
					pr.Distance = math.Inf(1)
				}
				return pr, nil
			}
		default:
		}
	}

	slot, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer e.releaseSlot(slot)
	start := time.Now()
	pr := goalDijkstra(ver.g, source, target)
	e.hQueryMicros.Observe(slot, time.Since(start).Microseconds())
	pr.Epoch = epoch
	e.mP2PPruned.Add(slot, pr.Pruned)
	e.mP2PSettled.Add(slot, pr.Settled)
	return pr, nil
}

// goalDijkstra is a label-setting search from source that stops when target
// is settled, pruning every relaxation whose tentative distance reaches the
// incumbent goal distance. With non-negative weights the first pop of the
// target is optimal, and the zero heuristic keeps the incumbent bound
// admissible, so pruning never discards the shortest path.
func goalDijkstra(g *graph.Graph, source, target int) *PathResult {
	n := g.NumVertices()
	pr := &PathResult{Source: source, Target: target, Distance: math.Inf(1)}
	dist := make([]float64, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[source] = 0
	h := pq.NewIndexedHeap(n)
	h.Push(source, 0)
	goalBound := math.Inf(1) // incumbent: best known distance to target
	for h.Len() > 0 {
		v, d := h.PopMin()
		pr.Settled++
		if v == target {
			pr.Reachable = true
			pr.Distance = d
			break
		}
		ts, ws := g.Neighbors(v)
		for i, to := range ts {
			nd := d + ws[i]
			if nd >= goalBound {
				pr.Pruned++
				continue
			}
			if nd < dist[to] {
				dist[to] = nd
				parent[to] = int32(v)
				h.PushOrDecrease(int(to), nd)
				if int(to) == target {
					goalBound = nd
				}
			}
		}
	}
	if pr.Reachable {
		var rev []int32
		for cur := int32(target); cur >= 0; cur = parent[cur] {
			rev = append(rev, cur)
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		pr.Path = rev
	}
	return pr
}
