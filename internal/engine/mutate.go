package engine

// Mutation support: a dynamic engine owns a dynamic.Graph alongside its CSR
// version and applies batched edge mutations to it, advancing the engine
// epoch once per batch. Resident cached distance vectors are not discarded —
// they are repaired incrementally (dynamic.Repair) and re-homed under the
// new epoch, so the query mix that was hot before a mutation stays hot after
// it. Everything runs under mutMu; queries are never blocked, they just keep
// reading the old version until the new one is published.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"acic/internal/core"
	"acic/internal/dynamic"
)

// Mutation-path sentinels; the HTTP layer maps each to a status code.
var (
	// ErrStaticGraph is returned by Mutate on an engine built with New —
	// there is no mutable graph to mutate. Maps to 501.
	ErrStaticGraph = errors.New("engine: static graph, mutations unsupported")
	// ErrBadMutation wraps a rejected mutation batch (out-of-range vertex,
	// bad weight, missing edge). The graph and epoch are unchanged. Maps
	// to 400.
	ErrBadMutation = errors.New("engine: bad mutation batch")
)

// NewDynamic builds an engine whose graph can be mutated with Mutate. The
// engine takes ownership of dg: callers must not Apply to it directly
// afterwards. The engine epoch starts at 0 regardless of dg's own epoch
// (the two counters advance in lockstep from here but are independent —
// InvalidateCache advances only the engine's).
func NewDynamic(dg *dynamic.Graph, cfg Config) (*Engine, error) {
	if dg == nil {
		return nil, errors.New("engine: nil dynamic graph")
	}
	e, err := New(dg.Snapshot(), cfg)
	if err != nil {
		return nil, err
	}
	e.dg = dg
	return e, nil
}

// Dynamic reports whether the engine accepts mutations.
func (e *Engine) Dynamic() bool { return e.dg != nil }

// MutateResult describes one applied batch.
type MutateResult struct {
	// Epoch is the engine epoch after the batch.
	Epoch uint64
	// Inserted/Deleted/Reweighted count the batch by op.
	Inserted, Deleted, Reweighted int
	// Edges is the graph's edge count after the batch.
	Edges int
	// RepairedVectors counts resident cached vectors repaired in place and
	// carried over to the new epoch.
	RepairedVectors int
	// InvalidatedLabels totals the subtree labels discarded across those
	// repairs (the increase-phase damage).
	InvalidatedLabels int
	// Elapsed is the wall time of apply + repair + publish.
	Elapsed time.Duration
}

// Mutate applies one batch of edge mutations atomically: either the whole
// batch lands, the engine epoch advances by exactly one, stale cache entries
// are evicted, and every resident completed vector is incrementally repaired
// and re-cached under the new epoch — or the batch is rejected
// (ErrBadMutation) and graph, epoch, and cache are all unchanged. An empty
// batch is rejected too: a no-op that advanced the epoch would purge and
// re-home the whole cache for nothing.
//
// Concurrent queries are linearized at the version swap: a query admitted
// before the swap reads the old (epoch, graph) pair and its result is exact
// for that epoch; a query admitted after reads the new pair. No query ever
// observes a vector from a different epoch than the one in its response.
func (e *Engine) Mutate(batch []dynamic.Mutation) (*MutateResult, error) {
	if e.dg == nil {
		return nil, ErrStaticGraph
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadMutation)
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	// Checked under mutMu: Close flips draining while holding mutMu, so once
	// this passes no drain can begin before this batch publishes — and once
	// draining is observed, no new version is ever published.
	if e.draining.Load() {
		return nil, ErrDraining
	}

	start := time.Now()
	old := e.version.Load()
	// Harvest the vectors to carry over BEFORE mutating: entries that
	// complete after this point are dropped by purgeStale (or evicted by
	// their own leader's publish), never served stale.
	resident := e.cache.completed(old.epoch)
	sort.Slice(resident, func(i, j int) bool { return resident[i].key.source < resident[j].key.source })

	d, err := e.dg.Apply(batch)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrBadMutation, err)
	}
	mr := &MutateResult{
		Epoch:      old.epoch + 1,
		Inserted:   d.Inserted,
		Deleted:    d.Deleted,
		Reweighted: d.Reweighted,
		Edges:      e.dg.NumEdges(),
	}

	// Repair copies of the resident vectors against the post-batch graph.
	// The cached slices are shared read-only with every response already
	// handed out, so the repair must not write through them.
	repaired := make([]*core.Result, len(resident))
	for i, ent := range resident {
		res := &core.Result{
			Dist:   append([]float64(nil), ent.res.Dist...),
			Parent: append([]int32(nil), ent.res.Parent...),
			Stats:  ent.res.Stats,
		}
		st := e.dg.Repair(int(ent.key.source), res.Dist, res.Parent, d)
		mr.InvalidatedLabels += st.Invalidated
		repaired[i] = res
	}

	// Publish: swap the version, drop everything stale, re-home the
	// repaired vectors. Queries admitted from here on see the new epoch.
	e.version.Store(&graphVersion{epoch: mr.Epoch, g: e.dg.Snapshot()})
	e.cache.purgeStale(mr.Epoch)
	for i, ent := range resident {
		e.cache.put(cacheKey{epoch: mr.Epoch, source: ent.key.source}, repaired[i])
	}
	mr.RepairedVectors = len(repaired)
	e.gCacheLen.Set(0, int64(e.cache.len()))
	e.mMutations.Inc(0)
	e.mRepairedVec.Add(0, int64(len(repaired)))
	mr.Elapsed = time.Since(start)
	return mr, nil
}
