package engine

// Mutation-path tests: basic Mutate semantics, the cache-coherence contract
// under concurrent queries and mutations (run these under -race), and the
// regression for the single-flight leader that loses a race with Mutate.

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"acic/internal/dynamic"
	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/seq"
	"acic/internal/xrand"
)

func mustDynamicEngine(t *testing.T, g *graph.Graph, cfg Config) (*Engine, *dynamic.Graph) {
	t.Helper()
	dg := dynamic.FromCSR(g)
	e, err := NewDynamic(dg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, dg
}

// TestMutateRepairsResidentVectors: a cached vector must survive a mutation
// batch as a cache hit at the new epoch, with distances exact for the
// post-mutation graph.
func TestMutateRepairsResidentVectors(t *testing.T) {
	g := testGraph()
	e, _ := mustDynamicEngine(t, g, Config{})
	ctx := context.Background()

	if !e.Dynamic() {
		t.Fatal("NewDynamic engine reports static")
	}
	first, err := e.Query(ctx, 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Epoch != 0 {
		t.Fatalf("fresh engine at epoch %d", first.Epoch)
	}

	batch := []dynamic.Mutation{
		{Op: dynamic.Insert, From: 3, To: 390, Weight: 0.25},
		{Op: dynamic.Insert, From: 390, To: 391, Weight: 0.25},
	}
	mr, err := e.Mutate(batch)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != 1 || e.Epoch() != 1 {
		t.Fatalf("epoch after mutate: result %d, engine %d", mr.Epoch, e.Epoch())
	}
	if mr.Inserted != 2 || mr.RepairedVectors != 1 {
		t.Fatalf("unexpected mutate result %+v", mr)
	}
	if mr.Edges != g.NumEdges()+2 || e.Graph().NumEdges() != g.NumEdges()+2 {
		t.Fatalf("edge count %d / %d, want %d", mr.Edges, e.Graph().NumEdges(), g.NumEdges()+2)
	}

	second, err := e.Query(ctx, 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("repaired vector did not serve as a cache hit")
	}
	if second.Epoch != 1 {
		t.Fatalf("post-mutation query at epoch %d", second.Epoch)
	}
	oracle := seq.Dijkstra(e.Graph(), 3)
	if i := seq.FirstMismatch(second.Dist, oracle.Dist); i >= 0 {
		t.Fatalf("repaired vector wrong at %d: %g want %g", i, second.Dist[i], oracle.Dist[i])
	}
	if second.Dist[390] != 0.25 || second.Dist[391] != 0.5 {
		t.Fatalf("inserted edges not reflected: dist[390]=%g dist[391]=%g", second.Dist[390], second.Dist[391])
	}
	// The pre-mutation response must be untouched: repair works on copies.
	if first.Dist[390] == 0.25 && first.Dist[391] == 0.5 {
		t.Fatal("mutation wrote through the old epoch's response")
	}
}

// TestMutateRejectsBadBatch: a rejected batch changes nothing — epoch,
// graph, and cache all stay put.
func TestMutateRejectsBadBatch(t *testing.T) {
	g := testGraph()
	e, _ := mustDynamicEngine(t, g, Config{})
	if _, err := e.Query(context.Background(), 7, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Mutate([]dynamic.Mutation{
		{Op: dynamic.Insert, From: 0, To: 1, Weight: 1},
		{Op: dynamic.Insert, From: 0, To: 99999, Weight: 1}, // out of range
	})
	if !errors.Is(err, ErrBadMutation) {
		t.Fatalf("err = %v, want ErrBadMutation", err)
	}
	if e.Epoch() != 0 {
		t.Fatalf("failed batch advanced epoch to %d", e.Epoch())
	}
	if e.Graph().NumEdges() != g.NumEdges() {
		t.Fatal("failed batch left edges behind")
	}
	res, err := e.Query(context.Background(), 7, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || res.Epoch != 0 {
		t.Fatalf("cache lost after failed batch: hit=%v epoch=%d", res.CacheHit, res.Epoch)
	}
}

// TestMutateRejectsEmptyBatch: the Go API itself rejects a no-op batch (the
// guard is not transport-specific) — an empty Mutate must not advance the
// epoch or purge/re-home the cache.
func TestMutateRejectsEmptyBatch(t *testing.T) {
	e, _ := mustDynamicEngine(t, testGraph(), Config{})
	if _, err := e.Query(context.Background(), 7, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, batch := range [][]dynamic.Mutation{nil, {}} {
		if _, err := e.Mutate(batch); !errors.Is(err, ErrBadMutation) {
			t.Fatalf("err = %v, want ErrBadMutation", err)
		}
	}
	if e.Epoch() != 0 {
		t.Fatalf("empty batch advanced epoch to %d", e.Epoch())
	}
	res, err := e.Query(context.Background(), 7, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || res.Epoch != 0 {
		t.Fatalf("empty batch disturbed the cache: hit=%v epoch=%d", res.CacheHit, res.Epoch)
	}
}

// TestMutateCloseRace races Mutate against Close (meaningful under -race):
// every batch either publishes its version before draining begins or is
// rejected with ErrDraining, so the final epoch equals the success count and
// nothing publishes after the drain.
func TestMutateCloseRace(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		e, _ := mustDynamicEngine(t, testGraph(), Config{})
		var succeeded atomic.Uint64
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				_, err := e.Mutate([]dynamic.Mutation{{Op: dynamic.Insert, From: 0, To: 1, Weight: 1}})
				if err == nil {
					succeeded.Add(1)
				} else if !errors.Is(err, ErrDraining) {
					t.Errorf("trial %d: %v", trial, err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			if err := e.Close(context.Background()); err != nil {
				t.Errorf("trial %d: close: %v", trial, err)
			}
		}()
		wg.Wait()
		if t.Failed() {
			return
		}
		if e.Epoch() != succeeded.Load() {
			t.Fatalf("trial %d: epoch %d but %d mutations succeeded", trial, e.Epoch(), succeeded.Load())
		}
		if _, err := e.Mutate([]dynamic.Mutation{{Op: dynamic.Insert, From: 0, To: 1, Weight: 1}}); !errors.Is(err, ErrDraining) {
			t.Fatalf("trial %d: post-drain mutate err = %v, want ErrDraining", trial, err)
		}
	}
}

// TestMutateStaticEngine: engines built with New have no mutation path.
func TestMutateStaticEngine(t *testing.T) {
	e := mustEngine(t, testGraph(), Config{})
	if e.Dynamic() {
		t.Fatal("static engine reports dynamic")
	}
	if _, err := e.Mutate([]dynamic.Mutation{{Op: dynamic.Insert, From: 0, To: 1, Weight: 1}}); !errors.Is(err, ErrStaticGraph) {
		t.Fatalf("err = %v, want ErrStaticGraph", err)
	}
}

// TestCacheCoherenceUnderMutation is the satellite race test: concurrent
// queries racing a stream of mutation batches must never observe a
// stale-epoch vector — every response's epoch is at least the epoch current
// when the query was admitted, and its distances are exact for the graph at
// the response's epoch. Run under -race in CI.
func TestCacheCoherenceUnderMutation(t *testing.T) {
	g := gen.Uniform(200, 800, gen.Config{Seed: 21, MaxWeight: 50})
	e, _ := mustDynamicEngine(t, g, Config{MaxInFlight: 4, MaxQueue: 64})
	ctx := context.Background()

	// Oracle graphs per epoch, recorded as mutations land. Engine snapshots
	// are immutable, so retaining them is safe.
	var oracleMu sync.Mutex
	oracle := map[uint64]*graph.Graph{0: e.Graph()}

	const readers = 8
	const queriesPerReader = 40
	const batches = 25

	type obs struct {
		admitted uint64
		res      *QueryResult
	}
	observations := make([][]obs, readers)

	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(uint64(id) + 1)
			for q := 0; q < queriesPerReader; q++ {
				admitted := e.Epoch()
				res, err := e.Query(ctx, r.Intn(200), QueryOptions{})
				if err != nil {
					t.Errorf("reader %d: %v", id, err)
					return
				}
				observations[id] = append(observations[id], obs{admitted, res})
			}
		}(i)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		r := xrand.New(99)
		dg2 := dynamic.FromCSR(g) // shadow copy only to drive the generator
		bg := dynamic.NewBatchGen(dg2, r, 50)
		for b := 0; b < batches; b++ {
			batch := bg.Next(1 + r.Intn(4))
			if _, err := dg2.Apply(batch); err != nil {
				t.Errorf("writer: shadow apply: %v", err)
				return
			}
			mr, err := e.Mutate(batch)
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			oracleMu.Lock()
			oracle[mr.Epoch] = e.Graph()
			oracleMu.Unlock()
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Validate after the fact so readers stay fast while racing.
	checked := map[uint64]map[int][]float64{}
	for id := range observations {
		for _, o := range observations[id] {
			if o.res.Epoch < o.admitted {
				t.Fatalf("reader %d: response epoch %d < admission epoch %d", id, o.res.Epoch, o.admitted)
			}
			og, ok := oracle[o.res.Epoch]
			if !ok {
				t.Fatalf("reader %d: response epoch %d never existed", id, o.res.Epoch)
			}
			bysrc, ok := checked[o.res.Epoch]
			if !ok {
				bysrc = map[int][]float64{}
				checked[o.res.Epoch] = bysrc
			}
			want, ok := bysrc[o.res.Source]
			if !ok {
				want = seq.Dijkstra(og, o.res.Source).Dist
				bysrc[o.res.Source] = want
			}
			if i := seq.FirstMismatch(want, o.res.Dist); i >= 0 {
				t.Fatalf("reader %d: epoch %d source %d: dist[%d] = %g, want %g (stale vector)",
					id, o.res.Epoch, o.res.Source, i, o.res.Dist[i], want[i])
			}
		}
	}
}

// TestPublishEvictsStaleLeader is the regression for the single-flight race:
// a leader that admits under epoch N, then loses a race with Mutate (which
// bumps to N+1 and purges), must not park its vector in the cache under the
// dead key N. Its own waiters still get the result.
func TestPublishEvictsStaleLeader(t *testing.T) {
	g := testGraph()
	e, _ := mustDynamicEngine(t, g, Config{})
	ctx := context.Background()

	// Become the single-flight leader for (epoch 0, source 5) by hand.
	slot, err := e.admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	key := cacheKey{epoch: 0, source: 5}
	ent, leader := e.cache.getOrCreate(key)
	if !leader {
		t.Fatal("setup: not the leader")
	}
	res, _, err := e.compute(e.Graph(), 5, slot, false)
	if err != nil {
		t.Fatal(err)
	}

	// The mutation lands while "our computation" is in flight.
	if _, err := e.Mutate([]dynamic.Mutation{{Op: dynamic.Insert, From: 1, To: 2, Weight: 1}}); err != nil {
		t.Fatal(err)
	}

	e.publish(ent, res)
	e.releaseSlot(slot)

	select {
	case <-ent.ready:
		if ent.err != nil || ent.res == nil {
			t.Fatal("waiters lost the leader's result")
		}
	default:
		t.Fatal("publish did not complete the entry")
	}
	if _, ok := e.cache.get(key); ok {
		t.Fatal("stale-epoch vector cached under the old key after publish")
	}

	// Control: with no racing mutation the published entry stays resident.
	slot, err = e.admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	key2 := cacheKey{epoch: e.Epoch(), source: 6}
	ent2, leader := e.cache.getOrCreate(key2)
	if !leader {
		t.Fatal("setup: not the leader for control key")
	}
	res2, _, err := e.compute(e.Graph(), 6, slot, false)
	if err != nil {
		t.Fatal(err)
	}
	e.publish(ent2, res2)
	e.releaseSlot(slot)
	if _, ok := e.cache.get(key2); !ok {
		t.Fatal("current-epoch publish was evicted")
	}
}

// TestMutateHTTPRoundTrip drives POST /mutate through the handler: a good
// batch bumps the epoch and reroutes /path answers; bad batches and static
// engines map to 400/501.
func TestMutateHTTPRoundTrip(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 1},
		{From: 2, To: 3, Weight: 1},
	})
	e, _ := mustDynamicEngine(t, g, Config{})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/mutate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	code, body := post(`{"mutations":[{"op":"insert","from":0,"to":3,"weight":0.5}]}`)
	if code != 200 || !strings.Contains(body, `"epoch":1`) || !strings.Contains(body, `"inserted":1`) {
		t.Fatalf("good batch: code %d body %s", code, body)
	}
	pr, err := e.Path(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Reachable || pr.Distance != 0.5 || pr.Epoch != 1 {
		t.Fatalf("path after mutate: %+v", pr)
	}

	if code, _ := post(`{"mutations":[{"op":"delete","from":0,"to":2}]}`); code != 400 {
		t.Fatalf("missing edge delete: code %d, want 400", code)
	}
	if code, _ := post(`{"mutations":[{"op":"warp","from":0,"to":1}]}`); code != 400 {
		t.Fatalf("unknown op: code %d, want 400", code)
	}
	if code, _ := post(`{"mutations":[]}`); code != 400 {
		t.Fatalf("empty batch: code %d, want 400", code)
	}
	if code, _ := post(`{`); code != 400 {
		t.Fatalf("bad json: code %d, want 400", code)
	}
	if e.Epoch() != 1 {
		t.Fatalf("rejected batches moved the epoch to %d", e.Epoch())
	}

	static := mustEngine(t, g, Config{})
	srv2 := httptest.NewServer(static.Handler())
	defer srv2.Close()
	resp, err := srv2.Client().Post(srv2.URL+"/mutate", "application/json",
		strings.NewReader(`{"mutations":[{"op":"insert","from":0,"to":1,"weight":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 501 {
		t.Fatalf("static engine mutate: code %d, want 501", resp.StatusCode)
	}
}

// TestMutateWhileDraining: mutations are rejected once Close has begun.
func TestMutateWhileDraining(t *testing.T) {
	e, _ := mustDynamicEngine(t, testGraph(), Config{})
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Mutate([]dynamic.Mutation{{Op: dynamic.Insert, From: 0, To: 1, Weight: 1}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

// TestInvalidateCacheKeepsGraph: the epoch advances, the cache empties, and
// the same graph keeps serving (now recomputed).
func TestInvalidateCacheKeepsGraph(t *testing.T) {
	e, _ := mustDynamicEngine(t, testGraph(), Config{})
	ctx := context.Background()
	if _, err := e.Query(ctx, 11, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	gBefore := e.Graph()
	e.InvalidateCache()
	if e.Epoch() != 1 {
		t.Fatalf("epoch %d after invalidate", e.Epoch())
	}
	if e.Graph() != gBefore {
		t.Fatal("invalidate swapped the graph")
	}
	res, err := e.Query(ctx, 11, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("cache survived invalidation")
	}
	if math.IsInf(res.Dist[11], 1) {
		t.Fatal("source unreachable from itself")
	}
}
