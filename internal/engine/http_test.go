package engine

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"acic/internal/seq"
)

func getJSON(t *testing.T, client *http.Client, url string, out any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestHTTPSSSPAndCacheHit(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	var first SSSPResponse
	if resp := getJSON(t, srv.Client(), srv.URL+"/sssp?source=7&vertices=0,7,100", &first); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if first.CacheHit {
		t.Error("first query reported cache_hit")
	}
	oracle := seq.Dijkstra(g, 7)
	wantReach, wantSum := 0, 0.0
	for _, d := range oracle.Dist {
		if !math.IsInf(d, 1) {
			wantReach++
			wantSum += d
		}
	}
	if first.Reachable != wantReach {
		t.Errorf("reachable = %d, want %d", first.Reachable, wantReach)
	}
	if math.Abs(first.Checksum-wantSum) > 1e-6*math.Max(1, wantSum) {
		t.Errorf("checksum = %g, want %g", first.Checksum, wantSum)
	}
	if len(first.Distances) != 3 {
		t.Fatalf("got %d distances, want 3", len(first.Distances))
	}
	if d := first.Distances[1]; d.Vertex != 7 || d.Dist == nil || *d.Dist != 0 {
		t.Errorf("distances[1] = %+v, want source at distance 0", d)
	}

	var second SSSPResponse
	getJSON(t, srv.Client(), srv.URL+"/sssp?source=7", &second)
	if !second.CacheHit {
		t.Error("repeat query did not report cache_hit")
	}
}

func TestHTTPPath(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	oracle := seq.Dijkstra(g, 1)
	target := -1
	for v, d := range oracle.Dist {
		if v != 1 && !math.IsInf(d, 1) {
			target = v
			break
		}
	}
	if target < 0 {
		t.Skip("no reachable target")
	}
	var pr PathResponse
	url := srv.URL + "/path?source=1&target=" + strconv.Itoa(target)
	if resp := getJSON(t, srv.Client(), url, &pr); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !pr.Reachable || pr.Distance == nil {
		t.Fatalf("path response: %+v", pr)
	}
	if want := oracle.Dist[target]; math.Abs(*pr.Distance-want) > 1e-9*math.Max(1, want) {
		t.Errorf("distance = %g, oracle %g", *pr.Distance, want)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	e := mustEngine(t, testGraph(), Config{})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	for _, path := range []string{
		"/sssp",                   // missing source
		"/sssp?source=abc",        // non-integer
		"/sssp?source=99999",      // out of range
		"/sssp?source=-1",         // negative
		"/sssp?source=1&limit=-2", // bad limit
		"/sssp?source=1&vertices=0,bogus",
		"/path?source=1",          // missing target
		"/path?source=1&target=x", // non-integer
		"/path?source=1&target=99999",
	} {
		var er struct {
			Error string `json:"error"`
		}
		resp := getJSON(t, srv.Client(), srv.URL+path, &er)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
		if er.Error == "" {
			t.Errorf("%s: empty error body", path)
		}
	}
}

func TestHTTPSaturation429(t *testing.T) {
	e := mustEngine(t, testGraph(), Config{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 20 * time.Millisecond})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	// Hold the only slot and fill the queue, exactly as TestSaturationSheds
	// does, then watch the HTTP layer translate the shed.
	slot, err := e.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		resp, err := srv.Client().Get(srv.URL + "/sssp?source=1")
		if err == nil {
			resp.Body.Close()
		}
	}()
	for e.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	resp := getJSON(t, srv.Client(), srv.URL+"/sssp?source=2", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	<-queuedDone
	e.releaseSlot(slot)
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	e := mustEngine(t, testGraph(), Config{})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	var h Health
	if resp := getJSON(t, srv.Client(), srv.URL+"/healthz", &h); resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.Vertices != 400 {
		t.Errorf("healthz = %+v", h)
	}

	getJSON(t, srv.Client(), srv.URL+"/sssp?source=0", nil)
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Total int64  `json:"total"`
		} `json:"counters"`
	}
	if resp := getJSON(t, srv.Client(), srv.URL+"/metrics", &snap); resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "engine.queries" && c.Total >= 1 {
			found = true
		}
	}
	if !found {
		t.Error("metrics snapshot missing engine.queries")
	}
}


// TestRetryAfterTracksServiceTime pins the adaptive 429 hint: the floor
// before any query completes, the rounded-up recent mean once queries have
// run, and the ceiling when the mean is pathological.
func TestRetryAfterTracksServiceTime(t *testing.T) {
	e := mustEngine(t, testGraph(), Config{})

	if got := e.retryAfterSeconds(); got != minRetryAfterSeconds {
		t.Errorf("cold engine Retry-After = %d, want floor %d", got, minRetryAfterSeconds)
	}

	// Sub-second queries stay at the floor: the header has whole-second
	// resolution and 0 would mean "retry immediately".
	e.svcNanos.Store((50 * time.Millisecond).Nanoseconds())
	if got := e.retryAfterSeconds(); got != 1 {
		t.Errorf("50ms mean Retry-After = %d, want 1", got)
	}

	// A multi-second mean rounds up, never down: telling a client to come
	// back sooner than the mean service time just re-sheds it.
	e.svcNanos.Store((2500 * time.Millisecond).Nanoseconds())
	if got := e.retryAfterSeconds(); got != 3 {
		t.Errorf("2.5s mean Retry-After = %d, want 3", got)
	}

	e.svcNanos.Store((5 * time.Minute).Nanoseconds())
	if got := e.retryAfterSeconds(); got != maxRetryAfterSeconds {
		t.Errorf("5m mean Retry-After = %d, want ceiling %d", got, maxRetryAfterSeconds)
	}

	// The EWMA converges toward a stable service time from both sides.
	e.svcNanos.Store(0)
	for i := 0; i < 64; i++ {
		e.observeService(800 * time.Millisecond)
	}
	mean := time.Duration(e.svcNanos.Load())
	if mean < 700*time.Millisecond || mean > 900*time.Millisecond {
		t.Errorf("EWMA after steady 800ms observations = %v", mean)
	}
}

// TestQueriesFeedServiceEWMA checks real queries move the mean.
func TestQueriesFeedServiceEWMA(t *testing.T) {
	e := mustEngine(t, testGraph(), Config{})
	if _, err := e.Query(context.Background(), 0, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	if e.svcNanos.Load() == 0 {
		t.Error("completed query left the service-time EWMA at zero")
	}
}
