package engine

// HTTP/JSON front end. The handlers live here (rather than in
// cmd/acic-serve) so the engine's error-to-status mapping is testable with
// httptest and reusable by future transports.
//
//	GET /sssp?source=S            single-source query
//	POST /mutate                  apply a mutation batch (dynamic engines)
//	GET /sssp?source=S&vertices=a,b,c   ...returning only those distances
//	GET /sssp?source=S&limit=N    ...returning the first N distances
//	GET /sssp?source=S&metrics=1  ...attaching a per-query metrics snapshot
//	GET /path?source=S&target=T   point-to-point query
//	GET /healthz                  liveness + capacity snapshot
//	GET /metrics                  engine-level metrics registry snapshot
//
// Error mapping: ErrBadVertex and malformed parameters → 400, ErrSaturated
// → 429 with a Retry-After header, ErrDraining → 503, context cancellation
// (client went away) → 499-style 503.

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"acic/internal/dynamic"
	"acic/internal/metrics"
)

// The Retry-After hint sent with 429 responses is derived from the
// engine's recent mean service time (see Engine.retryAfterSeconds),
// clamped to this range: never below one second (the header's
// resolution), never above thirty (a shed client should not be parked
// for minutes because one pathological query skewed the mean).
const (
	minRetryAfterSeconds = 1
	maxRetryAfterSeconds = 30
)

// retryAfterSeconds converts the service-time EWMA into a whole-second
// Retry-After hint. Before any query has completed the EWMA is zero and
// the floor applies.
func (e *Engine) retryAfterSeconds() int {
	mean := time.Duration(e.svcNanos.Load())
	secs := int((mean + time.Second - 1) / time.Second)
	if secs < minRetryAfterSeconds {
		return minRetryAfterSeconds
	}
	if secs > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	return secs
}

// Handler returns the engine's HTTP API.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /sssp", e.handleSSSP)
	mux.HandleFunc("GET /path", e.handlePath)
	mux.HandleFunc("POST /mutate", e.handleMutate)
	mux.HandleFunc("GET /healthz", e.handleHealthz)
	mux.HandleFunc("GET /metrics", e.handleMetrics)
	return mux
}

// VertexDist is one (vertex, distance, parent) triple in an /sssp response.
// Unreachable vertices carry Dist == nil (JSON has no +Inf).
type VertexDist struct {
	Vertex int32    `json:"v"`
	Dist   *float64 `json:"dist"`
	Parent int32    `json:"parent"`
}

// SSSPResponse is the /sssp payload. Distances are summarized (count +
// checksum) rather than dumped: a scale-18 vector is megabytes of JSON.
// Specific vertices come back via ?vertices= or ?limit=.
type SSSPResponse struct {
	Source    int               `json:"source"`
	Epoch     uint64            `json:"epoch"`
	CacheHit  bool              `json:"cache_hit"`
	Reachable int               `json:"reachable"`
	Checksum  float64           `json:"checksum"`
	ElapsedNS int64             `json:"elapsed_ns"`
	Distances []VertexDist      `json:"distances,omitempty"`
	Metrics   *metrics.Snapshot `json:"metrics,omitempty"`
}

// PathResponse is the /path payload.
type PathResponse struct {
	Source    int      `json:"source"`
	Target    int      `json:"target"`
	Epoch     uint64   `json:"epoch"`
	Reachable bool     `json:"reachable"`
	Distance  *float64 `json:"distance"` // nil when unreachable
	Path      []int32  `json:"path,omitempty"`
	CacheHit  bool     `json:"cache_hit"`
	Settled   int64    `json:"settled"`
	Pruned    int64    `json:"pruned"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (e *Engine) handleSSSP(w http.ResponseWriter, r *http.Request) {
	source, err := intParam(r, "source")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	var opts QueryOptions
	if r.URL.Query().Get("metrics") == "1" {
		opts.CollectMetrics = true
	}
	res, err := e.Query(r.Context(), source, opts)
	if err != nil {
		e.writeError(w, err)
		return
	}
	resp := SSSPResponse{
		Source:    res.Source,
		Epoch:     res.Epoch,
		CacheHit:  res.CacheHit,
		ElapsedNS: res.Stats.Elapsed.Nanoseconds(),
		Metrics:   res.Metrics,
	}
	for _, d := range res.Dist {
		if !math.IsInf(d, 1) {
			resp.Reachable++
			resp.Checksum += d
		}
	}
	wantVerts, err := vertexList(r, len(res.Dist))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	for _, v := range wantVerts {
		vd := VertexDist{Vertex: v, Parent: res.Parent[v]}
		if d := res.Dist[v]; !math.IsInf(d, 1) {
			vd.Dist = &d
		}
		resp.Distances = append(resp.Distances, vd)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (e *Engine) handlePath(w http.ResponseWriter, r *http.Request) {
	source, err := intParam(r, "source")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	target, err := intParam(r, "target")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	pr, err := e.Path(r.Context(), source, target)
	if err != nil {
		e.writeError(w, err)
		return
	}
	resp := PathResponse{
		Source:    pr.Source,
		Target:    pr.Target,
		Epoch:     pr.Epoch,
		Reachable: pr.Reachable,
		Path:      pr.Path,
		CacheHit:  pr.CacheHit,
		Settled:   pr.Settled,
		Pruned:    pr.Pruned,
	}
	if pr.Reachable {
		resp.Distance = &pr.Distance
	}
	writeJSON(w, http.StatusOK, resp)
}

// MutationJSON is one edge mutation on the wire. Op is "insert", "delete",
// or "set_weight"; weight is ignored by deletes.
type MutationJSON struct {
	Op     string  `json:"op"`
	From   int32   `json:"from"`
	To     int32   `json:"to"`
	Weight float64 `json:"weight"`
}

// MutateRequest is the POST /mutate payload.
type MutateRequest struct {
	Mutations []MutationJSON `json:"mutations"`
}

// MutateResponse is the POST /mutate reply.
type MutateResponse struct {
	Epoch             uint64 `json:"epoch"`
	Inserted          int    `json:"inserted"`
	Deleted           int    `json:"deleted"`
	Reweighted        int    `json:"reweighted"`
	Edges             int    `json:"edges"`
	RepairedVectors   int    `json:"repaired_vectors"`
	InvalidatedLabels int    `json:"invalidated_labels"`
	ElapsedNS         int64  `json:"elapsed_ns"`
}

func (e *Engine) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad mutation body: " + err.Error()})
		return
	}
	if len(req.Mutations) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"empty mutation batch"})
		return
	}
	batch := make([]dynamic.Mutation, len(req.Mutations))
	for i, m := range req.Mutations {
		op, err := dynamic.ParseOp(m.Op)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
			return
		}
		batch[i] = dynamic.Mutation{Op: op, From: m.From, To: m.To, Weight: m.Weight}
	}
	mr, err := e.Mutate(batch)
	if err != nil {
		e.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{
		Epoch:             mr.Epoch,
		Inserted:          mr.Inserted,
		Deleted:           mr.Deleted,
		Reweighted:        mr.Reweighted,
		Edges:             mr.Edges,
		RepairedVectors:   mr.RepairedVectors,
		InvalidatedLabels: mr.InvalidatedLabels,
		ElapsedNS:         mr.Elapsed.Nanoseconds(),
	})
}

func (e *Engine) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := e.Health()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (e *Engine) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	snap := e.MetricsSnapshot()
	_ = snap.WriteJSON(w)
}

// writeError maps engine errors to HTTP status codes.
func (e *Engine) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBadVertex), errors.Is(err, ErrBadMutation):
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
	case errors.Is(err, ErrStaticGraph):
		writeJSON(w, http.StatusNotImplemented, errorResponse{err.Error()})
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, errors.New("missing required parameter " + name)
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, errors.New("bad " + name + " parameter: " + s)
	}
	return v, nil
}

// vertexList resolves the optional ?vertices=a,b,c or ?limit=N selection.
func vertexList(r *http.Request, n int) ([]int32, error) {
	q := r.URL.Query()
	if s := q.Get("vertices"); s != "" {
		parts := strings.Split(s, ",")
		out := make([]int32, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 0 || v >= n {
				return nil, errors.New("bad vertices entry: " + p)
			}
			out = append(out, int32(v))
		}
		return out, nil
	}
	if s := q.Get("limit"); s != "" {
		lim, err := strconv.Atoi(s)
		if err != nil || lim < 0 {
			return nil, errors.New("bad limit parameter: " + s)
		}
		if lim > n {
			lim = n
		}
		out := make([]int32, lim)
		for i := range out {
			out[i] = int32(i)
		}
		return out, nil
	}
	return nil, nil
}
