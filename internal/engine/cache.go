package engine

import (
	"container/list"
	"errors"
	"sync"

	"acic/internal/core"
)

// errEntryFailed is the internal signal that a cache entry's computation
// errored; callers recompute or surface the recorded error.
var errEntryFailed = errors.New("engine: cached computation failed")

// cacheKey identifies one distance vector: which graph epoch it was
// computed against and from which source.
type cacheKey struct {
	epoch  uint64
	source int32
}

// cacheEntry is one (possibly in-flight) computed vector. ready is closed
// when res/err are final; waiters hold the entry pointer, so an entry
// evicted mid-flight still completes for everyone already waiting on it.
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	res   *core.Result
	err   error
	elem  *list.Element
}

// lruCache is a mutex-guarded LRU of cacheEntry with single-flight
// insertion: getOrCreate returns (entry, leader) where exactly one caller
// per key is the leader responsible for computing and completing it.
type lruCache struct {
	capacity int

	mu    sync.Mutex
	items map[cacheKey]*cacheEntry
	order *list.List // front = most recent
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		items:    make(map[cacheKey]*cacheEntry, capacity),
		order:    list.New(),
	}
}

// get returns the entry under key (possibly still in flight), refreshing
// its recency.
func (c *lruCache) get(key cacheKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.items[key]
	if ok {
		c.order.MoveToFront(ent.elem)
	}
	return ent, ok
}

// getOrCreate returns the entry under key, creating an in-flight one (and
// evicting the least recent beyond capacity) when absent. The second result
// is true iff this caller created the entry and must complete or fail it.
func (c *lruCache) getOrCreate(key cacheKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.items[key]; ok {
		c.order.MoveToFront(ent.elem)
		return ent, false
	}
	ent := &cacheEntry{key: key, ready: make(chan struct{})}
	ent.elem = c.order.PushFront(ent)
	c.items[key] = ent
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		evicted := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.items, evicted.key)
	}
	return ent, true
}

// complete publishes res on ent and wakes every waiter.
func (c *lruCache) complete(ent *cacheEntry, res *core.Result) {
	ent.res = res
	close(ent.ready)
}

// fail records err on ent, wakes waiters, and removes the entry so the next
// query for the key recomputes instead of re-serving the failure.
func (c *lruCache) fail(ent *cacheEntry, err error) {
	ent.err = err
	close(ent.ready)
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.items[ent.key]; ok && cur == ent {
		c.order.Remove(ent.elem)
		delete(c.items, ent.key)
	}
}

// put inserts an already-completed result under key — the path by which
// Mutate re-homes repaired vectors at the new epoch. A key that is already
// present (a query raced ahead and is computing it fresh) is left alone.
func (c *lruCache) put(key cacheKey, res *core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return
	}
	ent := &cacheEntry{key: key, ready: make(chan struct{}), res: res}
	close(ent.ready)
	ent.elem = c.order.PushFront(ent)
	c.items[key] = ent
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		evicted := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.items, evicted.key)
	}
}

// remove drops ent if it is still the resident entry for its key (a
// replacement under the same key is left alone). Waiters holding the entry
// pointer still read its completed result.
func (c *lruCache) remove(ent *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.items[ent.key]; ok && cur == ent {
		c.order.Remove(ent.elem)
		delete(c.items, ent.key)
	}
}

// purgeStale drops every entry whose epoch differs from epoch — Mutate's
// eviction, which unlike purge leaves current-epoch entries (including
// in-flight leaders that raced ahead of the purge) intact.
func (c *lruCache) purgeStale(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, ent := range c.items {
		if key.epoch != epoch {
			c.order.Remove(ent.elem)
			delete(c.items, key)
		}
	}
}

// completed snapshots the completed, non-failed entries at epoch — the
// resident vectors Mutate repairs across a batch.
func (c *lruCache) completed(epoch uint64) []*cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*cacheEntry
	for key, ent := range c.items {
		if key.epoch != epoch {
			continue
		}
		select {
		case <-ent.ready:
			if ent.err == nil {
				out = append(out, ent)
			}
		default: // still in flight; it will be purged, not repaired
		}
	}
	return out
}

// purge drops every entry (in-flight leaders still complete their entries;
// waiters holding pointers are unaffected).
func (c *lruCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[cacheKey]*cacheEntry, c.capacity)
	c.order.Init()
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
