package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"acic/internal/core"
	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/seq"
)

func testGraph() *graph.Graph {
	return gen.Uniform(400, 3200, gen.Config{Seed: 9})
}

func mustEngine(t *testing.T, g *graph.Graph, cfg Config) *Engine {
	t.Helper()
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestQueryMatchesOracle: the engine's answer for a fresh source must match
// both the sequential oracle and a fresh batch core.Run (the acceptance
// check for serving correct distances out of the resident machine).
func TestQueryMatchesOracle(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{})
	res, err := e.Query(context.Background(), 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("first query reported a cache hit")
	}
	oracle := seq.Dijkstra(g, 3)
	if !seq.Equal(res.Dist, oracle.Dist) {
		t.Fatalf("engine vs Dijkstra mismatch at vertex %d", seq.FirstMismatch(res.Dist, oracle.Dist))
	}
	batch, err := core.Run(g, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(res.Dist, batch.Dist) {
		t.Fatalf("engine vs batch core.Run mismatch at vertex %d", seq.FirstMismatch(res.Dist, batch.Dist))
	}
}

// TestConcurrentQueriesDistinctSources exercises the full admission path
// under -race: more concurrent queries than slots, every answer
// oracle-checked. A generous queue + timeout means none should be shed.
func TestConcurrentQueriesDistinctSources(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{MaxInFlight: 2, MaxQueue: 16, QueueTimeout: time.Minute})
	sources := []int{0, 7, 42, 101, 250, 399}
	oracle := make([][]float64, len(sources))
	for i, s := range sources {
		oracle[i] = seq.Dijkstra(g, s).Dist
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(sources))
	for i, s := range sources {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			res, err := e.Query(context.Background(), s, QueryOptions{})
			if err != nil {
				errs <- err
				return
			}
			if !seq.Equal(res.Dist, oracle[i]) {
				errs <- fmt.Errorf("distance mismatch for source %d", s)
			}
		}(i, s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCacheHitAndSingleFlight: concurrent identical queries must compute
// once; a later repeat must hit the cache.
func TestCacheHitAndSingleFlight(t *testing.T) {
	g := testGraph()
	// Injected latency keeps the first computation in flight long enough
	// for the followers to pile onto it.
	e := mustEngine(t, g, Config{Latency: netsim.DefaultLatency(), MaxInFlight: 4, MaxQueue: 16, QueueTimeout: time.Minute})
	const k = 8
	var wg sync.WaitGroup
	results := make([]*QueryResult, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Query(context.Background(), 5, QueryOptions{})
		}(i)
	}
	wg.Wait()
	misses := 0
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !results[i].CacheHit {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d computations for %d identical concurrent queries, want exactly 1", misses, k)
	}
	snap := e.MetricsSnapshot()
	if got := snap.Counter("engine.cache_misses"); got != 1 {
		t.Errorf("engine.cache_misses = %d, want 1", got)
	}
	// Repeat after completion: a plain cache hit.
	res, err := e.Query(context.Background(), 5, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("repeat query missed the cache")
	}
}

// TestSaturationSheds pins the load-shedding contract deterministically by
// occupying every slot and filling the queue through the admission API,
// then observing a query shed with ErrSaturated.
func TestSaturationSheds(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 50 * time.Millisecond})
	slot, err := e.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fills the queue...
	waiterErr := make(chan error, 1)
	go func() {
		_, err := e.Query(context.Background(), 1, QueryOptions{})
		waiterErr <- err
	}()
	for e.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// ...so the next query must be shed immediately.
	_, err = e.Query(context.Background(), 2, QueryOptions{})
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("query into full queue: err = %v, want ErrSaturated", err)
	}
	// The queued waiter itself times out and sheds: the queue is bounded
	// in time as well as length.
	if err := <-waiterErr; !errors.Is(err, ErrSaturated) {
		t.Fatalf("queued waiter: err = %v, want ErrSaturated after QueueTimeout", err)
	}
	e.releaseSlot(slot)
	// Capacity restored: queries flow again.
	if _, err := e.Query(context.Background(), 1, QueryOptions{}); err != nil {
		t.Fatalf("query after release: %v", err)
	}
	if shed := e.MetricsSnapshot().Counter("engine.shed"); shed != 2 {
		t.Errorf("engine.shed = %d, want 2", shed)
	}
}

// TestDrain: Close rejects new queries, waits for in-flight ones, and
// flips health to draining.
func TestDrain(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{})
	if _, err := e.Query(context.Background(), 0, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(context.Background(), 1, QueryOptions{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("query after Close: err = %v, want ErrDraining", err)
	}
	// An uncached source forces /path through admission, which is closed.
	if _, err := e.Path(context.Background(), 2, 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("path after Close: err = %v, want ErrDraining", err)
	}
	if h := e.Health(); h.Status != "draining" {
		t.Errorf("health status = %q, want draining", h.Status)
	}
}

// TestEpochInvalidation: bumping the epoch recomputes previously cached
// sources.
func TestEpochInvalidation(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{})
	if _, err := e.Query(context.Background(), 4, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(context.Background(), 4, QueryOptions{})
	if err != nil || !res.CacheHit {
		t.Fatalf("pre-invalidate repeat: hit=%v err=%v", res != nil && res.CacheHit, err)
	}
	e.InvalidateCache()
	res, err = e.Query(context.Background(), 4, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("query after InvalidateCache still hit the cache")
	}
	if res.Epoch != 1 {
		t.Errorf("epoch = %d, want 1", res.Epoch)
	}
}

// TestBadSource: untrusted parameters fail with ErrBadVertex, never panic.
func TestBadSource(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{})
	for _, src := range []int{-1, g.NumVertices(), 1 << 30} {
		if _, err := e.Query(context.Background(), src, QueryOptions{}); !errors.Is(err, ErrBadVertex) {
			t.Errorf("Query(%d): err = %v, want ErrBadVertex", src, err)
		}
	}
	if _, err := e.Path(context.Background(), 0, -3); !errors.Is(err, ErrBadVertex) {
		t.Errorf("Path target -3: err = %v, want ErrBadVertex", err)
	}
}

// TestScratchPoolRecycles: sequential queries reuse pooled Scratches and
// stay correct after recycling (distinct sources defeat the cache).
func TestScratchPoolRecycles(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{MaxInFlight: 1})
	for _, src := range []int{1, 2, 3, 4, 5} {
		res, err := e.Query(context.Background(), src, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		oracle := seq.Dijkstra(g, src)
		if !seq.Equal(res.Dist, oracle.Dist) {
			t.Fatalf("source %d: mismatch at %d after scratch recycling", src, seq.FirstMismatch(res.Dist, oracle.Dist))
		}
	}
}

// TestPerQueryMetricsSnapshot: CollectMetrics returns a per-query snapshot
// with core counters, and cache hits return none.
func TestPerQueryMetricsSnapshot(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{})
	res, err := e.Query(context.Background(), 6, QueryOptions{CollectMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("no metrics snapshot on computing query")
	}
	if got := res.Metrics.Counter("core.updates_processed"); got == 0 {
		t.Error("per-query snapshot has zero core.updates_processed")
	}
	res, err = e.Query(context.Background(), 6, QueryOptions{CollectMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || res.Metrics != nil {
		t.Errorf("cache hit: hit=%v metrics=%v, want hit with nil metrics", res.CacheHit, res.Metrics)
	}
}

// TestLRUEviction: the cache holds at most CacheEntries vectors, evicting
// the least recently used.
func TestLRUEviction(t *testing.T) {
	g := testGraph()
	e := mustEngine(t, g, Config{CacheEntries: 2})
	for _, src := range []int{1, 2, 3} {
		if _, err := e.Query(context.Background(), src, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// Source 1 was evicted (oldest); source 3 is resident.
	res, err := e.Query(context.Background(), 3, QueryOptions{})
	if err != nil || !res.CacheHit {
		t.Errorf("source 3: hit=%v err=%v, want resident", res != nil && res.CacheHit, err)
	}
	res, err = e.Query(context.Background(), 1, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("source 1 should have been evicted")
	}
}

// TestUnreachableDistances: +Inf distances survive the trip through the
// engine (regression guard for the PathTo fix's sibling path).
func TestUnreachableDistances(t *testing.T) {
	// 0 -> 1, vertex 2 isolated.
	g, err := graph.Build(3, []graph.Edge{{From: 0, To: 1, Weight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, g, Config{Topo: netsim.SingleNode(2)})
	res, err := e.Query(context.Background(), 0, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Dist[2], 1) {
		t.Errorf("Dist[2] = %v, want +Inf", res.Dist[2])
	}
}
