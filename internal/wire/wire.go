// Package wire is the frame codec for fabrics that cross an OS-process
// boundary (internal/sockfab). In-process fabrics hand `any` payloads
// between goroutines by reference; a TCP fabric must turn them into bytes
// and back, and this package owns that translation.
//
// Frame format (all integers big-endian):
//
//	[u32 length][u8 version][u8 tag][body]
//
// length counts everything after the length word (version + tag + body),
// so it is at least 2 and at most 2+MaxBody. version pins the format
// (Version); a skewed peer is rejected with ErrVersion rather than
// misparsed. tag names the registered message type; the body layout is
// the type's own affair, written and read by the EncodeFunc/DecodeFunc
// registered for the tag.
//
// A Codec is an instantiated registry, not global state: each transport
// endpoint builds one and the packages whose types cross the wire hang
// their codecs on it (runtime.RegisterWire, relnet.RegisterWire, and the
// core driver's batch/reduction codecs with their pool hooks). Values can
// nest — a runtime envelope's payload is itself a tagged value — via
// AppendValue/ReadValue.
//
// Decoding is defensive by construction: every length is validated
// against the bytes actually present before any allocation is sized from
// it, so a truncated, bit-flipped, or hostile frame errors (ErrTruncated,
// ErrOversized, ErrUnknownTag, ...) without panicking or over-allocating.
// FuzzFrameDecode holds that line.
//
// Encode buffers come from whatever []byte the caller appends into;
// transports recycle them through an arena.Arena[byte] so steady-state
// encode/decode does not allocate per message. Types that carry pooled
// resources (a tram batch's backing array, a pooled reduction value)
// register an afterEncode hook: encoding a value onto the wire consumes
// it, and the hook returns the resource to its pool on the spot — the
// serialized copy is now the only live one.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"sync"
)

// Version is the wire-format version stamped into every frame.
const Version = 1

// MaxBody caps a frame's body size. A length prefix above the cap is
// rejected before any buffer is sized from it, so a corrupt or hostile
// 4-GiB length cannot make a reader over-allocate.
const MaxBody = 1 << 20

// headerLen is the fixed preamble: length word + version + tag.
const headerLen = 6

// Decode/encode failure modes. Transports match on these to tell a
// protocol error (kill the conn) from an incomplete read (wait for more).
var (
	ErrTruncated  = errors.New("wire: truncated frame")
	ErrOversized  = errors.New("wire: length prefix exceeds MaxBody")
	ErrVersion    = errors.New("wire: version mismatch")
	ErrUnknownTag = errors.New("wire: unknown frame tag")
	ErrTrailing   = errors.New("wire: trailing bytes after body")
	ErrMalformed  = errors.New("wire: malformed body")
)

// Well-known tags. Tags are allocated centrally here so independently
// registered packages cannot collide: 0x0x runtime, 0x1x core driver,
// 0x2x relnet.
const (
	TagEnvelope  byte = 0x01
	TagSeed      byte = 0x10
	TagStart     byte = 0x11
	TagBatch     byte = 0x12
	TagCtrl      byte = 0x13
	TagReduceVal byte = 0x14
	TagData      byte = 0x20
	TagAck       byte = 0x21
)

// EncodeFunc appends v's body to buf and returns the extended slice.
type EncodeFunc func(c *Codec, buf []byte, v any) ([]byte, error)

// DecodeFunc reads one body from r and returns the decoded value. It must
// consume exactly the body (the codec rejects leftovers with ErrTrailing)
// and must validate every count against r.Remaining() before allocating.
type DecodeFunc func(c *Codec, r *Reader) (any, error)

type entry struct {
	name        string
	enc         EncodeFunc
	dec         DecodeFunc
	afterEncode func(v any)
}

// Codec maps registered Go types to wire tags and back. Build one per
// transport endpoint, register the crossing types, then share it freely:
// registration is construction-time, encode/decode are read-only and safe
// for concurrent use.
type Codec struct {
	byTag  [256]*entry
	tagOf  map[reflect.Type]byte
	frames int
}

// NewCodec returns an empty registry.
func NewCodec() *Codec {
	return &Codec{tagOf: make(map[reflect.Type]byte)}
}

// Register binds tag to prototype's dynamic type with its body codec.
// afterEncode, when non-nil, runs after every successful encode of a
// value of this type — the hook for types whose encoding consumes a
// pooled resource. Register panics on a duplicate tag or type: both are
// wiring bugs, not runtime conditions.
func (c *Codec) Register(tag byte, prototype any, enc EncodeFunc, dec DecodeFunc, afterEncode func(v any)) {
	t := reflect.TypeOf(prototype)
	if c.byTag[tag] != nil {
		panic(fmt.Sprintf("wire: tag 0x%02x registered twice (%s and %s)", tag, c.byTag[tag].name, t))
	}
	if _, dup := c.tagOf[t]; dup {
		panic(fmt.Sprintf("wire: type %s registered twice", t))
	}
	c.byTag[tag] = &entry{name: t.String(), enc: enc, dec: dec, afterEncode: afterEncode}
	c.tagOf[t] = tag
	c.frames++
}

// Registered reports whether v's type has a codec.
func (c *Codec) Registered(v any) bool {
	_, ok := c.tagOf[reflect.TypeOf(v)]
	return ok
}

// AppendValue appends v as a tagged value ([tag][body]) — the nesting
// unit. EncodeFrame wraps exactly one of these in the frame preamble.
func (c *Codec) AppendValue(buf []byte, v any) ([]byte, error) {
	tag, ok := c.tagOf[reflect.TypeOf(v)]
	if !ok {
		return buf, fmt.Errorf("%w: no tag for %T", ErrUnknownTag, v)
	}
	e := c.byTag[tag]
	buf = append(buf, tag)
	buf, err := e.enc(c, buf, v)
	if err != nil {
		return buf, err
	}
	if e.afterEncode != nil {
		e.afterEncode(v)
	}
	return buf, nil
}

// ReadValue reads one tagged value from r.
func (c *Codec) ReadValue(r *Reader) (any, error) {
	tag := r.U8()
	if r.Err() != nil {
		return nil, ErrTruncated
	}
	e := c.byTag[tag]
	if e == nil {
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownTag, tag)
	}
	return e.dec(c, r)
}

// EncodeFrame appends one complete frame carrying v to buf.
func (c *Codec) EncodeFrame(buf []byte, v any) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, Version)
	buf, err := c.AppendValue(buf, v)
	if err != nil {
		return buf[:start], err
	}
	body := len(buf) - start - 4
	if body-2 > MaxBody {
		return buf[:start], fmt.Errorf("%w: encoded body is %d bytes", ErrOversized, body-2)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(body))
	return buf, nil
}

// readerPool recycles the Reader that DecodeFrame threads through the
// registered decode funcs. The indirect call makes the Reader escape, so
// without the pool every decoded frame would pay one heap allocation —
// exactly the per-message cost the transport hot path must not have.
// Decode funcs copy what they keep (the codec contract), so a Reader is
// never referenced after DecodeFrame returns.
var readerPool = sync.Pool{New: func() any { return new(Reader) }}

// DecodeFrame parses one frame from the front of data, returning the
// decoded value and the number of bytes consumed. Incomplete frames
// return ErrTruncated (a streaming caller may read more and retry);
// everything else is a protocol error.
func (c *Codec) DecodeFrame(data []byte) (v any, consumed int, err error) {
	if len(data) < 4 {
		return nil, 0, ErrTruncated
	}
	length := binary.BigEndian.Uint32(data)
	if length < 2 {
		return nil, 0, fmt.Errorf("%w: length %d below preamble", ErrMalformed, length)
	}
	if length > MaxBody+2 {
		return nil, 0, fmt.Errorf("%w: length prefix %d", ErrOversized, length)
	}
	if uint32(len(data)-4) < length {
		return nil, 0, ErrTruncated
	}
	frame := data[4 : 4+length]
	if frame[0] != Version {
		return nil, 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, frame[0], Version)
	}
	r := readerPool.Get().(*Reader)
	*r = Reader{b: frame[1:]}
	defer func() {
		*r = Reader{} // do not retain the caller's buffer in the pool
		readerPool.Put(r)
	}()
	v, err = c.ReadValue(r)
	if err != nil {
		return nil, 0, err
	}
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	if r.Remaining() != 0 {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrTrailing, r.Remaining())
	}
	return v, 4 + int(length), nil
}

// ReadFrame reads exactly one frame (preamble + body) from r into buf,
// reusing buf's capacity, and returns the filled slice. io.EOF comes back
// untouched when the stream ends cleanly between frames; a stream ending
// mid-frame is ErrTruncated. The length prefix is validated against
// MaxBody before any buffer is grown from it.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	buf = append(buf[:0], 0, 0, 0, 0)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			return buf[:0], io.EOF
		}
		return buf[:0], ErrTruncated
	}
	length := binary.BigEndian.Uint32(buf)
	if length < 2 {
		return buf[:0], fmt.Errorf("%w: length %d below preamble", ErrMalformed, length)
	}
	if length > MaxBody+2 {
		return buf[:0], fmt.Errorf("%w: length prefix %d", ErrOversized, length)
	}
	buf = append(buf, make([]byte, length)...)
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return buf[:0], ErrTruncated
	}
	return buf, nil
}

// --- primitive append helpers (big-endian) ---

// AppendU8 appends one byte.
func AppendU8(buf []byte, v byte) []byte { return append(buf, v) }

// AppendU32 appends v big-endian.
func AppendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendU64 appends v big-endian.
func AppendU64(buf []byte, v uint64) []byte {
	return append(buf, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendI32 appends v big-endian (two's complement).
func AppendI32(buf []byte, v int32) []byte { return AppendU32(buf, uint32(v)) }

// AppendI64 appends v big-endian (two's complement).
func AppendI64(buf []byte, v int64) []byte { return AppendU64(buf, uint64(v)) }

// AppendF64 appends v's exact IEEE-754 bits, so histogram widths and
// distances round-trip bit-identically (histogram.Merge panics on a
// width mismatch; "almost equal" is not equal).
func AppendF64(buf []byte, v float64) []byte { return AppendU64(buf, math.Float64bits(v)) }

// Reader is a bounds-checked, sticky-error cursor over a frame body.
// After the first short read every accessor returns zero and Err() is
// non-nil, so decoders can read a fixed layout without per-field checks —
// but they MUST check Err() (or use the codec entry points, which do)
// before trusting any value, and must validate element counts against
// Remaining() before allocating.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the sticky error, nil before any overrun.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many unread bytes are left.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.err = ErrTruncated
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint32(s)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint64(s)
}

// I32 reads a big-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }
