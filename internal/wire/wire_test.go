package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// testMsg is a stand-in for a registered message: a fixed header plus a
// variable-length payload, enough to exercise count validation.
type testMsg struct {
	id    int32
	items []int64
}

// testNest exercises nested values: its inner field is itself a tagged value.
type testNest struct {
	epoch int64
	inner any
}

const (
	tagTest byte = 0x80
	tagNest byte = 0x81
)

func testCodec() *Codec {
	c := NewCodec()
	c.Register(tagTest, testMsg{}, func(c *Codec, buf []byte, v any) ([]byte, error) {
		m := v.(testMsg)
		buf = AppendI32(buf, m.id)
		buf = AppendU32(buf, uint32(len(m.items)))
		for _, it := range m.items {
			buf = AppendI64(buf, it)
		}
		return buf, nil
	}, func(c *Codec, r *Reader) (any, error) {
		var m testMsg
		m.id = r.I32()
		n := int(r.U32())
		if r.Err() != nil {
			return nil, r.Err()
		}
		if n*8 > r.Remaining() {
			return nil, ErrMalformed
		}
		if n > 0 {
			m.items = make([]int64, n)
			for i := range m.items {
				m.items[i] = r.I64()
			}
		}
		return m, nil
	}, nil)
	c.Register(tagNest, testNest{}, func(c *Codec, buf []byte, v any) ([]byte, error) {
		m := v.(testNest)
		buf = AppendI64(buf, m.epoch)
		return c.AppendValue(buf, m.inner)
	}, func(c *Codec, r *Reader) (any, error) {
		var m testNest
		m.epoch = r.I64()
		inner, err := c.ReadValue(r)
		if err != nil {
			return nil, err
		}
		m.inner = inner
		return m, nil
	}, nil)
	return c
}

func TestFrameRoundTrip(t *testing.T) {
	c := testCodec()
	want := testMsg{id: -7, items: []int64{1, -2, 1 << 40}}
	frame, err := c.EncodeFrame(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := c.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Errorf("consumed %d of %d bytes", n, len(frame))
	}
	gm := got.(testMsg)
	if gm.id != want.id || len(gm.items) != len(want.items) {
		t.Fatalf("round trip: got %+v want %+v", gm, want)
	}
	for i := range want.items {
		if gm.items[i] != want.items[i] {
			t.Fatalf("item %d: got %d want %d", i, gm.items[i], want.items[i])
		}
	}
}

func TestNestedValueRoundTrip(t *testing.T) {
	c := testCodec()
	want := testNest{epoch: 42, inner: testMsg{id: 3, items: []int64{9}}}
	frame, err := c.EncodeFrame(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	gn := got.(testNest)
	if gn.epoch != 42 || gn.inner.(testMsg).id != 3 {
		t.Fatalf("nested round trip: %+v", gn)
	}
}

func TestAfterEncodeFiresOncePerEncode(t *testing.T) {
	c := NewCodec()
	var fired int
	c.Register(tagTest, testMsg{}, func(c *Codec, buf []byte, v any) ([]byte, error) {
		return AppendI32(buf, v.(testMsg).id), nil
	}, func(c *Codec, r *Reader) (any, error) {
		return testMsg{id: r.I32()}, nil
	}, func(v any) { fired++ })
	if _, err := c.EncodeFrame(nil, testMsg{id: 1}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("afterEncode fired %d times, want 1", fired)
	}
}

func TestDecodeRejections(t *testing.T) {
	c := testCodec()
	frame, err := c.EncodeFrame(nil, testMsg{id: 1, items: []int64{5}})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(f []byte) []byte { return nil }, ErrTruncated},
		{"cut header", func(f []byte) []byte { return f[:3] }, ErrTruncated},
		{"cut body", func(f []byte) []byte { return f[:len(f)-1] }, ErrTruncated},
		{"oversized length", func(f []byte) []byte {
			g := append([]byte(nil), f...)
			binary.BigEndian.PutUint32(g, MaxBody+3)
			return g
		}, ErrOversized},
		{"length below preamble", func(f []byte) []byte {
			g := append([]byte(nil), f...)
			binary.BigEndian.PutUint32(g, 1)
			return g
		}, ErrMalformed},
		{"version skew", func(f []byte) []byte {
			g := append([]byte(nil), f...)
			g[4] = Version + 1
			return g
		}, ErrVersion},
		{"unknown tag", func(f []byte) []byte {
			g := append([]byte(nil), f...)
			g[5] = 0x7f
			return g
		}, ErrUnknownTag},
		{"trailing bytes", func(f []byte) []byte {
			g := append([]byte(nil), f...)
			g = append(g, 0xee)
			binary.BigEndian.PutUint32(g, uint32(len(g)-4))
			return g
		}, ErrTrailing},
		{"count past body", func(f []byte) []byte {
			g := append([]byte(nil), f...)
			// items count lives after [hdr 6][id 4]
			binary.BigEndian.PutUint32(g[10:], 1<<30)
			return g
		}, ErrMalformed},
	}
	for _, tc := range cases {
		if _, _, err := c.DecodeFrame(tc.mut(frame)); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestEncodeUnregisteredType(t *testing.T) {
	c := testCodec()
	if _, err := c.EncodeFrame(nil, "nope"); !errors.Is(err, ErrUnknownTag) {
		t.Errorf("err = %v, want ErrUnknownTag", err)
	}
}

func TestRegisterDuplicatesPanic(t *testing.T) {
	for _, dup := range []struct {
		name string
		tag  byte
		val  any
	}{{"tag", tagTest, testNest{}}, {"type", 0x90, testMsg{}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("duplicate %s registration did not panic", dup.name)
				}
			}()
			c := testCodec()
			c.Register(dup.tag, dup.val, nil, nil, nil)
		}()
	}
}

func TestReadFrameStream(t *testing.T) {
	c := testCodec()
	var stream []byte
	msgs := []testMsg{{id: 1}, {id: 2, items: []int64{3, 4}}}
	for _, m := range msgs {
		var err error
		stream, err = c.EncodeFrame(stream, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i := 0; ; i++ {
		frame, err := ReadFrame(r, buf)
		if err == io.EOF {
			if i != len(msgs) {
				t.Fatalf("stream ended after %d frames, want %d", i, len(msgs))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		buf = frame // reuse capacity like a transport reader would
		v, _, err := c.DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if v.(testMsg).id != msgs[i].id {
			t.Errorf("frame %d: id %d, want %d", i, v.(testMsg).id, msgs[i].id)
		}
	}

	// A stream dying mid-frame is a protocol error, not a clean EOF.
	if _, err := ReadFrame(bytes.NewReader(stream[:5]), nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("mid-frame EOF: err = %v, want ErrTruncated", err)
	}
	// A hostile length prefix is rejected before allocation.
	evil := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(evil), nil); !errors.Is(err, ErrOversized) {
		t.Errorf("hostile prefix: err = %v, want ErrOversized", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if got := r.U32(); got != 0 || r.Err() == nil {
		t.Errorf("overrun U32 = %d err %v, want 0 with sticky error", got, r.Err())
	}
	if got := r.U8(); got != 0 {
		t.Errorf("read after sticky error = %d, want 0", got)
	}
}
