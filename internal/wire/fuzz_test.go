package wire

import (
	"encoding/binary"
	"testing"
)

// FuzzFrameDecode drives arbitrary bytes — seeded with valid frames and
// then truncated, length-corrupted, version-skewed, and bit-flipped by
// the fuzzer — through DecodeFrame. The invariants: never panic, never
// size an allocation from an unvalidated length (the t.Total guard below
// would OOM long before failing if a decoder did), and on success consume
// a sane byte count. Wired into the CI fuzz smoke stage.
func FuzzFrameDecode(f *testing.F) {
	c := testCodec()

	seed := func(v any) []byte {
		frame, err := c.EncodeFrame(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		return frame
	}
	good := seed(testMsg{id: 7, items: []int64{1, 2, 3}})
	f.Add(good)
	f.Add(seed(testNest{epoch: 9, inner: testMsg{id: 1}}))
	f.Add(good[:3])           // truncated header
	f.Add(good[:len(good)-2]) // truncated body

	oversized := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(oversized, MaxBody+100)
	f.Add(oversized)

	skewed := append([]byte(nil), good...)
	skewed[4] = Version + 3
	f.Add(skewed)

	hostileCount := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(hostileCount[10:], 0xfffffff0)
	f.Add(hostileCount)

	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := c.DecodeFrame(data)
		if err != nil {
			if v != nil || n != 0 {
				t.Fatalf("error %v returned partial result (v=%v n=%d)", err, v, n)
			}
			return
		}
		if n < headerLen || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// A successfully decoded frame must re-encode: the registry is
		// closed under round-trips, so decode cannot invent values the
		// encoder does not recognize.
		if _, err := c.EncodeFrame(nil, v); err != nil {
			t.Fatalf("decoded value %T does not re-encode: %v", v, err)
		}
	})
}
