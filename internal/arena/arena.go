// Package arena provides a chunked slice allocator for the messaging hot
// path: fixed-capacity backing arrays ("chunks") recycled through per-owner
// freelists, so steady-state traffic neither allocates nor contends.
//
// The design point is the per-PE ownership discipline of the runtime: each
// owner index is bound to exactly one goroutine (a PE), so Get/Put on an
// owner's freelist are plain slice operations with no synchronization at
// all. Chunks that change goroutines mid-flight — a tram batch sent to
// another PE, a demux forward — come back through PutShared, a
// mutex-guarded spill list any goroutine may use; owners whose private
// freelist runs dry refill from the spill in one lock acquisition. The
// fast path therefore touches no lock and no atomic, and the slow path is
// one mutex operation per chunk that crossed goroutines.
//
// Every chunk has the same capacity (Arena.ChunkCap), which is what makes
// the recycling loss-free: a chunk issued as a tram buffer can be released
// by the PE that unpacked it and reappear as a hold chunk on that PE, or
// vice versa. Undersized foreign slices offered to Put/PutShared are
// dropped rather than pooled, mirroring tram's Release rule.
//
// Ownership rules (see DESIGN.md "Arena ownership"): a chunk belongs to
// exactly one party at a time — the freelist it sits in, the List or
// buffer it backs, or the in-flight batch carrying it. Whoever finishes
// consuming the chunk's items puts it back (Put from the owning goroutine,
// PutShared from anywhere). Double-put corrupts the freelist; the
// gets/puts ledger (Stats) makes imbalances visible at quiescence.
package arena

import "sync"

// DefaultChunkCap matches tram.DefaultCapacity so tram buffers, hold
// chunks and demux forwards all recycle through one arena.
const DefaultChunkCap = 1024

// shard is one owner's private freelist, padded so neighboring owners'
// hot fields never share a cache line.
type shard[T any] struct {
	free [][]T
	// gets/puts are single-goroutine counters (the owner's); Stats sums
	// them with the shared-side counters for the pool-discipline ledger.
	gets, puts int64
	_          [64]byte
}

// Arena is a fixed-chunk-size allocator with per-owner freelists and a
// shared spill. The zero value is not usable; construct with New.
type Arena[T any] struct {
	chunkCap int
	shards   []shard[T]

	mu     sync.Mutex
	spill  [][]T
	sGets  int64 // chunks issued via the shared path (refills count here)
	sPuts  int64 // chunks accepted via PutShared
	allocs int64 // chunks newly allocated (never recycled); under mu or owner goroutine? see note
}

// Stats is the arena's chunk-conservation ledger. At quiescence every
// issued chunk has been put back, so Gets == Puts; Allocs counts how many
// chunks exist in total (the arena's footprint).
type Stats struct {
	Gets   int64 // chunks handed out (fresh or recycled)
	Puts   int64 // chunks accepted back
	Allocs int64 // chunks created fresh (footprint, monotone)
}

// New returns an Arena with one private freelist per owner in
// [0, owners) and chunks of capacity chunkCap. It panics on non-positive
// arguments.
func New[T any](owners, chunkCap int) *Arena[T] {
	if owners <= 0 {
		panic("arena: non-positive owner count")
	}
	if chunkCap <= 0 {
		panic("arena: non-positive chunk capacity")
	}
	return &Arena[T]{chunkCap: chunkCap, shards: make([]shard[T], owners)}
}

// ChunkCap returns the uniform chunk capacity.
func (a *Arena[T]) ChunkCap() int { return a.chunkCap }

// Owners returns the number of private freelists.
func (a *Arena[T]) Owners() int { return len(a.shards) }

// refillBatch bounds how many spilled chunks an owner pulls back under one
// lock acquisition: enough to amortize the mutex, few enough not to starve
// sibling owners.
const refillBatch = 8

// Get returns an empty chunk (len 0, cap ChunkCap). It must be called from
// the goroutine owning owner's freelist. The private freelist is tried
// first, then the shared spill (one lock, up to refillBatch chunks moved),
// and only then is a fresh chunk allocated.
//
//acic:noalloc
func (a *Arena[T]) Get(owner int) []T {
	sh := &a.shards[owner]
	sh.gets++
	if n := len(sh.free); n > 0 {
		c := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		return c
	}
	// Private list dry: refill from the shared spill.
	a.mu.Lock()
	if n := len(a.spill); n > 0 {
		take := refillBatch
		if take > n {
			take = n
		}
		moved := a.spill[n-take:]
		sh.free = append(sh.free, moved...)
		for i := range moved {
			moved[i] = nil
		}
		a.spill = a.spill[:n-take]
		a.mu.Unlock()
		n = len(sh.free)
		c := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		return c
	}
	a.allocs++
	a.mu.Unlock()
	return make([]T, 0, a.chunkCap) //acic:allow-alloc pool miss: the whole point of the arena is that this line runs rarely
}

// GetShared returns an empty chunk from the shared spill (or fresh),
// callable from any goroutine — the Get counterpart of PutShared. It
// exists for consumers with no owner goroutine of their own, like a
// transport's frame decoder drawing batch buffers on a socket-reader
// goroutine; steady-state traffic recycles spilled chunks and allocates
// nothing.
func (a *Arena[T]) GetShared() []T {
	a.mu.Lock()
	a.sGets++
	if n := len(a.spill); n > 0 {
		c := a.spill[n-1]
		a.spill[n-1] = nil
		a.spill = a.spill[:n-1]
		a.mu.Unlock()
		return c
	}
	a.allocs++
	a.mu.Unlock()
	return make([]T, 0, a.chunkCap)
}

// Put returns a chunk to owner's private freelist. It must be called from
// the goroutine owning that freelist; the chunk must not be touched
// afterwards. Slices smaller than ChunkCap are dropped (only full-capacity
// chunks recycle), but still count as puts so the ledger stays balanced.
//
//acic:noalloc
func (a *Arena[T]) Put(owner int, c []T) {
	sh := &a.shards[owner]
	sh.puts++
	if cap(c) < a.chunkCap {
		return
	}
	sh.free = append(sh.free, c[:0])
}

// PutShared returns a chunk from any goroutine via the mutex-guarded
// spill. Undersized slices are dropped but counted, as in Put.
func (a *Arena[T]) PutShared(c []T) {
	a.mu.Lock()
	a.sPuts++
	if cap(c) >= a.chunkCap {
		a.spill = append(a.spill, c[:0])
	}
	a.mu.Unlock()
}

// Stats sums the per-owner and shared ledgers. Exact only at quiescence
// (no concurrent Get/Put); mid-run reads may tear between shards.
func (a *Arena[T]) Stats() Stats {
	a.mu.Lock()
	s := Stats{Gets: a.sGets, Puts: a.sPuts, Allocs: a.allocs}
	a.mu.Unlock()
	for i := range a.shards {
		s.Gets += a.shards[i].gets
		s.Puts += a.shards[i].puts
	}
	return s
}

