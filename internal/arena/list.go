package arena

// List is a chunked sequence of T backed by arena chunks. It replaces
// grow-by-append slices in places that fill and drain repeatedly (the ACIC
// hold buffers): appends go into the tail chunk, and Drain hands every
// chunk back to the freelist and resets the list in O(chunks) — the outer
// chunk slice keeps its capacity, so a steady park/drain cycle performs
// zero allocations.
//
// A List is single-goroutine, like the owner freelist it draws from. The
// zero value is an empty, usable list.
type List[T any] struct {
	chunks [][]T
	n      int
}

// Len returns the number of items in the list.
func (l *List[T]) Len() int { return l.n }

// Append adds v, taking a fresh chunk from a (on behalf of owner) when the
// tail chunk is full or the list is empty.
func (l *List[T]) Append(a *Arena[T], owner int, v T) {
	if k := len(l.chunks); k == 0 || len(l.chunks[k-1]) == cap(l.chunks[k-1]) {
		l.chunks = append(l.chunks, a.Get(owner))
	}
	k := len(l.chunks) - 1
	l.chunks[k] = append(l.chunks[k], v)
	l.n++
}

// Drain calls fn for every item in append order, returns all chunks to
// owner's freelist, and empties the list. fn must not touch the list.
func (l *List[T]) Drain(a *Arena[T], owner int, fn func(T)) {
	for i, c := range l.chunks {
		for _, v := range c {
			fn(v)
		}
		a.Put(owner, c)
		l.chunks[i] = nil
	}
	l.chunks = l.chunks[:0]
	l.n = 0
}

// TakeChunks moves the list's chunks out wholesale — ownership of each
// chunk transfers to the caller (who typically sends it as a message and
// lets the receiver put it back). The list is left empty with its outer
// capacity intact. fn is called once per chunk in order.
func (l *List[T]) TakeChunks(fn func([]T)) {
	for i, c := range l.chunks {
		fn(c)
		l.chunks[i] = nil
	}
	l.chunks = l.chunks[:0]
	l.n = 0
}
