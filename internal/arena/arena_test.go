package arena

import (
	"sync"
	"testing"
)

func TestGetPutRecycles(t *testing.T) {
	a := New[int](2, 4)
	c := a.Get(0)
	if len(c) != 0 || cap(c) != 4 {
		t.Fatalf("Get: len=%d cap=%d, want 0/4", len(c), cap(c))
	}
	c = append(c, 1, 2, 3)
	a.Put(0, c)
	c2 := a.Get(0)
	if cap(c2) != 4 || len(c2) != 0 {
		t.Fatalf("recycled chunk: len=%d cap=%d", len(c2), cap(c2))
	}
	// Same backing array came back.
	c2 = append(c2, 9)
	if &c[:1][0] != &c2[0] {
		t.Error("Get after Put did not recycle the backing array")
	}
	st := a.Stats()
	if st.Gets != 2 || st.Puts != 1 || st.Allocs != 1 {
		t.Errorf("stats = %+v, want gets=2 puts=1 allocs=1", st)
	}
}

func TestUndersizedDropped(t *testing.T) {
	a := New[int](1, 8)
	a.Put(0, make([]int, 0, 4))       // undersized: dropped, counted
	a.PutShared(make([]int, 0, 2))    // undersized: dropped, counted
	if c := a.Get(0); cap(c) != 8 {
		t.Errorf("Get after undersized puts returned cap %d, want fresh 8", cap(c))
	}
	st := a.Stats()
	if st.Puts != 2 {
		t.Errorf("puts = %d, want 2 (undersized still counted)", st.Puts)
	}
	if st.Allocs != 1 {
		t.Errorf("allocs = %d, want 1", st.Allocs)
	}
}

func TestSharedSpillRefillsOwner(t *testing.T) {
	a := New[int](2, 4)
	// Owner 0 issues chunks; a "receiver" returns them via the shared path.
	var inflight [][]int
	for i := 0; i < 20; i++ {
		inflight = append(inflight, a.Get(0))
	}
	for _, c := range inflight {
		a.PutShared(c)
	}
	before := a.Stats().Allocs
	// Owner 1 (freelist empty) should refill from the spill, not allocate.
	c := a.Get(1)
	if a.Stats().Allocs != before {
		t.Error("Get with non-empty spill allocated a fresh chunk")
	}
	a.Put(1, c)
}

func TestPutSharedConcurrent(t *testing.T) {
	a := New[int](4, 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(owner int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c := a.Get(owner)
				c = append(c, i)
				a.PutShared(c)
			}
		}(g)
	}
	wg.Wait()
	st := a.Stats()
	if st.Gets != 2000 || st.Puts != 2000 {
		t.Errorf("stats = %+v, want gets=puts=2000", st)
	}
}

func TestListAppendDrain(t *testing.T) {
	a := New[int](1, 3)
	var l List[int]
	for i := 0; i < 10; i++ {
		l.Append(a, 0, i)
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}
	var got []int
	l.Drain(a, 0, func(v int) { got = append(got, v) })
	if l.Len() != 0 {
		t.Errorf("Len after Drain = %d, want 0", l.Len())
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("drain order: got[%d] = %d", i, v)
		}
	}
	if len(got) != 10 {
		t.Fatalf("drained %d items, want 10", len(got))
	}
	st := a.Stats()
	if st.Gets != st.Puts {
		t.Errorf("list cycle unbalanced: %+v", st)
	}
}

func TestListTakeChunks(t *testing.T) {
	a := New[int](1, 4)
	var l List[int]
	for i := 0; i < 9; i++ {
		l.Append(a, 0, i)
	}
	var chunks [][]int
	l.TakeChunks(func(c []int) { chunks = append(chunks, c) })
	if l.Len() != 0 {
		t.Errorf("Len after TakeChunks = %d, want 0", l.Len())
	}
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != 9 {
		t.Errorf("chunks carry %d items, want 9", total)
	}
	// Taken chunks were not put back: the ledger shows them outstanding
	// until the receiver returns them.
	st := a.Stats()
	if st.Gets-st.Puts != 3 {
		t.Errorf("outstanding chunks = %d, want 3 (%+v)", st.Gets-st.Puts, st)
	}
	for _, c := range chunks {
		a.PutShared(c)
	}
	if st := a.Stats(); st.Gets != st.Puts {
		t.Errorf("after returning taken chunks: %+v", st)
	}
}

// TestSteadyStateZeroAlloc is the allocation-ceiling regression test for
// the arena itself: once warm, a park/drain cycle must not allocate.
func TestSteadyStateZeroAlloc(t *testing.T) {
	a := New[int](1, 64)
	var l List[int]
	// Warm: grow the freelist and the list's outer slice to high water.
	for i := 0; i < 1000; i++ {
		l.Append(a, 0, i)
	}
	l.Drain(a, 0, func(int) {})
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			l.Append(a, 0, i)
		}
		l.Drain(a, 0, func(int) {})
	})
	if avg > 0 {
		t.Errorf("warm park/drain cycle allocates %.2f objects, want 0", avg)
	}
}

func BenchmarkListParkDrain(b *testing.B) {
	a := New[int](1, 1024)
	var l List[int]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 1024 {
		for j := 0; j < 1024; j++ {
			l.Append(a, 0, j)
		}
		l.Drain(a, 0, func(int) {})
	}
}
