// Package tram reimplements tramlib, the message-aggregation library the
// paper introduces for Charm++ (§II-D).
//
// SSSP generates enormous numbers of tiny update messages; sending each one
// individually would be dominated by per-message latency. Tramlib holds
// outgoing items in per-destination buffers and sends a whole buffer as one
// batch when it reaches a configured capacity (an "automatic flush"), or
// when the application explicitly flushes — which ACIC does during the
// broadcast after every reduction, guaranteeing progress through the
// low-concurrency "tail" of the graph where buffers never fill on their own.
//
// Buffer organization follows the paper's two-letter designations: the
// first letter says who owns a buffer set (P = one set per process, shared
// by its PEs under a lock; W = one private set per worker/PE), the second
// says the destination granularity (P = one buffer per destination process;
// W = one buffer per destination PE). The paper finds WP best for SSSP and
// uses it for all experiments; all four of PP, WP, WW and PW are
// implemented here so that choice can be re-derived (see the aggregation
// mode benchmark).
//
// The manager is a pure buffering policy: it never touches the network.
// Insert and the flush methods return Batches, and the caller (the ACIC
// core, or a baseline) forwards each batch through the runtime. A batch
// destined to a process is addressed to one of the process's PEs chosen
// round-robin, standing in for the per-process communication thread that
// demultiplexes arrivals in the paper's SMP configuration.
package tram

import (
	"fmt"
	"sync"

	"acic/internal/arena"
	"acic/internal/metrics"
	"acic/internal/netsim"
)

// Mode selects the buffer organization, named as in the paper.
type Mode uint8

// Aggregation modes. First letter: buffer-set owner. Second: destination
// granularity.
const (
	WW Mode = iota // per-worker sets, one buffer per destination PE
	WP             // per-worker sets, one buffer per destination process (paper's choice)
	PW             // per-process sets, one buffer per destination PE
	PP             // per-process sets, one buffer per destination process
)

// String returns the paper's two-letter designation.
func (m Mode) String() string {
	switch m {
	case WW:
		return "WW"
	case WP:
		return "WP"
	case PW:
		return "PW"
	case PP:
		return "PP"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// DefaultCapacity is the middle of the three buffer sizes tramlib supports
// (512, 1024, 2048 items; §IV-E).
const DefaultCapacity = 1024

// SupportedCapacities are the buffer sizes the paper's tramlib offers.
var SupportedCapacities = []int{512, 1024, 2048}

// Batch is a group of items flushed together; the caller sends it as one
// message to DestPE.
type Batch[T any] struct {
	SrcPE  int
	DestPE int
	Items  []T
}

// Stats counts tramlib activity. All fields are cumulative.
type Stats struct {
	Inserts       int64
	AutoFlushes   int64 // buffer reached capacity
	ManualFlushes int64 // explicit flush calls that produced a batch
	Batches       int64
	Items         int64 // items carried by all batches
	// PoolGets counts backing arrays issued to buffers (recycled or
	// freshly allocated); PoolPuts counts arrays accepted back by Release.
	// At quiescence every issued array has been flushed and released, so
	// the two must match — the pool-discipline invariant releasecheck
	// enforces statically and TestPoolDiscipline checks dynamically.
	PoolGets int64
	PoolPuts int64
}

// Manager implements the buffering policy for one simulated machine.
type Manager[T any] struct {
	topo netsim.Topology
	mode Mode
	cap  int

	sets []bufferSet[T]

	// pool recycles the backing arrays of flushed batches through a
	// chunked arena: a receiver calls ReleaseTo (or Release) after
	// unpacking a batch, and the next buffer that starts filling reuses
	// that capacity instead of growing from nil. Pooled arrays keep stale
	// items beyond their length until reused; that is fine for the small
	// value-typed updates tram carries. The arena may be shared with other
	// chunk users of the same run (hold buffers, demux forwards) via
	// NewWithArena, so a chunk released by one subsystem refills another.
	pool *arena.Arena[T]

	// Counters live in a metrics.Registry (the caller's, or a private one
	// when none is supplied), sharded by source PE so concurrent inserters
	// never contend on a stats cache line. Stats() sums them into the
	// legacy view.
	inserts       *metrics.Counter
	autoFlushes   *metrics.Counter
	manualFlushes *metrics.Counter
	batches       *metrics.Counter
	items         *metrics.Counter
	poolGets      *metrics.Counter
	poolPuts      *metrics.Counter
}

type bufferSet[T any] struct {
	mu   *sync.Mutex // non-nil for process-owned (shared) sets
	bufs [][]T       // indexed by destination PE or process
	rr   int         // round-robin offset for process-granularity delivery

	// Manager stores sets contiguously ([]bufferSet, one per source PE in
	// the worker-granularity modes), so adjacent inserters would otherwise
	// false-share a cache line on every append bookkeeping write.
	_ [64]byte
}

// New creates a Manager for the given topology, mode and per-buffer
// capacity. Capacity must be positive; the paper's supported sizes are 512,
// 1024 and 2048 but any positive value is accepted for experiments.
// Counters land in a private registry; use NewWithRegistry to aggregate
// them into a run-wide one.
func New[T any](topo netsim.Topology, mode Mode, capacity int) (*Manager[T], error) {
	return NewWithRegistry[T](topo, mode, capacity, nil)
}

// NewWithRegistry is New with the manager's counters registered in reg
// under the "tram." prefix, sharded by source PE. reg must have been
// created for at least topo.TotalPEs() shards; a nil reg selects a private
// registry so the counters (and therefore Stats) always exist. Two
// managers sharing one registry share the counters — one manager per run
// is the intended shape.
func NewWithRegistry[T any](topo netsim.Topology, mode Mode, capacity int, reg *metrics.Registry) (*Manager[T], error) {
	return NewWithArena[T](topo, mode, capacity, reg, nil)
}

// NewWithArena is NewWithRegistry with the manager's buffer recycling
// backed by a caller-provided arena, so one run's tram buffers, hold
// chunks and demux forwards all draw from a single chunk pool. The
// arena's chunk capacity must equal the manager's buffer capacity (the
// uniform size is what makes cross-subsystem recycling loss-free); a nil
// arena selects a private one.
func NewWithArena[T any](topo netsim.Topology, mode Mode, capacity int, reg *metrics.Registry, ar *arena.Arena[T]) (*Manager[T], error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("tram: capacity must be positive, got %d", capacity)
	}
	if mode > PP {
		return nil, fmt.Errorf("tram: unknown mode %d", mode)
	}
	if reg == nil {
		reg = metrics.New(topo.TotalPEs())
	}
	if ar == nil {
		ar = arena.New[T](topo.TotalPEs(), capacity)
	} else if ar.ChunkCap() != capacity {
		return nil, fmt.Errorf("tram: arena chunk capacity %d != buffer capacity %d", ar.ChunkCap(), capacity)
	}
	m := &Manager[T]{
		topo:          topo,
		mode:          mode,
		cap:           capacity,
		pool:          ar,
		inserts:       reg.Counter("tram.inserts"),
		autoFlushes:   reg.Counter("tram.auto_flushes"),
		manualFlushes: reg.Counter("tram.manual_flushes"),
		batches:       reg.Counter("tram.batches"),
		items:         reg.Counter("tram.items"),
		poolGets:      reg.Counter("tram.pool_gets"),
		poolPuts:      reg.Counter("tram.pool_puts"),
	}
	numSets := topo.TotalPEs()
	if mode == PW || mode == PP {
		numSets = topo.TotalProcs()
	}
	numDests := topo.TotalPEs()
	if mode == WP || mode == PP {
		numDests = topo.TotalProcs()
	}
	m.sets = make([]bufferSet[T], numSets)
	for i := range m.sets {
		m.sets[i].bufs = make([][]T, numDests)
		if mode == PW || mode == PP {
			m.sets[i].mu = new(sync.Mutex)
		}
	}
	return m, nil
}

// Mode returns the aggregation mode.
func (m *Manager[T]) Mode() Mode { return m.mode }

// Capacity returns the per-buffer item capacity.
func (m *Manager[T]) Capacity() int { return m.cap }

// NumBuffers returns the total number of buffers maintained — the quantity
// that grows with parallelism and drives Fig. 6's shrinking optimal size.
func (m *Manager[T]) NumBuffers() int {
	if len(m.sets) == 0 {
		return 0
	}
	return len(m.sets) * len(m.sets[0].bufs)
}

func (m *Manager[T]) setIndex(srcPE int) int {
	if m.mode == PW || m.mode == PP {
		return m.topo.ProcessOf(srcPE)
	}
	return srcPE
}

func (m *Manager[T]) destIndex(dstPE int) int {
	if m.mode == WP || m.mode == PP {
		return m.topo.ProcessOf(dstPE)
	}
	return dstPE
}

// deliveryPE resolves a destination buffer index back to a concrete PE.
// For PE-granularity buffers it is the PE itself; for process-granularity
// buffers one of the process's PEs is picked round-robin per flush,
// standing in for the process's communication thread.
func (m *Manager[T]) deliveryPE(set *bufferSet[T], destIdx int) int {
	if m.mode == WW || m.mode == PW {
		return destIdx
	}
	lo, hi := m.topo.PEsOfProcess(destIdx)
	pe := lo + set.rr%(hi-lo)
	set.rr++
	return pe
}

// Insert buffers item for dstPE on behalf of srcPE. If the buffer reaches
// capacity the filled batch is cut and returned for the caller to send;
// otherwise the returned batch is nil.
func (m *Manager[T]) Insert(srcPE, dstPE int, item T) *Batch[T] {
	m.inserts.Add(srcPE, 1)
	set := &m.sets[m.setIndex(srcPE)]
	d := m.destIndex(dstPE)
	if set.mu != nil {
		set.mu.Lock()
		defer set.mu.Unlock()
	}
	if set.bufs[d] == nil {
		set.bufs[d] = m.newBuf(srcPE)
	}
	set.bufs[d] = append(set.bufs[d], item)
	if len(set.bufs[d]) < m.cap {
		return nil
	}
	m.autoFlushes.Add(srcPE, 1)
	return m.cut(srcPE, set, d)
}

// newBuf returns an empty buffer with full batch capacity, recycled from
// the arena when a receiver has released one. srcPE attributes the
// pool-get to the inserting PE's counter shard and selects its private
// freelist (Insert always runs on the inserting PE's goroutine, so the
// freelist access is synchronization-free).
func (m *Manager[T]) newBuf(srcPE int) []T {
	m.poolGets.Add(srcPE, 1)
	return m.pool.Get(srcPE)
}

// Borrow hands out one empty full-capacity buffer from srcPE's freelist
// for uses outside the manager's own send buffers — e.g. the ACIC demux
// re-bundling arrivals for sibling PEs. The borrowed buffer participates
// in the pool-discipline ledger exactly like a flushed batch: whoever
// finishes unpacking it must hand it back through ReleaseTo or Release.
// Must be called from srcPE's goroutine.
func (m *Manager[T]) Borrow(srcPE int) []T {
	return m.newBuf(srcPE)
}

// BorrowShared is Borrow for callers with no PE goroutine of their own —
// a transport's frame decoder materializing an arriving batch on a
// socket-reader goroutine. The buffer comes from the arena's shared
// spill; the get lands on shard 0, mirroring Release's accounting, so
// PoolGets == PoolPuts still holds at quiescence when the receiving PE
// hands the decoded buffer back through Release/ReleaseTo.
func (m *Manager[T]) BorrowShared() []T {
	m.poolGets.Add(0, 1)
	return m.pool.GetShared()
}

// Release returns a flushed batch's backing array to the manager so a
// future buffer can reuse its capacity. Call it after fully unpacking
// batch.Items; the slice must not be touched afterwards. Undersized slices
// are ignored so the pool holds only full-capacity arrays. Safe for
// concurrent use from any goroutine; receivers that know their own PE
// index should prefer ReleaseTo, which skips the shared spill's lock.
func (m *Manager[T]) Release(items []T) {
	// Release runs on receiver goroutines with no natural source shard;
	// shard 0 keeps the total exact, which is all the pool-discipline
	// invariant (PoolGets == PoolPuts at quiescence) needs.
	if cap(items) < m.cap {
		return
	}
	m.poolPuts.Add(0, 1)
	m.pool.PutShared(items)
}

// ReleaseTo is Release for a receiver running on PE pe's goroutine: the
// array lands on that PE's private freelist with no synchronization, so
// the common unpack-and-release path of the ACIC hot loop touches no lock.
func (m *Manager[T]) ReleaseTo(pe int, items []T) {
	if cap(items) < m.cap {
		return
	}
	m.poolPuts.Add(pe, 1)
	m.pool.Put(pe, items)
}

// cut removes and wraps the buffer at destination index d. Caller holds the
// set lock if the set is shared.
func (m *Manager[T]) cut(srcPE int, set *bufferSet[T], d int) *Batch[T] {
	items := set.bufs[d]
	if len(items) == 0 {
		return nil
	}
	set.bufs[d] = nil
	m.batches.Add(srcPE, 1)
	m.items.Add(srcPE, int64(len(items)))
	return &Batch[T]{SrcPE: srcPE, DestPE: m.deliveryPE(set, d), Items: items}
}

// FlushSet performs an explicit flush of the buffer set srcPE writes to,
// returning every non-empty buffer as a batch. ACIC calls this from each
// PE's broadcast handler; note that under process-owned modes several PEs
// share a set, so a process's set may be flushed by whichever of its PEs
// handles the broadcast first — subsequent flushes find it empty, which is
// harmless.
func (m *Manager[T]) FlushSet(srcPE int) []Batch[T] {
	set := &m.sets[m.setIndex(srcPE)]
	if set.mu != nil {
		set.mu.Lock()
		defer set.mu.Unlock()
	}
	var out []Batch[T]
	for d := range set.bufs {
		if b := m.cut(srcPE, set, d); b != nil {
			out = append(out, *b)
		}
	}
	if len(out) > 0 {
		m.manualFlushes.Add(srcPE, 1)
	}
	return out
}

// PendingInSet reports the number of items currently buffered in srcPE's
// set. Used by tests and by the tail-progress assertions.
func (m *Manager[T]) PendingInSet(srcPE int) int {
	set := &m.sets[m.setIndex(srcPE)]
	if set.mu != nil {
		set.mu.Lock()
		defer set.mu.Unlock()
	}
	n := 0
	for _, b := range set.bufs {
		n += len(b)
	}
	return n
}

// Stats returns a snapshot of the counters. It is a thin view over the
// registry instruments (summing the per-PE shards); callers wanting per-PE
// resolution read the "tram." counters from the registry directly.
func (m *Manager[T]) Stats() Stats {
	return Stats{
		Inserts:       m.inserts.Value(),
		AutoFlushes:   m.autoFlushes.Value(),
		ManualFlushes: m.manualFlushes.Value(),
		Batches:       m.batches.Value(),
		Items:         m.items.Value(),
		PoolGets:      m.poolGets.Value(),
		PoolPuts:      m.poolPuts.Value(),
	}
}
