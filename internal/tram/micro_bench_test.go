package tram

import (
	"testing"

	"acic/internal/netsim"
)

// BenchmarkTramInsertFlush measures the steady-state cost of one insert on
// the aggregation hot path, including the amortized cost of cutting a full
// batch every `capacity` inserts and recycling its backing array the way a
// receiver does after unpacking.
func BenchmarkTramInsertFlush(b *testing.B) {
	topo := netsim.SingleNode(8)
	m, err := New[uint64](topo, WP, 512)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batch := m.Insert(0, i&7, uint64(i)); batch != nil {
			m.Release(batch.Items) // what a receiver does after unpacking
		}
	}
}
